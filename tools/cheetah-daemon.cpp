//===- tools/cheetah-daemon.cpp - Continuous-profiling daemon -------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The always-on half of the fleet-service story: one long-lived profiler
/// instance observing a workload's sample stream epoch after epoch under a
/// fixed shadow-memory byte budget, emitting a complete `cheetah-report-v4`
/// snapshot at every epoch boundary and appending each one into a
/// `cheetah-history-v1` store — so `cheetah-trend show`/`--gate` works live
/// against a running daemon, and week-long attaches cannot grow without
/// bound (cold grains are evicted into the conservation residue and decay
/// back through the stage-1 filter if their traffic returns).
///
/// The sample stream comes through the pmu::SampleSource seam: either the
/// workload runs once under the simulated PMU with a TraceSource recorder
/// teeing the stream (optionally persisting it via `--record-trace=FILE`),
/// or `--backend=trace:FILE` replays a previously recorded
/// `cheetah-trace-v1` file with no simulation at all. Either way the
/// captured per-thread sample stream is replayed through the real
/// interpose runtime (per-thread buffers, batch sink,
/// `PreloadProfilerBridge`) once per epoch on real OS threads — the same
/// ingest path an LD_PRELOADed production process exercises, driven as a
/// steady-state traffic generator.
///
/// Examples:
///   cheetah-daemon --workload=numa_first_touch --granularity=both \
///       --epochs=10 --line-budget=262144 --store=history.json
///   cheetah-daemon --workload=numa_first_touch \
///       --backend=trace:first_touch.trace --epochs=10 --store=history.json
///   cheetah-trend show --store=history.json --gate=1.5
///
//===----------------------------------------------------------------------===//

#include "core/report/ReportHistory.h"
#include "driver/PreloadBridge.h"
#include "driver/ProfileSession.h"
#include "driver/SessionOptions.h"
#include "interpose/Preload.h"
#include "pmu/TraceSource.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace cheetah;

namespace {

/// Writes \p Text to \p Path. \returns false on I/O failure.
bool writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  bool Closed = std::fclose(File) == 0;
  bool Ok = Written == Text.size() && Closed;
  if (!Ok)
    std::fprintf(stderr, "error: short write to '%s'\n", Path.c_str());
  return Ok;
}

/// Reads the whole of \p Path into \p Out. \returns false on I/O failure.
bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Out.append(Buffer, Read);
  bool Ok = !std::ferror(File);
  std::fclose(File);
  return Ok;
}

/// Buckets a trace's sample stream per issuing thread — the shape the
/// epoch replay loop feeds to per-thread interpose buffers. Lifecycle
/// events are dropped: every epoch re-attaches its threads under fresh
/// ids through the bridge.
struct PartitionSink : pmu::SampleSink {
  std::map<ThreadId, std::vector<pmu::Sample>> PerThread;

  void threadStarted(ThreadId, bool, uint64_t) override {}
  void threadFinished(ThreadId, bool, uint64_t) override {}
  void ingestBatch(const pmu::Sample *Samples, size_t Count) override {
    for (size_t I = 0; I < Count; ++I)
      PerThread[Samples[I].Tid].push_back(Samples[I]);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags;
  driver::addSessionFlags(Flags);
  Flags.addInt("epochs", 4, "number of snapshot epochs to run");
  Flags.addString("store", "",
                  "cheetah-history-v1 store to append each epoch snapshot "
                  "to (required; created if missing)");
  Flags.addString("run-id-prefix", "epoch",
                  "run ids in the store are <prefix>-<store index>");
  Flags.addString("snapshot-dir", "",
                  "also write each epoch's report JSON into this directory "
                  "as <run-id>.json");
  Flags.addInt("line-budget", 0,
               "line shadow-table byte budget enforced at each epoch "
               "boundary (0 = unbounded)");
  Flags.addInt("page-budget", 0,
               "page shadow-table byte budget (0 = unbounded)");

  std::string Error;
  if (!Flags.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n%s", Error.c_str(),
                 Flags.usage("cheetah-daemon").c_str());
    return 1;
  }
  int64_t Epochs = Flags.getInt("epochs");
  if (Epochs < 1) {
    std::fprintf(stderr, "error: --epochs must be >= 1 (got %lld)\n",
                 static_cast<long long>(Epochs));
    return 1;
  }
  const std::string &StorePath = Flags.getString("store");
  if (StorePath.empty()) {
    std::fprintf(stderr, "error: --store is required\n");
    return 1;
  }
  int64_t LineBudget = Flags.getInt("line-budget");
  int64_t PageBudget = Flags.getInt("page-budget");
  if (LineBudget < 0 || PageBudget < 0) {
    std::fprintf(stderr, "error: budgets must be >= 0\n");
    return 1;
  }

  std::string Name = Flags.getString("workload");
  auto Workload = workloads::createWorkload(Name);
  if (!Workload) {
    std::fprintf(stderr, "error: unknown workload '%s'\n", Name.c_str());
    return 1;
  }

  driver::SessionOptions Options;
  if (!driver::buildSessionOptions(Flags, Options, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  for (const std::string &Warning : Options.Warnings)
    std::fprintf(stderr, "warning: %s\n", Warning.c_str());

  driver::SessionConfig &Config = Options.Config;
  Config.Profiler.Detect.LineShadowBudgetBytes =
      static_cast<size_t>(LineBudget);
  Config.Profiler.Detect.PageShadowBudgetBytes =
      static_cast<size_t>(PageBudget);

  // The persistent profiler: one instance for the daemon's whole lifetime.
  // The workload's program is built against its heap/globals so every
  // epoch's findings resolve to named allocation sites.
  core::Profiler Profiler(Config.Profiler);
  sim::ForkJoinProgram Program =
      driver::buildProgram(*Workload, Profiler, Config);

  // Acquire the trace through the backend seam. Simulator backend: run the
  // workload once with a TraceSource recorder teeing the simulated PMU's
  // stream (to disk too, when --record-trace asks). Trace backend: parse
  // the recorded file, skipping simulation entirely. The profiler is *not*
  // the capture sink — all its traffic arrives through the interpose
  // replay below, the same path a real LD_PRELOAD deployment feeds.
  std::unique_ptr<pmu::TraceSource> Trace =
      driver::makeCaptureSource(Config);
  pmu::SourceStatus Status = Trace->start();
  if (!Status.Available) {
    std::fprintf(stderr, "error: %s\n", Status.Reason.c_str());
    return 1;
  }
  if (Config.Backend == driver::SampleBackend::Simulator) {
    sim::Simulator Sim(Config.Profiler.Geometry, Config.Latency);
    if (Config.Profiler.Topology.multiNode())
      Sim.setTopology(&Config.Profiler.Topology);
    Sim.addObserver(Trace->simObserver());
    sim::SimulationResult Capture = Sim.run(Program);
    Trace->setRunCycles(Capture.TotalCycles);
    pmu::SourceStatus Stopped = Trace->stop();
    if (!Stopped.Available) {
      std::fprintf(stderr, "error: %s\n", Stopped.Reason.c_str());
      return 1;
    }
  }

  // One partition pass over the recorded stream: per-thread sample
  // vectors for the replay threads.
  PartitionSink Partition;
  Trace->replayInto(Partition);

  std::vector<ThreadId> ChildTids;
  size_t CapturedSamples = 0;
  ThreadId MaxTid = 0;
  for (const auto &Entry : Partition.PerThread) {
    CapturedSamples += Entry.second.size();
    if (Entry.first != 0)
      ChildTids.push_back(Entry.first);
    if (Entry.first > MaxTid)
      MaxTid = Entry.first;
  }
  std::fprintf(stderr,
               "cheetah-daemon: captured %zu samples over %zu threads "
               "(%llu cycles); replaying %lld epochs\n",
               CapturedSamples, Partition.PerThread.size(),
               static_cast<unsigned long long>(Trace->runCycles()),
               static_cast<long long>(Epochs));

  // Resume an existing store so restarted daemons keep appending.
  core::ReportHistory History;
  {
    std::string Text;
    if (readFile(StorePath, Text) &&
        !core::ReportHistory::parse(Text, History, Error)) {
      std::fprintf(stderr, "error: %s: %s\n", StorePath.c_str(),
                   Error.c_str());
      return 1;
    }
  }

  driver::PreloadProfilerBridge Bridge(Profiler);
  const std::string &Prefix = Flags.getString("run-id-prefix");
  const std::string &SnapshotDir = Flags.getString("snapshot-dir");

  for (int64_t Epoch = 0; Epoch < Epochs; ++Epoch) {
    // Serial phase: the main thread replays its own captured samples
    // before any child attaches (re-establishing the no-false-sharing
    // latency baseline each epoch, like the real serial prologue would).
    auto MainIt = Partition.PerThread.find(0);
    if (MainIt != Partition.PerThread.end()) {
      for (const pmu::Sample &Sample : MainIt->second)
        interpose::recordSample(Sample);
      interpose::flushThreadSamples();
    }

    // Parallel phase: thread registries assert on id reuse, so every epoch
    // attaches its children under fresh ids (the real daemon sees fresh
    // OS tids on every attach too). Sample Tids are rewritten to match.
    ThreadId Stride = MaxTid + 1;
    std::vector<std::thread> Replayers;
    for (ThreadId Tid : ChildTids)
      Bridge.attachThread(static_cast<ThreadId>(Epoch) * Stride + Tid);
    for (ThreadId Tid : ChildTids) {
      ThreadId EpochTid = static_cast<ThreadId>(Epoch) * Stride + Tid;
      const std::vector<pmu::Sample> &Samples = Partition.PerThread[Tid];
      Replayers.emplace_back([EpochTid, &Samples] {
        interpose::threadAttach();
        for (pmu::Sample Sample : Samples) {
          Sample.Tid = EpochTid;
          interpose::recordSample(Sample);
        }
        interpose::flushThreadSamples();
      });
    }
    for (std::thread &Replayer : Replayers)
      Replayer.join();
    for (ThreadId Tid : ChildTids)
      Bridge.detachThread(static_cast<ThreadId>(Epoch) * Stride + Tid);

    // Epoch boundary: quiesce, stream the full snapshot, then trim the
    // shadow tables back under budget for the next epoch. Every replay
    // thread is joined, so the snapshot races nothing.
    std::string ReportText;
    core::JsonReportSink Sink(ReportText);
    core::ReportRunInfo Info = driver::makeRunInfo(*Workload, Config);
    Info.Tool = "cheetah-daemon";
    Sink.beginRun(Info);
    Profiler.snapshotEpoch(Bridge.elapsedCycles(), &Sink);

    core::ParsedReport Report;
    if (!core::parseRunDocument(ReportText, Report, Error)) {
      std::fprintf(stderr, "error: epoch %lld snapshot: %s\n",
                   static_cast<long long>(Epoch), Error.c_str());
      return 1;
    }
    std::string RunId = Prefix + "-" + std::to_string(History.runs().size());
    if (!History.appendRun(Report, RunId, Error)) {
      std::fprintf(stderr, "error: appending epoch %lld: %s\n",
                   static_cast<long long>(Epoch), Error.c_str());
      return 1;
    }
    // The store is rewritten after every epoch so trend tooling reads a
    // complete, valid ledger at any point in the daemon's life.
    if (!writeFile(StorePath, History.serialize()))
      return 1;
    if (!SnapshotDir.empty() &&
        !writeFile(SnapshotDir + "/" + RunId + ".json", ReportText))
      return 1;

    std::fprintf(
        stderr,
        "cheetah-daemon: epoch %lld -> %s (line footprint %zu/%zu bytes, "
        "%llu grains evicted)\n",
        static_cast<long long>(Epoch), RunId.c_str(),
        Profiler.shadow().footprintBytes(),
        Profiler.shadow().byteBudget(),
        static_cast<unsigned long long>(
            Profiler.shadow().evictedResidue().Grains));
  }

  // Retire the main thread and tear down the ingest wiring; the final
  // report is discarded — every epoch already streamed its own snapshot.
  Bridge.finish();
  std::fprintf(stderr, "cheetah-daemon: %lld epochs appended to %s\n",
               static_cast<long long>(Epochs), StorePath.c_str());
  return 0;
}
