//===- tools/cheetah-diff.cpp - Cheetah report comparison CLI -------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two `cheetah-report-v2`/`v3`/`v4` JSON reports (as written by
/// `cheetah-profile --format=json`): findings are matched by site/page
/// identity and classified as added, removed, or matched (with the
/// predicted-improvement delta). With `--gate=<factor>` the tool becomes a
/// CI regression gate: it exits non-zero when a significant finding at or
/// above the factor appeared or got worse in the new report.
///
/// Examples:
///   cheetah-profile --workload=numa_first_touch --granularity=page \
///       --format=json --output=broken.json
///   cheetah-profile --workload=numa_first_touch --granularity=page \
///       --fix --format=json --output=fixed.json
///   cheetah-diff broken.json fixed.json
///   cheetah-diff --gate=1.1 broken.json fixed.json   # exit 0: no regression
///   cheetah-diff --gate=1.1 fixed.json broken.json   # exit 2: regressed
///   cheetah-diff --format=json old.json new.json | jq .gate
///
/// Exit codes: 0 = compared (gate clean or off), 1 = usage/IO/parse
/// error, 2 = gate regressions found.
///
//===----------------------------------------------------------------------===//

#include "core/report/ReportDiff.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <string>

using namespace cheetah;

namespace {

/// Reads the whole of \p Path into \p Out. \returns false on I/O failure.
bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for reading\n",
                 Path.c_str());
    return false;
  }
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Out.append(Buffer, Read);
  bool Ok = !std::ferror(File);
  std::fclose(File);
  if (!Ok)
    std::fprintf(stderr, "error: failed reading '%s'\n", Path.c_str());
  return Ok;
}

/// Writes \p Text to \p Path ("" or "-" = stdout). \returns false on I/O
/// failure.
bool writeOutput(const std::string &Path, const std::string &Text) {
  if (Path.empty() || Path == "-") {
    std::fputs(Text.c_str(), stdout);
    return true;
  }
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  bool Closed = std::fclose(File) == 0;
  bool Ok = Written == Text.size() && Closed;
  if (!Ok)
    std::fprintf(stderr, "error: short write to '%s'\n", Path.c_str());
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags;
  Flags.addDouble("gate", 0.0,
                  "regression gate: exit 2 when a significant finding in "
                  "NEW has predicted improvement >= this factor and is new "
                  "or worse than in OLD (0 = off)");
  Flags.addString("format", "text", "diff format: text or json");
  Flags.addString("output", "",
                  "write the diff to this file (default: stdout)");

  std::string Error;
  if (!Flags.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n%s", Error.c_str(),
                 Flags.usage("cheetah-diff OLD.json NEW.json").c_str());
    return 1;
  }
  if (Flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "error: expected exactly two report files (got %zu)\n%s",
                 Flags.positional().size(),
                 Flags.usage("cheetah-diff OLD.json NEW.json").c_str());
    return 1;
  }
  const std::string &Format = Flags.getString("format");
  if (Format != "text" && Format != "json") {
    std::fprintf(stderr,
                 "error: --format must be 'text' or 'json' (got '%s')\n",
                 Format.c_str());
    return 1;
  }
  double Gate = Flags.getDouble("gate");
  if (Gate < 0.0) {
    std::fprintf(stderr, "error: --gate must be >= 0 (got %f)\n", Gate);
    return 1;
  }

  core::ParsedReport Reports[2];
  for (int I = 0; I < 2; ++I) {
    const std::string &Path = Flags.positional()[I];
    std::string Text;
    if (!readFile(Path, Text))
      return 1;
    if (!core::parseReport(Text, Reports[I], Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
      return 1;
    }
  }

  core::ReportDiffResult Diff =
      core::diffReports(Reports[0], Reports[1]);
  std::string Rendered = Format == "json"
                             ? core::formatDiffJson(Diff, Gate)
                             : core::formatDiffText(Diff, Gate);
  if (!writeOutput(Flags.getString("output"), Rendered))
    return 1;

  if (Gate > 0.0) {
    size_t Regressions = core::gateRegressions(Diff, Gate).size();
    if (Regressions > 0) {
      std::fprintf(stderr,
                   "cheetah-diff: gate %.4f tripped by %zu regression(s)\n",
                   Gate, Regressions);
      return 2;
    }
  }
  return 0;
}
