//===- tools/cheetah-trend.cpp - Report history / trend CLI ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-scale operation of the report pipeline: folds an ordered
/// sequence of `cheetah-report-v2..v4` reports (or `cheetah-diff-v1`
/// documents) into one versioned `cheetah-history-v1` store, then
/// answers trend questions over it — the N-run generalization of
/// `cheetah-diff`'s single-pair gate.
///
/// Commands:
///   cheetah-trend append --store=FILE [--run-id=ID] REPORT.json...
///       Appends each report as the next run. A missing store file
///       starts an empty store; the result is written back. Run ids
///       default to "run-<index>" and must be unique.
///   cheetah-trend show --store=FILE [--limit=N] [--gate=F] [--bisect=KEY]
///       Prints the ranked fleet-wide view (worst current findings,
///       biggest regressions vs best, per-run new/resolved counts).
///       With --gate=F, exits 2 when any significant finding in the
///       last run sits at or above F after being below it (or absent)
///       at its best historical value. With --bisect=KEY (requires
///       --gate), binary-searches the stored runs and names the exact
///       run that introduced the regression of KEY.
///
/// Examples:
///   cheetah-profile --workload=numa_first_touch --granularity=page \
///       --format=json --output=run1.json
///   cheetah-trend append --store=history.json --run-id=nightly-001 run1.json
///   cheetah-trend show --store=history.json
///   cheetah-trend show --store=history.json --gate=1.2
///   cheetah-trend show --store=history.json --gate=1.2 \
///       --bisect='page:numa_slots#0'
///
/// Exit codes follow the cheetah-diff contract: 0 = clean (or gate
/// off), 1 = usage/IO/parse error, 2 = gate regressions found.
///
//===----------------------------------------------------------------------===//

#include "core/report/ReportHistory.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <string>

using namespace cheetah;

namespace {

/// Reads the whole of \p Path into \p Out. \returns false on I/O failure.
bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for reading\n",
                 Path.c_str());
    return false;
  }
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Out.append(Buffer, Read);
  bool Ok = !std::ferror(File);
  std::fclose(File);
  if (!Ok)
    std::fprintf(stderr, "error: failed reading '%s'\n", Path.c_str());
  return Ok;
}

/// \returns true when \p Path names an existing readable file.
bool fileExists(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  std::fclose(File);
  return true;
}

/// Writes \p Text to \p Path. \returns false on I/O failure.
bool writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  bool Closed = std::fclose(File) == 0;
  bool Ok = Written == Text.size() && Closed;
  if (!Ok)
    std::fprintf(stderr, "error: short write to '%s'\n", Path.c_str());
  return Ok;
}

int usage(const FlagSet &Flags) {
  std::fputs(Flags.usage("cheetah-trend append|show [flags] [REPORT...]")
                 .c_str(),
             stderr);
  return 1;
}

/// Loads the store behind --store. A missing file is an empty store for
/// append (MustExist false) and an error for show.
bool loadStore(const std::string &Path, bool MustExist,
               core::ReportHistory &History) {
  if (!fileExists(Path)) {
    if (!MustExist)
      return true;
    std::fprintf(stderr, "error: cannot open '%s' for reading\n",
                 Path.c_str());
    return false;
  }
  std::string Text;
  if (!readFile(Path, Text))
    return false;
  std::string Error;
  if (!core::ReportHistory::parse(Text, History, Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return false;
  }
  return true;
}

int runAppend(const FlagSet &Flags,
              const std::vector<std::string> &Reports) {
  const std::string &StorePath = Flags.getString("store");
  if (Reports.empty()) {
    std::fprintf(stderr, "error: append needs at least one report file\n");
    return 1;
  }
  const std::string &RunId = Flags.getString("run-id");
  if (!RunId.empty() && Reports.size() > 1) {
    std::fprintf(stderr,
                 "error: --run-id names one run; it cannot cover %zu "
                 "reports\n",
                 Reports.size());
    return 1;
  }

  core::ReportHistory History;
  if (!loadStore(StorePath, /*MustExist=*/false, History))
    return 1;

  for (const std::string &Path : Reports) {
    std::string Text, Error;
    if (!readFile(Path, Text))
      return 1;
    core::ParsedReport Report;
    if (!core::parseRunDocument(Text, Report, Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
      return 1;
    }
    std::string Id = RunId.empty()
                         ? "run-" + std::to_string(History.runs().size())
                         : RunId;
    if (!History.appendRun(Report, Id, Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
      return 1;
    }
    std::printf("appended %s as run %zu (%s): %llu new, %llu resolved, "
                "%llu matched\n",
                Path.c_str(), History.runs().size() - 1, Id.c_str(),
                static_cast<unsigned long long>(
                    History.runs().back().NewFindings),
                static_cast<unsigned long long>(
                    History.runs().back().ResolvedFindings),
                static_cast<unsigned long long>(
                    History.runs().back().MatchedFindings));
  }
  if (!writeFile(StorePath, History.serialize()))
    return 1;
  return 0;
}

int runShow(const FlagSet &Flags) {
  core::ReportHistory History;
  if (!loadStore(Flags.getString("store"), /*MustExist=*/true, History))
    return 1;

  int64_t Limit = Flags.getInt("limit");
  if (Limit < 0) {
    std::fprintf(stderr, "error: --limit must be >= 0 (got %lld)\n",
                 static_cast<long long>(Limit));
    return 1;
  }
  double Gate = Flags.getDouble("gate");
  if (Gate < 0.0) {
    std::fprintf(stderr, "error: --gate must be >= 0 (got %f)\n", Gate);
    return 1;
  }
  const std::string &BisectKey = Flags.getString("bisect");
  if (!BisectKey.empty() && Gate <= 0.0) {
    std::fprintf(stderr,
                 "error: --bisect needs --gate to define the regression "
                 "factor\n");
    return 1;
  }

  if (History.runs().empty()) {
    // An empty store is a fine state for a daemon that has not completed
    // its first epoch yet — report it explicitly and exit clean instead
    // of gating or bisecting nothing.
    std::printf("no runs in store '%s'\n",
                Flags.getString("store").c_str());
    return 0;
  }

  std::fputs(core::formatHistoryText(History, static_cast<size_t>(Limit))
                 .c_str(),
             stdout);

  if (!BisectKey.empty()) {
    if (History.runs().size() < 2) {
      // A single run has no earlier state to transition from; nothing to
      // bisect is not an error.
      std::printf("bisect: %s: no transition to bisect (store has %zu "
                  "run%s)\n",
                  BisectKey.c_str(), History.runs().size(),
                  History.runs().size() == 1 ? "" : "s");
      return 0;
    }
    core::BisectResult Bisect = History.bisect(BisectKey, Gate);
    if (!Bisect.Valid) {
      std::fprintf(stderr, "error: bisect: %s\n", Bisect.Error.c_str());
      return 1;
    }
    if (Bisect.BadFromStart)
      std::printf("bisect: %s already regressing in run 0 (%s) - the "
                  "culprit predates this store (%u probes)\n",
                  BisectKey.c_str(), Bisect.IntroducedRunId.c_str(),
                  Bisect.Probes);
    else
      std::printf("bisect: %s introduced at run %u (%s), %u probes over "
                  "%zu runs\n",
                  BisectKey.c_str(), Bisect.IntroducedIndex,
                  Bisect.IntroducedRunId.c_str(), Bisect.Probes,
                  History.runs().size());
  }

  if (Gate > 0.0) {
    std::vector<core::HistoryGateViolation> Violations =
        History.gate(Gate);
    std::printf("== gate: factor %.4f ==\n", Gate);
    for (const core::HistoryGateViolation &Violation : Violations) {
      const char *Why =
          Violation.Why == core::HistoryGateViolation::Kind::NewSite
              ? "new-site"
              : Violation.Why == core::HistoryGateViolation::Kind::Crossed
                    ? "crossed"
                    : "grew";
      std::printf("  REGRESSION %-8s %s  improvement %.4fx (best %.4fx)\n",
                  Why, Violation.Key.c_str(), Violation.Improvement,
                  Violation.Best);
    }
    std::printf("gate verdict: %zu regression(s)\n", Violations.size());
    if (!Violations.empty()) {
      std::fprintf(stderr,
                   "cheetah-trend: gate %.4f tripped by %zu regression(s)\n",
                   Gate, Violations.size());
      return 2;
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags;
  Flags.addString("store", "", "history store file (cheetah-history-v1)");
  Flags.addString("run-id", "",
                  "id for the appended run (default: run-<index>)");
  Flags.addInt("limit", 0,
               "cap ranked sections of 'show' at this many rows (0 = all)");
  Flags.addDouble("gate", 0.0,
                  "regression gate: exit 2 when a significant finding in "
                  "the last run has predicted improvement >= this factor "
                  "and was below it (or absent) at its best historical "
                  "value (0 = off)");
  Flags.addString("bisect", "",
                  "finding key to bisect: name the run that introduced its "
                  "regression at the --gate factor");

  std::string Error;
  if (!Flags.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return usage(Flags);
  }
  if (Flags.positional().empty()) {
    std::fprintf(stderr, "error: expected a command (append or show)\n");
    return usage(Flags);
  }
  if (Flags.getString("store").empty()) {
    std::fprintf(stderr, "error: --store is required\n");
    return usage(Flags);
  }

  const std::string &Command = Flags.positional().front();
  std::vector<std::string> Rest(Flags.positional().begin() + 1,
                                Flags.positional().end());
  if (Command == "append")
    return runAppend(Flags, Rest);
  if (Command == "show") {
    if (!Rest.empty()) {
      std::fprintf(stderr, "error: show takes no report files\n");
      return usage(Flags);
    }
    return runShow(Flags);
  }
  std::fprintf(stderr, "error: unknown command '%s' (append or show)\n",
               Command.c_str());
  return usage(Flags);
}
