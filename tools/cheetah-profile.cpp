//===- tools/cheetah-profile.cpp - Cheetah CLI -----------------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end: run any modeled workload under the Cheetah
/// profiler and stream its report — Figure-5 text or machine-readable JSON
/// (`cheetah-report-v4`, diffable with `cheetah-diff`) — optionally
/// comparing against the padded ("fixed") variant and against a native
/// (unprofiled) run. Flag validation lives in driver/SessionOptions.h so
/// bad values (and hostile `--numa-topology` files) exit 1 with an error
/// instead of tripping an assert.
///
/// Examples:
///   cheetah-profile --workload=linear_regression --threads=16
///   cheetah-profile --workload=streamcluster --fix --verify
///   cheetah-profile --workload=histogram --format=json --output=run.json
///   cheetah-profile --workload=numa_interleaved --granularity=page
///   cheetah-profile --workload=numa_first_touch --granularity=both \
///       --numa-nodes=4 --format=json
///   cheetah-profile --workload=numa_asymmetric --granularity=page \
///       --numa-topology=topologies/asymmetric4.json --format=json
///   cheetah-profile --workload=numa_first_touch --granularity=page --verify
///   cheetah-profile --list
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "driver/SessionOptions.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <memory>

using namespace cheetah;

namespace {

/// Writes \p Text to \p Path ("" or "-" = stdout). \returns false on I/O
/// failure.
bool writeOutput(const std::string &Path, const std::string &Text) {
  if (Path.empty() || Path == "-") {
    std::fputs(Text.c_str(), stdout);
    return true;
  }
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  bool Closed = std::fclose(File) == 0;
  bool Ok = Written == Text.size() && Closed;
  if (!Ok)
    std::fprintf(stderr, "error: short write to '%s'\n", Path.c_str());
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags;
  driver::addSessionFlags(Flags);
  Flags.addString("format", "text", "report format: text or json");
  Flags.addString("output", "",
                  "write the report to this file (default: stdout)");
  Flags.addBool("verify", false,
                "also run the fixed variant and compare against the "
                "predicted improvement");
  Flags.addBool("native", false, "additionally time a run without Cheetah");
  Flags.addBool("all-instances", false,
                "print every tracked object, not only significant reports");
  Flags.addBool("hex", false, "print counters in hex like the paper");
  Flags.addBool("list", false, "list available workloads and exit");
  Flags.addBool("dump-threads", false,
                "print exact per-thread execution records");

  std::string Error;
  if (!Flags.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n%s", Error.c_str(),
                 Flags.usage("cheetah-profile").c_str());
    return 1;
  }

  if (Flags.getBool("list")) {
    TextTable Table;
    Table.setHeader({"name", "suite", "description"});
    for (const auto &Workload : workloads::createAllWorkloads())
      Table.addRow(
          {Workload->name(), Workload->suite(), Workload->description()});
    std::fputs(Table.render().c_str(), stdout);
    return 0;
  }

  const std::string &Format = Flags.getString("format");
  if (Format != "text" && Format != "json") {
    std::fprintf(stderr, "error: --format must be 'text' or 'json' "
                         "(got '%s')\n",
                 Format.c_str());
    return 1;
  }
  bool Json = Format == "json";
  // In JSON mode the report stream must stay parseable: auxiliary human
  // commentary goes to stderr instead of interleaving with the document.
  std::FILE *Aux = Json ? stderr : stdout;

  std::string Name = Flags.getString("workload");
  auto Workload = workloads::createWorkload(Name);
  if (!Workload) {
    std::fprintf(stderr, "error: unknown workload '%s' (try --list)\n",
                 Name.c_str());
    return 1;
  }

  // All profiling-flag validation (including the topology import) lives in
  // the driver so bad external input errors out instead of asserting.
  driver::SessionOptions Options;
  if (!driver::buildSessionOptions(Flags, Options, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  for (const std::string &Warning : Options.Warnings)
    std::fprintf(stderr, "warning: %s\n", Warning.c_str());

  driver::SessionConfig &Config = Options.Config;
  const std::string &Granularity = Options.Granularity;
  bool TrackPages = Config.Profiler.Detect.TrackPages;
  uint32_t NumaNodes = Config.Profiler.Topology.nodeCount();

  // The report streams through the sink API; everything the sink renders
  // lands in ReportText for the chosen destination.
  std::string ReportText;
  std::unique_ptr<core::ReportSink> Sink;
  if (Json) {
    Sink = std::make_unique<core::JsonReportSink>(ReportText);
  } else {
    core::TextReportSink::Options Options;
    Options.IncludeInsignificant = Flags.getBool("all-instances");
    Options.Format.HexCounters = Flags.getBool("hex");
    Sink = std::make_unique<core::TextReportSink>(ReportText, Options);
  }

  driver::SessionResult Result;
  if (!driver::runSession(*Workload, Config, Sink.get(), Result, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  const core::ProfileResult &Profile = Result.Profile;

  std::fprintf(Aux,
               "== %s (threads=%u scale=%.2f fix=%s granularity=%s "
               "nodes=%u) ==\n",
               Name.c_str(), Config.Workload.Threads, Config.Workload.Scale,
               Config.Workload.FixFalseSharing ? "yes" : "no",
               Granularity.c_str(), NumaNodes);
  std::fprintf(Aux,
               "runtime %s cycles, %s samples (%s filtered), "
               "serial avg latency %.2f cycles, fork-join %s\n",
               formatWithCommas(Profile.AppRuntime).c_str(),
               formatWithCommas(Profile.SamplesDelivered).c_str(),
               formatWithCommas(Profile.Detection.SamplesFiltered).c_str(),
               Profile.SerialAverageLatency,
               Profile.ForkJoinVerified ? "verified" : "NOT fork-join");

  const sim::CoherenceStats &Coherence = Result.Run.Coherence;
  std::fprintf(Aux,
               "coherence: %s accesses, %s hits, %s cold, %s clean-xfer, "
               "%s dirty-xfer, %s upgrades, %s invalidations-sent\n",
               formatWithCommas(Coherence.Accesses).c_str(),
               formatWithCommas(Coherence.LocalHits).c_str(),
               formatWithCommas(Coherence.ColdMisses).c_str(),
               formatWithCommas(Coherence.CleanTransfers).c_str(),
               formatWithCommas(Coherence.DirtyTransfers).c_str(),
               formatWithCommas(Coherence.Upgrades).c_str(),
               formatWithCommas(Coherence.InvalidationsSent).c_str());

  // One line per active grain stage, formatted by the driver: a future
  // third granularity appears here with no tool edits.
  for (const core::GrainStageSummary &Stage : Profile.Stages)
    std::fprintf(Aux, "%s\n", driver::formatStageSummary(Stage).c_str());
  if (TrackPages)
    std::fprintf(Aux, "simulator charged %s remote accesses +%s cycles\n",
                 formatWithCommas(Result.Run.RemoteNumaAccesses).c_str(),
                 formatWithCommas(Result.Run.RemoteNumaExtraCycles).c_str());

  if (Flags.getBool("dump-threads")) {
    TextTable Table;
    Table.setHeader({"tid", "phase", "runtime", "instructions", "mem-accesses",
                     "mem-cycles", "avg-mem-latency"});
    for (const auto &Record : Result.Run.Threads)
      Table.addRow({std::to_string(Record.Tid),
                    std::to_string(Record.PhaseIndex),
                    formatWithCommas(Record.runtime()),
                    formatWithCommas(Record.Instructions),
                    formatWithCommas(Record.MemoryAccesses),
                    formatWithCommas(Record.MemoryCycles),
                    formatString("%.1f", Record.MemoryAccesses
                                             ? static_cast<double>(
                                                   Record.MemoryCycles) /
                                                   Record.MemoryAccesses
                                             : 0.0)});
    std::fputs(Table.render().c_str(), Aux);
    TextTable PhaseTable;
    PhaseTable.setHeader({"phase", "kind", "start", "end", "span", "members"});
    for (const auto &Phase : Result.Run.Phases)
      PhaseTable.addRow({Phase.Name, Phase.Parallel ? "parallel" : "serial",
                         formatWithCommas(Phase.StartCycle),
                         formatWithCommas(Phase.EndCycle),
                         formatWithCommas(Phase.span()),
                         std::to_string(Phase.Members.size())});
    std::fputs(PhaseTable.render().c_str(), Aux);
  }

  const std::string &OutputPath = Flags.getString("output");
  bool ReportOnStdout = OutputPath.empty() || OutputPath == "-";
  if (!Json && ReportOnStdout)
    std::fputs("\n", stdout); // separate the banner from the report
  if (!writeOutput(OutputPath, ReportText))
    return 1;

  if (Flags.getBool("native")) {
    driver::SessionConfig Native = Config;
    Native.EnableProfiler = false;
    // Comparison reruns always simulate: a replayed trace has no native
    // baseline to measure, and re-recording the rerun would clobber the
    // main run's trace.
    Native.Backend = driver::SampleBackend::Simulator;
    Native.ReplayTracePath.clear();
    Native.RecordTracePath.clear();
    driver::SessionResult NativeRun = driver::runWorkload(*Workload, Native);
    double Overhead = static_cast<double>(Result.Run.TotalCycles) /
                          static_cast<double>(NativeRun.Run.TotalCycles) -
                      1.0;
    std::fprintf(Aux, "native runtime %s cycles; Cheetah overhead %.2f%%\n",
                 formatWithCommas(NativeRun.Run.TotalCycles).c_str(),
                 Overhead * 100.0);
  }

  if (Flags.getBool("verify") &&
      (!Profile.Reports.empty() || !Profile.PageReports.empty())) {
    driver::SessionConfig Fixed = Config;
    Fixed.Workload.FixFalseSharing = true;
    Fixed.EnableProfiler = false;
    Fixed.Backend = driver::SampleBackend::Simulator;
    Fixed.ReplayTracePath.clear();
    Fixed.RecordTracePath.clear();
    driver::SessionResult FixedRun = driver::runWorkload(*Workload, Fixed);
    double Real = static_cast<double>(Profile.AppRuntime) /
                  static_cast<double>(FixedRun.Run.TotalCycles);
    // Line findings take precedence; a page-only run verifies against the
    // page assessment (EQ.1-EQ.4 over the finding's site).
    double Predicted =
        !Profile.Reports.empty()
            ? Profile.Reports.front().Impact.ImprovementFactor
            : Profile.PageReports.front().Impact.ImprovementFactor;
    std::fprintf(Aux,
                 "verification: predicted %.2fx, actual (padded rerun) "
                 "%.2fx, diff %+.1f%%\n",
                 Predicted, Real, (Predicted / Real - 1.0) * 100.0);
  }
  return 0;
}
