//===- tools/cheetah-profile.cpp - Cheetah CLI -----------------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end: run any modeled workload under the Cheetah
/// profiler and print its reports, optionally comparing against the padded
/// ("fixed") variant and against a native (unprofiled) run.
///
/// Examples:
///   cheetah-profile --workload=linear_regression --threads=16
///   cheetah-profile --workload=streamcluster --fix --verify
///   cheetah-profile --list
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace cheetah;

int main(int Argc, char **Argv) {
  FlagSet Flags;
  Flags.addString("workload", "linear_regression", "workload model to run");
  Flags.addInt("threads", 16, "child threads per parallel phase");
  Flags.addDouble("scale", 1.0, "work multiplier");
  Flags.addInt("sampling-period", 8192, "instructions between PMU samples");
  Flags.addInt("line-size", 64, "cache line size in bytes");
  Flags.addBool("fix", false, "apply the padding fix to known FS sites");
  Flags.addBool("verify", false,
                "also run the fixed variant and compare against the "
                "predicted improvement");
  Flags.addBool("native", false, "additionally time a run without Cheetah");
  Flags.addBool("all-instances", false,
                "print every tracked object, not only significant reports");
  Flags.addBool("hex", false, "print counters in hex like the paper");
  Flags.addBool("list", false, "list available workloads and exit");
  Flags.addBool("dump-threads", false,
                "print exact per-thread execution records");
  Flags.addInt("seed", 0x43484545, "workload RNG seed");

  std::string Error;
  if (!Flags.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "error: %s\n%s", Error.c_str(),
                 Flags.usage("cheetah-profile").c_str());
    return 1;
  }

  if (Flags.getBool("list")) {
    TextTable Table;
    Table.setHeader({"name", "suite", "description"});
    for (const auto &Workload : workloads::createAllWorkloads())
      Table.addRow(
          {Workload->name(), Workload->suite(), Workload->description()});
    std::fputs(Table.render().c_str(), stdout);
    return 0;
  }

  std::string Name = Flags.getString("workload");
  auto Workload = workloads::createWorkload(Name);
  if (!Workload) {
    std::fprintf(stderr, "error: unknown workload '%s' (try --list)\n",
                 Name.c_str());
    return 1;
  }

  driver::SessionConfig Config;
  Config.Profiler.Geometry =
      CacheGeometry(static_cast<uint64_t>(Flags.getInt("line-size")));
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(
      static_cast<uint64_t>(Flags.getInt("sampling-period")));
  Config.Workload.Threads = static_cast<uint32_t>(Flags.getInt("threads"));
  Config.Workload.Scale = Flags.getDouble("scale");
  Config.Workload.FixFalseSharing = Flags.getBool("fix");
  Config.Workload.Seed = static_cast<uint64_t>(Flags.getInt("seed"));

  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  const core::ProfileResult &Profile = Result.Profile;

  std::printf("== %s (threads=%u scale=%.2f fix=%s) ==\n", Name.c_str(),
              Config.Workload.Threads, Config.Workload.Scale,
              Config.Workload.FixFalseSharing ? "yes" : "no");
  std::printf("runtime %s cycles, %s samples (%s filtered), "
              "serial avg latency %.2f cycles, fork-join %s\n",
              formatWithCommas(Profile.AppRuntime).c_str(),
              formatWithCommas(Profile.SamplesDelivered).c_str(),
              formatWithCommas(Profile.Detection.SamplesFiltered).c_str(),
              Profile.SerialAverageLatency,
              Profile.ForkJoinVerified ? "verified" : "NOT fork-join");

  const sim::CoherenceStats &Coherence = Result.Run.Coherence;
  std::printf("coherence: %s accesses, %s hits, %s cold, %s clean-xfer, "
              "%s dirty-xfer, %s upgrades, %s invalidations-sent\n",
              formatWithCommas(Coherence.Accesses).c_str(),
              formatWithCommas(Coherence.LocalHits).c_str(),
              formatWithCommas(Coherence.ColdMisses).c_str(),
              formatWithCommas(Coherence.CleanTransfers).c_str(),
              formatWithCommas(Coherence.DirtyTransfers).c_str(),
              formatWithCommas(Coherence.Upgrades).c_str(),
              formatWithCommas(Coherence.InvalidationsSent).c_str());

  if (Flags.getBool("dump-threads")) {
    TextTable Table;
    Table.setHeader({"tid", "phase", "runtime", "instructions", "mem-accesses",
                     "mem-cycles", "avg-mem-latency"});
    for (const auto &Record : Result.Run.Threads)
      Table.addRow({std::to_string(Record.Tid),
                    std::to_string(Record.PhaseIndex),
                    formatWithCommas(Record.runtime()),
                    formatWithCommas(Record.Instructions),
                    formatWithCommas(Record.MemoryAccesses),
                    formatWithCommas(Record.MemoryCycles),
                    formatString("%.1f", Record.MemoryAccesses
                                             ? static_cast<double>(
                                                   Record.MemoryCycles) /
                                                   Record.MemoryAccesses
                                             : 0.0)});
    std::fputs(Table.render().c_str(), stdout);
    TextTable PhaseTable;
    PhaseTable.setHeader({"phase", "kind", "start", "end", "span", "members"});
    for (const auto &Phase : Result.Run.Phases)
      PhaseTable.addRow({Phase.Name, Phase.Parallel ? "parallel" : "serial",
                         formatWithCommas(Phase.StartCycle),
                         formatWithCommas(Phase.EndCycle),
                         formatWithCommas(Phase.span()),
                         std::to_string(Phase.Members.size())});
    std::fputs(PhaseTable.render().c_str(), stdout);
  }

  core::ReportFormatOptions Options;
  Options.HexCounters = Flags.getBool("hex");

  const auto &ToPrint = Flags.getBool("all-instances") ? Profile.AllInstances
                                                       : Profile.Reports;
  if (ToPrint.empty()) {
    std::printf("\nNo significant false sharing detected.\n");
  } else {
    std::printf("\n%s\n", core::formatSummaryTable(ToPrint).c_str());
    for (const auto &Report : ToPrint) {
      std::fputs(core::formatReport(Report, Options).c_str(), stdout);
      std::fputs("\n", stdout);
    }
  }

  if (Flags.getBool("native")) {
    driver::SessionConfig Native = Config;
    Native.EnableProfiler = false;
    driver::SessionResult NativeRun = driver::runWorkload(*Workload, Native);
    double Overhead = static_cast<double>(Result.Run.TotalCycles) /
                          static_cast<double>(NativeRun.Run.TotalCycles) -
                      1.0;
    std::printf("native runtime %s cycles; Cheetah overhead %.2f%%\n",
                formatWithCommas(NativeRun.Run.TotalCycles).c_str(),
                Overhead * 100.0);
  }

  if (Flags.getBool("verify") && !Profile.Reports.empty()) {
    driver::SessionConfig Fixed = Config;
    Fixed.Workload.FixFalseSharing = true;
    Fixed.EnableProfiler = false;
    driver::SessionResult FixedRun = driver::runWorkload(*Workload, Fixed);
    double Real = static_cast<double>(Profile.AppRuntime) /
                  static_cast<double>(FixedRun.Run.TotalCycles);
    double Predicted = Profile.Reports.front().Impact.ImprovementFactor;
    std::printf("verification: predicted %.2fx, actual (padded rerun) "
                "%.2fx, diff %+.1f%%\n",
                Predicted, Real, (Predicted / Real - 1.0) * 100.0);
  }
  return 0;
}
