//===- bench/fig4_overhead.cpp - Figure 4 reproduction ---------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: runtime of each of the 17 Phoenix+PARSEC applications under
/// Cheetah, normalized to native (pthreads) execution, at the deployment
/// sampling period of 64K instructions and 16 threads. The paper reports
/// ~7% average overhead with kmeans (224 threads) and x264 (1024 threads)
/// as outliers above 20% due to per-thread PMU setup.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

int main() {
  std::printf("Figure 4: Cheetah runtime overhead, normalized to native "
              "execution (16 threads, 1/64K sampling)\n\n");

  TextTable Table;
  Table.setHeader({"application", "native (cycles)", "cheetah (cycles)",
                   "normalized", "threads created"});
  std::vector<double> Normalized;

  for (auto &Workload : workloads::createAllWorkloads()) {
    if (Workload->suite() == "micro")
      continue;
    driver::SessionConfig Config;
    Config.Workload.Threads = 16;
    Config.Profiler.Pmu.SamplingPeriod = 65536;

    driver::SessionConfig Native = Config;
    Native.EnableProfiler = false;
    uint64_t Baseline =
        driver::runWorkload(*Workload, Native).Run.TotalCycles;

    driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);
    double Ratio = static_cast<double>(Profiled.Run.TotalCycles) /
                   static_cast<double>(Baseline);
    Normalized.push_back(Ratio);

    Table.addRow({Workload->name(), formatWithCommas(Baseline),
                  formatWithCommas(Profiled.Run.TotalCycles),
                  formatString("%.3f", Ratio),
                  std::to_string(Profiled.Run.Threads.size() - 1)});
  }
  Table.addRow({"AVERAGE", "", "",
                formatString("%.3f", arithmeticMean(Normalized)), ""});
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper shape: ~1.07 average; kmeans and x264 highest due "
              "to per-thread PMU setup\n");
  return 0;
}
