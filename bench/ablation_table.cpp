//===- bench/ablation_table.cpp - Two-entry table vs ownership bits --------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation B (paper Section 2.3): the design argument for the two-entry
/// table. Zhao et al.'s ownership bitmap "cannot easily scale to more than
/// 32 threads because of excessive memory consumption, since it needs one
/// bit for every thread". On identical random access streams this harness
/// verifies the invalidation counts agree exactly, then contrasts metadata
/// bytes per cache line as the thread count grows.
///
//===----------------------------------------------------------------------===//

#include "baseline/OwnershipTracker.h"
#include "core/detect/CacheLineTable.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace cheetah;

int main() {
  std::printf("Ablation B: two-entry table vs per-thread ownership bits\n\n");
  TextTable Table;
  Table.setHeader({"threads", "accesses", "table invalidations",
                   "ownership invalidations", "agree",
                   "table bytes/line", "ownership bytes/line"});

  CacheGeometry Geometry(64);
  for (uint32_t Threads : {2u, 8u, 16u, 32u, 64u, 128u, 512u, 1024u}) {
    SplitMix64 Rng(0xab54a98ceb1f0ad2ull + Threads);
    core::CacheLineTable LineTable;
    baseline::OwnershipTracker Ownership(Geometry, Threads);

    constexpr uint64_t Accesses = 200000;
    uint64_t TableInvalidations = 0;
    for (uint64_t I = 0; I < Accesses; ++I) {
      ThreadId Tid = static_cast<ThreadId>(Rng.nextBelow(Threads));
      AccessKind Kind =
          Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read;
      TableInvalidations += LineTable.recordAccess(Tid, Kind);
      Ownership.recordAccess(0x1000, Tid, Kind);
    }

    Table.addRow({std::to_string(Threads), formatWithCommas(Accesses),
                  formatWithCommas(TableInvalidations),
                  formatWithCommas(Ownership.invalidations()),
                  TableInvalidations == Ownership.invalidations() ? "yes"
                                                                  : "NO",
                  std::to_string(sizeof(core::CacheLineTable)),
                  std::to_string(Ownership.bytesPerLine())});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nexpected shape: identical invalidation counts at every "
              "thread count; ownership metadata grows linearly with "
              "threads while the table stays constant\n");
  return 0;
}
