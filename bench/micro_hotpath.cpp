//===- bench/micro_hotpath.cpp - Hot-path micro-costs ----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-costs of the operations on Cheetah's per-sample
/// hot path (shadow lookup, two-entry table update, detailed line record,
/// heap allocation, coherence step). These bound the constant behind the
/// "handling of each sampled memory access" overhead the paper discusses in
/// Section 4.1.
///
/// The *_ThreadedIngest benchmarks drive the same detection hot path from
/// 1..8 concurrent threads; compare their aggregate items_per_second to see
/// the multi-threaded ingestion scaling. BM_ThreadedIngest runs the
/// build's native path (lock-free CAS by default, striped-mutex when
/// configured with -DCHEETAH_LOCKED_TABLE=ON), while
/// BM_ThreadedIngestStripedLock wraps the same detector in a PR-1-style
/// 64-stripe mutex harness inside the benchmark, and
/// BM_ThreadedIngestSharded drives the epoch-sharded accumulation path
/// (stage-1 gate + per-thread shard record + quiesce merge) — so a single
/// run reports shared, locked, and sharded throughput side by side at
/// every thread count without rebuilding.
///
/// `micro_hotpath --emit-ingest-json=PATH` skips google-benchmark and runs
/// the dedicated ingest sweep instead: shared vs locked vs sharded vs
/// batched (the staged handleBatch pipeline) at 1..8 threads, the
/// single-threaded trace-replay delivery row (BM_TraceReplay's sweep
/// counterpart), plus the decode dimension — the scalar and SIMD
/// sample-decode kernels at batch sizes 1/16/64/256 — written as the
/// machine-readable `BENCH_ingest.json` (samples/sec/core) that tracks
/// the ingestion-throughput trajectory across PRs.
///
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/detect/BatchDecode.h"
#include "core/detect/CacheLineTable.h"
#include "core/detect/Detector.h"
#include "core/detect/PageInfo.h"
#include "core/detect/PageTable.h"
#include "core/detect/ShadowMemory.h"
#include "mem/NumaTopology.h"
#include "pmu/TraceSource.h"
#include "runtime/HeapAllocator.h"
#include "sim/CoherenceModel.h"
#include "support/Random.h"

#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace cheetah;

namespace {

void BM_TwoEntryTableUpdate(benchmark::State &State) {
  core::CacheLineTable Table;
  SplitMix64 Rng(1);
  for (auto _ : State) {
    bool Invalidation = Table.recordAccess(
        static_cast<ThreadId>(Rng.nextBelow(8)),
        Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read);
    benchmark::DoNotOptimize(Invalidation);
  }
}
BENCHMARK(BM_TwoEntryTableUpdate);

/// The packed table's CAS loop under genuine contention: every benchmark
/// thread hammers one shared table with a ping-pong write mix, the
/// worst case for the single-word compare-and-swap.
void BM_TwoEntryTableContended(benchmark::State &State) {
  static core::CacheLineTable *Table = nullptr;
  if (State.thread_index() == 0)
    Table = new core::CacheLineTable();

  SplitMix64 Rng(40 + State.thread_index());
  ThreadId Tid = static_cast<ThreadId>(State.thread_index());
  for (auto _ : State) {
    bool Invalidation = Table->recordAccess(
        Tid, Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read);
    benchmark::DoNotOptimize(Invalidation);
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Table;
    Table = nullptr;
  }
}
BENCHMARK(BM_TwoEntryTableContended)->ThreadRange(1, 8)->UseRealTime();

void BM_ShadowWriteCount(benchmark::State &State) {
  CacheGeometry Geometry(64);
  core::ShadowMemory Shadow(Geometry, {{0x40000000, 16 << 20}});
  SplitMix64 Rng(2);
  for (auto _ : State) {
    uint64_t Address = 0x40000000 + Rng.nextBelow(16 << 20);
    benchmark::DoNotOptimize(Shadow.noteWrite(Address));
  }
}
BENCHMARK(BM_ShadowWriteCount);

void BM_DetectorHandleSample(benchmark::State &State) {
  CacheGeometry Geometry(64);
  core::ShadowMemory Shadow(Geometry, {{0x40000000, 1 << 20}});
  core::DetectorConfig Config;
  core::Detector Detect(Geometry, Shadow, Config);
  SplitMix64 Rng(3);
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address = 0x40000000 + (Rng.nextBelow(256) * 8);
    Sample.Tid = static_cast<ThreadId>(Rng.nextBelow(16));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    benchmark::DoNotOptimize(Detect.handleSample(Sample, true));
  }
}
BENCHMARK(BM_DetectorHandleSample);

/// The same detection hot path through the staged batch pipeline — vector
/// decode, prefetched stage-1 sweep, branchless filter, prefetched detail
/// lookups — over full 256-sample chunks. Compare items_per_second against
/// BM_DetectorHandleSample for the batching win.
void BM_DetectorHandleBatch(benchmark::State &State) {
  CacheGeometry Geometry(64);
  core::ShadowMemory Shadow(Geometry, {{0x40000000, 1 << 20}});
  core::DetectorConfig Config;
  core::Detector Detect(Geometry, Shadow, Config);
  SplitMix64 Rng(3);
  std::vector<pmu::Sample> Batch(256);
  for (auto _ : State) {
    for (pmu::Sample &Sample : Batch) {
      Sample.Address = 0x40000000 + (Rng.nextBelow(256) * 8);
      Sample.Tid = static_cast<ThreadId>(Rng.nextBelow(16));
      Sample.IsWrite = Rng.nextBool(0.7);
      Sample.LatencyCycles = 40;
    }
    benchmark::DoNotOptimize(
        Detect.handleBatch(Batch.data(), Batch.size(), true));
  }
  State.SetItemsProcessed(State.iterations() * Batch.size());
}
BENCHMARK(BM_DetectorHandleBatch);

/// One continuous-profiling epoch boundary under a byte budget: quiesce,
/// rank every materialized grain coldest-first, evict down to the budget,
/// reclaim, then re-materialize a fresh working set for the next
/// iteration. This is the daemon's per-epoch maintenance cost — the price
/// of bounded memory, paid outside the ingest hot path.
void BM_EvictionEpochBoundary(benchmark::State &State) {
  CacheGeometry Geometry(64);
  core::ShadowMemory Shadow(Geometry, {{0x40000000, 1 << 20}});
  core::DetectorConfig Config;
  Config.WriteThreshold = 0;
  core::Detector Detect(Geometry, Shadow, Config);
  Shadow.setByteBudget(1); // below the slab floor: every epoch evicts all
  SplitMix64 Rng(11);
  constexpr size_t GrainsPerEpoch = 1024;
  for (auto _ : State) {
    State.PauseTiming();
    for (size_t I = 0; I < GrainsPerEpoch; ++I) {
      pmu::Sample Sample;
      Sample.Address = 0x40000000 + Rng.nextBelow(GrainsPerEpoch) * 64;
      Sample.Tid = static_cast<ThreadId>(Rng.nextBelow(8));
      Sample.IsWrite = true;
      Sample.LatencyCycles = 40;
      Detect.handleSample(Sample, true);
    }
    State.ResumeTiming();
    Detect.quiesce();
    benchmark::DoNotOptimize(Shadow.enforceBudget());
  }
  State.SetItemsProcessed(State.iterations() * GrainsPerEpoch);
}
BENCHMARK(BM_EvictionEpochBoundary);

void BM_HeapAllocateFree(benchmark::State &State) {
  CacheGeometry Geometry(64);
  runtime::HeapAllocator Heap(0x40000000, 256 << 20, Geometry);
  for (auto _ : State) {
    uint64_t Address = Heap.allocate(64, 0, 0);
    benchmark::DoNotOptimize(Address);
    Heap.deallocate(Address, 0);
  }
}
BENCHMARK(BM_HeapAllocateFree);

void BM_HeapObjectLookup(benchmark::State &State) {
  CacheGeometry Geometry(64);
  runtime::HeapAllocator Heap(0x40000000, 64 << 20, Geometry);
  std::vector<uint64_t> Objects;
  for (int I = 0; I < 4096; ++I)
    Objects.push_back(Heap.allocate(64, 0, 0));
  SplitMix64 Rng(4);
  for (auto _ : State) {
    uint64_t Address = Objects[Rng.nextBelow(Objects.size())] + 13;
    benchmark::DoNotOptimize(Heap.objectAt(Address));
  }
}
BENCHMARK(BM_HeapObjectLookup);

void BM_CoherenceAccess(benchmark::State &State) {
  CacheGeometry Geometry(64);
  sim::LatencyModel Latency;
  sim::CoherenceModel Model(Geometry, Latency);
  SplitMix64 Rng(5);
  uint64_t Now = 0;
  for (auto _ : State) {
    MemoryAccess Access =
        Rng.nextBool(0.5)
            ? MemoryAccess::write(0x1000 + Rng.nextBelow(64) * 64)
            : MemoryAccess::read(0x1000 + Rng.nextBelow(64) * 64);
    benchmark::DoNotOptimize(
        Model.access(static_cast<ThreadId>(Rng.nextBelow(8)), Access, Now));
    Now += 7;
  }
}
BENCHMARK(BM_CoherenceAccess);

//===----------------------------------------------------------------------===//
// Multi-threaded ingestion scaling
//===----------------------------------------------------------------------===//

/// Shared detection state for the threaded benchmarks, set up by thread 0
/// (google-benchmark synchronizes all threads on the iteration barrier
/// before the timed loop and after it, so this is race-free).
struct IngestHarness {
  CacheGeometry Geometry{64};
  core::ShadowMemory Shadow;
  core::Detector Detect;

  explicit IngestHarness(uint64_t Lines)
      : Shadow(Geometry, {{0x4000'0000, Lines * 64}}),
        Detect(Geometry, Shadow, core::DetectorConfig{}) {}
};

constexpr uint64_t LinesPerIngestThread = 4096;

/// Aggregate sample-ingest throughput: each thread feeds the shared
/// detector samples over its own slice of the monitored region (the
/// realistic deployment shape — application threads mostly touch their own
/// data, while all profiler metadata stays shared).
void BM_ThreadedIngest(benchmark::State &State) {
  static IngestHarness *Harness = nullptr;
  if (State.thread_index() == 0)
    Harness = new IngestHarness(LinesPerIngestThread * State.threads());

  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  SplitMix64 Rng(100 + State.thread_index());
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address =
        SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
        Rng.nextBelow(16) * 4;
    Sample.Tid =
        static_cast<ThreadId>(State.thread_index() * 4 + Rng.nextBelow(4));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    benchmark::DoNotOptimize(Harness->Detect.handleSample(Sample, true));
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Harness;
    Harness = nullptr;
  }
}
BENCHMARK(BM_ThreadedIngest)->ThreadRange(1, 8)->UseRealTime();

/// The PR-1 locked design, reproduced in-harness: the same detector calls,
/// serialized by a 64-stripe mutex array keyed by line index exactly as
/// ShadowMemory::lineLock used to do. Comparing this row against
/// BM_ThreadedIngest at the same thread count is the locked-vs-lock-free
/// A/B the CHEETAH_LOCKED_TABLE toggle exists for, without rebuilding.
void BM_ThreadedIngestStripedLock(benchmark::State &State) {
  static IngestHarness *Harness = nullptr;
  static std::mutex *Stripes = nullptr;
  constexpr size_t StripeCount = 64;
  if (State.thread_index() == 0) {
    Harness = new IngestHarness(LinesPerIngestThread * State.threads());
    Stripes = new std::mutex[StripeCount];
  }

  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  SplitMix64 Rng(300 + State.thread_index());
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address =
        SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
        Rng.nextBelow(16) * 4;
    Sample.Tid =
        static_cast<ThreadId>(State.thread_index() * 4 + Rng.nextBelow(4));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    uint64_t Line = Sample.Address >> 6;
    std::lock_guard<std::mutex> Lock(
        Stripes[(Line * 0x9e3779b97f4a7c15ull) >> 58]);
    benchmark::DoNotOptimize(Harness->Detect.handleSample(Sample, true));
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Harness;
    Harness = nullptr;
    delete[] Stripes;
    Stripes = nullptr;
  }
}
BENCHMARK(BM_ThreadedIngestStripedLock)->ThreadRange(1, 8)->UseRealTime();

/// One sample through the epoch-sharded accumulation path, in-harness:
/// the same stage-1 susceptibility gate and detail materialization the
/// detector's line stage runs, with the additive record going to this
/// thread's shard instead of the shared atomics. Callers quiesce() the
/// table at the epoch boundary.
inline void ingestSampleSharded(IngestHarness &Harness,
                                const pmu::Sample &Sample) {
  uint32_t Writes = Sample.IsWrite
                        ? Harness.Shadow.noteWrite(Sample.Address)
                        : Harness.Shadow.writeCount(Sample.Address);
  if (Writes <= core::DetectorConfig{}.WriteThreshold)
    return;
  uint64_t Base = Harness.Shadow.lineBase(Sample.Address);
  core::CacheLineInfo &Info = Harness.Shadow.materializeDetail(Base);
  Harness.Shadow.recordSharded(
      Base, Info, Sample.Tid, Sample.Tid,
      Sample.IsWrite ? AccessKind::Write : AccessKind::Read,
      Harness.Geometry.wordInLine(Sample.Address), /*Span=*/1,
      Sample.LatencyCycles);
}

/// The CHEETAH_SHARDED_TABLE ingestion design, runnable from any build:
/// per-thread shard accumulation with zero cross-thread CAS traffic
/// beyond the shared two-entry table transition, merged back once at the
/// end of the run. Compare against BM_ThreadedIngest (shared atomics) and
/// BM_ThreadedIngestStripedLock (PR-1 mutexes) at the same thread count.
void BM_ThreadedIngestSharded(benchmark::State &State) {
  static IngestHarness *Harness = nullptr;
  if (State.thread_index() == 0)
    Harness = new IngestHarness(LinesPerIngestThread * State.threads());

  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  SplitMix64 Rng(700 + State.thread_index());
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address =
        SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
        Rng.nextBelow(16) * 4;
    Sample.Tid =
        static_cast<ThreadId>(State.thread_index() * 4 + Rng.nextBelow(4));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    ingestSampleSharded(*Harness, Sample);
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    Harness->Shadow.quiesce(); // the epoch merge is part of the design
    delete Harness;
    Harness = nullptr;
  }
}
BENCHMARK(BM_ThreadedIngestSharded)->ThreadRange(1, 8)->UseRealTime();

//===----------------------------------------------------------------------===//
// Page-granularity (NUMA) hot path
//===----------------------------------------------------------------------===//

/// Single-thread cost of one page-stage detail record (packed node table
/// CAS + per-line histogram + per-node accumulators).
void BM_PageInfoRecord(benchmark::State &State) {
  core::PageInfo Info(4096 / 64);
  SplitMix64 Rng(6);
  for (auto _ : State) {
    NodeId Node = static_cast<NodeId>(Rng.nextBelow(2));
    bool Invalidation = Info.recordAccess(
        Node, Node, Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read,
        Rng.nextBelow(64), 40, Node != 0);
    benchmark::DoNotOptimize(Invalidation);
  }
}
BENCHMARK(BM_PageInfoRecord);

/// The packed node table under genuine contention: every benchmark thread
/// hammers one shared PageInfo from its own simulated node — the worst
/// case for the page layer's single-word CAS, mirroring
/// BM_TwoEntryTableContended one level up.
void BM_PageInfoContended(benchmark::State &State) {
  static core::PageInfo *Info = nullptr;
  if (State.thread_index() == 0)
    Info = new core::PageInfo(4096 / 64);

  SplitMix64 Rng(60 + State.thread_index());
  NodeId Node = static_cast<NodeId>(State.thread_index() % 2);
  for (auto _ : State) {
    bool Invalidation = Info->recordAccess(
        static_cast<ThreadId>(State.thread_index()), Node,
        Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read,
        Rng.nextBelow(64), 40, Node != 0);
    benchmark::DoNotOptimize(Invalidation);
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Info;
    Info = nullptr;
  }
}
BENCHMARK(BM_PageInfoContended)->ThreadRange(1, 8)->UseRealTime();

/// Aggregate ingest throughput with the page stage on (line + page): the
/// page-mode counterpart of BM_ThreadedIngest, comparable row-for-row to
/// measure what the second granularity costs, in both CHEETAH_LOCKED_TABLE
/// build modes (the locked build serializes page detail through the
/// striped page mutexes exactly like the line path).
void BM_ThreadedIngestPageMode(benchmark::State &State) {
  struct PageHarness {
    NumaTopology Topology{2, 4096};
    CacheGeometry Geometry{64};
    core::ShadowMemory Shadow;
    core::PageTable Pages;
    core::Detector Detect;

    explicit PageHarness(uint64_t Lines)
        : Shadow(Geometry, {{0x4000'0000, Lines * 64}}),
          Pages(Topology, Geometry, {{0x4000'0000, Lines * 64}}),
          Detect(Geometry, Shadow, [] {
            core::DetectorConfig Config;
            Config.TrackPages = true;
            return Config;
          }()) {
      Detect.attachPageTable(Pages, Topology);
    }
  };
  static PageHarness *Harness = nullptr;
  if (State.thread_index() == 0)
    Harness = new PageHarness(LinesPerIngestThread * State.threads());

  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  SplitMix64 Rng(500 + State.thread_index());
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address =
        SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
        Rng.nextBelow(16) * 4;
    Sample.Tid =
        static_cast<ThreadId>(State.thread_index() * 4 + Rng.nextBelow(4));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    benchmark::DoNotOptimize(Harness->Detect.handleSample(Sample, true));
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Harness;
    Harness = nullptr;
  }
}
BENCHMARK(BM_ThreadedIngestPageMode)->ThreadRange(1, 8)->UseRealTime();

/// Same scaling through the profiler's batched ingest API, including the
/// per-batch registry/phase bookkeeping the per-thread buffers amortize.
void BM_ProfilerBatchedIngest(benchmark::State &State) {
  constexpr unsigned BatchSize = 256;
  static core::Profiler *Prof = nullptr;
  if (State.thread_index() == 0) {
    Prof = new core::Profiler(core::ProfilerConfig{});
    Prof->threadStarted(0, /*IsMain=*/true, 0);
    for (int T = 1; T <= State.threads(); ++T)
      Prof->threadStarted(static_cast<ThreadId>(T), /*IsMain=*/false, 10);
  }

  SplitMix64 Rng(200 + State.thread_index());
  ThreadId Tid = static_cast<ThreadId>(State.thread_index() + 1);
  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  std::vector<pmu::Sample> Batch(BatchSize);
  for (auto _ : State) {
    for (pmu::Sample &Sample : Batch) {
      Sample.Address = SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
                       Rng.nextBelow(16) * 4;
      Sample.Tid = Tid;
      Sample.IsWrite = Rng.nextBool(0.7);
      Sample.LatencyCycles = 40;
    }
    Prof->ingestBatch(Batch.data(), Batch.size());
  }
  State.SetItemsProcessed(State.iterations() * BatchSize);

  if (State.thread_index() == 0) {
    delete Prof;
    Prof = nullptr;
  }
}
BENCHMARK(BM_ProfilerBatchedIngest)->ThreadRange(1, 8)->UseRealTime();

//===----------------------------------------------------------------------===//
// Trace replay delivery
//===----------------------------------------------------------------------===//

/// Minimal inner backend so a record-mode TraceSource can be built without
/// a simulator behind it.
struct NullSource : pmu::SampleSource {
  const char *name() const override { return "null"; }
  pmu::SourceStatus start() override { return {true, ""}; }
  pmu::SourceStatus stop() override { return {true, ""}; }
  uint64_t samplesDelivered() const override { return 0; }
};

/// Buffers a deterministic recorded stream into \p Tee's in-memory trace:
/// a main-thread lifecycle bracketing \p SampleCount samples over the
/// ingest harness's address slice (same generator as the ingest sweeps).
void recordSyntheticTrace(pmu::TraceSource &Tee, uint64_t SampleCount) {
  Tee.threadStarted(0, /*IsMain=*/true, 0);
  SplitMix64 Rng(1500);
  pmu::Sample Sample;
  for (uint64_t I = 0; I < SampleCount; ++I) {
    Sample.Address = 0x4000'0000 + Rng.nextBelow(LinesPerIngestThread) * 64 +
                     Rng.nextBelow(16) * 4;
    Sample.Tid = 0;
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    Sample.Timestamp = I;
    Tee.ingestBatch(&Sample, 1);
  }
  Tee.threadFinished(0, /*IsMain=*/true, SampleCount);
}

/// Detector-backed sink: replayed samples land on the real detection hot
/// path, so replay throughput compares row-for-row with the live ingest
/// modes.
struct DetectorSink : pmu::SampleSink {
  core::Detector &Detect;
  explicit DetectorSink(core::Detector &Detect) : Detect(Detect) {}
  void threadStarted(ThreadId, bool, uint64_t) override {}
  void threadFinished(ThreadId, bool, uint64_t) override {}
  void ingestBatch(const pmu::Sample *Samples, size_t Count) override {
    for (size_t I = 0; I < Count; ++I)
      benchmark::DoNotOptimize(Detect.handleSample(Samples[I], true));
  }
};

/// Replay delivery cost: one pass of an in-memory `cheetah-trace-v1`
/// event stream through the SampleSink shape into the detector —
/// batches of one in recorded order, exactly what `--backend=trace:FILE`
/// pays per sample on top of the detection work itself.
void BM_TraceReplay(benchmark::State &State) {
  constexpr uint64_t SampleCount = 4096;
  pmu::TraceSource Tee(std::make_unique<NullSource>(), /*Path=*/"",
                       /*SamplingPeriod=*/64);
  recordSyntheticTrace(Tee, SampleCount);
  IngestHarness Harness(LinesPerIngestThread);
  DetectorSink Sink(Harness.Detect);
  for (auto _ : State)
    benchmark::DoNotOptimize(Tee.replayInto(Sink));
  State.SetItemsProcessed(State.iterations() * SampleCount);
}
BENCHMARK(BM_TraceReplay);

//===----------------------------------------------------------------------===//
// BENCH_ingest.json: the checked-in ingestion-throughput trajectory
//===----------------------------------------------------------------------===//

/// One row of the ingest sweep: \p Mode at \p Threads ingest threads.
struct IngestSweepRow {
  std::string Mode;
  unsigned Threads = 0;
  uint64_t Samples = 0;
  double Seconds = 0.0;
};

/// Runs \p SamplesPerThread samples on each of \p Threads threads through
/// one ingestion mode and returns the timed row. Sample generation and
/// slice layout match the BM_ThreadedIngest* benchmarks; all threads
/// start on a barrier so the wall-clock window covers only ingestion
/// (plus, for the sharded mode, the epoch merge — it is part of that
/// design's cost).
IngestSweepRow runIngestSweep(const std::string &Mode, unsigned Threads,
                              uint64_t SamplesPerThread) {
  IngestHarness Harness(LinesPerIngestThread * Threads);
  constexpr size_t StripeCount = 64;
  std::vector<std::mutex> Stripes(StripeCount);

  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(900 + T);
      uint64_t SliceBase = 0x4000'0000 + uint64_t(T) * LinesPerIngestThread * 64;
      pmu::Sample Sample;
      while (!Go.load(std::memory_order_acquire)) {
      }
      if (Mode == "batched") {
        // The staged pipeline: identical sample stream, delivered in
        // 256-sample batches through handleBatch.
        std::vector<pmu::Sample> Batch(core::DecodedBatch::Capacity);
        for (uint64_t I = 0; I < SamplesPerThread;) {
          size_t N = static_cast<size_t>(
              std::min<uint64_t>(Batch.size(), SamplesPerThread - I));
          for (size_t J = 0; J < N; ++J) {
            Batch[J].Address = SliceBase +
                               Rng.nextBelow(LinesPerIngestThread) * 64 +
                               Rng.nextBelow(16) * 4;
            Batch[J].Tid = static_cast<ThreadId>(T * 4 + Rng.nextBelow(4));
            Batch[J].IsWrite = Rng.nextBool(0.7);
            Batch[J].LatencyCycles = 40;
          }
          benchmark::DoNotOptimize(
              Harness.Detect.handleBatch(Batch.data(), N, true));
          I += N;
        }
        return;
      }
      for (uint64_t I = 0; I < SamplesPerThread; ++I) {
        Sample.Address = SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
                         Rng.nextBelow(16) * 4;
        Sample.Tid = static_cast<ThreadId>(T * 4 + Rng.nextBelow(4));
        Sample.IsWrite = Rng.nextBool(0.7);
        Sample.LatencyCycles = 40;
        if (Mode == "shared") {
          benchmark::DoNotOptimize(Harness.Detect.handleSample(Sample, true));
        } else if (Mode == "locked") {
          uint64_t Line = Sample.Address >> 6;
          std::lock_guard<std::mutex> Lock(
              Stripes[(Line * 0x9e3779b97f4a7c15ull) >> 58]);
          benchmark::DoNotOptimize(Harness.Detect.handleSample(Sample, true));
        } else {
          ingestSampleSharded(Harness, Sample);
        }
      }
    });

  auto Start = std::chrono::steady_clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &Worker : Workers)
    Worker.join();
  if (Mode == "sharded")
    Harness.Shadow.quiesce();
  auto End = std::chrono::steady_clock::now();

  IngestSweepRow Row;
  Row.Mode = Mode;
  Row.Threads = Threads;
  Row.Samples = SamplesPerThread * Threads;
  Row.Seconds = std::chrono::duration<double>(End - Start).count();
  return Row;
}

/// One row of the decode-kernel sweep: the \p Kernel decode path at
/// \p Batch samples per decode() call.
struct DecodeSweepRow {
  std::string Kernel;    // requested: "scalar" or "simd"
  std::string Effective; // kernel actually dispatched to
  size_t Batch = 0;
  uint64_t Samples = 0;
  double Seconds = 0.0;
};

/// Times the pure decode front (coverage + word/span arithmetic) over a
/// pregenerated sample stream at one batch size, single-threaded — the
/// isolated kernel cost behind the batched mode's first stage. The "simd"
/// request silently degrades to scalar when the AVX2 kernel is compiled
/// out or unsupported (the Effective field records what actually ran), so
/// the sweep emits the same row set in every build.
DecodeSweepRow runDecodeSweep(const std::string &Kernel, size_t Batch,
                              uint64_t TotalSamples) {
  CacheGeometry Geometry(64);
  std::vector<core::ShadowRegion> Regions{
      {0x4000'0000, LinesPerIngestThread * 64}};
  core::BatchDecoder Decoder(Geometry, Regions,
                             /*ForceScalar=*/Kernel == "scalar");

  SplitMix64 Rng(1200);
  std::vector<pmu::Sample> Samples(core::DecodedBatch::Capacity);
  for (pmu::Sample &Sample : Samples) {
    // Mostly covered addresses with an uncovered tail, like a real stream.
    Sample.Address = Rng.nextBool(0.9)
                         ? 0x4000'0000 +
                               Rng.nextBelow(LinesPerIngestThread) * 64 +
                               Rng.nextBelow(16) * 4
                         : Rng.nextBelow(1ull << 40);
  }
  core::DecodedBatch Out;

  auto Start = std::chrono::steady_clock::now();
  uint64_t Done = 0;
  while (Done < TotalSamples) {
    Decoder.decode(Samples.data(), Batch, /*AccessBytes=*/4, Out);
    benchmark::DoNotOptimize(Out.Covered[0]);
    benchmark::DoNotOptimize(Out.Span[Batch - 1]);
    Done += Batch;
  }
  auto End = std::chrono::steady_clock::now();

  DecodeSweepRow Row;
  Row.Kernel = Kernel;
  Row.Effective = core::decodeKernelName(Decoder.kernel());
  Row.Batch = Batch;
  Row.Samples = Done;
  Row.Seconds = std::chrono::duration<double>(End - Start).count();
  return Row;
}

/// Times replay of an in-memory recorded trace through the detector sink:
/// the `--backend=trace:FILE` delivery path as an ingestion mode.
/// Single-threaded by construction — replay is an ordered stream.
IngestSweepRow runReplaySweep(uint64_t TotalSamples) {
  constexpr uint64_t TraceSamples = 1 << 16;
  pmu::TraceSource Tee(std::make_unique<NullSource>(), /*Path=*/"",
                       /*SamplingPeriod=*/64);
  recordSyntheticTrace(Tee, TraceSamples);
  IngestHarness Harness(LinesPerIngestThread);
  DetectorSink Sink(Harness.Detect);

  auto Start = std::chrono::steady_clock::now();
  uint64_t Done = 0;
  while (Done < TotalSamples)
    Done += Tee.replayInto(Sink);
  auto End = std::chrono::steady_clock::now();

  IngestSweepRow Row;
  Row.Mode = "replay";
  Row.Threads = 1;
  Row.Samples = Done;
  Row.Seconds = std::chrono::duration<double>(End - Start).count();
  return Row;
}

/// Writes the shared/locked/sharded/batched x 1..8-thread sweep, the
/// single-threaded trace-replay row, plus the decode-kernel dimension to
/// \p Path as the `cheetah-bench-ingest-v3` document. \returns false on
/// I/O failure.
bool emitIngestJson(const std::string &Path) {
  constexpr uint64_t SamplesPerThread = 1'000'000;
  std::vector<IngestSweepRow> Rows;
  for (const char *Mode : {"shared", "locked", "sharded", "batched"})
    for (unsigned Threads = 1; Threads <= 8; ++Threads) {
      Rows.push_back(runIngestSweep(Mode, Threads, SamplesPerThread));
      std::fprintf(stderr, "%-7s %u threads: %.1fM samples/sec/core\n",
                   Mode, Threads,
                   static_cast<double>(Rows.back().Samples) /
                       Rows.back().Seconds / Threads / 1e6);
    }
  Rows.push_back(runReplaySweep(SamplesPerThread));
  std::fprintf(stderr, "replay  1 threads: %.1fM samples/sec/core\n",
               static_cast<double>(Rows.back().Samples) /
                   Rows.back().Seconds / 1e6);

  constexpr uint64_t DecodeSamples = 64'000'000;
  std::vector<DecodeSweepRow> DecodeRows;
  for (const char *Kernel : {"scalar", "simd"})
    for (size_t Batch : {size_t(1), size_t(16), size_t(64), size_t(256)}) {
      DecodeRows.push_back(runDecodeSweep(Kernel, Batch, DecodeSamples));
      std::fprintf(stderr, "decode %-6s (%s) batch %-3zu: %.0fM samples/sec\n",
                   Kernel, DecodeRows.back().Effective.c_str(), Batch,
                   static_cast<double>(DecodeRows.back().Samples) /
                       DecodeRows.back().Seconds / 1e6);
    }

  std::string Text;
  JsonWriter Writer(Text);
  Writer.beginObject();
  Writer.member("schema", "cheetah-bench-ingest-v3");
#if CHEETAH_SHARDED_TABLE
  Writer.member("build_mode", "sharded-table");
#elif CHEETAH_LOCKED_TABLE
  Writer.member("build_mode", "locked-table");
#else
  Writer.member("build_mode", "lock-free");
#endif
  Writer.member("samples_per_thread", SamplesPerThread);
  Writer.member("lines_per_thread", LinesPerIngestThread);
  Writer.member("simd_available", core::BatchDecoder::simdAvailable());
  Writer.member("decode_kernel",
                core::decodeKernelName(
                    core::BatchDecoder(CacheGeometry(64), {}).kernel()));
  Writer.key("results");
  Writer.beginArray();
  for (const IngestSweepRow &Row : Rows) {
    Writer.beginObject();
    Writer.member("mode", Row.Mode);
    Writer.member("threads", Row.Threads);
    Writer.member("samples", Row.Samples);
    Writer.member("seconds", Row.Seconds);
    Writer.member("samples_per_sec",
                  static_cast<double>(Row.Samples) / Row.Seconds);
    Writer.member("samples_per_sec_per_core",
                  static_cast<double>(Row.Samples) / Row.Seconds /
                      Row.Threads);
    Writer.endObject();
  }
  for (const DecodeSweepRow &Row : DecodeRows) {
    Writer.beginObject();
    Writer.member("mode", "decode");
    Writer.member("kernel", Row.Kernel);
    Writer.member("effective_kernel", Row.Effective);
    Writer.member("batch", static_cast<uint64_t>(Row.Batch));
    Writer.member("samples", Row.Samples);
    Writer.member("seconds", Row.Seconds);
    Writer.member("samples_per_sec",
                  static_cast<double>(Row.Samples) / Row.Seconds);
    Writer.endObject();
  }
  Writer.endArray();
  Writer.endObject();
  Text += "\n";

  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  return Written == Text.size() && std::fclose(File) == 0;
}

} // namespace

int main(int argc, char **argv) {
  // Announce the build's detection mode so sweeps over both
  // CHEETAH_LOCKED_TABLE configurations label their output unambiguously.
  // On stderr: stdout must stay parseable under --benchmark_format=json.
#if CHEETAH_LOCKED_TABLE
  std::fprintf(stderr,
               "cheetah detect mode: locked-table (PR-1 striped mutexes)\n");
#else
  std::fprintf(stderr,
               "cheetah detect mode: lock-free (packed CAS table)\n");
#endif
  // The dedicated ingest sweep replaces the google-benchmark run when
  // requested: deterministic sample streams, explicit timing, one JSON
  // document for the checked-in trajectory.
  for (int I = 1; I < argc; ++I) {
    const char *Prefix = "--emit-ingest-json=";
    if (std::strncmp(argv[I], Prefix, std::strlen(Prefix)) == 0)
      return emitIngestJson(argv[I] + std::strlen(Prefix)) ? 0 : 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
