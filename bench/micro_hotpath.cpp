//===- bench/micro_hotpath.cpp - Hot-path micro-costs ----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-costs of the operations on Cheetah's per-sample
/// hot path (shadow lookup, two-entry table update, detailed line record,
/// heap allocation, coherence step). These bound the constant behind the
/// "handling of each sampled memory access" overhead the paper discusses in
/// Section 4.1.
///
/// The *_ThreadedIngest benchmarks drive the same detection hot path from
/// 1..8 concurrent threads; compare their aggregate items_per_second to see
/// the multi-threaded ingestion scaling. BM_ThreadedIngest runs the
/// build's native path (lock-free CAS by default, striped-mutex when
/// configured with -DCHEETAH_LOCKED_TABLE=ON), while
/// BM_ThreadedIngestStripedLock wraps the same detector in a PR-1-style
/// 64-stripe mutex harness inside the benchmark, so a single run reports
/// locked and lock-free throughput side by side at every thread count.
///
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/detect/CacheLineTable.h"
#include "core/detect/Detector.h"
#include "core/detect/PageInfo.h"
#include "core/detect/PageTable.h"
#include "core/detect/ShadowMemory.h"
#include "mem/NumaTopology.h"
#include "runtime/HeapAllocator.h"
#include "sim/CoherenceModel.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>
#include <vector>

using namespace cheetah;

namespace {

void BM_TwoEntryTableUpdate(benchmark::State &State) {
  core::CacheLineTable Table;
  SplitMix64 Rng(1);
  for (auto _ : State) {
    bool Invalidation = Table.recordAccess(
        static_cast<ThreadId>(Rng.nextBelow(8)),
        Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read);
    benchmark::DoNotOptimize(Invalidation);
  }
}
BENCHMARK(BM_TwoEntryTableUpdate);

/// The packed table's CAS loop under genuine contention: every benchmark
/// thread hammers one shared table with a ping-pong write mix, the
/// worst case for the single-word compare-and-swap.
void BM_TwoEntryTableContended(benchmark::State &State) {
  static core::CacheLineTable *Table = nullptr;
  if (State.thread_index() == 0)
    Table = new core::CacheLineTable();

  SplitMix64 Rng(40 + State.thread_index());
  ThreadId Tid = static_cast<ThreadId>(State.thread_index());
  for (auto _ : State) {
    bool Invalidation = Table->recordAccess(
        Tid, Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read);
    benchmark::DoNotOptimize(Invalidation);
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Table;
    Table = nullptr;
  }
}
BENCHMARK(BM_TwoEntryTableContended)->ThreadRange(1, 8)->UseRealTime();

void BM_ShadowWriteCount(benchmark::State &State) {
  CacheGeometry Geometry(64);
  core::ShadowMemory Shadow(Geometry, {{0x40000000, 16 << 20}});
  SplitMix64 Rng(2);
  for (auto _ : State) {
    uint64_t Address = 0x40000000 + Rng.nextBelow(16 << 20);
    benchmark::DoNotOptimize(Shadow.noteWrite(Address));
  }
}
BENCHMARK(BM_ShadowWriteCount);

void BM_DetectorHandleSample(benchmark::State &State) {
  CacheGeometry Geometry(64);
  core::ShadowMemory Shadow(Geometry, {{0x40000000, 1 << 20}});
  core::DetectorConfig Config;
  core::Detector Detect(Geometry, Shadow, Config);
  SplitMix64 Rng(3);
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address = 0x40000000 + (Rng.nextBelow(256) * 8);
    Sample.Tid = static_cast<ThreadId>(Rng.nextBelow(16));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    benchmark::DoNotOptimize(Detect.handleSample(Sample, true));
  }
}
BENCHMARK(BM_DetectorHandleSample);

void BM_HeapAllocateFree(benchmark::State &State) {
  CacheGeometry Geometry(64);
  runtime::HeapAllocator Heap(0x40000000, 256 << 20, Geometry);
  for (auto _ : State) {
    uint64_t Address = Heap.allocate(64, 0, 0);
    benchmark::DoNotOptimize(Address);
    Heap.deallocate(Address, 0);
  }
}
BENCHMARK(BM_HeapAllocateFree);

void BM_HeapObjectLookup(benchmark::State &State) {
  CacheGeometry Geometry(64);
  runtime::HeapAllocator Heap(0x40000000, 64 << 20, Geometry);
  std::vector<uint64_t> Objects;
  for (int I = 0; I < 4096; ++I)
    Objects.push_back(Heap.allocate(64, 0, 0));
  SplitMix64 Rng(4);
  for (auto _ : State) {
    uint64_t Address = Objects[Rng.nextBelow(Objects.size())] + 13;
    benchmark::DoNotOptimize(Heap.objectAt(Address));
  }
}
BENCHMARK(BM_HeapObjectLookup);

void BM_CoherenceAccess(benchmark::State &State) {
  CacheGeometry Geometry(64);
  sim::LatencyModel Latency;
  sim::CoherenceModel Model(Geometry, Latency);
  SplitMix64 Rng(5);
  uint64_t Now = 0;
  for (auto _ : State) {
    MemoryAccess Access =
        Rng.nextBool(0.5)
            ? MemoryAccess::write(0x1000 + Rng.nextBelow(64) * 64)
            : MemoryAccess::read(0x1000 + Rng.nextBelow(64) * 64);
    benchmark::DoNotOptimize(
        Model.access(static_cast<ThreadId>(Rng.nextBelow(8)), Access, Now));
    Now += 7;
  }
}
BENCHMARK(BM_CoherenceAccess);

//===----------------------------------------------------------------------===//
// Multi-threaded ingestion scaling
//===----------------------------------------------------------------------===//

/// Shared detection state for the threaded benchmarks, set up by thread 0
/// (google-benchmark synchronizes all threads on the iteration barrier
/// before the timed loop and after it, so this is race-free).
struct IngestHarness {
  CacheGeometry Geometry{64};
  core::ShadowMemory Shadow;
  core::Detector Detect;

  explicit IngestHarness(uint64_t Lines)
      : Shadow(Geometry, {{0x4000'0000, Lines * 64}}),
        Detect(Geometry, Shadow, core::DetectorConfig{}) {}
};

constexpr uint64_t LinesPerIngestThread = 4096;

/// Aggregate sample-ingest throughput: each thread feeds the shared
/// detector samples over its own slice of the monitored region (the
/// realistic deployment shape — application threads mostly touch their own
/// data, while all profiler metadata stays shared).
void BM_ThreadedIngest(benchmark::State &State) {
  static IngestHarness *Harness = nullptr;
  if (State.thread_index() == 0)
    Harness = new IngestHarness(LinesPerIngestThread * State.threads());

  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  SplitMix64 Rng(100 + State.thread_index());
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address =
        SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
        Rng.nextBelow(16) * 4;
    Sample.Tid =
        static_cast<ThreadId>(State.thread_index() * 4 + Rng.nextBelow(4));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    benchmark::DoNotOptimize(Harness->Detect.handleSample(Sample, true));
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Harness;
    Harness = nullptr;
  }
}
BENCHMARK(BM_ThreadedIngest)->ThreadRange(1, 8)->UseRealTime();

/// The PR-1 locked design, reproduced in-harness: the same detector calls,
/// serialized by a 64-stripe mutex array keyed by line index exactly as
/// ShadowMemory::lineLock used to do. Comparing this row against
/// BM_ThreadedIngest at the same thread count is the locked-vs-lock-free
/// A/B the CHEETAH_LOCKED_TABLE toggle exists for, without rebuilding.
void BM_ThreadedIngestStripedLock(benchmark::State &State) {
  static IngestHarness *Harness = nullptr;
  static std::mutex *Stripes = nullptr;
  constexpr size_t StripeCount = 64;
  if (State.thread_index() == 0) {
    Harness = new IngestHarness(LinesPerIngestThread * State.threads());
    Stripes = new std::mutex[StripeCount];
  }

  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  SplitMix64 Rng(300 + State.thread_index());
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address =
        SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
        Rng.nextBelow(16) * 4;
    Sample.Tid =
        static_cast<ThreadId>(State.thread_index() * 4 + Rng.nextBelow(4));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    uint64_t Line = Sample.Address >> 6;
    std::lock_guard<std::mutex> Lock(
        Stripes[(Line * 0x9e3779b97f4a7c15ull) >> 58]);
    benchmark::DoNotOptimize(Harness->Detect.handleSample(Sample, true));
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Harness;
    Harness = nullptr;
    delete[] Stripes;
    Stripes = nullptr;
  }
}
BENCHMARK(BM_ThreadedIngestStripedLock)->ThreadRange(1, 8)->UseRealTime();

//===----------------------------------------------------------------------===//
// Page-granularity (NUMA) hot path
//===----------------------------------------------------------------------===//

/// Single-thread cost of one page-stage detail record (packed node table
/// CAS + per-line histogram + per-node accumulators).
void BM_PageInfoRecord(benchmark::State &State) {
  core::PageInfo Info(4096 / 64);
  SplitMix64 Rng(6);
  for (auto _ : State) {
    NodeId Node = static_cast<NodeId>(Rng.nextBelow(2));
    bool Invalidation = Info.recordAccess(
        Node, Node, Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read,
        Rng.nextBelow(64), 40, Node != 0);
    benchmark::DoNotOptimize(Invalidation);
  }
}
BENCHMARK(BM_PageInfoRecord);

/// The packed node table under genuine contention: every benchmark thread
/// hammers one shared PageInfo from its own simulated node — the worst
/// case for the page layer's single-word CAS, mirroring
/// BM_TwoEntryTableContended one level up.
void BM_PageInfoContended(benchmark::State &State) {
  static core::PageInfo *Info = nullptr;
  if (State.thread_index() == 0)
    Info = new core::PageInfo(4096 / 64);

  SplitMix64 Rng(60 + State.thread_index());
  NodeId Node = static_cast<NodeId>(State.thread_index() % 2);
  for (auto _ : State) {
    bool Invalidation = Info->recordAccess(
        static_cast<ThreadId>(State.thread_index()), Node,
        Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read,
        Rng.nextBelow(64), 40, Node != 0);
    benchmark::DoNotOptimize(Invalidation);
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Info;
    Info = nullptr;
  }
}
BENCHMARK(BM_PageInfoContended)->ThreadRange(1, 8)->UseRealTime();

/// Aggregate ingest throughput with the page stage on (line + page): the
/// page-mode counterpart of BM_ThreadedIngest, comparable row-for-row to
/// measure what the second granularity costs, in both CHEETAH_LOCKED_TABLE
/// build modes (the locked build serializes page detail through the
/// striped page mutexes exactly like the line path).
void BM_ThreadedIngestPageMode(benchmark::State &State) {
  struct PageHarness {
    NumaTopology Topology{2, 4096};
    CacheGeometry Geometry{64};
    core::ShadowMemory Shadow;
    core::PageTable Pages;
    core::Detector Detect;

    explicit PageHarness(uint64_t Lines)
        : Shadow(Geometry, {{0x4000'0000, Lines * 64}}),
          Pages(Topology, Geometry, {{0x4000'0000, Lines * 64}}),
          Detect(Geometry, Shadow, [] {
            core::DetectorConfig Config;
            Config.TrackPages = true;
            return Config;
          }()) {
      Detect.attachPageTable(Pages, Topology);
    }
  };
  static PageHarness *Harness = nullptr;
  if (State.thread_index() == 0)
    Harness = new PageHarness(LinesPerIngestThread * State.threads());

  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  SplitMix64 Rng(500 + State.thread_index());
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address =
        SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
        Rng.nextBelow(16) * 4;
    Sample.Tid =
        static_cast<ThreadId>(State.thread_index() * 4 + Rng.nextBelow(4));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    benchmark::DoNotOptimize(Harness->Detect.handleSample(Sample, true));
  }
  State.SetItemsProcessed(State.iterations());

  if (State.thread_index() == 0) {
    delete Harness;
    Harness = nullptr;
  }
}
BENCHMARK(BM_ThreadedIngestPageMode)->ThreadRange(1, 8)->UseRealTime();

/// Same scaling through the profiler's batched ingest API, including the
/// per-batch registry/phase bookkeeping the per-thread buffers amortize.
void BM_ProfilerBatchedIngest(benchmark::State &State) {
  constexpr unsigned BatchSize = 256;
  static core::Profiler *Prof = nullptr;
  if (State.thread_index() == 0) {
    Prof = new core::Profiler(core::ProfilerConfig{});
    Prof->onThreadStart(0, /*IsMain=*/true, 0);
    for (int T = 1; T <= State.threads(); ++T)
      Prof->onThreadStart(static_cast<ThreadId>(T), /*IsMain=*/false, 10);
  }

  SplitMix64 Rng(200 + State.thread_index());
  ThreadId Tid = static_cast<ThreadId>(State.thread_index() + 1);
  uint64_t SliceBase =
      0x4000'0000 +
      uint64_t(State.thread_index()) * LinesPerIngestThread * 64;
  std::vector<pmu::Sample> Batch(BatchSize);
  for (auto _ : State) {
    for (pmu::Sample &Sample : Batch) {
      Sample.Address = SliceBase + Rng.nextBelow(LinesPerIngestThread) * 64 +
                       Rng.nextBelow(16) * 4;
      Sample.Tid = Tid;
      Sample.IsWrite = Rng.nextBool(0.7);
      Sample.LatencyCycles = 40;
    }
    Prof->ingestBatch(Batch.data(), Batch.size());
  }
  State.SetItemsProcessed(State.iterations() * BatchSize);

  if (State.thread_index() == 0) {
    delete Prof;
    Prof = nullptr;
  }
}
BENCHMARK(BM_ProfilerBatchedIngest)->ThreadRange(1, 8)->UseRealTime();

} // namespace

int main(int argc, char **argv) {
  // Announce the build's detection mode so sweeps over both
  // CHEETAH_LOCKED_TABLE configurations label their output unambiguously.
  // On stderr: stdout must stay parseable under --benchmark_format=json.
#if CHEETAH_LOCKED_TABLE
  std::fprintf(stderr,
               "cheetah detect mode: locked-table (PR-1 striped mutexes)\n");
#else
  std::fprintf(stderr,
               "cheetah detect mode: lock-free (packed CAS table)\n");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
