//===- bench/micro_hotpath.cpp - Hot-path micro-costs ----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-costs of the operations on Cheetah's per-sample
/// hot path (shadow lookup, two-entry table update, detailed line record,
/// heap allocation, coherence step). These bound the constant behind the
/// "handling of each sampled memory access" overhead the paper discusses in
/// Section 4.1.
///
//===----------------------------------------------------------------------===//

#include "core/detect/CacheLineTable.h"
#include "core/detect/Detector.h"
#include "core/detect/ShadowMemory.h"
#include "runtime/HeapAllocator.h"
#include "sim/CoherenceModel.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace cheetah;

namespace {

void BM_TwoEntryTableUpdate(benchmark::State &State) {
  core::CacheLineTable Table;
  SplitMix64 Rng(1);
  for (auto _ : State) {
    bool Invalidation = Table.recordAccess(
        static_cast<ThreadId>(Rng.nextBelow(8)),
        Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read);
    benchmark::DoNotOptimize(Invalidation);
  }
}
BENCHMARK(BM_TwoEntryTableUpdate);

void BM_ShadowWriteCount(benchmark::State &State) {
  CacheGeometry Geometry(64);
  core::ShadowMemory Shadow(Geometry, {{0x40000000, 16 << 20}});
  SplitMix64 Rng(2);
  for (auto _ : State) {
    uint64_t Address = 0x40000000 + Rng.nextBelow(16 << 20);
    benchmark::DoNotOptimize(Shadow.noteWrite(Address));
  }
}
BENCHMARK(BM_ShadowWriteCount);

void BM_DetectorHandleSample(benchmark::State &State) {
  CacheGeometry Geometry(64);
  core::ShadowMemory Shadow(Geometry, {{0x40000000, 1 << 20}});
  core::DetectorConfig Config;
  core::Detector Detect(Geometry, Shadow, Config);
  SplitMix64 Rng(3);
  pmu::Sample Sample;
  for (auto _ : State) {
    Sample.Address = 0x40000000 + (Rng.nextBelow(256) * 8);
    Sample.Tid = static_cast<ThreadId>(Rng.nextBelow(16));
    Sample.IsWrite = Rng.nextBool(0.7);
    Sample.LatencyCycles = 40;
    benchmark::DoNotOptimize(Detect.handleSample(Sample, true));
  }
}
BENCHMARK(BM_DetectorHandleSample);

void BM_HeapAllocateFree(benchmark::State &State) {
  CacheGeometry Geometry(64);
  runtime::HeapAllocator Heap(0x40000000, 256 << 20, Geometry);
  for (auto _ : State) {
    uint64_t Address = Heap.allocate(64, 0, 0);
    benchmark::DoNotOptimize(Address);
    Heap.deallocate(Address, 0);
  }
}
BENCHMARK(BM_HeapAllocateFree);

void BM_HeapObjectLookup(benchmark::State &State) {
  CacheGeometry Geometry(64);
  runtime::HeapAllocator Heap(0x40000000, 64 << 20, Geometry);
  std::vector<uint64_t> Objects;
  for (int I = 0; I < 4096; ++I)
    Objects.push_back(Heap.allocate(64, 0, 0));
  SplitMix64 Rng(4);
  for (auto _ : State) {
    uint64_t Address = Objects[Rng.nextBelow(Objects.size())] + 13;
    benchmark::DoNotOptimize(Heap.objectAt(Address));
  }
}
BENCHMARK(BM_HeapObjectLookup);

void BM_CoherenceAccess(benchmark::State &State) {
  CacheGeometry Geometry(64);
  sim::LatencyModel Latency;
  sim::CoherenceModel Model(Geometry, Latency);
  SplitMix64 Rng(5);
  uint64_t Now = 0;
  for (auto _ : State) {
    MemoryAccess Access =
        Rng.nextBool(0.5)
            ? MemoryAccess::write(0x1000 + Rng.nextBelow(64) * 64)
            : MemoryAccess::read(0x1000 + Rng.nextBelow(64) * 64);
    benchmark::DoNotOptimize(
        Model.access(static_cast<ThreadId>(Rng.nextBelow(8)), Access, Now));
    Now += 7;
  }
}
BENCHMARK(BM_CoherenceAccess);

} // namespace

BENCHMARK_MAIN();
