//===- bench/ablation_sampling.cpp - Sampling-period ablation --------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A (paper Section 2.1 claim: "even with sparse samples, one out
/// of 64K instructions, PMU sampling can identify false sharing with a
/// significant performance impact"). Sweeps the sampling period on
/// linear_regression (must stay detected throughout) and word_count's minor
/// instance (detected only at dense periods), and reports the sample volume
/// and prediction quality at each period.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

int main() {
  std::printf("Ablation A: detection and prediction vs sampling period "
              "(16 threads)\n\n");
  TextTable Table;
  Table.setHeader({"period", "samples", "lreg detected", "lreg predicted",
                   "word_count minor FS detected"});

  auto Lreg = workloads::createWorkload("linear_regression");
  auto WordCount = workloads::createWorkload("word_count");

  for (uint64_t Period : {256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
    driver::SessionConfig Config;
    Config.Workload.Threads = 16;
    Config.Workload.Scale = 4.0;
    Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(Period);

    driver::SessionResult LregRun = driver::runWorkload(*Lreg, Config);
    const core::FalseSharingReport *LregReport =
        LregRun.Profile.findReport("linear_regression-pthread.c:139");

    driver::SessionConfig WcConfig = Config;
    WcConfig.Workload.Scale = 2.0;
    driver::SessionResult WcRun = driver::runWorkload(*WordCount, WcConfig);
    bool WcDetected = !WcRun.Profile.Reports.empty();

    Table.addRow(
        {formatHuman(Period), formatWithCommas(LregRun.Profile.SamplesDelivered),
         LregReport ? "yes" : "NO",
         LregReport
             ? formatString("%.2fx", LregReport->Impact.ImprovementFactor)
             : "-",
         WcDetected ? "yes" : "no"});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nexpected shape: the significant instance survives sparse "
              "sampling; the minor instance only appears (if at all) when "
              "sampling is dense.\nnote: the simulation compresses execution ~1000x versus the paper's >=5 s runs;\nthe detection knee is a *sample count* (~hundreds on the object), so at real\nexecution lengths the deployment period of 64K matches the paper's claim\n");
  return 0;
}
