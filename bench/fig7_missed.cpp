//===- bench/fig7_missed.cpp - Figure 7 reproduction -----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7: the false-sharing instances Cheetah misses (histogram,
/// reverse_index, word_count) are worth almost nothing: runtime with the
/// instance present, normalized to the padded run, stays within a fraction
/// of a percent (the paper reports <0.2%). The harness also confirms the
/// two-sided story: sampling at the deployment period reports nothing,
/// while the every-access baseline still finds the (insignificant) lines.
///
/// The second table inverts the blind spot one level up: on the
/// remote-DRAM (node-interleaved) scenario the *line*-granularity detector
/// structurally reports nothing — no cache line is ever shared — while the
/// page-granularity detector finds the cross-node page sharing, and the
/// padded (page-local) rerun quantifies what it was worth.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "mem/NumaTopology.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

int main() {
  std::printf("Figure 7: impact of the false-sharing instances sampling "
              "misses (16 threads)\n\n");
  TextTable Table;
  Table.setHeader({"application", "with-FS (cycles)", "no-FS (cycles)",
                   "normalized", "cheetah reports", "full-tracker finds FS"});

  for (const char *Name : {"histogram", "reverse_index", "word_count"}) {
    auto Workload = workloads::createWorkload(Name);
    driver::SessionConfig Config;
    Config.Workload.Threads = 16;
    Config.Workload.Scale = 2.0;
    Config.Profiler.Pmu.SamplingPeriod = 65536;

    driver::SessionConfig Native = Config;
    Native.EnableProfiler = false;
    uint64_t WithFs = driver::runWorkload(*Workload, Native).Run.TotalCycles;
    Native.Workload.FixFalseSharing = true;
    uint64_t NoFs = driver::runWorkload(*Workload, Native).Run.TotalCycles;

    driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);

    baseline::FullTrackerConfig Tracker;
    driver::FullTrackResult Full =
        driver::runFullTracking(*Workload, Config, Tracker);
    bool FullFinds = false;
    for (const auto &Finding : Full.Findings)
      FullFinds |= Finding.Kind == core::SharingKind::FalseSharing &&
                   Finding.Threads >= 2;

    Table.addRow({Name, formatWithCommas(WithFs), formatWithCommas(NoFs),
                  formatString("%.4f", static_cast<double>(WithFs) /
                                           static_cast<double>(NoFs)),
                  std::to_string(Profiled.Profile.Reports.size()),
                  FullFinds ? "yes" : "no"});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper shape: normalized ratio ~1.000 (<0.2%% impact); "
              "Cheetah reports none of them\n");

  std::printf("\nRemote-DRAM scenario: findings the line-granularity "
              "detector structurally misses (2 NUMA nodes, 16 threads)\n\n");
  TextTable PageTableOut;
  PageTableOut.setHeader({"application", "with-FS (cycles)", "no-FS (cycles)",
                          "normalized", "line findings", "page findings",
                          "remote accesses"});
  for (const char *Name : {"numa_interleaved", "numa_first_touch"}) {
    auto Workload = workloads::createWorkload(Name);
    driver::SessionConfig Config;
    Config.Workload.Threads = 16;
    Config.Workload.NumaNodes = 2;
    Config.Profiler.Topology = NumaTopology(2, 4096);
    Config.Profiler.Detect.TrackPages = true;
    // Denser than the deployment period: the page gate wants enough
    // sampled remote accesses per page to call the placement significant.
    Config.Profiler.Pmu.SamplingPeriod = 128;

    driver::SessionConfig Native = Config;
    Native.EnableProfiler = false;
    driver::SessionResult WithFs = driver::runWorkload(*Workload, Native);
    Native.Workload.FixFalseSharing = true;
    driver::SessionResult NoFs = driver::runWorkload(*Workload, Native);

    driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);

    PageTableOut.addRow(
        {Name, formatWithCommas(WithFs.Run.TotalCycles),
         formatWithCommas(NoFs.Run.TotalCycles),
         formatString("%.4f",
                      static_cast<double>(WithFs.Run.TotalCycles) /
                          static_cast<double>(NoFs.Run.TotalCycles)),
         std::to_string(Profiled.Profile.Reports.size()),
         std::to_string(Profiled.Profile.PageReports.size()),
         formatWithCommas(WithFs.Run.RemoteNumaAccesses)});
  }
  std::fputs(PageTableOut.render().c_str(), stdout);
  std::printf("\npage shape: line findings 0 on both — the sharing exists "
              "only at page granularity, where --granularity=page sees it\n");
  return 0;
}
