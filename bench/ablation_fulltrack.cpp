//===- bench/ablation_fulltrack.cpp - Sampling vs full instrumentation -----===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation C (paper Sections 2.1 and 6.1): software instrumentation of
/// every access costs 5x-100x; PMU sampling is what makes Cheetah
/// deployable. For a representative subset of applications, compares native
/// runtime, Cheetah at the deployment period, and a Predator-style
/// every-access tracker, in simulated cycles and in host wall-clock.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <chrono>
#include <cstdio>

using namespace cheetah;

int main() {
  std::printf("Ablation C: Cheetah sampling vs Predator-style full "
              "instrumentation (16 threads)\n\n");
  TextTable Table;
  Table.setHeader({"application", "cheetah slowdown", "full-track slowdown",
                   "full/cheetah", "host analysis time ratio"});

  for (const char *Name :
       {"linear_regression", "histogram", "blackscholes", "canneal",
        "streamcluster"}) {
    auto Workload = workloads::createWorkload(Name);
    driver::SessionConfig Config;
    Config.Workload.Threads = 16;
    Config.Workload.Scale = 1.0;
    Config.Profiler.Pmu.SamplingPeriod = 65536;

    driver::SessionConfig Native = Config;
    Native.EnableProfiler = false;
    uint64_t Baseline =
        driver::runWorkload(*Workload, Native).Run.TotalCycles;

    auto HostStart = std::chrono::steady_clock::now();
    driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);
    auto HostMid = std::chrono::steady_clock::now();
    baseline::FullTrackerConfig Tracker;
    Tracker.PerAccessCycles = 60; // software instrumentation per access
    driver::FullTrackResult Full =
        driver::runFullTracking(*Workload, Config, Tracker);
    auto HostEnd = std::chrono::steady_clock::now();

    double CheetahSlowdown = static_cast<double>(Profiled.Run.TotalCycles) /
                             static_cast<double>(Baseline);
    double FullSlowdown = static_cast<double>(Full.Run.TotalCycles) /
                          static_cast<double>(Baseline);
    double HostCheetah =
        std::chrono::duration<double>(HostMid - HostStart).count();
    double HostFull =
        std::chrono::duration<double>(HostEnd - HostMid).count();

    Table.addRow({Name, formatString("%.3fx", CheetahSlowdown),
                  formatString("%.3fx", FullSlowdown),
                  formatString("%.1fx", FullSlowdown / CheetahSlowdown),
                  formatString("%.1fx", HostFull / HostCheetah)});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\nexpected shape: Cheetah near 1.0x, full instrumentation "
              "several times slower\n");
  return 0;
}
