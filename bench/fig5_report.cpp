//===- bench/fig5_report.cpp - Figure 5 reproduction -----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5: Cheetah's report for linear_regression at 16 threads, printed
/// with the paper's hexadecimal counters. The paper's instance lives at
/// linear_regression-pthread.c:139 with a predicted 5.76x improvement; the
/// reproduced report must identify the same callsite, classify it as false
/// sharing, and predict a multi-x improvement.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

int main() {
  auto Workload = workloads::createWorkload("linear_regression");
  driver::SessionConfig Config;
  Config.Workload.Threads = 16;
  Config.Workload.Scale = 4.0;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(128);

  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  std::printf("Figure 5: Cheetah report for linear_regression "
              "(16 threads)\n\n");
  if (Result.Profile.Reports.empty()) {
    std::printf("ERROR: no false sharing reported\n");
    return 1;
  }
  core::ReportFormatOptions Options;
  Options.HexCounters = true; // the paper prints 27f / 12e1 / 106389
  Options.MaxWords = 8;
  std::fputs(
      core::formatReport(Result.Profile.Reports.front(), Options).c_str(),
      stdout);
  std::printf("\npaper shape: heap object at linear_regression-pthread.c:139"
              ", false sharing, ~5.76x predicted improvement\n");
  return 0;
}
