//===- bench/table1_precision.cpp - Table 1 reproduction -------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: precision of the performance-impact assessment. For
/// linear_regression and streamcluster at 16/8/4/2 threads, the predicted
/// improvement (from one profiled run, EQ.1-EQ.4) is compared against the
/// real improvement (a rerun with the paper's padding fix applied). The
/// paper's claim: |diff| < 10% everywhere, with linear_regression in the
/// 2x-6.7x range and streamcluster around 1.02x.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

int main() {
  std::printf("Table 1: precision of assessment (predicted vs real "
              "improvement after padding)\n\n");
  TextTable Table;
  Table.setHeader({"application", "threads", "predict", "real", "diff"});

  for (const char *Name : {"linear_regression", "streamcluster"}) {
    auto Workload = workloads::createWorkload(Name);
    for (uint32_t Threads : {16u, 8u, 4u, 2u}) {
      driver::SessionConfig Config;
      Config.Workload.Threads = Threads;
      Config.Workload.Scale = 4.0;
      Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(128);

      driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);
      double Predicted =
          Profiled.Profile.Reports.empty()
              ? 1.0
              : Profiled.Profile.Reports.front().Impact.ImprovementFactor;

      driver::SessionConfig Fixed = Config;
      Fixed.Workload.FixFalseSharing = true;
      Fixed.EnableProfiler = false;
      uint64_t FixedRuntime =
          driver::runWorkload(*Workload, Fixed).Run.TotalCycles;
      double Real = static_cast<double>(Profiled.Run.TotalCycles) /
                    static_cast<double>(FixedRuntime);

      // Paper convention: positive diff means the prediction was *below*
      // the real improvement.
      double Diff = (Real - Predicted) / Real * 100.0;
      Table.addRow({Name, std::to_string(Threads),
                    formatString("%.2fX", Predicted),
                    formatString("%.2fX", Real),
                    formatString("%+.1f%%", Diff)});
    }
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper shape: |diff| < 10%% in every row; linear_regression "
              "2.18X-6.7X, streamcluster ~1.02X\n");
  return 0;
}
