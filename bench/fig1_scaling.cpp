//===- bench/fig1_scaling.cpp - Figure 1 reproduction ----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 1(b): runtime of the array-increment microbenchmark versus its
/// linear-speedup expectation at 1/2/4/8 threads, plus the padded variant.
/// The paper reports ~13x degradation at 8 threads; the expected *shape* is
/// reality >> expectation once two or more threads share a line, with a gap
/// that grows with the thread count, and a padded run tracking expectation.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

int main() {
  auto Workload = workloads::createWorkload("fig1_array");

  auto Runtime = [&](uint32_t Threads, bool Fix) {
    driver::SessionConfig Config;
    Config.Workload.Threads = Threads;
    Config.Workload.FixFalseSharing = Fix;
    Config.EnableProfiler = false;
    return driver::runWorkload(*Workload, Config).Run.TotalCycles;
  };

  uint64_t SingleThread = Runtime(1, false);

  std::printf("Figure 1: false-sharing microbenchmark, reality vs "
              "linear-speedup expectation\n\n");
  TextTable Table;
  Table.setHeader({"threads", "expectation (cycles)", "reality (cycles)",
                   "padded (cycles)", "reality/expectation",
                   "padded/expectation"});
  for (uint32_t Threads : {1u, 2u, 4u, 8u}) {
    uint64_t Expectation = SingleThread / Threads;
    uint64_t Reality = Runtime(Threads, false);
    uint64_t Padded = Runtime(Threads, true);
    Table.addRow({std::to_string(Threads), formatWithCommas(Expectation),
                  formatWithCommas(Reality), formatWithCommas(Padded),
                  formatString("%.1fx", static_cast<double>(Reality) /
                                            static_cast<double>(Expectation)),
                  formatString("%.1fx", static_cast<double>(Padded) /
                                            static_cast<double>(Expectation))});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper shape: ~13x degradation at 8 threads; padded stays "
              "near the expectation\n");
  return 0;
}
