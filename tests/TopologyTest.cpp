//===- tests/TopologyTest.cpp - NUMA topology import and validation --------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distance-matrix NUMA topology layer end to end: NumaTopologySpec
/// validation (the fallible path every file- and flag-sourced construction
/// goes through), distance/pinning semantics, the cheetah-topology-v1 file
/// parser (including truncation/mutation fuzz — hostile files must error,
/// never assert or crash), and the CLI-validation regressions for
/// `cheetah-profile`'s flags: `--line-size=48`, a negative `--threads`, or
/// a zero `--sampling-period` must come back as error strings (exit-1
/// material), not CHEETAH_ASSERT aborts.
///
//===----------------------------------------------------------------------===//

#include "driver/SessionOptions.h"
#include "mem/TopologyFile.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

using namespace cheetah;

namespace {

NumaTopologySpec asymmetricSpec() {
  NumaTopologySpec Spec;
  Spec.Nodes = 4;
  Spec.PageSize = 4096;
  Spec.Distances = {{0, 16, 32, 48},
                    {16, 0, 48, 32},
                    {32, 48, 0, 16},
                    {48, 32, 16, 0}};
  Spec.ThreadPinning = {0, 1, 2, 3, 0, 1, 2, 3};
  return Spec;
}

NumaTopology mustBuild(const NumaTopologySpec &Spec) {
  NumaTopology Topology;
  std::string Error;
  EXPECT_TRUE(NumaTopology::fromSpec(Spec, Topology, Error)) << Error;
  return Topology;
}

const char *ValidDocument = R"({
  "schema": "cheetah-topology-v1",
  "nodes": 4,
  "page_size": 8192,
  "distances": [[0, 16, 32, 48],
                [16, 0, 48, 32],
                [32, 48, 0, 16],
                [48, 32, 16, 0]],
  "pinning": [0, 1, 2, 3, 0, 1, 2, 3]
})";

//===----------------------------------------------------------------------===//
// Spec validation: the fallible factory path
//===----------------------------------------------------------------------===//

TEST(TopologySpecTest, ValidSpecBuilds) {
  NumaTopology Topology = mustBuild(asymmetricSpec());
  EXPECT_EQ(Topology.nodeCount(), 4u);
  EXPECT_EQ(Topology.pageSize(), 4096u);
  EXPECT_EQ(Topology.distance(0, 3), 48u);
  EXPECT_EQ(Topology.distance(3, 0), 48u);
  EXPECT_EQ(Topology.distance(2, 2), 0u);
  EXPECT_EQ(Topology.minRemoteDistance(), 16u);
  EXPECT_EQ(Topology.maxRemoteDistance(), 48u);
  EXPECT_FALSE(Topology.uniformRemoteDistances());
  EXPECT_TRUE(Topology.pinned());
}

TEST(TopologySpecTest, DefaultTopologyIsUniform) {
  NumaTopology Topology(4, 4096);
  EXPECT_TRUE(Topology.uniformRemoteDistances());
  EXPECT_EQ(Topology.minRemoteDistance(), Topology.maxRemoteDistance());
  EXPECT_EQ(Topology.distance(1, 3), NumaTopology::DefaultRemoteDistance);
  EXPECT_FALSE(Topology.pinned());
}

TEST(TopologySpecTest, RejectionsNameTheViolation) {
  struct Case {
    void (*Mutate)(NumaTopologySpec &);
    const char *ErrorNeedle;
  };
  const Case Cases[] = {
      {[](NumaTopologySpec &S) { S.Nodes = 0; }, "node count"},
      {[](NumaTopologySpec &S) { S.Nodes = NumaTopology::MaxNodes + 1; },
       "node count"},
      {[](NumaTopologySpec &S) { S.PageSize = 48; }, "page size"},
      {[](NumaTopologySpec &S) { S.PageSize = 4095; }, "page size"},
      {[](NumaTopologySpec &S) { S.Distances.pop_back(); }, "rows"},
      {[](NumaTopologySpec &S) { S.Distances[1].pop_back(); }, "entries"},
      {[](NumaTopologySpec &S) { S.Distances[2][2] = 5; }, "diagonal"},
      {[](NumaTopologySpec &S) { S.Distances[0][1] = 17; }, "symmetric"},
      {[](NumaTopologySpec &S) { S.Distances[0][1] = S.Distances[1][0] = 0; },
       "remote distance"},
      {[](NumaTopologySpec &S) { S.ThreadPinning[3] = 4; }, "pinning"},
  };
  for (const Case &Test : Cases) {
    NumaTopologySpec Spec = asymmetricSpec();
    Test.Mutate(Spec);
    NumaTopology Topology;
    std::string Error;
    EXPECT_FALSE(NumaTopology::fromSpec(Spec, Topology, Error));
    EXPECT_NE(Error.find(Test.ErrorNeedle), std::string::npos) << Error;
  }
}

TEST(TopologySpecTest, EmptyMatrixAndPinningMeanDefaults) {
  NumaTopologySpec Spec;
  Spec.Nodes = 3;
  NumaTopology Topology = mustBuild(Spec);
  EXPECT_TRUE(Topology.uniformRemoteDistances());
  EXPECT_FALSE(Topology.pinned());
  // Interleave affinity: tid % nodes.
  EXPECT_EQ(Topology.nodeOf(0), 0u);
  EXPECT_EQ(Topology.nodeOf(4), 1u);
}

//===----------------------------------------------------------------------===//
// Distance semantics: surcharge scaling and affinity
//===----------------------------------------------------------------------===//

TEST(TopologyDistanceTest, SurchargeExactAtMinimumRemoteDistance) {
  NumaTopology Topology = mustBuild(asymmetricSpec());
  // The normalization contract: the nearest remote pair pays exactly the
  // base surcharge, which is what keeps uniform topologies bit-compatible
  // with the pre-distance binary local/remote model.
  EXPECT_EQ(Topology.scaledRemoteCycles(90, 0, 1), 90u);
  EXPECT_EQ(Topology.scaledRemoteCycles(90, 0, 2), 180u);
  EXPECT_EQ(Topology.scaledRemoteCycles(90, 0, 3), 270u);
  EXPECT_EQ(Topology.scaledRemoteCycles(90, 2, 2), 0u);

  NumaTopology Uniform(2, 4096);
  EXPECT_EQ(Uniform.scaledRemoteCycles(123, 0, 1), 123u);
}

TEST(TopologyDistanceTest, SurchargeMonotoneInDistanceRandomized) {
  // Property over random valid symmetric matrices: scaledRemoteCycles is
  // monotone in the pair's distance (farther never costs less).
  SplitMix64 Rng(0x70504F);
  for (int Trial = 0; Trial < 50; ++Trial) {
    uint32_t Nodes = 2 + static_cast<uint32_t>(Rng.nextBelow(7));
    NumaTopologySpec Spec;
    Spec.Nodes = Nodes;
    Spec.Distances.assign(Nodes, std::vector<uint32_t>(Nodes, 0));
    for (uint32_t A = 0; A < Nodes; ++A)
      for (uint32_t B = A + 1; B < Nodes; ++B)
        Spec.Distances[A][B] = Spec.Distances[B][A] =
            1 + static_cast<uint32_t>(Rng.nextBelow(200));
    NumaTopology Topology = mustBuild(Spec);
    uint32_t Base = 1 + static_cast<uint32_t>(Rng.nextBelow(500));
    for (uint32_t A = 0; A < Nodes; ++A)
      for (uint32_t B = 0; B < Nodes; ++B)
        for (uint32_t C = 0; C < Nodes; ++C)
          for (uint32_t D = 0; D < Nodes; ++D)
            if (Topology.distance(A, B) <= Topology.distance(C, D)) {
              EXPECT_LE(Topology.scaledRemoteCycles(Base, A, B),
                        Topology.scaledRemoteCycles(Base, C, D));
            }
  }
}

TEST(TopologyDistanceTest, PinningOverridesInterleaveAndWraps) {
  NumaTopologySpec Spec = asymmetricSpec();
  Spec.ThreadPinning = {3, 1, 2};
  NumaTopology Topology = mustBuild(Spec);
  EXPECT_EQ(Topology.nodeOf(0), 3u);
  EXPECT_EQ(Topology.nodeOf(1), 1u);
  EXPECT_EQ(Topology.nodeOf(2), 2u);
  EXPECT_EQ(Topology.nodeOf(3), 3u); // wraps around the map
  EXPECT_EQ(Topology.nodeOf(7), 1u);
}

//===----------------------------------------------------------------------===//
// Topology file parsing
//===----------------------------------------------------------------------===//

TEST(TopologyFileTest, ValidDocumentRoundTrips) {
  NumaTopologySpec Spec;
  std::string Error;
  ASSERT_TRUE(parseTopologyText(ValidDocument, Spec, Error)) << Error;
  EXPECT_EQ(Spec.Nodes, 4u);
  EXPECT_EQ(Spec.PageSize, 8192u);
  ASSERT_EQ(Spec.Distances.size(), 4u);
  EXPECT_EQ(Spec.Distances[0][3], 48u);
  ASSERT_EQ(Spec.ThreadPinning.size(), 8u);
  EXPECT_EQ(Spec.ThreadPinning[3], 3u);
}

TEST(TopologyFileTest, AbsentFieldsKeepCallerDefaults) {
  NumaTopologySpec Spec;
  Spec.PageSize = 16384; // the --page-size flag value
  std::string Error;
  ASSERT_TRUE(parseTopologyText(
      R"({"schema": "cheetah-topology-v1", "nodes": 2})", Spec, Error))
      << Error;
  EXPECT_EQ(Spec.Nodes, 2u);
  EXPECT_EQ(Spec.PageSize, 16384u);
  EXPECT_TRUE(Spec.Distances.empty());
  EXPECT_TRUE(Spec.ThreadPinning.empty());
}

TEST(TopologyFileTest, CpuListsDerivePinning) {
  // Without an explicit pinning map, threads pin to the node owning the
  // t-th CPU in ascending CPU order — how a pinning script walks the
  // machine. CPUs deliberately listed out of order here.
  NumaTopologySpec Spec;
  std::string Error;
  ASSERT_TRUE(parseTopologyText(
      R"({"schema": "cheetah-topology-v1", "nodes": 2,
          "cpus": [[2, 0], [1, 3]]})",
      Spec, Error))
      << Error;
  ASSERT_EQ(Spec.ThreadPinning.size(), 4u);
  EXPECT_EQ(Spec.ThreadPinning[0], 0u); // cpu 0 on node 0
  EXPECT_EQ(Spec.ThreadPinning[1], 1u); // cpu 1 on node 1
  EXPECT_EQ(Spec.ThreadPinning[2], 0u); // cpu 2 on node 0
  EXPECT_EQ(Spec.ThreadPinning[3], 1u); // cpu 3 on node 1
}

TEST(TopologyFileTest, HostileDocumentsErrorByName) {
  const std::pair<const char *, const char *> Cases[] = {
      {"", "invalid JSON"},
      {"[]", "not a JSON object"},
      {R"({"nodes": 2})", "'schema'"},
      {R"({"schema": "cheetah-topology-v2", "nodes": 2})",
       "unsupported schema"},
      {R"({"schema": "cheetah-topology-v1"})", "'nodes'"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 0})", "node count"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 2.5})",
       "non-negative integer"},
      {R"({"schema": "cheetah-topology-v1", "nodes": -2})",
       "non-negative integer"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 99})", "out of range"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 2,
           "distances": [[0, 10]]})",
       "rows"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 2,
           "distances": [[0, 10], [20, 0]]})",
       "symmetric"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 2,
           "distances": "near"})",
       "not an array"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 2,
           "pinning": [0, 2]})",
       "pinning"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 2,
           "cpus": [[0, 0], [1]]})",
       "more than one node list"},
      {R"({"schema": "cheetah-topology-v1", "nodes": 2,
           "cpus": [[], []]})",
       "no CPUs"},
  };
  for (const auto &[Text, Needle] : Cases) {
    NumaTopologySpec Spec;
    std::string Error;
    EXPECT_FALSE(parseTopologyText(Text, Spec, Error)) << Text;
    EXPECT_NE(Error.find(Needle), std::string::npos)
        << "'" << Error << "' should mention '" << Needle << "'";
  }
}

class TopologyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopologyFuzzTest, HostileTopologyInputNeverCrashes) {
  // PropertyTest's fuzz recipe applied to the topology parser: every
  // truncation and random byte mutation of a valid document must either
  // parse or produce an error string — never crash, never assert
  // (ASan-clean with the rest of the suite).
  SplitMix64 Rng(GetParam() ^ 0x4E554D41);
  std::string Text = ValidDocument;
  std::string Error;

  for (size_t Cut = 0; Cut < Text.size(); Cut += 3) {
    NumaTopologySpec Spec;
    if (!parseTopologyText(Text.substr(0, Cut), Spec, Error)) {
      EXPECT_FALSE(Error.empty());
    }
  }
  for (int Mutation = 0; Mutation < 300; ++Mutation) {
    std::string Mutated = Text;
    switch (Rng.nextBelow(3)) {
    case 0:
      Mutated[Rng.nextBelow(Mutated.size())] =
          static_cast<char>(Rng.nextBelow(256));
      break;
    case 1:
      Mutated.insert(Rng.nextBelow(Mutated.size() + 1), 1,
                     static_cast<char>(Rng.nextBelow(256)));
      break;
    default:
      Mutated.erase(Rng.nextBelow(Mutated.size()), 1);
      break;
    }
    NumaTopologySpec Spec;
    if (!parseTopologyText(Mutated, Spec, Error)) {
      EXPECT_FALSE(Error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

//===----------------------------------------------------------------------===//
// CLI validation regressions (the exit-1-not-abort contract)
//===----------------------------------------------------------------------===//

/// Writes \p Text to a fresh file under the test temp dir.
std::string writeTempFile(const std::string &Name, const std::string &Text) {
  std::string Path = ::testing::TempDir() + Name;
  std::FILE *File = std::fopen(Path.c_str(), "w");
  EXPECT_NE(File, nullptr);
  std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  return Path;
}

/// Parses \p Args the way cheetah-profile's main does and runs the
/// validated config build.
bool buildFromArgs(std::initializer_list<const char *> Args,
                   driver::SessionOptions &Out, std::string &Error) {
  FlagSet Flags;
  driver::addSessionFlags(Flags);
  std::vector<const char *> Argv = {"cheetah-profile"};
  Argv.insert(Argv.end(), Args.begin(), Args.end());
  if (!Flags.parse(static_cast<int>(Argv.size()), Argv.data(), Error))
    return false;
  return driver::buildSessionOptions(Flags, Out, Error);
}

TEST(SessionOptionsTest, DefaultsBuildCleanly) {
  driver::SessionOptions Options;
  std::string Error;
  ASSERT_TRUE(buildFromArgs({}, Options, Error)) << Error;
  EXPECT_TRUE(Options.Warnings.empty());
  EXPECT_EQ(Options.Granularity, "line");
  EXPECT_EQ(Options.Config.Profiler.Topology.nodeCount(), 1u);
  EXPECT_EQ(Options.Config.Workload.Threads, 16u);
}

TEST(SessionOptionsTest, BadFlagValuesErrorInsteadOfAsserting) {
  // The regression this suite exists for: these values used to be cast
  // straight into CacheGeometry / PmuConfig constructors, where a
  // CHEETAH_ASSERT aborted the tool instead of printing a CLI error.
  const std::pair<const char *, const char *> Cases[] = {
      {"--line-size=48", "--line-size"},
      {"--line-size=0", "--line-size"},
      {"--line-size=-64", "--line-size"},
      {"--threads=0", "--threads"},
      {"--threads=-4", "--threads"},
      {"--threads=100000", "--threads"},
      {"--sampling-period=0", "--sampling-period"},
      {"--sampling-period=-8192", "--sampling-period"},
      {"--scale=0", "--scale"},
      {"--scale=-1.5", "--scale"},
      {"--page-size=1000", "--page-size"},
      {"--granularity=word", "--granularity"},
      {"--numa-nodes=99", "--numa-nodes"},
  };
  for (const auto &[Arg, Needle] : Cases) {
    driver::SessionOptions Options;
    std::string Error;
    EXPECT_FALSE(buildFromArgs({Arg}, Options, Error)) << Arg;
    EXPECT_NE(Error.find(Needle), std::string::npos)
        << "'" << Error << "' should mention '" << Needle << "'";
  }
}

TEST(SessionOptionsTest, NumaNodesErrorDocumentsAutoZero) {
  driver::SessionOptions Options;
  std::string Error;
  ASSERT_FALSE(buildFromArgs({"--numa-nodes=42"}, Options, Error));
  // The bugfixed message: 0 is a valid value meaning auto, and the error
  // must say so instead of presenting [0, 16] as a plain range.
  EXPECT_NE(Error.find("0 means auto"), std::string::npos) << Error;
}

TEST(SessionOptionsTest, SingleNodePageRunWarnsLoudly) {
  driver::SessionOptions Options;
  std::string Error;
  ASSERT_TRUE(buildFromArgs({"--granularity=page", "--numa-nodes=1"},
                            Options, Error))
      << Error;
  ASSERT_EQ(Options.Warnings.size(), 1u);
  EXPECT_NE(Options.Warnings[0].find("single-node"), std::string::npos);

  // The auto default resolves page runs to two nodes: no warning.
  driver::SessionOptions Auto;
  ASSERT_TRUE(buildFromArgs({"--granularity=page"}, Auto, Error)) << Error;
  EXPECT_TRUE(Auto.Warnings.empty());
  EXPECT_EQ(Auto.Config.Profiler.Topology.nodeCount(), 2u);
}

TEST(SessionOptionsTest, TopologyFileImportEndToEnd) {
  std::string Path = writeTempFile("topo_ok.json", ValidDocument);
  driver::SessionOptions Options;
  std::string Error;
  ASSERT_TRUE(buildFromArgs(
      {"--granularity=page", ("--numa-topology=" + Path).c_str()}, Options,
      Error))
      << Error;
  const NumaTopology &Topology = Options.Config.Profiler.Topology;
  EXPECT_EQ(Topology.nodeCount(), 4u);
  EXPECT_EQ(Topology.pageSize(), 8192u);
  EXPECT_EQ(Topology.distance(0, 3), 48u);
  ASSERT_TRUE(Topology.pinned());
  // The workload layout mirrors the imported pinning.
  EXPECT_EQ(Options.Config.Workload.ThreadNodes, Topology.threadPinning());
  EXPECT_EQ(Options.Config.Workload.NumaNodes, 4u);
  EXPECT_EQ(Options.Config.Workload.PageBytes, 8192u);
}

TEST(SessionOptionsTest, TopologyFileErrorsExitCleanly) {
  driver::SessionOptions Options;
  std::string Error;
  ASSERT_FALSE(buildFromArgs({"--numa-topology=/no/such/file.json"},
                             Options, Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;

  std::string Bad = writeTempFile("topo_bad.json",
                                  R"({"schema": "cheetah-topology-v1",
                                      "nodes": 2,
                                      "distances": [[0, 10], [20, 0]]})");
  ASSERT_FALSE(
      buildFromArgs({("--numa-topology=" + Bad).c_str()}, Options, Error));
  EXPECT_NE(Error.find("symmetric"), std::string::npos) << Error;
}

TEST(SessionOptionsTest, BannerEnumeratesActiveGrainStagesGenerically) {
  // The banner contract: `cheetah-profile` prints exactly one
  // formatStageSummary line per entry of ProfileResult::Stages, so the set
  // of lines must track the configured granularity with no per-grain logic
  // in the tool. Table-driven like the rest of the CLI regressions.
  struct Case {
    const char *Granularity;
    std::vector<std::string> Stages;
  };
  const Case Cases[] = {
      {"line", {"line"}},
      {"page", {"page"}},
      {"both", {"line", "page"}},
  };
  for (const Case &Test : Cases) {
    driver::SessionOptions Options;
    std::string Error;
    std::string GranFlag = std::string("--granularity=") + Test.Granularity;
    ASSERT_TRUE(buildFromArgs({"--workload=numa_first_touch", "--threads=4",
                               "--sampling-period=512", GranFlag.c_str()},
                              Options, Error))
        << Error;
    auto Workload = workloads::createWorkload("numa_first_touch");
    ASSERT_NE(Workload, nullptr);
    driver::SessionResult Result =
        driver::runWorkload(*Workload, Options.Config);

    const std::vector<core::GrainStageSummary> &Stages = Result.Profile.Stages;
    ASSERT_EQ(Stages.size(), Test.Stages.size()) << Test.Granularity;
    for (size_t I = 0; I < Stages.size(); ++I) {
      EXPECT_EQ(Stages[I].Name, Test.Stages[I]) << Test.Granularity;
      std::string Line = driver::formatStageSummary(Stages[I]);
      EXPECT_EQ(Line.rfind("grain " + Stages[I].Name + ": ", 0), 0u) << Line;
      EXPECT_NE(Line.find("tracked"), std::string::npos) << Line;
      EXPECT_NE(Line.find("significant findings"), std::string::npos) << Line;
      EXPECT_NE(Line.find("invalidations"), std::string::npos) << Line;
      EXPECT_EQ(Line.find("remote") != std::string::npos, Stages[I].HasRemote)
          << Line;
    }
    // Tracked/Significant reflect the built reports of the owning stage.
    for (const core::GrainStageSummary &Stage : Stages) {
      if (Stage.Name == "line") {
        EXPECT_FALSE(Stage.HasRemote);
        EXPECT_EQ(Stage.Tracked, Result.Profile.AllInstances.size());
        EXPECT_EQ(Stage.Significant, Result.Profile.Reports.size());
      } else if (Stage.Name == "page") {
        EXPECT_TRUE(Stage.HasRemote);
        EXPECT_EQ(Stage.Tracked, Result.Profile.AllPageInstances.size());
        EXPECT_EQ(Stage.Significant, Result.Profile.PageReports.size());
      }
    }
  }
}

TEST(SessionOptionsTest, ExplicitFlagsConflictingWithFileAreErrors) {
  std::string Path = writeTempFile("topo_conflict.json", ValidDocument);
  driver::SessionOptions Options;
  std::string Error;
  ASSERT_FALSE(buildFromArgs({("--numa-topology=" + Path).c_str(),
                              "--numa-nodes=2"},
                             Options, Error));
  EXPECT_NE(Error.find("conflicts"), std::string::npos) << Error;

  ASSERT_FALSE(buildFromArgs({("--numa-topology=" + Path).c_str(),
                              "--page-size=4096"},
                             Options, Error));
  EXPECT_NE(Error.find("conflicts"), std::string::npos) << Error;

  // Matching explicit flags are not conflicts.
  ASSERT_TRUE(buildFromArgs({("--numa-topology=" + Path).c_str(),
                             "--numa-nodes=4", "--page-size=8192"},
                            Options, Error))
      << Error;
}

} // namespace
