//===- tests/ReportDiffTest.cpp - report diff / gate tests -----------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-run comparison layer behind `cheetah-diff`: parseReport's
/// schema version gate (v2/v3 in, v1 and garbage out — loudly),
/// site-identity matching across runs with relocated objects, the
/// regression-gate semantics CI anchors on, and byte-stability goldens
/// for both output formats (two independently produced profiler runs of
/// the same seed must diff to identical bytes).
///
//===----------------------------------------------------------------------===//

#include "core/report/ReportDiff.h"
#include "core/report/ReportSink.h"
#include "driver/ProfileSession.h"
#include "mem/NumaTopology.h"
#include "support/Json.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::core;

namespace {

//===----------------------------------------------------------------------===//
// Synthetic documents through the production sink
//===----------------------------------------------------------------------===//

FalseSharingReport syntheticLineFinding(const std::string &Name,
                                        double Improvement) {
  FalseSharingReport Report;
  Report.Object.IsHeap = false;
  Report.Object.GlobalName = Name;
  Report.Object.Start = 0x10000000;
  Report.Object.Size = 256;
  Report.Kind = SharingKind::FalseSharing;
  Report.SampledAccesses = 1000;
  Report.SampledWrites = 400;
  Report.Invalidations = 123;
  Report.LatencyCycles = 50000;
  Report.ThreadsObserved = 4;
  Report.Impact.ImprovementFactor = Improvement;
  return Report;
}

PageSharingReport syntheticPageFinding(const std::string &Object,
                                       uint64_t PageBase,
                                       double Improvement) {
  PageSharingReport Report;
  Report.PageBase = PageBase;
  Report.PageSize = 4096;
  Report.HomeNode = 0;
  Report.NodesObserved = 2;
  Report.Kind = SharingKind::FalseSharing;
  Report.SampledAccesses = 2000;
  Report.SampledWrites = 900;
  Report.RemoteAccesses = 800;
  Report.Invalidations = 77;
  Report.LatencyCycles = 60000;
  Report.RemoteLatencyCycles = 30000;
  Report.Impact.ImprovementFactor = Improvement;
  Report.Objects.push_back(Object);
  return Report;
}

/// Serializes a small report with the given findings through the real
/// JSON sink.
std::string renderDocument(
    const std::vector<std::pair<FalseSharingReport, bool>> &Findings,
    const std::vector<std::pair<PageSharingReport, bool>> &Pages,
    bool FixApplied = false) {
  std::string Out;
  JsonReportSink Sink(Out);
  ReportRunInfo Info;
  Info.Tool = "cheetah";
  Info.Workload = "synthetic";
  Info.Threads = 4;
  Info.FixApplied = FixApplied;
  Info.Granularity = "both";
  Sink.beginRun(Info);
  for (const auto &[Report, Significant] : Findings)
    Sink.finding(Report, Significant);
  for (const auto &[Report, Significant] : Pages)
    Sink.pageFinding(Report, Significant);
  ReportRunStats Stats;
  Stats.AppRuntime = 1000000;
  Stats.Findings = Findings.size();
  Stats.PageFindings = Pages.size();
  Sink.endRun(Stats);
  return Out;
}

ParsedReport mustParse(const std::string &Text) {
  ParsedReport Report;
  std::string Error;
  EXPECT_TRUE(parseReport(Text, Report, Error)) << Error;
  return Report;
}

//===----------------------------------------------------------------------===//
// parseReport: schema gate and field extraction
//===----------------------------------------------------------------------===//

TEST(ReportDiffParseTest, ReadsV4DocumentsEndToEnd) {
  std::string Text = renderDocument(
      {{syntheticLineFinding("hot_global", 1.7), true}},
      {{syntheticPageFinding("numa_slots", 0x40000000, 2.5), true}});
  ParsedReport Report = mustParse(Text);
  EXPECT_EQ(Report.Schema, "cheetah-report-v4");
  EXPECT_EQ(Report.Workload, "synthetic");
  EXPECT_EQ(Report.AppRuntimeCycles, 1000000u);
  ASSERT_EQ(Report.Findings.size(), 1u);
  EXPECT_EQ(Report.Findings[0].Key, "line:global:hot_global#0");
  EXPECT_TRUE(Report.Findings[0].HasImprovement);
  EXPECT_NEAR(Report.Findings[0].Improvement, 1.7, 1e-12);
  ASSERT_EQ(Report.PageFindings.size(), 1u);
  EXPECT_EQ(Report.PageFindings[0].Key, "page:numa_slots#0");
  EXPECT_TRUE(Report.PageFindings[0].HasImprovement);
  EXPECT_EQ(Report.PageFindings[0].RemoteAccesses, 800u);
}

TEST(ReportDiffParseTest, RejectsV1AndUnknownSchemas) {
  std::string Text = renderDocument({}, {});
  for (const char *Schema : {"cheetah-report-v1", "cheetah-report-v99",
                             "not-a-cheetah-report"}) {
    std::string Mutated = Text;
    size_t Pos = Mutated.find("cheetah-report-v4");
    ASSERT_NE(Pos, std::string::npos);
    Mutated.replace(Pos, std::string("cheetah-report-v4").size(), Schema);
    ParsedReport Report;
    std::string Error;
    EXPECT_FALSE(parseReport(Mutated, Report, Error)) << Schema;
    EXPECT_NE(Error.find("unsupported schema"), std::string::npos);
    EXPECT_NE(Error.find(Schema), std::string::npos);
  }
}

TEST(ReportDiffParseTest, AcceptsV2WithoutPageImprovement) {
  // A v2 document is a v3 document minus page assessment; simulate one by
  // relabeling the schema — parseReport must accept it, and a page
  // finding stripped of its improvement fields must read back as
  // HasImprovement=false.
  std::string Text = renderDocument(
      {}, {{syntheticPageFinding("numa_slots", 0x40000000, 2.5), true}});
  size_t Pos = Text.find("cheetah-report-v4");
  Text.replace(Pos, std::string("cheetah-report-v4").size(),
               "cheetah-report-v2");
  ParsedReport Report = mustParse(Text);
  EXPECT_EQ(Report.Schema, "cheetah-report-v2");

  std::string Stripped = Text;
  size_t Improvement = Stripped.find("\"predictedImprovement\":2.5,");
  ASSERT_NE(Improvement, std::string::npos);
  Stripped.erase(Improvement,
                 std::string("\"predictedImprovement\":2.5,").size());
  size_t Assessment = Stripped.find(",\"assessment\":{");
  ASSERT_NE(Assessment, std::string::npos);
  size_t End = Stripped.find('}', Assessment);
  ASSERT_NE(End, std::string::npos);
  Stripped.erase(Assessment, End - Assessment + 1);
  ParsedReport Old = mustParse(Stripped);
  ASSERT_EQ(Old.PageFindings.size(), 1u);
  EXPECT_FALSE(Old.PageFindings[0].HasImprovement);
}

TEST(ReportDiffParseTest, NegativeCountersFailLoudlyNotAbort) {
  // asUint() asserts on negative numbers; a hostile document must come
  // back as an error string, never a SIGABRT.
  std::string Text = renderDocument({}, {});
  size_t Pos = Text.find("\"threads\":4");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, std::string("\"threads\":4").size(), "\"threads\":-4");
  ParsedReport Report;
  std::string Error;
  EXPECT_FALSE(parseReport(Text, Report, Error));
  EXPECT_NE(Error.find("negative"), std::string::npos);
}

TEST(ReportDiffParseTest, MissingSectionsFailLoudly) {
  ParsedReport Report;
  std::string Error;
  EXPECT_FALSE(parseReport("", Report, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(parseReport("[]", Report, Error));
  EXPECT_NE(Error.find("not a JSON object"), std::string::npos);
  EXPECT_FALSE(parseReport("{}", Report, Error));
  EXPECT_NE(Error.find("schema"), std::string::npos);
  EXPECT_FALSE(parseReport(
      "{\"schema\":\"cheetah-report-v3\",\"findings\":[]}", Report, Error));
  EXPECT_NE(Error.find("run"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// diffReports matching and gate semantics
//===----------------------------------------------------------------------===//

TEST(ReportDiffTest, MatchesBySiteAcrossRelocatedObjects) {
  // Same global name, different addresses (the fixed layout relocated
  // it): must match, not added+removed.
  FalseSharingReport OldFinding = syntheticLineFinding("hot_global", 1.8);
  FalseSharingReport NewFinding = syntheticLineFinding("hot_global", 1.1);
  NewFinding.Object.Start = 0x20000000;
  ParsedReport Old =
      mustParse(renderDocument({{OldFinding, true}}, {}));
  ParsedReport New =
      mustParse(renderDocument({{NewFinding, true}}, {}, true));

  ReportDiffResult Diff = diffReports(Old, New);
  EXPECT_TRUE(Diff.Added.empty());
  EXPECT_TRUE(Diff.Removed.empty());
  ASSERT_EQ(Diff.Matched.size(), 1u);
  EXPECT_NEAR(Diff.Matched[0].improvementDelta(), -0.7, 1e-9);
}

TEST(ReportDiffTest, RepeatedSiteKeysPairInOrder) {
  // Three pages of one array in the old run, two in the new: two matched
  // pairs (in report order) plus one removed.
  ParsedReport Old = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 3.0), true},
           {syntheticPageFinding("blocks", 0x2000, 2.0), true},
           {syntheticPageFinding("blocks", 0x3000, 1.5), true}}));
  ParsedReport New = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x9000, 1.4), true},
           {syntheticPageFinding("blocks", 0xA000, 1.2), true}}));

  ReportDiffResult Diff = diffReports(Old, New);
  EXPECT_EQ(Diff.PageAdded.size(), 0u);
  ASSERT_EQ(Diff.PageRemoved.size(), 1u);
  EXPECT_EQ(Diff.PageRemoved[0].Key, "page:blocks#2");
  ASSERT_EQ(Diff.PageMatched.size(), 2u);
  EXPECT_NEAR(Diff.PageMatched[0].Old.Improvement, 3.0, 1e-12);
  EXPECT_NEAR(Diff.PageMatched[0].New.Improvement, 1.4, 1e-12);
}

TEST(ReportDiffGateTest, CleanOnFixedAndTrippedOnReintroduction) {
  ParsedReport Broken = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 1.9), true}}));
  ParsedReport Fixed = mustParse(renderDocument({}, {}, true));

  // broken -> fixed: the finding disappeared; nothing regresses.
  EXPECT_TRUE(gateRegressions(diffReports(Broken, Fixed), 1.1).empty());

  // fixed -> broken: a significant finding at 1.9x appeared.
  std::vector<GateViolation> Violations =
      gateRegressions(diffReports(Fixed, Broken), 1.1);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_TRUE(Violations[0].NewSite);
  EXPECT_NEAR(Violations[0].Finding.Improvement, 1.9, 1e-12);
}

TEST(ReportDiffGateTest, StableKnownFindingDoesNotTrip) {
  ParsedReport Old = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 1.9), true}}));
  ParsedReport New = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x2000, 1.9), true}}));
  EXPECT_TRUE(gateRegressions(diffReports(Old, New), 1.1).empty());
}

TEST(ReportDiffGateTest, GrowthAndGateCrossingTrip) {
  ParsedReport Old = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 1.3), true},
           {syntheticPageFinding("other", 0x2000, 1.05), true}}));
  ParsedReport New = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 1.6), true},
           {syntheticPageFinding("other", 0x2000, 1.2), true}}));
  std::vector<GateViolation> Violations =
      gateRegressions(diffReports(Old, New), 1.1);
  ASSERT_EQ(Violations.size(), 2u); // grew 1.3->1.6, crossed 1.05->1.2
  for (const GateViolation &Violation : Violations)
    EXPECT_FALSE(Violation.NewSite);
}

TEST(ReportDiffGateTest, V2BaselineWithoutImprovementDoesNotTrip) {
  // Old run from a v2 producer: its page findings carry no improvement
  // factor. Matching them against an unchanged v4 finding above the gate
  // must not read as "crossed the gate" — that would fail every
  // v2 -> v4 CI transition spuriously.
  std::string OldText = renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 1.9), true}});
  size_t Schema = OldText.find("cheetah-report-v4");
  OldText.replace(Schema, 17, "cheetah-report-v2");
  size_t Improvement = OldText.find("\"predictedImprovement\":1.9,");
  ASSERT_NE(Improvement, std::string::npos);
  OldText.erase(Improvement,
                std::string("\"predictedImprovement\":1.9,").size());
  size_t Assessment = OldText.find(",\"assessment\":{");
  ASSERT_NE(Assessment, std::string::npos);
  size_t End = OldText.find('}', Assessment);
  OldText.erase(Assessment, End - Assessment + 1);
  ParsedReport Old = mustParse(OldText);
  ASSERT_FALSE(Old.PageFindings[0].HasImprovement);

  ParsedReport New = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 1.9), true}}));
  EXPECT_TRUE(gateRegressions(diffReports(Old, New), 1.1).empty());
}

TEST(ReportDiffGateTest, InsignificantAndUnassessedFindingsAreSkipped) {
  ParsedReport Old = mustParse(renderDocument({}, {}));
  std::string NewText = renderDocument(
      {}, {{syntheticPageFinding("noise", 0x1000, 5.0), false}});
  ParsedReport New = mustParse(NewText);
  EXPECT_TRUE(gateRegressions(diffReports(Old, New), 1.1).empty());
}

//===----------------------------------------------------------------------===//
// Output goldens: byte stability
//===----------------------------------------------------------------------===//

/// Two full profiler runs of the same seed, serialized independently.
std::string profileToJson(bool Fix) {
  auto Workload = workloads::createWorkload("numa_interleaved");
  EXPECT_NE(Workload, nullptr);
  driver::SessionConfig Config;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
  Config.Profiler.Topology = NumaTopology(2, 4096);
  Config.Profiler.Detect.TrackPages = true;
  Config.Workload.Threads = 8;
  Config.Workload.Scale = 0.5;
  Config.Workload.NumaNodes = 2;
  Config.Workload.FixFalseSharing = Fix;
  std::string Out;
  JsonReportSink Sink(Out);
  driver::runWorkload(*Workload, Config, &Sink);
  return Out;
}

TEST(ReportDiffGoldenTest, TextAndJsonOutputsAreByteStable) {
  ParsedReport Broken1 = mustParse(profileToJson(false));
  ParsedReport Fixed1 = mustParse(profileToJson(true));
  ParsedReport Broken2 = mustParse(profileToJson(false));
  ParsedReport Fixed2 = mustParse(profileToJson(true));

  ReportDiffResult First = diffReports(Broken1, Fixed1);
  ReportDiffResult Second = diffReports(Broken2, Fixed2);
  EXPECT_EQ(formatDiffText(First, 1.1), formatDiffText(Second, 1.1));
  EXPECT_EQ(formatDiffJson(First, 1.1), formatDiffJson(Second, 1.1));
  EXPECT_FALSE(formatDiffText(First, 1.1).empty());
}

TEST(ReportDiffGoldenTest, TextGoldenForSyntheticPair) {
  ParsedReport Old = mustParse(renderDocument(
      {{syntheticLineFinding("hot_global", 1.5), true}},
      {{syntheticPageFinding("blocks", 0x1000, 1.9), true}}));
  ParsedReport New = mustParse(renderDocument({}, {}, true));

  std::string Expected =
      "cheetah-diff: synthetic (4 threads, fix off) -> synthetic "
      "(4 threads, fix on)\n"
      "schema cheetah-report-v4 -> cheetah-report-v4, runtime 1000000 -> "
      "1000000 cycles\n"
      "== line findings: 0 added, 1 removed, 0 matched ==\n"
      "  removed  line:global:hot_global#0  false-sharing  improvement "
      "1.5000x\n"
      "== page findings: 0 added, 1 removed, 0 matched ==\n"
      "  removed  page:blocks#0  false-sharing  improvement 1.9000x\n"
      "== gate: factor 1.1000 ==\n"
      "gate verdict: 0 regression(s)\n";
  EXPECT_EQ(formatDiffText(diffReports(Old, New), 1.1), Expected);
}

TEST(ReportDiffGoldenTest, JsonOutputParsesAndCarriesGateVerdict) {
  ParsedReport Old = mustParse(renderDocument({}, {}));
  ParsedReport New = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 1.9), true}}));
  std::string Json = formatDiffJson(diffReports(Old, New), 1.1);

  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Json, Document, Error)) << Error;
  EXPECT_EQ(Document.find("schema")->asString(), "cheetah-diff-v1");
  const JsonValue *Pages = Document.find("pageFindings");
  ASSERT_NE(Pages, nullptr);
  EXPECT_EQ(Pages->find("added")->size(), 1u);
  const JsonValue *Gate = Document.find("gate");
  ASSERT_NE(Gate, nullptr);
  EXPECT_EQ(Gate->find("regressions")->asUint(), 1u);
  const JsonValue &Violation = Gate->find("violations")->elements()[0];
  EXPECT_EQ(Violation.find("kind")->asString(), "new-site");
  EXPECT_EQ(Violation.find("key")->asString(), "page:blocks#0");
}

} // namespace
