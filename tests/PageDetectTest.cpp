//===- tests/PageDetectTest.cpp - page-granularity detection tests ---------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and end-to-end tests for the page-granularity (NUMA / remote-DRAM)
/// detection layer: the node-actor reuse of the packed two-entry table,
/// PageTable's first-touch home publication and lazy materialization, the
/// detector's page stage gating, the classifier reuse at page granularity,
/// and the acceptance scenario — the node-interleaved workload produces a
/// significant page-sharing finding that the line-granularity detector
/// does not surface, and the fixes silence it.
///
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/detect/Detector.h"
#include "core/detect/PageInfo.h"
#include "core/detect/PageTable.h"
#include "driver/ProfileSession.h"
#include "mem/NumaTopology.h"
#include "support/Random.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::core;

namespace {

constexpr uint64_t RegionBase = 0x4000'0000;
constexpr uint64_t PageSize = 4096;
constexpr uint64_t LineSize = 64;

pmu::Sample makeSample(uint64_t Address, ThreadId Tid, bool IsWrite,
                       uint32_t Latency = 30) {
  pmu::Sample Sample;
  Sample.Address = Address;
  Sample.Tid = Tid;
  Sample.IsWrite = IsWrite;
  Sample.LatencyCycles = Latency;
  return Sample;
}

//===----------------------------------------------------------------------===//
// NumaTopology geometry and affinity
//===----------------------------------------------------------------------===//

TEST(NumaTopologyTest, GeometryAndAffinity) {
  NumaTopology Topology(4, 4096);
  EXPECT_EQ(Topology.nodeCount(), 4u);
  EXPECT_TRUE(Topology.multiNode());
  EXPECT_EQ(Topology.pageSize(), 4096u);
  EXPECT_EQ(Topology.pageShift(), 12u);
  EXPECT_EQ(Topology.pageBase(0x40001234), 0x40001000u);
  EXPECT_EQ(Topology.offsetInPage(0x40001234), 0x234u);
  EXPECT_TRUE(Topology.sharesPage(0x40001000, 0x40001FFF));
  EXPECT_FALSE(Topology.sharesPage(0x40001000, 0x40002000));
  // Interleaved affinity, main thread on node 0.
  EXPECT_EQ(Topology.nodeOf(0), 0u);
  EXPECT_EQ(Topology.nodeOf(1), 1u);
  EXPECT_EQ(Topology.nodeOf(5), 1u);
  EXPECT_EQ(Topology.nodeOf(7), 3u);
}

TEST(NumaTopologyTest, SingleNodeIsUma) {
  NumaTopology Topology;
  EXPECT_FALSE(Topology.multiNode());
  for (ThreadId Tid = 0; Tid < 64; ++Tid)
    EXPECT_EQ(Topology.nodeOf(Tid), 0u);
}

//===----------------------------------------------------------------------===//
// PageInfo: the node-actor two-entry rule, case by case
//===----------------------------------------------------------------------===//

TEST(PageInfoTest, SingleNodeNeverInvalidatesAfterFirstWrite) {
  PageInfo Info(PageSize / LineSize);
  EXPECT_TRUE(Info.recordAccess(0, 0, AccessKind::Write, 0, 10, false));
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(
        Info.recordAccess(0, 0, AccessKind::Write, I % 64, 10, false));
    EXPECT_FALSE(
        Info.recordAccess(0, 0, AccessKind::Read, I % 64, 10, false));
  }
  EXPECT_EQ(Info.invalidations(), 1u);
  EXPECT_EQ(Info.nodeCount(), 1u);
}

TEST(PageInfoTest, CrossNodePingPongInvalidatesEachTime) {
  PageInfo Info(PageSize / LineSize);
  Info.recordAccess(0, 0, AccessKind::Write, 0, 10, false);
  uint64_t Invalidations = 0;
  for (int I = 0; I < 10; ++I)
    Invalidations +=
        Info.recordAccess(I % 2 ? 0 : 1, I % 2 ? 0 : 1, AccessKind::Write,
                          I % 2 ? 0 : 1, 10, I % 2 == 0);
  EXPECT_EQ(Invalidations, 10u);
  EXPECT_EQ(Info.invalidations(), 11u);
  EXPECT_EQ(Info.nodeCount(), 2u);
  // The packed table's entries are node ids and stay distinct.
  EXPECT_LE(Info.table().size(), 2u);
}

TEST(PageInfoTest, RemoteDistanceBucketsConserveRemoteTotals) {
  PageInfo Info(PageSize / LineSize);
  // Local accesses never land in a bucket.
  Info.recordAccess(0, 0, AccessKind::Write, 0, 100, /*Remote=*/false, 0);
  EXPECT_TRUE(Info.remoteByDistance().empty());

  // Remote samples bucket per distinct crossed distance, sorted.
  Info.recordAccess(1, 1, AccessKind::Read, 1, 50, true, 48);
  Info.recordAccess(1, 1, AccessKind::Write, 1, 70, true, 48);
  Info.recordAccess(2, 2, AccessKind::Read, 2, 30, true, 16);
  // Distance 0 from an untopologized caller folds into the default.
  Info.recordAccess(3, 3, AccessKind::Read, 3, 20, true, 0);

  std::vector<RemoteDistanceStats> Buckets = Info.remoteByDistance();
  ASSERT_EQ(Buckets.size(), 3u);
  EXPECT_EQ(Buckets[0].Distance, NumaTopology::DefaultRemoteDistance);
  EXPECT_EQ(Buckets[1].Distance, 16u);
  EXPECT_EQ(Buckets[1].Accesses, 1u);
  EXPECT_EQ(Buckets[2].Distance, 48u);
  EXPECT_EQ(Buckets[2].Accesses, 2u);
  EXPECT_EQ(Buckets[2].Cycles, 120u);

  uint64_t Accesses = 0, Cycles = 0;
  for (const RemoteDistanceStats &Bucket : Buckets) {
    Accesses += Bucket.Accesses;
    Cycles += Bucket.Cycles;
  }
  EXPECT_EQ(Accesses, Info.remoteAccesses());
  EXPECT_EQ(Cycles, Info.remoteCycles());
}

TEST(PageInfoTest, CountersAndPerNodeAccounting) {
  PageInfo Info(PageSize / LineSize);
  Info.recordAccess(0, 0, AccessKind::Write, 0, 100, false);
  Info.recordAccess(1, 1, AccessKind::Read, 1, 50, true);
  Info.recordAccess(1, 1, AccessKind::Write, 1, 70, true);

  EXPECT_EQ(Info.accesses(), 3u);
  EXPECT_EQ(Info.writes(), 2u);
  EXPECT_EQ(Info.cycles(), 220u);
  EXPECT_EQ(Info.remoteAccesses(), 2u);
  EXPECT_EQ(Info.remoteCycles(), 120u);

  std::vector<NodePageStats> Nodes = Info.nodes();
  ASSERT_EQ(Nodes.size(), 2u);
  EXPECT_EQ(Nodes[0].Node, 0u);
  EXPECT_EQ(Nodes[0].Accesses, 1u);
  EXPECT_EQ(Nodes[0].Writes, 1u);
  EXPECT_EQ(Nodes[1].Node, 1u);
  EXPECT_EQ(Nodes[1].Accesses, 2u);
  EXPECT_EQ(Nodes[1].Cycles, 120u);

  // Per-line histogram: line 0 single-node, line 1 single-node (node 1).
  std::vector<WordStats> Lines = Info.lines();
  EXPECT_EQ(Lines[0].Writes, 1u);
  EXPECT_EQ(Lines[0].FirstThread, 0u);
  EXPECT_FALSE(Lines[0].MultiThread);
  EXPECT_EQ(Lines[1].accesses(), 2u);
  EXPECT_EQ(Lines[1].FirstThread, 1u);
  EXPECT_FALSE(Lines[1].MultiThread);

  // A second node on line 0 flips its multi-node flag.
  Info.recordAccess(1, 1, AccessKind::Read, 0, 10, true);
  EXPECT_TRUE(Info.lines()[0].MultiThread);
}

//===----------------------------------------------------------------------===//
// PageTable: homes, materialization, accounting
//===----------------------------------------------------------------------===//

TEST(PageTableTest, FirstTouchHomeIsPublishedOnce) {
  NumaTopology Topology(2, PageSize);
  CacheGeometry Geometry(LineSize);
  PageTable Pages(Topology, Geometry, {{RegionBase, 4 * PageSize}});

  EXPECT_EQ(Pages.homeNode(RegionBase), NoNode);
  EXPECT_EQ(Pages.noteTouch(RegionBase + 8, 1), 1u);
  // Later touches, even by other nodes, do not move the home.
  EXPECT_EQ(Pages.noteTouch(RegionBase + 128, 0), 1u);
  EXPECT_EQ(Pages.homeNode(RegionBase + PageSize - 1), 1u);
  // Other pages are independent.
  EXPECT_EQ(Pages.homeNode(RegionBase + PageSize), NoNode);
}

TEST(PageTableTest, MaterializationIsLazyAndCounted) {
  NumaTopology Topology(2, PageSize);
  CacheGeometry Geometry(LineSize);
  PageTable Pages(Topology, Geometry, {{RegionBase, 8 * PageSize}});

  EXPECT_TRUE(Pages.covers(RegionBase));
  EXPECT_FALSE(Pages.covers(RegionBase - 1));
  EXPECT_EQ(Pages.detail(RegionBase), nullptr);
  EXPECT_EQ(Pages.materializedPages(), 0u);
  size_t FlatBytes = Pages.pageBytes();
  EXPECT_GT(FlatBytes, 0u);

  PageInfo &Info = Pages.materializeDetail(RegionBase + 100);
  EXPECT_EQ(&Pages.materializeDetail(RegionBase + 200), &Info);
  EXPECT_EQ(Pages.detail(RegionBase), &Info);
  EXPECT_EQ(Pages.materializedPages(), 1u);
  EXPECT_EQ(Pages.pageBytes(), FlatBytes + Info.footprintBytes());

  EXPECT_EQ(Pages.noteWrite(RegionBase), 1u);
  EXPECT_EQ(Pages.noteWrite(RegionBase + 64), 2u);
  EXPECT_EQ(Pages.writeCount(RegionBase + PageSize - 4), 2u);
  EXPECT_EQ(Pages.writeCount(RegionBase + PageSize), 0u);

  EXPECT_EQ(Pages.lineIndexInPage(RegionBase + 64), 1u);
  EXPECT_EQ(Pages.lineIndexInPage(RegionBase + PageSize + 130), 2u);
  EXPECT_EQ(Pages.linesPerPage(), PageSize / LineSize);
}

//===----------------------------------------------------------------------===//
// Detector page stage: gating, homes, stats
//===----------------------------------------------------------------------===//

struct PageDetectorHarness {
  NumaTopology Topology{2, PageSize};
  CacheGeometry Geometry{LineSize};
  ShadowMemory Shadow;
  PageTable Pages;
  Detector Detect;

  explicit PageDetectorHarness(DetectorConfig Config)
      : Shadow(Geometry, {{RegionBase, 16 * PageSize}}),
        Pages(Topology, Geometry, {{RegionBase, 16 * PageSize}}),
        Detect(Geometry, Shadow, Config) {
    Detect.attachPageTable(Pages, Topology);
  }
};

TEST(PageDetectorTest, PagesBelowWriteThresholdNeverMaterialize) {
  DetectorConfig Config;
  Config.TrackPages = true;
  Config.PageWriteThreshold = 2;
  PageDetectorHarness H(Config);

  H.Detect.handleSample(makeSample(RegionBase, 1, true), true);
  H.Detect.handleSample(makeSample(RegionBase + 8, 2, true), true);
  EXPECT_EQ(H.Pages.materializedPages(), 0u);
  // Sampled reads on a page below the threshold stay cheap too.
  H.Detect.handleSample(makeSample(RegionBase + 12, 1, false), true);
  EXPECT_EQ(H.Pages.materializedPages(), 0u);
  // The third sampled write crosses the threshold and materializes,
  // matching the line stage's contract.
  H.Detect.handleSample(makeSample(RegionBase + 16, 1, true), true);
  EXPECT_EQ(H.Pages.materializedPages(), 1u);

  DetectorStats Stats = H.Detect.stats();
  EXPECT_EQ(Stats.PageSamplesRecorded, 1u);
}

TEST(PageDetectorTest, SerialPhaseSetsHomesButRecordsNoDetail) {
  DetectorConfig Config;
  Config.TrackPages = true;
  Config.PageWriteThreshold = 0;
  PageDetectorHarness H(Config);

  // Serial phase: main (node 0) touches two pages.
  H.Detect.handleSample(makeSample(RegionBase, 0, true), false);
  H.Detect.handleSample(makeSample(RegionBase + PageSize, 0, true), false);
  EXPECT_EQ(H.Pages.homeNode(RegionBase), 0u);
  EXPECT_EQ(H.Pages.homeNode(RegionBase + PageSize), 0u);
  EXPECT_EQ(H.Pages.materializedPages(), 0u);
  EXPECT_EQ(H.Detect.stats().PageSamplesRecorded, 0u);

  // Parallel phase: thread 1 (node 1) writes the first page — remote.
  H.Detect.handleSample(makeSample(RegionBase + 64, 1, true), true);
  DetectorStats Stats = H.Detect.stats();
  EXPECT_EQ(Stats.PageSamplesRecorded, 1u);
  EXPECT_EQ(Stats.RemoteSamples, 1u);
  // Fold any per-thread shards back before reading detail (no-op in the
  // shared-table builds).
  H.Detect.quiesce();
  const PageInfo *Info = H.Pages.detail(RegionBase);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->remoteAccesses(), 1u);
}

TEST(PageDetectorTest, CrossNodeHammerCountsPageInvalidations) {
  DetectorConfig Config;
  Config.TrackPages = true;
  Config.PageWriteThreshold = 0;
  PageDetectorHarness H(Config);

  // Threads 1 (node 1) and 2 (node 0) write disjoint lines of one page.
  for (unsigned I = 0; I < 100; ++I) {
    ThreadId Tid = 1 + (I % 2);
    uint64_t Line = Tid * 4 * LineSize;
    H.Detect.handleSample(makeSample(RegionBase + Line, Tid, true), true);
  }
  DetectorStats Stats = H.Detect.stats();
  EXPECT_EQ(Stats.PageSamplesRecorded, 100u);
  EXPECT_GT(Stats.PageInvalidations, 90u); // ping-pong: ~every write
  // Fold any per-thread shards back before reading detail (no-op in the
  // shared-table builds).
  H.Detect.quiesce();
  const PageInfo *Info = H.Pages.detail(RegionBase);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->nodeCount(), 2u);
  EXPECT_EQ(Info->invalidations(), Stats.PageInvalidations);
  // No line is multi-node: this is false *page* sharing.
  for (const WordStats &Line : Info->lines())
    EXPECT_FALSE(Line.MultiThread);
}

TEST(PageDetectorTest, LineStageOffLeavesLineCountersUntouched) {
  DetectorConfig Config;
  Config.TrackPages = true;
  Config.TrackLines = false;
  Config.PageWriteThreshold = 0;
  PageDetectorHarness H(Config);

  for (unsigned I = 0; I < 50; ++I)
    H.Detect.handleSample(makeSample(RegionBase + I * 8, 1 + (I % 2), true),
                          true);
  DetectorStats Stats = H.Detect.stats();
  EXPECT_EQ(Stats.SamplesSeen, 50u);
  EXPECT_EQ(Stats.SamplesRecorded, 0u);
  EXPECT_EQ(Stats.Invalidations, 0u);
  EXPECT_EQ(H.Shadow.materializedLines(), 0u);
  EXPECT_EQ(Stats.PageSamplesRecorded, 50u);
  EXPECT_GT(H.Pages.materializedPages(), 0u);
}

//===----------------------------------------------------------------------===//
// End to end: the acceptance scenario
//===----------------------------------------------------------------------===//

driver::SessionConfig pageSessionConfig(bool TrackLines = true) {
  driver::SessionConfig Config;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
  Config.Profiler.Topology = NumaTopology(2, PageSize);
  Config.Profiler.Detect.TrackPages = true;
  Config.Profiler.Detect.TrackLines = TrackLines;
  Config.Workload.Threads = 8;
  Config.Workload.Scale = 0.5;
  Config.Workload.NumaNodes = 2;
  Config.Workload.PageBytes = PageSize;
  return Config;
}

TEST(PageEndToEndTest, InterleavedWorkloadFoundByPageNotLine) {
  auto Workload = workloads::createWorkload("numa_interleaved");
  ASSERT_NE(Workload, nullptr);
  driver::SessionResult Result =
      driver::runWorkload(*Workload, pageSessionConfig());
  const ProfileResult &Profile = Result.Profile;

  // The line-granularity gate stays silent: no cache line is shared.
  EXPECT_TRUE(Profile.Reports.empty());

  // The page detector reports significant false page sharing across nodes.
  ASSERT_FALSE(Profile.PageReports.empty());
  const PageSharingReport &Top = Profile.PageReports.front();
  EXPECT_EQ(Top.Kind, SharingKind::FalseSharing);
  EXPECT_GE(Top.NodesObserved, 2u);
  EXPECT_GT(Top.Invalidations, 8u);
  EXPECT_GT(Top.RemoteAccesses, 0u);
  ASSERT_FALSE(Top.Objects.empty());
  EXPECT_EQ(Top.Objects.front(), "numa_interleaved_slots");
  // Every hot line on the page is single-node (that is what makes it
  // *false* page sharing).
  for (const PageLineEntry &Line : Top.Lines)
    EXPECT_FALSE(Line.MultiNode);
  // The simulator charged remote interconnect traffic for the same reason.
  EXPECT_GT(Result.Run.RemoteNumaAccesses, 0u);
}

TEST(PageEndToEndTest, PageOnlyGranularityAlsoFindsIt) {
  auto Workload = workloads::createWorkload("numa_interleaved");
  driver::SessionResult Result =
      driver::runWorkload(*Workload, pageSessionConfig(/*TrackLines=*/false));
  EXPECT_TRUE(Result.Profile.Reports.empty());
  EXPECT_TRUE(Result.Profile.AllInstances.empty());
  EXPECT_FALSE(Result.Profile.PageReports.empty());
}

TEST(PageEndToEndTest, PagePaddingFixSilencesTheFinding) {
  auto Workload = workloads::createWorkload("numa_interleaved");
  driver::SessionConfig Config = pageSessionConfig();
  Config.Workload.FixFalseSharing = true;
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  EXPECT_TRUE(Result.Profile.Reports.empty());
  EXPECT_TRUE(Result.Profile.PageReports.empty())
      << "page-aligned slots must not be reported";
  // With one thread per page, nothing is remote after first touch.
  EXPECT_EQ(Result.Profile.Detection.RemoteSamples, 0u);
}

TEST(PageEndToEndTest, FirstTouchBugSurfacesAsRemotePlacement) {
  auto Workload = workloads::createWorkload("numa_first_touch");
  ASSERT_NE(Workload, nullptr);
  driver::SessionConfig Config = pageSessionConfig();
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(64);
  Config.Workload.Scale = 1.0;
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  const ProfileResult &Profile = Result.Profile;

  EXPECT_TRUE(Profile.Reports.empty());
  ASSERT_FALSE(Profile.PageReports.empty());
  // The significant pages are single-node but homed elsewhere: placement,
  // not sharing.
  for (const PageSharingReport &Report : Profile.PageReports) {
    EXPECT_EQ(Report.HomeNode, 0u) << "serial init homes everything on 0";
    EXPECT_GT(Report.remoteFraction(), 0.9);
    EXPECT_EQ(Report.Objects.front(), "numa_first_touch_blocks");
  }
  EXPECT_GT(Result.Run.RemoteNumaAccesses, 0u);

  // The parallel-first-touch fix homes each block locally: no remote
  // traffic, no findings, and a faster simulated run.
  Config.Workload.FixFalseSharing = true;
  driver::SessionResult Fixed = driver::runWorkload(*Workload, Config);
  EXPECT_TRUE(Fixed.Profile.PageReports.empty());
  EXPECT_EQ(Fixed.Run.RemoteNumaAccesses, 0u);
  EXPECT_LT(Fixed.Run.TotalCycles, Result.Run.TotalCycles);
}

TEST(PageEndToEndTest, SingleNodeTopologyReportsNothing) {
  // The degenerate UMA machine: page tracking on, one node — every access
  // is local and no page can be multi-node.
  auto Workload = workloads::createWorkload("numa_interleaved");
  driver::SessionConfig Config = pageSessionConfig();
  Config.Profiler.Topology = NumaTopology(1, PageSize);
  Config.Workload.NumaNodes = 1;
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  EXPECT_TRUE(Result.Profile.PageReports.empty());
  EXPECT_EQ(Result.Profile.Detection.RemoteSamples, 0u);
  EXPECT_EQ(Result.Run.RemoteNumaAccesses, 0u);
}

} // namespace
