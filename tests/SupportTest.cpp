//===- tests/SupportTest.cpp - support library tests ----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Generator.h"
#include "support/Json.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace cheetah;

namespace {

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

Generator<int> countUpTo(int Limit) {
  for (int I = 0; I < Limit; ++I)
    co_yield I;
}

Generator<int> emptyGenerator() { co_return; }

TEST(GeneratorTest, YieldsAllValuesInOrder) {
  Generator<int> Gen = countUpTo(5);
  std::vector<int> Values;
  while (Gen.next())
    Values.push_back(Gen.value());
  EXPECT_EQ(Values, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(GeneratorTest, EmptyGeneratorProducesNothing) {
  Generator<int> Gen = emptyGenerator();
  EXPECT_FALSE(Gen.next());
}

TEST(GeneratorTest, ExhaustedGeneratorStaysExhausted) {
  Generator<int> Gen = countUpTo(1);
  EXPECT_TRUE(Gen.next());
  EXPECT_FALSE(Gen.next());
  EXPECT_FALSE(Gen.next());
}

TEST(GeneratorTest, MoveTransfersOwnership) {
  Generator<int> Gen = countUpTo(3);
  EXPECT_TRUE(Gen.next());
  Generator<int> Moved = std::move(Gen);
  EXPECT_TRUE(Moved.next());
  EXPECT_EQ(Moved.value(), 1);
  EXPECT_FALSE(static_cast<bool>(Gen));
}

TEST(GeneratorTest, DefaultConstructedIsEmpty) {
  Generator<int> Gen;
  EXPECT_FALSE(Gen.next());
  EXPECT_FALSE(static_cast<bool>(Gen));
}

TEST(GeneratorTest, ByValueParametersSurviveFrameLifetime) {
  // Parameters are copied into the coroutine frame; the original goes away.
  auto Make = [](std::vector<int> Data) {
    return [](std::vector<int> Copy) -> Generator<int> {
      for (int V : Copy)
        co_yield V;
    }(std::move(Data));
  };
  Generator<int> Gen = Make({7, 8, 9});
  std::vector<int> Values;
  while (Gen.next())
    Values.push_back(Gen.value());
  EXPECT_EQ(Values, (std::vector<int>{7, 8, 9}));
}

//===----------------------------------------------------------------------===//
// SplitMix64
//===----------------------------------------------------------------------===//

TEST(RandomTest, DeterministicForSeed) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(RandomTest, NextBelowStaysInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(RandomTest, NextInRangeInclusiveBounds) {
  SplitMix64 Rng(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 5000; ++I) {
    uint64_t V = Rng.nextInRange(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomTest, NextInRangeFullWidthDoesNotWrap) {
  // Hi - Lo + 1 wraps to 0 for the full 64-bit range; the fix falls back to
  // a raw draw instead of tripping the nextBelow(0) assert.
  SplitMix64 Rng(17);
  uint64_t Or = 0, And = ~0ull;
  for (int I = 0; I < 256; ++I) {
    uint64_t V = Rng.nextInRange(0, ~0ull);
    Or |= V;
    And &= V;
  }
  // 256 full-width draws cover both halves of the value space.
  EXPECT_GT(Or, 1ull << 63);
  EXPECT_LT(And, 1ull << 63);
}

TEST(RandomTest, NextInRangeFullWidthNonzeroLo) {
  SplitMix64 Rng(19);
  // A single-value range must return that value.
  EXPECT_EQ(Rng.nextInRange(42, 42), 42u);
  // Maximal range anchored above zero still honours the lower bound.
  for (int I = 0; I < 256; ++I)
    EXPECT_GE(Rng.nextInRange(1, ~0ull), 1u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  SplitMix64 Rng(11);
  for (int I = 0; I < 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, NextBelowRoughlyUniform) {
  SplitMix64 Rng(13);
  std::vector<int> Buckets(8, 0);
  constexpr int N = 80000;
  for (int I = 0; I < N; ++I)
    ++Buckets[Rng.nextBelow(8)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, N / 8 - N / 80);
    EXPECT_LT(Count, N / 8 + N / 80);
  }
}

TEST(RandomTest, SplitProducesIndependentStream) {
  SplitMix64 Parent(21);
  SplitMix64 Child = Parent.split();
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += Parent.next() == Child.next();
  EXPECT_LT(Same, 2);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, EmptyStats) {
  OnlineStats Stats;
  EXPECT_EQ(Stats.count(), 0u);
  EXPECT_DOUBLE_EQ(Stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(Stats.variance(), 0.0);
}

TEST(StatisticsTest, MeanAndVarianceMatchClosedForm) {
  OnlineStats Stats;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    Stats.add(X);
  EXPECT_DOUBLE_EQ(Stats.mean(), 5.0);
  EXPECT_NEAR(Stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(Stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(Stats.sum(), 40.0);
}

TEST(StatisticsTest, MergeEqualsSequential) {
  OnlineStats A, B, All;
  for (int I = 0; I < 50; ++I) {
    double X = std::sin(I) * 10;
    (I % 2 ? A : B).add(X);
    All.add(X);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(A.min(), All.min());
  EXPECT_DOUBLE_EQ(A.max(), All.max());
}

TEST(StatisticsTest, MergeWithEmptySides) {
  OnlineStats A, Empty;
  A.add(3.0);
  A.merge(Empty);
  EXPECT_EQ(A.count(), 1u);
  OnlineStats B;
  B.merge(A);
  EXPECT_EQ(B.count(), 1u);
  EXPECT_DOUBLE_EQ(B.mean(), 3.0);
}

TEST(StatisticsTest, PercentileInterpolates) {
  std::vector<double> Values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(Values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(Values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(Values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(Values, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.99), 42.0);
}

TEST(StatisticsTest, GeometricMean) {
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(StatisticsTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatString("empty"), "empty");
  // Long outputs must not truncate.
  std::string Long = formatString("%0512d", 1);
  EXPECT_EQ(Long.size(), 512u);
}

TEST(StringUtilsTest, FormatWithCommas) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
}

TEST(StringUtilsTest, FormatHuman) {
  EXPECT_EQ(formatHuman(512), "512");
  EXPECT_EQ(formatHuman(65536), "64K");
  EXPECT_EQ(formatHuman(1 << 20), "1M");
  EXPECT_EQ(formatHuman(1000), "1000"); // not a multiple of 1024
}

TEST(StringUtilsTest, SplitAndTrim) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(trimString("  x y \n"), "x y");
  EXPECT_EQ(trimString(" \t "), "");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("--flag", "--"));
  EXPECT_FALSE(startsWith("-", "--"));
}

TEST(StringUtilsTest, TextTableAlignsColumns) {
  TextTable Table;
  Table.setHeader({"a", "long-column"});
  Table.addRow({"xx", "1"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("a   long-column"), std::string::npos);
  EXPECT_NE(Out.find("xx  1"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
  EXPECT_EQ(Table.rowCount(), 1u);
}

//===----------------------------------------------------------------------===//
// FlagSet
//===----------------------------------------------------------------------===//

TEST(CommandLineTest, ParsesAllTypes) {
  FlagSet Flags;
  Flags.addString("name", "d", "");
  Flags.addInt("count", 1, "");
  Flags.addDouble("ratio", 0.5, "");
  Flags.addBool("on", false, "");
  const char *Argv[] = {"prog", "--name=x",   "--count", "42",
                        "--ratio=2.5", "--on", "positional"};
  std::string Error;
  ASSERT_TRUE(Flags.parse(7, Argv, Error)) << Error;
  EXPECT_EQ(Flags.getString("name"), "x");
  EXPECT_EQ(Flags.getInt("count"), 42);
  EXPECT_DOUBLE_EQ(Flags.getDouble("ratio"), 2.5);
  EXPECT_TRUE(Flags.getBool("on"));
  ASSERT_EQ(Flags.positional().size(), 1u);
  EXPECT_EQ(Flags.positional()[0], "positional");
}

TEST(CommandLineTest, DefaultsApplyWhenUnset) {
  FlagSet Flags;
  Flags.addInt("n", 9, "");
  const char *Argv[] = {"prog"};
  std::string Error;
  ASSERT_TRUE(Flags.parse(1, Argv, Error));
  EXPECT_EQ(Flags.getInt("n"), 9);
  EXPECT_FALSE(Flags.wasSet("n"));
}

TEST(CommandLineTest, RejectsUnknownFlag) {
  FlagSet Flags;
  const char *Argv[] = {"prog", "--mystery"};
  std::string Error;
  EXPECT_FALSE(Flags.parse(2, Argv, Error));
  EXPECT_NE(Error.find("mystery"), std::string::npos);
}

TEST(CommandLineTest, RejectsBadInteger) {
  FlagSet Flags;
  Flags.addInt("n", 0, "");
  const char *Argv[] = {"prog", "--n=abc"};
  std::string Error;
  EXPECT_FALSE(Flags.parse(2, Argv, Error));
}

TEST(CommandLineTest, OutOfRangeNumbersAreRejectedNotSaturated) {
  // strtoll/strtod saturate on overflow (LLONG_MAX / +-HUGE_VAL) and only
  // report it via errno=ERANGE. Without the errno check a 20-digit period
  // "parses" as LLONG_MAX and sails past downstream validation; these all
  // must fail loudly instead.
  struct Case {
    bool IsInt;
    const char *Text;
  };
  const Case Cases[] = {
      {true, "99999999999999999999"},   // > LLONG_MAX: saturates
      {true, "-99999999999999999999"},  // < LLONG_MIN: saturates
      {true, "0x7fffffffffffffffff"},   // hex overflow (base-0 parse)
      {false, "1e999"},                 // overflow: +HUGE_VAL
      {false, "-1e999"},                // overflow: -HUGE_VAL
      {false, "1e-999"},                // underflow: denormal/zero + ERANGE
      {false, "inf"},                   // parses clean, non-finite
      {false, "-inf"},
      {false, "nan"},
  };
  for (const Case &C : Cases) {
    FlagSet Flags;
    if (C.IsInt)
      Flags.addInt("v", 0, "");
    else
      Flags.addDouble("v", 0.0, "");
    std::string Arg = std::string("--v=") + C.Text;
    const char *Argv[] = {"prog", Arg.c_str()};
    std::string Error;
    EXPECT_FALSE(Flags.parse(2, Argv, Error)) << C.Text;
    EXPECT_NE(Error.find("out of range"), std::string::npos) << C.Text;
    EXPECT_NE(Error.find(C.Text), std::string::npos) << C.Text;
  }
}

TEST(CommandLineTest, ExtremeButRepresentableValuesStillParse) {
  // The ERANGE guard must not over-reject: exact type extremes are valid.
  FlagSet Flags;
  Flags.addInt("min", 0, "");
  Flags.addInt("max", 0, "");
  Flags.addDouble("big", 0.0, "");
  Flags.addDouble("tiny", 0.0, "");
  const char *Argv[] = {"prog", "--min=-9223372036854775808",
                        "--max=9223372036854775807", "--big=1e300",
                        "--tiny=1e-300"};
  std::string Error;
  ASSERT_TRUE(Flags.parse(5, Argv, Error)) << Error;
  EXPECT_EQ(Flags.getInt("min"), INT64_MIN);
  EXPECT_EQ(Flags.getInt("max"), INT64_MAX);
  EXPECT_DOUBLE_EQ(Flags.getDouble("big"), 1e300);
  EXPECT_DOUBLE_EQ(Flags.getDouble("tiny"), 1e-300);
}

TEST(CommandLineTest, BoolAcceptsExplicitValues) {
  FlagSet Flags;
  Flags.addBool("b", true, "");
  const char *Argv[] = {"prog", "--b=false"};
  std::string Error;
  ASSERT_TRUE(Flags.parse(2, Argv, Error));
  EXPECT_FALSE(Flags.getBool("b"));
}

TEST(CommandLineTest, MissingValueIsAnError) {
  FlagSet Flags;
  Flags.addInt("n", 0, "");
  const char *Argv[] = {"prog", "--n"};
  std::string Error;
  EXPECT_FALSE(Flags.parse(2, Argv, Error));
}

TEST(CommandLineTest, UsageListsFlags) {
  FlagSet Flags;
  Flags.addInt("alpha", 3, "the alpha knob");
  std::string Usage = Flags.usage("tool");
  EXPECT_NE(Usage.find("alpha"), std::string::npos);
  EXPECT_NE(Usage.find("the alpha knob"), std::string::npos);
  EXPECT_NE(Usage.find("3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JSON writer
//===----------------------------------------------------------------------===//

TEST(JsonWriterTest, NestedStructureWithCommas) {
  std::string Out;
  JsonWriter Writer(Out);
  Writer.beginObject();
  Writer.member("a", uint64_t(1));
  Writer.key("b");
  Writer.beginArray();
  Writer.value(uint64_t(2));
  Writer.value("three");
  Writer.beginObject();
  Writer.member("c", true);
  Writer.endObject();
  Writer.endArray();
  Writer.member("d", false);
  Writer.endObject();
  EXPECT_EQ(Out, "{\"a\":1,\"b\":[2,\"three\",{\"c\":true}],\"d\":false}");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(jsonEscape(std::string("x\x01y")), "x\\u0001y");
}

TEST(JsonWriterTest, DoublesRoundTripShortest) {
  std::string Out;
  JsonWriter Writer(Out);
  Writer.beginArray();
  Writer.value(0.25);
  Writer.value(1.5);
  Writer.value(1.0 / 3.0);
  Writer.endArray();
  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Out, Document, Error)) << Error;
  EXPECT_EQ(Document.elements()[0].asNumber(), 0.25);
  EXPECT_EQ(Document.elements()[1].asNumber(), 1.5);
  EXPECT_EQ(Document.elements()[2].asNumber(), 1.0 / 3.0);
}

TEST(JsonWriterTest, LargeCountersExact) {
  std::string Out;
  JsonWriter Writer(Out);
  Writer.value(uint64_t(9007199254740992ull)); // 2^53
  EXPECT_EQ(Out, "9007199254740992");
}

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

TEST(JsonParserTest, ParsesEveryValueKind) {
  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(
      " { \"s\": \"hi\", \"n\": -2.5e2, \"t\": true, \"f\": false, "
      "\"z\": null, \"a\": [1, 2], \"o\": {\"k\": 3} } ",
      Document, Error))
      << Error;
  EXPECT_EQ(Document.find("s")->asString(), "hi");
  EXPECT_EQ(Document.find("n")->asNumber(), -250.0);
  EXPECT_TRUE(Document.find("t")->asBool());
  EXPECT_FALSE(Document.find("f")->asBool());
  EXPECT_TRUE(Document.find("z")->isNull());
  ASSERT_EQ(Document.find("a")->size(), 2u);
  EXPECT_EQ(Document.find("a")->elements()[1].asUint(), 2u);
  EXPECT_EQ(Document.find("o")->find("k")->asUint(), 3u);
  EXPECT_EQ(Document.find("missing"), nullptr);
}

TEST(JsonParserTest, DecodesEscapes) {
  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse("\"a\\\"b\\\\c\\nd\\u0041e\"", Document,
                               Error))
      << Error;
  EXPECT_EQ(Document.asString(), "a\"b\\c\ndAe");
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  JsonValue Document;
  std::string Error;
  EXPECT_FALSE(JsonValue::parse("{\"a\":}", Document, Error));
  EXPECT_FALSE(JsonValue::parse("[1,", Document, Error));
  EXPECT_FALSE(JsonValue::parse("\"unterminated", Document, Error));
  EXPECT_FALSE(JsonValue::parse("{} trailing", Document, Error));
  EXPECT_FALSE(JsonValue::parse("tru", Document, Error));
  EXPECT_FALSE(JsonValue::parse("", Document, Error));
  EXPECT_NE(Error.find("JSON error"), std::string::npos);
}

TEST(JsonParserTest, RoundTripsWriterOutput) {
  std::string Out;
  JsonWriter Writer(Out);
  Writer.beginObject();
  Writer.member("name", "weird\"chars\\\n");
  Writer.member("count", uint64_t(1234567890123ull));
  Writer.member("ratio", 0.125);
  Writer.endObject();
  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Out, Document, Error)) << Error;
  EXPECT_EQ(Document.find("name")->asString(), "weird\"chars\\\n");
  EXPECT_EQ(Document.find("count")->asUint(), 1234567890123ull);
  EXPECT_EQ(Document.find("ratio")->asNumber(), 0.125);
}

} // namespace
