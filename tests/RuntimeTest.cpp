//===- tests/RuntimeTest.cpp - runtime layer tests -------------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Callsite.h"
#include "runtime/GlobalRegistry.h"
#include "runtime/HeapAllocator.h"
#include "runtime/PhaseTracker.h"
#include "runtime/SymbolTable.h"
#include "runtime/ThreadRegistry.h"

#include <gtest/gtest.h>

#include <set>

using namespace cheetah;
using namespace cheetah::runtime;

/// A named global with external linkage so it appears in .symtab (defined
/// at the bottom of this file).
extern uint64_t cheetah_test_global_marker[4];

namespace {

//===----------------------------------------------------------------------===//
// CallsiteTable
//===----------------------------------------------------------------------===//

TEST(CallsiteTest, InterningDeduplicates) {
  CallsiteTable Table;
  CallsiteId A = Table.intern("foo.c", 10);
  CallsiteId B = Table.intern("foo.c", 10);
  CallsiteId C = Table.intern("foo.c", 11);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Table.get(A).innermost(), "foo.c:10");
}

TEST(CallsiteTest, UnknownIdIsZero) {
  CallsiteTable Table;
  EXPECT_EQ(Table.get(0).innermost(), "<unknown>");
  EXPECT_NE(Table.intern("a.c", 1), 0u);
}

TEST(CallsiteTest, FramesTruncatedToFive) {
  CallsiteTable Table;
  Callsite Deep;
  for (int I = 0; I < 10; ++I)
    Deep.Frames.push_back("frame" + std::to_string(I));
  CallsiteId Id = Table.intern(Deep);
  EXPECT_EQ(Table.get(Id).Frames.size(), MaxCallsiteFrames);
  EXPECT_EQ(Table.get(Id).Frames.front(), "frame0");
}

//===----------------------------------------------------------------------===//
// HeapAllocator
//===----------------------------------------------------------------------===//

class HeapTest : public ::testing::Test {
protected:
  CacheGeometry Geometry{64};
  HeapAllocator Heap{0x40000000, 8 << 20, Geometry};
};

TEST_F(HeapTest, SizeClassesArePowersOfTwo) {
  EXPECT_EQ(HeapAllocator::sizeClassFor(1), 8u);
  EXPECT_EQ(HeapAllocator::sizeClassFor(8), 8u);
  EXPECT_EQ(HeapAllocator::sizeClassFor(9), 16u);
  EXPECT_EQ(HeapAllocator::sizeClassFor(640), 1024u);
  EXPECT_EQ(HeapAllocator::sizeClassFor(65536), 65536u);
}

TEST_F(HeapTest, AllocationReturnsDistinctRanges) {
  uint64_t A = Heap.allocate(100, 0, 0);
  uint64_t B = Heap.allocate(100, 0, 0);
  ASSERT_NE(A, 0u);
  ASSERT_NE(B, 0u);
  EXPECT_NE(A, B);
  EXPECT_TRUE(B >= A + 128 || A >= B + 128);
}

TEST_F(HeapTest, ObjectAtFindsContainingObject) {
  uint64_t A = Heap.allocate(100, 0, 3);
  const HeapObject *Object = Heap.objectAt(A + 57);
  ASSERT_NE(Object, nullptr);
  EXPECT_EQ(Object->Start, A);
  EXPECT_EQ(Object->RequestedSize, 100u);
  EXPECT_EQ(Object->Size, 128u);
  EXPECT_EQ(Object->Site, 3u);
  EXPECT_EQ(Heap.objectAt(A + 128), nullptr); // one past the size class
}

TEST_F(HeapTest, ObjectAtOutsideArenaIsNull) {
  Heap.allocate(64, 0, 0);
  EXPECT_EQ(Heap.objectAt(0x1000), nullptr);
  EXPECT_EQ(Heap.objectAt(0x40000000 + (8ull << 20)), nullptr);
}

TEST_F(HeapTest, DifferentThreadsNeverShareACacheLine) {
  // The Hoard property (paper Section 2.2): objects in one line belong to
  // one thread. Allocate many small objects from several threads and check
  // line ownership is unique.
  std::map<uint64_t, ThreadId> LineOwner;
  for (ThreadId Tid = 0; Tid < 8; ++Tid)
    for (int I = 0; I < 200; ++I) {
      uint64_t Address = Heap.allocate(16, Tid, 0);
      ASSERT_NE(Address, 0u);
      for (uint64_t Byte = 0; Byte < 16; Byte += 4) {
        uint64_t Line = Geometry.lineIndex(Address + Byte);
        auto [It, Inserted] = LineOwner.emplace(Line, Tid);
        EXPECT_EQ(It->second, Tid)
            << "line shared between threads " << It->second << " and " << Tid;
      }
    }
}

TEST_F(HeapTest, FreeListReusesWithinThreadAndClass) {
  uint64_t A = Heap.allocate(100, 2, 0);
  Heap.deallocate(A, 2);
  uint64_t B = Heap.allocate(90, 2, 0); // same 128-byte class
  EXPECT_EQ(A, B);
}

TEST_F(HeapTest, MetadataSurvivesFree) {
  uint64_t A = Heap.allocate(100, 0, 5);
  Heap.deallocate(A, 0);
  const HeapObject *Object = Heap.objectAt(A);
  ASSERT_NE(Object, nullptr);
  EXPECT_FALSE(Object->Live);
  EXPECT_EQ(Object->Site, 5u);
}

TEST_F(HeapTest, LargeAllocationsAreLineAligned) {
  uint64_t A = Heap.allocate(100000, 0, 0);
  ASSERT_NE(A, 0u);
  EXPECT_EQ(A % Geometry.lineSize(), 0u);
  const HeapObject *Object = Heap.objectAt(A + 99999);
  ASSERT_NE(Object, nullptr);
  EXPECT_EQ(Object->Start, A);
}

TEST_F(HeapTest, ExhaustionReturnsZero) {
  HeapAllocator Tiny(0x50000000, 128 * 1024, Geometry);
  uint64_t Total = 0;
  while (true) {
    uint64_t A = Tiny.allocate(4096, 0, 0);
    if (A == 0)
      break;
    Total += 4096;
  }
  EXPECT_LE(Total, 128u * 1024);
  EXPECT_GT(Total, 0u);
}

TEST_F(HeapTest, StatsTrackAllocations) {
  Heap.allocate(10, 0, 0);
  uint64_t B = Heap.allocate(20, 0, 0);
  Heap.deallocate(B, 0);
  EXPECT_EQ(Heap.stats().Allocations, 2u);
  EXPECT_EQ(Heap.stats().Deallocations, 1u);
  EXPECT_EQ(Heap.stats().BytesRequested, 30u);
  EXPECT_GT(Heap.stats().ArenaBytesUsed, 0u);
}

TEST_F(HeapTest, ZeroSizeAllocationIsValid) {
  uint64_t A = Heap.allocate(0, 0, 0);
  EXPECT_NE(A, 0u);
  EXPECT_EQ(Heap.objectAt(A)->Size, 8u);
}

//===----------------------------------------------------------------------===//
// GlobalRegistry
//===----------------------------------------------------------------------===//

TEST(GlobalRegistryTest, PacksAdjacentGlobals) {
  CacheGeometry Geometry(64);
  GlobalRegistry Registry(0x10000000, 1 << 20, Geometry);
  uint64_t A = Registry.define("alpha", 8);
  uint64_t B = Registry.define("beta", 8);
  EXPECT_EQ(B, A + 8); // adjacent: can falsely share a line
  EXPECT_TRUE(Geometry.sharesLine(A, B));
}

TEST(GlobalRegistryTest, AlignedGlobalsStartOnLineBoundaries) {
  CacheGeometry Geometry(64);
  GlobalRegistry Registry(0x10000000, 1 << 20, Geometry);
  Registry.define("pad", 4);
  uint64_t Aligned = Registry.defineAligned("aligned", 128);
  EXPECT_EQ(Aligned % 64, 0u);
}

TEST(GlobalRegistryTest, GlobalAtResolvesNames) {
  CacheGeometry Geometry(64);
  GlobalRegistry Registry(0x10000000, 1 << 20, Geometry);
  uint64_t A = Registry.define("counter_array", 256);
  const GlobalVariable *Var = Registry.globalAt(A + 100);
  ASSERT_NE(Var, nullptr);
  EXPECT_EQ(Var->Name, "counter_array");
  EXPECT_EQ(Registry.globalAt(A + 256), nullptr);
  EXPECT_EQ(Registry.globalAt(0x20000000), nullptr);
}

TEST(GlobalRegistryTest, SegmentExhaustionReturnsZero) {
  CacheGeometry Geometry(64);
  GlobalRegistry Registry(0x10000000, 1024, Geometry);
  EXPECT_NE(Registry.define("a", 1000), 0u);
  EXPECT_EQ(Registry.define("b", 1000), 0u);
}

//===----------------------------------------------------------------------===//
// ThreadRegistry
//===----------------------------------------------------------------------===//

TEST(ThreadRegistryTest, TracksLifecycleAndSamples) {
  ThreadRegistry Registry;
  Registry.threadStarted(0, true, 0);
  Registry.threadStarted(1, false, 100);
  Registry.recordSample(1, 50);
  Registry.recordSample(1, 70);
  Registry.threadFinished(1, 400);
  const ThreadProfile &Profile = Registry.profile(1);
  EXPECT_EQ(Profile.runtime(), 300u);
  EXPECT_EQ(Profile.SampledAccesses, 2u);
  EXPECT_EQ(Profile.SampledCycles, 120u);
  EXPECT_TRUE(Profile.Finished);
  EXPECT_TRUE(Registry.profile(0).IsMain);
}

TEST(ThreadRegistryTest, UnfinishedThreadHasZeroRuntimeNotWraparound) {
  // A thread that never detached still has EndTime 0; EndTime - StartTime
  // would wrap to ~2^64 and poison every EQ.2 prediction built on it.
  ThreadRegistry Registry;
  Registry.threadStarted(1, false, 5000);
  Registry.recordSample(1, 50);
  EXPECT_EQ(Registry.profile(1).runtime(), 0u);
  EXPECT_FALSE(Registry.profile(1).Finished);
  // Clock skew putting the end before the start is the same hazard.
  ThreadProfile Skewed;
  Skewed.StartTime = 1000;
  Skewed.EndTime = 900;
  EXPECT_EQ(Skewed.runtime(), 0u);
}

TEST(ThreadRegistryTest, KnownAndTotals) {
  ThreadRegistry Registry;
  EXPECT_FALSE(Registry.known(0));
  Registry.threadStarted(0, true, 0);
  EXPECT_TRUE(Registry.known(0));
  EXPECT_FALSE(Registry.known(5));
  Registry.recordSample(0, 10);
  EXPECT_EQ(Registry.totalSampledAccesses(), 1u);
  EXPECT_EQ(Registry.totalSampledCycles(), 10u);
}

//===----------------------------------------------------------------------===//
// PhaseTracker
//===----------------------------------------------------------------------===//

TEST(PhaseTrackerTest, SingleForkJoinCycle) {
  PhaseTracker Tracker;
  Tracker.programBegin(0, 0);
  EXPECT_FALSE(Tracker.inParallelPhase());
  Tracker.threadCreated(1, 0, 100);
  Tracker.threadCreated(2, 0, 110);
  EXPECT_TRUE(Tracker.inParallelPhase());
  Tracker.threadFinished(1, 500);
  EXPECT_TRUE(Tracker.inParallelPhase());
  Tracker.threadFinished(2, 600);
  EXPECT_FALSE(Tracker.inParallelPhase());
  Tracker.programEnd(700);

  ASSERT_EQ(Tracker.phases().size(), 3u);
  EXPECT_FALSE(Tracker.phases()[0].Parallel);
  EXPECT_EQ(Tracker.phases()[0].span(), 100u);
  EXPECT_TRUE(Tracker.phases()[1].Parallel);
  EXPECT_EQ(Tracker.phases()[1].span(), 500u);
  EXPECT_EQ(Tracker.phases()[1].Members,
            (std::vector<ThreadId>{1, 2}));
  EXPECT_EQ(Tracker.phases()[2].span(), 100u);
  EXPECT_TRUE(Tracker.isForkJoin());
  EXPECT_EQ(Tracker.serialCycles(), 200u);
  EXPECT_EQ(Tracker.parallelCycles(), 500u);
  EXPECT_EQ(Tracker.totalCycles(), 700u);
}

TEST(PhaseTrackerTest, MultiplePhases) {
  PhaseTracker Tracker;
  Tracker.programBegin(0, 0);
  for (int Phase = 0; Phase < 3; ++Phase) {
    uint64_t Base = 1000 * (Phase + 1);
    ThreadId First = static_cast<ThreadId>(10 * Phase + 1);
    Tracker.threadCreated(First, 0, Base);
    Tracker.threadCreated(First + 1, 0, Base + 10);
    Tracker.threadFinished(First, Base + 500);
    Tracker.threadFinished(First + 1, Base + 600);
  }
  Tracker.programEnd(5000);
  int ParallelCount = 0;
  for (const ExecutionPhase &Phase : Tracker.phases())
    ParallelCount += Phase.Parallel;
  EXPECT_EQ(ParallelCount, 3);
  EXPECT_TRUE(Tracker.isForkJoin());
  EXPECT_EQ(Tracker.phaseOf(11), 3); // phases alternate serial/parallel
}

TEST(PhaseTrackerTest, NestedCreationBreaksForkJoin) {
  PhaseTracker Tracker;
  Tracker.programBegin(0, 0);
  Tracker.threadCreated(1, 0, 100);
  Tracker.threadCreated(2, 1, 200); // child creates a thread
  Tracker.threadFinished(2, 300);
  Tracker.threadFinished(1, 400);
  Tracker.programEnd(500);
  EXPECT_FALSE(Tracker.isForkJoin());
}

TEST(PhaseTrackerTest, MainExitingWithLiveChildrenBreaksForkJoin) {
  PhaseTracker Tracker;
  Tracker.programBegin(0, 0);
  Tracker.threadCreated(1, 0, 100);
  Tracker.programEnd(200);
  EXPECT_FALSE(Tracker.isForkJoin());
}

TEST(PhaseTrackerTest, OpenPhaseSpansZeroNotWraparound) {
  // Same guard as ThreadProfile::runtime(): a phase still open at
  // assessment time (EndTime 0) spans zero cycles, it does not wrap.
  ExecutionPhase Phase;
  Phase.StartTime = 4000;
  EXPECT_EQ(Phase.span(), 0u);
}

TEST(PhaseTrackerTest, PhaseOfUnknownThreadIsMinusOne) {
  PhaseTracker Tracker;
  Tracker.programBegin(0, 0);
  Tracker.programEnd(10);
  EXPECT_EQ(Tracker.phaseOf(42), -1);
}

//===----------------------------------------------------------------------===//
// SymbolTable (reads this test binary's own ELF symbols)
//===----------------------------------------------------------------------===//

TEST(SymbolTableTest, LoadsSelfAndFindsKnownGlobal) {
  SymbolTable Table;
  std::string Error;
  ASSERT_TRUE(Table.loadSelf(Error)) << Error;
  EXPECT_GT(Table.symbols().size(), 0u);
  // This variable lives in this binary's data segment.
  const DataSymbol *Symbol = Table.symbolNamed("cheetah_test_global_marker");
  ASSERT_NE(Symbol, nullptr);
  EXPECT_GE(Symbol->Size, sizeof(uint64_t) * 4);
}

TEST(SymbolTableTest, SymbolAtResolvesWithLoadBias) {
  SymbolTable Table;
  std::string Error;
  ASSERT_TRUE(Table.loadSelf(Error)) << Error;
  const DataSymbol *Named = Table.symbolNamed("cheetah_test_global_marker");
  ASSERT_NE(Named, nullptr);
  // Compute the PIE load bias from the known symbol, then resolve an
  // address in the middle of the object through symbolAt.
  uint64_t Runtime = reinterpret_cast<uint64_t>(&cheetah_test_global_marker);
  uint64_t Bias = Runtime - Named->Address;
  const DataSymbol *Found = Table.symbolAt(Runtime + 8, Bias);
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->Name, "cheetah_test_global_marker");
}

TEST(SymbolTableTest, MissingFileFailsGracefully) {
  SymbolTable Table;
  std::string Error;
  EXPECT_FALSE(Table.load("/nonexistent/binary", Error));
  EXPECT_FALSE(Error.empty());
}

TEST(SymbolTableTest, NonElfFileFailsGracefully) {
  SymbolTable Table;
  std::string Error;
  EXPECT_FALSE(Table.load("/etc/hostname", Error));
}

} // namespace

/// A named global with external linkage so it appears in .symtab.
uint64_t cheetah_test_global_marker[4] = {1, 2, 3, 4};
