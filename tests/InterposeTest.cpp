//===- tests/InterposeTest.cpp - interposition runtime tests ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/PreloadBridge.h"
#include "interpose/Preload.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace cheetah;
using namespace cheetah::interpose;

namespace {

class InterposeTest : public ::testing::Test {
protected:
  void SetUp() override { resetForTesting(); }
  void TearDown() override { resetForTesting(); }
};

TEST_F(InterposeTest, TimestampCounterIsMonotonic) {
  uint64_t A = readTimestampCounter();
  uint64_t B = readTimestampCounter();
  EXPECT_GE(B, A);
}

TEST_F(InterposeTest, BeginProfilingIsIdempotent) {
  beginProfiling();
  InterposeSummary First = summary();
  beginProfiling();
  InterposeSummary Second = summary();
  EXPECT_EQ(First.StartTimestamp, Second.StartTimestamp);
}

TEST_F(InterposeTest, AllocationCountersTrack) {
  beginProfiling();
  void *A = interposedMalloc(100, nullptr);
  void *B = interposedMalloc(28, nullptr);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  interposedFree(A);
  interposedFree(B);
  interposedFree(nullptr); // must be a no-op
  InterposeSummary Summary = summary();
  EXPECT_EQ(Summary.Allocations, 2u);
  EXPECT_EQ(Summary.Deallocations, 2u);
  EXPECT_EQ(Summary.BytesAllocated, 128u);
}

TEST_F(InterposeTest, ThreadLifecycleCounters) {
  beginProfiling();
  std::thread Worker([] {
    threadAttach();
    noteThreadCreate();
  });
  Worker.join();
  noteThreadJoin();
  InterposeSummary Summary = summary();
  EXPECT_EQ(Summary.ThreadsCreated, 1u);
  EXPECT_EQ(Summary.ThreadsJoined, 1u);
}

TEST_F(InterposeTest, PmuStatusIsAlwaysExplained) {
  beginProfiling();
  InterposeSummary Summary = summary();
  // Either live sampling or a concrete reason (e.g. perf_event_paranoid).
  EXPECT_FALSE(Summary.PmuStatus.empty());
  endProfiling();
}

//===----------------------------------------------------------------------===//
// Preload-to-profiler bridge: LD_PRELOAD-path samples become real reports.
//===----------------------------------------------------------------------===//

TEST_F(InterposeTest, BridgeDeliversInterposeSamplesToProfiler) {
  core::ProfilerConfig Config;
  Config.Report.MinInvalidations = 1;
  Config.Report.MinImprovementFactor = 0.0;
  Config.Detect.WriteThreshold = 0; // record every write in detail
  core::Profiler Profiler(Config);
  driver::PreloadProfilerBridge Bridge(Profiler);

  // Two "application" threads ping-pong writing disjoint words of one
  // monitored line through the per-thread interpose buffers.
  constexpr unsigned SamplesPerThread = 4000;
  std::vector<std::thread> Threads;
  for (ThreadId Tid : {1u, 2u}) {
    Bridge.attachThread(Tid);
    Threads.emplace_back([&, Tid] {
      threadAttach();
      for (unsigned I = 0; I < SamplesPerThread; ++I) {
        pmu::Sample Sample;
        Sample.Address = Config.HeapArenaBase + Tid * 8;
        Sample.Tid = Tid;
        Sample.IsWrite = true;
        Sample.LatencyCycles = 50;
        recordSample(Sample);
      }
      flushThreadSamples();
    });
  }
  for (std::thread &Thread : Threads)
    Thread.join();

  // Finish through the JSON sink: the bridge must provide the full
  // beginRun/finding/endRun lifecycle so the document is well-formed.
  std::string JsonText;
  core::JsonReportSink Sink(JsonText);
  core::ProfileResult Result = Bridge.finish(&Sink);
  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(JsonText, Document, Error)) << Error;
  EXPECT_EQ(Document.find("run")->find("tool")->asString(),
            "cheetah-preload");
  EXPECT_EQ(Document.find("summary")->find("findings")->asUint(),
            Result.AllInstances.size());

  // Every buffered sample reached the profiler's detector.
  InterposeSummary Summary = summary();
  EXPECT_EQ(Summary.SamplesBuffered, uint64_t(2) * SamplesPerThread);
  EXPECT_EQ(Summary.SamplesIngested, uint64_t(2) * SamplesPerThread);
  EXPECT_EQ(Result.Detection.SamplesSeen, uint64_t(2) * SamplesPerThread);
  EXPECT_EQ(Result.Detection.SamplesFiltered, 0u);
  EXPECT_GT(Result.Detection.Invalidations, 0u);

  // And the LD_PRELOAD path produced a real finding, not just counters.
  ASSERT_FALSE(Result.AllInstances.empty());
  const core::FalseSharingReport &Report = Result.AllInstances.front();
  EXPECT_EQ(Report.ThreadsObserved, 2u);
  EXPECT_EQ(Report.Kind, core::SharingKind::FalseSharing);
  EXPECT_EQ(Report.SampledWrites, uint64_t(2) * SamplesPerThread);
}

TEST_F(InterposeTest, BridgeDetachStopsParallelPhase) {
  core::ProfilerConfig Config;
  core::Profiler Profiler(Config);
  driver::PreloadProfilerBridge Bridge(Profiler);
  EXPECT_FALSE(Profiler.phases().inParallelPhase());
  Bridge.attachThread(1);
  EXPECT_TRUE(Profiler.phases().inParallelPhase());
  Bridge.detachThread(1);
  EXPECT_FALSE(Profiler.phases().inParallelPhase());
  Bridge.finish();
}

TEST_F(InterposeTest, BridgeFinishRacesRecordingThreadSafely) {
  // Regression test for the finish()-vs-straggler race: the interpose
  // runtime copies the sample sink under its lock but *calls* it unlocked,
  // so a thread still hammering recordSample/flushThreadSamples could
  // deliver a batch into the profiler while finish() was quiescing and
  // building the report. The bridge's ingest gate must drain in-flight
  // deliveries and drop every later one. Run under TSan this test fails
  // without the gate; in any build it must not crash or assert.
  constexpr int Rounds = 6;
  for (int Round = 0; Round < Rounds; ++Round) {
    resetForTesting();
    core::ProfilerConfig Config;
    Config.Detect.WriteThreshold = 0;
    core::Profiler Profiler(Config);
    {
      driver::PreloadProfilerBridge Bridge(Profiler);
      Bridge.attachThread(1);
      std::atomic<bool> Hammering{false};
      std::atomic<bool> Stop{false};
      std::thread Hammer([&] {
        threadAttach();
        while (!Stop.load(std::memory_order_acquire)) {
          pmu::Sample Sample;
          Sample.Address = Config.HeapArenaBase + 64 * (Round % 8);
          Sample.Tid = 1;
          Sample.IsWrite = true;
          Sample.LatencyCycles = 40;
          recordSample(Sample);
          flushThreadSamples();
          Hammering.store(true, std::memory_order_release);
        }
      });
      while (!Hammering.load(std::memory_order_acquire))
        std::this_thread::yield();
      // Finish mid-hammer: deliveries already inside the sink drain,
      // everything after bounces off the closed gate.
      Bridge.finish();
      Stop.store(true, std::memory_order_release);
      Hammer.join();
    }
  }
}

TEST_F(InterposeTest, CountersThreadSafeUnderContention) {
  beginProfiling();
  constexpr int ThreadCount = 4, PerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I < PerThread; ++I)
        interposedFree(interposedMalloc(16, nullptr));
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  InterposeSummary Summary = summary();
  EXPECT_EQ(Summary.Allocations, uint64_t(ThreadCount) * PerThread);
  EXPECT_EQ(Summary.Deallocations, uint64_t(ThreadCount) * PerThread);
}

} // namespace
