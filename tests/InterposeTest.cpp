//===- tests/InterposeTest.cpp - interposition runtime tests ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interpose/Preload.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cheetah;
using namespace cheetah::interpose;

namespace {

class InterposeTest : public ::testing::Test {
protected:
  void SetUp() override { resetForTesting(); }
  void TearDown() override { resetForTesting(); }
};

TEST_F(InterposeTest, TimestampCounterIsMonotonic) {
  uint64_t A = readTimestampCounter();
  uint64_t B = readTimestampCounter();
  EXPECT_GE(B, A);
}

TEST_F(InterposeTest, BeginProfilingIsIdempotent) {
  beginProfiling();
  InterposeSummary First = summary();
  beginProfiling();
  InterposeSummary Second = summary();
  EXPECT_EQ(First.StartTimestamp, Second.StartTimestamp);
}

TEST_F(InterposeTest, AllocationCountersTrack) {
  beginProfiling();
  void *A = interposedMalloc(100, nullptr);
  void *B = interposedMalloc(28, nullptr);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  interposedFree(A);
  interposedFree(B);
  interposedFree(nullptr); // must be a no-op
  InterposeSummary Summary = summary();
  EXPECT_EQ(Summary.Allocations, 2u);
  EXPECT_EQ(Summary.Deallocations, 2u);
  EXPECT_EQ(Summary.BytesAllocated, 128u);
}

TEST_F(InterposeTest, ThreadLifecycleCounters) {
  beginProfiling();
  std::thread Worker([] {
    threadAttach();
    noteThreadCreate();
  });
  Worker.join();
  noteThreadJoin();
  InterposeSummary Summary = summary();
  EXPECT_EQ(Summary.ThreadsCreated, 1u);
  EXPECT_EQ(Summary.ThreadsJoined, 1u);
}

TEST_F(InterposeTest, PmuStatusIsAlwaysExplained) {
  beginProfiling();
  InterposeSummary Summary = summary();
  // Either live sampling or a concrete reason (e.g. perf_event_paranoid).
  EXPECT_FALSE(Summary.PmuStatus.empty());
  endProfiling();
}

TEST_F(InterposeTest, CountersThreadSafeUnderContention) {
  beginProfiling();
  constexpr int ThreadCount = 4, PerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I < PerThread; ++I)
        interposedFree(interposedMalloc(16, nullptr));
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  InterposeSummary Summary = summary();
  EXPECT_EQ(Summary.Allocations, uint64_t(ThreadCount) * PerThread);
  EXPECT_EQ(Summary.Deallocations, uint64_t(ThreadCount) * PerThread);
}

} // namespace
