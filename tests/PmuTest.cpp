//===- tests/PmuTest.cpp - PMU layer tests ---------------------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pmu/PerfEventPmu.h"
#include "pmu/PmuConfig.h"
#include "pmu/SamplingPolicy.h"
#include "pmu/SimPmu.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

using namespace cheetah;
using namespace cheetah::pmu;

namespace {

//===----------------------------------------------------------------------===//
// SamplingPolicy
//===----------------------------------------------------------------------===//

TEST(SamplingPolicyTest, FixedPeriodFiresExactly) {
  SamplingPolicy Policy(100, /*JitterFraction=*/0.0, /*Seed=*/1);
  uint32_t Fired = 0;
  for (int I = 0; I < 1000; ++I)
    Fired += Policy.advance(1);
  EXPECT_EQ(Fired, 10u);
}

TEST(SamplingPolicyTest, LargeAdvanceCrossesMultipleSamples) {
  SamplingPolicy Policy(100, 0.0, 1);
  EXPECT_EQ(Policy.advance(1000), 10u);
}

TEST(SamplingPolicyTest, PeriodOneFiresEveryInstruction) {
  SamplingPolicy Policy(1, 0.0, 1);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Policy.advance(1), 1u);
}

class JitterTest : public ::testing::TestWithParam<double> {};

TEST_P(JitterTest, MeanRateIsPreservedUnderJitter) {
  constexpr uint64_t Period = 256;
  SamplingPolicy Policy(Period, GetParam(), 42);
  uint64_t Fired = 0;
  constexpr uint64_t Steps = 4 << 20;
  Fired = Policy.advance(Steps);
  double Expected = static_cast<double>(Steps) / Period;
  EXPECT_NEAR(static_cast<double>(Fired), Expected, Expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Jitters, JitterTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.9));

TEST(SamplingPolicyTest, JitterIsDeterministicPerSeed) {
  SamplingPolicy A(64, 0.25, 7), B(64, 0.25, 7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(A.advance(1), B.advance(1));
}

TEST(SamplingPolicyTest, DifferentSeedsDesynchronize) {
  SamplingPolicy A(64, 0.25, 1), B(64, 0.25, 2);
  int SameFires = 0, Fires = 0;
  for (int I = 0; I < 100000; ++I) {
    uint32_t FA = A.advance(1), FB = B.advance(1);
    if (FA && FB)
      ++SameFires;
    if (FA)
      ++Fires;
  }
  // Coincident fires should be rare (about Fires/64).
  EXPECT_LT(SameFires, Fires / 8);
}

//===----------------------------------------------------------------------===//
// SimPmu
//===----------------------------------------------------------------------===//

sim::CoherenceResult hitResult(uint64_t Latency) {
  sim::CoherenceResult Result;
  Result.Outcome = sim::AccessOutcome::LocalHit;
  Result.LatencyCycles = Latency;
  return Result;
}

TEST(SimPmuTest, DeliversSamplesAtConfiguredRate) {
  PmuConfig Config;
  Config.SamplingPeriod = 64;
  Config.JitterFraction = 0.0;
  SimPmu Pmu(Config);
  uint64_t Delivered = 0;
  Pmu.setHandler([&](const Sample &) { ++Delivered; });
  Pmu.onThreadStart(0, true, 0);
  for (int I = 0; I < 6400; ++I)
    Pmu.onMemoryAccess(0, MemoryAccess::write(0x100), hitResult(3), I);
  EXPECT_EQ(Delivered, 100u);
  EXPECT_EQ(Pmu.samplesDelivered(), 100u);
}

TEST(SimPmuTest, SampleCarriesAddressTidKindLatency) {
  PmuConfig Config;
  Config.SamplingPeriod = 1;
  Config.JitterFraction = 0.0;
  SimPmu Pmu(Config);
  Sample Last;
  Pmu.setHandler([&](const Sample &S) { Last = S; });
  Pmu.onThreadStart(7, false, 0);
  Pmu.onMemoryAccess(7, MemoryAccess::write(0xabcd), hitResult(99), 1234);
  EXPECT_EQ(Last.Address, 0xabcdu);
  EXPECT_EQ(Last.Tid, 7u);
  EXPECT_TRUE(Last.IsWrite);
  EXPECT_EQ(Last.LatencyCycles, 99u);
  EXPECT_EQ(Last.Timestamp, 1234u);
}

TEST(SimPmuTest, ComputeInstructionsAdvanceButDeliverNothing) {
  PmuConfig Config;
  Config.SamplingPeriod = 10;
  Config.JitterFraction = 0.0;
  SimPmu Pmu(Config);
  uint64_t Delivered = 0;
  Pmu.setHandler([&](const Sample &) { ++Delivered; });
  Pmu.onThreadStart(0, true, 0);
  Pmu.onInstructions(0, 1000); // crosses 100 sample points, all dropped
  EXPECT_EQ(Delivered, 0u);
  // The countdown really advanced: the next memory access fires promptly.
  uint64_t Before = Delivered;
  for (int I = 0; I < 10; ++I)
    Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), I);
  EXPECT_GT(Delivered, Before);
}

TEST(SimPmuTest, ThreadSetupCostChargedPerThread) {
  PmuConfig Config;
  Config.ThreadSetupCycles = 1234;
  SimPmu Pmu(Config);
  EXPECT_EQ(Pmu.onThreadStart(0, true, 0), 1234u);
  EXPECT_EQ(Pmu.onThreadStart(1, false, 0), 1234u);
  EXPECT_EQ(Pmu.threadsConfigured(), 2u);
}

TEST(SimPmuTest, HandlerCostChargedOnlyOnSamples) {
  PmuConfig Config;
  Config.SamplingPeriod = 4;
  Config.JitterFraction = 0.0;
  Config.SampleHandlerCycles = 500;
  SimPmu Pmu(Config);
  Pmu.setHandler([](const Sample &) {});
  Pmu.onThreadStart(0, true, 0);
  uint64_t Charged = 0;
  for (int I = 0; I < 16; ++I)
    Charged += Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), I);
  EXPECT_EQ(Charged, 4 * 500u);
}

TEST(SimPmuTest, DisabledPmuIsFree) {
  PmuConfig Config;
  Config.SamplingPeriod = 1;
  SimPmu Pmu(Config);
  uint64_t Delivered = 0;
  Pmu.setHandler([&](const Sample &) { ++Delivered; });
  Pmu.setEnabled(false);
  EXPECT_EQ(Pmu.onThreadStart(0, true, 0), 0u);
  EXPECT_EQ(Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), 0),
            0u);
  EXPECT_EQ(Delivered, 0u);
}

TEST(SimPmuTest, PerThreadCountdownsAreIndependent) {
  PmuConfig Config;
  Config.SamplingPeriod = 100;
  Config.JitterFraction = 0.0;
  SimPmu Pmu(Config);
  uint64_t Delivered = 0;
  Pmu.setHandler([&](const Sample &) { ++Delivered; });
  Pmu.onThreadStart(0, true, 0);
  Pmu.onThreadStart(1, false, 0);
  // 99 accesses on each thread: no thread reaches its own period.
  for (int I = 0; I < 99; ++I) {
    Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), I);
    Pmu.onMemoryAccess(1, MemoryAccess::read(0x20), hitResult(3), I);
  }
  EXPECT_EQ(Delivered, 0u);
}

TEST(SimPmuTest, ResetClearsCounters) {
  PmuConfig Config;
  Config.SamplingPeriod = 1;
  SimPmu Pmu(Config);
  Pmu.setHandler([](const Sample &) {});
  Pmu.onThreadStart(0, true, 0);
  Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), 0);
  EXPECT_GT(Pmu.samplesDelivered(), 0u);
  Pmu.reset();
  EXPECT_EQ(Pmu.samplesDelivered(), 0u);
  EXPECT_EQ(Pmu.threadsConfigured(), 0u);
}

TEST(SimPmuTest, LifecycleForwardsToSinkEvenWhenDisabled) {
  // An attached-but-disabled PMU silences samples and cycle charges, not
  // the profiler's view of the thread set: lifecycle tracks the program.
  PmuConfig Config;
  Config.SamplingPeriod = 1;
  SimPmu Pmu(Config);

  struct : SampleSink {
    std::vector<ThreadId> Started, Finished;
    size_t Batches = 0, MaxBatch = 0;
    void threadStarted(ThreadId Tid, bool, uint64_t) override {
      Started.push_back(Tid);
    }
    void threadFinished(ThreadId Tid, bool, uint64_t) override {
      Finished.push_back(Tid);
    }
    void ingestBatch(const Sample *, size_t Count) override {
      ++Batches;
      MaxBatch = std::max(MaxBatch, Count);
    }
  } Sink;
  Pmu.setSink(&Sink);

  Pmu.setEnabled(false);
  EXPECT_EQ(Pmu.onThreadStart(0, true, 0), 0u);
  Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), 0);
  EXPECT_EQ(Sink.Started, std::vector<ThreadId>{0});
  EXPECT_EQ(Sink.Batches, 0u);

  Pmu.setEnabled(true);
  for (int I = 0; I < 4; ++I)
    Pmu.onMemoryAccess(0, MemoryAccess::write(0x20), hitResult(3), I);
  // Delivery mirrors the real signal handler: batches of exactly one.
  EXPECT_EQ(Sink.Batches, 4u);
  EXPECT_EQ(Sink.MaxBatch, 1u);

  sim::ThreadRecord Record;
  Record.Tid = 0;
  Record.IsMain = true;
  Record.EndCycle = 99;
  Pmu.onThreadEnd(Record);
  EXPECT_EQ(Sink.Finished, std::vector<ThreadId>{0});
}

TEST(PmuConfigTest, WithScaledPeriodKeepsOverheadDensity) {
  PmuConfig Base;
  EXPECT_EQ(Base.withScaledPeriod(65536).SampleHandlerCycles,
            Base.SampleHandlerCycles);
  PmuConfig Dense = Base.withScaledPeriod(1024);
  EXPECT_EQ(Dense.SamplingPeriod, 1024u);
  EXPECT_EQ(Dense.SampleHandlerCycles, Base.SampleHandlerCycles * 1024 / 65536);
  // Never zero, or the overhead model would vanish entirely.
  EXPECT_GE(Base.withScaledPeriod(1).SampleHandlerCycles, 1u);
}

TEST(PmuConfigTest, FromSpecRejectsInvalidValuesWithReasons) {
  PmuConfig Out;
  std::string Error;

  PmuConfig ZeroPeriod;
  ZeroPeriod.SamplingPeriod = 0;
  EXPECT_FALSE(PmuConfig::fromSpec(ZeroPeriod, Out, Error));
  EXPECT_NE(Error.find("sampling period"), std::string::npos) << Error;

  PmuConfig BadJitter;
  BadJitter.JitterFraction = 1.0; // the full-period edge would allow a
                                  // zero inter-sample gap
  EXPECT_FALSE(PmuConfig::fromSpec(BadJitter, Out, Error));
  EXPECT_NE(Error.find("jitter"), std::string::npos) << Error;

  PmuConfig NanJitter;
  NanJitter.JitterFraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(PmuConfig::fromSpec(NanJitter, Out, Error));

  PmuConfig Good;
  Good.SamplingPeriod = 128;
  Good.JitterFraction = 0.5;
  ASSERT_TRUE(PmuConfig::fromSpec(Good, Out, Error)) << Error;
  EXPECT_EQ(Out.SamplingPeriod, 128u);
  EXPECT_EQ(Out.JitterFraction, 0.5);
}

TEST(SamplingPolicyTest, FromSpecMirrorsPmuConfigValidation) {
  SamplingPolicy Out;
  std::string Error;
  EXPECT_FALSE(SamplingPolicy::fromSpec(0, 0.25, 1, Out, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(SamplingPolicy::validateSpec(64, -0.1, Error));
  ASSERT_TRUE(SamplingPolicy::fromSpec(100, 0.0, 1, Out, Error)) << Error;
  EXPECT_EQ(Out.advance(1000), 10u);
}

//===----------------------------------------------------------------------===//
// PerfEventPmu (host-dependent: every outcome must be graceful)
//===----------------------------------------------------------------------===//

TEST(PerfEventTest, ProbeNeverCrashesAndExplainsFailure) {
  PerfEventStatus Status = PerfEventPmu::probe();
  if (!Status.Available)
    EXPECT_FALSE(Status.Reason.empty());
}

TEST(PerfEventTest, StartStopLifecycleIsSafe) {
  PmuConfig Config;
  PerfEventPmu Pmu(Config);
  PerfEventStatus Status = Pmu.start();
  if (Status.Available) {
    EXPECT_TRUE(Pmu.running());
    // Generate some memory traffic, then drain whatever arrived.
    volatile uint64_t Sink = 0;
    std::vector<uint64_t> Buffer(1 << 16);
    for (size_t I = 0; I < Buffer.size(); ++I)
      Sink += Buffer[I];
    std::vector<Sample> Samples;
    Pmu.drain(Samples); // may legitimately be empty
  } else {
    EXPECT_FALSE(Pmu.running());
    EXPECT_FALSE(Status.Reason.empty());
  }
  Pmu.stop();
  Pmu.stop(); // idempotent
  EXPECT_FALSE(Pmu.running());
}

TEST(PerfEventTest, DrainWithoutStartReturnsNothing) {
  PmuConfig Config;
  PerfEventPmu Pmu(Config);
  std::vector<Sample> Samples;
  EXPECT_EQ(Pmu.drain(Samples), 0u);
  EXPECT_TRUE(Samples.empty());
}

TEST(PerfEventTest, SampleSourceSeamSmoke) {
  // The real-hardware backend through the same SampleSource surface every
  // other backend conforms to. Hosts that block perf_event sampling
  // (containers, CI runners, perf_event_paranoid) skip — visibly, with
  // the probe's reason — rather than fail.
  PerfEventStatus Probe = PerfEventPmu::probe();
  if (!Probe.Available)
    GTEST_SKIP() << "perf_event sampling unavailable: " << Probe.Reason;

  struct : SampleSink {
    size_t Samples = 0;
    void threadStarted(ThreadId, bool, uint64_t) override {}
    void threadFinished(ThreadId, bool, uint64_t) override {}
    void ingestBatch(const Sample *, size_t Count) override {
      Samples += Count;
    }
  } Sink;

  PmuConfig Config;
  Config.SamplingPeriod = 1024; // dense: give the short loop a chance
  PerfEventPmu Pmu(Config);
  Pmu.setSink(&Sink);
  SourceStatus Status = Pmu.start();
  if (!Status.Available) {
    // The probe's throwaway counter can succeed while the real open still
    // hits a sandbox limit (e.g. locked memory for the ring buffer).
    GTEST_SKIP() << "perf_event start failed: " << Status.Reason;
  }
  volatile uint64_t Accumulator = 0;
  std::vector<uint64_t> Traffic(1 << 18, 1);
  for (size_t I = 0; I < Traffic.size(); ++I)
    Accumulator += Traffic[I];
  Pmu.drain(); // sink-directed drain; the stream may legitimately be empty
  EXPECT_EQ(Pmu.samplesDelivered(), Sink.Samples);
  EXPECT_TRUE(Pmu.stop().Available);
}

} // namespace
