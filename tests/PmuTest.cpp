//===- tests/PmuTest.cpp - PMU layer tests ---------------------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pmu/PerfEventPmu.h"
#include "pmu/PmuConfig.h"
#include "pmu/SamplingPolicy.h"
#include "pmu/SimPmu.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::pmu;

namespace {

//===----------------------------------------------------------------------===//
// SamplingPolicy
//===----------------------------------------------------------------------===//

TEST(SamplingPolicyTest, FixedPeriodFiresExactly) {
  SamplingPolicy Policy(100, /*JitterFraction=*/0.0, /*Seed=*/1);
  uint32_t Fired = 0;
  for (int I = 0; I < 1000; ++I)
    Fired += Policy.advance(1);
  EXPECT_EQ(Fired, 10u);
}

TEST(SamplingPolicyTest, LargeAdvanceCrossesMultipleSamples) {
  SamplingPolicy Policy(100, 0.0, 1);
  EXPECT_EQ(Policy.advance(1000), 10u);
}

TEST(SamplingPolicyTest, PeriodOneFiresEveryInstruction) {
  SamplingPolicy Policy(1, 0.0, 1);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Policy.advance(1), 1u);
}

class JitterTest : public ::testing::TestWithParam<double> {};

TEST_P(JitterTest, MeanRateIsPreservedUnderJitter) {
  constexpr uint64_t Period = 256;
  SamplingPolicy Policy(Period, GetParam(), 42);
  uint64_t Fired = 0;
  constexpr uint64_t Steps = 4 << 20;
  Fired = Policy.advance(Steps);
  double Expected = static_cast<double>(Steps) / Period;
  EXPECT_NEAR(static_cast<double>(Fired), Expected, Expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Jitters, JitterTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.9));

TEST(SamplingPolicyTest, JitterIsDeterministicPerSeed) {
  SamplingPolicy A(64, 0.25, 7), B(64, 0.25, 7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(A.advance(1), B.advance(1));
}

TEST(SamplingPolicyTest, DifferentSeedsDesynchronize) {
  SamplingPolicy A(64, 0.25, 1), B(64, 0.25, 2);
  int SameFires = 0, Fires = 0;
  for (int I = 0; I < 100000; ++I) {
    uint32_t FA = A.advance(1), FB = B.advance(1);
    if (FA && FB)
      ++SameFires;
    if (FA)
      ++Fires;
  }
  // Coincident fires should be rare (about Fires/64).
  EXPECT_LT(SameFires, Fires / 8);
}

//===----------------------------------------------------------------------===//
// SimPmu
//===----------------------------------------------------------------------===//

sim::CoherenceResult hitResult(uint64_t Latency) {
  sim::CoherenceResult Result;
  Result.Outcome = sim::AccessOutcome::LocalHit;
  Result.LatencyCycles = Latency;
  return Result;
}

TEST(SimPmuTest, DeliversSamplesAtConfiguredRate) {
  PmuConfig Config;
  Config.SamplingPeriod = 64;
  Config.JitterFraction = 0.0;
  SimPmu Pmu(Config);
  uint64_t Delivered = 0;
  Pmu.setHandler([&](const Sample &) { ++Delivered; });
  Pmu.onThreadStart(0, true, 0);
  for (int I = 0; I < 6400; ++I)
    Pmu.onMemoryAccess(0, MemoryAccess::write(0x100), hitResult(3), I);
  EXPECT_EQ(Delivered, 100u);
  EXPECT_EQ(Pmu.samplesDelivered(), 100u);
}

TEST(SimPmuTest, SampleCarriesAddressTidKindLatency) {
  PmuConfig Config;
  Config.SamplingPeriod = 1;
  Config.JitterFraction = 0.0;
  SimPmu Pmu(Config);
  Sample Last;
  Pmu.setHandler([&](const Sample &S) { Last = S; });
  Pmu.onThreadStart(7, false, 0);
  Pmu.onMemoryAccess(7, MemoryAccess::write(0xabcd), hitResult(99), 1234);
  EXPECT_EQ(Last.Address, 0xabcdu);
  EXPECT_EQ(Last.Tid, 7u);
  EXPECT_TRUE(Last.IsWrite);
  EXPECT_EQ(Last.LatencyCycles, 99u);
  EXPECT_EQ(Last.Timestamp, 1234u);
}

TEST(SimPmuTest, ComputeInstructionsAdvanceButDeliverNothing) {
  PmuConfig Config;
  Config.SamplingPeriod = 10;
  Config.JitterFraction = 0.0;
  SimPmu Pmu(Config);
  uint64_t Delivered = 0;
  Pmu.setHandler([&](const Sample &) { ++Delivered; });
  Pmu.onThreadStart(0, true, 0);
  Pmu.onInstructions(0, 1000); // crosses 100 sample points, all dropped
  EXPECT_EQ(Delivered, 0u);
  // The countdown really advanced: the next memory access fires promptly.
  uint64_t Before = Delivered;
  for (int I = 0; I < 10; ++I)
    Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), I);
  EXPECT_GT(Delivered, Before);
}

TEST(SimPmuTest, ThreadSetupCostChargedPerThread) {
  PmuConfig Config;
  Config.ThreadSetupCycles = 1234;
  SimPmu Pmu(Config);
  EXPECT_EQ(Pmu.onThreadStart(0, true, 0), 1234u);
  EXPECT_EQ(Pmu.onThreadStart(1, false, 0), 1234u);
  EXPECT_EQ(Pmu.threadsConfigured(), 2u);
}

TEST(SimPmuTest, HandlerCostChargedOnlyOnSamples) {
  PmuConfig Config;
  Config.SamplingPeriod = 4;
  Config.JitterFraction = 0.0;
  Config.SampleHandlerCycles = 500;
  SimPmu Pmu(Config);
  Pmu.setHandler([](const Sample &) {});
  Pmu.onThreadStart(0, true, 0);
  uint64_t Charged = 0;
  for (int I = 0; I < 16; ++I)
    Charged += Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), I);
  EXPECT_EQ(Charged, 4 * 500u);
}

TEST(SimPmuTest, DisabledPmuIsFree) {
  PmuConfig Config;
  Config.SamplingPeriod = 1;
  SimPmu Pmu(Config);
  uint64_t Delivered = 0;
  Pmu.setHandler([&](const Sample &) { ++Delivered; });
  Pmu.setEnabled(false);
  EXPECT_EQ(Pmu.onThreadStart(0, true, 0), 0u);
  EXPECT_EQ(Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), 0),
            0u);
  EXPECT_EQ(Delivered, 0u);
}

TEST(SimPmuTest, PerThreadCountdownsAreIndependent) {
  PmuConfig Config;
  Config.SamplingPeriod = 100;
  Config.JitterFraction = 0.0;
  SimPmu Pmu(Config);
  uint64_t Delivered = 0;
  Pmu.setHandler([&](const Sample &) { ++Delivered; });
  Pmu.onThreadStart(0, true, 0);
  Pmu.onThreadStart(1, false, 0);
  // 99 accesses on each thread: no thread reaches its own period.
  for (int I = 0; I < 99; ++I) {
    Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), I);
    Pmu.onMemoryAccess(1, MemoryAccess::read(0x20), hitResult(3), I);
  }
  EXPECT_EQ(Delivered, 0u);
}

TEST(SimPmuTest, ResetClearsCounters) {
  PmuConfig Config;
  Config.SamplingPeriod = 1;
  SimPmu Pmu(Config);
  Pmu.setHandler([](const Sample &) {});
  Pmu.onThreadStart(0, true, 0);
  Pmu.onMemoryAccess(0, MemoryAccess::read(0x10), hitResult(3), 0);
  EXPECT_GT(Pmu.samplesDelivered(), 0u);
  Pmu.reset();
  EXPECT_EQ(Pmu.samplesDelivered(), 0u);
  EXPECT_EQ(Pmu.threadsConfigured(), 0u);
}

TEST(PmuConfigTest, WithScaledPeriodKeepsOverheadDensity) {
  PmuConfig Base;
  EXPECT_EQ(Base.withScaledPeriod(65536).SampleHandlerCycles,
            Base.SampleHandlerCycles);
  PmuConfig Dense = Base.withScaledPeriod(1024);
  EXPECT_EQ(Dense.SamplingPeriod, 1024u);
  EXPECT_EQ(Dense.SampleHandlerCycles, Base.SampleHandlerCycles * 1024 / 65536);
  // Never zero, or the overhead model would vanish entirely.
  EXPECT_GE(Base.withScaledPeriod(1).SampleHandlerCycles, 1u);
}

//===----------------------------------------------------------------------===//
// PerfEventPmu (host-dependent: every outcome must be graceful)
//===----------------------------------------------------------------------===//

TEST(PerfEventTest, ProbeNeverCrashesAndExplainsFailure) {
  PerfEventStatus Status = PerfEventPmu::probe();
  if (!Status.Available)
    EXPECT_FALSE(Status.Reason.empty());
}

TEST(PerfEventTest, StartStopLifecycleIsSafe) {
  PmuConfig Config;
  PerfEventPmu Pmu(Config);
  PerfEventStatus Status = Pmu.start();
  if (Status.Available) {
    EXPECT_TRUE(Pmu.running());
    // Generate some memory traffic, then drain whatever arrived.
    volatile uint64_t Sink = 0;
    std::vector<uint64_t> Buffer(1 << 16);
    for (size_t I = 0; I < Buffer.size(); ++I)
      Sink += Buffer[I];
    std::vector<Sample> Samples;
    Pmu.drain(Samples); // may legitimately be empty
  } else {
    EXPECT_FALSE(Pmu.running());
    EXPECT_FALSE(Status.Reason.empty());
  }
  Pmu.stop();
  Pmu.stop(); // idempotent
  EXPECT_FALSE(Pmu.running());
}

TEST(PerfEventTest, DrainWithoutStartReturnsNothing) {
  PmuConfig Config;
  PerfEventPmu Pmu(Config);
  std::vector<Sample> Samples;
  EXPECT_EQ(Pmu.drain(Samples), 0u);
  EXPECT_TRUE(Samples.empty());
}

} // namespace
