//===- tests/IntegrationTest.cpp - end-to-end pipeline tests ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-pipeline properties tied to the paper's claims: assessment
/// precision (Table 1), profiling overhead (Figure 4), sampling versus full
/// instrumentation (Section 6.1), and the parallel-phase gating that fixes
/// Predator's init-then-share false positives (Section 2.4).
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace cheetah;

namespace {

driver::SessionConfig precisionConfig(uint32_t Threads) {
  driver::SessionConfig Config;
  Config.Workload.Threads = Threads;
  Config.Workload.Scale = 4.0;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(128);
  return Config;
}

/// Runs \p Name profiled, reads the top prediction, reruns the padded
/// variant natively, and returns {Predicted, Actual}.
std::pair<double, double> predictVsActual(const std::string &Name,
                                          uint32_t Threads) {
  auto Workload = workloads::createWorkload(Name);
  EXPECT_NE(Workload, nullptr);
  driver::SessionConfig Config = precisionConfig(Threads);
  driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);
  EXPECT_FALSE(Profiled.Profile.Reports.empty());
  if (Profiled.Profile.Reports.empty())
    return {0.0, 1.0};
  double Predicted =
      Profiled.Profile.Reports.front().Impact.ImprovementFactor;

  driver::SessionConfig FixedConfig = Config;
  FixedConfig.Workload.FixFalseSharing = true;
  FixedConfig.EnableProfiler = false;
  driver::SessionResult Fixed = driver::runWorkload(*Workload, FixedConfig);
  double Actual = static_cast<double>(Profiled.Run.TotalCycles) /
                  static_cast<double>(Fixed.Run.TotalCycles);
  return {Predicted, Actual};
}

//===----------------------------------------------------------------------===//
// Table 1: assessment precision within 10-15%
//===----------------------------------------------------------------------===//

class PrecisionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PrecisionTest, LinearRegressionPredictionWithinTolerance) {
  auto [Predicted, Actual] = predictVsActual("linear_regression", GetParam());
  ASSERT_GT(Predicted, 1.0);
  double Diff = Predicted / Actual - 1.0;
  // Paper: < 10%; we allow 15% headroom for the compressed simulation.
  EXPECT_LT(std::abs(Diff), 0.15)
      << "predicted " << Predicted << "x vs actual " << Actual << "x";
  // The instance is substantial at every thread count (paper: 2x-6.7x).
  EXPECT_GT(Actual, 1.8);
}

TEST_P(PrecisionTest, StreamclusterPredictionWithinTolerance) {
  auto [Predicted, Actual] = predictVsActual("streamcluster", GetParam());
  ASSERT_GT(Predicted, 1.0);
  EXPECT_LT(std::abs(Predicted / Actual - 1.0), 0.15);
  // Mild instance (paper: ~1.02x-1.03x).
  EXPECT_GT(Actual, 1.0);
  EXPECT_LT(Actual, 1.3);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PrecisionTest,
                         ::testing::Values(2, 4, 8, 16),
                         [](const auto &Info) {
                           return "threads" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Figure 4: overhead of sampling-based profiling is small
//===----------------------------------------------------------------------===//

TEST(OverheadTest, CheetahOverheadIsSmallAtDeploymentPeriod) {
  auto Workload = workloads::createWorkload("linear_regression");
  driver::SessionConfig Config;
  Config.Workload.Threads = 8;
  Config.Workload.Scale = 1.0;
  Config.Profiler.Pmu.SamplingPeriod = 65536; // deployment default

  driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);
  driver::SessionConfig Native = Config;
  Native.EnableProfiler = false;
  driver::SessionResult Baseline = driver::runWorkload(*Workload, Native);

  double Overhead = static_cast<double>(Profiled.Run.TotalCycles) /
                        static_cast<double>(Baseline.Run.TotalCycles) -
                    1.0;
  EXPECT_GE(Overhead, 0.0);
  EXPECT_LT(Overhead, 0.25); // paper: ~7% average, <12% for most apps
}

TEST(OverheadTest, ThreadHeavyAppsPayPerThreadSetup) {
  // kmeans (224 threads) must show visibly more overhead than a
  // single-phase app at the same sampling period (Figure 4's outliers).
  driver::SessionConfig Config;
  Config.Workload.Threads = 16;
  Config.Workload.Scale = 0.3;
  Config.Profiler.Pmu.SamplingPeriod = 65536;

  auto MeasureOverhead = [&](const char *Name) {
    auto Workload = workloads::createWorkload(Name);
    driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);
    driver::SessionConfig Native = Config;
    Native.EnableProfiler = false;
    driver::SessionResult Baseline = driver::runWorkload(*Workload, Native);
    return static_cast<double>(Profiled.Run.TotalCycles) /
               static_cast<double>(Baseline.Run.TotalCycles) -
           1.0;
  };

  double Kmeans = MeasureOverhead("kmeans");
  double Blackscholes = MeasureOverhead("blackscholes");
  EXPECT_GT(Kmeans, Blackscholes);
}

TEST(OverheadTest, FullInstrumentationCostsMultiplesOfSampling) {
  // Section 6.1: instrumentation-based tools run 5x+ slower; sampling makes
  // Cheetah deployable.
  auto Workload = workloads::createWorkload("linear_regression");
  driver::SessionConfig Config;
  Config.Workload.Threads = 8;
  Config.Workload.Scale = 1.0;
  Config.Profiler.Pmu.SamplingPeriod = 65536;

  driver::SessionConfig Native = Config;
  Native.EnableProfiler = false;
  driver::SessionResult Baseline = driver::runWorkload(*Workload, Native);

  baseline::FullTrackerConfig Tracker;
  Tracker.PerAccessCycles = 16;
  driver::FullTrackResult Full =
      driver::runFullTracking(*Workload, Config, Tracker);

  driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);

  double FullSlowdown = static_cast<double>(Full.Run.TotalCycles) /
                        static_cast<double>(Baseline.Run.TotalCycles);
  double CheetahSlowdown = static_cast<double>(Profiled.Run.TotalCycles) /
                           static_cast<double>(Baseline.Run.TotalCycles);
  EXPECT_GT(FullSlowdown, 1.3);
  EXPECT_GT(FullSlowdown, CheetahSlowdown * 1.2);
}

//===----------------------------------------------------------------------===//
// Section 2.4: parallel-phase gating vs init-then-share false positives
//===----------------------------------------------------------------------===//

TEST(PhaseGatingTest, InitThenSharedReadsNotReportedByCheetah) {
  // A workload whose object is written by main (init) and then only read
  // by children: no invalidations in parallel, nothing to report. The
  // Predator-style tracker, lacking phase awareness, sees main's writes
  // plus children's reads and flags the lines as shared.
  class InitThenShare : public workloads::Workload {
  public:
    std::string name() const override { return "init_then_share"; }
    std::string suite() const override { return "test"; }
    std::string description() const override { return ""; }
    sim::ForkJoinProgram
    build(workloads::WorkloadContext &Ctx,
          const workloads::WorkloadConfig &Config) const override {
      sim::ForkJoinProgram Program;
      uint64_t Table = Ctx.allocate(4096, "init_share.c", 10);
      sim::PhaseSpec &Phase = Program.addPhase("p");
      Phase.SerialBody = [=]() -> Generator<ThreadEvent> {
        // Main initializes the table several times (write count above the
        // susceptibility threshold).
        for (int Pass = 0; Pass < 4; ++Pass)
          for (uint64_t Offset = 0; Offset < 4096; Offset += 8)
            co_yield ThreadEvent::write(Table + Offset, 8);
      };
      for (uint32_t T = 0; T < Config.Threads; ++T)
        Phase.ParallelBodies.push_back([=]() -> Generator<ThreadEvent> {
          for (int Pass = 0; Pass < 200; ++Pass)
            for (uint64_t Offset = 0; Offset < 4096; Offset += 8)
              co_yield ThreadEvent::read(Table + Offset, 8);
        });
      return Program;
    }
  };

  InitThenShare Workload;
  driver::SessionConfig Config;
  Config.Workload.Threads = 4;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(64);
  driver::SessionResult Result = driver::runWorkload(Workload, Config);
  EXPECT_TRUE(Result.Profile.Reports.empty());
  for (const auto &Instance : Result.Profile.AllInstances)
    EXPECT_EQ(Instance.Invalidations, 0u);

  baseline::FullTrackerConfig Tracker;
  driver::FullTrackResult Full =
      driver::runFullTracking(Workload, Config, Tracker);
  EXPECT_GT(Full.Invalidations, 0u); // the Predator-style false positive
}

//===----------------------------------------------------------------------===//
// Report plumbing end to end
//===----------------------------------------------------------------------===//

TEST(EndToEndReportTest, LinearRegressionReportIsComplete) {
  auto Workload = workloads::createWorkload("linear_regression");
  driver::SessionConfig Config = precisionConfig(16);
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  ASSERT_FALSE(Result.Profile.Reports.empty());
  const core::FalseSharingReport &Report = Result.Profile.Reports.front();

  EXPECT_GT(Report.SampledAccesses, 100u);
  EXPECT_GT(Report.Invalidations, 50u);
  EXPECT_GT(Report.LatencyCycles, Report.SampledAccesses); // > 1 cycle each
  EXPECT_EQ(Report.ThreadsObserved, 16u);
  EXPECT_FALSE(Report.Words.empty());
  // Every hot word must be single-writer (that is what false sharing means).
  for (const core::WordReportEntry &Word : Report.Words)
    EXPECT_FALSE(Word.MultiThread);

  std::string Text = core::formatReport(Report);
  EXPECT_NE(Text.find("linear_regression-pthread.c:139"), std::string::npos);
  EXPECT_NE(Text.find("totalThreads 16"), std::string::npos);
}

TEST(EndToEndReportTest, SamplesAttributedToEveryChildThread) {
  auto Workload = workloads::createWorkload("linear_regression");
  driver::SessionConfig Config = precisionConfig(8);
  auto Result = driver::runWorkload(*Workload, Config);
  ASSERT_FALSE(Result.Profile.Reports.empty());
  uint64_t ThreadsWithObjectAccesses = 0;
  for (const core::ThreadPrediction &P :
       Result.Profile.Reports.front().Impact.Threads)
    ThreadsWithObjectAccesses += P.AccessesOnObject > 0;
  EXPECT_EQ(ThreadsWithObjectAccesses, 8u);
}

TEST(EndToEndReportTest, SerialLatencyFeedsAssessment) {
  auto Workload = workloads::createWorkload("linear_regression");
  driver::SessionConfig Config = precisionConfig(8);
  auto Result = driver::runWorkload(*Workload, Config);
  EXPECT_GT(Result.Profile.SerialSamples, 0u);
  EXPECT_GT(Result.Profile.SerialAverageLatency, 1.0);
  ASSERT_FALSE(Result.Profile.Reports.empty());
  EXPECT_FALSE(Result.Profile.Reports.front().Impact.UsedDefaultLatency);
}

TEST(EndToEndReportTest, LineSizeMattersForStreamcluster) {
  // With 32-byte lines (what the PARSEC authors assumed) streamcluster's
  // work_mem padding is correct and nothing is reported; with 64-byte
  // lines the instance appears. This is the paper's Section 4.2.2 story.
  auto Workload = workloads::createWorkload("streamcluster");
  driver::SessionConfig Config = precisionConfig(8);

  Config.Profiler.Geometry = CacheGeometry(32);
  auto Small = driver::runWorkload(*Workload, Config);
  EXPECT_EQ(Small.Profile.findReport("streamcluster.cpp:985"), nullptr);

  Config.Profiler.Geometry = CacheGeometry(64);
  auto Big = driver::runWorkload(*Workload, Config);
  EXPECT_NE(Big.Profile.findReport("streamcluster.cpp:985"), nullptr);
}

} // namespace
