//===- tests/GoldenReportTest.cpp - JSON golden differential suite --------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-exact differential gate for the JSON report pipeline: every
/// registered workload's `cheetah-report-v4` document must match its
/// checked-in golden under tests/goldens/, in every table-mode build
/// (shared, CHEETAH_LOCKED_TABLE, CHEETAH_SHARDED_TABLE). This is the
/// executable form of the refactor contract — the granularity-generic
/// detection core and any ingestion-mode change must be observationally
/// invisible at the report boundary, down to the last byte.
///
/// Goldens regenerate with the exact flags encoded here, e.g.:
///   cheetah-profile --workload=kmeans --format=json \
///       --output=tests/goldens/kmeans.line.json
///   cheetah-profile --workload=numa_first_touch --granularity=both \
///       --sampling-period=256 --threads=8 --format=json \
///       --output=tests/goldens/numa_first_touch.both.json
///
//===----------------------------------------------------------------------===//

#include "core/report/ReportSink.h"
#include "driver/SessionOptions.h"
#include "support/CommandLine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace cheetah;

namespace {

/// Source-tree locations baked in at configure time so the suite runs from
/// any build directory.
const std::filesystem::path GoldenDir =
    std::filesystem::path(CHEETAH_SOURCE_DIR) / "tests" / "goldens";
const std::filesystem::path TopologyDir =
    std::filesystem::path(CHEETAH_SOURCE_DIR) / "topologies";

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Runs one profiling session exactly as `cheetah-profile --format=json`
/// would for \p Args and returns the JSON document.
std::string generateReport(const std::vector<std::string> &Args,
                           std::string &Error) {
  FlagSet Flags;
  driver::addSessionFlags(Flags);
  std::vector<const char *> Argv = {"cheetah-profile"};
  for (const std::string &Arg : Args)
    Argv.push_back(Arg.c_str());
  if (!Flags.parse(static_cast<int>(Argv.size()), Argv.data(), Error))
    return "";
  driver::SessionOptions Options;
  if (!driver::buildSessionOptions(Flags, Options, Error))
    return "";
  auto Workload = workloads::createWorkload(Flags.getString("workload"));
  if (!Workload) {
    Error = "unknown workload";
    return "";
  }
  std::string ReportText;
  core::JsonReportSink Sink(ReportText);
  driver::runWorkload(*Workload, Options.Config, &Sink);
  return ReportText;
}

/// On mismatch, pinpoints the first differing byte with a little context
/// instead of dumping two multi-kilobyte documents.
void expectByteIdentical(const std::string &Got, const std::string &Want,
                         const std::string &Label) {
  if (Got == Want)
    return;
  size_t At = 0;
  while (At < Got.size() && At < Want.size() && Got[At] == Want[At])
    ++At;
  size_t From = At > 40 ? At - 40 : 0;
  ADD_FAILURE() << Label << ": report drifted from golden at byte " << At
                << " (sizes " << Got.size() << " vs " << Want.size()
                << ")\n  golden: ..." << Want.substr(From, 80)
                << "\n  got:    ..." << Got.substr(From, 80);
}

TEST(GoldenReportTest, EveryRegisteredWorkloadMatchesLineGolden) {
  // Default-flag line-granularity run for each workload the registry
  // knows. A workload without a checked-in golden fails loudly: new
  // workloads must enter the differential gate when they are registered.
  unsigned Compared = 0;
  for (const auto &Workload : workloads::createAllWorkloads()) {
    SCOPED_TRACE(Workload->name());
    std::filesystem::path Golden =
        GoldenDir / (Workload->name() + ".line.json");
    ASSERT_TRUE(std::filesystem::exists(Golden))
        << "missing golden " << Golden << " — regenerate with "
        << "cheetah-profile --workload=" << Workload->name()
        << " --format=json";
    std::string Error;
    std::string Got =
        generateReport({"--workload=" + Workload->name()}, Error);
    ASSERT_FALSE(Got.empty()) << Error;
    expectByteIdentical(Got, readFile(Golden), Workload->name() + " line");
    ++Compared;
  }
  EXPECT_GE(Compared, 21u);
}

TEST(GoldenReportTest, BothGranularityGoldensMatch) {
  // The page/both pipeline goldens (8 threads, dense sampling, multi-node
  // topologies — numa_asymmetric through the imported distance matrix).
  // Driven by the goldens directory so adding a golden adds coverage.
  std::set<std::string> Names;
  for (const auto &Entry : std::filesystem::directory_iterator(GoldenDir)) {
    std::string File = Entry.path().filename().string();
    std::string Suffix = ".both.json";
    if (File.size() > Suffix.size() &&
        File.compare(File.size() - Suffix.size(), Suffix.size(), Suffix) == 0)
      Names.insert(File.substr(0, File.size() - Suffix.size()));
  }
  ASSERT_EQ(Names, (std::set<std::string>{"numa_asymmetric",
                                          "numa_first_touch",
                                          "numa_interleaved"}));
  for (const std::string &Name : Names) {
    SCOPED_TRACE(Name);
    std::vector<std::string> Args = {"--workload=" + Name,
                                     "--granularity=both",
                                     "--sampling-period=256", "--threads=8"};
    if (Name == "numa_asymmetric")
      Args.push_back("--numa-topology=" +
                     (TopologyDir / "asymmetric4.json").string());
    std::string Error;
    std::string Got = generateReport(Args, Error);
    ASSERT_FALSE(Got.empty()) << Error;
    expectByteIdentical(Got, readFile(GoldenDir / (Name + ".both.json")),
                        Name + " both");
  }
}

} // namespace
