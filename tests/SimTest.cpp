//===- tests/SimTest.cpp - geometry, coherence, simulator tests -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mem/CacheGeometry.h"
#include "mem/MemoryAccess.h"
#include "sim/CoherenceModel.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::sim;

namespace {

//===----------------------------------------------------------------------===//
// CacheGeometry (parameterized over line sizes)
//===----------------------------------------------------------------------===//

class GeometryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometryTest, LineIndexingRoundTrips) {
  CacheGeometry Geometry(GetParam());
  uint64_t Line = Geometry.lineSize();
  EXPECT_EQ(Geometry.lineIndex(0), 0u);
  EXPECT_EQ(Geometry.lineIndex(Line - 1), 0u);
  EXPECT_EQ(Geometry.lineIndex(Line), 1u);
  EXPECT_EQ(Geometry.lineBase(Line + 3), Line);
  EXPECT_EQ(Geometry.offsetInLine(Line + 3), 3u);
  EXPECT_EQ(uint64_t(1) << Geometry.lineShift(), Line);
  EXPECT_EQ(Geometry.wordsPerLine(), Line / 4);
}

TEST_P(GeometryTest, WordIndexing) {
  CacheGeometry Geometry(GetParam());
  EXPECT_EQ(Geometry.wordInLine(0), 0u);
  EXPECT_EQ(Geometry.wordInLine(4), 1u);
  EXPECT_EQ(Geometry.wordInLine(7), 1u);
  EXPECT_EQ(Geometry.wordInLine(GetParam() - 1), GetParam() / 4 - 1);
}

TEST_P(GeometryTest, SharesLine) {
  CacheGeometry Geometry(GetParam());
  EXPECT_TRUE(Geometry.sharesLine(0, GetParam() - 1));
  EXPECT_FALSE(Geometry.sharesLine(0, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(LineSizes, GeometryTest,
                         ::testing::Values(8, 16, 32, 64, 128, 256));

TEST(MemoryAccessTest, Factories) {
  MemoryAccess Read = MemoryAccess::read(0x100, 8);
  EXPECT_FALSE(Read.isWrite());
  EXPECT_EQ(Read.Size, 8);
  MemoryAccess Write = MemoryAccess::write(0x104);
  EXPECT_TRUE(Write.isWrite());
  ThreadEvent Event = ThreadEvent::compute(9);
  EXPECT_FALSE(Event.isMemory());
  EXPECT_EQ(Event.ComputeInstructions, 9u);
  EXPECT_TRUE(ThreadEvent::write(4).isMemory());
}

//===----------------------------------------------------------------------===//
// CoherenceModel
//===----------------------------------------------------------------------===//

class CoherenceTest : public ::testing::Test {
protected:
  CacheGeometry Geometry{64};
  LatencyModel Latency;
  CoherenceModel Model{Geometry, Latency};
};

TEST_F(CoherenceTest, FirstTouchIsColdMiss) {
  CoherenceResult R = Model.access(0, MemoryAccess::read(0x1000), 0);
  EXPECT_EQ(R.Outcome, AccessOutcome::ColdMiss);
  EXPECT_EQ(R.LatencyCycles, Latency.ColdMissCycles);
}

TEST_F(CoherenceTest, RepeatAccessHits) {
  Model.access(0, MemoryAccess::read(0x1000), 0);
  CoherenceResult R = Model.access(0, MemoryAccess::read(0x1008), 10);
  EXPECT_EQ(R.Outcome, AccessOutcome::LocalHit);
}

TEST_F(CoherenceTest, SecondReaderGetsCleanTransfer) {
  Model.access(0, MemoryAccess::read(0x1000), 0);
  CoherenceResult R = Model.access(1, MemoryAccess::read(0x1000), 10);
  EXPECT_EQ(R.Outcome, AccessOutcome::CleanTransfer);
}

TEST_F(CoherenceTest, ReadOfModifiedLineIsDirtyTransfer) {
  Model.access(0, MemoryAccess::write(0x1000), 0);
  CoherenceResult R = Model.access(1, MemoryAccess::read(0x1000), 500);
  EXPECT_EQ(R.Outcome, AccessOutcome::DirtyTransfer);
}

TEST_F(CoherenceTest, WriteInvalidatesAllOtherHolders) {
  Model.access(0, MemoryAccess::read(0x1000), 0);
  Model.access(1, MemoryAccess::read(0x1000), 10);
  Model.access(2, MemoryAccess::read(0x1000), 20);
  CoherenceResult R = Model.access(3, MemoryAccess::write(0x1000), 1000);
  EXPECT_EQ(R.Invalidated, 3u);
  EXPECT_EQ(Model.holdersOf(0x1000), (std::vector<ThreadId>{3}));
}

TEST_F(CoherenceTest, WriteBySharedHolderIsUpgrade) {
  Model.access(0, MemoryAccess::read(0x1000), 0);
  Model.access(1, MemoryAccess::read(0x1000), 10);
  CoherenceResult R = Model.access(0, MemoryAccess::write(0x1000), 1000);
  EXPECT_EQ(R.Outcome, AccessOutcome::Upgrade);
  EXPECT_EQ(R.Invalidated, 1u);
}

TEST_F(CoherenceTest, ExclusiveWriterHitsOnRewrite) {
  Model.access(0, MemoryAccess::write(0x1000), 0);
  CoherenceResult R = Model.access(0, MemoryAccess::write(0x1000), 10);
  EXPECT_EQ(R.Outcome, AccessOutcome::LocalHit);
  EXPECT_EQ(R.Invalidated, 0u);
}

TEST_F(CoherenceTest, PingPongWritesAreDirtyTransfers) {
  Model.access(0, MemoryAccess::write(0x1000), 0);
  uint64_t Now = 1000;
  for (int Round = 0; Round < 10; ++Round) {
    CoherenceResult R =
        Model.access(Round % 2 ? 0 : 1, MemoryAccess::write(0x1000), Now);
    EXPECT_EQ(R.Outcome, AccessOutcome::DirtyTransfer) << "round " << Round;
    Now += 1000;
  }
  EXPECT_EQ(Model.stats().DirtyTransfers, 10u);
}

TEST_F(CoherenceTest, DistinctLinesDoNotInterfere) {
  Model.access(0, MemoryAccess::write(0x1000), 0);
  CoherenceResult R = Model.access(1, MemoryAccess::write(0x1040), 10);
  EXPECT_EQ(R.Outcome, AccessOutcome::ColdMiss);
  EXPECT_EQ(Model.touchedLines(), 2u);
}

TEST_F(CoherenceTest, ContendedLineQueuesTransfers) {
  // Back-to-back transfers at the same instant must serialize: the second
  // requester's latency includes the first transfer's service time.
  Model.access(0, MemoryAccess::write(0x1000), 0);
  Model.access(1, MemoryAccess::read(0x2000), 0); // unrelated warmup
  CoherenceResult First = Model.access(1, MemoryAccess::write(0x1000), 1000);
  CoherenceResult Second = Model.access(2, MemoryAccess::write(0x1000), 1000);
  EXPECT_GT(Second.LatencyCycles, First.LatencyCycles);
}

TEST_F(CoherenceTest, QueueBacklogSaturates) {
  Model.access(0, MemoryAccess::write(0x1000), 0);
  uint64_t MaxSeen = 0;
  for (uint32_t T = 1; T < 32; ++T) {
    CoherenceResult R =
        Model.access(T, MemoryAccess::write(0x1000), 1000);
    MaxSeen = std::max(MaxSeen, R.LatencyCycles);
  }
  uint64_t Bound = Latency.DirtyTransferCycles +
                   (Latency.MaxQueuedServices + 1) * Latency.LineServiceCycles;
  EXPECT_LE(MaxSeen, Bound);
}

TEST_F(CoherenceTest, StatsAccumulate) {
  Model.access(0, MemoryAccess::read(0x1000), 0);
  Model.access(0, MemoryAccess::write(0x1000), 1);
  EXPECT_EQ(Model.stats().Accesses, 2u);
  EXPECT_GT(Model.stats().TotalLatency, 0u);
  Model.reset();
  EXPECT_EQ(Model.stats().Accesses, 0u);
  EXPECT_EQ(Model.touchedLines(), 0u);
}

//===----------------------------------------------------------------------===//
// Simulator
//===----------------------------------------------------------------------===//

Generator<ThreadEvent> fixedWrites(uint64_t Base, uint64_t Count,
                                   uint64_t Stride) {
  for (uint64_t I = 0; I < Count; ++I)
    co_yield ThreadEvent::write(Base + (I % 4) * Stride, 8);
}

Generator<ThreadEvent> pureCompute(uint64_t Instructions) {
  co_yield ThreadEvent::compute(static_cast<uint32_t>(Instructions));
}

ForkJoinProgram makeTwoPhaseProgram(uint32_t ThreadsPerPhase) {
  ForkJoinProgram Program;
  Program.Name = "test";
  for (int P = 0; P < 2; ++P) {
    PhaseSpec &Phase = Program.addPhase("p" + std::to_string(P));
    Phase.SerialBody = []() { return fixedWrites(0x9000, 16, 8); };
    for (uint32_t T = 0; T < ThreadsPerPhase; ++T)
      Phase.ParallelBodies.push_back(
          [T]() { return fixedWrites(0x10000 + T * 0x1000, 32, 8); });
  }
  return Program;
}

TEST(SimulatorTest, RunsAllPhasesAndThreads) {
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  Simulator Sim(Geometry, Latency);
  SimulationResult Result = Sim.run(makeTwoPhaseProgram(3));
  // 1 main + 2 phases x 3 children.
  EXPECT_EQ(Result.Threads.size(), 7u);
  // 2 serial + 2 parallel phases.
  ASSERT_EQ(Result.Phases.size(), 4u);
  EXPECT_FALSE(Result.Phases[0].Parallel);
  EXPECT_TRUE(Result.Phases[1].Parallel);
  EXPECT_EQ(Result.Phases[1].Members.size(), 3u);
  EXPECT_GT(Result.TotalCycles, 0u);
}

TEST(SimulatorTest, ThreadIdsAreSequentialAndMainIsZero) {
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  Simulator Sim(Geometry, Latency);
  SimulationResult Result = Sim.run(makeTwoPhaseProgram(2));
  EXPECT_TRUE(Result.thread(0).IsMain);
  for (ThreadId T = 0; T < 5; ++T)
    EXPECT_EQ(Result.thread(T).Tid, T);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  Simulator SimA(Geometry, Latency), SimB(Geometry, Latency);
  SimulationResult A = SimA.run(makeTwoPhaseProgram(4));
  SimulationResult B = SimB.run(makeTwoPhaseProgram(4));
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  ASSERT_EQ(A.Threads.size(), B.Threads.size());
  for (size_t I = 0; I < A.Threads.size(); ++I) {
    EXPECT_EQ(A.Threads[I].MemoryCycles, B.Threads[I].MemoryCycles);
    EXPECT_EQ(A.Threads[I].runtime(), B.Threads[I].runtime());
  }
}

TEST(SimulatorTest, PhaseSpansCoverThreadRuntimes) {
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  Simulator Sim(Geometry, Latency);
  SimulationResult Result = Sim.run(makeTwoPhaseProgram(3));
  for (const PhaseRecord &Phase : Result.Phases) {
    if (!Phase.Parallel)
      continue;
    for (ThreadId Member : Phase.Members) {
      const ThreadRecord &Thread = Result.thread(Member);
      EXPECT_GE(Thread.StartCycle, Phase.StartCycle);
      EXPECT_LE(Thread.EndCycle, Phase.EndCycle);
    }
  }
}

TEST(SimulatorTest, InstructionCountsAreExact) {
  ForkJoinProgram Program;
  PhaseSpec &Phase = Program.addPhase("p");
  Phase.SerialBody = []() { return pureCompute(100); };
  Phase.ParallelBodies.push_back([]() { return fixedWrites(0x5000, 10, 8); });
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  Simulator Sim(Geometry, Latency);
  SimulationResult Result = Sim.run(Program);
  EXPECT_EQ(Result.thread(0).Instructions, 100u);
  EXPECT_EQ(Result.thread(1).Instructions, 10u);
  EXPECT_EQ(Result.thread(1).MemoryAccesses, 10u);
}

/// Observer that charges a fixed overhead per access and records calls.
class CountingObserver : public SimObserver {
public:
  uint64_t Starts = 0, Ends = 0, Accesses = 0, Instructions = 0;
  uint64_t PhaseBegins = 0, PhaseEnds = 0;
  uint64_t PerAccessCost = 0;

  uint64_t onThreadStart(ThreadId, bool, uint64_t) override {
    ++Starts;
    return 0;
  }
  void onThreadEnd(const ThreadRecord &) override { ++Ends; }
  void onPhaseBegin(const PhaseRecord &) override { ++PhaseBegins; }
  void onPhaseEnd(const PhaseRecord &) override { ++PhaseEnds; }
  uint64_t onMemoryAccess(ThreadId, const MemoryAccess &,
                          const CoherenceResult &, uint64_t) override {
    ++Accesses;
    return PerAccessCost;
  }
  void onInstructions(ThreadId, uint64_t N) override { Instructions += N; }
};

TEST(SimulatorTest, ObserverSeesEveryEvent) {
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  Simulator Sim(Geometry, Latency);
  CountingObserver Observer;
  Sim.addObserver(&Observer);
  SimulationResult Result = Sim.run(makeTwoPhaseProgram(2));
  EXPECT_EQ(Observer.Starts, 5u); // main + 4 children
  EXPECT_EQ(Observer.Ends, 5u);
  EXPECT_EQ(Observer.PhaseBegins, 4u);
  EXPECT_EQ(Observer.PhaseEnds, 4u);
  // 2 serial bodies x 16 + 4 children x 32 writes.
  EXPECT_EQ(Observer.Accesses, 2 * 16 + 4 * 32u);
  (void)Result;
}

TEST(SimulatorTest, ObserverOverheadChargesThreads) {
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  ForkJoinProgram Program = makeTwoPhaseProgram(2);

  Simulator Plain(Geometry, Latency);
  SimulationResult Baseline = Plain.run(Program);

  Simulator Instrumented(Geometry, Latency);
  CountingObserver Observer;
  Observer.PerAccessCost = 100;
  Instrumented.addObserver(&Observer);
  SimulationResult Slowed = Instrumented.run(Program);

  EXPECT_GT(Slowed.TotalCycles, Baseline.TotalCycles);
  // Each child executes 32 accesses at +100 cycles.
  EXPECT_GE(Slowed.thread(1).runtime(),
            Baseline.thread(1).runtime() + 32 * 100);
}

TEST(SimulatorTest, MinClockSchedulingInterleavesContendingWriters) {
  // Two threads hammering one line must alternate, producing dirty
  // transfers on nearly every write rather than running back-to-back.
  ForkJoinProgram Program;
  PhaseSpec &Phase = Program.addPhase("contend");
  for (int T = 0; T < 2; ++T)
    Phase.ParallelBodies.push_back([]() -> Generator<ThreadEvent> {
      for (int I = 0; I < 1000; ++I)
        co_yield ThreadEvent::write(0x7000, 4);
    });
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  Latency.ThreadSpawnCycles = 0; // start simultaneously so writers overlap
  Simulator Sim(Geometry, Latency);
  SimulationResult Result = Sim.run(Program);
  EXPECT_GT(Result.Coherence.DirtyTransfers, 1500u);
}

TEST(SimulatorTest, SpawnAndJoinCostsAppearInSpan) {
  ForkJoinProgram Program;
  PhaseSpec &Phase = Program.addPhase("p");
  for (int T = 0; T < 4; ++T)
    Phase.ParallelBodies.push_back([]() { return pureCompute(1); });
  CacheGeometry Geometry(64);
  LatencyModel Latency;
  Simulator Sim(Geometry, Latency);
  SimulationResult Result = Sim.run(Program);
  EXPECT_GE(Result.TotalCycles,
            4 * Latency.ThreadSpawnCycles + 4 * Latency.ThreadJoinCycles);
}

//===----------------------------------------------------------------------===//
// NUMA distance scaling
//===----------------------------------------------------------------------===//

/// Main thread (node 0) first-touches a page serially; a child (node 1)
/// then hammers it. \returns the extra interconnect cycles charged under
/// a 2-node topology whose remote distance is \p Distance.
uint64_t remoteExtraAtDistance(uint32_t Distance) {
  NumaTopologySpec Spec;
  Spec.Nodes = 2;
  Spec.Distances = {{0, Distance}, {Distance, 0}};
  NumaTopology Topology;
  std::string Error;
  EXPECT_TRUE(NumaTopology::fromSpec(Spec, Topology, Error)) << Error;

  ForkJoinProgram Program;
  PhaseSpec &Phase = Program.addPhase("p");
  Phase.SerialBody = []() { return fixedWrites(0x20000, 16, 8); };
  Phase.ParallelBodies.push_back([]() { return fixedWrites(0x20000, 64, 8); });

  Simulator Sim(CacheGeometry(64), LatencyModel{});
  Sim.setTopology(&Topology);
  SimulationResult Result = Sim.run(Program);
  EXPECT_GT(Result.RemoteNumaAccesses, 0u);
  return Result.RemoteNumaExtraCycles;
}

TEST(SimulatorTest, RemoteSurchargeScalesHopProportionally) {
  // The normalization contract end to end: a 2-node machine pays the base
  // surcharge whatever its (uniform) remote distance — distance only
  // matters *relative to the minimum remote distance* — so the default
  // matrix is bit-compatible with the pre-distance model...
  uint64_t BaseExtra = remoteExtraAtDistance(10);
  EXPECT_EQ(remoteExtraAtDistance(30), BaseExtra);

  // ...while on one machine with two different remote distances the far
  // pair pays proportionally more. Build a 3-node line: node 1 near the
  // home, node 2 three hops out.
  NumaTopologySpec Spec;
  Spec.Nodes = 3;
  Spec.Distances = {{0, 10, 30}, {10, 0, 20}, {30, 20, 0}};
  NumaTopology Topology;
  std::string Error;
  ASSERT_TRUE(NumaTopology::fromSpec(Spec, Topology, Error)) << Error;

  auto ExtraForChild = [&](uint32_t Node) {
    NumaTopologySpec Pinned = Spec;
    Pinned.ThreadPinning = {0, Node}; // main on node 0, child on Node
    NumaTopology T;
    std::string E;
    EXPECT_TRUE(NumaTopology::fromSpec(Pinned, T, E)) << E;
    ForkJoinProgram Program;
    PhaseSpec &Phase = Program.addPhase("p");
    Phase.SerialBody = []() { return fixedWrites(0x20000, 16, 8); };
    Phase.ParallelBodies.push_back(
        []() { return fixedWrites(0x20000, 64, 8); });
    Simulator Sim(CacheGeometry(64), LatencyModel{});
    Sim.setTopology(&T);
    return Sim.run(Program).RemoteNumaExtraCycles;
  };
  uint64_t Near = ExtraForChild(1); // distance 10 = the minimum remote
  uint64_t Far = ExtraForChild(2);  // distance 30 = 3 hops
  EXPECT_EQ(Near, BaseExtra);
  EXPECT_EQ(Far, 3 * Near);
}

} // namespace
