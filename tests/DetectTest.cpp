//===- tests/DetectTest.cpp - detection core tests -------------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the two-entry table, word tracking, shadow
/// memory, detector gating, and the FS/TS classifier. The central property
/// test checks the paper's implicit claim that two entries are enough: on
/// arbitrary access streams the table's invalidation count must equal both
/// the unbounded recent-accessor-set reference model and (for counting
/// purposes) the Zhao ownership-bitmap baseline.
///
//===----------------------------------------------------------------------===//

#include "baseline/OwnershipTracker.h"
#include "baseline/ReferenceModel.h"
#include "core/detect/CacheLineInfo.h"
#include "core/detect/CacheLineTable.h"
#include "core/detect/Detector.h"
#include "core/detect/ShadowMemory.h"
#include "core/detect/SharingClassifier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::core;

namespace {

//===----------------------------------------------------------------------===//
// CacheLineTable: the paper's rule, case by case
//===----------------------------------------------------------------------===//

TEST(CacheLineTableTest, FirstReadIsRecordedNoInvalidation) {
  CacheLineTable Table;
  EXPECT_FALSE(Table.recordAccess(1, AccessKind::Read));
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_TRUE(Table.containsThread(1));
}

TEST(CacheLineTableTest, RepeatReadBySameThreadNotDuplicated) {
  CacheLineTable Table;
  Table.recordAccess(1, AccessKind::Read);
  Table.recordAccess(1, AccessKind::Read);
  EXPECT_EQ(Table.size(), 1u);
}

TEST(CacheLineTableTest, ReadFromSecondThreadFillsTable) {
  CacheLineTable Table;
  Table.recordAccess(1, AccessKind::Read);
  EXPECT_FALSE(Table.recordAccess(2, AccessKind::Read));
  EXPECT_EQ(Table.size(), 2u);
}

TEST(CacheLineTableTest, ThirdReaderIgnoredWhenFull) {
  CacheLineTable Table;
  Table.recordAccess(1, AccessKind::Read);
  Table.recordAccess(2, AccessKind::Read);
  EXPECT_FALSE(Table.recordAccess(3, AccessKind::Read));
  EXPECT_EQ(Table.size(), 2u);
  EXPECT_FALSE(Table.containsThread(3));
}

TEST(CacheLineTableTest, WriteToEmptyTableCountsAsInvalidation) {
  // The paper's "in all other cases" clause: first-ever write flushes and
  // records, keeping the table never-empty.
  CacheLineTable Table;
  EXPECT_TRUE(Table.recordAccess(1, AccessKind::Write));
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.entry(0).Kind, AccessKind::Write);
}

TEST(CacheLineTableTest, WriteAfterOwnEntryIsSkipped) {
  CacheLineTable Table;
  Table.recordAccess(1, AccessKind::Read);
  EXPECT_FALSE(Table.recordAccess(1, AccessKind::Write));
  // "There is no need to update the existing entry."
  EXPECT_EQ(Table.entry(0).Kind, AccessKind::Read);
}

TEST(CacheLineTableTest, WriteAfterOtherThreadEntryInvalidates) {
  CacheLineTable Table;
  Table.recordAccess(1, AccessKind::Read);
  EXPECT_TRUE(Table.recordAccess(2, AccessKind::Write));
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_TRUE(Table.containsThread(2));
}

TEST(CacheLineTableTest, WriteToFullTableAlwaysInvalidates) {
  CacheLineTable Table;
  Table.recordAccess(1, AccessKind::Read);
  Table.recordAccess(2, AccessKind::Read);
  // Even by a thread already present.
  EXPECT_TRUE(Table.recordAccess(1, AccessKind::Write));
  EXPECT_EQ(Table.size(), 1u);
}

TEST(CacheLineTableTest, PingPongWritesInvalidateEachTime) {
  CacheLineTable Table;
  Table.recordAccess(1, AccessKind::Write); // counts (empty-table rule)
  int Invalidations = 0;
  for (int I = 0; I < 10; ++I)
    Invalidations += Table.recordAccess(I % 2 ? 1 : 2, AccessKind::Write);
  EXPECT_EQ(Invalidations, 10);
}

TEST(CacheLineTableTest, SingleThreadNeverInvalidatesAfterFirstWrite) {
  CacheLineTable Table;
  Table.recordAccess(7, AccessKind::Write);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Table.recordAccess(7, AccessKind::Write));
    EXPECT_FALSE(Table.recordAccess(7, AccessKind::Read));
  }
}

TEST(CacheLineTableTest, EntriesAlwaysDistinctThreads) {
  SplitMix64 Rng(99);
  CacheLineTable Table;
  for (int I = 0; I < 10000; ++I) {
    ThreadId Tid = static_cast<ThreadId>(Rng.nextBelow(6));
    AccessKind Kind = Rng.nextBool(0.5) ? AccessKind::Read : AccessKind::Write;
    Table.recordAccess(Tid, Kind);
    if (Table.size() == 2) {
      EXPECT_NE(Table.entry(0).Tid, Table.entry(1).Tid);
    }
  }
}

//===----------------------------------------------------------------------===//
// Packed-table state machine: every reachable state, every transition
//===----------------------------------------------------------------------===//

// The packed atomic word has exactly four reachable state shapes: empty, a
// single read entry, a single write entry, and a full table whose second
// entry is always a read (writes only ever enter a flushed table). These
// tests pin each documented transition out of each shape; the exhaustive
// sequence enumeration below then closes the gaps no hand-picked case
// covers.

TEST(PackedTableStateTest, EmptyState) {
  CacheLineTable Table;
  EXPECT_EQ(Table.size(), 0u);
  EXPECT_FALSE(Table.containsThread(0));
  EXPECT_FALSE(Table.containsThread(1));
}

TEST(PackedTableStateTest, EmptyToSingleRead) {
  CacheLineTable Table;
  EXPECT_FALSE(Table.recordAccess(5, AccessKind::Read));
  ASSERT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.entry(0).Tid, 5u);
  EXPECT_EQ(Table.entry(0).Kind, AccessKind::Read);
}

TEST(PackedTableStateTest, EmptyToSingleWriteInvalidates) {
  CacheLineTable Table;
  EXPECT_TRUE(Table.recordAccess(5, AccessKind::Write));
  ASSERT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.entry(0).Tid, 5u);
  EXPECT_EQ(Table.entry(0).Kind, AccessKind::Write);
}

TEST(PackedTableStateTest, SingleReadSelfTransitionsAreNoOps) {
  CacheLineTable Table;
  Table.recordAccess(5, AccessKind::Read);
  EXPECT_FALSE(Table.recordAccess(5, AccessKind::Read));  // ignored
  EXPECT_FALSE(Table.recordAccess(5, AccessKind::Write)); // skipped
  ASSERT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.entry(0).Kind, AccessKind::Read); // entry not updated
}

TEST(PackedTableStateTest, SingleReadOtherReadFills) {
  CacheLineTable Table;
  Table.recordAccess(5, AccessKind::Read);
  EXPECT_FALSE(Table.recordAccess(6, AccessKind::Read));
  ASSERT_EQ(Table.size(), 2u);
  EXPECT_EQ(Table.entry(0).Tid, 5u);
  EXPECT_EQ(Table.entry(1).Tid, 6u);
  EXPECT_EQ(Table.entry(1).Kind, AccessKind::Read);
}

TEST(PackedTableStateTest, SingleReadOtherWriteFlushes) {
  CacheLineTable Table;
  Table.recordAccess(5, AccessKind::Read);
  EXPECT_TRUE(Table.recordAccess(6, AccessKind::Write));
  ASSERT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.entry(0).Tid, 6u);
  EXPECT_EQ(Table.entry(0).Kind, AccessKind::Write);
  EXPECT_FALSE(Table.containsThread(5));
}

TEST(PackedTableStateTest, SingleWriteSelfTransitionsAreNoOps) {
  CacheLineTable Table;
  Table.recordAccess(5, AccessKind::Write);
  EXPECT_FALSE(Table.recordAccess(5, AccessKind::Write));
  EXPECT_FALSE(Table.recordAccess(5, AccessKind::Read));
  ASSERT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.entry(0).Kind, AccessKind::Write);
}

TEST(PackedTableStateTest, SingleWriteOtherReadFills) {
  CacheLineTable Table;
  Table.recordAccess(5, AccessKind::Write);
  EXPECT_FALSE(Table.recordAccess(6, AccessKind::Read));
  ASSERT_EQ(Table.size(), 2u);
  EXPECT_EQ(Table.entry(0).Kind, AccessKind::Write);
  EXPECT_EQ(Table.entry(1).Kind, AccessKind::Read);
}

TEST(PackedTableStateTest, SingleWriteOtherWriteFlushes) {
  CacheLineTable Table;
  Table.recordAccess(5, AccessKind::Write);
  EXPECT_TRUE(Table.recordAccess(6, AccessKind::Write));
  ASSERT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.entry(0).Tid, 6u);
}

TEST(PackedTableStateTest, FullTableReadsIgnoredFromAnyThread) {
  CacheLineTable Table;
  Table.recordAccess(5, AccessKind::Read);
  Table.recordAccess(6, AccessKind::Read);
  EXPECT_FALSE(Table.recordAccess(5, AccessKind::Read)); // member
  EXPECT_FALSE(Table.recordAccess(7, AccessKind::Read)); // third thread
  ASSERT_EQ(Table.size(), 2u);
  EXPECT_FALSE(Table.containsThread(7));
}

TEST(PackedTableStateTest, FullTableWriteAlwaysFlushesAndInvalidates) {
  for (ThreadId Writer : {5u, 6u, 7u}) { // member 0, member 1, outsider
    CacheLineTable Table;
    Table.recordAccess(5, AccessKind::Read);
    Table.recordAccess(6, AccessKind::Read);
    EXPECT_TRUE(Table.recordAccess(Writer, AccessKind::Write));
    ASSERT_EQ(Table.size(), 1u);
    EXPECT_EQ(Table.entry(0).Tid, Writer);
    EXPECT_EQ(Table.entry(0).Kind, AccessKind::Write);
  }
}

TEST(PackedTableStateTest, FlushRestoresEmptyState) {
  CacheLineTable Table;
  Table.recordAccess(1, AccessKind::Read);
  Table.recordAccess(2, AccessKind::Read);
  Table.flush();
  EXPECT_EQ(Table.size(), 0u);
  EXPECT_FALSE(Table.containsThread(1));
  // First write into the flushed table counts again (empty-table rule).
  EXPECT_TRUE(Table.recordAccess(1, AccessKind::Write));
}

TEST(PackedTableStateTest, ExhaustiveSequencesMatchReferenceModel) {
  // Every access sequence of length 6 over three threads and both kinds
  // (6^6 = 46656 sequences) must agree with the unbounded reference model
  // step by step, and the packed invariants must hold in every state:
  // occupancy <= 2, entries from distinct threads, entry 1 (filled second)
  // is always a read.
  constexpr unsigned Length = 6;
  constexpr unsigned Choices = 6; // 3 tids x {read, write}
  unsigned Total = 1;
  for (unsigned I = 0; I < Length; ++I)
    Total *= Choices;

  for (unsigned Encoded = 0; Encoded < Total; ++Encoded) {
    CacheLineTable Table;
    baseline::ReferenceLineModel Reference;
    unsigned Rest = Encoded;
    for (unsigned Step = 0; Step < Length; ++Step) {
      unsigned Choice = Rest % Choices;
      Rest /= Choices;
      ThreadId Tid = 1 + Choice % 3;
      AccessKind Kind = Choice < 3 ? AccessKind::Read : AccessKind::Write;

      bool FromTable = Table.recordAccess(Tid, Kind);
      bool FromReference = Reference.recordAccess(Tid, Kind);
      ASSERT_EQ(FromTable, FromReference)
          << "sequence " << Encoded << " step " << Step;

      unsigned Count = Table.size();
      ASSERT_LE(Count, 2u);
      if (Count == 2) {
        ASSERT_NE(Table.entry(0).Tid, Table.entry(1).Tid);
        ASSERT_EQ(Table.entry(1).Kind, AccessKind::Read)
            << "second entry can only ever be a recorded read";
      }
    }
  }
}

TEST(PackedTableStateTest, ThreadIdsNearPackingLimit) {
  // 30-bit tid storage: ids below 2^30 round-trip exactly.
  constexpr ThreadId Big = (1u << 30) - 1;
  CacheLineTable Table;
  Table.recordAccess(Big, AccessKind::Read);
  EXPECT_TRUE(Table.containsThread(Big));
  EXPECT_EQ(Table.entry(0).Tid, Big);
  EXPECT_FALSE(Table.recordAccess(Big, AccessKind::Write)); // self skip
  EXPECT_TRUE(Table.recordAccess(Big - 1, AccessKind::Write));
}

//===----------------------------------------------------------------------===//
// Property: two entries are exactly enough (vs. reference + ownership)
//===----------------------------------------------------------------------===//

struct EquivalenceParams {
  uint32_t Threads;
  double WriteFraction;
  uint64_t Seed;
};

class TableEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParams> {};

TEST_P(TableEquivalenceTest, MatchesReferenceAndOwnershipModels) {
  const EquivalenceParams &Params = GetParam();
  SplitMix64 Rng(Params.Seed);

  CacheGeometry Geometry(64);
  CacheLineTable Table;
  baseline::ReferenceLineModel Reference;
  baseline::OwnershipTracker Ownership(Geometry, Params.Threads);

  uint64_t TableInvalidations = 0;
  for (int I = 0; I < 20000; ++I) {
    ThreadId Tid = static_cast<ThreadId>(Rng.nextBelow(Params.Threads));
    AccessKind Kind = Rng.nextBool(Params.WriteFraction) ? AccessKind::Write
                                                         : AccessKind::Read;
    bool FromTable = Table.recordAccess(Tid, Kind);
    bool FromReference = Reference.recordAccess(Tid, Kind);
    bool FromOwnership = Ownership.recordAccess(0x1000, Tid, Kind);
    EXPECT_EQ(FromTable, FromReference) << "step " << I;
    EXPECT_EQ(FromTable, FromOwnership) << "step " << I;
    TableInvalidations += FromTable;
  }
  EXPECT_EQ(TableInvalidations, Reference.invalidations());
  EXPECT_EQ(TableInvalidations, Ownership.invalidations());
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, TableEquivalenceTest,
    ::testing::Values(EquivalenceParams{2, 0.5, 1},
                      EquivalenceParams{2, 0.9, 2},
                      EquivalenceParams{3, 0.3, 3},
                      EquivalenceParams{4, 0.5, 4},
                      EquivalenceParams{8, 0.2, 5},
                      EquivalenceParams{8, 0.8, 6},
                      EquivalenceParams{16, 0.5, 7},
                      EquivalenceParams{33, 0.5, 8},   // > 32: Zhao's limit
                      EquivalenceParams{64, 0.4, 9},
                      EquivalenceParams{128, 0.6, 10}, // far beyond 32
                      EquivalenceParams{5, 1.0, 11},   // writes only
                      EquivalenceParams{5, 0.05, 12})); // reads mostly

TEST(TableMemoryTest, TwoEntryTableBeatsOwnershipBitmapBeyond32Threads) {
  // The paper's motivation for the table: ownership bits need one bit per
  // thread per line; the table is constant-size.
  CacheGeometry Geometry(64);
  for (uint32_t Threads : {64u, 256u, 1024u}) {
    baseline::OwnershipTracker Ownership(Geometry, Threads);
    EXPECT_GE(Ownership.bytesPerLine(), Threads / 8);
    EXPECT_LE(sizeof(CacheLineTable), 24u);
  }
}

//===----------------------------------------------------------------------===//
// CacheLineInfo: word tracking
//===----------------------------------------------------------------------===//

TEST(CacheLineInfoTest, WordStatsAccumulate) {
  CacheLineInfo Info(16);
  Info.recordAccess(1, AccessKind::Read, 2, 1, 10);
  Info.recordAccess(1, AccessKind::Write, 2, 1, 20);
  EXPECT_EQ(Info.words()[2].Reads, 1u);
  EXPECT_EQ(Info.words()[2].Writes, 1u);
  EXPECT_EQ(Info.words()[2].Cycles, 30u);
  EXPECT_EQ(Info.words()[2].FirstThread, 1u);
  EXPECT_FALSE(Info.words()[2].MultiThread);
}

TEST(CacheLineInfoTest, SecondThreadMarksWordShared) {
  CacheLineInfo Info(16);
  Info.recordAccess(1, AccessKind::Read, 5, 1, 1);
  Info.recordAccess(2, AccessKind::Read, 5, 1, 1);
  EXPECT_TRUE(Info.words()[5].MultiThread);
}

TEST(CacheLineInfoTest, WideAccessMarksAllCoveredWords) {
  CacheLineInfo Info(16);
  // An 8-byte store covers two words.
  Info.recordAccess(1, AccessKind::Write, 4, 2, 50);
  EXPECT_EQ(Info.words()[4].Writes, 1u);
  EXPECT_EQ(Info.words()[5].Writes, 1u);
  // Latency attributed once.
  EXPECT_EQ(Info.words()[4].Cycles + Info.words()[5].Cycles, 50u);
}

TEST(CacheLineInfoTest, PerThreadStatsSortedAndMerged) {
  CacheLineInfo Info(16);
  Info.recordAccess(3, AccessKind::Write, 0, 1, 10);
  Info.recordAccess(1, AccessKind::Write, 1, 1, 20);
  Info.recordAccess(3, AccessKind::Read, 2, 1, 30);
  ASSERT_EQ(Info.threads().size(), 2u);
  EXPECT_EQ(Info.threads()[0].Tid, 1u);
  EXPECT_EQ(Info.threads()[1].Tid, 3u);
  EXPECT_EQ(Info.threads()[1].Accesses, 2u);
  EXPECT_EQ(Info.threads()[1].Cycles, 40u);
}

TEST(CacheLineInfoTest, InvalidationCounterFollowsTable) {
  CacheLineInfo Info(16);
  Info.recordAccess(1, AccessKind::Write, 0, 1, 1); // empty-table write
  Info.recordAccess(2, AccessKind::Write, 1, 1, 1);
  Info.recordAccess(1, AccessKind::Write, 0, 1, 1);
  EXPECT_EQ(Info.invalidations(), 3u);
  EXPECT_EQ(Info.writes(), 3u);
  EXPECT_EQ(Info.accesses(), 3u);
}

//===----------------------------------------------------------------------===//
// ShadowMemory
//===----------------------------------------------------------------------===//

class ShadowTest : public ::testing::Test {
protected:
  CacheGeometry Geometry{64};
  ShadowMemory Shadow{Geometry,
                      {{0x40000000, 1 << 20}, {0x10000000, 1 << 16}}};
};

TEST_F(ShadowTest, CoversOnlyConfiguredRegions) {
  EXPECT_TRUE(Shadow.covers(0x40000000));
  EXPECT_TRUE(Shadow.covers(0x40000000 + (1 << 20) - 1));
  EXPECT_FALSE(Shadow.covers(0x40000000 + (1 << 20)));
  EXPECT_TRUE(Shadow.covers(0x10000000));
  EXPECT_FALSE(Shadow.covers(0x20000000));
  EXPECT_FALSE(Shadow.covers(0));
}

TEST_F(ShadowTest, WriteCountsPerLine) {
  EXPECT_EQ(Shadow.noteWrite(0x40000004), 1u);
  EXPECT_EQ(Shadow.noteWrite(0x40000038), 2u); // same 64-byte line
  EXPECT_EQ(Shadow.noteWrite(0x40000040), 1u); // next line
  EXPECT_EQ(Shadow.writeCount(0x40000000), 2u);
}

TEST_F(ShadowTest, DetailMaterializesLazily) {
  EXPECT_EQ(Shadow.detail(0x40000000), nullptr);
  CacheLineInfo &Info = Shadow.materializeDetail(0x40000000);
  EXPECT_EQ(&Shadow.materializeDetail(0x40000010), &Info); // same line
  EXPECT_EQ(Shadow.materializedLines(), 1u);
  EXPECT_EQ(Info.words().size(), Geometry.wordsPerLine());
}

TEST_F(ShadowTest, ForEachDetailVisitsAllMaterializedLines) {
  Shadow.materializeDetail(0x40000000);
  Shadow.materializeDetail(0x40000100);
  Shadow.materializeDetail(0x10000000);
  std::vector<uint64_t> Bases;
  Shadow.forEachDetail(
      [&](uint64_t Base, const CacheLineInfo &) { Bases.push_back(Base); });
  ASSERT_EQ(Bases.size(), 3u);
  EXPECT_NE(std::find(Bases.begin(), Bases.end(), 0x40000000u), Bases.end());
  EXPECT_NE(std::find(Bases.begin(), Bases.end(), 0x40000100u), Bases.end());
  EXPECT_NE(std::find(Bases.begin(), Bases.end(), 0x10000000u), Bases.end());
}

TEST_F(ShadowTest, ShadowBytesGrowWithMaterialization) {
  size_t Before = Shadow.shadowBytes();
  Shadow.materializeDetail(0x40000000);
  EXPECT_GT(Shadow.shadowBytes(), Before);
}

//===----------------------------------------------------------------------===//
// Detector gating
//===----------------------------------------------------------------------===//

pmu::Sample makeSample(uint64_t Address, ThreadId Tid, bool IsWrite,
                       uint32_t Latency = 10) {
  pmu::Sample Sample;
  Sample.Address = Address;
  Sample.Tid = Tid;
  Sample.IsWrite = IsWrite;
  Sample.LatencyCycles = Latency;
  return Sample;
}

class DetectorTest : public ::testing::Test {
protected:
  CacheGeometry Geometry{64};
  ShadowMemory Shadow{Geometry, {{0x40000000, 1 << 20}}};
  DetectorConfig Config;
  Detector Detect{Geometry, Shadow, Config};
};

TEST_F(DetectorTest, FiltersSamplesOutsideMonitoredRegions) {
  EXPECT_FALSE(Detect.handleSample(makeSample(0x7fff0000, 0, true), true));
  EXPECT_EQ(Detect.stats().SamplesFiltered, 1u);
  EXPECT_EQ(Detect.stats().SamplesRecorded, 0u);
}

TEST_F(DetectorTest, WriteThresholdGatesDetailTracking) {
  // Writes 1 and 2 only bump the counter; write 3 crosses the threshold.
  EXPECT_FALSE(Detect.handleSample(makeSample(0x40000000, 0, true), true));
  EXPECT_FALSE(Detect.handleSample(makeSample(0x40000000, 1, true), true));
  EXPECT_EQ(Shadow.materializedLines(), 0u);
  EXPECT_TRUE(Detect.handleSample(makeSample(0x40000000, 0, true), true));
  EXPECT_EQ(Shadow.materializedLines(), 1u);
}

TEST_F(DetectorTest, ReadOnlyLinesNeverMaterialize) {
  for (int I = 0; I < 100; ++I)
    Detect.handleSample(makeSample(0x40000040, I % 4, false), true);
  EXPECT_EQ(Shadow.materializedLines(), 0u);
}

TEST_F(DetectorTest, SerialPhaseSamplesNotRecordedInDetail) {
  for (int I = 0; I < 10; ++I)
    EXPECT_FALSE(
        Detect.handleSample(makeSample(0x40000000, 0, true), false));
  // Write counts accumulated, but no detail materialized during serial.
  EXPECT_EQ(Shadow.writeCount(0x40000000), 10u);
  EXPECT_EQ(Shadow.materializedLines(), 0u);
  // Once parallel begins, the susceptible line materializes immediately.
  EXPECT_TRUE(Detect.handleSample(makeSample(0x40000000, 1, true), true));
}

TEST_F(DetectorTest, PredatorStyleConfigRecordsSerialPhases) {
  DetectorConfig Always;
  Always.OnlyParallelPhases = false;
  Detector Eager(Geometry, Shadow, Always);
  for (int I = 0; I < 3; ++I)
    Eager.handleSample(makeSample(0x40000080, 0, true), false);
  EXPECT_EQ(Shadow.materializedLines(), 1u);
}

TEST_F(DetectorTest, InvalidationsCountedAcrossThreads) {
  for (int I = 0; I < 20; ++I)
    Detect.handleSample(makeSample(0x40000000, I % 2, true), true);
  EXPECT_GT(Detect.stats().Invalidations, 10u);
}

TEST_F(DetectorTest, StraddlingAccessClampedToLine) {
  // 8-byte access starting at the last word of a line must not assert.
  uint64_t LastWord = 0x40000000 + 60;
  Detect.handleSample(makeSample(LastWord, 0, true), true);
  Detect.handleSample(makeSample(LastWord, 1, true), true);
  EXPECT_TRUE(Detect.handleSample(makeSample(LastWord, 0, true), true));
}

//===----------------------------------------------------------------------===//
// SharingClassifier
//===----------------------------------------------------------------------===//

TEST(ClassifierTest, DisjointWordsAreFalseSharing) {
  CacheLineInfo Info(16);
  for (int I = 0; I < 50; ++I) {
    Info.recordAccess(1, AccessKind::Write, 0, 1, 10);
    Info.recordAccess(2, AccessKind::Write, 8, 1, 10);
  }
  SharingClassifier Classifier;
  LineClassification Verdict = Classifier.classify(Info);
  EXPECT_EQ(Verdict.Kind, SharingKind::FalseSharing);
  EXPECT_EQ(Verdict.Threads, 2u);
  EXPECT_EQ(Verdict.SharedWordAccesses, 0u);
}

TEST(ClassifierTest, SameWordsAreTrueSharing) {
  CacheLineInfo Info(16);
  for (int I = 0; I < 50; ++I)
    Info.recordAccess(I % 4, AccessKind::Write, 3, 1, 10);
  SharingClassifier Classifier;
  EXPECT_EQ(Classifier.classify(Info).Kind, SharingKind::TrueSharing);
}

TEST(ClassifierTest, SingleThreadIsNotShared) {
  CacheLineInfo Info(16);
  for (int I = 0; I < 50; ++I)
    Info.recordAccess(1, AccessKind::Write, I % 16, 1, 10);
  SharingClassifier Classifier;
  EXPECT_EQ(Classifier.classify(Info).Kind, SharingKind::NotShared);
}

TEST(ClassifierTest, MixedPatternsClassifyAsMixed) {
  CacheLineInfo Info(16);
  for (int I = 0; I < 50; ++I) {
    // Half the traffic on a genuinely shared word, half on private words.
    Info.recordAccess(1, AccessKind::Write, 0, 1, 10);
    Info.recordAccess(2, AccessKind::Write, 0, 1, 10);
    Info.recordAccess(1, AccessKind::Write, 4, 1, 10);
    Info.recordAccess(2, AccessKind::Write, 8, 1, 10);
  }
  SharingClassifier Classifier;
  LineClassification Verdict = Classifier.classify(Info);
  EXPECT_EQ(Verdict.Kind, SharingKind::Mixed);
  EXPECT_NEAR(Verdict.sharedFraction(), 0.5, 0.01);
}

TEST(ClassifierTest, ThresholdsAreConfigurable) {
  CacheLineInfo Info(16);
  for (int I = 0; I < 50; ++I) {
    Info.recordAccess(1, AccessKind::Write, 0, 1, 10);
    Info.recordAccess(2, AccessKind::Write, 0, 1, 10);
    Info.recordAccess(1, AccessKind::Write, 4, 1, 10);
    Info.recordAccess(2, AccessKind::Write, 8, 1, 10);
  }
  ClassifierConfig Loose;
  Loose.FalseSharingMaxSharedFraction = 0.6;
  SharingClassifier Classifier(Loose);
  EXPECT_EQ(Classifier.classify(Info).Kind, SharingKind::FalseSharing);
}

TEST(ClassifierTest, SharingKindNamesAreStable) {
  EXPECT_STREQ(sharingKindName(SharingKind::FalseSharing), "false-sharing");
  EXPECT_STREQ(sharingKindName(SharingKind::TrueSharing), "true-sharing");
  EXPECT_STREQ(sharingKindName(SharingKind::NotShared), "not-shared");
  EXPECT_STREQ(sharingKindName(SharingKind::Mixed), "mixed-sharing");
}

} // namespace
