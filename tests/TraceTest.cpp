//===- tests/TraceTest.cpp - trace record/replay backend tests -------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cheetah-trace-v1` backend end to end: TraceData's deterministic
/// serialize/parse round trip, the loud-error parser contract on hostile
/// input, the in-memory record tee, and the payoff gate — a recorded
/// workload run replayed through `runSession` must reproduce the live
/// run's `cheetah-report-v4` byte for byte.
///
//===----------------------------------------------------------------------===//

#include "core/report/ReportSink.h"
#include "driver/ProfileSession.h"
#include "pmu/TraceSource.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace cheetah;

namespace {

//===----------------------------------------------------------------------===//
// TraceData round trip
//===----------------------------------------------------------------------===//

pmu::TraceData sampleTrace() {
  pmu::TraceData Data;
  Data.SamplingPeriod = 512;
  Data.RunCycles = 987654;
  pmu::TraceEvent Start;
  Start.K = pmu::TraceEvent::Kind::ThreadStart;
  Start.Tid = 0;
  Start.IsMain = true;
  Start.Time = 0;
  Data.Events.push_back(Start);
  pmu::TraceEvent Point;
  Point.K = pmu::TraceEvent::Kind::SamplePoint;
  Point.Tid = 3;
  Point.Time = 4096;
  Point.Address = 0x7f00000010ull;
  Point.IsWrite = true;
  Point.LatencyCycles = 120;
  Data.Events.push_back(Point);
  pmu::TraceEvent End;
  End.K = pmu::TraceEvent::Kind::ThreadEnd;
  End.Tid = 3;
  End.IsMain = false;
  End.Time = 8192;
  Data.Events.push_back(End);
  return Data;
}

TEST(TraceDataTest, SerializeParseRoundTripsEveryEventKind) {
  pmu::TraceData Data = sampleTrace();
  std::string Text = Data.serialize();

  pmu::TraceData Parsed;
  std::string Error;
  ASSERT_TRUE(pmu::TraceData::parse(Text, Parsed, Error)) << Error;
  EXPECT_EQ(Parsed.SamplingPeriod, 512u);
  EXPECT_EQ(Parsed.RunCycles, 987654u);
  ASSERT_EQ(Parsed.Events.size(), 3u);
  EXPECT_EQ(Parsed.Events[0].K, pmu::TraceEvent::Kind::ThreadStart);
  EXPECT_TRUE(Parsed.Events[0].IsMain);
  EXPECT_EQ(Parsed.Events[1].K, pmu::TraceEvent::Kind::SamplePoint);
  EXPECT_EQ(Parsed.Events[1].Address, 0x7f00000010ull);
  EXPECT_EQ(Parsed.Events[1].Tid, 3u);
  EXPECT_TRUE(Parsed.Events[1].IsWrite);
  EXPECT_EQ(Parsed.Events[1].LatencyCycles, 120u);
  EXPECT_EQ(Parsed.Events[1].Time, 4096u);
  EXPECT_EQ(Parsed.Events[2].K, pmu::TraceEvent::Kind::ThreadEnd);
  EXPECT_FALSE(Parsed.Events[2].IsMain);

  // Deterministic: parse-then-serialize reproduces the document exactly.
  EXPECT_EQ(Parsed.serialize(), Text);
}

TEST(TraceDataTest, SchemaIsCheckedBeforeStructure) {
  pmu::TraceData Data = sampleTrace();
  std::string Text = Data.serialize();
  size_t At = Text.find("cheetah-trace-v1");
  ASSERT_NE(At, std::string::npos);
  Text.replace(At, 16, "cheetah-trace-v9");

  pmu::TraceData Parsed;
  std::string Error;
  EXPECT_FALSE(pmu::TraceData::parse(Text, Parsed, Error));
  EXPECT_NE(Error.find("unsupported schema"), std::string::npos) << Error;
}

TEST(TraceDataTest, ParseErrorsAreLoudAndNamed) {
  pmu::TraceData Parsed;
  std::string Error;

  EXPECT_FALSE(pmu::TraceData::parse("not json", Parsed, Error));
  EXPECT_FALSE(Error.empty());

  EXPECT_FALSE(pmu::TraceData::parse("[1,2,3]", Parsed, Error));
  EXPECT_NE(Error.find("not a JSON object"), std::string::npos) << Error;

  // A zero sampling period can never have produced samples.
  EXPECT_FALSE(pmu::TraceData::parse(
      R"({"schema":"cheetah-trace-v1","sampling_period":0,)"
      R"("run_cycles":1,"events":[]})",
      Parsed, Error));
  EXPECT_NE(Error.find("sampling_period"), std::string::npos) << Error;

  // Unknown event kinds name the offending index.
  EXPECT_FALSE(pmu::TraceData::parse(
      R"({"schema":"cheetah-trace-v1","sampling_period":64,)"
      R"("run_cycles":1,"events":[{"k":"zz"}]})",
      Parsed, Error));
  EXPECT_NE(Error.find("event 0"), std::string::npos) << Error;
  EXPECT_NE(Error.find("unknown event kind"), std::string::npos) << Error;

  // Field values outside their 32-bit homes are rejected, not truncated.
  EXPECT_FALSE(pmu::TraceData::parse(
      R"({"schema":"cheetah-trace-v1","sampling_period":64,)"
      R"("run_cycles":1,"events":[)"
      R"({"k":"s","a":1,"tid":4294967296,"w":true,"l":1,"t":1}]})",
      Parsed, Error));
  EXPECT_NE(Error.find("tid exceeds 32 bits"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// TraceSource replay-mode errors
//===----------------------------------------------------------------------===//

TEST(TraceSourceTest, MissingFileFailsStartWithReason) {
  pmu::TraceSource Replay(::testing::TempDir() + "does_not_exist.trace");
  pmu::SourceStatus Status = Replay.start();
  EXPECT_FALSE(Status.Available);
  EXPECT_NE(Status.Reason.find("cannot open"), std::string::npos)
      << Status.Reason;
}

TEST(TraceSourceTest, MalformedFileFailsStartNamingThePath) {
  std::string Path = ::testing::TempDir() + "malformed.trace";
  std::FILE *File = std::fopen(Path.c_str(), "w");
  ASSERT_NE(File, nullptr);
  std::fputs("{\"schema\":\"cheetah-trace-v1\"", File);
  std::fclose(File);

  pmu::TraceSource Replay(Path);
  pmu::SourceStatus Status = Replay.start();
  EXPECT_FALSE(Status.Available);
  EXPECT_NE(Status.Reason.find(Path), std::string::npos) << Status.Reason;
}

//===----------------------------------------------------------------------===//
// In-memory record tee
//===----------------------------------------------------------------------===//

/// Collects the sink-side stream for order assertions.
struct EventLog : pmu::SampleSink {
  std::vector<std::string> Entries;
  size_t Samples = 0;

  void threadStarted(ThreadId Tid, bool IsMain, uint64_t) override {
    Entries.push_back("start " + std::to_string(Tid) + (IsMain ? "*" : ""));
  }
  void threadFinished(ThreadId Tid, bool, uint64_t) override {
    Entries.push_back("end " + std::to_string(Tid));
  }
  void ingestBatch(const pmu::Sample *, size_t Count) override {
    Entries.push_back("batch " + std::to_string(Count));
    Samples += Count;
  }
};

/// Minimal pushable backend for driving the tee directly.
struct ManualSource : pmu::SampleSource {
  const char *name() const override { return "manual"; }
  pmu::SourceStatus start() override { return {true, ""}; }
  pmu::SourceStatus stop() override { return {true, ""}; }
  uint64_t samplesDelivered() const override { return 0; }
};

TEST(TraceSourceTest, RecordTeeBuffersAndForwardsInOrder) {
  auto Owned = std::make_unique<ManualSource>();
  ManualSource *Backend = Owned.get();
  pmu::TraceSource Tee(std::move(Owned), /*Path=*/"", /*SamplingPeriod=*/64);
  EventLog Log;
  Tee.setSink(&Log);
  ASSERT_TRUE(Tee.start().Available);
  // start() must have interposed the tee between backend and outer sink.
  ASSERT_EQ(Backend->sink(), &Tee);

  Backend->sink()->threadStarted(0, true, 0);
  pmu::Sample S;
  S.Address = 0x40;
  S.Tid = 0;
  S.IsWrite = true;
  S.LatencyCycles = 9;
  S.Timestamp = 77;
  Backend->sink()->ingestBatch(&S, 1);
  Backend->sink()->threadFinished(0, true, 100);

  // Forwarded unchanged...
  ASSERT_EQ(Log.Entries.size(), 3u);
  EXPECT_EQ(Log.Entries[0], "start 0*");
  EXPECT_EQ(Log.Entries[1], "batch 1");
  EXPECT_EQ(Log.Entries[2], "end 0");
  // ...and buffered for replay, repeatably (the daemon replays per epoch).
  Tee.setRunCycles(100);
  for (int Pass = 0; Pass < 2; ++Pass) {
    EventLog Replayed;
    EXPECT_EQ(Tee.replayInto(Replayed), 1u);
    EXPECT_EQ(Replayed.Entries, Log.Entries);
  }
  // Empty path: stop() is a no-op flush, never an error.
  EXPECT_TRUE(Tee.stop().Available);
}

//===----------------------------------------------------------------------===//
// The payoff gate: record -> replay is byte-identical
//===----------------------------------------------------------------------===//

driver::SessionConfig traceConfig() {
  driver::SessionConfig Config;
  Config.Workload.Threads = 8;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
  Config.Profiler.Detect.TrackPages = true;
  Config.Workload.NumaNodes = 2;
  NumaTopologySpec Spec;
  Spec.Nodes = 2;
  std::string Error;
  EXPECT_TRUE(NumaTopology::fromSpec(Spec, Config.Profiler.Topology, Error));
  return Config;
}

TEST(TraceReplayTest, ReplayedReportIsByteIdenticalToLiveRun) {
  auto Workload = workloads::createWorkload("numa_first_touch");
  ASSERT_NE(Workload, nullptr);
  std::string TracePath = ::testing::TempDir() + "first_touch.trace";

  driver::SessionConfig Record = traceConfig();
  Record.RecordTracePath = TracePath;
  std::string LiveText;
  core::JsonReportSink LiveSink(LiveText);
  driver::SessionResult Live;
  std::string Error;
  ASSERT_TRUE(
      driver::runSession(*Workload, Record, &LiveSink, Live, Error))
      << Error;
  ASSERT_FALSE(LiveText.empty());

  driver::SessionConfig Replay = traceConfig();
  Replay.Backend = driver::SampleBackend::TraceReplay;
  Replay.ReplayTracePath = TracePath;
  std::string ReplayText;
  core::JsonReportSink ReplaySink(ReplayText);
  driver::SessionResult Replayed;
  ASSERT_TRUE(
      driver::runSession(*Workload, Replay, &ReplaySink, Replayed, Error))
      << Error;

  // Byte for byte: detection is delivery-order-sensitive, so this holds
  // only because replay reproduces the recorded order with batches of one.
  EXPECT_EQ(ReplayText, LiveText);
  EXPECT_EQ(Replayed.Run.TotalCycles, Live.Run.TotalCycles);
  EXPECT_EQ(Replayed.Profile.SamplesDelivered,
            Live.Profile.SamplesDelivered);
}

TEST(TraceReplayTest, RecordingDoesNotPerturbTheLiveReport) {
  auto Workload = workloads::createWorkload("numa_first_touch");
  ASSERT_NE(Workload, nullptr);

  driver::SessionConfig Plain = traceConfig();
  std::string PlainText;
  core::JsonReportSink PlainSink(PlainText);
  driver::SessionResult PlainRun;
  std::string Error;
  ASSERT_TRUE(
      driver::runSession(*Workload, Plain, &PlainSink, PlainRun, Error))
      << Error;

  driver::SessionConfig Record = traceConfig();
  Record.RecordTracePath = ::testing::TempDir() + "perturb.trace";
  std::string RecordText;
  core::JsonReportSink RecordSink(RecordText);
  driver::SessionResult RecordRun;
  ASSERT_TRUE(
      driver::runSession(*Workload, Record, &RecordSink, RecordRun, Error))
      << Error;

  // The tee observes; it must not change what the profiler sees or when
  // the simulator charges cycles.
  EXPECT_EQ(RecordText, PlainText);
  EXPECT_EQ(RecordRun.Run.TotalCycles, PlainRun.Run.TotalCycles);
}

TEST(TraceReplayTest, SessionRejectsContradictoryBackendConfigs) {
  auto Workload = workloads::createWorkload("numa_first_touch");
  ASSERT_NE(Workload, nullptr);
  driver::SessionResult Result;
  std::string Error;

  driver::SessionConfig Both = traceConfig();
  Both.Backend = driver::SampleBackend::TraceReplay;
  Both.ReplayTracePath = "whatever.trace";
  Both.RecordTracePath = "other.trace";
  EXPECT_FALSE(driver::runSession(*Workload, Both, nullptr, Result, Error));
  EXPECT_NE(Error.find("--record-trace"), std::string::npos) << Error;

  driver::SessionConfig Native = traceConfig();
  Native.Backend = driver::SampleBackend::TraceReplay;
  Native.ReplayTracePath = "whatever.trace";
  Native.EnableProfiler = false;
  EXPECT_FALSE(
      driver::runSession(*Workload, Native, nullptr, Result, Error));
  EXPECT_NE(Error.find("profiler"), std::string::npos) << Error;
}

TEST(TraceReplayTest, ReplayHeaderOverridesRunInfoSamplingPeriod) {
  auto Workload = workloads::createWorkload("numa_first_touch");
  ASSERT_NE(Workload, nullptr);
  std::string TracePath = ::testing::TempDir() + "period.trace";

  driver::SessionConfig Record = traceConfig();
  Record.RecordTracePath = TracePath;
  driver::SessionResult Live;
  std::string Error;
  ASSERT_TRUE(driver::runSession(*Workload, Record, nullptr, Live, Error))
      << Error;

  // Replay under a *different* configured period: the report must carry
  // the recorded run's period, because that is what produced the samples.
  driver::SessionConfig Replay = traceConfig();
  Replay.Profiler.Pmu = Replay.Profiler.Pmu.withScaledPeriod(8192);
  Replay.Backend = driver::SampleBackend::TraceReplay;
  Replay.ReplayTracePath = TracePath;
  std::string ReplayText;
  core::JsonReportSink ReplaySink(ReplayText);
  driver::SessionResult Replayed;
  ASSERT_TRUE(
      driver::runSession(*Workload, Replay, &ReplaySink, Replayed, Error))
      << Error;
  EXPECT_NE(ReplayText.find("\"sampling_period\":256"), std::string::npos);
}

} // namespace
