//===- tests/PropertyTest.cpp - randomized whole-pipeline invariants -------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzz-style property tests: random fork-join programs (random phase
/// counts, thread counts, object layouts, read/write mixes) are run through
/// the full simulator+profiler pipeline and checked against invariants that
/// must hold for *any* program:
///
///  - accounting conservation (events seen by observers == events retired;
///    per-thread sampled totals == per-object totals summed);
///  - phase structure partitions the execution and owns every child;
///  - detection gates (no detail without writes above threshold, no
///    invalidations without a multi-thread line);
///  - the coherence model against a brute-force holder-set oracle;
///  - determinism of the entire stack under a fixed seed.
///
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "driver/ProfileSession.h"
#include "sim/Simulator.h"
#include "support/Random.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace cheetah;

namespace {

//===----------------------------------------------------------------------===//
// Random program construction
//===----------------------------------------------------------------------===//

struct FuzzSpec {
  uint64_t Seed = 1;
  uint32_t MaxPhases = 3;
  uint32_t MaxThreads = 6;
  uint32_t MaxObjects = 5;
  uint64_t EventsPerThread = 3000;
  double WriteFraction = 0.4;
  /// Probability a thread's accesses target a shared object rather than
  /// its private one.
  double SharedFraction = 0.3;
};

/// One random thread body: a mix of accesses to a private region and to
/// randomly chosen shared objects.
Generator<ThreadEvent> fuzzBody(uint64_t PrivateBase, uint64_t PrivateBytes,
                                std::vector<uint64_t> SharedBases,
                                uint64_t SharedBytes, uint64_t Events,
                                double WriteFraction, double SharedFraction,
                                uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (uint64_t I = 0; I < Events; ++I) {
    if (Rng.nextBool(0.2)) {
      co_yield ThreadEvent::compute(
          static_cast<uint32_t>(Rng.nextInRange(1, 12)));
      continue;
    }
    uint64_t Base, Span;
    if (!SharedBases.empty() && Rng.nextBool(SharedFraction)) {
      Base = SharedBases[Rng.nextBelow(SharedBases.size())];
      Span = SharedBytes;
    } else {
      Base = PrivateBase;
      Span = PrivateBytes;
    }
    uint64_t Address = Base + (Rng.nextBelow(Span / 4)) * 4;
    if (Rng.nextBool(WriteFraction))
      co_yield ThreadEvent::write(Address, 4);
    else
      co_yield ThreadEvent::read(Address, 4);
  }
}

/// Builds a random fork-join program against \p Profiler's heap.
sim::ForkJoinProgram buildFuzzProgram(core::Profiler &Profiler,
                                      const FuzzSpec &Spec,
                                      uint32_t &TotalChildren) {
  SplitMix64 Rng(Spec.Seed);
  sim::ForkJoinProgram Program;
  Program.Name = "fuzz";
  TotalChildren = 0;

  uint32_t Phases = static_cast<uint32_t>(Rng.nextInRange(1, Spec.MaxPhases));
  uint32_t Objects =
      static_cast<uint32_t>(Rng.nextInRange(1, Spec.MaxObjects));
  constexpr uint64_t SharedBytes = 512;

  std::vector<uint64_t> SharedBases;
  for (uint32_t O = 0; O < Objects; ++O)
    SharedBases.push_back(Profiler.heap().allocate(
        SharedBytes, 0, Profiler.internCallsite("fuzz.c", 100 + O)));

  for (uint32_t P = 0; P < Phases; ++P) {
    sim::PhaseSpec &Phase = Program.addPhase("fuzz" + std::to_string(P));
    uint64_t InitBase = SharedBases[P % SharedBases.size()];
    Phase.SerialBody = [=]() -> Generator<ThreadEvent> {
      for (uint64_t Offset = 0; Offset < SharedBytes; Offset += 8)
        co_yield ThreadEvent::write(InitBase + Offset, 8);
    };
    uint32_t Threads =
        static_cast<uint32_t>(Rng.nextInRange(1, Spec.MaxThreads));
    for (uint32_t T = 0; T < Threads; ++T) {
      uint64_t Private = Profiler.heap().allocate(
          4096, 0, Profiler.internCallsite("fuzz.c", 999));
      uint64_t BodySeed = Rng.next();
      Phase.ParallelBodies.push_back([=]() {
        return fuzzBody(Private, 4096, SharedBases, SharedBytes,
                        Spec.EventsPerThread, Spec.WriteFraction,
                        Spec.SharedFraction, BodySeed);
      });
      ++TotalChildren;
    }
  }
  return Program;
}

/// Observer recording exact totals for conservation checks.
class AccountingObserver : public sim::SimObserver {
public:
  uint64_t MemoryEvents = 0;
  uint64_t Instructions = 0;
  std::set<ThreadId> Started, Ended;

  uint64_t onThreadStart(ThreadId Tid, bool, uint64_t) override {
    Started.insert(Tid);
    return 0;
  }
  void onThreadEnd(const sim::ThreadRecord &Record) override {
    Ended.insert(Record.Tid);
  }
  uint64_t onMemoryAccess(ThreadId, const MemoryAccess &,
                          const sim::CoherenceResult &, uint64_t) override {
    ++MemoryEvents;
    ++Instructions;
    return 0;
  }
  void onInstructions(ThreadId, uint64_t N) override { Instructions += N; }
};

class FuzzPipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipelineTest, InvariantsHoldOnRandomPrograms) {
  FuzzSpec Spec;
  Spec.Seed = GetParam();

  core::ProfilerConfig Config;
  Config.Pmu = Config.Pmu.withScaledPeriod(64);
  core::Profiler Profiler(Config);
  uint32_t TotalChildren = 0;
  sim::ForkJoinProgram Program =
      buildFuzzProgram(Profiler, Spec, TotalChildren);

  AccountingObserver Accounting;
  sim::Simulator Sim(Config.Geometry, sim::LatencyModel());
  Sim.addObserver(&Accounting);
  Sim.addObserver(&Profiler);
  sim::SimulationResult Run = Sim.run(Program);
  core::ProfileResult Result = Profiler.finish(Run);

  // --- Lifecycle conservation.
  EXPECT_EQ(Accounting.Started.size(), TotalChildren + 1u);
  EXPECT_EQ(Accounting.Started, Accounting.Ended);
  EXPECT_EQ(Run.Threads.size(), TotalChildren + 1u);

  // --- Event conservation: observer totals == exact thread records.
  uint64_t RecordedMemory = 0, RecordedInstructions = 0;
  for (const sim::ThreadRecord &Record : Run.Threads) {
    RecordedMemory += Record.MemoryAccesses;
    RecordedInstructions += Record.Instructions;
    EXPECT_LE(Record.StartCycle, Record.EndCycle);
  }
  EXPECT_EQ(Accounting.MemoryEvents, RecordedMemory);
  EXPECT_EQ(Accounting.Instructions, RecordedInstructions);
  EXPECT_EQ(Run.Coherence.Accesses, RecordedMemory);

  // --- Phase structure: phases tile [begin, end] without overlap and own
  // every child exactly once.
  const auto &Phases = Profiler.phases().phases();
  ASSERT_FALSE(Phases.empty());
  std::set<ThreadId> Owned;
  uint64_t Cursor = Phases.front().StartTime;
  for (const runtime::ExecutionPhase &Phase : Phases) {
    EXPECT_EQ(Phase.StartTime, Cursor);
    EXPECT_GE(Phase.EndTime, Phase.StartTime);
    Cursor = Phase.EndTime;
    for (ThreadId Member : Phase.Members) {
      EXPECT_TRUE(Owned.insert(Member).second)
          << "thread in two phases: " << Member;
    }
  }
  EXPECT_EQ(Owned.size(), TotalChildren);
  EXPECT_TRUE(Result.ForkJoinVerified);

  // --- Sampling conservation: detector saw what the PMU delivered; the
  // registry's totals cover every delivered sample.
  EXPECT_EQ(Result.Detection.SamplesSeen, Result.SamplesDelivered);
  EXPECT_EQ(Profiler.threadRegistry().totalSampledAccesses(),
            Result.SamplesDelivered);

  // --- Detection gates: detail only on lines with enough writes; the
  // object aggregates are consistent with themselves.
  Profiler.shadow().forEachDetail(
      [&](uint64_t LineBase, const core::CacheLineInfo &Info) {
        EXPECT_GT(Profiler.shadow().writeCount(LineBase),
                  Config.Detect.WriteThreshold);
        EXPECT_LE(Info.invalidations(), Info.writes());
        uint64_t WordAccesses = 0;
        for (const core::WordStats &Word : Info.words())
          WordAccesses += Word.accesses();
        EXPECT_EQ(WordAccesses, Info.accesses());
        uint64_t ThreadAccesses = 0;
        for (const core::ThreadLineStats &Stats : Info.threads())
          ThreadAccesses += Stats.Accesses;
        EXPECT_EQ(ThreadAccesses, Info.accesses());
        if (Info.invalidations() > 1)
          EXPECT_GE(Info.threadCount(), 1u);
      });

  // --- Every report's numbers are self-consistent and its assessment sane.
  for (const core::FalseSharingReport &Report : Result.AllInstances) {
    EXPECT_GE(Report.SampledAccesses, Report.SampledWrites);
    EXPECT_GE(Report.LatencyCycles, Report.SampledAccesses); // >=1 cycle
    EXPECT_GT(Report.Impact.PredictedAppRuntime, 0.0);
    EXPECT_GT(Report.Impact.ImprovementFactor, 0.0);
    EXPECT_LT(Report.Impact.ImprovementFactor, 1000.0);
    uint64_t PerThreadAccesses = 0;
    for (const core::ThreadPrediction &P : Report.Impact.Threads)
      PerThreadAccesses += P.AccessesOnObject;
    EXPECT_EQ(PerThreadAccesses, Report.SampledAccesses);
  }

  // --- Full determinism: the identical seed reproduces the run bit for
  // bit (heap layout, interleaving, sampling, reports).
  core::Profiler Profiler2(Config);
  uint32_t TotalChildren2 = 0;
  sim::ForkJoinProgram Program2 =
      buildFuzzProgram(Profiler2, Spec, TotalChildren2);
  sim::Simulator Sim2(Config.Geometry, sim::LatencyModel());
  Sim2.addObserver(&Profiler2);
  sim::SimulationResult Run2 = Sim2.run(Program2);
  core::ProfileResult Result2 = Profiler2.finish(Run2);
  EXPECT_EQ(Run.TotalCycles, Run2.TotalCycles);
  EXPECT_EQ(Result.SamplesDelivered, Result2.SamplesDelivered);
  ASSERT_EQ(Result.AllInstances.size(), Result2.AllInstances.size());
  for (size_t I = 0; I < Result.AllInstances.size(); ++I) {
    EXPECT_EQ(Result.AllInstances[I].Object.Start,
              Result2.AllInstances[I].Object.Start);
    EXPECT_EQ(Result.AllInstances[I].Invalidations,
              Result2.AllInstances[I].Invalidations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineTest,
                         ::testing::Range<uint64_t>(1, 17));

//===----------------------------------------------------------------------===//
// Coherence model vs brute-force holder-set oracle
//===----------------------------------------------------------------------===//

struct OracleParams {
  uint32_t Threads;
  uint32_t Lines;
  double WriteFraction;
  uint64_t Seed;
};

class CoherenceOracleTest : public ::testing::TestWithParam<OracleParams> {};

TEST_P(CoherenceOracleTest, MatchesHolderSetOracle) {
  const OracleParams &Params = GetParam();
  CacheGeometry Geometry(64);
  sim::LatencyModel Latency;
  sim::CoherenceModel Model(Geometry, Latency);

  // Oracle: per line, the set of holders and a dirty bit, maintained by
  // the textbook invalidation protocol.
  struct OracleLine {
    std::set<ThreadId> Holders;
    bool Dirty = false;
    bool Touched = false;
  };
  std::map<uint64_t, OracleLine> Oracle;

  SplitMix64 Rng(Params.Seed);
  uint64_t Now = 0;
  for (int I = 0; I < 30000; ++I) {
    ThreadId Tid = static_cast<ThreadId>(Rng.nextBelow(Params.Threads));
    uint64_t Line = Rng.nextBelow(Params.Lines);
    uint64_t Address = 0x100000 + Line * 64 + Rng.nextBelow(16) * 4;
    bool IsWrite = Rng.nextBool(Params.WriteFraction);
    MemoryAccess Access = IsWrite ? MemoryAccess::write(Address)
                                  : MemoryAccess::read(Address);

    OracleLine &Ref = Oracle[Line];
    bool Held = Ref.Holders.count(Tid) > 0;
    uint32_t ExpectedVictims =
        IsWrite ? static_cast<uint32_t>(Ref.Holders.size()) - (Held ? 1 : 0)
                : 0;
    bool ExpectedHit =
        Held && (!IsWrite || (Ref.Holders.size() == 1 && Ref.Dirty));
    bool ExpectedCold = !Ref.Touched;

    sim::CoherenceResult Result = Model.access(Tid, Access, Now);
    Now += Result.LatencyCycles + 1;

    EXPECT_EQ(Result.Invalidated, ExpectedVictims) << "step " << I;
    if (ExpectedCold)
      EXPECT_EQ(Result.Outcome, sim::AccessOutcome::ColdMiss) << "step " << I;
    if (ExpectedHit && !ExpectedCold && !IsWrite)
      EXPECT_EQ(Result.Outcome, sim::AccessOutcome::LocalHit) << "step " << I;

    // Advance the oracle.
    Ref.Touched = true;
    if (IsWrite) {
      Ref.Holders.clear();
      Ref.Holders.insert(Tid);
      Ref.Dirty = true;
    } else {
      Ref.Holders.insert(Tid);
      if (!Held && Ref.Dirty)
        Ref.Dirty = false; // dirty supplier downgraded
    }
    // Cross-check the model's holder view.
    std::vector<ThreadId> Holders = Model.holdersOf(Address);
    std::set<ThreadId> ModelHolders(Holders.begin(), Holders.end());
    EXPECT_EQ(ModelHolders, Ref.Holders) << "step " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, CoherenceOracleTest,
    ::testing::Values(OracleParams{2, 1, 0.5, 21}, OracleParams{2, 8, 0.3, 22},
                      OracleParams{4, 2, 0.7, 23}, OracleParams{8, 4, 0.5, 24},
                      OracleParams{8, 16, 0.1, 25},
                      OracleParams{16, 8, 0.9, 26},
                      OracleParams{32, 32, 0.5, 27},
                      OracleParams{3, 1, 1.0, 28}));

//===----------------------------------------------------------------------===//
// Geometry sweep: detection is line-size aware end to end
//===----------------------------------------------------------------------===//

class GeometrySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometrySweepTest, PaddingToTheConfiguredLineSizeSilencesReports) {
  // A two-thread program writing slots padded exactly to the configured
  // line size must never be reported, at any geometry; halving the padding
  // must be reported (slots share lines again).
  uint64_t LineSize = GetParam();
  for (bool Padded : {true, false}) {
    core::ProfilerConfig Config;
    Config.Geometry = CacheGeometry(LineSize);
    Config.Pmu = Config.Pmu.withScaledPeriod(32);
    core::Profiler Profiler(Config);
    uint64_t Stride = Padded ? LineSize : LineSize / 2;
    uint64_t Slots = Profiler.globals().defineAligned("slots", 2 * Stride);

    sim::ForkJoinProgram Program;
    sim::PhaseSpec &Phase = Program.addPhase("p");
    for (uint32_t T = 0; T < 2; ++T) {
      uint64_t Slot = Slots + T * Stride;
      Phase.ParallelBodies.push_back([=]() -> Generator<ThreadEvent> {
        for (int I = 0; I < 20000; ++I)
          co_yield ThreadEvent::write(Slot, 4);
      });
    }
    sim::Simulator Sim(Config.Geometry, sim::LatencyModel());
    Sim.addObserver(&Profiler);
    core::ProfileResult Result = Profiler.finish(Sim.run(Program));
    if (Padded)
      EXPECT_TRUE(Result.Reports.empty()) << "line size " << LineSize;
    else
      EXPECT_FALSE(Result.Reports.empty()) << "line size " << LineSize;
  }
}

INSTANTIATE_TEST_SUITE_P(LineSizes, GeometrySweepTest,
                         ::testing::Values(16, 32, 64, 128, 256));

} // namespace
