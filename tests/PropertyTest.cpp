//===- tests/PropertyTest.cpp - randomized whole-pipeline invariants -------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzz-style property tests: random fork-join programs (random phase
/// counts, thread counts, object layouts, read/write mixes) are run through
/// the full simulator+profiler pipeline and checked against invariants that
/// must hold for *any* program:
///
///  - accounting conservation (events seen by observers == events retired;
///    per-thread sampled totals == per-object totals summed);
///  - phase structure partitions the execution and owns every child;
///  - detection gates (no detail without writes above threshold, no
///    invalidations without a multi-thread line);
///  - the coherence model against a brute-force holder-set oracle;
///  - determinism of the entire stack under a fixed seed;
///  - the packed page table against a sequential reference model on random
///    access sequences (the node-granularity mirror of the two-entry-table
///    equivalence the line layer already pins);
///  - the support/Json.h parser under fuzzed inputs: valid documents
///    round-trip exactly, malformed/truncated/mutated input errors without
///    ever crashing (the ASan CI job runs this suite);
///  - the page-assessment equations (EQ.1–EQ.4 with the clamped no-remote
///    baseline) on randomized profiles: prediction never exceeds the
///    measured runtime, never removes more than the measured on-object
///    cycles, improves (> 1) only when removable excess exists, and is
///    monotone in the remote fraction;
///  - ReportDiff::parseReport against truncated/mutated/version-mismatched
///    report documents: loud errors, never a crash;
///  - ReportHistory::parse (the cheetah-history-v1 store behind
///    cheetah-trend) under the same hostile treatment, plus
///    duplicate-run-id injection;
///  - the batch sample decoder (both kernels) against the per-sample decode
///    formula: fuzzed geometries/addresses/access widths, plus an
///    exhaustive sweep of every address x access width over a small
///    geometry where enumeration is affordable.
///
//===----------------------------------------------------------------------===//

#include "baseline/ReferenceModel.h"
#include "core/Profiler.h"
#include "core/detect/BatchDecode.h"
#include "core/detect/PageInfo.h"
#include "core/detect/PageTable.h"
#include "core/report/ReportDiff.h"
#include "core/report/ReportHistory.h"
#include "core/report/ReportSink.h"
#include "driver/ProfileSession.h"
#include "mem/NumaTopology.h"
#include "pmu/SimPmu.h"
#include "pmu/TraceSource.h"
#include "sim/Simulator.h"
#include "support/Json.h"
#include "support/Random.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

using namespace cheetah;

namespace {

//===----------------------------------------------------------------------===//
// Random program construction
//===----------------------------------------------------------------------===//

struct FuzzSpec {
  uint64_t Seed = 1;
  uint32_t MaxPhases = 3;
  uint32_t MaxThreads = 6;
  uint32_t MaxObjects = 5;
  uint64_t EventsPerThread = 3000;
  double WriteFraction = 0.4;
  /// Probability a thread's accesses target a shared object rather than
  /// its private one.
  double SharedFraction = 0.3;
};

/// One random thread body: a mix of accesses to a private region and to
/// randomly chosen shared objects.
Generator<ThreadEvent> fuzzBody(uint64_t PrivateBase, uint64_t PrivateBytes,
                                std::vector<uint64_t> SharedBases,
                                uint64_t SharedBytes, uint64_t Events,
                                double WriteFraction, double SharedFraction,
                                uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (uint64_t I = 0; I < Events; ++I) {
    if (Rng.nextBool(0.2)) {
      co_yield ThreadEvent::compute(
          static_cast<uint32_t>(Rng.nextInRange(1, 12)));
      continue;
    }
    uint64_t Base, Span;
    if (!SharedBases.empty() && Rng.nextBool(SharedFraction)) {
      Base = SharedBases[Rng.nextBelow(SharedBases.size())];
      Span = SharedBytes;
    } else {
      Base = PrivateBase;
      Span = PrivateBytes;
    }
    uint64_t Address = Base + (Rng.nextBelow(Span / 4)) * 4;
    if (Rng.nextBool(WriteFraction))
      co_yield ThreadEvent::write(Address, 4);
    else
      co_yield ThreadEvent::read(Address, 4);
  }
}

/// Builds a random fork-join program against \p Profiler's heap.
sim::ForkJoinProgram buildFuzzProgram(core::Profiler &Profiler,
                                      const FuzzSpec &Spec,
                                      uint32_t &TotalChildren) {
  SplitMix64 Rng(Spec.Seed);
  sim::ForkJoinProgram Program;
  Program.Name = "fuzz";
  TotalChildren = 0;

  uint32_t Phases = static_cast<uint32_t>(Rng.nextInRange(1, Spec.MaxPhases));
  uint32_t Objects =
      static_cast<uint32_t>(Rng.nextInRange(1, Spec.MaxObjects));
  constexpr uint64_t SharedBytes = 512;

  std::vector<uint64_t> SharedBases;
  for (uint32_t O = 0; O < Objects; ++O)
    SharedBases.push_back(Profiler.heap().allocate(
        SharedBytes, 0, Profiler.internCallsite("fuzz.c", 100 + O)));

  for (uint32_t P = 0; P < Phases; ++P) {
    sim::PhaseSpec &Phase = Program.addPhase("fuzz" + std::to_string(P));
    uint64_t InitBase = SharedBases[P % SharedBases.size()];
    Phase.SerialBody = [=]() -> Generator<ThreadEvent> {
      for (uint64_t Offset = 0; Offset < SharedBytes; Offset += 8)
        co_yield ThreadEvent::write(InitBase + Offset, 8);
    };
    uint32_t Threads =
        static_cast<uint32_t>(Rng.nextInRange(1, Spec.MaxThreads));
    for (uint32_t T = 0; T < Threads; ++T) {
      uint64_t Private = Profiler.heap().allocate(
          4096, 0, Profiler.internCallsite("fuzz.c", 999));
      uint64_t BodySeed = Rng.next();
      Phase.ParallelBodies.push_back([=]() {
        return fuzzBody(Private, 4096, SharedBases, SharedBytes,
                        Spec.EventsPerThread, Spec.WriteFraction,
                        Spec.SharedFraction, BodySeed);
      });
      ++TotalChildren;
    }
  }
  return Program;
}

/// Observer recording exact totals for conservation checks.
class AccountingObserver : public sim::SimObserver {
public:
  uint64_t MemoryEvents = 0;
  uint64_t Instructions = 0;
  std::set<ThreadId> Started, Ended;

  uint64_t onThreadStart(ThreadId Tid, bool, uint64_t) override {
    Started.insert(Tid);
    return 0;
  }
  void onThreadEnd(const sim::ThreadRecord &Record) override {
    Ended.insert(Record.Tid);
  }
  uint64_t onMemoryAccess(ThreadId, const MemoryAccess &,
                          const sim::CoherenceResult &, uint64_t) override {
    ++MemoryEvents;
    ++Instructions;
    return 0;
  }
  void onInstructions(ThreadId, uint64_t N) override { Instructions += N; }
};

class FuzzPipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipelineTest, InvariantsHoldOnRandomPrograms) {
  FuzzSpec Spec;
  Spec.Seed = GetParam();

  core::ProfilerConfig Config;
  Config.Pmu = Config.Pmu.withScaledPeriod(64);
  core::Profiler Profiler(Config);
  uint32_t TotalChildren = 0;
  sim::ForkJoinProgram Program =
      buildFuzzProgram(Profiler, Spec, TotalChildren);

  AccountingObserver Accounting;
  pmu::SimPmu Pmu(Config.Pmu);
  Pmu.setSink(&Profiler);
  sim::Simulator Sim(Config.Geometry, sim::LatencyModel());
  Sim.addObserver(&Accounting);
  Sim.addObserver(Pmu.simObserver());
  sim::SimulationResult Run = Sim.run(Program);
  core::ProfileResult Result = Profiler.finish(Run);

  // --- Lifecycle conservation.
  EXPECT_EQ(Accounting.Started.size(), TotalChildren + 1u);
  EXPECT_EQ(Accounting.Started, Accounting.Ended);
  EXPECT_EQ(Run.Threads.size(), TotalChildren + 1u);

  // --- Event conservation: observer totals == exact thread records.
  uint64_t RecordedMemory = 0, RecordedInstructions = 0;
  for (const sim::ThreadRecord &Record : Run.Threads) {
    RecordedMemory += Record.MemoryAccesses;
    RecordedInstructions += Record.Instructions;
    EXPECT_LE(Record.StartCycle, Record.EndCycle);
  }
  EXPECT_EQ(Accounting.MemoryEvents, RecordedMemory);
  EXPECT_EQ(Accounting.Instructions, RecordedInstructions);
  EXPECT_EQ(Run.Coherence.Accesses, RecordedMemory);

  // --- Phase structure: phases tile [begin, end] without overlap and own
  // every child exactly once.
  const auto &Phases = Profiler.phases().phases();
  ASSERT_FALSE(Phases.empty());
  std::set<ThreadId> Owned;
  uint64_t Cursor = Phases.front().StartTime;
  for (const runtime::ExecutionPhase &Phase : Phases) {
    EXPECT_EQ(Phase.StartTime, Cursor);
    EXPECT_GE(Phase.EndTime, Phase.StartTime);
    Cursor = Phase.EndTime;
    for (ThreadId Member : Phase.Members) {
      EXPECT_TRUE(Owned.insert(Member).second)
          << "thread in two phases: " << Member;
    }
  }
  EXPECT_EQ(Owned.size(), TotalChildren);
  EXPECT_TRUE(Result.ForkJoinVerified);

  // --- Sampling conservation: detector saw what the PMU delivered; the
  // registry's totals cover every delivered sample.
  EXPECT_EQ(Result.Detection.SamplesSeen, Result.SamplesDelivered);
  EXPECT_EQ(Profiler.threadRegistry().totalSampledAccesses(),
            Result.SamplesDelivered);

  // --- Detection gates: detail only on lines with enough writes; the
  // object aggregates are consistent with themselves.
  Profiler.shadow().forEachDetail(
      [&](uint64_t LineBase, const core::CacheLineInfo &Info) {
        EXPECT_GT(Profiler.shadow().writeCount(LineBase),
                  Config.Detect.WriteThreshold);
        EXPECT_LE(Info.invalidations(), Info.writes());
        uint64_t WordAccesses = 0;
        for (const core::WordStats &Word : Info.words())
          WordAccesses += Word.accesses();
        EXPECT_EQ(WordAccesses, Info.accesses());
        uint64_t ThreadAccesses = 0;
        for (const core::ThreadLineStats &Stats : Info.threads())
          ThreadAccesses += Stats.Accesses;
        EXPECT_EQ(ThreadAccesses, Info.accesses());
        if (Info.invalidations() > 1)
          EXPECT_GE(Info.threadCount(), 1u);
      });

  // --- Every report's numbers are self-consistent and its assessment sane.
  for (const core::FalseSharingReport &Report : Result.AllInstances) {
    EXPECT_GE(Report.SampledAccesses, Report.SampledWrites);
    EXPECT_GE(Report.LatencyCycles, Report.SampledAccesses); // >=1 cycle
    EXPECT_GT(Report.Impact.PredictedAppRuntime, 0.0);
    EXPECT_GT(Report.Impact.ImprovementFactor, 0.0);
    EXPECT_LT(Report.Impact.ImprovementFactor, 1000.0);
    uint64_t PerThreadAccesses = 0;
    for (const core::ThreadPrediction &P : Report.Impact.Threads)
      PerThreadAccesses += P.AccessesOnObject;
    EXPECT_EQ(PerThreadAccesses, Report.SampledAccesses);
  }

  // --- Full determinism: the identical seed reproduces the run bit for
  // bit (heap layout, interleaving, sampling, reports).
  core::Profiler Profiler2(Config);
  uint32_t TotalChildren2 = 0;
  sim::ForkJoinProgram Program2 =
      buildFuzzProgram(Profiler2, Spec, TotalChildren2);
  pmu::SimPmu Pmu2(Config.Pmu);
  Pmu2.setSink(&Profiler2);
  sim::Simulator Sim2(Config.Geometry, sim::LatencyModel());
  Sim2.addObserver(Pmu2.simObserver());
  sim::SimulationResult Run2 = Sim2.run(Program2);
  core::ProfileResult Result2 = Profiler2.finish(Run2);
  EXPECT_EQ(Run.TotalCycles, Run2.TotalCycles);
  EXPECT_EQ(Result.SamplesDelivered, Result2.SamplesDelivered);
  ASSERT_EQ(Result.AllInstances.size(), Result2.AllInstances.size());
  for (size_t I = 0; I < Result.AllInstances.size(); ++I) {
    EXPECT_EQ(Result.AllInstances[I].Object.Start,
              Result2.AllInstances[I].Object.Start);
    EXPECT_EQ(Result.AllInstances[I].Invalidations,
              Result2.AllInstances[I].Invalidations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineTest,
                         ::testing::Range<uint64_t>(1, 17));

//===----------------------------------------------------------------------===//
// Coherence model vs brute-force holder-set oracle
//===----------------------------------------------------------------------===//

struct OracleParams {
  uint32_t Threads;
  uint32_t Lines;
  double WriteFraction;
  uint64_t Seed;
};

class CoherenceOracleTest : public ::testing::TestWithParam<OracleParams> {};

TEST_P(CoherenceOracleTest, MatchesHolderSetOracle) {
  const OracleParams &Params = GetParam();
  CacheGeometry Geometry(64);
  sim::LatencyModel Latency;
  sim::CoherenceModel Model(Geometry, Latency);

  // Oracle: per line, the set of holders and a dirty bit, maintained by
  // the textbook invalidation protocol.
  struct OracleLine {
    std::set<ThreadId> Holders;
    bool Dirty = false;
    bool Touched = false;
  };
  std::map<uint64_t, OracleLine> Oracle;

  SplitMix64 Rng(Params.Seed);
  uint64_t Now = 0;
  for (int I = 0; I < 30000; ++I) {
    ThreadId Tid = static_cast<ThreadId>(Rng.nextBelow(Params.Threads));
    uint64_t Line = Rng.nextBelow(Params.Lines);
    uint64_t Address = 0x100000 + Line * 64 + Rng.nextBelow(16) * 4;
    bool IsWrite = Rng.nextBool(Params.WriteFraction);
    MemoryAccess Access = IsWrite ? MemoryAccess::write(Address)
                                  : MemoryAccess::read(Address);

    OracleLine &Ref = Oracle[Line];
    bool Held = Ref.Holders.count(Tid) > 0;
    uint32_t ExpectedVictims =
        IsWrite ? static_cast<uint32_t>(Ref.Holders.size()) - (Held ? 1 : 0)
                : 0;
    bool ExpectedHit =
        Held && (!IsWrite || (Ref.Holders.size() == 1 && Ref.Dirty));
    bool ExpectedCold = !Ref.Touched;

    sim::CoherenceResult Result = Model.access(Tid, Access, Now);
    Now += Result.LatencyCycles + 1;

    EXPECT_EQ(Result.Invalidated, ExpectedVictims) << "step " << I;
    if (ExpectedCold)
      EXPECT_EQ(Result.Outcome, sim::AccessOutcome::ColdMiss) << "step " << I;
    if (ExpectedHit && !ExpectedCold && !IsWrite)
      EXPECT_EQ(Result.Outcome, sim::AccessOutcome::LocalHit) << "step " << I;

    // Advance the oracle.
    Ref.Touched = true;
    if (IsWrite) {
      Ref.Holders.clear();
      Ref.Holders.insert(Tid);
      Ref.Dirty = true;
    } else {
      Ref.Holders.insert(Tid);
      if (!Held && Ref.Dirty)
        Ref.Dirty = false; // dirty supplier downgraded
    }
    // Cross-check the model's holder view.
    std::vector<ThreadId> Holders = Model.holdersOf(Address);
    std::set<ThreadId> ModelHolders(Holders.begin(), Holders.end());
    EXPECT_EQ(ModelHolders, Ref.Holders) << "step " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, CoherenceOracleTest,
    ::testing::Values(OracleParams{2, 1, 0.5, 21}, OracleParams{2, 8, 0.3, 22},
                      OracleParams{4, 2, 0.7, 23}, OracleParams{8, 4, 0.5, 24},
                      OracleParams{8, 16, 0.1, 25},
                      OracleParams{16, 8, 0.9, 26},
                      OracleParams{32, 32, 0.5, 27},
                      OracleParams{3, 1, 1.0, 28}));

//===----------------------------------------------------------------------===//
// Geometry sweep: detection is line-size aware end to end
//===----------------------------------------------------------------------===//

class GeometrySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometrySweepTest, PaddingToTheConfiguredLineSizeSilencesReports) {
  // A two-thread program writing slots padded exactly to the configured
  // line size must never be reported, at any geometry; halving the padding
  // must be reported (slots share lines again).
  uint64_t LineSize = GetParam();
  for (bool Padded : {true, false}) {
    core::ProfilerConfig Config;
    Config.Geometry = CacheGeometry(LineSize);
    Config.Pmu = Config.Pmu.withScaledPeriod(32);
    core::Profiler Profiler(Config);
    uint64_t Stride = Padded ? LineSize : LineSize / 2;
    uint64_t Slots = Profiler.globals().defineAligned("slots", 2 * Stride);

    sim::ForkJoinProgram Program;
    sim::PhaseSpec &Phase = Program.addPhase("p");
    for (uint32_t T = 0; T < 2; ++T) {
      uint64_t Slot = Slots + T * Stride;
      Phase.ParallelBodies.push_back([=]() -> Generator<ThreadEvent> {
        for (int I = 0; I < 20000; ++I)
          co_yield ThreadEvent::write(Slot, 4);
      });
    }
    pmu::SimPmu Pmu(Config.Pmu);
    Pmu.setSink(&Profiler);
    sim::Simulator Sim(Config.Geometry, sim::LatencyModel());
    Sim.addObserver(Pmu.simObserver());
    core::ProfileResult Result = Profiler.finish(Sim.run(Program));
    if (Padded)
      EXPECT_TRUE(Result.Reports.empty()) << "line size " << LineSize;
    else
      EXPECT_FALSE(Result.Reports.empty()) << "line size " << LineSize;
  }
}

INSTANTIATE_TEST_SUITE_P(LineSizes, GeometrySweepTest,
                         ::testing::Values(16, 32, 64, 128, 256));

//===----------------------------------------------------------------------===//
// Packed page table vs sequential reference model
//===----------------------------------------------------------------------===//

/// Sequential reference for one page: the unbounded accessor-set rule with
/// node actors (ReferenceLineModel reused with node ids) plus plain-integer
/// mirrors of every counter PageInfo maintains.
struct ReferencePageModel {
  baseline::ReferenceLineModel Table;
  uint64_t Accesses = 0, Writes = 0, Cycles = 0;
  uint64_t RemoteAccesses = 0, RemoteCycles = 0;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> LineReadsWrites;
  std::map<NodeId, uint64_t> NodeAccessCounts;
  std::set<uint64_t> MultiNodeLines;
  std::map<uint64_t, NodeId> LineFirstNode;

  bool record(NodeId Node, AccessKind Kind, uint64_t Line, uint64_t Latency,
              bool Remote) {
    ++Accesses;
    Cycles += Latency;
    if (Kind == AccessKind::Write)
      ++Writes;
    if (Remote) {
      ++RemoteAccesses;
      RemoteCycles += Latency;
    }
    if (Kind == AccessKind::Read)
      ++LineReadsWrites[Line].first;
    else
      ++LineReadsWrites[Line].second;
    ++NodeAccessCounts[Node];
    auto [It, Fresh] = LineFirstNode.try_emplace(Line, Node);
    if (!Fresh && It->second != Node)
      MultiNodeLines.insert(Line);
    return Table.recordAccess(Node, Kind);
  }
};

struct PageFuzzParams {
  uint32_t Nodes;
  uint64_t Events;
  double WriteFraction;
  uint64_t Seed;
};

class PagePropertyTest : public ::testing::TestWithParam<PageFuzzParams> {};

TEST_P(PagePropertyTest, PackedPageTableMatchesSequentialReference) {
  const PageFuzzParams &Params = GetParam();
  constexpr uint64_t LinesPerPage = 64;
  core::PageInfo Info(LinesPerPage);
  ReferencePageModel Reference;
  NodeId Home = 0;

  SplitMix64 Rng(Params.Seed);
  for (uint64_t I = 0; I < Params.Events; ++I) {
    NodeId Node = static_cast<NodeId>(Rng.nextBelow(Params.Nodes));
    AccessKind Kind =
        Rng.nextBool(Params.WriteFraction) ? AccessKind::Write
                                           : AccessKind::Read;
    uint64_t Line = Rng.nextBelow(LinesPerPage);
    uint64_t Latency = 1 + Rng.nextBelow(100);
    bool Remote = Node != Home;

    bool Got = Info.recordAccess(Node, Node, Kind, Line, Latency, Remote);
    bool Want = Reference.record(Node, Kind, Line, Latency, Remote);
    // Invalidation-for-invalidation equivalence with the unbounded set
    // model — the "two entries suffice" claim at node granularity.
    ASSERT_EQ(Got, Want) << "event " << I;
  }

  EXPECT_EQ(Info.invalidations(), Reference.Table.invalidations());
  EXPECT_EQ(Info.accesses(), Reference.Accesses);
  EXPECT_EQ(Info.writes(), Reference.Writes);
  EXPECT_EQ(Info.cycles(), Reference.Cycles);
  EXPECT_EQ(Info.remoteAccesses(), Reference.RemoteAccesses);
  EXPECT_EQ(Info.remoteCycles(), Reference.RemoteCycles);
  EXPECT_EQ(Info.nodeCount(), Reference.NodeAccessCounts.size());

  std::vector<core::WordStats> Lines = Info.lines();
  for (uint64_t L = 0; L < LinesPerPage; ++L) {
    auto It = Reference.LineReadsWrites.find(L);
    uint64_t WantReads = It == Reference.LineReadsWrites.end()
                             ? 0
                             : It->second.first;
    uint64_t WantWrites = It == Reference.LineReadsWrites.end()
                              ? 0
                              : It->second.second;
    EXPECT_EQ(Lines[L].Reads, WantReads) << "line " << L;
    EXPECT_EQ(Lines[L].Writes, WantWrites) << "line " << L;
    EXPECT_EQ(Lines[L].MultiThread, Reference.MultiNodeLines.count(L) > 0)
        << "line " << L;
    if (WantReads + WantWrites)
      EXPECT_EQ(Lines[L].FirstThread, Reference.LineFirstNode.at(L));
  }
  for (const core::NodePageStats &Node : Info.nodes())
    EXPECT_EQ(Node.Accesses, Reference.NodeAccessCounts.at(Node.Node));
}

INSTANTIATE_TEST_SUITE_P(
    Streams, PagePropertyTest,
    ::testing::Values(PageFuzzParams{2, 20000, 0.5, 41},
                      PageFuzzParams{2, 20000, 0.9, 42},
                      PageFuzzParams{3, 15000, 0.3, 43},
                      PageFuzzParams{4, 15000, 0.6, 44},
                      PageFuzzParams{8, 10000, 0.5, 45},
                      PageFuzzParams{16, 10000, 1.0, 46},
                      PageFuzzParams{2, 5000, 0.05, 47}));

TEST(PagePropertyTest, ConcurrentHammerMatchesSequentialTotalsPerPage) {
  // The detector's page stage over disjoint page partitions must be
  // indistinguishable from a serial run of the same per-page streams —
  // the page-layer mirror of DisjointLinePartitionsMatchSerialReference
  // in ThreadedIngestTest, checked here in its sequential form so the
  // property suite stays single-threaded (TSan covers the parallel one).
  constexpr uint64_t PageSizeBytes = 4096;
  constexpr uint64_t Pages = 32;
  NumaTopology Topology(4, PageSizeBytes);
  CacheGeometry Geometry(64);
  constexpr uint64_t Base = 0x4000'0000;

  core::ShadowMemory Shadow(Geometry, {{Base, Pages * PageSizeBytes}});
  core::PageTable Table(Topology, Geometry, {{Base, Pages * PageSizeBytes}});
  core::DetectorConfig Config;
  Config.TrackPages = true;
  Config.PageWriteThreshold = 0;
  core::Detector Detect(Geometry, Shadow, Config);
  Detect.attachPageTable(Table, Topology);

  std::map<uint64_t, ReferencePageModel> References;
  std::map<uint64_t, NodeId> Homes;
  std::map<uint64_t, uint64_t> PageWrites;
  SplitMix64 Rng(0x9A6E5);
  for (int I = 0; I < 60000; ++I) {
    uint64_t Page = Rng.nextBelow(Pages);
    uint64_t Offset = Rng.nextBelow(PageSizeBytes / 4) * 4;
    pmu::Sample Sample;
    Sample.Address = Base + Page * PageSizeBytes + Offset;
    Sample.Tid = static_cast<ThreadId>(Rng.nextBelow(8));
    Sample.IsWrite = Rng.nextBool(0.5);
    Sample.LatencyCycles = 10 + static_cast<uint32_t>(Rng.nextBelow(40));
    Detect.handleSample(Sample, /*InParallelPhase=*/true);

    NodeId Node = Topology.nodeOf(Sample.Tid);
    auto [Home, Fresh] = Homes.try_emplace(Page, Node);
    (void)Fresh;
    if (Sample.IsWrite)
      ++PageWrites[Page];
    // Mirror the stage-1 gate (threshold 0): reads before a page's first
    // sampled write are filtered, writes always reach detail.
    if (Sample.IsWrite || PageWrites[Page] > 0)
      References[Page].record(Node,
                              Sample.IsWrite ? AccessKind::Write
                                             : AccessKind::Read,
                              Offset / 64, Sample.LatencyCycles,
                              Node != Home->second);
  }

  // Fold any per-thread shards back before reading detail (no-op in the
  // shared-table builds).
  Detect.quiesce();

  EXPECT_EQ(Table.materializedPages(), References.size());
  for (const auto &[Page, Reference] : References) {
    uint64_t Address = Base + Page * PageSizeBytes;
    EXPECT_EQ(Table.homeNode(Address), Homes.at(Page));
    const core::PageInfo *Info = Table.detail(Address);
    ASSERT_NE(Info, nullptr);
    EXPECT_EQ(Info->invalidations(), Reference.Table.invalidations());
    EXPECT_EQ(Info->accesses(), Reference.Accesses);
    EXPECT_EQ(Info->remoteAccesses(), Reference.RemoteAccesses);
  }
}

//===----------------------------------------------------------------------===//
// support/Json.h under fuzz: round-trips and hostile input
//===----------------------------------------------------------------------===//

/// Emits a random JSON value of bounded depth through the production
/// writer, mirroring it into an expectation tree via the parser contract.
void writeRandomValue(JsonWriter &Writer, SplitMix64 &Rng, unsigned Depth) {
  switch (Depth == 0 ? Rng.nextBelow(4) : Rng.nextBelow(6)) {
  case 0:
    Writer.value(static_cast<uint64_t>(Rng.next() >> 12));
    break;
  case 1: {
    // Doubles from a fixed grid so equality comparison is exact.
    Writer.value(static_cast<double>(static_cast<int64_t>(Rng.nextBelow(
                     1000000))) /
                 64.0);
    break;
  }
  case 2: {
    std::string Text;
    size_t Len = Rng.nextBelow(12);
    for (size_t I = 0; I < Len; ++I)
      Text += static_cast<char>(Rng.nextBelow(256));
    Writer.value(Text);
    break;
  }
  case 3:
    if (Rng.nextBool(0.5))
      Writer.value(Rng.nextBool(0.5));
    else
      Writer.null();
    break;
  case 4: {
    Writer.beginArray();
    size_t N = Rng.nextBelow(5);
    for (size_t I = 0; I < N; ++I)
      writeRandomValue(Writer, Rng, Depth - 1);
    Writer.endArray();
    break;
  }
  default: {
    Writer.beginObject();
    size_t N = Rng.nextBelow(5);
    for (size_t I = 0; I < N; ++I) {
      Writer.key("k" + std::to_string(I));
      writeRandomValue(Writer, Rng, Depth - 1);
    }
    Writer.endObject();
    break;
  }
  }
}

/// Structural equality of two parsed documents.
bool jsonEquals(const JsonValue &A, const JsonValue &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case JsonValue::Kind::Null:
    return true;
  case JsonValue::Kind::Bool:
    return A.asBool() == B.asBool();
  case JsonValue::Kind::Number:
    return A.asNumber() == B.asNumber();
  case JsonValue::Kind::String:
    return A.asString() == B.asString();
  case JsonValue::Kind::Array: {
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (!jsonEquals(A.elements()[I], B.elements()[I]))
        return false;
    return true;
  }
  case JsonValue::Kind::Object: {
    if (A.size() != B.size())
      return false;
    // Writer-produced keys are k0..kN in document order.
    for (size_t I = 0; I < A.size(); ++I) {
      std::string Key = "k" + std::to_string(I);
      const JsonValue *MA = A.find(Key);
      const JsonValue *MB = B.find(Key);
      if (!MA || !MB || !jsonEquals(*MA, *MB))
        return false;
    }
    return true;
  }
  }
  return false;
}

class JsonFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonFuzzTest, RandomDocumentsRoundTripThroughWriterAndParser) {
  SplitMix64 Rng(GetParam());
  for (int Doc = 0; Doc < 50; ++Doc) {
    std::string Text;
    JsonWriter Writer(Text);
    writeRandomValue(Writer, Rng, 4);

    JsonValue First;
    std::string Error;
    ASSERT_TRUE(JsonValue::parse(Text, First, Error))
        << Error << "\ninput: " << Text;

    // Parsing the same bytes twice yields structurally identical trees
    // (parser determinism), and re-encoding scalar content survives.
    JsonValue Second;
    ASSERT_TRUE(JsonValue::parse(Text, Second, Error)) << Error;
    EXPECT_TRUE(jsonEquals(First, Second));
  }
}

TEST_P(JsonFuzzTest, MutatedDocumentsNeverCrashTheParser) {
  SplitMix64 Rng(GetParam() ^ 0xF00D);
  for (int Doc = 0; Doc < 30; ++Doc) {
    std::string Text;
    JsonWriter Writer(Text);
    writeRandomValue(Writer, Rng, 3);

    // Truncations at every prefix length (bounded), byte flips, and
    // garbage insertions: parse must return true or false — under ASan
    // this is the "malformed input must error, never crash" contract.
    for (size_t Cut = 0; Cut < Text.size() && Cut < 64; ++Cut) {
      JsonValue Result;
      std::string Error;
      bool Ok = JsonValue::parse(Text.substr(0, Cut), Result, Error);
      if (!Ok) {
        EXPECT_FALSE(Error.empty());
      }
    }
    for (int Mutation = 0; Mutation < 40; ++Mutation) {
      std::string Mutated = Text;
      switch (Rng.nextBelow(3)) {
      case 0:
        if (!Mutated.empty())
          Mutated[Rng.nextBelow(Mutated.size())] =
              static_cast<char>(Rng.nextBelow(256));
        break;
      case 1:
        Mutated.insert(Rng.nextBelow(Mutated.size() + 1),
                       1, static_cast<char>(Rng.nextBelow(256)));
        break;
      default:
        if (!Mutated.empty())
          Mutated.erase(Rng.nextBelow(Mutated.size()), 1);
        break;
      }
      JsonValue Result;
      std::string Error;
      bool Ok = JsonValue::parse(Mutated, Result, Error);
      if (!Ok) {
        EXPECT_FALSE(Error.empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

//===----------------------------------------------------------------------===//
// Page assessment (EQ.1-EQ.4, clamped) invariants on random profiles
//===----------------------------------------------------------------------===//

class PageAssessPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageAssessPropertyTest, ClampedEquationInvariantsHold) {
  SplitMix64 Rng(GetParam());
  for (int Iter = 0; Iter < 25; ++Iter) {
    uint32_t Workers = 1 + static_cast<uint32_t>(Rng.nextBelow(8));
    runtime::ThreadRegistry Registry;
    runtime::PhaseTracker Phases;
    Registry.threadStarted(0, true, 0);
    Phases.programBegin(0, 0);

    core::ObjectAccessProfile Profile;
    uint64_t MaxRuntime = 0;
    for (uint32_t T = 1; T <= Workers; ++T) {
      Registry.threadStarted(T, false, 1000);
      Phases.threadCreated(T, 0, 1000);

      uint64_t OnObject = 4 + Rng.nextBelow(100);
      uint64_t OffObject = Rng.nextBelow(100);
      uint64_t ObjectCycles = 0, RemoteAccesses = 0, RemoteCycles = 0;
      for (uint64_t A = 0; A < OnObject; ++A) {
        // Local latency 2..20; a random subset is remote and pays a
        // 1..60-cycle surcharge on top.
        uint64_t Latency = 2 + Rng.nextBelow(19);
        bool Remote = Rng.nextBool(0.4);
        if (Remote) {
          Latency += 1 + Rng.nextBelow(60);
          ++RemoteAccesses;
          RemoteCycles += Latency;
        }
        ObjectCycles += Latency;
        Registry.recordSample(T, Latency);
      }
      for (uint64_t A = 0; A < OffObject; ++A)
        Registry.recordSample(T, 2 + Rng.nextBelow(19));

      Profile.SampledAccesses += OnObject;
      Profile.SampledCycles += ObjectCycles;
      Profile.RemoteAccesses += RemoteAccesses;
      Profile.RemoteCycles += RemoteCycles;
      Profile.PerThread.push_back({T, OnObject, ObjectCycles});
    }
    // Lifecycle timestamps must be monotone: finish the workers in time
    // order, whatever the tid order of their random runtimes.
    std::vector<std::pair<uint64_t, ThreadId>> Finishes;
    for (uint32_t T = 1; T <= Workers; ++T) {
      uint64_t Runtime = 10000 + Rng.nextBelow(90000);
      MaxRuntime = std::max(MaxRuntime, Runtime);
      Finishes.push_back({1000 + Runtime, T});
    }
    std::sort(Finishes.begin(), Finishes.end());
    for (const auto &[End, T] : Finishes) {
      Registry.threadFinished(T, End);
      Phases.threadFinished(T, End);
    }
    uint64_t AppRuntime = 2000 + MaxRuntime;
    Registry.threadFinished(0, AppRuntime);
    Phases.programEnd(AppRuntime);

    core::AssessorConfig Config;
    core::Assessor Assess(Registry, Phases, Config);
    Assess.setLocalLatencyTotals(1000, 1000 * (2 + Rng.nextBelow(10)));
    core::Assessment Result = Assess.assessPage(Profile, AppRuntime);

    // Clamp contract: the prediction never exceeds the measured runtime,
    // so the improvement factor is at least 1.
    EXPECT_GE(Result.ImprovementFactor, 1.0 - 1e-9);
    EXPECT_LE(Result.PredictedAppRuntime,
              static_cast<double>(AppRuntime) + 1e-6);

    // Per thread: removed cycles never exceed the measured on-object
    // cycles ("prediction never exceeds measured cycles removed").
    double TotalExcess = 0.0;
    for (const core::ThreadPrediction &P : Result.Threads) {
      EXPECT_GE(P.PredictedCycles + 1e-9,
                static_cast<double>(P.SampledCycles) -
                    static_cast<double>(P.CyclesOnObject));
      EXPECT_LE(P.PredictedRuntime,
                static_cast<double>(P.RealRuntime) + 1e-9);
      TotalExcess += std::max(
          0.0, static_cast<double>(P.CyclesOnObject) -
                   Result.AverageNoFsLatency *
                       static_cast<double>(P.AccessesOnObject));
    }

    // Improvement strictly above 1 requires removable excess somewhere;
    // zero excess pins the prediction at exactly the measured runtime.
    if (Result.ImprovementFactor > 1.0 + 1e-9)
      EXPECT_GT(TotalExcess, 0.0);
    if (TotalExcess == 0.0)
      EXPECT_NEAR(Result.ImprovementFactor, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageAssessPropertyTest,
                         ::testing::Range<uint64_t>(101, 113));

TEST(PageAssessPropertyTest, ImprovementMonotoneInRemoteFraction) {
  // Two workers on one page; worker 2's remote share sweeps 0 -> 100%.
  // More remote surcharge means more removable excess, so the predicted
  // improvement must never decrease along the sweep.
  double Previous = 0.0;
  for (uint64_t Remote = 0; Remote <= 50; Remote += 5) {
    runtime::ThreadRegistry Registry;
    runtime::PhaseTracker Phases;
    Registry.threadStarted(0, true, 0);
    Phases.programBegin(0, 0);
    for (ThreadId T : {1u, 2u}) {
      Registry.threadStarted(T, false, 1000);
      Phases.threadCreated(T, 0, 1000);
    }
    core::ObjectAccessProfile Profile;
    // Worker 1: 50 local object accesses at 10 cycles (pins the local
    // baseline at exactly 10), 50 off-object samples.
    for (int A = 0; A < 50; ++A)
      Registry.recordSample(1, 10);
    for (int A = 0; A < 50; ++A)
      Registry.recordSample(1, 10);
    Profile.PerThread.push_back({1, 50, 500});
    // Worker 2: 50 object accesses, `Remote` of them at 30 cycles.
    uint64_t Cycles2 = 0;
    for (uint64_t A = 0; A < 50; ++A) {
      uint64_t Latency = A < Remote ? 30 : 10;
      Cycles2 += Latency;
      Registry.recordSample(2, Latency);
    }
    for (int A = 0; A < 50; ++A)
      Registry.recordSample(2, 10);
    Profile.PerThread.push_back({2, 50, Cycles2});
    Profile.SampledAccesses = 100;
    Profile.SampledCycles = 500 + Cycles2;
    Profile.RemoteAccesses = Remote;
    Profile.RemoteCycles = Remote * 30;

    // Worker 1 finishes early so the remote-paying worker 2 owns the
    // phase's critical path (otherwise EQ.4's max pins improvement at 1).
    Registry.threadFinished(1, 51000);
    Phases.threadFinished(1, 51000);
    Registry.threadFinished(2, 101000);
    Phases.threadFinished(2, 101000);
    Registry.threadFinished(0, 102000);
    Phases.programEnd(102000);

    core::AssessorConfig Config;
    core::Assessor Assess(Registry, Phases, Config);
    core::Assessment Result = Assess.assessPage(Profile, 102000);
    EXPECT_DOUBLE_EQ(Result.AverageNoFsLatency, 10.0);
    EXPECT_GE(Result.ImprovementFactor, Previous - 1e-12)
        << "remote=" << Remote;
    Previous = Result.ImprovementFactor;
  }
  EXPECT_GT(Previous, 1.0);
}

//===----------------------------------------------------------------------===//
// ReportDiff::parseReport under fuzz: loud errors, never a crash
//===----------------------------------------------------------------------===//

/// A small but real report document through the production JSON sink.
std::string renderFuzzReport(SplitMix64 &Rng) {
  std::string Out;
  core::JsonReportSink Sink(Out);
  core::ReportRunInfo Info;
  Info.Tool = "cheetah";
  Info.Workload = "fuzz";
  Info.Threads = 4;
  Info.Granularity = "both";
  Sink.beginRun(Info);
  size_t Findings = Rng.nextBelow(3);
  for (size_t I = 0; I < Findings; ++I) {
    core::FalseSharingReport Report;
    Report.Object.IsHeap = false;
    Report.Object.GlobalName = "g" + std::to_string(Rng.nextBelow(3));
    Report.Object.Start = 0x1000 * (1 + Rng.nextBelow(64));
    Report.Object.Size = 64 + Rng.nextBelow(512);
    Report.SampledAccesses = Rng.nextBelow(10000);
    Report.Invalidations = Rng.nextBelow(500);
    Report.Impact.ImprovementFactor =
        1.0 + static_cast<double>(Rng.nextBelow(300)) / 100.0;
    Sink.finding(Report, Rng.nextBool(0.5));
  }
  size_t Pages = Rng.nextBelow(3);
  for (size_t I = 0; I < Pages; ++I) {
    core::PageSharingReport Report;
    Report.PageBase = 0x1000 * (1 + Rng.nextBelow(64));
    Report.PageSize = 4096;
    Report.SampledAccesses = Rng.nextBelow(10000);
    Report.RemoteAccesses = Rng.nextBelow(5000);
    Report.Invalidations = Rng.nextBelow(500);
    Report.Impact.ImprovementFactor =
        1.0 + static_cast<double>(Rng.nextBelow(300)) / 100.0;
    if (Rng.nextBool(0.7))
      Report.Objects.push_back("o" + std::to_string(Rng.nextBelow(3)));
    // v4 distance buckets, sometimes, so the fuzz exercises the new
    // remote_by_distance parsing too.
    size_t Buckets = Rng.nextBelow(3);
    for (size_t B = 0; B < Buckets; ++B)
      Report.RemoteByDistance.push_back(
          {static_cast<uint32_t>(10 + 10 * B), Rng.nextBelow(1000),
           Rng.nextBelow(50000)});
    Sink.pageFinding(Report, Rng.nextBool(0.5));
  }
  core::ReportRunStats Stats;
  Stats.AppRuntime = Rng.nextBelow(1000000);
  Sink.endRun(Stats);
  return Out;
}

class ReportDiffFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReportDiffFuzzTest, HostileReportInputNeverCrashes) {
  SplitMix64 Rng(GetParam() ^ 0xD1FF);
  for (int Doc = 0; Doc < 10; ++Doc) {
    std::string Text = renderFuzzReport(Rng);

    // The pristine document parses.
    core::ParsedReport Report;
    std::string Error;
    ASSERT_TRUE(core::parseReport(Text, Report, Error)) << Error;

    // Truncations at every bounded prefix: error, never crash.
    for (size_t Cut = 0; Cut < Text.size(); Cut += 7) {
      core::ParsedReport Partial;
      if (!core::parseReport(Text.substr(0, Cut), Partial, Error))
        EXPECT_FALSE(Error.empty());
    }
    // Random byte mutations (flip/insert/erase).
    for (int Mutation = 0; Mutation < 60; ++Mutation) {
      std::string Mutated = Text;
      switch (Rng.nextBelow(3)) {
      case 0:
        if (!Mutated.empty())
          Mutated[Rng.nextBelow(Mutated.size())] =
              static_cast<char>(Rng.nextBelow(256));
        break;
      case 1:
        Mutated.insert(Rng.nextBelow(Mutated.size() + 1), 1,
                       static_cast<char>(Rng.nextBelow(256)));
        break;
      default:
        if (!Mutated.empty())
          Mutated.erase(Rng.nextBelow(Mutated.size()), 1);
        break;
      }
      core::ParsedReport Fuzzed;
      if (!core::parseReport(Mutated, Fuzzed, Error))
        EXPECT_FALSE(Error.empty());
    }

    // Version mismatches fail loudly by name.
    for (const char *Schema : {"cheetah-report-v1", "cheetah-report-v9"}) {
      std::string Mismatched = Text;
      size_t Pos = Mismatched.find("cheetah-report-v4");
      ASSERT_NE(Pos, std::string::npos);
      Mismatched.replace(Pos, 17, Schema);
      core::ParsedReport Rejected;
      EXPECT_FALSE(core::parseReport(Mismatched, Rejected, Error));
      EXPECT_NE(Error.find("unsupported schema"), std::string::npos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReportDiffFuzzTest,
                         ::testing::Range<uint64_t>(1, 7));

//===----------------------------------------------------------------------===//
// ReportHistory::parse under fuzz: loud errors, never a crash
//===----------------------------------------------------------------------===//

/// A small but real multi-run history store: 2-4 fuzz reports appended
/// in sequence through the production append path.
std::string renderFuzzHistory(SplitMix64 &Rng) {
  core::ReportHistory History;
  size_t Runs = 2 + Rng.nextBelow(3);
  for (size_t I = 0; I < Runs; ++I) {
    std::string Text = renderFuzzReport(Rng);
    core::ParsedReport Report;
    std::string Error;
    EXPECT_TRUE(core::parseReport(Text, Report, Error)) << Error;
    EXPECT_TRUE(
        History.appendRun(Report, "run-" + std::to_string(I), Error))
        << Error;
  }
  return History.serialize();
}

class HistoryStoreFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistoryStoreFuzzTest, HostileStoreInputNeverCrashes) {
  SplitMix64 Rng(GetParam() ^ 0x4157);
  for (int Doc = 0; Doc < 6; ++Doc) {
    std::string Text = renderFuzzHistory(Rng);

    // The pristine store parses and re-serializes byte-identically.
    core::ReportHistory Store;
    std::string Error;
    ASSERT_TRUE(core::ReportHistory::parse(Text, Store, Error)) << Error;
    EXPECT_EQ(Store.serialize(), Text);

    // Truncations at every bounded prefix: error, never crash.
    for (size_t Cut = 0; Cut < Text.size(); Cut += 7) {
      core::ReportHistory Partial;
      if (!core::ReportHistory::parse(Text.substr(0, Cut), Partial, Error))
        EXPECT_FALSE(Error.empty());
    }
    // Random byte mutations (flip/insert/erase): error or parse, never a
    // crash. (No byte-stability claim here — a mutation can insert
    // benign whitespace that parses but is not canonical.)
    for (int Mutation = 0; Mutation < 60; ++Mutation) {
      std::string Mutated = Text;
      switch (Rng.nextBelow(3)) {
      case 0:
        if (!Mutated.empty())
          Mutated[Rng.nextBelow(Mutated.size())] =
              static_cast<char>(Rng.nextBelow(256));
        break;
      case 1:
        Mutated.insert(Rng.nextBelow(Mutated.size() + 1), 1,
                       static_cast<char>(Rng.nextBelow(256)));
        break;
      default:
        if (!Mutated.empty())
          Mutated.erase(Rng.nextBelow(Mutated.size()), 1);
        break;
      }
      core::ReportHistory Fuzzed;
      if (!core::ReportHistory::parse(Mutated, Fuzzed, Error))
        EXPECT_FALSE(Error.empty());
    }

    // Version mismatches fail loudly by name.
    for (const char *Schema : {"cheetah-history-v0", "cheetah-report-v4"}) {
      std::string Mismatched = Text;
      size_t Pos = Mismatched.find("cheetah-history-v1");
      ASSERT_NE(Pos, std::string::npos);
      Mismatched.replace(Pos, 18, Schema);
      core::ReportHistory Rejected;
      EXPECT_FALSE(core::ReportHistory::parse(Mismatched, Rejected, Error));
      EXPECT_NE(Error.find("unsupported schema"), std::string::npos);
    }

    // Duplicate run ids injected into an otherwise valid store.
    size_t Id = Text.find("\"id\":\"run-1\"");
    ASSERT_NE(Id, std::string::npos);
    std::string Duplicated = Text;
    Duplicated.replace(Id, std::string("\"id\":\"run-1\"").size(),
                       "\"id\":\"run-0\"");
    core::ReportHistory Rejected;
    EXPECT_FALSE(core::ReportHistory::parse(Duplicated, Rejected, Error));
    EXPECT_NE(Error.find("duplicate run id"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistoryStoreFuzzTest,
                         ::testing::Range<uint64_t>(1, 5));

//===----------------------------------------------------------------------===//
// TraceData::parse under fuzz: loud errors, never a crash
//===----------------------------------------------------------------------===//

/// A small but real trace: a main-thread lifecycle bracketing a random
/// mix of child lifecycles and sample points, rendered through the
/// production serializer.
std::string renderFuzzTrace(SplitMix64 &Rng) {
  pmu::TraceData Data;
  Data.SamplingPeriod = 1 + Rng.nextBelow(1 << 16);
  Data.RunCycles = Rng.nextBelow(1 << 30);
  pmu::TraceEvent Main;
  Main.K = pmu::TraceEvent::Kind::ThreadStart;
  Main.IsMain = true;
  Data.Events.push_back(Main);
  size_t Events = 1 + Rng.nextBelow(40);
  for (size_t I = 0; I < Events; ++I) {
    pmu::TraceEvent Event;
    Event.Tid = static_cast<ThreadId>(Rng.nextBelow(16));
    Event.Time = Rng.nextBelow(1 << 30);
    switch (Rng.nextBelow(4)) {
    case 0:
      Event.K = pmu::TraceEvent::Kind::ThreadStart;
      break;
    case 1:
      Event.K = pmu::TraceEvent::Kind::ThreadEnd;
      break;
    default:
      Event.K = pmu::TraceEvent::Kind::SamplePoint;
      Event.Address = 0x100000 + Rng.nextBelow(1 << 20);
      Event.IsWrite = Rng.nextBool(0.5);
      Event.LatencyCycles = static_cast<uint32_t>(Rng.nextBelow(500));
      break;
    }
    Data.Events.push_back(Event);
  }
  pmu::TraceEvent End;
  End.K = pmu::TraceEvent::Kind::ThreadEnd;
  End.IsMain = true;
  End.Time = Data.RunCycles;
  Data.Events.push_back(End);
  return Data.serialize();
}

class TraceFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceFuzzTest, HostileTraceInputNeverCrashes) {
  SplitMix64 Rng(GetParam() ^ 0x7ACE);
  for (int Doc = 0; Doc < 8; ++Doc) {
    std::string Text = renderFuzzTrace(Rng);

    // The pristine trace parses and re-serializes byte-identically.
    pmu::TraceData Trace;
    std::string Error;
    ASSERT_TRUE(pmu::TraceData::parse(Text, Trace, Error)) << Error;
    EXPECT_EQ(Trace.serialize(), Text);

    // Truncations at every bounded prefix: error, never crash.
    for (size_t Cut = 0; Cut < Text.size(); Cut += 7) {
      pmu::TraceData Partial;
      if (!pmu::TraceData::parse(Text.substr(0, Cut), Partial, Error))
        EXPECT_FALSE(Error.empty());
    }
    // Random byte mutations (flip/insert/erase): error or parse, never a
    // crash.
    for (int Mutation = 0; Mutation < 60; ++Mutation) {
      std::string Mutated = Text;
      switch (Rng.nextBelow(3)) {
      case 0:
        if (!Mutated.empty())
          Mutated[Rng.nextBelow(Mutated.size())] =
              static_cast<char>(Rng.nextBelow(256));
        break;
      case 1:
        Mutated.insert(Rng.nextBelow(Mutated.size() + 1), 1,
                       static_cast<char>(Rng.nextBelow(256)));
        break;
      default:
        if (!Mutated.empty())
          Mutated.erase(Rng.nextBelow(Mutated.size()), 1);
        break;
      }
      pmu::TraceData Fuzzed;
      if (!pmu::TraceData::parse(Mutated, Fuzzed, Error))
        EXPECT_FALSE(Error.empty());
    }

    // Version mismatches fail loudly by name.
    for (const char *Schema : {"cheetah-trace-v0", "cheetah-report-v4"}) {
      std::string Mismatched = Text;
      size_t Pos = Mismatched.find("cheetah-trace-v1");
      ASSERT_NE(Pos, std::string::npos);
      Mismatched.replace(Pos, 16, Schema);
      pmu::TraceData Rejected;
      EXPECT_FALSE(pmu::TraceData::parse(Mismatched, Rejected, Error));
      EXPECT_NE(Error.find("unsupported schema"), std::string::npos);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzzTest,
                         ::testing::Range<uint64_t>(1, 5));

//===----------------------------------------------------------------------===//
// Batch sample decode vs the per-sample formula, fuzzed and exhaustive
//===----------------------------------------------------------------------===//

/// The per-sample decode restated from CacheGeometry first principles.
struct DecodeExpectation {
  uint8_t Covered;
  uint32_t Bucket;
  uint32_t Span;
};

DecodeExpectation expectedDecode(const CacheGeometry &Geometry,
                                 const std::vector<core::ShadowRegion> &Regions,
                                 uint64_t Address, uint8_t AccessBytes) {
  uint64_t Bytes = AccessBytes ? AccessBytes : 1;
  uint64_t Word = Geometry.wordInLine(Address);
  uint64_t LastByte = Geometry.offsetInLine(Address) + Bytes - 1;
  if (LastByte >= Geometry.lineSize())
    LastByte = Geometry.lineSize() - 1;
  DecodeExpectation Want;
  Want.Bucket = static_cast<uint32_t>(Word);
  Want.Span = static_cast<uint32_t>(LastByte / WordSize - Word + 1);
  Want.Covered = 0;
  for (const core::ShadowRegion &Region : Regions)
    Want.Covered |=
        Address >= Region.Base && Address - Region.Base < Region.Size;
  return Want;
}

class BatchDecodeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchDecodeFuzzTest, BothKernelsMatchThePerSampleFormula) {
  SplitMix64 Rng(GetParam() ^ 0xDECDE);
  for (int Round = 0; Round < 40; ++Round) {
    uint64_t LineSize = 8ull << Rng.nextBelow(6); // 8..256
    CacheGeometry Geometry(LineSize);
    // One or two random regions, line-aligned, small enough that random
    // addresses land inside, at the edges, and far outside.
    std::vector<core::ShadowRegion> Regions;
    uint64_t Base = (1 + Rng.nextBelow(1 << 20)) * LineSize;
    Regions.push_back({Base, (1 + Rng.nextBelow(256)) * LineSize});
    if (Rng.nextBool(0.5)) {
      uint64_t Base2 = Base + Regions[0].Size + Rng.nextBelow(64) * LineSize;
      Regions.push_back({Base2, (1 + Rng.nextBelow(64)) * LineSize});
    }
    core::BatchDecoder Simd(Geometry, Regions);
    core::BatchDecoder Scalar(Geometry, Regions, /*ForceScalar=*/true);

    size_t Count = 1 + Rng.nextBelow(core::DecodedBatch::Capacity);
    std::vector<pmu::Sample> Samples(Count);
    for (pmu::Sample &Sample : Samples) {
      const core::ShadowRegion &Region = Regions[Rng.nextBelow(Regions.size())];
      switch (Rng.nextBelow(4)) {
      case 0: // uniformly inside a region
        Sample.Address = Region.Base + Rng.nextBelow(Region.Size);
        break;
      case 1: // hugging a region boundary from either side
        Sample.Address = Region.Base + (Rng.nextBool(0.5) ? Region.Size : 0) -
                         8 + Rng.nextBelow(16);
        break;
      case 2: // anywhere in the low 44 bits
        Sample.Address = Rng.nextBelow(1ull << 44);
        break;
      default: // full-width addresses (sign-flip compare edge)
        Sample.Address = Rng.next();
        break;
      }
    }
    uint8_t AccessBytes = static_cast<uint8_t>(Rng.nextBelow(33));

    core::DecodedBatch FromSimd, FromScalar;
    Simd.decode(Samples.data(), Count, AccessBytes, FromSimd);
    Scalar.decode(Samples.data(), Count, AccessBytes, FromScalar);
    for (size_t I = 0; I < Count; ++I) {
      DecodeExpectation Want =
          expectedDecode(Geometry, Regions, Samples[I].Address, AccessBytes);
      ASSERT_EQ(FromScalar.Covered[I], Want.Covered)
          << "line " << LineSize << " sample " << I << " address 0x"
          << std::hex << Samples[I].Address;
      ASSERT_EQ(FromScalar.Bucket[I], Want.Bucket) << "sample " << I;
      ASSERT_EQ(FromScalar.Span[I], Want.Span) << "sample " << I;
      // Kernel differential: SIMD must agree with scalar bit for bit.
      ASSERT_EQ(FromSimd.Covered[I], FromScalar.Covered[I]) << "sample " << I;
      ASSERT_EQ(FromSimd.Bucket[I], FromScalar.Bucket[I]) << "sample " << I;
      ASSERT_EQ(FromSimd.Span[I], FromScalar.Span[I]) << "sample " << I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDecodeFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(BatchDecodeFuzzTest, ExhaustiveSmallGeometrySweep) {
  // The smallest legal geometry (8-byte lines, two words) over a 4-line
  // region makes full enumeration affordable: every address in a window
  // straddling the region boundaries x every access width 0..16, through
  // both kernels, against the formula. Batches of 5 keep the SIMD tail
  // path (4 vectorized + 1 scalar) exercised on every call.
  CacheGeometry Geometry(8);
  constexpr uint64_t Base = 64;
  constexpr uint64_t Size = 4 * 8;
  std::vector<core::ShadowRegion> Regions{{Base, Size}};
  core::BatchDecoder Simd(Geometry, Regions);
  core::BatchDecoder Scalar(Geometry, Regions, /*ForceScalar=*/true);

  for (unsigned Bytes = 0; Bytes <= 16; ++Bytes) {
    for (uint64_t Address = Base - 16; Address < Base + Size + 16;
         Address += 5) {
      pmu::Sample Samples[5];
      for (uint64_t J = 0; J < 5; ++J)
        Samples[J].Address = Address + J;
      core::DecodedBatch FromSimd, FromScalar;
      Simd.decode(Samples, 5, static_cast<uint8_t>(Bytes), FromSimd);
      Scalar.decode(Samples, 5, static_cast<uint8_t>(Bytes), FromScalar);
      for (uint64_t J = 0; J < 5; ++J) {
        DecodeExpectation Want = expectedDecode(
            Geometry, Regions, Address + J, static_cast<uint8_t>(Bytes));
        ASSERT_EQ(FromScalar.Covered[J], Want.Covered)
            << "address " << Address + J << " bytes " << Bytes;
        ASSERT_EQ(FromScalar.Bucket[J], Want.Bucket)
            << "address " << Address + J << " bytes " << Bytes;
        ASSERT_EQ(FromScalar.Span[J], Want.Span)
            << "address " << Address + J << " bytes " << Bytes;
        ASSERT_EQ(FromSimd.Covered[J], FromScalar.Covered[J]);
        ASSERT_EQ(FromSimd.Bucket[J], FromScalar.Bucket[J]);
        ASSERT_EQ(FromSimd.Span[J], FromScalar.Span[J]);
      }
    }
  }
}

TEST(JsonFuzzTest, HostileHandWrittenInputsErrorCleanly) {
  // Inputs chosen to hit every parser failure edge, including the
  // recursion guard (deep nesting must error, not smash the stack).
  const std::string Cases[] = {
      "", " ", "{", "[", "\"", "{\"a\"", "{\"a\":}", "[1,]", "{,}",
      "tru", "falsey", "nul", "+1", "1e", "-", "0x10", "1.2.3",
      "\"\\u12", "\"\\u12zz\"", "\"\\q\"", "[1 2]", "{\"a\" 1}",
      "{\"a\":1,}", "[]extra", "\x01\x02\x03",
      std::string(100000, '['), std::string(100000, '{'),
      std::string(200, '[') + "1" + std::string(200, ']'),
  };
  for (const std::string &Input : Cases) {
    JsonValue Result;
    std::string Error;
    EXPECT_FALSE(JsonValue::parse(Input, Result, Error))
        << "accepted: " << Input.substr(0, 40);
    EXPECT_FALSE(Error.empty());
  }
  // Nesting within the depth limit still parses.
  std::string Shallow = std::string(64, '[') + "1" + std::string(64, ']');
  JsonValue Result;
  std::string Error;
  EXPECT_TRUE(JsonValue::parse(Shallow, Result, Error)) << Error;
}

} // namespace
