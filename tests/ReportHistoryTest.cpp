//===- tests/ReportHistoryTest.cpp - trend history / bisect tests ----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The N-run aggregation layer behind `cheetah-trend`: run-ledger
/// bookkeeping through the shared finding matcher, deterministic
/// byte-stable serialization of the cheetah-history-v1 store (the
/// goldens CI anchors on), the N-run generalization of the regression
/// gate, git-bisect-style regression bisection, cheetah-diff-v1
/// ingestion, and the parser's loud-error contract.
///
//===----------------------------------------------------------------------===//

#include "core/report/ReportHistory.h"
#include "core/report/ReportSink.h"
#include "support/Json.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::core;

namespace {

//===----------------------------------------------------------------------===//
// Synthetic runs through the production sink
//===----------------------------------------------------------------------===//

FalseSharingReport syntheticLineFinding(const std::string &Name,
                                        double Improvement) {
  FalseSharingReport Report;
  Report.Object.IsHeap = false;
  Report.Object.GlobalName = Name;
  Report.Object.Start = 0x10000000;
  Report.Object.Size = 256;
  Report.Kind = SharingKind::FalseSharing;
  Report.SampledAccesses = 1000;
  Report.SampledWrites = 400;
  Report.Invalidations = 123;
  Report.LatencyCycles = 50000;
  Report.ThreadsObserved = 4;
  Report.Impact.ImprovementFactor = Improvement;
  return Report;
}

PageSharingReport syntheticPageFinding(const std::string &Object,
                                       uint64_t PageBase,
                                       double Improvement) {
  PageSharingReport Report;
  Report.PageBase = PageBase;
  Report.PageSize = 4096;
  Report.HomeNode = 0;
  Report.NodesObserved = 2;
  Report.Kind = SharingKind::FalseSharing;
  Report.SampledAccesses = 2000;
  Report.SampledWrites = 900;
  Report.RemoteAccesses = 800;
  Report.Invalidations = 77;
  Report.LatencyCycles = 60000;
  Report.RemoteLatencyCycles = 30000;
  Report.Impact.ImprovementFactor = Improvement;
  Report.Objects.push_back(Object);
  return Report;
}

std::string renderDocument(
    const std::vector<std::pair<FalseSharingReport, bool>> &Findings,
    const std::vector<std::pair<PageSharingReport, bool>> &Pages,
    bool FixApplied = false) {
  std::string Out;
  JsonReportSink Sink(Out);
  ReportRunInfo Info;
  Info.Tool = "cheetah";
  Info.Workload = "synthetic";
  Info.Threads = 4;
  Info.FixApplied = FixApplied;
  Info.Granularity = "both";
  Sink.beginRun(Info);
  for (const auto &[Report, Significant] : Findings)
    Sink.finding(Report, Significant);
  for (const auto &[Report, Significant] : Pages)
    Sink.pageFinding(Report, Significant);
  ReportRunStats Stats;
  Stats.AppRuntime = 1000000;
  Stats.Findings = Findings.size();
  Stats.PageFindings = Pages.size();
  Sink.endRun(Stats);
  return Out;
}

ParsedReport mustParse(const std::string &Text) {
  ParsedReport Report;
  std::string Error;
  EXPECT_TRUE(parseRunDocument(Text, Report, Error)) << Error;
  return Report;
}

/// A page-granularity run with one "blocks" finding at \p Improvement,
/// or a clean (fixed) run when \p Improvement is 0.
std::string pageRun(double Improvement) {
  if (Improvement == 0.0)
    return renderDocument({}, {}, /*FixApplied=*/true);
  return renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, Improvement), true}});
}

void mustAppend(ReportHistory &History, const std::string &Document,
                const std::string &RunId) {
  std::string Error;
  ASSERT_TRUE(History.appendRun(mustParse(Document), RunId, Error)) << Error;
}

/// The CI shape: improvements per run, "run-<I>" ids.
ReportHistory storeOf(const std::vector<double> &Improvements) {
  ReportHistory History;
  for (size_t I = 0; I < Improvements.size(); ++I)
    mustAppend(History, pageRun(Improvements[I]), "run-" + std::to_string(I));
  return History;
}

//===----------------------------------------------------------------------===//
// Append: ledger counts, identity, atomic failure
//===----------------------------------------------------------------------===//

TEST(ReportHistoryAppendTest, LedgerCountsNewResolvedMatched) {
  ReportHistory History;
  mustAppend(History,
             renderDocument(
                 {{syntheticLineFinding("hot_global", 1.7), true}},
                 {{syntheticPageFinding("blocks", 0x1000, 1.9), true}}),
             "broken");
  mustAppend(History, renderDocument({}, {}, true), "fixed");
  mustAppend(History,
             renderDocument(
                 {{syntheticLineFinding("hot_global", 1.6), true}},
                 {{syntheticPageFinding("blocks", 0x2000, 1.8), true}}),
             "regressed");

  ASSERT_EQ(History.runs().size(), 3u);
  EXPECT_EQ(History.runs()[0].NewFindings, 2u);
  EXPECT_EQ(History.runs()[0].ResolvedFindings, 0u);
  EXPECT_EQ(History.runs()[1].NewFindings, 0u);
  EXPECT_EQ(History.runs()[1].ResolvedFindings, 2u);
  EXPECT_EQ(History.runs()[2].NewFindings, 2u);
  EXPECT_EQ(History.runs()[2].MatchedFindings, 0u);

  // One series per site; the fixed run leaves a gap, not a point.
  ASSERT_EQ(History.series().size(), 2u);
  const TrendSeries *Blocks = History.seriesFor("page:blocks#0");
  ASSERT_NE(Blocks, nullptr);
  EXPECT_TRUE(Blocks->IsPage);
  ASSERT_EQ(Blocks->Points.size(), 2u);
  EXPECT_EQ(Blocks->Points[0].RunIndex, 0u);
  EXPECT_EQ(Blocks->Points[1].RunIndex, 2u);
  EXPECT_EQ(Blocks->pointAt(1), nullptr);
  EXPECT_NEAR(Blocks->Points[1].Improvement, 1.8, 1e-12);
}

TEST(ReportHistoryAppendTest, MatchesAcrossRelocatedObjects) {
  // Same site, different addresses: matched, and the series follows it.
  ReportHistory History = storeOf({1.9, 1.5});
  EXPECT_EQ(History.runs()[1].MatchedFindings, 1u);
  EXPECT_EQ(History.runs()[1].NewFindings, 0u);
  const TrendSeries *S = History.seriesFor("page:blocks#0");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Points.size(), 2u);
}

TEST(ReportHistoryAppendTest, RepeatedSiteKeysStayDisambiguated) {
  ReportHistory History;
  mustAppend(History,
             renderDocument(
                 {}, {{syntheticPageFinding("blocks", 0x1000, 3.0), true},
                      {syntheticPageFinding("blocks", 0x2000, 2.0), true}}),
             "run-0");
  ASSERT_EQ(History.series().size(), 2u);
  EXPECT_NE(History.seriesFor("page:blocks#0"), nullptr);
  EXPECT_NE(History.seriesFor("page:blocks#1"), nullptr);
}

TEST(ReportHistoryAppendTest, EmptyAndDuplicateRunIdsRejectedAtomically) {
  ReportHistory History;
  ParsedReport Report = mustParse(pageRun(1.9));
  std::string Error;
  EXPECT_FALSE(History.appendRun(Report, "", Error));
  EXPECT_NE(Error.find("empty"), std::string::npos);
  ASSERT_TRUE(History.appendRun(Report, "nightly-1", Error)) << Error;
  EXPECT_FALSE(History.appendRun(Report, "nightly-1", Error));
  EXPECT_NE(Error.find("duplicate run id"), std::string::npos);
  // The failed appends left no trace.
  EXPECT_EQ(History.runs().size(), 1u);
  EXPECT_EQ(History.seriesFor("page:blocks#0")->Points.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Trend series: pointAt / bestBefore
//===----------------------------------------------------------------------===//

TEST(ReportHistoryTrendTest, BestBeforeTreatsAbsentRunsAsResolved) {
  // Present at 1.9 in run 0, absent in run 1 (fixed), back at 1.5 in
  // run 2: the best history before run 2 is the resolved run's 1.0.
  ReportHistory History = storeOf({1.9, 0.0, 1.5});
  const TrendSeries *S = History.seriesFor("page:blocks#0");
  ASSERT_NE(S, nullptr);
  bool HasBest = false;
  EXPECT_DOUBLE_EQ(S->bestBefore(2, HasBest), 1.0);
  EXPECT_TRUE(HasBest);
  EXPECT_DOUBLE_EQ(S->bestBefore(1, HasBest), 1.9);
  EXPECT_TRUE(HasBest);
  // Run 0 has no history at all.
  S->bestBefore(0, HasBest);
  EXPECT_FALSE(HasBest);
}

TEST(ReportHistoryTrendTest, ImprovementLessPointsAreSkipped) {
  // A v2-era observation carries no factor: it must not count as 1.0 (or
  // anything) when computing the historical best.
  TrendSeries S;
  TrendPoint V2Point;
  V2Point.RunIndex = 0;
  V2Point.Significant = true;
  V2Point.HasImprovement = false;
  S.Points.push_back(V2Point);
  TrendPoint V4Point;
  V4Point.RunIndex = 1;
  V4Point.Significant = true;
  V4Point.HasImprovement = true;
  V4Point.Improvement = 1.6;
  S.Points.push_back(V4Point);
  bool HasBest = false;
  // Only the improvement-less run 0 precedes run 1: no usable history.
  S.bestBefore(1, HasBest);
  EXPECT_FALSE(HasBest);
  EXPECT_DOUBLE_EQ(S.bestBefore(2, HasBest), 1.6);
  EXPECT_TRUE(HasBest);
}

//===----------------------------------------------------------------------===//
// Gate: the N-run regression contract
//===----------------------------------------------------------------------===//

TEST(ReportHistoryGateTest, ForwardFixPassesReversedOrderTrips) {
  // broken -> broken -> fixed: the last run is clean.
  EXPECT_TRUE(storeOf({1.9, 1.9, 0.0}).gate(1.1).empty());

  // fixed -> broken -> broken: the finding crossed the factor relative
  // to its best (the resolved run's implicit 1.0).
  std::vector<HistoryGateViolation> Violations =
      storeOf({0.0, 1.9, 1.9}).gate(1.1);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].Key, "page:blocks#0");
  EXPECT_EQ(Violations[0].Why, HistoryGateViolation::Kind::Crossed);
  EXPECT_NEAR(Violations[0].Improvement, 1.9, 1e-12);
  EXPECT_DOUBLE_EQ(Violations[0].Best, 1.0);
}

TEST(ReportHistoryGateTest, FirstRunFindingIsANewSite) {
  std::vector<HistoryGateViolation> Violations = storeOf({1.9}).gate(1.1);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].Why, HistoryGateViolation::Kind::NewSite);
}

TEST(ReportHistoryGateTest, StableKnownBadFleetDoesNotTrip) {
  // At 1.9 since run 0 and never better: known-broken, not a regression.
  EXPECT_TRUE(storeOf({1.9, 1.9, 1.9}).gate(1.1).empty());
}

TEST(ReportHistoryGateTest, GrowthBeyondBestTrips) {
  std::vector<HistoryGateViolation> Violations =
      storeOf({1.3, 1.3, 1.6}).gate(1.1);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].Why, HistoryGateViolation::Kind::Grew);
  EXPECT_NEAR(Violations[0].Best, 1.3, 1e-12);
}

TEST(ReportHistoryGateTest, BelowFactorAndInsignificantAreClean) {
  EXPECT_TRUE(storeOf({0.0, 1.05}).gate(1.1).empty());
  ReportHistory History;
  mustAppend(History, pageRun(0.0), "fixed");
  mustAppend(History,
             renderDocument({}, {{syntheticPageFinding("blocks", 0x1000,
                                                       5.0),
                                  false}}),
             "noisy");
  EXPECT_TRUE(History.gate(1.1).empty());
}

//===----------------------------------------------------------------------===//
// Bisect: finding the introducing run
//===----------------------------------------------------------------------===//

TEST(ReportHistoryBisectTest, NamesTheIntroducingRunOnAFourRunStore) {
  ReportHistory History = storeOf({0.0, 0.0, 1.9, 1.9});
  BisectResult Result = History.bisect("page:blocks#0", 1.1);
  ASSERT_TRUE(Result.Valid) << Result.Error;
  EXPECT_FALSE(Result.BadFromStart);
  EXPECT_EQ(Result.IntroducedIndex, 2u);
  EXPECT_EQ(Result.IntroducedRunId, "run-2");
  EXPECT_GT(Result.Probes, 0u);
}

TEST(ReportHistoryBisectTest, BadFromStartIsReportedAsSuch) {
  BisectResult Result = storeOf({1.9, 1.9}).bisect("page:blocks#0", 1.1);
  ASSERT_TRUE(Result.Valid) << Result.Error;
  EXPECT_TRUE(Result.BadFromStart);
  EXPECT_EQ(Result.IntroducedIndex, 0u);
  EXPECT_EQ(Result.IntroducedRunId, "run-0");
}

TEST(ReportHistoryBisectTest, FlappingHistoryReturnsAGoodToBadTransition) {
  // fixed, broken, fixed, broken: git-bisect contract — *a* transition.
  ReportHistory History = storeOf({0.0, 1.9, 0.0, 1.9});
  BisectResult Result = History.bisect("page:blocks#0", 1.1);
  ASSERT_TRUE(Result.Valid) << Result.Error;
  EXPECT_TRUE(Result.IntroducedIndex == 1u || Result.IntroducedIndex == 3u)
      << Result.IntroducedIndex;
  const TrendSeries *S = History.seriesFor("page:blocks#0");
  EXPECT_NE(S->pointAt(Result.IntroducedIndex), nullptr);
  EXPECT_EQ(S->pointAt(Result.IntroducedIndex - 1), nullptr);
}

TEST(ReportHistoryBisectTest, InvalidRequestsFailWithDescriptiveErrors) {
  ReportHistory Empty;
  EXPECT_FALSE(Empty.bisect("page:blocks#0", 1.1).Valid);

  ReportHistory History = storeOf({1.9, 0.0});
  BisectResult Unknown = History.bisect("page:nonesuch#0", 1.1);
  EXPECT_FALSE(Unknown.Valid);
  EXPECT_NE(Unknown.Error.find("unknown finding key"), std::string::npos);

  // Clean last run: nothing to bisect.
  BisectResult Clean = History.bisect("page:blocks#0", 1.1);
  EXPECT_FALSE(Clean.Valid);
  EXPECT_NE(Clean.Error.find("not regressing"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Serialization: determinism, round-trip, text golden
//===----------------------------------------------------------------------===//

TEST(ReportHistoryGoldenTest, SameRunSequenceTwiceIsByteIdentical) {
  ReportHistory First = storeOf({1.9, 1.9, 0.0});
  ReportHistory Second = storeOf({1.9, 1.9, 0.0});
  EXPECT_EQ(First.serialize(), Second.serialize());
  EXPECT_EQ(formatHistoryText(First), formatHistoryText(Second));
  EXPECT_FALSE(First.serialize().empty());
}

TEST(ReportHistoryGoldenTest, ParseReserializesByteStable) {
  ReportHistory History;
  mustAppend(History,
             renderDocument(
                 {{syntheticLineFinding("hot_global", 1.7), true}},
                 {{syntheticPageFinding("blocks", 0x1000, 1.9), true}}),
             "run-0");
  mustAppend(History, pageRun(0.0), "run-1");
  std::string Stored = History.serialize();

  ReportHistory Reloaded;
  std::string Error;
  ASSERT_TRUE(ReportHistory::parse(Stored, Reloaded, Error)) << Error;
  EXPECT_EQ(Reloaded.serialize(), Stored);
  ASSERT_EQ(Reloaded.runs().size(), 2u);
  EXPECT_EQ(Reloaded.runs()[0].Id, "run-0");
  EXPECT_EQ(Reloaded.series().size(), History.series().size());

  // Appending to the reloaded store behaves like appending to the
  // original: the store is a faithful resume point.
  mustAppend(Reloaded, pageRun(1.5), "run-2");
  mustAppend(History, pageRun(1.5), "run-2");
  EXPECT_EQ(Reloaded.serialize(), History.serialize());
}

TEST(ReportHistoryGoldenTest, TextGoldenForSmallStore) {
  ReportHistory History;
  mustAppend(History, pageRun(1.9), "base");
  mustAppend(History, pageRun(1.5), "next");
  std::string Expected =
      "cheetah-trend: 2 run(s), 1 tracked finding(s)\n"
      "  [0] base  synthetic  4 threads  fix off  runtime 1000000 cycles  "
      "(1 new, 0 resolved, 0 matched)\n"
      "  [1] next  synthetic  4 threads  fix off  runtime 1000000 cycles  "
      "(0 new, 0 resolved, 1 matched)\n"
      "== current findings (run 1, worst first) ==\n"
      "  1.5000x  page:blocks#0  false-sharing  best 1.9000x, delta "
      "-0.4000\n"
      "== biggest regressions vs best ==\n"
      "  none\n";
  EXPECT_EQ(formatHistoryText(History), Expected);
}

TEST(ReportHistoryGoldenTest, RegressionSectionRanksByDelta) {
  ReportHistory History;
  mustAppend(History,
             renderDocument(
                 {}, {{syntheticPageFinding("blocks", 0x1000, 1.2), true},
                      {syntheticPageFinding("other", 0x2000, 1.3), true}}),
             "base");
  mustAppend(History,
             renderDocument(
                 {}, {{syntheticPageFinding("blocks", 0x1000, 2.0), true},
                      {syntheticPageFinding("other", 0x2000, 1.5), true}}),
             "worse");
  std::string Text = formatHistoryText(History);
  // blocks moved +0.8, other +0.2: blocks leads the regression section.
  size_t Blocks = Text.find("+0.8000  page:blocks#0");
  size_t Other = Text.find("+0.2000  page:other#0");
  ASSERT_NE(Blocks, std::string::npos) << Text;
  ASSERT_NE(Other, std::string::npos) << Text;
  EXPECT_LT(Blocks, Other);
}

//===----------------------------------------------------------------------===//
// Parser: loud-error contract
//===----------------------------------------------------------------------===//

TEST(ReportHistoryParseTest, VersionGateRejectsByName) {
  std::string Stored = storeOf({1.9}).serialize();
  size_t Pos = Stored.find("cheetah-history-v1");
  ASSERT_NE(Pos, std::string::npos);
  Stored.replace(Pos, std::string("cheetah-history-v1").size(),
                 "cheetah-history-v9");
  ReportHistory Out;
  std::string Error;
  EXPECT_FALSE(ReportHistory::parse(Stored, Out, Error));
  EXPECT_NE(Error.find("unsupported schema"), std::string::npos);
  EXPECT_NE(Error.find("cheetah-history-v9"), std::string::npos);
}

TEST(ReportHistoryParseTest, DuplicateRunIdsInDocumentRejected) {
  std::string Stored = storeOf({1.9, 1.9}).serialize();
  size_t Pos = Stored.find("\"id\":\"run-1\"");
  ASSERT_NE(Pos, std::string::npos);
  Stored.replace(Pos, std::string("\"id\":\"run-1\"").size(),
                 "\"id\":\"run-0\"");
  ReportHistory Out;
  std::string Error;
  EXPECT_FALSE(ReportHistory::parse(Stored, Out, Error));
  EXPECT_NE(Error.find("duplicate run id"), std::string::npos);
}

TEST(ReportHistoryParseTest, PointIndexInvariantsEnforced) {
  const char *RunPrefix =
      "{\"schema\":\"cheetah-history-v1\",\"runs\":[{\"id\":\"r0\","
      "\"workload\":\"w\",\"threads\":1,\"fix_applied\":false,"
      "\"granularity\":\"line\",\"source_schema\":\"cheetah-report-v4\","
      "\"app_runtime_cycles\":1,\"new_findings\":1,\"resolved_findings\":0,"
      "\"matched_findings\":0}],\"series\":[";
  ReportHistory Out;
  std::string Error;

  // A point referencing a run the store never recorded.
  std::string OutOfRange =
      std::string(RunPrefix) +
      "{\"key\":\"line:global:g#0\",\"page\":false,\"sharing\":\"fs\","
      "\"points\":[{\"run\":7,\"significant\":true,\"accesses\":1,"
      "\"invalidations\":0}]}]}";
  EXPECT_FALSE(ReportHistory::parse(OutOfRange, Out, Error));
  EXPECT_NE(Error.find("references no stored run"), std::string::npos);

  // Non-increasing point indices within a series.
  std::string NonIncreasing =
      std::string(RunPrefix) +
      "{\"key\":\"line:global:g#0\",\"page\":false,\"sharing\":\"fs\","
      "\"points\":[{\"run\":0,\"significant\":true,\"accesses\":1,"
      "\"invalidations\":0},{\"run\":0,\"significant\":true,\"accesses\":1,"
      "\"invalidations\":0}]}]}";
  EXPECT_FALSE(ReportHistory::parse(NonIncreasing, Out, Error));
  EXPECT_NE(Error.find("strictly increasing"), std::string::npos);

  // A line point smuggling page-only members.
  std::string PageMembers =
      std::string(RunPrefix) +
      "{\"key\":\"line:global:g#0\",\"page\":false,\"sharing\":\"fs\","
      "\"points\":[{\"run\":0,\"significant\":true,\"accesses\":1,"
      "\"invalidations\":0,\"remote_accesses\":5}]}]}";
  EXPECT_FALSE(ReportHistory::parse(PageMembers, Out, Error));
  EXPECT_NE(Error.find("page-only"), std::string::npos);

  // Duplicate series keys.
  std::string DuplicateKeys =
      std::string(RunPrefix) +
      "{\"key\":\"line:global:g#0\",\"page\":false,\"sharing\":\"fs\","
      "\"points\":[]},{\"key\":\"line:global:g#0\",\"page\":false,"
      "\"sharing\":\"fs\",\"points\":[]}]}";
  EXPECT_FALSE(ReportHistory::parse(DuplicateKeys, Out, Error));
  EXPECT_NE(Error.find("duplicate key"), std::string::npos);
}

TEST(ReportHistoryParseTest, StructuralGarbageFailsLoudly) {
  ReportHistory Out;
  std::string Error;
  EXPECT_FALSE(ReportHistory::parse("", Out, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(ReportHistory::parse("[]", Out, Error));
  EXPECT_NE(Error.find("not a JSON object"), std::string::npos);
  EXPECT_FALSE(ReportHistory::parse("{\"schema\":\"cheetah-history-v1\"}",
                                    Out, Error));
  EXPECT_NE(Error.find("runs"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// cheetah-diff-v1 ingestion
//===----------------------------------------------------------------------===//

TEST(ReportHistoryDiffIngestTest, DiffNewSideBecomesTheRun) {
  ParsedReport Old = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x1000, 1.9), true}}));
  ParsedReport New = mustParse(renderDocument(
      {{syntheticLineFinding("hot_global", 1.7), true}},
      {{syntheticPageFinding("blocks", 0x2000, 1.5), true}}, true));
  std::string DiffJson = formatDiffJson(diffReports(Old, New), 1.1);

  ParsedReport Run;
  std::string Error;
  ASSERT_TRUE(parseRunDocument(DiffJson, Run, Error)) << Error;
  EXPECT_EQ(Run.Schema, "cheetah-diff-v1");
  EXPECT_EQ(Run.Workload, "synthetic");
  EXPECT_TRUE(Run.FixApplied);
  // The added line finding carries full counters; the matched page
  // finding carries only identity and the new improvement.
  ASSERT_EQ(Run.Findings.size(), 1u);
  EXPECT_EQ(Run.Findings[0].Key, "line:global:hot_global#0");
  EXPECT_EQ(Run.Findings[0].Accesses, 1000u);
  ASSERT_EQ(Run.PageFindings.size(), 1u);
  EXPECT_EQ(Run.PageFindings[0].Key, "page:blocks#0");
  EXPECT_TRUE(Run.PageFindings[0].HasImprovement);
  EXPECT_NEAR(Run.PageFindings[0].Improvement, 1.5, 1e-12);
  EXPECT_EQ(Run.PageFindings[0].Accesses, 0u);
}

TEST(ReportHistoryDiffIngestTest, DiffRunExtendsSeriesAndKeepsSharing) {
  ReportHistory History;
  mustAppend(History, pageRun(1.9), "report-run");

  ParsedReport Old = mustParse(pageRun(1.9));
  ParsedReport New = mustParse(renderDocument(
      {}, {{syntheticPageFinding("blocks", 0x2000, 1.5), true}}));
  mustAppend(History, formatDiffJson(diffReports(Old, New), 1.1),
             "diff-run");

  const TrendSeries *S = History.seriesFor("page:blocks#0");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Points.size(), 2u);
  EXPECT_NEAR(S->Points[1].Improvement, 1.5, 1e-12);
  // Matched diff entries carry no sharing string; the series keeps the
  // last real observation.
  EXPECT_EQ(S->Sharing, "false-sharing");
  EXPECT_EQ(History.runs()[1].SourceSchema, "cheetah-diff-v1");
  EXPECT_EQ(History.runs()[1].MatchedFindings, 1u);
}

} // namespace
