//===- tests/ReportTest.cpp - streaming report pipeline tests --------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the streaming report pipeline: the ReportSink contract, the
/// Figure-5 text sink, and the machine-readable JSON sink. The JSON
/// golden test runs a known simulated workload, parses the emitted
/// document with the support-layer parser, and round-trips every summary
/// counter and per-finding field against the in-memory ProfileResult —
/// the schema (`cheetah-report-v4`) is a compatibility contract for
/// multi-run comparison tooling (`cheetah-diff`), so key names are pinned
/// here. The schema *version* is pinned just as hard: v2 added the
/// pageFindings sections, v3 added their assessment and the top-level
/// predictedImprovement factors, v4 added the per-page-finding
/// remote_by_distance breakdown, and consumers built against superseded
/// versions must fail loudly on the version string rather than silently
/// ignore (or misorder) the new data.
///
//===----------------------------------------------------------------------===//

#include "core/report/ReportBuilder.h"
#include "core/report/ReportSink.h"
#include "driver/ProfileSession.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cheetah;
using namespace cheetah::core;

namespace {

/// A deterministic profiled run with real false sharing: the paper's
/// linear_regression model, sampled densely enough to gate reports.
driver::SessionResult runKnownWorkload(std::string &JsonText) {
  auto Workload = workloads::createWorkload("linear_regression");
  EXPECT_NE(Workload, nullptr);
  driver::SessionConfig Config;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(512);
  Config.Workload.Threads = 8;
  Config.Workload.Seed = 0x43484545;
  JsonReportSink Sink(JsonText);
  return driver::runWorkload(*Workload, Config, &Sink);
}

TEST(JsonReportGoldenTest, DocumentParsesAndRoundTripsCounters) {
  std::string JsonText;
  driver::SessionResult Result = runKnownWorkload(JsonText);
  const ProfileResult &Profile = Result.Profile;

  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(JsonText, Document, Error)) << Error;
  ASSERT_TRUE(Document.isObject());

  // Schema identity.
  ASSERT_NE(Document.find("schema"), nullptr);
  EXPECT_EQ(Document.find("schema")->asString(), "cheetah-report-v4");

  // Run identification written by the driver's beginRun.
  const JsonValue *Run = Document.find("run");
  ASSERT_NE(Run, nullptr);
  EXPECT_EQ(Run->find("workload")->asString(), "linear_regression");
  EXPECT_EQ(Run->find("threads")->asUint(), 8u);
  EXPECT_EQ(Run->find("line_size")->asUint(), 64u);
  EXPECT_EQ(Run->find("sampling_period")->asUint(), 512u);
  EXPECT_FALSE(Run->find("fix_applied")->asBool());
  EXPECT_EQ(Run->find("numa_nodes")->asUint(), 1u);
  EXPECT_EQ(Run->find("granularity")->asString(), "line");

  // A line-only run still carries the (empty) pageFindings array so v2
  // consumers never branch on key presence.
  const JsonValue *PageFindings = Document.find("pageFindings");
  ASSERT_NE(PageFindings, nullptr);
  ASSERT_TRUE(PageFindings->isArray());
  EXPECT_EQ(PageFindings->size(), 0u);

  // Summary counters round-trip against the in-memory result.
  const JsonValue *Summary = Document.find("summary");
  ASSERT_NE(Summary, nullptr);
  EXPECT_EQ(Summary->find("findings")->asUint(),
            Profile.AllInstances.size());
  EXPECT_EQ(Summary->find("significant_findings")->asUint(),
            Profile.Reports.size());
  EXPECT_EQ(Summary->find("app_runtime_cycles")->asUint(),
            Profile.AppRuntime);
  EXPECT_EQ(Summary->find("samples")->asUint(), Profile.SamplesDelivered);
  EXPECT_EQ(Summary->find("serial_samples")->asUint(),
            Profile.SerialSamples);
  EXPECT_NEAR(Summary->find("serial_avg_latency")->asNumber(),
              Profile.SerialAverageLatency, 1e-9);
  EXPECT_EQ(Summary->find("fork_join")->asBool(),
            Profile.ForkJoinVerified);

  const JsonValue *Detector = Summary->find("detector");
  ASSERT_NE(Detector, nullptr);
  EXPECT_EQ(Detector->find("seen")->asUint(),
            Profile.Detection.SamplesSeen);
  EXPECT_EQ(Detector->find("filtered")->asUint(),
            Profile.Detection.SamplesFiltered);
  EXPECT_EQ(Detector->find("recorded")->asUint(),
            Profile.Detection.SamplesRecorded);
  EXPECT_EQ(Detector->find("invalidations")->asUint(),
            Profile.Detection.Invalidations);

  // Findings stream in AllInstances order with matching fields.
  const JsonValue *Findings = Document.find("findings");
  ASSERT_NE(Findings, nullptr);
  ASSERT_TRUE(Findings->isArray());
  ASSERT_EQ(Findings->size(), Profile.AllInstances.size());
  ASSERT_GT(Findings->size(), 0u) << "workload must produce findings";

  size_t SignificantSeen = 0;
  for (size_t I = 0; I < Findings->size(); ++I) {
    const JsonValue &Finding = Findings->elements()[I];
    const FalseSharingReport &Expected = Profile.AllInstances[I];
    const JsonValue *Object = Finding.find("object");
    ASSERT_NE(Object, nullptr);
    EXPECT_EQ(Object->find("start")->asUint(), Expected.Object.Start);
    EXPECT_EQ(Object->find("size")->asUint(), Expected.Object.Size);
    EXPECT_EQ(Finding.find("sharing")->asString(),
              sharingKindName(Expected.Kind));
    EXPECT_EQ(Finding.find("accesses")->asUint(), Expected.SampledAccesses);
    EXPECT_EQ(Finding.find("writes")->asUint(), Expected.SampledWrites);
    EXPECT_EQ(Finding.find("invalidations")->asUint(),
              Expected.Invalidations);
    EXPECT_EQ(Finding.find("latency_cycles")->asUint(),
              Expected.LatencyCycles);
    EXPECT_EQ(Finding.find("threads_observed")->asUint(),
              Expected.ThreadsObserved);
    EXPECT_NEAR(Finding.find("assessment")
                    ->find("improvement_factor")
                    ->asNumber(),
                Expected.Impact.ImprovementFactor, 1e-12);
    // Every finding carries the v3 top-level improvement factor, equal to
    // its assessment's.
    ASSERT_NE(Finding.find("predictedImprovement"), nullptr);
    EXPECT_NEAR(Finding.find("predictedImprovement")->asNumber(),
                Expected.Impact.ImprovementFactor, 1e-12);
    if (Finding.find("significant")->asBool())
      ++SignificantSeen;
    // Word entries mirror the hottest-first report words.
    const JsonValue *Words = Finding.find("words");
    ASSERT_NE(Words, nullptr);
    ASSERT_EQ(Words->size(), Expected.Words.size());
    for (size_t W = 0; W < Words->size(); ++W) {
      EXPECT_EQ(Words->elements()[W].find("reads")->asUint(),
                Expected.Words[W].Reads);
      EXPECT_EQ(Words->elements()[W].find("writes")->asUint(),
                Expected.Words[W].Writes);
    }
  }
  EXPECT_EQ(SignificantSeen, Profile.Reports.size());

  // The known workload's false sharing is present and significant.
  ASSERT_FALSE(Profile.Reports.empty());
  EXPECT_EQ(Profile.Reports.front().Kind, SharingKind::FalseSharing);
}

TEST(JsonReportGoldenTest, SchemaVersionGatesV1Consumers) {
  // The v2 field additions came with a version bump precisely so that a
  // consumer pinning "cheetah-report-v1" rejects the document instead of
  // silently dropping pageFindings. This models such a consumer's check.
  std::string JsonText;
  runKnownWorkload(JsonText);
  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(JsonText, Document, Error)) << Error;
  ASSERT_NE(Document.find("schema"), nullptr);
  EXPECT_NE(Document.find("schema")->asString(), "cheetah-report-v1");
}

TEST(JsonReportGoldenTest, SchemaVersionGatesV2Consumers) {
  // Same contract one version up: v3 added page assessment and the
  // predictedImprovement factors — and reordered pageFindings by them —
  // so a consumer pinning "cheetah-report-v2" must reject the document
  // rather than silently assume the v2 ordering.
  std::string JsonText;
  runKnownWorkload(JsonText);
  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(JsonText, Document, Error)) << Error;
  ASSERT_NE(Document.find("schema"), nullptr);
  EXPECT_NE(Document.find("schema")->asString(), "cheetah-report-v2");
}

TEST(JsonReportGoldenTest, SchemaVersionGatesV3Consumers) {
  // And one more: v4 added the remote_by_distance breakdown, and a
  // topology's distance matrix now shapes remote costs and therefore the
  // ordering of pageFindings — a consumer pinning "cheetah-report-v3"
  // must reject the document rather than read distance-shaped findings
  // as if they were binary local/remote.
  std::string JsonText;
  runKnownWorkload(JsonText);
  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(JsonText, Document, Error)) << Error;
  ASSERT_NE(Document.find("schema"), nullptr);
  const std::string &Schema = Document.find("schema")->asString();
  // A strict v3 consumer must fail loudly here...
  EXPECT_NE(Schema, "cheetah-report-v3");
  // ...and the version that replaced it is pinned exactly.
  EXPECT_EQ(Schema, "cheetah-report-v4");
}

/// A deterministic page-granularity run over the node-interleaved NUMA
/// workload: two nodes, dense sampling, line + page tracking both on.
driver::SessionResult runKnownPageWorkload(std::string &JsonText) {
  auto Workload = workloads::createWorkload("numa_interleaved");
  EXPECT_NE(Workload, nullptr);
  driver::SessionConfig Config;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
  Config.Profiler.Topology = NumaTopology(2, 4096);
  Config.Profiler.Detect.TrackPages = true;
  Config.Workload.Threads = 8;
  Config.Workload.Scale = 0.5;
  Config.Workload.NumaNodes = 2;
  JsonReportSink Sink(JsonText);
  return driver::runWorkload(*Workload, Config, &Sink);
}

TEST(JsonReportGoldenTest, PageFindingsRoundTripAgainstProfileResult) {
  std::string JsonText;
  driver::SessionResult Result = runKnownPageWorkload(JsonText);
  const ProfileResult &Profile = Result.Profile;

  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(JsonText, Document, Error)) << Error;

  const JsonValue *Run = Document.find("run");
  ASSERT_NE(Run, nullptr);
  EXPECT_EQ(Run->find("numa_nodes")->asUint(), 2u);
  EXPECT_EQ(Run->find("page_size")->asUint(), 4096u);
  EXPECT_EQ(Run->find("granularity")->asString(), "both");

  const JsonValue *PageFindings = Document.find("pageFindings");
  ASSERT_NE(PageFindings, nullptr);
  ASSERT_TRUE(PageFindings->isArray());
  ASSERT_EQ(PageFindings->size(), Profile.AllPageInstances.size());
  ASSERT_GT(PageFindings->size(), 0u)
      << "the node-interleaved workload must produce page findings";

  size_t SignificantSeen = 0;
  for (size_t I = 0; I < PageFindings->size(); ++I) {
    const JsonValue &Finding = PageFindings->elements()[I];
    const PageSharingReport &Expected = Profile.AllPageInstances[I];
    EXPECT_EQ(Finding.find("page")->asUint(), Expected.PageBase);
    EXPECT_EQ(Finding.find("page_size")->asUint(), Expected.PageSize);
    EXPECT_EQ(Finding.find("home_node")->asUint(), Expected.HomeNode);
    EXPECT_EQ(Finding.find("nodes")->asUint(), Expected.NodesObserved);
    EXPECT_EQ(Finding.find("sharing")->asString(),
              sharingKindName(Expected.Kind));
    EXPECT_EQ(Finding.find("accesses")->asUint(), Expected.SampledAccesses);
    EXPECT_EQ(Finding.find("writes")->asUint(), Expected.SampledWrites);
    EXPECT_EQ(Finding.find("remote_accesses")->asUint(),
              Expected.RemoteAccesses);
    EXPECT_EQ(Finding.find("invalidations")->asUint(),
              Expected.Invalidations);
    EXPECT_EQ(Finding.find("latency_cycles")->asUint(),
              Expected.LatencyCycles);
    EXPECT_NEAR(Finding.find("remote_fraction")->asNumber(),
                Expected.remoteFraction(), 1e-12);
    // v3: page findings carry the assessment and the top-level factor.
    ASSERT_NE(Finding.find("predictedImprovement"), nullptr);
    EXPECT_NEAR(Finding.find("predictedImprovement")->asNumber(),
                Expected.Impact.ImprovementFactor, 1e-12);
    const JsonValue *Impact = Finding.find("assessment");
    ASSERT_NE(Impact, nullptr);
    EXPECT_NEAR(Impact->find("improvement_factor")->asNumber(),
                Expected.Impact.ImprovementFactor, 1e-12);
    EXPECT_NEAR(Impact->find("predicted_runtime_cycles")->asNumber(),
                Expected.Impact.PredictedAppRuntime, 1e-6);
    if (Finding.find("significant")->asBool())
      ++SignificantSeen;
    const JsonValue *Lines = Finding.find("lines");
    ASSERT_NE(Lines, nullptr);
    ASSERT_EQ(Lines->size(), Expected.Lines.size());
    for (size_t L = 0; L < Lines->size(); ++L) {
      EXPECT_EQ(Lines->elements()[L].find("offset")->asUint(),
                Expected.Lines[L].Offset);
      EXPECT_EQ(Lines->elements()[L].find("reads")->asUint(),
                Expected.Lines[L].Reads);
      EXPECT_EQ(Lines->elements()[L].find("writes")->asUint(),
                Expected.Lines[L].Writes);
    }
    const JsonValue *Objects = Finding.find("objects");
    ASSERT_NE(Objects, nullptr);
    ASSERT_EQ(Objects->size(), Expected.Objects.size());
    // v4: the distance breakdown conserves against the remote totals.
    const JsonValue *Buckets = Finding.find("remote_by_distance");
    ASSERT_NE(Buckets, nullptr);
    ASSERT_TRUE(Buckets->isArray());
    ASSERT_EQ(Buckets->size(), Expected.RemoteByDistance.size());
    uint64_t BucketAccesses = 0, BucketCycles = 0;
    for (size_t B = 0; B < Buckets->size(); ++B) {
      const JsonValue &Bucket = Buckets->elements()[B];
      EXPECT_EQ(Bucket.find("distance")->asUint(),
                Expected.RemoteByDistance[B].Distance);
      EXPECT_EQ(Bucket.find("accesses")->asUint(),
                Expected.RemoteByDistance[B].Accesses);
      BucketAccesses += Bucket.find("accesses")->asUint();
      BucketCycles += Bucket.find("cycles")->asUint();
    }
    EXPECT_EQ(BucketAccesses, Expected.RemoteAccesses);
    EXPECT_EQ(BucketCycles, Expected.RemoteLatencyCycles);
    // The uniform 2-node topology has exactly one remote distance.
    if (Expected.RemoteAccesses > 0) {
      ASSERT_EQ(Buckets->size(), 1u);
      EXPECT_EQ(Buckets->elements()[0].find("distance")->asUint(),
                NumaTopology::DefaultRemoteDistance);
    }
  }
  EXPECT_EQ(SignificantSeen, Profile.PageReports.size());

  // The headline finding: false page sharing across two nodes, on the
  // workload's named global, invisible to the line-level gate.
  ASSERT_FALSE(Profile.PageReports.empty());
  EXPECT_EQ(Profile.PageReports.front().Kind, SharingKind::FalseSharing);
  EXPECT_GE(Profile.PageReports.front().NodesObserved, 2u);
  EXPECT_TRUE(Profile.Reports.empty())
      << "line-granularity must not report the interleaved hammering";

  // Summary page counters round-trip.
  const JsonValue *Summary = Document.find("summary");
  ASSERT_NE(Summary, nullptr);
  EXPECT_EQ(Summary->find("page_findings")->asUint(),
            Profile.AllPageInstances.size());
  EXPECT_EQ(Summary->find("significant_page_findings")->asUint(),
            Profile.PageReports.size());
  EXPECT_GT(Summary->find("materialized_pages")->asUint(), 0u);
  EXPECT_GT(Summary->find("page_shadow_bytes")->asUint(), 0u);
  const JsonValue *Detector = Summary->find("detector");
  ASSERT_NE(Detector, nullptr);
  EXPECT_EQ(Detector->find("page_recorded")->asUint(),
            Profile.Detection.PageSamplesRecorded);
  EXPECT_EQ(Detector->find("page_invalidations")->asUint(),
            Profile.Detection.PageInvalidations);
  EXPECT_EQ(Detector->find("remote_samples")->asUint(),
            Profile.Detection.RemoteSamples);
}

TEST(JsonReportGoldenTest, PageDocumentIsByteStableAcrossRuns) {
  std::string First, Second;
  runKnownPageWorkload(First);
  runKnownPageWorkload(Second);
  EXPECT_EQ(First, Second);
  EXPECT_FALSE(First.empty());
}

TEST(JsonReportGoldenTest, DocumentIsByteStableAcrossRuns) {
  // Same workload, same seed: the serialized document must be identical —
  // the property multi-run diffing tools depend on.
  std::string First, Second;
  runKnownWorkload(First);
  runKnownWorkload(Second);
  EXPECT_EQ(First, Second);
  EXPECT_FALSE(First.empty());
  EXPECT_EQ(First.back(), '\n');
}

//===----------------------------------------------------------------------===//
// Sink behavior on synthetic findings
//===----------------------------------------------------------------------===//

FalseSharingReport makeSyntheticReport() {
  FalseSharingReport Report;
  Report.Object.IsHeap = true;
  Report.Object.CallsiteFrames = {"alloc.c:42", "main.c:7"};
  Report.Object.Start = 0x40001000;
  Report.Object.Size = 256;
  Report.Object.RequestedSize = 250;
  Report.Object.AllocatedBy = 0;
  Report.Kind = SharingKind::FalseSharing;
  Report.LinesTracked = 4;
  Report.SampledAccesses = 1000;
  Report.SampledWrites = 400;
  Report.Invalidations = 123;
  Report.LatencyCycles = 50000;
  Report.ThreadsObserved = 8;
  Report.SharedWordFraction = 0.25;
  Report.Impact.ImprovementFactor = 1.5;
  Report.Impact.RealAppRuntime = 3000000;
  Report.Impact.PredictedAppRuntime = 2000000.0;
  Report.Words.push_back({0, 500, 200, 25000, 1, false});
  Report.Words.push_back({64, 300, 200, 25000, 2, true});
  return Report;
}

TEST(ReportSinkTest, JsonEscapesHostileObjectNames) {
  std::string Out;
  JsonReportSink Sink(Out);
  Sink.beginRun(ReportRunInfo{});
  FalseSharingReport Report = makeSyntheticReport();
  Report.Object.IsHeap = false;
  Report.Object.CallsiteFrames.clear();
  Report.Object.GlobalName = "weird\"name\\with\nnewline\tand\x01ctl";
  Sink.finding(Report, true);
  Sink.endRun(ReportRunStats{});

  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Out, Document, Error)) << Error;
  const JsonValue &Finding = Document.find("findings")->elements()[0];
  EXPECT_EQ(Finding.find("object")->find("name")->asString(),
            Report.Object.GlobalName);
}

TEST(ReportSinkTest, JsonMaxWordsCapsHottestFirst) {
  std::string Out;
  JsonReportSink::Options Options;
  Options.MaxWords = 1;
  JsonReportSink Sink(Out, Options);
  Sink.beginRun(ReportRunInfo{});
  Sink.finding(makeSyntheticReport(), true);
  Sink.endRun(ReportRunStats{});

  JsonValue Document;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Out, Document, Error)) << Error;
  const JsonValue *Words =
      Document.find("findings")->elements()[0].find("words");
  ASSERT_EQ(Words->size(), 1u);
  EXPECT_EQ(Words->elements()[0].find("reads")->asUint(), 500u);
}

TEST(ReportSinkTest, TextSinkFiltersInsignificantByDefault) {
  std::string Out;
  TextReportSink Sink(Out);
  Sink.beginRun(ReportRunInfo{});
  Sink.finding(makeSyntheticReport(), /*Significant=*/false);
  ReportRunStats Stats;
  Stats.Findings = 1;
  Sink.endRun(Stats);
  EXPECT_NE(Out.find("No significant false sharing detected"),
            std::string::npos);
  EXPECT_EQ(Out.find("alloc.c:42"), std::string::npos);
}

TEST(ReportSinkTest, TextSinkIncludesInsignificantWhenAsked) {
  std::string Out;
  TextReportSink::Options Options;
  Options.IncludeInsignificant = true;
  TextReportSink Sink(Out, Options);
  Sink.beginRun(ReportRunInfo{});
  Sink.finding(makeSyntheticReport(), /*Significant=*/false);
  Sink.endRun(ReportRunStats{});
  EXPECT_NE(Out.find("alloc.c:42"), std::string::npos);
  EXPECT_NE(Out.find("false-sharing"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ReportBuilder streaming order
//===----------------------------------------------------------------------===//

/// Sink that records the stream for order/flag assertions.
struct RecordingSink : ReportSink {
  std::vector<std::pair<uint64_t, bool>> Findings; // (object start, flag)
  unsigned Begins = 0, Ends = 0;

  void beginRun(const ReportRunInfo &) override { ++Begins; }
  void finding(const FalseSharingReport &Report, bool Significant) override {
    Findings.emplace_back(Report.Object.Start, Significant);
  }
  void endRun(const ReportRunStats &) override { ++Ends; }
};

TEST(ReportBuilderTest, StreamsFindingsInImprovementOrderWithFlags) {
  // Drive the profiler directly: a parallel phase with two threads
  // ping-pong writing two disjoint lines, then finish through a recording
  // sink. Stream order must equal AllInstances order (descending
  // improvement), flags must match the significant set, and the profiler
  // must call endRun exactly once (beginRun belongs to the caller).
  ProfilerConfig Config;
  Config.Report.MinInvalidations = 1;
  Config.Report.MinImprovementFactor = 0.0;
  Profiler Prof(Config);
  Prof.internCallsite("report_test.c", 1);
  Prof.threadStarted(0, /*IsMain=*/true, 0);
  Prof.threadStarted(1, /*IsMain=*/false, 10);
  Prof.threadStarted(2, /*IsMain=*/false, 10);

  // Two disjoint lines, each ping-pong written by both child threads on
  // private words: classic false sharing on both.
  std::vector<pmu::Sample> Samples;
  for (unsigned I = 0; I < 128; ++I) {
    ThreadId Tid = 1 + (I % 2);
    pmu::Sample Sample;
    Sample.Address =
        Config.HeapArenaBase + ((I / 2) % 2) * 1024 + Tid * 4;
    Sample.Tid = Tid;
    Sample.IsWrite = true;
    Sample.LatencyCycles = 100;
    Samples.push_back(Sample);
  }
  Prof.ingestBatch(Samples.data(), Samples.size());

  RecordingSink Sink;
  sim::SimulationResult Run;
  Run.TotalCycles = 100000;
  ProfileResult Result = Prof.finish(Run, &Sink);

  EXPECT_EQ(Sink.Begins, 0u);
  EXPECT_EQ(Sink.Ends, 1u);
  ASSERT_EQ(Sink.Findings.size(), Result.AllInstances.size());
  size_t Significant = 0;
  for (size_t I = 0; I < Sink.Findings.size(); ++I) {
    EXPECT_EQ(Sink.Findings[I].first, Result.AllInstances[I].Object.Start);
    Significant += Sink.Findings[I].second ? 1 : 0;
    if (I > 0) {
      EXPECT_GE(Result.AllInstances[I - 1].Impact.ImprovementFactor,
                Result.AllInstances[I].Impact.ImprovementFactor);
    }
  }
  EXPECT_EQ(Significant, Result.Reports.size());
}

} // namespace
