//===- tests/ThreadedIngestTest.cpp - concurrent ingestion tests ----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrency tests for the sample-ingestion hot path: many threads feed
/// the detector / profiler / interpose buffers at once, and the results are
/// checked against a serial reference run over the same sample streams.
/// Designed to be run under ThreadSanitizer (-DCHEETAH_SANITIZE=thread) —
/// the assertions catch lost updates, TSan catches the races themselves.
///
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/detect/Detector.h"
#include "core/detect/PageTable.h"
#include "core/detect/ShadowMemory.h"
#include "interpose/Preload.h"
#include "mem/NumaTopology.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

using namespace cheetah;
using namespace cheetah::core;

namespace {

constexpr uint64_t RegionBase = 0x4000'0000;
constexpr uint32_t LineSize = 64;
constexpr unsigned IngestThreads = 8;

/// Builds a deterministic per-line sample stream: \p SamplesPerLine accesses
/// on line \p Line, issued by a few simulated threads with mixed kinds and
/// word offsets, seeded by the line index so every run (serial or parallel)
/// sees identical per-line histories.
std::vector<pmu::Sample> lineStream(uint64_t Line, unsigned SamplesPerLine) {
  SplitMix64 Rng(0xC0FFEE ^ Line);
  std::vector<pmu::Sample> Stream;
  Stream.reserve(SamplesPerLine);
  for (unsigned I = 0; I < SamplesPerLine; ++I) {
    pmu::Sample Sample;
    Sample.Address = RegionBase + Line * LineSize + Rng.nextBelow(16) * 4;
    Sample.Tid = static_cast<ThreadId>(Rng.nextBelow(4));
    Sample.IsWrite = Rng.nextBool(0.6);
    Sample.LatencyCycles = 20 + static_cast<uint32_t>(Rng.nextBelow(50));
    Stream.push_back(Sample);
  }
  return Stream;
}

//===----------------------------------------------------------------------===//
// Detector: parallel ingestion over disjoint line partitions must be
// indistinguishable from a serial run of the same per-line streams.
//===----------------------------------------------------------------------===//

TEST(ThreadedIngestTest, DisjointLinePartitionsMatchSerialReference) {
  constexpr uint64_t NumLines = 512;
  constexpr unsigned SamplesPerLine = 48;
  CacheGeometry Geometry(LineSize);
  DetectorConfig Config;

  // Serial reference: every line's stream, one line after another.
  ShadowMemory SerialShadow(Geometry, {{RegionBase, NumLines * LineSize}});
  Detector SerialDetect(Geometry, SerialShadow, Config);
  for (uint64_t Line = 0; Line < NumLines; ++Line)
    for (const pmu::Sample &Sample : lineStream(Line, SamplesPerLine))
      SerialDetect.handleSample(Sample, /*InParallelPhase=*/true);
  SerialDetect.quiesce();

  // Parallel run: lines are partitioned over 8 ingest threads, so each
  // line's stream keeps its order while the threads race on the shared
  // shadow arrays, stripe locks, and detector counters.
  ShadowMemory Shadow(Geometry, {{RegionBase, NumLines * LineSize}});
  Detector Detect(Geometry, Shadow, Config);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      for (uint64_t Line = T; Line < NumLines; Line += IngestThreads)
        for (const pmu::Sample &Sample : lineStream(Line, SamplesPerLine))
          Detect.handleSample(Sample, /*InParallelPhase=*/true);
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  // Epoch boundary: folds per-thread shards back in the sharded build
  // (and proves merge conservation there); no-op otherwise. With it, the
  // per-line comparison below doubles as the sharded-vs-serial
  // equivalence check.
  Detect.quiesce();

  DetectorStats Serial = SerialDetect.stats();
  DetectorStats Parallel = Detect.stats();
  EXPECT_EQ(Parallel.SamplesSeen, Serial.SamplesSeen);
  EXPECT_EQ(Parallel.SamplesFiltered, Serial.SamplesFiltered);
  EXPECT_EQ(Parallel.SamplesRecorded, Serial.SamplesRecorded);
  EXPECT_EQ(Parallel.Invalidations, Serial.Invalidations);
  EXPECT_EQ(Shadow.materializedLines(), SerialShadow.materializedLines());

  // Per-line state must match exactly, not just in aggregate.
  std::map<uint64_t, const CacheLineInfo *> SerialLines;
  SerialShadow.forEachDetail(
      [&](uint64_t LineBase, const CacheLineInfo &Info) {
        SerialLines[LineBase] = &Info;
      });
  Shadow.forEachDetail([&](uint64_t LineBase, const CacheLineInfo &Info) {
    auto It = SerialLines.find(LineBase);
    ASSERT_NE(It, SerialLines.end()) << "line only materialized in parallel";
    EXPECT_EQ(Info.invalidations(), It->second->invalidations());
    EXPECT_EQ(Info.accesses(), It->second->accesses());
    EXPECT_EQ(Info.writes(), It->second->writes());
    EXPECT_EQ(Info.cycles(), It->second->cycles());
    EXPECT_EQ(Info.threadCount(), It->second->threadCount());
  });
}

TEST(ThreadedIngestTest, BatchedDisjointLinePartitionsMatchSerialReference) {
  // The handleBatch mirror of the test above: the same per-line streams,
  // but each ingest thread delivers its lines in whole batches through the
  // staged pipeline (SIMD decode, branchless stage-1 sweep, prefetched
  // lookups). Eight threads race on the shared write counters, stripe
  // locks, and per-thread decode scratch; the result must still equal a
  // serial per-sample reference, line for line.
  constexpr uint64_t NumLines = 512;
  constexpr unsigned SamplesPerLine = 48;
  CacheGeometry Geometry(LineSize);
  DetectorConfig Config;

  ShadowMemory SerialShadow(Geometry, {{RegionBase, NumLines * LineSize}});
  Detector SerialDetect(Geometry, SerialShadow, Config);
  for (uint64_t Line = 0; Line < NumLines; ++Line)
    for (const pmu::Sample &Sample : lineStream(Line, SamplesPerLine))
      SerialDetect.handleSample(Sample, /*InParallelPhase=*/true);
  SerialDetect.quiesce();

  ShadowMemory Shadow(Geometry, {{RegionBase, NumLines * LineSize}});
  Detector Detect(Geometry, Shadow, Config);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      for (uint64_t Line = T; Line < NumLines; Line += IngestThreads) {
        std::vector<pmu::Sample> Batch = lineStream(Line, SamplesPerLine);
        Detect.handleBatch(Batch.data(), Batch.size(),
                           /*InParallelPhase=*/true);
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  Detect.quiesce();

  DetectorStats Serial = SerialDetect.stats();
  DetectorStats Parallel = Detect.stats();
  EXPECT_EQ(Parallel.SamplesSeen, Serial.SamplesSeen);
  EXPECT_EQ(Parallel.SamplesFiltered, Serial.SamplesFiltered);
  EXPECT_EQ(Parallel.SamplesRecorded, Serial.SamplesRecorded);
  EXPECT_EQ(Parallel.Invalidations, Serial.Invalidations);
  EXPECT_EQ(Shadow.materializedLines(), SerialShadow.materializedLines());

  std::map<uint64_t, const CacheLineInfo *> SerialLines;
  SerialShadow.forEachDetail(
      [&](uint64_t LineBase, const CacheLineInfo &Info) {
        SerialLines[LineBase] = &Info;
      });
  Shadow.forEachDetail([&](uint64_t LineBase, const CacheLineInfo &Info) {
    auto It = SerialLines.find(LineBase);
    ASSERT_NE(It, SerialLines.end()) << "line only materialized in batch run";
    EXPECT_EQ(Info.invalidations(), It->second->invalidations());
    EXPECT_EQ(Info.accesses(), It->second->accesses());
    EXPECT_EQ(Info.writes(), It->second->writes());
    EXPECT_EQ(Info.cycles(), It->second->cycles());
    EXPECT_EQ(Info.threadCount(), It->second->threadCount());
  });
}

//===----------------------------------------------------------------------===//
// Detector: fully contended lines must never lose an update.
//===----------------------------------------------------------------------===//

TEST(ThreadedIngestTest, ContendedLinesLoseNoSamples) {
  constexpr uint64_t NumLines = 16;
  constexpr unsigned SamplesPerThread = 20000;
  CacheGeometry Geometry(LineSize);
  ShadowMemory Shadow(Geometry, {{RegionBase, NumLines * LineSize}});
  DetectorConfig Config;
  Config.WriteThreshold = 0; // every written line is susceptible immediately
  Detector Detect(Geometry, Shadow, Config);

  std::atomic<uint64_t> WritesIssued{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      SplitMix64 Rng(T + 1);
      uint64_t LocalWrites = 0;
      for (unsigned I = 0; I < SamplesPerThread; ++I) {
        pmu::Sample Sample;
        Sample.Address = RegionBase + Rng.nextBelow(NumLines) * LineSize +
                         Rng.nextBelow(16) * 4;
        Sample.Tid = static_cast<ThreadId>(T);
        Sample.IsWrite = Rng.nextBool(0.5);
        Sample.LatencyCycles = 30;
        LocalWrites += Sample.IsWrite ? 1 : 0;
        Detect.handleSample(Sample, /*InParallelPhase=*/true);
      }
      WritesIssued.fetch_add(LocalWrites);
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  Detect.quiesce();

  constexpr uint64_t Total = uint64_t(IngestThreads) * SamplesPerThread;
  DetectorStats Stats = Detect.stats();
  EXPECT_EQ(Stats.SamplesSeen, Total);
  EXPECT_EQ(Stats.SamplesFiltered, 0u);

  uint64_t LineAccesses = 0, LineWrites = 0, LineInvalidations = 0;
  uint64_t PerThreadAccesses = 0, CountedWrites = 0;
  Shadow.forEachDetail([&](uint64_t LineBase, const CacheLineInfo &Info) {
    LineAccesses += Info.accesses();
    LineWrites += Info.writes();
    LineInvalidations += Info.invalidations();
    for (const ThreadLineStats &PerThread : Info.threads())
      PerThreadAccesses += PerThread.Accesses;
    CountedWrites += Shadow.writeCount(LineBase);
  });
  EXPECT_EQ(LineAccesses, Stats.SamplesRecorded);
  EXPECT_EQ(PerThreadAccesses, Stats.SamplesRecorded);
  // Reads that arrive before a line's first write are filtered by the
  // susceptibility gate, but every write materializes its line, so all
  // issued writes must be recorded and counted.
  EXPECT_EQ(LineWrites, WritesIssued.load());
  EXPECT_EQ(CountedWrites, WritesIssued.load());
  EXPECT_EQ(LineInvalidations, Stats.Invalidations);
  EXPECT_GT(LineInvalidations, 0u);
}

//===----------------------------------------------------------------------===//
// Lock-free CacheLineInfo: 8 threads hammering ONE shared line. The
// worst case for the packed CAS table and the per-line atomics — every
// update contends. Run under TSan to prove the mutex-free hot path clean.
//===----------------------------------------------------------------------===//

TEST(ThreadedIngestTest, SingleSharedLineHammerLosesNoUpdates) {
  constexpr unsigned SamplesPerThread = 30000;
  constexpr uint64_t WordsPerLine = 16;
  CacheLineInfo Info(WordsPerLine);

  std::atomic<uint64_t> WritesIssued{0}, Invalidations{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      SplitMix64 Rng(0x51E ^ T);
      uint64_t LocalWrites = 0, LocalInvalidations = 0;
      for (unsigned I = 0; I < SamplesPerThread; ++I) {
        AccessKind Kind =
            Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read;
        LocalWrites += Kind == AccessKind::Write ? 1 : 0;
        LocalInvalidations += Info.recordAccess(
            static_cast<ThreadId>(T), Kind, Rng.nextBelow(WordsPerLine),
            /*WordSpan=*/1, /*LatencyCycles=*/10);
      }
      WritesIssued.fetch_add(LocalWrites);
      Invalidations.fetch_add(LocalInvalidations);
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  constexpr uint64_t Total = uint64_t(IngestThreads) * SamplesPerThread;
  EXPECT_EQ(Info.accesses(), Total);
  EXPECT_EQ(Info.writes(), WritesIssued.load());
  EXPECT_EQ(Info.cycles(), Total * 10);
  // Every caller's observed invalidation was counted exactly once.
  EXPECT_EQ(Info.invalidations(), Invalidations.load());
  EXPECT_GT(Info.invalidations(), 0u);
  EXPECT_LE(Info.invalidations(), Info.writes());

  // Word totals conserve the access population.
  uint64_t WordAccesses = 0, WordCycles = 0;
  for (const WordStats &Word : Info.words()) {
    WordAccesses += Word.accesses();
    WordCycles += Word.Cycles;
    EXPECT_TRUE(Word.MultiThread || Word.accesses() == 0 ||
                Word.FirstThread != NoThread);
  }
  EXPECT_EQ(WordAccesses, Total);
  EXPECT_EQ(WordCycles, Total * 10);

  // Exactly one per-thread slot per hammering thread, each conserved.
  std::vector<ThreadLineStats> PerThread = Info.threads();
  ASSERT_EQ(PerThread.size(), size_t(IngestThreads));
  for (unsigned T = 0; T < IngestThreads; ++T) {
    EXPECT_EQ(PerThread[T].Tid, T);
    EXPECT_EQ(PerThread[T].Accesses, SamplesPerThread);
    EXPECT_EQ(PerThread[T].Cycles, uint64_t(SamplesPerThread) * 10);
  }

  // The table's packed invariants survived the hammering.
  EXPECT_LE(Info.table().size(), 2u);
  if (Info.table().size() == 2) {
    EXPECT_NE(Info.table().entry(0).Tid, Info.table().entry(1).Tid);
  }
}

TEST(ThreadedIngestTest, SingleSharedLineDetectorHammer) {
  // Same single-line contention shape through the full detector stage-1 +
  // stage-2 path (threshold 0 so the line materializes on first write).
  constexpr unsigned SamplesPerThread = 20000;
  CacheGeometry Geometry(LineSize);
  ShadowMemory Shadow(Geometry, {{RegionBase, LineSize}});
  DetectorConfig Config;
  Config.WriteThreshold = 0;
  Detector Detect(Geometry, Shadow, Config);

  std::atomic<uint64_t> WritesIssued{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      SplitMix64 Rng(0xBEEF ^ T);
      uint64_t LocalWrites = 0;
      for (unsigned I = 0; I < SamplesPerThread; ++I) {
        pmu::Sample Sample;
        Sample.Address = RegionBase + Rng.nextBelow(16) * 4;
        Sample.Tid = static_cast<ThreadId>(T);
        Sample.IsWrite = Rng.nextBool(0.6);
        Sample.LatencyCycles = 25;
        LocalWrites += Sample.IsWrite ? 1 : 0;
        Detect.handleSample(Sample, /*InParallelPhase=*/true);
      }
      WritesIssued.fetch_add(LocalWrites);
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  Detect.quiesce();

  constexpr uint64_t Total = uint64_t(IngestThreads) * SamplesPerThread;
  DetectorStats Stats = Detect.stats();
  EXPECT_EQ(Stats.SamplesSeen, Total);
  EXPECT_EQ(Stats.SamplesFiltered, 0u);
  EXPECT_EQ(Shadow.materializedLines(), 1u);
  EXPECT_EQ(Shadow.writeCount(RegionBase), WritesIssued.load());

  const CacheLineInfo *Info = Shadow.detail(RegionBase);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->accesses(), Stats.SamplesRecorded);
  EXPECT_EQ(Info->writes(), WritesIssued.load());
  EXPECT_EQ(Info->invalidations(), Stats.Invalidations);
  EXPECT_GT(Info->invalidations(), 0u);
  EXPECT_EQ(Info->threadCount(), size_t(IngestThreads));
}

//===----------------------------------------------------------------------===//
// Lock-free page layer: 8 threads hammering ONE shared 4 KiB page, pinned
// across two simulated NUMA nodes (tid % 2). The page-granularity mirror
// of the single-shared-line hammer above: every update contends on the
// packed node table, the per-line histogram, and the per-node
// accumulators. Run under TSan to prove the mutex-free page path clean.
//===----------------------------------------------------------------------===//

TEST(ThreadedIngestTest, SingleSharedPageHammerAcrossNodesLosesNoUpdates) {
  constexpr unsigned SamplesPerThread = 20000;
  constexpr uint64_t PageSize = 4096;
  NumaTopology Topology(2, PageSize);
  CacheGeometry Geometry(LineSize);
  ShadowMemory Shadow(Geometry, {{RegionBase, PageSize}});
  PageTable Pages(Topology, Geometry, {{RegionBase, PageSize}});
  DetectorConfig Config;
  Config.WriteThreshold = 0;
  Config.TrackPages = true;
  Config.PageWriteThreshold = 0;
  Detector Detect(Geometry, Shadow, Config);
  Detect.attachPageTable(Pages, Topology);

  std::atomic<uint64_t> WritesIssued{0};
  std::atomic<uint64_t> AccessesPerNode[2] = {{0}, {0}};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      SplitMix64 Rng(0x9A6E ^ T);
      uint64_t LocalWrites = 0;
      for (unsigned I = 0; I < SamplesPerThread; ++I) {
        pmu::Sample Sample;
        Sample.Address = RegionBase + Rng.nextBelow(PageSize / 4) * 4;
        Sample.Tid = static_cast<ThreadId>(T);
        // Lead with a write: a read racing ahead of the page's first
        // sampled write is (correctly) dropped by the stage-1 gate, which
        // would make the conservation totals below nondeterministic.
        Sample.IsWrite = I == 0 || Rng.nextBool(0.6);
        Sample.LatencyCycles = 25;
        LocalWrites += Sample.IsWrite ? 1 : 0;
        Detect.handleSample(Sample, /*InParallelPhase=*/true);
      }
      WritesIssued.fetch_add(LocalWrites);
      AccessesPerNode[T % 2].fetch_add(SamplesPerThread);
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  Detect.quiesce();

  constexpr uint64_t Total = uint64_t(IngestThreads) * SamplesPerThread;
  DetectorStats Stats = Detect.stats();
  EXPECT_EQ(Stats.SamplesSeen, Total);
  EXPECT_EQ(Stats.PageSamplesRecorded, Total);
  EXPECT_EQ(Pages.materializedPages(), 1u);
  EXPECT_EQ(Pages.writeCount(RegionBase), WritesIssued.load());

  const PageInfo *Info = Pages.detail(RegionBase);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->accesses(), Total);
  EXPECT_EQ(Info->writes(), WritesIssued.load());
  EXPECT_EQ(Info->cycles(), Total * 25);
  EXPECT_EQ(Info->invalidations(), Stats.PageInvalidations);
  EXPECT_GT(Info->invalidations(), 0u);
  EXPECT_LE(Info->invalidations(), Info->writes());

  // The home was CAS-published exactly once; every access from the other
  // node was counted remote, with no lost updates.
  NodeId Home = Pages.homeNode(RegionBase);
  ASSERT_LT(Home, 2u);
  EXPECT_EQ(Info->remoteAccesses(), AccessesPerNode[1 - Home].load());
  EXPECT_EQ(Info->remoteAccesses(), Stats.RemoteSamples);
  EXPECT_EQ(Info->remoteCycles(), Info->remoteAccesses() * 25);

  // Per-node accumulators conserve the population: both nodes present,
  // each with its threads' exact totals.
  std::vector<NodePageStats> Nodes = Info->nodes();
  ASSERT_EQ(Nodes.size(), 2u);
  for (const NodePageStats &Node : Nodes)
    EXPECT_EQ(Node.Accesses, AccessesPerNode[Node.Node].load());
  EXPECT_EQ(Info->nodeCount(), 2u);

  // Per-line histogram conserves accesses and cycles.
  uint64_t LineAccesses = 0, LineCycles = 0;
  for (const core::WordStats &Line : Info->lines()) {
    LineAccesses += Line.accesses();
    LineCycles += Line.Cycles;
  }
  EXPECT_EQ(LineAccesses, Total);
  EXPECT_EQ(LineCycles, Total * 25);

  // The packed node table kept its invariants under the hammering.
  EXPECT_LE(Info->table().size(), 2u);
  if (Info->table().size() == 2)
    EXPECT_NE(Info->table().entry(0).Tid, Info->table().entry(1).Tid);
}

//===----------------------------------------------------------------------===//
// Epoch-sharded ingestion: the recordSharded()/quiesce() path is compiled
// in every build, so these tests A/B it against the shared lock-free path
// everywhere — not only when CHEETAH_SHARDED_TABLE routes record() to it.
//===----------------------------------------------------------------------===//

TEST(ShardedIngestTest, MergeConservesEveryCounterAcrossEpochs) {
  // 8 OS threads hammer ONE line through their per-thread shards; the
  // merge totals reported by quiesce() must conserve exactly what the
  // threads issued, and a second epoch must fold only its delta.
  constexpr unsigned SamplesPerThread = 20000;
  constexpr uint64_t WordsPerLine = 16;
  CacheGeometry Geometry(LineSize);
  ShadowMemory Shadow(Geometry, {{RegionBase, LineSize}});

  std::atomic<uint64_t> WritesIssued{0}, Invalidations{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      SplitMix64 Rng(0x5A4D ^ T);
      uint64_t LocalWrites = 0, LocalInvalidations = 0;
      for (unsigned I = 0; I < SamplesPerThread; ++I) {
        AccessKind Kind =
            Rng.nextBool(0.5) ? AccessKind::Write : AccessKind::Read;
        LocalWrites += Kind == AccessKind::Write ? 1 : 0;
        CacheLineInfo &Info = Shadow.materializeDetail(RegionBase);
        LocalInvalidations += Shadow.recordSharded(
            RegionBase, Info, static_cast<ThreadId>(T),
            /*Actor=*/static_cast<ThreadId>(T), Kind,
            Rng.nextBelow(WordsPerLine), /*Span=*/1, /*LatencyCycles=*/10);
      }
      WritesIssued.fetch_add(LocalWrites);
      Invalidations.fetch_add(LocalInvalidations);
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  // Before the merge, only the shared two-entry table has moved: the
  // additive counters still read zero.
  const CacheLineInfo *Info = Shadow.detail(RegionBase);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->accesses(), 0u);
  EXPECT_EQ(Shadow.shardCount(), size_t(IngestThreads));

  constexpr uint64_t Total = uint64_t(IngestThreads) * SamplesPerThread;
  GrainMergeStats Merge = Shadow.quiesce();
  EXPECT_EQ(Merge.Shards, uint64_t(IngestThreads));
  EXPECT_EQ(Merge.Records, uint64_t(IngestThreads)); // one grain per shard
  EXPECT_EQ(Merge.Accesses, Total);
  EXPECT_EQ(Merge.Writes, WritesIssued.load());
  EXPECT_EQ(Merge.Cycles, Total * 10);
  EXPECT_EQ(Merge.Invalidations, Invalidations.load());
  EXPECT_EQ(Merge.RemoteAccesses, 0u); // lines have no remote dimension

  // The folded-back shared state conserves the population too.
  EXPECT_EQ(Info->accesses(), Total);
  EXPECT_EQ(Info->writes(), WritesIssued.load());
  EXPECT_EQ(Info->cycles(), Total * 10);
  EXPECT_EQ(Info->invalidations(), Invalidations.load());
  uint64_t WordAccesses = 0;
  for (const WordStats &Word : Info->words())
    WordAccesses += Word.accesses();
  EXPECT_EQ(WordAccesses, Total);
  std::vector<ThreadLineStats> PerThread = Info->threads();
  ASSERT_EQ(PerThread.size(), size_t(IngestThreads));
  for (const ThreadLineStats &Stats : PerThread)
    EXPECT_EQ(Stats.Accesses, SamplesPerThread) << "tid " << Stats.Tid;

  // Shards were emptied: an immediate re-quiesce merges nothing.
  GrainMergeStats Empty = Shadow.quiesce();
  EXPECT_EQ(Empty.Records, 0u);
  EXPECT_EQ(Empty.Accesses, 0u);

  // Epoch two, from a ninth ingesting thread (main): the merge reports
  // only the delta, and the shared totals advance by exactly that much.
  constexpr uint64_t ExtraSamples = 100;
  CacheLineInfo &Detail = Shadow.materializeDetail(RegionBase);
  for (uint64_t I = 0; I < ExtraSamples; ++I)
    Shadow.recordSharded(RegionBase, Detail, /*Tid=*/0, /*Actor=*/0,
                         AccessKind::Write, /*Bucket=*/I % WordsPerLine,
                         /*Span=*/1, /*LatencyCycles=*/10);
  GrainMergeStats Second = Shadow.quiesce();
  EXPECT_EQ(Second.Shards, uint64_t(IngestThreads) + 1);
  EXPECT_EQ(Second.Records, 1u);
  EXPECT_EQ(Second.Accesses, ExtraSamples);
  EXPECT_EQ(Info->accesses(), Total + ExtraSamples);
}

TEST(ShardedIngestTest, MergedOutputMatchesSharedTableSampleForSample) {
  // Disjoint line partitions make every per-line history deterministic, so
  // the sharded-mode merge output must equal the shared lock-free path
  // field for field — counters, invalidations, word histograms (including
  // first-thread/multi-thread bits), and per-thread totals.
  constexpr uint64_t NumLines = 64;
  constexpr unsigned SamplesPerLine = 64;
  CacheGeometry Geometry(LineSize);
  ShadowMemory Shared(Geometry, {{RegionBase, NumLines * LineSize}});
  ShadowMemory Sharded(Geometry, {{RegionBase, NumLines * LineSize}});

  // Reference: the same per-line streams through the shared path, serially.
  for (uint64_t Line = 0; Line < NumLines; ++Line) {
    uint64_t Base = RegionBase + Line * LineSize;
    CacheLineInfo &Info = Shared.materializeDetail(Base);
    for (const pmu::Sample &Sample : lineStream(Line, SamplesPerLine))
      Info.recordAccess(Sample.Tid,
                        Sample.IsWrite ? AccessKind::Write : AccessKind::Read,
                        (Sample.Address - Base) / 4, /*WordSpan=*/1,
                        Sample.LatencyCycles);
  }

  // Candidate: identical streams through 8 ingest threads' shards.
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      for (uint64_t Line = T; Line < NumLines; Line += IngestThreads) {
        uint64_t Base = RegionBase + Line * LineSize;
        CacheLineInfo &Info = Sharded.materializeDetail(Base);
        for (const pmu::Sample &Sample : lineStream(Line, SamplesPerLine))
          Sharded.recordSharded(Base, Info, Sample.Tid, Sample.Tid,
                                Sample.IsWrite ? AccessKind::Write
                                               : AccessKind::Read,
                                (Sample.Address - Base) / 4, /*Span=*/1,
                                Sample.LatencyCycles);
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  Sharded.quiesce();

  for (uint64_t Line = 0; Line < NumLines; ++Line) {
    uint64_t Base = RegionBase + Line * LineSize;
    const CacheLineInfo *Want = Shared.detail(Base);
    const CacheLineInfo *Got = Sharded.detail(Base);
    ASSERT_NE(Want, nullptr);
    ASSERT_NE(Got, nullptr);
    GrainSnapshot WantSnap = Want->snapshot(Base);
    GrainSnapshot GotSnap = Got->snapshot(Base);
    EXPECT_EQ(GotSnap.Accesses, WantSnap.Accesses) << "line " << Line;
    EXPECT_EQ(GotSnap.Writes, WantSnap.Writes) << "line " << Line;
    EXPECT_EQ(GotSnap.Cycles, WantSnap.Cycles) << "line " << Line;
    EXPECT_EQ(GotSnap.Invalidations, WantSnap.Invalidations)
        << "line " << Line;
    ASSERT_EQ(GotSnap.Buckets.size(), WantSnap.Buckets.size());
    for (size_t W = 0; W < WantSnap.Buckets.size(); ++W) {
      EXPECT_EQ(GotSnap.Buckets[W].Reads, WantSnap.Buckets[W].Reads)
          << "line " << Line << " word " << W;
      EXPECT_EQ(GotSnap.Buckets[W].Writes, WantSnap.Buckets[W].Writes)
          << "line " << Line << " word " << W;
      EXPECT_EQ(GotSnap.Buckets[W].Cycles, WantSnap.Buckets[W].Cycles)
          << "line " << Line << " word " << W;
      EXPECT_EQ(GotSnap.Buckets[W].FirstThread, WantSnap.Buckets[W].FirstThread)
          << "line " << Line << " word " << W;
      EXPECT_EQ(GotSnap.Buckets[W].MultiThread, WantSnap.Buckets[W].MultiThread)
          << "line " << Line << " word " << W;
    }
    // Thread slots may surface in chain order vs merge order; compare as
    // tid-sorted sets.
    auto ByTid = [](const ThreadLineStats &A, const ThreadLineStats &B) {
      return A.Tid < B.Tid;
    };
    std::sort(WantSnap.Threads.begin(), WantSnap.Threads.end(), ByTid);
    std::sort(GotSnap.Threads.begin(), GotSnap.Threads.end(), ByTid);
    ASSERT_EQ(GotSnap.Threads.size(), WantSnap.Threads.size());
    for (size_t S = 0; S < WantSnap.Threads.size(); ++S) {
      EXPECT_EQ(GotSnap.Threads[S].Tid, WantSnap.Threads[S].Tid);
      EXPECT_EQ(GotSnap.Threads[S].Accesses, WantSnap.Threads[S].Accesses);
      EXPECT_EQ(GotSnap.Threads[S].Cycles, WantSnap.Threads[S].Cycles);
    }
  }
}

TEST(ShardedIngestTest, PageMergeConservesRemoteEvidence) {
  // Page-grain shards carry NUMA extras; the merge must conserve remote
  // accesses/cycles and per-node populations across an 8-thread hammer on
  // one page split over two nodes.
  constexpr unsigned SamplesPerThread = 10000;
  constexpr uint64_t PageSize = 4096;
  NumaTopology Topology(2, PageSize);
  CacheGeometry Geometry(LineSize);
  PageTable Pages(Topology, Geometry, {{RegionBase, PageSize}});

  // Settle the home deterministically before the threads race.
  ASSERT_EQ(Pages.noteTouch(RegionBase, /*Node=*/0), 0u);

  std::atomic<uint64_t> RemoteIssued{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      SplitMix64 Rng(0x9A6E5A4D ^ T);
      NodeId Node = T % 2;
      bool Remote = Node != 0;
      for (unsigned I = 0; I < SamplesPerThread; ++I) {
        PageInfo &Info = Pages.materializeDetail(RegionBase);
        Pages.recordSharded(RegionBase, Info, static_cast<ThreadId>(T), Node,
                            Rng.nextBool(0.5) ? AccessKind::Write
                                              : AccessKind::Read,
                            /*Bucket=*/Rng.nextBelow(PageSize / LineSize),
                            /*Span=*/1, /*LatencyCycles=*/25,
                            {Remote, Remote ? 1u : 0u});
      }
      if (Remote)
        RemoteIssued.fetch_add(SamplesPerThread);
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  constexpr uint64_t Total = uint64_t(IngestThreads) * SamplesPerThread;
  GrainMergeStats Merge = Pages.quiesce();
  EXPECT_EQ(Merge.Accesses, Total);
  EXPECT_EQ(Merge.RemoteAccesses, RemoteIssued.load());

  const PageInfo *Info = Pages.detail(RegionBase);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->accesses(), Total);
  EXPECT_EQ(Info->remoteAccesses(), RemoteIssued.load());
  EXPECT_EQ(Info->remoteCycles(), RemoteIssued.load() * 25);
  EXPECT_EQ(Info->nodeCount(), 2u);
  std::vector<NodePageStats> Nodes = Info->nodes();
  ASSERT_EQ(Nodes.size(), 2u);
  for (const NodePageStats &Node : Nodes)
    EXPECT_EQ(Node.Accesses, Total / 2) << "node " << Node.Node;
  std::vector<RemoteDistanceStats> ByDistance = Info->remoteByDistance();
  ASSERT_EQ(ByDistance.size(), 1u); // all remote traffic crossed distance 1
  EXPECT_EQ(ByDistance[0].Distance, 1u);
  EXPECT_EQ(ByDistance[0].Accesses, RemoteIssued.load());
  EXPECT_EQ(ByDistance[0].Cycles, RemoteIssued.load() * 25);
}

//===----------------------------------------------------------------------===//
// Profiler: the batched ingest API from many application threads.
//===----------------------------------------------------------------------===//

TEST(ThreadedIngestTest, ProfilerBatchedIngestKeepsPerThreadTotals) {
  constexpr unsigned BatchSize = 64;
  constexpr unsigned BatchesPerThread = 100;
  ProfilerConfig Config;
  Profiler Prof(Config);

  // Enter a parallel phase: main plus one simulated child per ingest
  // thread, so detailed tracking is live while the threads race.
  Prof.threadStarted(0, /*IsMain=*/true, 0);
  for (unsigned T = 1; T <= IngestThreads; ++T)
    Prof.threadStarted(static_cast<ThreadId>(T), /*IsMain=*/false, 10);

  std::vector<std::thread> Threads;
  for (unsigned T = 1; T <= IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      SplitMix64 Rng(0xAB + T);
      std::vector<pmu::Sample> Batch(BatchSize);
      for (unsigned B = 0; B < BatchesPerThread; ++B) {
        for (pmu::Sample &Sample : Batch) {
          Sample.Address =
              Config.HeapArenaBase + Rng.nextBelow(1024) * LineSize;
          Sample.Tid = static_cast<ThreadId>(T);
          Sample.IsWrite = Rng.nextBool(0.7);
          Sample.LatencyCycles = 25;
        }
        Prof.ingestBatch(Batch.data(), Batch.size());
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  constexpr uint64_t PerThread = uint64_t(BatchSize) * BatchesPerThread;
  for (unsigned T = 1; T <= IngestThreads; ++T) {
    const runtime::ThreadProfile &Profile =
        Prof.threadRegistry().profile(static_cast<ThreadId>(T));
    EXPECT_EQ(Profile.SampledAccesses, PerThread) << "thread " << T;
    EXPECT_EQ(Profile.SampledCycles, PerThread * 25) << "thread " << T;
  }
  EXPECT_EQ(Prof.threadRegistry().totalSampledAccesses(),
            PerThread * IngestThreads);
}

//===----------------------------------------------------------------------===//
// Interpose: per-thread buffers drain every sample into the sink exactly
// once, no matter which thread recorded it.
//===----------------------------------------------------------------------===//

TEST(ThreadedIngestTest, InterposeBuffersDeliverEverySampleToSink) {
  constexpr unsigned SamplesPerThread = 10000;
  interpose::resetForTesting();

  std::mutex SinkMutex;
  uint64_t SinkSamples = 0;
  std::map<ThreadId, uint64_t> SinkPerTid;
  interpose::setSampleSink([&](const pmu::Sample *Samples, size_t Count) {
    std::lock_guard<std::mutex> Lock(SinkMutex);
    SinkSamples += Count;
    for (size_t I = 0; I < Count; ++I)
      ++SinkPerTid[Samples[I].Tid];
  });

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < IngestThreads; ++T)
    Threads.emplace_back([&, T] {
      interpose::threadAttach();
      for (unsigned I = 0; I < SamplesPerThread; ++I) {
        pmu::Sample Sample;
        Sample.Address = RegionBase + I * 4;
        Sample.Tid = static_cast<ThreadId>(T);
        Sample.IsWrite = (I & 1) != 0;
        Sample.LatencyCycles = 10;
        interpose::recordSample(Sample);
      }
      interpose::flushThreadSamples();
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  interpose::InterposeSummary Summary = interpose::summary();
  constexpr uint64_t Total = uint64_t(IngestThreads) * SamplesPerThread;
  EXPECT_EQ(Summary.SamplesBuffered, Total);
  EXPECT_EQ(Summary.SamplesIngested, Total);
  {
    std::lock_guard<std::mutex> Lock(SinkMutex);
    EXPECT_EQ(SinkSamples, Total);
    ASSERT_EQ(SinkPerTid.size(), size_t(IngestThreads));
    for (const auto &[Tid, Count] : SinkPerTid)
      EXPECT_EQ(Count, SamplesPerThread) << "tid " << Tid;
  }
  interpose::resetForTesting();
}

} // namespace
