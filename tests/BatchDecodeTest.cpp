//===- tests/BatchDecodeTest.cpp - batched ingestion pipeline tests -------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched ingestion pipeline's correctness suite, in three layers:
///
///  - BatchDecoder edge cases: line-straddling accesses, AccessBytes == 0,
///    end-of-line clamping, and addresses outside shadow coverage, checked
///    against the per-sample decode arithmetic — plus the SIMD-vs-scalar
///    differential (the two kernels must produce identical records for
///    every stream, including non-multiple-of-4 tails);
///
///  - Detector::handleBatch against a handleSample reference over the same
///    stream: detector counters and full per-grain snapshots must match
///    exactly, at line and page granularity, including batches larger than
///    the 256-sample chunk capacity, and the parallel-phase gate must keep
///    stage-1 counting and home publication while recording nothing;
///
///  - Profiler::ingestBatch bookkeeping: a batch carrying more distinct
///    tids than the fixed scratch table (MaxBatchTids) must flush and
///    continue, conserving every thread's sampled totals.
///
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/detect/BatchDecode.h"
#include "core/detect/Detector.h"
#include "core/detect/PageTable.h"
#include "core/detect/ShadowMemory.h"
#include "mem/NumaTopology.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace cheetah;
using namespace cheetah::core;

namespace {

constexpr uint64_t RegionBase = 0x4000'0000;

/// The per-sample decode arithmetic, restated independently: word index,
/// end-of-line-clamped span, and region coverage for one address.
struct ReferenceDecode {
  uint8_t Covered;
  uint32_t Bucket;
  uint32_t Span;
};

ReferenceDecode referenceDecode(const CacheGeometry &Geometry,
                                const std::vector<ShadowRegion> &Regions,
                                uint64_t Address, uint8_t AccessBytes) {
  uint64_t Bytes = AccessBytes ? AccessBytes : 1;
  uint64_t Offset = Geometry.offsetInLine(Address);
  uint64_t Word = Offset / WordSize;
  uint64_t LastByte = Offset + Bytes - 1;
  if (LastByte >= Geometry.lineSize())
    LastByte = Geometry.lineSize() - 1;
  ReferenceDecode Result;
  Result.Bucket = static_cast<uint32_t>(Word);
  Result.Span = static_cast<uint32_t>(LastByte / WordSize - Word + 1);
  Result.Covered = 0;
  for (const ShadowRegion &Region : Regions)
    Result.Covered |=
        Address >= Region.Base && Address - Region.Base < Region.Size;
  return Result;
}

/// Decodes \p Samples through \p Decoder and checks every record against
/// the reference formula.
void expectMatchesReference(const BatchDecoder &Decoder,
                            const CacheGeometry &Geometry,
                            const std::vector<ShadowRegion> &Regions,
                            const std::vector<pmu::Sample> &Samples,
                            uint8_t AccessBytes) {
  ASSERT_LE(Samples.size(), DecodedBatch::Capacity);
  DecodedBatch Out;
  Decoder.decode(Samples.data(), Samples.size(), AccessBytes, Out);
  for (size_t I = 0; I < Samples.size(); ++I) {
    ReferenceDecode Want =
        referenceDecode(Geometry, Regions, Samples[I].Address, AccessBytes);
    EXPECT_EQ(Out.Covered[I], Want.Covered)
        << "sample " << I << " address 0x" << std::hex << Samples[I].Address;
    EXPECT_EQ(Out.Bucket[I], Want.Bucket) << "sample " << I;
    EXPECT_EQ(Out.Span[I], Want.Span) << "sample " << I;
  }
}

std::vector<pmu::Sample> samplesAt(std::initializer_list<uint64_t> Addresses) {
  std::vector<pmu::Sample> Samples;
  for (uint64_t Address : Addresses) {
    pmu::Sample Sample;
    Sample.Address = Address;
    Samples.push_back(Sample);
  }
  return Samples;
}

//===----------------------------------------------------------------------===//
// Decode edge cases against the reference arithmetic
//===----------------------------------------------------------------------===//

TEST(BatchDecodeTest, LineStraddlingAccessesClampToTheLineEnd) {
  CacheGeometry Geometry(64);
  std::vector<ShadowRegion> Regions{{RegionBase, 4096}};
  BatchDecoder Decoder(Geometry, Regions);

  // An 8-byte access starting at offset 60 straddles into the next line:
  // it must mark only the last word of its first line (span 1), exactly
  // like the per-sample decode.
  std::vector<pmu::Sample> Samples = samplesAt(
      {RegionBase + 60, RegionBase + 62, RegionBase + 63, RegionBase + 56});
  DecodedBatch Out;
  Decoder.decode(Samples.data(), Samples.size(), /*AccessBytes=*/8, Out);
  EXPECT_EQ(Out.Bucket[0], 15u);
  EXPECT_EQ(Out.Span[0], 1u); // 60..63 only: clamped at the line end
  EXPECT_EQ(Out.Bucket[1], 15u);
  EXPECT_EQ(Out.Span[1], 1u);
  EXPECT_EQ(Out.Bucket[2], 15u);
  EXPECT_EQ(Out.Span[2], 1u);
  EXPECT_EQ(Out.Bucket[3], 14u);
  EXPECT_EQ(Out.Span[3], 2u); // 56..63: exactly reaches the line end
  expectMatchesReference(Decoder, Geometry, Regions, Samples, 8);
}

TEST(BatchDecodeTest, AccessBytesZeroDecodesAsOneByte) {
  CacheGeometry Geometry(64);
  std::vector<ShadowRegion> Regions{{RegionBase, 4096}};
  BatchDecoder Decoder(Geometry, Regions);

  std::vector<pmu::Sample> Samples =
      samplesAt({RegionBase, RegionBase + 3, RegionBase + 63});
  DecodedBatch Out;
  Decoder.decode(Samples.data(), Samples.size(), /*AccessBytes=*/0, Out);
  for (size_t I = 0; I < Samples.size(); ++I)
    EXPECT_EQ(Out.Span[I], 1u) << "sample " << I;
  EXPECT_EQ(Out.Bucket[0], 0u);
  EXPECT_EQ(Out.Bucket[1], 0u);
  EXPECT_EQ(Out.Bucket[2], 15u);
  expectMatchesReference(Decoder, Geometry, Regions, Samples, 0);
}

TEST(BatchDecodeTest, AddressesOutsideShadowCoverageAreFlaggedUncovered) {
  CacheGeometry Geometry(64);
  // Two disjoint regions, like the real heap arena + global segment pair.
  std::vector<ShadowRegion> Regions{{RegionBase, 4096},
                                    {0x7000'0000, 64 * 64}};
  BatchDecoder Decoder(Geometry, Regions);

  std::vector<pmu::Sample> Samples = samplesAt({
      RegionBase - 1,          // just below the first region
      RegionBase,              // first byte: covered
      RegionBase + 4095,       // last byte: covered
      RegionBase + 4096,       // one past the end
      0x7000'0000 - 64,        // between the regions
      0x7000'0000,             // second region
      0x7000'0000 + 64 * 64,   // one past the second region
      0x10,                    // kernel-ish low address
      0xFFFF'FFFF'FFFF'FFF0ull // top of the address space
  });
  DecodedBatch Out;
  Decoder.decode(Samples.data(), Samples.size(), /*AccessBytes=*/4, Out);
  const uint8_t Want[] = {0, 1, 1, 0, 0, 1, 0, 0, 0};
  for (size_t I = 0; I < Samples.size(); ++I)
    EXPECT_EQ(Out.Covered[I], Want[I]) << "sample " << I;
  expectMatchesReference(Decoder, Geometry, Regions, Samples, 4);
}

//===----------------------------------------------------------------------===//
// SIMD-vs-scalar differential
//===----------------------------------------------------------------------===//

TEST(BatchDecodeTest, ForcedScalarDecoderAlwaysRunsTheScalarKernel) {
  CacheGeometry Geometry(64);
  BatchDecoder Forced(Geometry, {{RegionBase, 4096}}, /*ForceScalar=*/true);
  EXPECT_EQ(Forced.kernel(), DecodeKernel::Scalar);
  EXPECT_STREQ(decodeKernelName(Forced.kernel()), "scalar");

  // The default decoder picks the widest kernel the build + CPU support.
  BatchDecoder Default(Geometry, {{RegionBase, 4096}});
  if (BatchDecoder::simdAvailable()) {
    EXPECT_EQ(Default.kernel(), DecodeKernel::Avx2);
    EXPECT_STREQ(decodeKernelName(Default.kernel()), "avx2");
  } else {
    EXPECT_EQ(Default.kernel(), DecodeKernel::Scalar);
  }
}

TEST(BatchDecodeTest, SimdAndScalarKernelsProduceIdenticalRecords) {
  // Random streams over random geometries: both kernels must agree record
  // for record, at every batch length (covering the SIMD tail handling for
  // counts that are not multiples of the vector width). When the SIMD
  // kernel is unavailable this degenerates to scalar-vs-scalar and the
  // reference check still pins correctness.
  SplitMix64 Rng(0xDEC0DE);
  for (uint64_t LineSize : {16, 32, 64, 128, 256}) {
    CacheGeometry Geometry(LineSize);
    std::vector<ShadowRegion> Regions{{RegionBase, 64 * LineSize},
                                      {0x7000'0000, 16 * LineSize}};
    BatchDecoder Simd(Geometry, Regions);
    BatchDecoder Scalar(Geometry, Regions, /*ForceScalar=*/true);

    for (size_t Count : {size_t(1), size_t(2), size_t(3), size_t(4),
                         size_t(5), size_t(7), size_t(63), size_t(256)}) {
      std::vector<pmu::Sample> Samples(Count);
      for (pmu::Sample &Sample : Samples) {
        // Mix: in-region, straddling the region edges, and far outside.
        switch (Rng.nextBelow(4)) {
        case 0:
          Sample.Address = RegionBase + Rng.nextBelow(64 * LineSize);
          break;
        case 1:
          Sample.Address = 0x7000'0000 + Rng.nextBelow(16 * LineSize);
          break;
        case 2:
          Sample.Address =
              RegionBase - 8 + Rng.nextBelow(16); // straddles the base
          break;
        default:
          Sample.Address = Rng.next();
          break;
        }
      }
      uint8_t AccessBytes = static_cast<uint8_t>(Rng.nextBelow(17));
      DecodedBatch FromSimd, FromScalar;
      Simd.decode(Samples.data(), Count, AccessBytes, FromSimd);
      Scalar.decode(Samples.data(), Count, AccessBytes, FromScalar);
      for (size_t I = 0; I < Count; ++I) {
        ASSERT_EQ(FromSimd.Covered[I], FromScalar.Covered[I])
            << "line " << LineSize << " count " << Count << " sample " << I;
        ASSERT_EQ(FromSimd.Bucket[I], FromScalar.Bucket[I])
            << "line " << LineSize << " count " << Count << " sample " << I;
        ASSERT_EQ(FromSimd.Span[I], FromScalar.Span[I])
            << "line " << LineSize << " count " << Count << " sample " << I;
      }
      expectMatchesReference(Scalar, Geometry, Regions, Samples, AccessBytes);
    }
  }
}

//===----------------------------------------------------------------------===//
// handleBatch vs handleSample: full-state equivalence
//===----------------------------------------------------------------------===//

/// A deterministic mixed stream: mostly covered addresses with straddling
/// offsets and a sprinkling of uncovered ones, from a few threads.
std::vector<pmu::Sample> mixedStream(uint64_t Lines, uint64_t LineSize,
                                     size_t Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<pmu::Sample> Stream(Count);
  for (pmu::Sample &Sample : Stream) {
    Sample.Address = Rng.nextBool(0.9)
                         ? RegionBase + Rng.nextBelow(Lines) * LineSize +
                               Rng.nextBelow(LineSize)
                         : Rng.nextBelow(1ull << 40);
    Sample.Tid = static_cast<ThreadId>(Rng.nextBelow(6));
    Sample.IsWrite = Rng.nextBool(0.6);
    Sample.LatencyCycles = 10 + static_cast<uint32_t>(Rng.nextBelow(50));
  }
  return Stream;
}

void expectSnapshotsEqual(const GrainSnapshot &Got, const GrainSnapshot &Want,
                          uint64_t Grain) {
  EXPECT_EQ(Got.Accesses, Want.Accesses) << "grain " << Grain;
  EXPECT_EQ(Got.Writes, Want.Writes) << "grain " << Grain;
  EXPECT_EQ(Got.Cycles, Want.Cycles) << "grain " << Grain;
  EXPECT_EQ(Got.Invalidations, Want.Invalidations) << "grain " << Grain;
  ASSERT_EQ(Got.Buckets.size(), Want.Buckets.size());
  for (size_t B = 0; B < Want.Buckets.size(); ++B) {
    EXPECT_EQ(Got.Buckets[B].Reads, Want.Buckets[B].Reads)
        << "grain " << Grain << " bucket " << B;
    EXPECT_EQ(Got.Buckets[B].Writes, Want.Buckets[B].Writes)
        << "grain " << Grain << " bucket " << B;
    EXPECT_EQ(Got.Buckets[B].Cycles, Want.Buckets[B].Cycles)
        << "grain " << Grain << " bucket " << B;
    EXPECT_EQ(Got.Buckets[B].FirstThread, Want.Buckets[B].FirstThread)
        << "grain " << Grain << " bucket " << B;
    EXPECT_EQ(Got.Buckets[B].MultiThread, Want.Buckets[B].MultiThread)
        << "grain " << Grain << " bucket " << B;
  }
  ASSERT_EQ(Got.Threads.size(), Want.Threads.size()) << "grain " << Grain;
  for (size_t S = 0; S < Want.Threads.size(); ++S) {
    EXPECT_EQ(Got.Threads[S].Tid, Want.Threads[S].Tid);
    EXPECT_EQ(Got.Threads[S].Accesses, Want.Threads[S].Accesses);
    EXPECT_EQ(Got.Threads[S].Cycles, Want.Threads[S].Cycles);
  }
}

TEST(BatchDecodeTest, HandleBatchMatchesHandleSampleAtLineGranularity) {
  constexpr uint64_t NumLines = 128;
  constexpr uint64_t LineSize = 64;
  CacheGeometry Geometry(LineSize);
  DetectorConfig Config;

  // One stream, larger than the 256-sample chunk capacity so handleBatch
  // must chunk internally; delivered whole to the batch detector and one
  // sample at a time to the reference.
  std::vector<pmu::Sample> Stream = mixedStream(NumLines, LineSize,
                                                /*Count=*/3000, /*Seed=*/7);

  ShadowMemory WantShadow(Geometry, {{RegionBase, NumLines * LineSize}});
  Detector Want(Geometry, WantShadow, Config);
  size_t WantRecorded = 0;
  for (const pmu::Sample &Sample : Stream)
    WantRecorded += Want.handleSample(Sample, /*InParallelPhase=*/true);

  ShadowMemory GotShadow(Geometry, {{RegionBase, NumLines * LineSize}});
  Detector Got(Geometry, GotShadow, Config);
  size_t GotRecorded =
      Got.handleBatch(Stream.data(), Stream.size(), /*InParallelPhase=*/true);

  Want.quiesce();
  Got.quiesce();

  EXPECT_EQ(GotRecorded, WantRecorded);
  DetectorStats WantStats = Want.stats(), GotStats = Got.stats();
  EXPECT_EQ(GotStats.SamplesSeen, WantStats.SamplesSeen);
  EXPECT_EQ(GotStats.SamplesFiltered, WantStats.SamplesFiltered);
  EXPECT_EQ(GotStats.SamplesRecorded, WantStats.SamplesRecorded);
  EXPECT_EQ(GotStats.Invalidations, WantStats.Invalidations);
  EXPECT_EQ(GotShadow.materializedLines(), WantShadow.materializedLines());

  std::map<uint64_t, GrainSnapshot> WantLines;
  WantShadow.forEachDetail([&](uint64_t Base, const CacheLineInfo &Info) {
    WantLines.emplace(Base, Info.snapshot(Base));
  });
  size_t GotLines = 0;
  GotShadow.forEachDetail([&](uint64_t Base, const CacheLineInfo &Info) {
    ++GotLines;
    auto It = WantLines.find(Base);
    ASSERT_NE(It, WantLines.end()) << "line only in batch run";
    expectSnapshotsEqual(Info.snapshot(Base), It->second, Base);
  });
  EXPECT_EQ(GotLines, WantLines.size());
}

TEST(BatchDecodeTest, HandleBatchMatchesHandleSampleAtPageGranularity) {
  constexpr uint64_t PageSize = 4096;
  constexpr uint64_t NumPages = 8;
  constexpr uint64_t LineSize = 64;
  NumaTopology Topology(4, PageSize);
  CacheGeometry Geometry(LineSize);
  DetectorConfig Config;
  Config.TrackPages = true;

  std::vector<pmu::Sample> Stream =
      mixedStream(NumPages * PageSize / LineSize, LineSize,
                  /*Count=*/2500, /*Seed=*/11);

  ShadowMemory WantShadow(Geometry, {{RegionBase, NumPages * PageSize}});
  PageTable WantPages(Topology, Geometry, {{RegionBase, NumPages * PageSize}});
  Detector Want(Geometry, WantShadow, Config);
  Want.attachPageTable(WantPages, Topology);
  for (const pmu::Sample &Sample : Stream)
    Want.handleSample(Sample, /*InParallelPhase=*/true);

  ShadowMemory GotShadow(Geometry, {{RegionBase, NumPages * PageSize}});
  PageTable GotPages(Topology, Geometry, {{RegionBase, NumPages * PageSize}});
  Detector Got(Geometry, GotShadow, Config);
  Got.attachPageTable(GotPages, Topology);
  Got.handleBatch(Stream.data(), Stream.size(), /*InParallelPhase=*/true);

  Want.quiesce();
  Got.quiesce();

  DetectorStats WantStats = Want.stats(), GotStats = Got.stats();
  EXPECT_EQ(GotStats.SamplesSeen, WantStats.SamplesSeen);
  EXPECT_EQ(GotStats.SamplesFiltered, WantStats.SamplesFiltered);
  EXPECT_EQ(GotStats.SamplesRecorded, WantStats.SamplesRecorded);
  EXPECT_EQ(GotStats.Invalidations, WantStats.Invalidations);
  EXPECT_EQ(GotStats.PageSamplesRecorded, WantStats.PageSamplesRecorded);
  EXPECT_EQ(GotStats.PageInvalidations, WantStats.PageInvalidations);
  EXPECT_EQ(GotStats.RemoteSamples, WantStats.RemoteSamples);

  // Page state: homes and full snapshots must match page for page.
  EXPECT_EQ(GotPages.materializedPages(), WantPages.materializedPages());
  for (uint64_t P = 0; P < NumPages; ++P) {
    uint64_t Base = RegionBase + P * PageSize;
    EXPECT_EQ(GotPages.homeNode(Base), WantPages.homeNode(Base))
        << "page " << P;
    EXPECT_EQ(GotPages.writeCount(Base), WantPages.writeCount(Base))
        << "page " << P;
    const PageInfo *WantInfo = WantPages.detail(Base);
    const PageInfo *GotInfo = GotPages.detail(Base);
    ASSERT_EQ(GotInfo != nullptr, WantInfo != nullptr) << "page " << P;
    if (WantInfo)
      expectSnapshotsEqual(GotInfo->snapshot(Base), WantInfo->snapshot(Base),
                           Base);
  }
  // Line state must be unaffected by the page stage running first.
  std::map<uint64_t, GrainSnapshot> WantLines;
  WantShadow.forEachDetail([&](uint64_t Base, const CacheLineInfo &Info) {
    WantLines.emplace(Base, Info.snapshot(Base));
  });
  GotShadow.forEachDetail([&](uint64_t Base, const CacheLineInfo &Info) {
    auto It = WantLines.find(Base);
    ASSERT_NE(It, WantLines.end());
    expectSnapshotsEqual(Info.snapshot(Base), It->second, Base);
  });
}

TEST(BatchDecodeTest, SerialPhaseBatchesCountWritesAndPublishHomesOnly) {
  constexpr uint64_t PageSize = 4096;
  constexpr uint64_t LineSize = 64;
  NumaTopology Topology(2, PageSize);
  CacheGeometry Geometry(LineSize);
  DetectorConfig Config; // OnlyParallelPhases = true
  Config.TrackPages = true;
  ShadowMemory Shadow(Geometry, {{RegionBase, PageSize}});
  PageTable Pages(Topology, Geometry, {{RegionBase, PageSize}});
  Detector Detect(Geometry, Shadow, Config);
  Detect.attachPageTable(Pages, Topology);

  std::vector<pmu::Sample> Batch(64);
  for (size_t I = 0; I < Batch.size(); ++I) {
    Batch[I].Address = RegionBase + (I % 16) * LineSize;
    Batch[I].Tid = static_cast<ThreadId>(I % 4);
    Batch[I].IsWrite = true;
    Batch[I].LatencyCycles = 20;
  }
  size_t Recorded =
      Detect.handleBatch(Batch.data(), Batch.size(), /*InParallelPhase=*/false);

  // The serial-phase gate: stage-1 counters advanced and the first-touch
  // home was published, but nothing reached detailed tracking.
  EXPECT_EQ(Recorded, 0u);
  DetectorStats Stats = Detect.stats();
  EXPECT_EQ(Stats.SamplesSeen, Batch.size());
  EXPECT_EQ(Stats.SamplesRecorded, 0u);
  EXPECT_EQ(Stats.PageSamplesRecorded, 0u);
  EXPECT_EQ(Shadow.materializedLines(), 0u);
  EXPECT_EQ(Pages.materializedPages(), 0u);
  EXPECT_EQ(Shadow.writeCount(RegionBase), 4u); // 64 samples over 16 lines
  EXPECT_EQ(Pages.writeCount(RegionBase), uint32_t(Batch.size()));
  EXPECT_EQ(Pages.homeNode(RegionBase), Topology.nodeOf(0));

  // A later parallel batch sees the accumulated counts: every line is
  // already past the threshold, so its first parallel sample records.
  Detect.handleBatch(Batch.data(), Batch.size(), /*InParallelPhase=*/true);
  EXPECT_EQ(Shadow.materializedLines(), 16u);
  EXPECT_EQ(Detect.stats().SamplesRecorded, Batch.size());
}

//===----------------------------------------------------------------------===//
// Profiler::ingestBatch tid-scratch overflow
//===----------------------------------------------------------------------===//

TEST(BatchDecodeTest, BatchWithThirtyTwoTidsConservesPerThreadTotals) {
  // One batch interleaving 32 distinct tids overflows the profiler's
  // 16-entry per-batch scratch table twice; the flush-and-continue path
  // must conserve every thread's sampled totals exactly.
  constexpr unsigned NumTids = 32;
  constexpr unsigned SamplesPerTid = 8;
  ProfilerConfig Config;
  Profiler Prof(Config);
  Prof.threadStarted(0, /*IsMain=*/true, 0);
  for (unsigned T = 1; T <= NumTids; ++T)
    Prof.threadStarted(static_cast<ThreadId>(T), /*IsMain=*/false, 10);

  // Interleave round-robin so every MaxBatchTids-sized window carries the
  // maximum tid churn.
  std::vector<pmu::Sample> Batch;
  for (unsigned Round = 0; Round < SamplesPerTid; ++Round)
    for (unsigned T = 1; T <= NumTids; ++T) {
      pmu::Sample Sample;
      Sample.Address = Config.HeapArenaBase + (Batch.size() % 512) * 64;
      Sample.Tid = static_cast<ThreadId>(T);
      Sample.IsWrite = true;
      Sample.LatencyCycles = 30 + T;
      Batch.push_back(Sample);
    }
  Prof.ingestBatch(Batch.data(), Batch.size());

  for (unsigned T = 1; T <= NumTids; ++T) {
    const runtime::ThreadProfile &Profile =
        Prof.threadRegistry().profile(static_cast<ThreadId>(T));
    EXPECT_EQ(Profile.SampledAccesses, SamplesPerTid) << "tid " << T;
    EXPECT_EQ(Profile.SampledCycles, uint64_t(SamplesPerTid) * (30 + T))
        << "tid " << T;
  }
  EXPECT_EQ(Prof.threadRegistry().totalSampledAccesses(),
            uint64_t(NumTids) * SamplesPerTid);
  EXPECT_EQ(Prof.detector().stats().SamplesSeen, Batch.size());
}

} // namespace
