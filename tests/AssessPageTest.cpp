//===- tests/AssessPageTest.cpp - page-level assessment tests --------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The page-granularity assessment (EQ.1–EQ.4 with the no-remote-access
/// AverCycles baseline), tested two ways:
///
///  - Unit: Assessor::averageLocalLatency's baseline chain (page-local →
///    run-wide local → serial → default) and assessPage's clamped EQ.2–EQ.4
///    on hand-constructed profiles with closed-form expectations.
///  - Differential, end to end through ProfileSession: the broken NUMA
///    workloads' significant page findings carry predictedImprovement
///    above the workload's declared floor, while the "fixed" variants
///    predict ~1.0 on every tracked page — the detect→assess→fix loop the
///    paper's Table 1 demonstrates for objects, at page granularity.
///
//===----------------------------------------------------------------------===//

#include "core/assess/Assessor.h"
#include "driver/ProfileSession.h"
#include "mem/NumaTopology.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::core;

namespace {

constexpr uint64_t PageSize = 4096;

//===----------------------------------------------------------------------===//
// Baseline chain
//===----------------------------------------------------------------------===//

struct AssessorHarness {
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  AssessorConfig Config;

  Assessor make() { return Assessor(Registry, Phases, Config); }
};

TEST(PageBaselineTest, PageLocalAveragePreferredWhenPopulated) {
  AssessorHarness H;
  Assessor Assess = H.make();

  ObjectAccessProfile Profile;
  Profile.SampledAccesses = 100;
  Profile.SampledCycles = 2000;
  Profile.RemoteAccesses = 50;
  Profile.RemoteCycles = 1500;
  // 50 local accesses over 500 cycles: baseline 10, measured not default.
  bool UsedDefault = true;
  EXPECT_DOUBLE_EQ(Assess.averageLocalLatency(Profile, &UsedDefault), 10.0);
  EXPECT_FALSE(UsedDefault);
}

TEST(PageBaselineTest, RunWideLocalAverageWhenPageIsFullyRemote) {
  AssessorHarness H;
  Assessor Assess = H.make();
  Assess.setLocalLatencyTotals(/*Accesses=*/1000, /*Cycles=*/4000);

  ObjectAccessProfile Profile;
  Profile.SampledAccesses = 64;
  Profile.SampledCycles = 64 * 23;
  Profile.RemoteAccesses = 64;
  Profile.RemoteCycles = 64 * 23;
  bool UsedDefault = true;
  EXPECT_DOUBLE_EQ(Assess.averageLocalLatency(Profile, &UsedDefault), 4.0);
  EXPECT_FALSE(UsedDefault);
}

TEST(PageBaselineTest, SerialThenDefaultChainWhenNoLocalEvidence) {
  AssessorHarness H;
  H.Config.DefaultSerialLatency = 7.0;
  H.Config.MinSerialSamples = 4;
  Assessor Assess = H.make();

  ObjectAccessProfile Remote;
  Remote.SampledAccesses = 64;
  Remote.SampledCycles = 640;
  Remote.RemoteAccesses = 64;
  Remote.RemoteCycles = 640;

  // No local samples anywhere, no serial stats: the config default.
  bool UsedDefault = false;
  EXPECT_DOUBLE_EQ(Assess.averageLocalLatency(Remote, &UsedDefault), 7.0);
  EXPECT_TRUE(UsedDefault);

  // Serial stats beat the default once populated.
  OnlineStats Serial;
  for (int I = 0; I < 8; ++I)
    Serial.add(5.0);
  Assess.setSerialLatencyStats(Serial);
  EXPECT_DOUBLE_EQ(Assess.averageLocalLatency(Remote, &UsedDefault), 5.0);
  EXPECT_FALSE(UsedDefault);
}

//===----------------------------------------------------------------------===//
// assessPage closed form
//===----------------------------------------------------------------------===//

/// Two workers: worker 1 all-local (100 samples at 10 cycles, runtime
/// 60,000), worker 2 all-remote on the page (100 samples at 30 cycles,
/// runtime 100,000). Serial phases of 1,000 cycles on both sides.
struct TwoWorkerFixture {
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  AssessorConfig Config;
  ObjectAccessProfile Profile;

  TwoWorkerFixture() {
    Registry.threadStarted(0, true, 0);
    Registry.threadStarted(1, false, 1000);
    Registry.threadStarted(2, false, 1000);
    for (int S = 0; S < 100; ++S) {
      Registry.recordSample(1, 10);
      Registry.recordSample(2, 30);
    }
    Registry.threadFinished(1, 61000);
    Registry.threadFinished(2, 101000);
    Registry.threadFinished(0, 102000);

    Phases.programBegin(0, 0);
    Phases.threadCreated(1, 0, 1000);
    Phases.threadCreated(2, 0, 1000);
    Phases.threadFinished(1, 61000);
    Phases.threadFinished(2, 101000);
    Phases.programEnd(102000);

    // The page: worker 1 contributes 50 local accesses at 10 cycles,
    // worker 2 contributes 50 remote accesses at 30 cycles.
    Profile.SampledAccesses = 100;
    Profile.SampledWrites = 100;
    Profile.SampledCycles = 50 * 10 + 50 * 30;
    Profile.RemoteAccesses = 50;
    Profile.RemoteCycles = 50 * 30;
    Profile.PerThread.push_back({1, 50, 500});
    Profile.PerThread.push_back({2, 50, 1500});
  }
};

TEST(AssessPageTest, ClosedFormPredictionForRemoteWorker) {
  TwoWorkerFixture F;
  Assessor Assess(F.Registry, F.Phases, F.Config);
  Assessment Result = Assess.assessPage(F.Profile, /*AppRuntime=*/102000);

  // Baseline: 500 local cycles / 50 local accesses = 10.
  EXPECT_DOUBLE_EQ(Result.AverageNoFsLatency, 10.0);
  EXPECT_FALSE(Result.UsedDefaultLatency);

  // Worker 2 (EQ.2/EQ.3): Cycles_t 3000, C_O 1500, PredCycles_O
  // min(10*50, 1500) = 500 -> PredCycles 2000 -> PredRT 100000*2/3.
  const ThreadPrediction *Remote = nullptr;
  for (const ThreadPrediction &P : Result.Threads)
    if (P.Tid == 2)
      Remote = &P;
  ASSERT_NE(Remote, nullptr);
  EXPECT_NEAR(Remote->PredictedCycles, 2000.0, 1e-9);
  EXPECT_NEAR(Remote->PredictedRuntime, 100000.0 * 2000.0 / 3000.0, 1e-6);

  // EQ.4: serial 1000 + parallel max(60000, 66666.7) + serial 1000.
  EXPECT_NEAR(Result.PredictedAppRuntime, 1000.0 + 200000.0 / 3.0 + 1000.0,
              1e-3);
  EXPECT_NEAR(Result.ImprovementFactor,
              102000.0 / (2000.0 + 200000.0 / 3.0), 1e-6);
  EXPECT_GT(Result.ImprovementFactor, 1.0);
  EXPECT_TRUE(Result.ForkJoinModel);
}

TEST(AssessPageTest, NoRemoteExcessPredictsExactlyOne) {
  TwoWorkerFixture F;
  // Rewrite the profile so every thread's object latency equals the local
  // baseline: nothing is removable, the clamp pins improvement at 1.
  F.Profile.SampledCycles = 100 * 10;
  F.Profile.RemoteAccesses = 0;
  F.Profile.RemoteCycles = 0;
  F.Profile.PerThread.clear();
  F.Profile.PerThread.push_back({1, 50, 500});
  F.Profile.PerThread.push_back({2, 50, 500});

  Assessor Assess(F.Registry, F.Phases, F.Config);
  Assessment Result = Assess.assessPage(F.Profile, 102000);
  EXPECT_DOUBLE_EQ(Result.ImprovementFactor, 1.0);
  EXPECT_DOUBLE_EQ(Result.PredictedAppRuntime, 102000.0);
}

TEST(AssessPageTest, PredictionNeverBelowRealMinusObjectCycles) {
  // The clamp contract: a page fix cannot remove more cycles from a
  // thread than the thread spent on the page.
  TwoWorkerFixture F;
  Assessor Assess(F.Registry, F.Phases, F.Config);
  Assessment Result = Assess.assessPage(F.Profile, 102000);
  for (const ThreadPrediction &P : Result.Threads) {
    EXPECT_GE(P.PredictedCycles + 1e-9,
              static_cast<double>(P.SampledCycles) -
                  static_cast<double>(P.CyclesOnObject));
    EXPECT_LE(P.PredictedRuntime, static_cast<double>(P.RealRuntime) + 1e-9);
  }
  EXPECT_GE(Result.ImprovementFactor, 1.0);
}

//===----------------------------------------------------------------------===//
// Differential end to end: broken predicts > floor, fixed predicts ~1.0
//===----------------------------------------------------------------------===//

driver::SessionConfig assessSessionConfig(bool Fix) {
  driver::SessionConfig Config;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
  Config.Profiler.Topology = NumaTopology(2, PageSize);
  Config.Profiler.Detect.TrackPages = true;
  Config.Workload.Threads = 8;
  Config.Workload.NumaNodes = 2;
  Config.Workload.PageBytes = PageSize;
  Config.Workload.FixFalseSharing = Fix;
  return Config;
}

class PageAssessDifferentialTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(PageAssessDifferentialTest, BrokenPredictsAboveFloorFixedPredictsOne) {
  auto Workload = workloads::createWorkload(GetParam());
  ASSERT_NE(Workload, nullptr);
  double Floor = Workload->expectedPageImprovementFloor();
  ASSERT_GT(Floor, 1.0) << "NUMA workloads must declare a page floor";

  // Broken: every significant page finding predicts at least the floor.
  driver::SessionResult Broken =
      driver::runWorkload(*Workload, assessSessionConfig(/*Fix=*/false));
  ASSERT_FALSE(Broken.Profile.PageReports.empty());
  for (const PageSharingReport &Report : Broken.Profile.PageReports) {
    EXPECT_GE(Report.Impact.ImprovementFactor, Floor)
        << "page " << Report.PageBase;
    EXPECT_FALSE(Report.Impact.UsedDefaultLatency)
        << "the run must supply a measured local baseline";
  }

  // Findings stream highest predicted improvement first.
  const auto &All = Broken.Profile.AllPageInstances;
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_GE(All[I - 1].Impact.ImprovementFactor,
              All[I].Impact.ImprovementFactor);

  // The prediction is anchored to reality: it must not wildly exceed the
  // padded rerun's actual speedup (the rerun may gain extra, e.g. a
  // parallelized init phase the assessment deliberately ignores).
  driver::SessionConfig Native = assessSessionConfig(/*Fix=*/true);
  Native.EnableProfiler = false;
  driver::SessionResult Fixed = driver::runWorkload(*Workload, Native);
  double Actual = static_cast<double>(Broken.Run.TotalCycles) /
                  static_cast<double>(Fixed.Run.TotalCycles);
  EXPECT_LE(Broken.Profile.PageReports.front().Impact.ImprovementFactor,
            Actual * 1.3);

  // Fixed variant under the profiler: nothing left to predict — every
  // tracked page, significant or not, sits at 1.0.
  driver::SessionResult FixedProfiled =
      driver::runWorkload(*Workload, assessSessionConfig(/*Fix=*/true));
  EXPECT_TRUE(FixedProfiled.Profile.PageReports.empty());
  for (const PageSharingReport &Report :
       FixedProfiled.Profile.AllPageInstances)
    EXPECT_NEAR(Report.Impact.ImprovementFactor, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(NumaWorkloads, PageAssessDifferentialTest,
                         ::testing::Values("numa_interleaved",
                                           "numa_first_touch"));

TEST(PageAssessEndToEndTest, InterleavedPredictionMatchesPaddedRerun) {
  // The headline Table-1 property at page granularity: for the
  // node-interleaved hammer the predicted and actual improvement agree
  // closely (the fix changes placement only, nothing else). Both runs
  // keep the profiler attached so its overhead cancels out of the ratio —
  // the prediction is made from (and about) profiled execution.
  auto Workload = workloads::createWorkload("numa_interleaved");
  driver::SessionResult Broken =
      driver::runWorkload(*Workload, assessSessionConfig(false));
  driver::SessionResult Fixed =
      driver::runWorkload(*Workload, assessSessionConfig(true));

  ASSERT_FALSE(Broken.Profile.PageReports.empty());
  double Predicted =
      Broken.Profile.PageReports.front().Impact.ImprovementFactor;
  double Actual = static_cast<double>(Broken.Run.TotalCycles) /
                  static_cast<double>(Fixed.Run.TotalCycles);
  EXPECT_NEAR(Predicted / Actual, 1.0, 0.25);
}

//===----------------------------------------------------------------------===//
// Asymmetric distances: the worst finding is rankable only with distance
//===----------------------------------------------------------------------===//

/// The asymmetric4 reference machine (topologies/asymmetric4.json): four
/// nodes, non-uniform SLIT distances, threads pinned round-robin.
driver::SessionConfig asymmetricSessionConfig(bool Fix, bool UniformDistances) {
  NumaTopologySpec Spec;
  Spec.Nodes = 4;
  Spec.PageSize = PageSize;
  if (!UniformDistances)
    Spec.Distances = {{0, 16, 32, 48},
                      {16, 0, 48, 32},
                      {32, 48, 0, 16},
                      {48, 32, 16, 0}};
  Spec.ThreadPinning = {0, 1, 2, 3, 0, 1, 2, 3};
  NumaTopology Topology;
  std::string Error;
  EXPECT_TRUE(NumaTopology::fromSpec(Spec, Topology, Error)) << Error;

  driver::SessionConfig Config;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
  Config.Profiler.Topology = Topology;
  Config.Profiler.Detect.TrackPages = true;
  Config.Workload.Threads = 8;
  Config.Workload.NumaNodes = 4;
  Config.Workload.PageBytes = PageSize;
  Config.Workload.ThreadNodes = Topology.threadPinning();
  Config.Workload.FixFalseSharing = Fix;
  return Config;
}

TEST(PageAssessEndToEndTest, AsymmetricWorstFindingNeedsDistanceToRank) {
  auto Workload = workloads::createWorkload("numa_asymmetric");
  ASSERT_NE(Workload, nullptr);
  double Floor = Workload->expectedPageImprovementFloor();
  ASSERT_GT(Floor, 1.0);

  // Broken on the asymmetric machine: the top finding is the *far* site
  // (distance 48 from the first-toucher's node), predicts at least the
  // declared floor, and carries a breakdown conserving its remote totals.
  driver::SessionResult Broken = driver::runWorkload(
      *Workload, asymmetricSessionConfig(/*Fix=*/false,
                                         /*UniformDistances=*/false));
  ASSERT_FALSE(Broken.Profile.PageReports.empty());
  const PageSharingReport &Top = Broken.Profile.PageReports.front();
  EXPECT_GE(Top.Impact.ImprovementFactor, Floor);
  ASSERT_EQ(Top.Objects.size(), 1u);
  EXPECT_EQ(Top.Objects.front(), "numa_asymmetric_node3");
  ASSERT_FALSE(Top.RemoteByDistance.empty());
  uint64_t BucketAccesses = 0, BucketCycles = 0;
  for (const RemoteDistanceStats &Bucket : Top.RemoteByDistance) {
    BucketAccesses += Bucket.Accesses;
    BucketCycles += Bucket.Cycles;
  }
  EXPECT_EQ(BucketAccesses, Top.RemoteAccesses);
  EXPECT_EQ(BucketCycles, Top.RemoteLatencyCycles);
  EXPECT_EQ(Top.RemoteByDistance.front().Distance, 48u);

  // Every remote group does the same amount of work, so under *uniform*
  // distances all remote threads are equally slow and no single site's
  // fix can shorten the phase: every finding sits below the floor. The
  // far site is rankable only because the distance matrix exists.
  driver::SessionResult Uniform = driver::runWorkload(
      *Workload, asymmetricSessionConfig(/*Fix=*/false,
                                         /*UniformDistances=*/true));
  for (const PageSharingReport &Report : Uniform.Profile.PageReports)
    EXPECT_LT(Report.Impact.ImprovementFactor, Floor)
        << "uniform distances must not rank any site";

  // Fixed on the asymmetric machine: no significant findings, and every
  // tracked page predicts ~1.0.
  driver::SessionResult Fixed = driver::runWorkload(
      *Workload, asymmetricSessionConfig(/*Fix=*/true,
                                         /*UniformDistances=*/false));
  EXPECT_TRUE(Fixed.Profile.PageReports.empty());
  for (const PageSharingReport &Report : Fixed.Profile.AllPageInstances)
    EXPECT_NEAR(Report.Impact.ImprovementFactor, 1.0, 0.05);
}

TEST(PageAssessEndToEndTest, UmaTopologyPredictsNothing) {
  auto Workload = workloads::createWorkload("numa_interleaved");
  driver::SessionConfig Config = assessSessionConfig(false);
  Config.Profiler.Topology = NumaTopology(1, PageSize);
  Config.Workload.NumaNodes = 1;
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  for (const PageSharingReport &Report : Result.Profile.AllPageInstances) {
    // Everything is local; only sub-percent thread-to-thread latency noise
    // (cold misses landing on different threads) is predictable away.
    EXPECT_GE(Report.Impact.ImprovementFactor, 1.0);
    EXPECT_LT(Report.Impact.ImprovementFactor, 1.05);
  }
}

} // namespace
