//===- tests/WorkloadsTest.cpp - workload model tests ----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every workload model must build, run deterministically, respect its
/// thread/phase structure, and carry (or not carry) the false sharing the
/// paper attributes to it. Parameterized over the full registry.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "workloads/Patterns.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::workloads;

namespace {

driver::SessionConfig smallConfig(uint32_t Threads = 4, double Scale = 0.1) {
  driver::SessionConfig Config;
  Config.Workload.Threads = Threads;
  Config.Workload.Scale = Scale;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(512);
  return Config;
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

TEST(PatternsTest, WriteInitCoversRegionExactly) {
  auto Gen = writeInit(0x1000, 64, 0, 8);
  int Writes = 0;
  uint64_t Last = 0;
  while (Gen.next()) {
    ASSERT_TRUE(Gen.value().isMemory());
    EXPECT_TRUE(Gen.value().Access.isWrite());
    Last = Gen.value().Access.Address;
    ++Writes;
  }
  EXPECT_EQ(Writes, 8);
  EXPECT_EQ(Last, 0x1000u + 56);
}

TEST(PatternsTest, ReadScanRepeats) {
  auto Gen = readScan(0x1000, 32, 3, 0, 4);
  int Reads = 0;
  while (Gen.next())
    ++Reads;
  EXPECT_EQ(Reads, 8 * 3);
}

TEST(PatternsTest, AccumulateLoopMixesReadsAndWrites) {
  AccumulateParams Params;
  Params.InputBase = 0x1000;
  Params.InputBytes = 1024;
  Params.ReadsPerItem = 2;
  Params.AccumBase = 0x2000;
  Params.AccumBytes = 64;
  Params.WritesPerItem = 1;
  Params.ComputePerItem = 3;
  Params.Items = 10;
  auto Gen = accumulateLoop(Params);
  int Reads = 0, Writes = 0, Computes = 0;
  while (Gen.next()) {
    const ThreadEvent &Event = Gen.value();
    if (!Event.isMemory())
      ++Computes;
    else if (Event.Access.isWrite())
      ++Writes;
    else
      ++Reads;
  }
  EXPECT_EQ(Reads, 20);
  EXPECT_EQ(Writes, 10);
  EXPECT_EQ(Computes, 10);
}

TEST(PatternsTest, ComputeLoopAccessCadence) {
  auto Gen = computeLoop(0x1000, 64, 12, 5, 4);
  int Writes = 0, Computes = 0;
  while (Gen.next()) {
    if (Gen.value().isMemory())
      ++Writes;
    else
      ++Computes;
  }
  EXPECT_EQ(Computes, 12);
  EXPECT_EQ(Writes, 3); // iterations 0, 4, 8
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(WorkloadRegistryTest, AllSeventeenPlusMicroPresent) {
  auto All = createAllWorkloads();
  EXPECT_EQ(All.size(), 21u); // 8 Phoenix + 9 PARSEC + fig1 + 3 NUMA
  int Phoenix = 0, Parsec = 0, Micro = 0, Numa = 0;
  for (const auto &Workload : All) {
    if (Workload->suite() == "phoenix")
      ++Phoenix;
    else if (Workload->suite() == "parsec")
      ++Parsec;
    else if (Workload->suite() == "micro")
      ++Micro;
    else if (Workload->suite() == "numa")
      ++Numa;
  }
  EXPECT_EQ(Phoenix, 8);
  EXPECT_EQ(Parsec, 9);
  EXPECT_EQ(Micro, 1);
  EXPECT_EQ(Numa, 3);
}

TEST(WorkloadRegistryTest, LookupByName) {
  EXPECT_NE(createWorkload("linear_regression"), nullptr);
  EXPECT_NE(createWorkload("streamcluster"), nullptr);
  EXPECT_EQ(createWorkload("no_such_app"), nullptr);
  EXPECT_NE(createWorkload("numa_interleaved"), nullptr);
  EXPECT_NE(createWorkload("numa_first_touch"), nullptr);
  EXPECT_NE(createWorkload("numa_asymmetric"), nullptr);
  EXPECT_EQ(allWorkloadNames().size(), 21u);
}

TEST(WorkloadRegistryTest, PaperAttributesAreConsistent) {
  // The two significant instances and the three minor ones, per the paper.
  EXPECT_TRUE(createWorkload("linear_regression")->hasSignificantFalseSharing());
  EXPECT_TRUE(createWorkload("streamcluster")->hasSignificantFalseSharing());
  EXPECT_TRUE(createWorkload("fig1_array")->hasSignificantFalseSharing());
  EXPECT_TRUE(createWorkload("histogram")->hasMinorFalseSharing());
  EXPECT_TRUE(createWorkload("reverse_index")->hasMinorFalseSharing());
  EXPECT_TRUE(createWorkload("word_count")->hasMinorFalseSharing());
  EXPECT_FALSE(createWorkload("blackscholes")->hasSignificantFalseSharing());
  EXPECT_FALSE(createWorkload("swaptions")->hasMinorFalseSharing());
}

//===----------------------------------------------------------------------===//
// Every workload builds and runs (parameterized)
//===----------------------------------------------------------------------===//

class EveryWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryWorkloadTest, BuildsAndRunsAtSmallScale) {
  auto Workload = createWorkload(GetParam());
  ASSERT_NE(Workload, nullptr);
  driver::SessionResult Result =
      driver::runWorkload(*Workload, smallConfig());
  EXPECT_GT(Result.Run.TotalCycles, 0u);
  EXPECT_GT(Result.Run.Threads.size(), 1u);
  EXPECT_TRUE(Result.Profile.ForkJoinVerified);
  EXPECT_EQ(Result.Profile.Detection.SamplesFiltered, 0u);
}

TEST_P(EveryWorkloadTest, DeterministicAcrossRuns) {
  auto Workload = createWorkload(GetParam());
  driver::SessionConfig Config = smallConfig();
  driver::SessionResult A = driver::runWorkload(*Workload, Config);
  driver::SessionResult B = driver::runWorkload(*Workload, Config);
  EXPECT_EQ(A.Run.TotalCycles, B.Run.TotalCycles);
  EXPECT_EQ(A.Profile.SamplesDelivered, B.Profile.SamplesDelivered);
  EXPECT_EQ(A.Profile.Reports.size(), B.Profile.Reports.size());
}

TEST_P(EveryWorkloadTest, ThreadCountMatchesConfig) {
  auto Workload = createWorkload(GetParam());
  driver::SessionConfig Config = smallConfig(/*Threads=*/3);
  core::Profiler Profiler(Config.Profiler);
  sim::ForkJoinProgram Program =
      driver::buildProgram(*Workload, Profiler, Config);
  for (const sim::PhaseSpec &Phase : Program.Phases)
    if (!Phase.ParallelBodies.empty())
      EXPECT_EQ(Phase.ParallelBodies.size(), 3u);
}

TEST_P(EveryWorkloadTest, FixedVariantRunsFasterOrEqual) {
  auto Workload = createWorkload(GetParam());
  driver::SessionConfig Config = smallConfig(8, 0.2);
  Config.EnableProfiler = false;
  driver::SessionResult Unfixed = driver::runWorkload(*Workload, Config);
  Config.Workload.FixFalseSharing = true;
  driver::SessionResult Fixed = driver::runWorkload(*Workload, Config);
  // Padding must never slow a run down materially (2% tolerance for layout
  // noise in workloads without false sharing).
  EXPECT_LT(static_cast<double>(Fixed.Run.TotalCycles),
            static_cast<double>(Unfixed.Run.TotalCycles) * 1.02);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EveryWorkloadTest,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &Info) { return Info.param; });

//===----------------------------------------------------------------------===//
// Detection outcomes per workload class
//===----------------------------------------------------------------------===//

TEST(WorkloadDetectionTest, LinearRegressionDetectedAtItsCallsite) {
  auto Workload = createWorkload("linear_regression");
  driver::SessionConfig Config = smallConfig(8, 1.0);
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  const core::FalseSharingReport *Report =
      Result.Profile.findReport("linear_regression-pthread.c:139");
  ASSERT_NE(Report, nullptr);
  EXPECT_EQ(Report->Kind, core::SharingKind::FalseSharing);
  EXPECT_GT(Report->Impact.ImprovementFactor, 1.5);
  EXPECT_GE(Report->ThreadsObserved, 8u);
  EXPECT_TRUE(Report->Object.IsHeap);
}

TEST(WorkloadDetectionTest, StreamclusterDetectedAtWorkMem) {
  auto Workload = createWorkload("streamcluster");
  driver::SessionConfig Config = smallConfig(8, 2.0);
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(128);
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  const core::FalseSharingReport *Report =
      Result.Profile.findReport("streamcluster.cpp:985");
  ASSERT_NE(Report, nullptr);
  EXPECT_EQ(Report->Kind, core::SharingKind::FalseSharing);
  EXPECT_GT(Report->Impact.ImprovementFactor, 1.0);
  EXPECT_LT(Report->Impact.ImprovementFactor, 1.5); // mild, unlike LR
}

TEST(WorkloadDetectionTest, Fig1ArrayDetectedAsGlobal) {
  auto Workload = createWorkload("fig1_array");
  driver::SessionConfig Config = smallConfig(8, 1.0);
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  const core::FalseSharingReport *Report =
      Result.Profile.findReport("fig1_array");
  ASSERT_NE(Report, nullptr);
  EXPECT_FALSE(Report->Object.IsHeap);
  EXPECT_GT(Report->Impact.ImprovementFactor, 3.0);
}

TEST(WorkloadDetectionTest, FixedVariantsReportNothing) {
  for (const char *Name : {"linear_regression", "streamcluster",
                           "fig1_array"}) {
    auto Workload = createWorkload(Name);
    driver::SessionConfig Config = smallConfig(8, 1.0);
    Config.Workload.FixFalseSharing = true;
    Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);
    driver::SessionResult Result = driver::runWorkload(*Workload, Config);
    EXPECT_TRUE(Result.Profile.Reports.empty())
        << Name << " reported " << Result.Profile.Reports.size()
        << " instances after the fix";
  }
}

class NoFalseSharingTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NoFalseSharingTest, CleanWorkloadsProduceNoReports) {
  auto Workload = createWorkload(GetParam());
  ASSERT_NE(Workload, nullptr);
  driver::SessionConfig Config = smallConfig(8, 0.5);
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  EXPECT_TRUE(Result.Profile.Reports.empty())
      << "unexpected report in " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CleanApps, NoFalseSharingTest,
                         ::testing::Values("kmeans", "matrix_multiply", "pca",
                                           "string_match", "blackscholes",
                                           "bodytrack", "canneal", "facesim",
                                           "fluidanimate", "freqmine",
                                           "swaptions", "x264"),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadDetectionTest, MinorInstancesMissedBySparseSampling) {
  // Figure 7: histogram/reverse_index/word_count have FS instances whose
  // sampled evidence stays below the significance bar at the deployment
  // sampling period.
  for (const char *Name : {"histogram", "reverse_index", "word_count"}) {
    auto Workload = createWorkload(Name);
    driver::SessionConfig Config = smallConfig(8, 1.0);
    Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(65536);
    driver::SessionResult Result = driver::runWorkload(*Workload, Config);
    EXPECT_TRUE(Result.Profile.Reports.empty()) << Name;
  }
}

TEST(WorkloadDetectionTest, MinorInstancesExistUnderFullTracking) {
  // The same minor instances are real: the every-access baseline sees them.
  for (const char *Name : {"histogram", "reverse_index", "word_count"}) {
    auto Workload = createWorkload(Name);
    driver::SessionConfig Config = smallConfig(8, 1.0);
    baseline::FullTrackerConfig Tracker;
    driver::FullTrackResult Result =
        driver::runFullTracking(*Workload, Config, Tracker);
    bool FoundFalseSharing = false;
    for (const auto &Finding : Result.Findings)
      FoundFalseSharing |= Finding.Kind == core::SharingKind::FalseSharing &&
                           Finding.Threads >= 2;
    EXPECT_TRUE(FoundFalseSharing) << Name;
  }
}

TEST(WorkloadDetectionTest, FluidanimateBordersAreTrueSharingNotFalse) {
  auto Workload = createWorkload("fluidanimate");
  driver::SessionConfig Config = smallConfig(8, 1.0);
  baseline::FullTrackerConfig Tracker;
  driver::FullTrackResult Result =
      driver::runFullTracking(*Workload, Config, Tracker);
  for (const auto &Finding : Result.Findings)
    if (Finding.Threads >= 2 && Finding.Invalidations > 50)
      EXPECT_NE(Finding.Kind, core::SharingKind::FalseSharing)
          << "border line 0x" << std::hex << Finding.LineBase;
}

TEST(WorkloadStructureTest, KmeansCreates224ThreadsAt16) {
  auto Workload = createWorkload("kmeans");
  driver::SessionConfig Config = smallConfig(16, 0.05);
  core::Profiler Profiler(Config.Profiler);
  sim::ForkJoinProgram Program =
      driver::buildProgram(*Workload, Profiler, Config);
  EXPECT_EQ(Program.totalChildThreads(), 224u);
}

TEST(WorkloadStructureTest, X264Creates1024ThreadsAt16) {
  auto Workload = createWorkload("x264");
  driver::SessionConfig Config = smallConfig(16, 0.05);
  core::Profiler Profiler(Config.Profiler);
  sim::ForkJoinProgram Program =
      driver::buildProgram(*Workload, Profiler, Config);
  EXPECT_EQ(Program.totalChildThreads(), 1024u);
}

TEST(WorkloadStructureTest, StreamclusterRespectsLineSizeInFix) {
  // With 128-byte lines, the "fixed" work_mem stride must be 128.
  auto Workload = createWorkload("streamcluster");
  driver::SessionConfig Config = smallConfig(4, 0.2);
  Config.Profiler.Geometry = CacheGeometry(128);
  Config.Workload.FixFalseSharing = true;
  driver::SessionResult Result = driver::runWorkload(*Workload, Config);
  EXPECT_TRUE(Result.Profile.Reports.empty());
}

} // namespace
