//===- tests/AssessTest.cpp - assessment engine tests ----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assessment equations (EQ.1-EQ.4) checked on hand-constructed
/// profiles where the expected prediction is known in closed form.
///
//===----------------------------------------------------------------------===//

#include "core/assess/Assessor.h"
#include "core/report/Report.h"

#include <gtest/gtest.h>

using namespace cheetah;
using namespace cheetah::core;

namespace {

/// Builds a registry with one main thread and \p Workers children, each
/// with the given runtime and sampled cycles.
void populateRegistry(runtime::ThreadRegistry &Registry, uint32_t Workers,
                      uint64_t Runtime, uint64_t SampledAccesses,
                      uint32_t LatencyPerAccess) {
  Registry.threadStarted(0, true, 0);
  for (uint32_t T = 1; T <= Workers; ++T) {
    Registry.threadStarted(T, false, 1000);
    for (uint64_t S = 0; S < SampledAccesses; ++S)
      Registry.recordSample(T, LatencyPerAccess);
    Registry.threadFinished(T, 1000 + Runtime);
  }
  Registry.threadFinished(0, 2000 + Runtime);
}

/// Builds the matching fork-join phase structure: serial [0,1000), parallel
/// [1000, 1000+Runtime), serial tail.
void populatePhases(runtime::PhaseTracker &Phases, uint32_t Workers,
                    uint64_t Runtime) {
  Phases.programBegin(0, 0);
  for (uint32_t T = 1; T <= Workers; ++T)
    Phases.threadCreated(T, 0, 1000);
  for (uint32_t T = 1; T <= Workers; ++T)
    Phases.threadFinished(T, 1000 + Runtime);
  Phases.programEnd(2000 + Runtime);
}

TEST(AssessorTest, UniformObjectDominatedThreads) {
  // Every worker: 100 sampled accesses at 50 cycles, 80 of them on the
  // object. AverNoFs = 5.
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  populateRegistry(Registry, 4, /*Runtime=*/100000, /*SampledAccesses=*/100,
                   /*LatencyPerAccess=*/50);
  populatePhases(Phases, 4, 100000);

  AssessorConfig Config;
  Config.DefaultSerialLatency = 5.0;
  Config.MinSerialSamples = 1000; // force the default
  Assessor Assess(Registry, Phases, Config);

  ObjectAccessProfile Profile;
  for (ThreadId T = 1; T <= 4; ++T)
    Profile.PerThread.push_back({T, 80, 80 * 50});
  Profile.SampledAccesses = 4 * 80;
  Profile.SampledCycles = 4 * 80 * 50;

  Assessment Result = Assess.assess(Profile, /*AppRuntime=*/102000);

  // Per thread: Cycles_t = 5000, C_O = 4000, PredCycles = 5000-4000+80*5
  // = 1400 -> PredRT = 100000 * 1400/5000 = 28000.
  const ThreadPrediction *Worker = nullptr;
  for (const ThreadPrediction &P : Result.Threads)
    if (P.Tid == 1)
      Worker = &P;
  ASSERT_NE(Worker, nullptr);
  EXPECT_TRUE(Result.UsedDefaultLatency);
  EXPECT_NEAR(Worker->PredictedCycles, 1400.0, 1e-9);
  EXPECT_NEAR(Worker->PredictedRuntime, 28000.0, 1e-6);

  // App: serial 1000 + 1000 + parallel (span 100000 -> 28000).
  EXPECT_NEAR(Result.PredictedAppRuntime, 2000 + 28000, 1.0);
  EXPECT_NEAR(Result.ImprovementFactor, 102000.0 / 30000.0, 0.001);
  EXPECT_TRUE(Result.ForkJoinModel);
}

TEST(AssessorTest, UnfinishedThreadDoesNotPoisonPredictions) {
  // Worker 2 registered and sampled but never detached: its EndTime is
  // still 0, so runtime() must read 0 — not wrap to ~2^64 and blow up
  // the EQ.3 scaling and with it the whole-program improvement.
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  Registry.threadStarted(0, true, 0);
  for (ThreadId T = 1; T <= 2; ++T) {
    Registry.threadStarted(T, false, 1000);
    for (uint64_t S = 0; S < 100; ++S)
      Registry.recordSample(T, 50);
  }
  Registry.threadFinished(1, 1000 + 100000);
  // Thread 2 never reaches threadFinished (crashed / leaked detach).
  Registry.threadFinished(0, 2000 + 100000);
  populatePhases(Phases, 2, 100000);

  AssessorConfig Config;
  Config.DefaultSerialLatency = 5.0;
  Config.MinSerialSamples = 1000; // force the default
  Assessor Assess(Registry, Phases, Config);

  ObjectAccessProfile Profile;
  for (ThreadId T = 1; T <= 2; ++T)
    Profile.PerThread.push_back({T, 80, 80 * 50});
  Profile.SampledAccesses = 2 * 80;
  Profile.SampledCycles = 2 * 80 * 50;

  Assessment Result = Assess.assess(Profile, /*AppRuntime=*/102000);

  const ThreadPrediction *Unfinished = nullptr;
  for (const ThreadPrediction &P : Result.Threads)
    if (P.Tid == 2)
      Unfinished = &P;
  ASSERT_NE(Unfinished, nullptr);
  EXPECT_EQ(Unfinished->RealRuntime, 0u);
  EXPECT_DOUBLE_EQ(Unfinished->PredictedRuntime, 0.0);

  // The phase prediction is carried by the finished worker (EQ.4 takes
  // the longest member): 28000 parallel + 2000 serial, same as the
  // all-finished uniform case — finite and sane.
  EXPECT_NEAR(Result.PredictedAppRuntime, 30000.0, 1.0);
  EXPECT_GT(Result.ImprovementFactor, 1.0);
  EXPECT_LT(Result.ImprovementFactor, 10.0);
}

TEST(AssessorTest, ObjectUntouchedByThreadLeavesItUnchanged) {
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  populateRegistry(Registry, 2, 50000, 100, 20);
  populatePhases(Phases, 2, 50000);

  AssessorConfig Config;
  Assessor Assess(Registry, Phases, Config);

  // Only thread 1 touches the object.
  ObjectAccessProfile Profile;
  Profile.PerThread.push_back({1, 50, 50 * 20});

  Assessment Result = Assess.assess(Profile, 52000);
  for (const ThreadPrediction &P : Result.Threads) {
    if (P.Tid == 2) {
      EXPECT_EQ(P.AccessesOnObject, 0u);
      EXPECT_NEAR(P.PredictedRuntime, 50000.0, 1e-6);
    }
  }
  // The phase is limited by the untouched thread: no improvement.
  EXPECT_NEAR(Result.PredictedAppRuntime, 52000.0, 1.0);
  EXPECT_NEAR(Result.ImprovementFactor, 1.0, 1e-6);
}

TEST(AssessorTest, MeasuredSerialLatencyPreferredOverDefault) {
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  populateRegistry(Registry, 1, 1000, 10, 10);
  populatePhases(Phases, 1, 1000);

  AssessorConfig Config;
  Config.DefaultSerialLatency = 99.0;
  Config.MinSerialSamples = 4;
  Assessor Assess(Registry, Phases, Config);

  OnlineStats Serial;
  for (int I = 0; I < 10; ++I)
    Serial.add(7.0);
  Assess.setSerialLatencyStats(Serial);

  bool UsedDefault = true;
  EXPECT_DOUBLE_EQ(Assess.averageNoFsLatency(&UsedDefault), 7.0);
  EXPECT_FALSE(UsedDefault);
}

TEST(AssessorTest, TooFewSerialSamplesFallsBackToDefault) {
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  populateRegistry(Registry, 1, 1000, 10, 10);
  populatePhases(Phases, 1, 1000);

  AssessorConfig Config;
  Config.DefaultSerialLatency = 6.5;
  Config.MinSerialSamples = 100;
  Assessor Assess(Registry, Phases, Config);
  OnlineStats Serial;
  Serial.add(3.0);
  Assess.setSerialLatencyStats(Serial);

  bool UsedDefault = false;
  EXPECT_DOUBLE_EQ(Assess.averageNoFsLatency(&UsedDefault), 6.5);
  EXPECT_TRUE(UsedDefault);
}

TEST(AssessorTest, SerialAverageClampedToAtLeastOneCycle) {
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  populateRegistry(Registry, 1, 1000, 10, 10);
  populatePhases(Phases, 1, 1000);
  AssessorConfig Config;
  Config.MinSerialSamples = 1;
  Assessor Assess(Registry, Phases, Config);
  OnlineStats Serial;
  Serial.add(0.0);
  Serial.add(0.0);
  Assess.setSerialLatencyStats(Serial);
  EXPECT_GE(Assess.averageNoFsLatency(), 1.0);
}

TEST(AssessorTest, PhaseLengthDeterminedByLongestThread) {
  // Two workers: a slow one dominated by the object, a fast one untouched.
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  Registry.threadStarted(0, true, 0);
  Registry.threadStarted(1, false, 1000);
  Registry.threadStarted(2, false, 1000);
  for (int I = 0; I < 100; ++I)
    Registry.recordSample(1, 100); // slow: all on object
  for (int I = 0; I < 100; ++I)
    Registry.recordSample(2, 5); // fast
  Registry.threadFinished(1, 1000 + 200000);
  Registry.threadFinished(2, 1000 + 60000);
  Registry.threadFinished(0, 202000);
  Phases.programBegin(0, 0);
  Phases.threadCreated(1, 0, 1000);
  Phases.threadCreated(2, 0, 1000);
  Phases.threadFinished(2, 61000);
  Phases.threadFinished(1, 201000);
  Phases.programEnd(202000);

  AssessorConfig Config;
  Config.DefaultSerialLatency = 5.0;
  Config.MinSerialSamples = 1000;
  Assessor Assess(Registry, Phases, Config);

  ObjectAccessProfile Profile;
  Profile.PerThread.push_back({1, 100, 100 * 100});

  Assessment Result = Assess.assess(Profile, 202000);
  // Thread 1 predicted: PredCycles = 10000-10000+500 = 500 ->
  // PredRT = 200000 * 500/10000 = 10000. Thread 2 unchanged at 60000.
  // The phase is now limited by thread 2.
  double ParallelPredicted = 60000.0;
  EXPECT_NEAR(Result.PredictedAppRuntime, 2000 + ParallelPredicted, 1.0);
}

TEST(AssessorTest, NonForkJoinFallsBackToAggregateScaling) {
  runtime::ThreadRegistry Registry;
  runtime::PhaseTracker Phases;
  populateRegistry(Registry, 2, 10000, 10, 50);
  // Nested creation: not fork-join.
  Phases.programBegin(0, 0);
  Phases.threadCreated(1, 0, 100);
  Phases.threadCreated(2, 1, 200);
  Phases.threadFinished(2, 9000);
  Phases.threadFinished(1, 10000);
  Phases.programEnd(11000);

  AssessorConfig Config;
  Assessor Assess(Registry, Phases, Config);
  ObjectAccessProfile Profile;
  Profile.PerThread.push_back({1, 10, 500});

  Assessment Result = Assess.assess(Profile, 11000);
  EXPECT_FALSE(Result.ForkJoinModel);
  EXPECT_GT(Result.ImprovementFactor, 1.0);
}

TEST(AssessorTest, ImprovementPercentMatchesPaperFormat) {
  Assessment Result;
  Result.ImprovementFactor = 5.76;
  EXPECT_NEAR(Result.improvementPercent(), 576.0, 0.1);
}

TEST(ObjectAccessProfileTest, ThreadStatsLookup) {
  ObjectAccessProfile Profile;
  Profile.PerThread = {{1, 10, 100}, {5, 20, 200}};
  ASSERT_NE(Profile.threadStats(5), nullptr);
  EXPECT_EQ(Profile.threadStats(5)->Accesses, 20u);
  EXPECT_EQ(Profile.threadStats(3), nullptr);
}

//===----------------------------------------------------------------------===//
// Report formatting
//===----------------------------------------------------------------------===//

FalseSharingReport makeSampleReport() {
  FalseSharingReport Report;
  Report.Object.IsHeap = true;
  Report.Object.CallsiteFrames = {"linear_regression-pthread.c:139"};
  Report.Object.Start = 0x400004b8;
  Report.Object.Size = 4000;
  Report.Kind = SharingKind::FalseSharing;
  Report.SampledAccesses = 1263;
  Report.Invalidations = 0x27f;
  Report.SampledWrites = 501;
  Report.LatencyCycles = 102988;
  Report.ThreadsObserved = 16;
  Report.Impact.ImprovementFactor = 5.76172748;
  Report.Impact.RealAppRuntime = 7738;
  Report.Impact.PredictedAppRuntime = 1343;
  WordReportEntry Word;
  Word.Offset = 8;
  Word.Reads = 3;
  Word.Writes = 40;
  Word.FirstThread = 2;
  Report.Words.push_back(Word);
  return Report;
}

TEST(ReportTest, Figure5ShapeAndContent) {
  std::string Text = formatReport(makeSampleReport());
  EXPECT_NE(Text.find("Detecting false sharing at the object: start "
                      "0x400004b8 end 0x40001458 (with size 4000)."),
            std::string::npos);
  EXPECT_NE(Text.find("totalThreads 16"), std::string::npos);
  EXPECT_NE(Text.find("totalPossibleImprovementRate 576.17"),
            std::string::npos);
  EXPECT_NE(Text.find("realRuntime 7738 predictedRuntime 1343"),
            std::string::npos);
  EXPECT_NE(Text.find("heap object with the following callsite"),
            std::string::npos);
  EXPECT_NE(Text.find("linear_regression-pthread.c:139"), std::string::npos);
}

TEST(ReportTest, HexCountersMirrorThePaper) {
  ReportFormatOptions Options;
  Options.HexCounters = true;
  std::string Text = formatReport(makeSampleReport(), Options);
  // The paper prints "invalidations 27f".
  EXPECT_NE(Text.find("invalidations 27f"), std::string::npos);
}

TEST(ReportTest, GlobalObjectsReportTheirSymbolName) {
  FalseSharingReport Report = makeSampleReport();
  Report.Object.IsHeap = false;
  Report.Object.GlobalName = "fig1_array";
  std::string Text = formatReport(Report);
  EXPECT_NE(Text.find("global variable: fig1_array"), std::string::npos);
  EXPECT_EQ(Text.find("callsite"), std::string::npos);
}

TEST(ReportTest, WordTableRespectsLimit) {
  FalseSharingReport Report = makeSampleReport();
  Report.Words.clear();
  for (int I = 0; I < 40; ++I) {
    WordReportEntry Word;
    Word.Offset = I * 4;
    Word.Writes = 1;
    Report.Words.push_back(Word);
  }
  ReportFormatOptions Options;
  Options.MaxWords = 8;
  std::string Text = formatReport(Report, Options);
  EXPECT_NE(Text.find("32 more words elided"), std::string::npos);
}

TEST(ReportTest, WordsCanBeSuppressed) {
  ReportFormatOptions Options;
  Options.ShowWords = false;
  std::string Text = formatReport(makeSampleReport(), Options);
  EXPECT_EQ(Text.find("Word-level"), std::string::npos);
}

TEST(ReportTest, NonForkJoinNoteAppears) {
  FalseSharingReport Report = makeSampleReport();
  Report.Impact.ForkJoinModel = false;
  std::string Text = formatReport(Report);
  EXPECT_NE(Text.find("did not follow the fork-join model"),
            std::string::npos);
}

TEST(ReportTest, SummaryTableListsEveryReport) {
  std::vector<FalseSharingReport> Reports(3, makeSampleReport());
  Reports[1].Object.IsHeap = false;
  Reports[1].Object.GlobalName = "shared_counters";
  std::string Text = formatSummaryTable(Reports);
  EXPECT_NE(Text.find("linear_regression-pthread.c:139"), std::string::npos);
  EXPECT_NE(Text.find("shared_counters"), std::string::npos);
  EXPECT_NE(Text.find("5.76x"), std::string::npos);
}

} // namespace
