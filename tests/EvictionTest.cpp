//===- tests/EvictionTest.cpp - bounded-memory eviction tests --------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded-memory continuous-operation suite: footprint accounting
/// cross-checked against allocation-size arithmetic (the budget must be
/// enforced against an honest denominator), the conservation proof that
/// evicted residue plus live counters equals a never-evicted run's totals,
/// golden byte-identity of snapshots whose budget is never hit, and the
/// multi-epoch soak that holds footprintBytes() under budget while
/// ingesting far more distinct grains than the budget can hold. Runs in
/// all three table modes (lock-free / CHEETAH_LOCKED_TABLE /
/// CHEETAH_SHARDED_TABLE) via the CI matrix.
///
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/detect/Detector.h"
#include "core/detect/PageTable.h"
#include "core/detect/ShadowMemory.h"
#include "core/report/ReportSink.h"
#include "mem/NumaTopology.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cheetah;
using namespace cheetah::core;

namespace {

constexpr uint64_t RegionBase = 0x4000'0000;

pmu::Sample makeSample(uint64_t Address, ThreadId Tid, bool IsWrite,
                       uint32_t Latency = 50) {
  pmu::Sample Sample;
  Sample.Address = Address;
  Sample.Tid = Tid;
  Sample.IsWrite = IsWrite;
  Sample.LatencyCycles = Latency;
  return Sample;
}

/// Live counters summed over every materialized grain.
struct LiveTotals {
  uint64_t Accesses = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  uint64_t Invalidations = 0;
  size_t InfoBytes = 0;
};

template <typename TableT> LiveTotals liveTotals(const TableT &Table) {
  LiveTotals Totals;
  Table.forEachGrain([&](uint64_t, NodeId, const auto &Info) {
    Totals.Accesses += Info.accesses();
    Totals.Writes += Info.writes();
    Totals.Cycles += Info.cycles();
    Totals.Invalidations += Info.invalidations();
    Totals.InfoBytes += Info.footprintBytes();
  });
  return Totals;
}

//===----------------------------------------------------------------------===//
// Footprint accounting: the budget denominator against allocation-size
// arithmetic (slab arrays were previously uncounted).
//===----------------------------------------------------------------------===//

TEST(EvictionFootprintTest, LineSlabArraysCountedExactly) {
  CacheGeometry Geometry{64};
  constexpr uint64_t Size = 1 << 16;
  ShadowMemory Shadow{Geometry, {{RegionBase, Size}}};
  size_t Grains = Size / 64;

  // Nothing materialized: the metadata is exactly the flat per-grain slab
  // arrays (stage-1 write counter + detail pointer per grain).
  size_t SlabBytes = Grains * (sizeof(std::atomic<uint32_t>) +
                               sizeof(std::atomic<CacheLineInfo *>));
  EXPECT_EQ(Shadow.metadataBytes(), SlabBytes);

  // The budget denominator is the metadata plus shard-registry overhead
  // (zero records yet) — never less than the slab arrays the budget can
  // never trim away.
  EXPECT_EQ(Shadow.footprintBytes(), SlabBytes + Shadow.shardBytes());

  // Installing a budget allocates the per-grain epoch-write baselines,
  // and the denominator must charge for them too.
  size_t Before = Shadow.footprintBytes();
  Shadow.setByteBudget(1 << 20);
  EXPECT_EQ(Shadow.footprintBytes(), Before + Grains * sizeof(uint32_t));
}

TEST(EvictionFootprintTest, PageSlabArraysIncludeHomes) {
  constexpr uint64_t PageSize = 4096;
  constexpr uint64_t Size = 64 * PageSize;
  NumaTopology Topology(2, PageSize);
  CacheGeometry Geometry{64};
  PageTable Pages(Topology, Geometry, {{RegionBase, Size}});
  size_t Grains = Size / PageSize;

  size_t SlabBytes =
      Grains * (sizeof(std::atomic<uint32_t>) +
                sizeof(std::atomic<PageInfo *>) + sizeof(std::atomic<NodeId>));
  EXPECT_EQ(Pages.metadataBytes(), SlabBytes);
  EXPECT_EQ(Pages.footprintBytes(), SlabBytes + Pages.shardBytes());
}

TEST(EvictionFootprintTest, MaterializedInfoBytesMatchArithmetic) {
  CacheGeometry Geometry{64};
  constexpr uint64_t Size = 1 << 16;
  ShadowMemory Shadow{Geometry, {{RegionBase, Size}}};
  DetectorConfig Config;
  Config.WriteThreshold = 0;
  Detector Detect{Geometry, Shadow, Config};

  constexpr size_t Tracked = 32;
  for (size_t I = 0; I < Tracked; ++I)
    for (ThreadId Tid = 0; Tid < 2; ++Tid)
      Detect.handleSample(makeSample(RegionBase + I * 64, Tid, true), true);
  Detect.quiesce(); // sharded build: fold shards into the grains

  EXPECT_EQ(Shadow.materializedGrains(), Tracked);
  size_t SlabBytes = (Size / 64) * (sizeof(std::atomic<uint32_t>) +
                                    sizeof(std::atomic<CacheLineInfo *>));
  EXPECT_EQ(Shadow.metadataBytes(), SlabBytes + liveTotals(Shadow).InfoBytes);
}

#if CHEETAH_SHARDED_TABLE
TEST(EvictionFootprintTest, ShardRecordsCountedAndDroppedAtQuiesce) {
  CacheGeometry Geometry{64};
  ShadowMemory Shadow{Geometry, {{RegionBase, 1 << 16}}};
  DetectorConfig Config;
  Config.WriteThreshold = 0;
  Detector Detect{Geometry, Shadow, Config};

  size_t Before = Shadow.shardBytes();
  for (size_t I = 0; I < 64; ++I)
    Detect.handleSample(makeSample(RegionBase + I * 64, 0, true), true);
  // 64 live shard records: at least one map node each must be charged.
  size_t Loaded = Shadow.shardBytes();
  EXPECT_GE(Loaded, Before + 64 * sizeof(std::pair<const uint64_t,
                                                   uint64_t>));
  EXPECT_EQ(Shadow.footprintBytes(),
            Shadow.metadataBytes() + Shadow.shardBytes());

  // Quiesce folds and clears the records; only container overhead stays.
  Detect.quiesce();
  EXPECT_LT(Shadow.shardBytes(), Loaded);
}
#endif

//===----------------------------------------------------------------------===//
// Conservation: residue + live state == a never-evicted run's totals.
//===----------------------------------------------------------------------===//

TEST(EvictionConservationTest, ResiduePlusLiveEqualsUnboundedTotals) {
  CacheGeometry Geometry{64};
  constexpr uint64_t Size = 1 << 16;
  const size_t TotalGrains = Size / 64;
  DetectorConfig Config;
  // Threshold 0 so a write-only trace records every sample in both runs:
  // eviction resets the stage-1 counter, and the first write back to a
  // decayed grain must immediately re-earn tracking for totals to match.
  Config.WriteThreshold = 0;

  ShadowMemory Unbounded{Geometry, {{RegionBase, Size}}};
  Detector DetectUnbounded{Geometry, Unbounded, Config};
  ShadowMemory Bounded{Geometry, {{RegionBase, Size}}};
  Detector DetectBounded{Geometry, Bounded, Config};

  // A budget below the slab floor: every epoch boundary evicts every
  // materialized grain, the maximum-decay worst case.
  Bounded.setByteBudget(1);

  SplitMix64 Rng(20260808);
  for (int Epoch = 0; Epoch < 6; ++Epoch) {
    for (int I = 0; I < 4000; ++I) {
      uint64_t Grain = Rng.next() % TotalGrains;
      uint64_t Address = RegionBase + Grain * 64 + (Rng.next() % 16) * 4;
      pmu::Sample Sample =
          makeSample(Address, static_cast<ThreadId>(Rng.next() % 3),
                     /*IsWrite=*/true, 1 + Rng.next() % 100);
      DetectUnbounded.handleSample(Sample, true);
      DetectBounded.handleSample(Sample, true);
    }
    DetectUnbounded.quiesce();
    DetectBounded.quiesce();
    EXPECT_GT(Bounded.enforceBudget(), 0u);
  }

  const GrainEvictionStats &Residue = Bounded.evictedResidue();
  EXPECT_GT(Residue.Grains, 0u);
  LiveTotals Live = liveTotals(Bounded);
  LiveTotals Reference = liveTotals(Unbounded);

  // Additive counters conserve exactly across the eviction/decay cycles.
  EXPECT_EQ(Residue.Accesses + Live.Accesses, Reference.Accesses);
  EXPECT_EQ(Residue.Writes + Live.Writes, Reference.Writes);
  EXPECT_EQ(Residue.Cycles + Live.Cycles, Reference.Cycles);

  // And against the run's own detector counters: nothing recorded was
  // lost, nothing counted twice. Invalidation *decisions* diverge after a
  // decayed grain re-materializes with a fresh two-entry table, so they
  // conserve within-run, not across runs.
  EXPECT_EQ(Residue.Accesses + Live.Accesses,
            DetectBounded.stats().SamplesRecorded);
  EXPECT_EQ(Residue.Invalidations + Live.Invalidations,
            DetectBounded.stats().Invalidations);
  EXPECT_EQ(Reference.Accesses, DetectUnbounded.stats().SamplesRecorded);
}

//===----------------------------------------------------------------------===//
// Byte identity: a budget that is never hit must not change one byte of
// the snapshot (the eviction summary only appears once grains evict).
//===----------------------------------------------------------------------===//

std::string snapshotWithBudget(size_t Budget) {
  ProfilerConfig Config;
  Config.Detect.WriteThreshold = 0;
  Config.Detect.OnlyParallelPhases = false;
  Config.Detect.LineShadowBudgetBytes = Budget;
  Profiler Profiler(Config);
  Profiler.threadStarted(/*Tid=*/0, /*IsMain=*/true, /*Now=*/0);

  std::vector<pmu::Sample> Batch;
  for (int I = 0; I < 512; ++I)
    Batch.push_back(makeSample(Config.HeapArenaBase + (I % 64) * 64,
                               static_cast<ThreadId>(I % 2), true,
                               10 + I % 7));
  Profiler.ingestBatch(Batch.data(), Batch.size());

  std::string Text;
  JsonReportSink Sink(Text);
  ReportRunInfo Info;
  Info.Tool = "eviction-test";
  Sink.beginRun(Info);
  Profiler.snapshotEpoch(/*AppRuntime=*/123456, &Sink);
  return Text;
}

TEST(EvictionSnapshotTest, BudgetNeverHitIsByteIdentical) {
  std::string NoBudget = snapshotWithBudget(0);
  std::string HugeBudget = snapshotWithBudget(size_t(1) << 30);
  EXPECT_EQ(NoBudget, HugeBudget);
  EXPECT_EQ(NoBudget.find("\"eviction\""), std::string::npos);
}

TEST(EvictionSnapshotTest, EvictingSnapshotCarriesResidueSummary) {
  // A one-byte budget trims everything after the report streams, and the
  // *next* snapshot must carry the eviction summary object.
  ProfilerConfig Config;
  Config.Detect.WriteThreshold = 0;
  Config.Detect.OnlyParallelPhases = false;
  Config.Detect.LineShadowBudgetBytes = 1;
  Profiler Profiler(Config);
  Profiler.threadStarted(0, true, 0);
  std::vector<pmu::Sample> Batch;
  for (int I = 0; I < 512; ++I)
    Batch.push_back(makeSample(Config.HeapArenaBase + (I % 64) * 64,
                               static_cast<ThreadId>(I % 2), true));
  Profiler.ingestBatch(Batch.data(), Batch.size());
  std::string First;
  {
    JsonReportSink Sink(First);
    ReportRunInfo Info;
    Info.Tool = "eviction-test";
    Sink.beginRun(Info);
    Profiler.snapshotEpoch(1000, &Sink);
  }
  // The first snapshot streams before its boundary evicts: no residue yet.
  EXPECT_EQ(First.find("\"eviction\""), std::string::npos);

  std::string Second;
  {
    JsonReportSink Sink(Second);
    ReportRunInfo Info;
    Info.Tool = "eviction-test";
    Sink.beginRun(Info);
    Profiler.snapshotEpoch(2000, &Sink);
  }
  EXPECT_NE(Second.find("\"eviction\""), std::string::npos);
  EXPECT_NE(Second.find("\"evicted_grains\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Soak: many epochs of fresh grains, footprint pinned under budget.
//===----------------------------------------------------------------------===//

TEST(EvictionSoakTest, FootprintStaysUnderBudgetAcrossTenEpochs) {
  CacheGeometry Geometry{64};
  constexpr uint64_t Size = 1 << 18; // 4096 grains
  const size_t TotalGrains = Size / 64;
  ShadowMemory Shadow{Geometry, {{RegionBase, Size}}};
  DetectorConfig Config;
  Config.WriteThreshold = 0;
  Detector Detect{Geometry, Shadow, Config};

  constexpr size_t GrainsPerEpoch = 256;
  constexpr int Epochs = 10;

  // Prime one epoch to measure the irreducible floor (slab arrays, epoch
  // baselines, shard container overhead at steady-state record count),
  // then budget a small slack above it: every later epoch must evict
  // nearly everything it materialized to fit.
  for (size_t I = 0; I < GrainsPerEpoch; ++I)
    for (ThreadId Tid = 0; Tid < 2; ++Tid)
      Detect.handleSample(makeSample(RegionBase + I * 64, Tid, true), true);
  Detect.quiesce();
  Shadow.setByteBudget(1); // allocate the epoch baselines
  size_t Floor = Shadow.footprintBytes() - liveTotals(Shadow).InfoBytes;
  size_t Budget = Floor + 4096;
  Shadow.setByteBudget(Budget);
  ASSERT_GT(Shadow.enforceBudget(), 0u);
  EXPECT_LE(Shadow.footprintBytes(), Budget);

  uint64_t LastResidue = Shadow.evictedResidue().Grains;
  for (int Epoch = 1; Epoch < Epochs; ++Epoch) {
    // A fresh window of distinct grains each epoch — far more info bytes
    // than the budget slack can hold.
    for (size_t I = 0; I < GrainsPerEpoch; ++I) {
      size_t Grain = (Epoch * GrainsPerEpoch + I) % TotalGrains;
      for (ThreadId Tid = 0; Tid < 2; ++Tid)
        Detect.handleSample(makeSample(RegionBase + Grain * 64, Tid, true),
                            true);
    }
    Detect.quiesce();
    Shadow.enforceBudget();
    EXPECT_LE(Shadow.footprintBytes(), Budget) << "epoch " << Epoch;
    uint64_t Residue = Shadow.evictedResidue().Grains;
    EXPECT_GT(Residue, LastResidue) << "epoch " << Epoch;
    LastResidue = Residue;
  }
}

//===----------------------------------------------------------------------===//
// Decay and re-materialization plumbing.
//===----------------------------------------------------------------------===//

TEST(EvictionDecayTest, EvictedGrainReadsUnmaterializedAndReEarnsTracking) {
  CacheGeometry Geometry{64};
  ShadowMemory Shadow{Geometry, {{RegionBase, 1 << 12}}};
  DetectorConfig Config;
  Config.WriteThreshold = 0;
  Detector Detect{Geometry, Shadow, Config};

  Detect.handleSample(makeSample(RegionBase, 0, true), true);
  Detect.handleSample(makeSample(RegionBase, 1, true), true);
  Detect.quiesce();
  ASSERT_NE(Shadow.detail(RegionBase), nullptr);
  ASSERT_EQ(Shadow.materializedGrains(), 1u);

  Shadow.setByteBudget(1);
  EXPECT_EQ(Shadow.enforceBudget(), 1u);
  // Evicted: reads as unmaterialized, counters live on in the residue,
  // the stage-1 counter restarts.
  EXPECT_EQ(Shadow.detail(RegionBase), nullptr);
  EXPECT_EQ(Shadow.materializedGrains(), 0u);
  EXPECT_EQ(Shadow.writeCount(RegionBase), 0u);
  EXPECT_EQ(Shadow.evictedResidue().Grains, 1u);
  EXPECT_EQ(Shadow.evictedResidue().Accesses, 2u);

  // Traffic returning to the decayed grain re-materializes it fresh.
  Detect.handleSample(makeSample(RegionBase, 0, true), true);
  Detect.quiesce();
  ASSERT_NE(Shadow.detail(RegionBase), nullptr);
  EXPECT_EQ(Shadow.detail(RegionBase)->accesses(), 1u);
  EXPECT_EQ(Shadow.materializedGrains(), 1u);
}

} // namespace
