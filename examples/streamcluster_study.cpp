//===- examples/streamcluster_study.cpp - Paper case study 4.2.2 -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's second case study: streamcluster's work_mem object is padded
/// by its authors — but to an *assumed* 32-byte cache line. On a 64-byte-
/// line machine adjacent threads still share lines. This example profiles
/// the program under both geometries, showing the instance appear exactly
/// when the hardware line outgrows the assumption, and quantifies the mild
/// (~1.02x) improvement the paper reports in Table 1.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

namespace {

void profileWithLineSize(const workloads::Workload &Workload,
                         uint64_t LineSize) {
  driver::SessionConfig Config;
  Config.Workload.Threads = 16;
  Config.Workload.Scale = 4.0;
  Config.Profiler.Geometry = CacheGeometry(LineSize);
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(128);

  driver::SessionResult Result = driver::runWorkload(Workload, Config);
  std::printf("--- %llu-byte cache lines ---\n",
              static_cast<unsigned long long>(LineSize));
  const core::FalseSharingReport *Report =
      Result.Profile.findReport("streamcluster.cpp:985");
  if (!Report) {
    std::printf("no false sharing reported: the 32-byte padding in "
                "work_mem is sufficient on this geometry\n\n");
    return;
  }
  std::printf("work_mem (streamcluster.cpp:985) falsely shared: %s sampled "
              "accesses, %s invalidations, predicted improvement %.3fx\n\n",
              formatWithCommas(Report->SampledAccesses).c_str(),
              formatWithCommas(Report->Invalidations).c_str(),
              Report->Impact.ImprovementFactor);
}

} // namespace

int main() {
  auto Workload = workloads::createWorkload("streamcluster");

  std::printf("streamcluster pads work_mem with CACHE_LINE = 32 bytes "
              "(the PARSEC authors' assumption).\n\n");
  profileWithLineSize(*Workload, 32);
  profileWithLineSize(*Workload, 64);
  profileWithLineSize(*Workload, 128);

  // Verify the paper's Table 1 magnitude on the 64-byte geometry.
  driver::SessionConfig Config;
  Config.Workload.Threads = 16;
  Config.Workload.Scale = 4.0;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(128);
  driver::SessionResult Unfixed = driver::runWorkload(*Workload, Config);
  driver::SessionConfig Fixed = Config;
  Fixed.Workload.FixFalseSharing = true; // pad to the real line size
  Fixed.EnableProfiler = false;
  driver::SessionResult FixedRun = driver::runWorkload(*Workload, Fixed);
  std::printf("padding to the actual 64-byte line: %.3fx realized "
              "improvement (paper Table 1: ~1.02x)\n",
              static_cast<double>(Unfixed.Run.TotalCycles) /
                  static_cast<double>(FixedRun.Run.TotalCycles));
  std::printf("\nlesson: padding against an assumed line size silently "
              "breaks when hardware changes — measure, don't assume\n");
  return 0;
}
