//===- examples/linear_regression_study.cpp - Paper case study 4.2.1 -------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's first case study end to end: profile linear_regression,
/// print the Figure 5 report, read the predicted improvement, apply the
/// one-line padding fix, and confirm the realized speedup matches the
/// prediction — exactly the workflow a Cheetah user follows.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

int main() {
  auto Workload = workloads::createWorkload("linear_regression");

  driver::SessionConfig Config;
  Config.Workload.Threads = 16;
  Config.Workload.Scale = 4.0;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(128);

  std::printf("step 1: run linear_regression (16 threads) under Cheetah\n\n");
  driver::SessionResult Profiled = driver::runWorkload(*Workload, Config);
  if (Profiled.Profile.Reports.empty()) {
    std::printf("unexpected: no false sharing reported\n");
    return 1;
  }
  const core::FalseSharingReport &Report = Profiled.Profile.Reports.front();
  std::fputs(core::formatReport(Report).c_str(), stdout);

  std::printf("\nstep 2: the report names the allocation site "
              "(linear_regression-pthread.c:139, the tid_args array) and "
              "shows each hot word written by a single distinct thread — "
              "the false-sharing signature.\n");

  double Predicted = Report.Impact.ImprovementFactor;
  std::printf("\nstep 3: Cheetah predicts a %.2fx speedup from padding.\n",
              Predicted);

  std::printf("\nstep 4: apply the paper's fix (pad lreg_args so each "
              "thread's struct owns its line) and rerun natively...\n");
  driver::SessionConfig Fixed = Config;
  Fixed.Workload.FixFalseSharing = true;
  Fixed.EnableProfiler = false;
  driver::SessionResult FixedRun = driver::runWorkload(*Workload, Fixed);

  double Actual = static_cast<double>(Profiled.Run.TotalCycles) /
                  static_cast<double>(FixedRun.Run.TotalCycles);
  std::printf("\nunfixed: %s cycles\nfixed:   %s cycles\n",
              formatWithCommas(Profiled.Run.TotalCycles).c_str(),
              formatWithCommas(FixedRun.Run.TotalCycles).c_str());
  std::printf("realized speedup %.2fx vs predicted %.2fx (%+.1f%% "
              "prediction error)\n",
              Actual, Predicted, (Predicted / Actual - 1.0) * 100.0);
  std::printf("\npaper reference: 5.7x realized vs 5.76x predicted at 16 "
              "threads (Section 4.2.1)\n");
  return 0;
}
