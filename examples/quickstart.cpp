//===- examples/quickstart.cpp - Five-minute tour of the API --------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build the paper's Figure 1 program by hand — an int array
/// whose adjacent elements are hammered by different threads — run it under
/// the Cheetah profiler, and print the findings. Demonstrates the three
/// steps every client takes:
///
///   1. describe the program as a ForkJoinProgram of coroutine thread
///      bodies, allocating its data from the profiler's heap / globals;
///   2. run it on the multicore simulator with the profiler attached;
///   3. read the ProfileResult: reports, predicted improvements, phases.
///
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "pmu/SimPmu.h"
#include "sim/Simulator.h"
#include "support/Generator.h"

#include <cstdio>

using namespace cheetah;

namespace {

/// One worker: increment array[Index] repeatedly (Figure 1's threadFunc).
Generator<ThreadEvent> incrementLoop(uint64_t ElementAddress,
                                     uint64_t Iterations) {
  for (uint64_t J = 0; J < Iterations; ++J) {
    co_yield ThreadEvent::write(ElementAddress, 4);
    co_yield ThreadEvent::compute(3);
  }
}

/// Main thread's serial setup: zero the array once.
Generator<ThreadEvent> initArray(uint64_t Base, uint64_t Bytes) {
  for (uint64_t Offset = 0; Offset < Bytes; Offset += 4)
    co_yield ThreadEvent::write(Base + Offset, 4);
}

} // namespace

int main() {
  constexpr uint32_t Threads = 8;
  constexpr uint64_t Iterations = 30000;

  // 1. A profiler instance owns the heap and the shadow memory; the
  // sampling backend attaches separately below.
  core::ProfilerConfig Config;
  Config.Pmu = Config.Pmu.withScaledPeriod(512); // dense sampling: short run
  core::Profiler Profiler(Config);

  // The shared array is a named global: `int array[8]` — one int per
  // thread, all in a single 64-byte cache line.
  uint64_t Array = Profiler.globals().defineAligned("array", Threads * 4);

  // 2. Describe the program: one serial init + one parallel phase.
  sim::ForkJoinProgram Program;
  Program.Name = "quickstart";
  sim::PhaseSpec &Phase = Program.addPhase("increment");
  Phase.SerialBody = [=]() { return initArray(Array, Threads * 4); };
  for (uint32_t T = 0; T < Threads; ++T)
    Phase.ParallelBodies.push_back(
        [=]() { return incrementLoop(Array + T * 4, Iterations); });

  // 3. Run and report. The profiler consumes samples through the
  // pmu::SampleSource seam; the simulated PMU is the backend here.
  pmu::SimPmu Pmu(Config.Pmu);
  Pmu.setSink(&Profiler);
  sim::Simulator Sim(Config.Geometry, sim::LatencyModel());
  Sim.addObserver(Pmu.simObserver());
  sim::SimulationResult Run = Sim.run(Program);
  core::ProfileResult Result = Profiler.finish(Run);

  std::printf("ran %zu threads for %llu cycles; %llu samples collected\n",
              Run.Threads.size() - 1,
              static_cast<unsigned long long>(Run.TotalCycles),
              static_cast<unsigned long long>(Result.SamplesDelivered));

  if (Result.Reports.empty()) {
    std::printf("no false sharing found (try removing the padding!)\n");
    return 0;
  }
  for (const core::FalseSharingReport &Report : Result.Reports) {
    std::printf("\n--- detected instance ---\n");
    std::fputs(core::formatReport(Report).c_str(), stdout);
  }
  std::printf("\nfix: declare each thread's element on its own cache line "
              "(e.g. a struct padded to 64 bytes)\n");
  return 0;
}
