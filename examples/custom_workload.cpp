//===- examples/custom_workload.cpp - Profiling your own program -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How to model and profile *your own* program: a work-queue system where
/// worker threads update per-worker statistics. Two designs are compared:
///
///   - `stats[nworkers]` as a packed array of 16-byte structs (the natural
///     first attempt) — false sharing;
///   - the same array where each slot also hosts a genuinely shared
///     `global_tickets` counter word — true sharing, which padding cannot
///     fix and which Cheetah must classify differently.
///
/// The example shows the classifier separating the two, and the assessment
/// putting a number only on the fixable one.
///
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"
#include "support/StringUtils.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace cheetah;

namespace {

Generator<ThreadEvent> worker(uint64_t QueueBase, uint64_t QueueBytes,
                              uint64_t MyStatsSlot, uint64_t TicketWord,
                              uint64_t Items) {
  uint64_t Cursor = 0;
  for (uint64_t I = 0; I < Items; ++I) {
    // Pop a task descriptor (private slice of the queue).
    co_yield ThreadEvent::read(QueueBase + Cursor, 8);
    Cursor = (Cursor + 8) % QueueBytes;
    co_yield ThreadEvent::compute(12);
    // Update my statistics: tasks done + cycles spent (two words).
    co_yield ThreadEvent::write(MyStatsSlot, 8);
    co_yield ThreadEvent::write(MyStatsSlot + 8, 8);
    // Occasionally take a global ticket: a word every worker writes.
    if (I % 64 == 0)
      co_yield ThreadEvent::write(TicketWord, 8);
  }
}

/// The user's program, wrapped in the Workload interface so the driver can
/// run it. `build` is an ordinary function: describe phases, allocate from
/// the context, return the program.
class WorkQueueApp : public workloads::Workload {
public:
  std::string name() const override { return "work_queue"; }
  std::string suite() const override { return "example"; }
  std::string description() const override {
    return "worker threads with packed per-worker stats and a shared "
           "ticket counter";
  }

  sim::ForkJoinProgram
  build(workloads::WorkloadContext &Ctx,
        const workloads::WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t ItemsPerWorker = 30000;
    uint64_t QueueBytes = 64 * 1024;

    // Per-worker queues (private).
    std::vector<uint64_t> Queues;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Queues.push_back(Ctx.allocate(QueueBytes, "workqueue.c", 41));

    // The packed stats array: 16 bytes per worker. Fixed variant pads each
    // slot to a cache line.
    uint64_t SlotStride =
        Config.FixFalseSharing ? Ctx.Geometry.lineSize() : 16;
    uint64_t Stats =
        Ctx.allocate(Config.Threads * SlotStride, "workqueue.c", 58);

    // The shared ticket counter: one word everybody really does share.
    uint64_t Tickets = Ctx.global("global_tickets", 8, true);

    sim::PhaseSpec &Phase = Program.addPhase("drain");
    uint64_t FirstQueue = Queues[0];
    Phase.SerialBody = [=]() -> Generator<ThreadEvent> {
      for (uint64_t Offset = 0; Offset < QueueBytes; Offset += 8)
        co_yield ThreadEvent::write(FirstQueue + Offset, 8);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Queue = Queues[T];
      uint64_t Slot = Stats + T * SlotStride;
      Phase.ParallelBodies.push_back([=]() {
        return worker(Queue, QueueBytes, Slot, Tickets, ItemsPerWorker);
      });
    }
    return Program;
  }
};

} // namespace

int main() {
  WorkQueueApp App;
  driver::SessionConfig Config;
  Config.Workload.Threads = 8;
  Config.Profiler.Pmu = Config.Profiler.Pmu.withScaledPeriod(256);

  driver::SessionResult Result = driver::runWorkload(App, Config);

  std::printf("profiling the packed design (8 workers)...\n\n");
  std::printf("%s\n",
              core::formatSummaryTable(Result.Profile.AllInstances).c_str());

  const core::FalseSharingReport *StatsReport =
      Result.Profile.findReport("workqueue.c:58");
  if (StatsReport) {
    std::printf("the stats array IS falsely shared; Cheetah predicts "
                "%.2fx from padding it.\n",
                StatsReport->Impact.ImprovementFactor);
  }
  bool SawTrueSharing = false;
  for (const auto &Instance : Result.Profile.AllInstances)
    if (!Instance.Object.IsHeap &&
        Instance.Object.GlobalName == "global_tickets")
      SawTrueSharing = Instance.Kind != core::SharingKind::FalseSharing;
  if (SawTrueSharing)
    std::printf("global_tickets is TRUE sharing: padding cannot help; "
                "Cheetah does not report it as fixable.\n");

  std::printf("\napplying the padding fix to the stats array only...\n");
  driver::SessionConfig Fixed = Config;
  Fixed.Workload.FixFalseSharing = true;
  Fixed.EnableProfiler = false;
  driver::SessionResult FixedRun = driver::runWorkload(App, Fixed);
  std::printf("runtime %s -> %s cycles (%.2fx)\n",
              formatWithCommas(Result.Run.TotalCycles).c_str(),
              formatWithCommas(FixedRun.Run.TotalCycles).c_str(),
              static_cast<double>(Result.Run.TotalCycles) /
                  static_cast<double>(FixedRun.Run.TotalCycles));
  return 0;
}
