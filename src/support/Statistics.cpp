//===- support/Statistics.cpp - Streaming and batch statistics -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/Assert.h"

#include <algorithm>
#include <cmath>

using namespace cheetah;

void OnlineStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  Sum += X;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double OnlineStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  uint64_t Total = N + Other.N;
  double Delta = Other.Mean - Mean;
  double NewMean =
      Mean + Delta * static_cast<double>(Other.N) / static_cast<double>(Total);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(N) *
                       static_cast<double>(Other.N) /
                       static_cast<double>(Total);
  Mean = NewMean;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
  Sum += Other.Sum;
  N = Total;
}

double cheetah::percentile(std::vector<double> Values, double Q) {
  if (Values.empty())
    return 0.0;
  CHEETAH_ASSERT(Q >= 0.0 && Q <= 1.0, "quantile must be in [0,1]");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Pos = Q * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double cheetah::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    CHEETAH_ASSERT(V > 0.0, "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double cheetah::arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}
