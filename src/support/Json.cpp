//===- support/Json.cpp - Minimal JSON writer and parser ------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <cctype>
#include <charconv>
#include <clocale>
#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace cheetah;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string cheetah::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

void JsonWriter::separate() {
  if (PendingKey) {
    // The value after key() never takes a comma of its own.
    PendingKey = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

void JsonWriter::beginObject() {
  separate();
  Out += '{';
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  CHEETAH_ASSERT(!NeedComma.empty() && !PendingKey, "misnested endObject");
  NeedComma.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  separate();
  Out += '[';
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  CHEETAH_ASSERT(!NeedComma.empty() && !PendingKey, "misnested endArray");
  NeedComma.pop_back();
  Out += ']';
}

void JsonWriter::key(const std::string &Name) {
  CHEETAH_ASSERT(!PendingKey, "key() twice without a value");
  separate();
  Out += '"';
  Out += jsonEscape(Name);
  Out += "\":";
  PendingKey = true;
}

void JsonWriter::value(const std::string &Text) {
  separate();
  Out += '"';
  Out += jsonEscape(Text);
  Out += '"';
}

void JsonWriter::value(const char *Text) { value(std::string(Text)); }

void JsonWriter::value(double Number) {
  separate();
  if (!std::isfinite(Number)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    Out += "null";
    return;
  }
#if defined(__cpp_lib_to_chars)
  // Shortest exact representation, locale-independent — printf %g honors
  // LC_NUMERIC and would emit "1,5" inside a host application that set a
  // European locale (the LD_PRELOAD deployment cannot control that).
  char Buffer[32];
  auto [End, Ec] = std::to_chars(Buffer, Buffer + sizeof(Buffer), Number);
  CHEETAH_ASSERT(Ec == std::errc(), "double did not fit to_chars buffer");
  Out.append(Buffer, End);
#else
  // Fallback: shortest of %.15g/%.16g/%.17g that parses back exactly,
  // with the locale's decimal point normalized to '.'.
  std::string Text;
  for (int Precision = 15; Precision <= 17; ++Precision) {
    Text = formatString("%.*g", Precision, Number);
    if (std::strtod(Text.c_str(), nullptr) == Number)
      break;
  }
  if (const char *Point = std::localeconv()->decimal_point)
    if (*Point && *Point != '.')
      for (char &C : Text)
        if (C == *Point)
          C = '.';
  Out += Text;
#endif
}

void JsonWriter::value(uint64_t Number) {
  separate();
  Out += formatString("%llu", static_cast<unsigned long long>(Number));
}

void JsonWriter::value(int64_t Number) {
  separate();
  Out += formatString("%lld", static_cast<long long>(Number));
}

void JsonWriter::value(bool Flag) {
  separate();
  Out += Flag ? "true" : "false";
}

void JsonWriter::null() {
  separate();
  Out += "null";
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace cheetah {

/// Recursive-descent parser over the whole input string.
class JsonParser {
public:
  JsonParser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run(JsonValue &Result) {
    skipSpace();
    if (!parseValue(Result, 0))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 128;

  bool fail(const std::string &Message) {
    Error = formatString("JSON error at offset %zu: %s", Pos,
                         Message.c_str());
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(formatString("expected '%s'", Word));
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.NodeKind = JsonValue::Kind::String;
      return parseString(Out.StringValue);
    case 't':
      Out.NodeKind = JsonValue::Kind::Bool;
      Out.BoolValue = true;
      return literal("true");
    case 'f':
      Out.NodeKind = JsonValue::Kind::Bool;
      Out.BoolValue = false;
      return literal("false");
    case 'n':
      Out.NodeKind = JsonValue::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    Out.NodeKind = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (consume('}'))
      return true;
    for (;;) {
      skipSpace();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      if (!parseString(Key))
        return false;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':' after key");
      skipSpace();
      JsonValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Member));
      skipSpace();
      if (consume('}'))
        return true;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    Out.NodeKind = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (consume(']'))
      return true;
    for (;;) {
      skipSpace();
      JsonValue Element;
      if (!parseValue(Element, Depth + 1))
        return false;
      Out.Elements.push_back(std::move(Element));
      skipSpace();
      if (consume(']'))
        return true;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char Escape = Text[Pos++];
      switch (Escape) {
      case '"':
      case '\\':
      case '/':
        Out += Escape;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs unsupported —
        // Cheetah never emits them; decode as-is for robustness).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    // JSON numbers never start with '+' (only exponents may carry it);
    // strtod would accept it, so reject before the scan.
    if (Pos < Text.size() && Text[Pos] == '+')
      return fail("expected a value");
    consume('-');
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    std::string Number = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double Value = std::strtod(Number.c_str(), &End);
    if (End != Number.c_str() + Number.size())
      return fail("malformed number");
    Out.NodeKind = JsonValue::Kind::Number;
    Out.NumberValue = Value;
    return true;
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace cheetah

bool JsonValue::parse(const std::string &Text, JsonValue &Result,
                      std::string &Error) {
  Result = JsonValue();
  return JsonParser(Text, Error).run(Result);
}

bool JsonValue::asBool() const {
  CHEETAH_ASSERT(NodeKind == Kind::Bool, "not a bool");
  return BoolValue;
}

double JsonValue::asNumber() const {
  CHEETAH_ASSERT(NodeKind == Kind::Number, "not a number");
  return NumberValue;
}

uint64_t JsonValue::asUint() const {
  double N = asNumber();
  CHEETAH_ASSERT(N >= 0, "negative number read as unsigned");
  // Integer tokens below 2^53 parse exactly; truncation is the identity on
  // them, whereas adding 0.5 would round odd values >= 2^52 up by one.
  return static_cast<uint64_t>(N);
}

const std::string &JsonValue::asString() const {
  CHEETAH_ASSERT(NodeKind == Kind::String, "not a string");
  return StringValue;
}

const std::vector<JsonValue> &JsonValue::elements() const {
  CHEETAH_ASSERT(NodeKind == Kind::Array, "not an array");
  return Elements;
}

const JsonValue *JsonValue::find(const std::string &Name) const {
  if (NodeKind != Kind::Object)
    return nullptr;
  for (const auto &[Key, Value] : Members)
    if (Key == Name)
      return &Value;
  return nullptr;
}

size_t JsonValue::size() const {
  return NodeKind == Kind::Object ? Members.size() : Elements.size();
}

//===----------------------------------------------------------------------===//
// Kind-checked field access
//===----------------------------------------------------------------------===//

bool cheetah::jsonFieldString(const JsonValue &Object, const char *Name,
                              std::string &Out, std::string &Error) {
  const JsonValue *Field = Object.find(Name);
  if (!Field || Field->kind() != JsonValue::Kind::String) {
    Error = formatString("field '%s' missing or not a string", Name);
    return false;
  }
  Out = Field->asString();
  return true;
}

bool cheetah::jsonFieldUint(const JsonValue &Object, const char *Name,
                            uint64_t &Out, std::string &Error) {
  const JsonValue *Field = Object.find(Name);
  if (!Field || Field->kind() != JsonValue::Kind::Number) {
    Error = formatString("field '%s' missing or not a number", Name);
    return false;
  }
  // asUint() asserts on negatives; a hostile document must error instead.
  if (Field->asNumber() < 0) {
    Error = formatString("field '%s' is negative", Name);
    return false;
  }
  Out = Field->asUint();
  return true;
}

bool cheetah::jsonFieldBool(const JsonValue &Object, const char *Name,
                            bool &Out, std::string &Error) {
  const JsonValue *Field = Object.find(Name);
  if (!Field || Field->kind() != JsonValue::Kind::Bool) {
    Error = formatString("field '%s' missing or not a boolean", Name);
    return false;
  }
  Out = Field->asBool();
  return true;
}

bool cheetah::jsonFieldDouble(const JsonValue &Object, const char *Name,
                              double &Out, std::string &Error) {
  const JsonValue *Field = Object.find(Name);
  if (!Field || Field->kind() != JsonValue::Kind::Number) {
    Error = formatString("field '%s' missing or not a number", Name);
    return false;
  }
  Out = Field->asNumber();
  return true;
}
