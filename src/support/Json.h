//===- support/Json.h - Minimal JSON writer and parser ----------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON toolkit sized for Cheetah's needs: a streaming
/// writer the report pipeline uses to serialize findings incrementally
/// (one finding at a time, no document tree in memory), and a small
/// recursive-descent parser used by tests and multi-run comparison tooling
/// to read reports back. Both cover the full JSON grammar; numbers are
/// stored as doubles (exact for the counter magnitudes Cheetah emits,
/// < 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SUPPORT_JSON_H
#define CHEETAH_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cheetah {

/// \returns \p Text with JSON string escaping applied (quotes, backslash,
/// control characters), without surrounding quotes.
std::string jsonEscape(const std::string &Text);

/// Streaming JSON emitter appending to a caller-owned string. Handles
/// comma placement and string escaping; the caller provides structure via
/// begin/end calls. Misnesting is a programming error (asserted).
class JsonWriter {
public:
  explicit JsonWriter(std::string &Out) : Out(Out) {}

  /// Value emitters, usable at the top level, as array elements, or after
  /// key().
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void value(const std::string &Text);
  void value(const char *Text);
  void value(double Number);
  void value(uint64_t Number);
  void value(int64_t Number);
  void value(int Number) { value(static_cast<int64_t>(Number)); }
  void value(unsigned Number) { value(static_cast<uint64_t>(Number)); }
  void value(bool Flag);
  void null();

  /// Emits an object member key; the next emitted value belongs to it.
  void key(const std::string &Name);

  /// key() + value() in one call.
  template <typename T> void member(const std::string &Name, const T &Value) {
    key(Name);
    value(Value);
  }

private:
  void separate();

  std::string &Out;
  /// One frame per open object/array: whether a separator is needed before
  /// the next value at that level.
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

/// A parsed JSON document node.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  /// Parses \p Text into \p Result. On failure returns false and describes
  /// the problem (with byte offset) in \p Error.
  static bool parse(const std::string &Text, JsonValue &Result,
                    std::string &Error);

  Kind kind() const { return NodeKind; }
  bool isNull() const { return NodeKind == Kind::Null; }
  bool isObject() const { return NodeKind == Kind::Object; }
  bool isArray() const { return NodeKind == Kind::Array; }

  /// Typed accessors; the node must have the matching kind.
  bool asBool() const;
  double asNumber() const;
  /// asNumber() rounded to uint64 — counters round-trip exactly below 2^53.
  uint64_t asUint() const;
  const std::string &asString() const;
  const std::vector<JsonValue> &elements() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue *find(const std::string &Name) const;
  /// Number of object members / array elements.
  size_t size() const;

private:
  friend class JsonParser;

  Kind NodeKind = Kind::Null;
  bool BoolValue = false;
  double NumberValue = 0.0;
  std::string StringValue;
  std::vector<JsonValue> Elements;
  /// Object members in document order (schema stability is part of the
  /// report contract, so order is preserved rather than sorted).
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Kind-checked object-member accessors for code reading untrusted
/// documents (the diff/history tooling): unlike JsonValue's typed
/// accessors, which assert on kind mismatches, these turn every
/// structural surprise — missing member, wrong kind, negative where a
/// counter belongs — into a descriptive \p Error and a false return.
bool jsonFieldString(const JsonValue &Object, const char *Name,
                     std::string &Out, std::string &Error);
bool jsonFieldUint(const JsonValue &Object, const char *Name, uint64_t &Out,
                   std::string &Error);
bool jsonFieldBool(const JsonValue &Object, const char *Name, bool &Out,
                   std::string &Error);
bool jsonFieldDouble(const JsonValue &Object, const char *Name, double &Out,
                     std::string &Error);

} // namespace cheetah

#endif // CHEETAH_SUPPORT_JSON_H
