//===- support/CommandLine.cpp - Tiny flag parser -------------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace cheetah;

void FlagSet::addString(const std::string &Name, const std::string &Default,
                        const std::string &Help) {
  Flag F;
  F.FlagKind = Kind::String;
  F.StringValue = Default;
  F.Help = Help;
  F.DefaultText = Default;
  Flags[Name] = std::move(F);
}

void FlagSet::addInt(const std::string &Name, int64_t Default,
                     const std::string &Help) {
  Flag F;
  F.FlagKind = Kind::Int;
  F.IntValue = Default;
  F.Help = Help;
  F.DefaultText = std::to_string(Default);
  Flags[Name] = std::move(F);
}

void FlagSet::addDouble(const std::string &Name, double Default,
                        const std::string &Help) {
  Flag F;
  F.FlagKind = Kind::Double;
  F.DoubleValue = Default;
  F.Help = Help;
  F.DefaultText = formatString("%g", Default);
  Flags[Name] = std::move(F);
}

void FlagSet::addBool(const std::string &Name, bool Default,
                      const std::string &Help) {
  Flag F;
  F.FlagKind = Kind::Bool;
  F.BoolValue = Default;
  F.Help = Help;
  F.DefaultText = Default ? "true" : "false";
  Flags[Name] = std::move(F);
}

bool FlagSet::assign(Flag &F, const std::string &Text,
                     std::string &ErrorMessage, const std::string &Name) {
  switch (F.FlagKind) {
  case Kind::String:
    F.StringValue = Text;
    break;
  case Kind::Int: {
    // strtoll reports overflow by saturating to LLONG_MIN/LLONG_MAX and
    // setting errno to ERANGE — without the check a 20-digit
    // --sampling-period "parses" as LLONG_MAX and sails past downstream
    // range validation.
    char *End = nullptr;
    errno = 0;
    long long V = std::strtoll(Text.c_str(), &End, 0);
    if (End == Text.c_str() || *End != '\0') {
      ErrorMessage = "invalid integer for --" + Name + ": '" + Text + "'";
      return false;
    }
    if (errno == ERANGE) {
      ErrorMessage = "integer out of range for --" + Name + ": '" + Text +
                     "'";
      return false;
    }
    F.IntValue = V;
    break;
  }
  case Kind::Double: {
    // Same contract for doubles: ERANGE covers both overflow (+-HUGE_VAL)
    // and underflow (denormal/zero); explicit "inf"/"nan" tokens parse
    // without ERANGE, so non-finite results are rejected separately.
    char *End = nullptr;
    errno = 0;
    double V = std::strtod(Text.c_str(), &End);
    if (End == Text.c_str() || *End != '\0') {
      ErrorMessage = "invalid number for --" + Name + ": '" + Text + "'";
      return false;
    }
    if (errno == ERANGE || !std::isfinite(V)) {
      ErrorMessage = "number out of range for --" + Name + ": '" + Text +
                     "'";
      return false;
    }
    F.DoubleValue = V;
    break;
  }
  case Kind::Bool:
    if (Text == "true" || Text == "1" || Text == "yes") {
      F.BoolValue = true;
    } else if (Text == "false" || Text == "0" || Text == "no") {
      F.BoolValue = false;
    } else {
      ErrorMessage = "invalid boolean for --" + Name + ": '" + Text + "'";
      return false;
    }
    break;
  }
  F.Set = true;
  return true;
}

bool FlagSet::parse(int Argc, const char *const *Argv,
                    std::string &ErrorMessage) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (!startsWith(Arg, "--")) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    std::string Name = Body;
    std::string Value;
    bool HasValue = false;
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
      HasValue = true;
    }
    auto It = Flags.find(Name);
    if (It == Flags.end()) {
      ErrorMessage = "unknown flag --" + Name;
      return false;
    }
    Flag &F = It->second;
    if (!HasValue) {
      if (F.FlagKind == Kind::Bool) {
        F.BoolValue = true;
        F.Set = true;
        continue;
      }
      if (I + 1 >= Argc) {
        ErrorMessage = "missing value for --" + Name;
        return false;
      }
      Value = Argv[++I];
    }
    if (!assign(F, Value, ErrorMessage, Name))
      return false;
  }
  return true;
}

const FlagSet::Flag *FlagSet::find(const std::string &Name, Kind K) const {
  auto It = Flags.find(Name);
  CHEETAH_ASSERT(It != Flags.end(), "flag was never registered");
  CHEETAH_ASSERT(It->second.FlagKind == K, "flag accessed with wrong type");
  return &It->second;
}

const std::string &FlagSet::getString(const std::string &Name) const {
  return find(Name, Kind::String)->StringValue;
}

int64_t FlagSet::getInt(const std::string &Name) const {
  return find(Name, Kind::Int)->IntValue;
}

double FlagSet::getDouble(const std::string &Name) const {
  return find(Name, Kind::Double)->DoubleValue;
}

bool FlagSet::getBool(const std::string &Name) const {
  return find(Name, Kind::Bool)->BoolValue;
}

bool FlagSet::wasSet(const std::string &Name) const {
  auto It = Flags.find(Name);
  CHEETAH_ASSERT(It != Flags.end(), "flag was never registered");
  return It->second.Set;
}

std::string FlagSet::usage(const std::string &ProgramName) const {
  std::string Out = "usage: " + ProgramName + " [flags]\n";
  for (const auto &[Name, F] : Flags)
    Out += formatString("  --%-24s %s (default: %s)\n", Name.c_str(),
                        F.Help.c_str(), F.DefaultText.c_str());
  return Out;
}
