//===- support/Statistics.h - Streaming and batch statistics ----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics utilities used by the assessment engine and the benchmark
/// harnesses: streaming mean/variance (Welford), percentiles, geometric mean.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SUPPORT_STATISTICS_H
#define CHEETAH_SUPPORT_STATISTICS_H

#include <cstdint>
#include <vector>

namespace cheetah {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
public:
  /// Adds one observation.
  void add(double X);

  /// Number of observations added so far.
  uint64_t count() const { return N; }

  /// Arithmetic mean; 0 when empty.
  double mean() const { return N ? Mean : 0.0; }

  /// Sample variance (N-1 denominator); 0 with fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest observation; 0 when empty.
  double min() const { return N ? Min : 0.0; }

  /// Largest observation; 0 when empty.
  double max() const { return N ? Max : 0.0; }

  /// Sum of all observations.
  double sum() const { return Sum; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const OnlineStats &Other);

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Sum = 0.0;
};

/// \returns the \p Q-quantile (Q in [0,1]) of \p Values using linear
/// interpolation between order statistics. \p Values is copied and sorted.
/// Returns 0 for an empty input.
double percentile(std::vector<double> Values, double Q);

/// \returns the geometric mean of \p Values; 0 for empty input. All values
/// must be positive.
double geometricMean(const std::vector<double> &Values);

/// \returns the arithmetic mean of \p Values; 0 for empty input.
double arithmeticMean(const std::vector<double> &Values);

} // namespace cheetah

#endif // CHEETAH_SUPPORT_STATISTICS_H
