//===- support/Generator.h - Coroutine generator ----------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal C++20 coroutine generator. Workload kernels are written as
/// ordinary loops that `co_yield` one memory access at a time; the simulator
/// pulls from many generators to interleave threads without needing real
/// threads or full traces in memory.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SUPPORT_GENERATOR_H
#define CHEETAH_SUPPORT_GENERATOR_H

#include "support/Assert.h"

#include <coroutine>
#include <utility>

namespace cheetah {

/// A lazily-evaluated stream of values of type \p T produced by a coroutine.
///
/// The generator owns the coroutine frame and destroys it on destruction.
/// Typical pull-style consumption:
/// \code
///   Generator<int> G = makeInts();
///   while (G.next())
///     use(G.value());
/// \endcode
template <typename T> class Generator {
public:
  struct promise_type {
    T Current{};

    Generator get_return_object() {
      return Generator(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    std::suspend_always yield_value(T Value) noexcept {
      Current = std::move(Value);
      return {};
    }
    void return_void() noexcept {}
    void unhandled_exception() {
      CHEETAH_UNREACHABLE("exception escaped a Cheetah generator");
    }
  };

  Generator() = default;
  explicit Generator(std::coroutine_handle<promise_type> Handle)
      : Handle(Handle) {}

  Generator(Generator &&Other) noexcept
      : Handle(std::exchange(Other.Handle, nullptr)) {}
  Generator &operator=(Generator &&Other) noexcept {
    if (this == &Other)
      return *this;
    destroy();
    Handle = std::exchange(Other.Handle, nullptr);
    return *this;
  }

  Generator(const Generator &) = delete;
  Generator &operator=(const Generator &) = delete;

  ~Generator() { destroy(); }

  /// Advances the coroutine to the next `co_yield`.
  /// \returns true if a new value is available, false when exhausted.
  bool next() {
    if (!Handle || Handle.done())
      return false;
    Handle.resume();
    return !Handle.done();
  }

  /// The most recently yielded value. Only valid after next() returned true.
  const T &value() const {
    CHEETAH_ASSERT(Handle && !Handle.done(), "value() on exhausted generator");
    return Handle.promise().Current;
  }

  /// \returns true if the generator holds a live, unfinished coroutine.
  bool live() const { return Handle && !Handle.done(); }

  /// \returns true if the generator holds any coroutine frame at all.
  explicit operator bool() const { return static_cast<bool>(Handle); }

private:
  void destroy() {
    if (Handle) {
      Handle.destroy();
      Handle = nullptr;
    }
  }

  std::coroutine_handle<promise_type> Handle;
};

} // namespace cheetah

#endif // CHEETAH_SUPPORT_GENERATOR_H
