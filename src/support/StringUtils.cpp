//===- support/StringUtils.cpp - String formatting helpers ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include "support/Assert.h"

#include <cstdarg>
#include <cstdio>

using namespace cheetah;

std::string cheetah::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  CHEETAH_ASSERT(Needed >= 0, "vsnprintf failed");
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string cheetah::formatWithCommas(uint64_t N) {
  std::string Digits = std::to_string(N);
  std::string Result;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Result.push_back(',');
    Result.push_back(*It);
    ++Count;
  }
  return std::string(Result.rbegin(), Result.rend());
}

std::string cheetah::formatHuman(uint64_t N) {
  static const char *Suffixes[] = {"", "K", "M", "G", "T"};
  int Index = 0;
  while (N >= 1024 && N % 1024 == 0 && Index < 4) {
    N /= 1024;
    ++Index;
  }
  return std::to_string(N) + Suffixes[Index];
}

std::vector<std::string> cheetah::splitString(const std::string &Text,
                                              char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string cheetah::trimString(const std::string &Text) {
  size_t Begin = Text.find_first_not_of(" \t\r\n");
  if (Begin == std::string::npos)
    return "";
  size_t End = Text.find_last_not_of(" \t\r\n");
  return Text.substr(Begin, End - Begin + 1);
}

bool cheetah::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

void TextTable::setHeader(std::vector<std::string> Columns) {
  Header = std::move(Columns);
}

void TextTable::addRow(std::vector<std::string> Columns) {
  CHEETAH_ASSERT(Columns.size() <= Header.size() || Header.empty(),
                 "row wider than header");
  Rows.push_back(std::move(Columns));
}

std::string TextTable::render() const {
  // Compute column widths over header and all rows.
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());
  std::vector<size_t> Widths(NumCols, 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      Out += Row[I];
      if (I + 1 < Row.size())
        Out.append(Widths[I] - Row[I].size() + 2, ' ');
    }
    Out.push_back('\n');
  };
  if (!Header.empty()) {
    Emit(Header);
    size_t RuleWidth = 0;
    for (size_t I = 0; I < Widths.size(); ++I)
      RuleWidth += Widths[I] + (I + 1 < Widths.size() ? 2 : 0);
    Out.append(RuleWidth, '-');
    Out.push_back('\n');
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}
