//===- support/Assert.h - Assertion helpers ---------------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion macros used throughout the Cheetah library. The library does not
/// use exceptions; invariant violations abort with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SUPPORT_ASSERT_H
#define CHEETAH_SUPPORT_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace cheetah {

/// Prints a diagnostic and aborts. Used to mark code paths that must never be
/// reached if the program invariants hold.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         int Line) {
  std::fprintf(stderr, "%s:%d: unreachable: %s\n", File, Line, Msg);
  std::abort();
}

/// Prints a diagnostic for a failed assertion and aborts.
[[noreturn]] inline void assertFailImpl(const char *Cond, const char *Msg,
                                        const char *File, int Line) {
  std::fprintf(stderr, "%s:%d: assertion `%s` failed: %s\n", File, Line, Cond,
               Msg);
  std::abort();
}

} // namespace cheetah

/// Assert \p Cond with an explanatory message. Always enabled: the profiler
/// is a measurement tool and silent state corruption would invalidate every
/// number it reports.
#define CHEETAH_ASSERT(Cond, Msg)                                             \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::cheetah::assertFailImpl(#Cond, Msg, __FILE__, __LINE__);               \
  } while (false)

/// Marks a point in code that should never be reached.
#define CHEETAH_UNREACHABLE(Msg)                                               \
  ::cheetah::unreachableImpl(Msg, __FILE__, __LINE__)

#endif // CHEETAH_SUPPORT_ASSERT_H
