//===- support/CommandLine.h - Tiny flag parser -----------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small `--flag=value` / `--flag value` parser shared by the tools,
/// examples, and benchmark harnesses. Only what those binaries need: string,
/// integer, double, and boolean flags with defaults and a generated usage
/// string.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SUPPORT_COMMANDLINE_H
#define CHEETAH_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cheetah {

/// Registry of named command-line flags and their parsed values.
class FlagSet {
public:
  /// Registers a string flag.
  void addString(const std::string &Name, const std::string &Default,
                 const std::string &Help);
  /// Registers an integer flag.
  void addInt(const std::string &Name, int64_t Default,
              const std::string &Help);
  /// Registers a floating-point flag.
  void addDouble(const std::string &Name, double Default,
                 const std::string &Help);
  /// Registers a boolean flag (`--name` alone means true).
  void addBool(const std::string &Name, bool Default, const std::string &Help);

  /// Parses argv. On error, fills \p ErrorMessage and returns false.
  /// Non-flag arguments are collected into positional().
  bool parse(int Argc, const char *const *Argv, std::string &ErrorMessage);

  /// Accessors; the flag must have been registered with the matching type.
  const std::string &getString(const std::string &Name) const;
  int64_t getInt(const std::string &Name) const;
  double getDouble(const std::string &Name) const;
  bool getBool(const std::string &Name) const;

  /// \returns true if the user explicitly supplied the flag.
  bool wasSet(const std::string &Name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string> &positional() const { return Positional; }

  /// \returns a human-readable usage summary of all registered flags.
  std::string usage(const std::string &ProgramName) const;

private:
  enum class Kind { String, Int, Double, Bool };
  struct Flag {
    Kind FlagKind;
    std::string StringValue;
    int64_t IntValue = 0;
    double DoubleValue = 0.0;
    bool BoolValue = false;
    std::string Help;
    std::string DefaultText;
    bool Set = false;
  };

  const Flag *find(const std::string &Name, Kind K) const;
  bool assign(Flag &F, const std::string &Text, std::string &ErrorMessage,
              const std::string &Name);

  std::map<std::string, Flag> Flags;
  std::vector<std::string> Positional;
};

} // namespace cheetah

#endif // CHEETAH_SUPPORT_COMMANDLINE_H
