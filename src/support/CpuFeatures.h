//===- support/CpuFeatures.h - Runtime CPU capability probes ----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime CPU-feature detection and portable software-prefetch hints for
/// the data-parallel ingestion kernels. Dispatch policy: kernels are
/// selected once at decoder construction (never per batch), every SIMD
/// kernel has a bit-identical scalar fallback, and building with
/// -DCHEETAH_FORCE_SCALAR=ON compiles the SIMD kernels out entirely so the
/// fallback is an executable equivalence gate, not dead code.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SUPPORT_CPUFEATURES_H
#define CHEETAH_SUPPORT_CPUFEATURES_H

namespace cheetah {
namespace support {

/// \returns true if this CPU executes AVX2 instructions. Constant-folded to
/// false on non-x86 targets and compilers without the probe builtin; the
/// callers' scalar fallbacks keep those configurations fully functional.
inline bool cpuHasAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) &&                              \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

/// Hints the hardware prefetcher to pull \p Address toward the cache for a
/// read. A hint only: safe on any address, including unmapped ones, and a
/// no-op on compilers without the builtin.
inline void prefetchForRead(const void *Address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(Address, /*rw=*/0, /*locality=*/3);
#else
  (void)Address;
#endif
}

/// Same hint with write intent (the line is fetched in exclusive state, so
/// the following atomic RMW skips the shared-to-exclusive upgrade).
inline void prefetchForWrite(const void *Address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(Address, /*rw=*/1, /*locality=*/3);
#else
  (void)Address;
#endif
}

} // namespace support
} // namespace cheetah

#endif // CHEETAH_SUPPORT_CPUFEATURES_H
