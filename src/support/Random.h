//===- support/Random.h - Deterministic PRNGs -------------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based pseudo-random number generation. Every stochastic choice
/// in the simulator and in the workload models draws from an explicitly
/// seeded SplitMix64 so runs are reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SUPPORT_RANDOM_H
#define CHEETAH_SUPPORT_RANDOM_H

#include "support/Assert.h"

#include <cstdint>

namespace cheetah {

/// SplitMix64: a tiny, fast, high-quality 64-bit PRNG (Steele et al.).
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// \returns the next 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    CHEETAH_ASSERT(Bound != 0, "nextBelow(0) is meaningless");
    // Lemire's multiply-shift rejection-free approximation is fine here: the
    // tiny modulo bias is irrelevant for workload-shaping purposes.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// \returns a uniformly distributed value in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    CHEETAH_ASSERT(Lo <= Hi, "empty range");
    uint64_t Span = Hi - Lo + 1;
    // Span wraps to 0 exactly when the range covers all 2^64 values, in
    // which case any raw draw is uniform; nextBelow(0) would assert.
    if (Span == 0)
      return next();
    return Lo + nextBelow(Span);
  }

  /// \returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P) { return nextDouble() < P; }

  /// Derives an independent child generator; useful for giving each simulated
  /// thread its own stream.
  SplitMix64 split() { return SplitMix64(next() ^ 0xd6e8feb86659fd93ull); }

private:
  uint64_t State;
};

} // namespace cheetah

#endif // CHEETAH_SUPPORT_RANDOM_H
