//===- support/StringUtils.h - String formatting helpers -------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-into-std::string helpers and human-readable number formatting used
/// by the reporting module and the benchmark harnesses. Library code writes
/// reports into strings rather than streams so callers choose the sink.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SUPPORT_STRINGUTILS_H
#define CHEETAH_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats \p N with thousands separators, e.g. 1234567 -> "1,234,567".
std::string formatWithCommas(uint64_t N);

/// Formats \p N as a compact human-readable quantity, e.g. 65536 -> "64K".
std::string formatHuman(uint64_t N);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// \returns \p Text with leading and trailing whitespace removed.
std::string trimString(const std::string &Text);

/// \returns true if \p Text begins with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// A simple column-aligned text table, used by every benchmark harness to
/// print paper-style rows.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Columns);

  /// Appends a data row; its width may not exceed the header's.
  void addRow(std::vector<std::string> Columns);

  /// Renders the table with padded columns and a separator rule.
  std::string render() const;

  /// Number of data rows added.
  size_t rowCount() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace cheetah

#endif // CHEETAH_SUPPORT_STRINGUTILS_H
