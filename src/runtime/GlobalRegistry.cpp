//===- runtime/GlobalRegistry.cpp - Named global variables ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/GlobalRegistry.h"

#include "support/Assert.h"

using namespace cheetah;
using namespace cheetah::runtime;

GlobalRegistry::GlobalRegistry(uint64_t SegmentBase, uint64_t SegmentSize,
                               const CacheGeometry &Geometry)
    : SegmentBase(SegmentBase), SegmentSize(SegmentSize), Cursor(SegmentBase),
      Geometry(Geometry) {
  CHEETAH_ASSERT((SegmentBase & (Geometry.lineSize() - 1)) == 0,
                 "segment base must be line-aligned");
}

uint64_t GlobalRegistry::defineImpl(const std::string &Name, uint64_t Size,
                                    uint64_t Alignment) {
  CHEETAH_ASSERT(Size > 0, "zero-sized global");
  uint64_t Mask = Alignment - 1;
  uint64_t Base = (Cursor + Mask) & ~Mask;
  if (Base + Size > SegmentBase + SegmentSize)
    return 0;
  Cursor = Base + Size;

  GlobalVariable Var;
  Var.Name = Name;
  Var.Start = Base;
  Var.Size = Size;
  Globals.push_back(std::move(Var));
  ByAddress[Base] = Globals.size() - 1;
  return Base;
}

uint64_t GlobalRegistry::define(const std::string &Name, uint64_t Size) {
  return defineImpl(Name, Size, /*Alignment=*/8);
}

uint64_t GlobalRegistry::defineAligned(const std::string &Name,
                                       uint64_t Size) {
  return defineImpl(Name, Size, Geometry.lineSize());
}

const GlobalVariable *GlobalRegistry::globalAt(uint64_t Address) const {
  if (!covers(Address) || ByAddress.empty())
    return nullptr;
  auto It = ByAddress.upper_bound(Address);
  if (It == ByAddress.begin())
    return nullptr;
  --It;
  const GlobalVariable &Var = Globals[It->second];
  if (!Var.contains(Address))
    return nullptr;
  return &Var;
}
