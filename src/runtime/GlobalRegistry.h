//===- runtime/GlobalRegistry.h - Named global variables --------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of named global variables. Cheetah reports falsely-shared
/// globals by "searching through the symbol table in the binary executable"
/// (Section 2.4); in simulation globals are registered explicitly with a
/// name and size and placed in a dedicated address region (the moral
/// equivalent of the .data/.bss segment), and in real-thread mode the ELF
/// SymbolTable reader provides the same name lookup.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_RUNTIME_GLOBALREGISTRY_H
#define CHEETAH_RUNTIME_GLOBALREGISTRY_H

#include "mem/CacheGeometry.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cheetah {
namespace runtime {

/// One registered global variable.
struct GlobalVariable {
  std::string Name;
  uint64_t Start = 0;
  uint64_t Size = 0;

  uint64_t end() const { return Start + Size; }
  bool contains(uint64_t Address) const {
    return Address >= Start && Address < end();
  }
};

/// Lays registered globals out in a fixed "segment" and answers
/// address-to-name queries.
class GlobalRegistry {
public:
  /// \param SegmentBase first address of the simulated data segment.
  /// \param SegmentSize byte size of the segment.
  GlobalRegistry(uint64_t SegmentBase, uint64_t SegmentSize,
                 const CacheGeometry &Geometry);

  /// Registers a global of \p Size bytes; consecutive globals are packed
  /// with natural 8-byte alignment exactly like a linker would pack .data,
  /// so adjacent small globals can share a cache line (a classic false-
  /// sharing source).
  /// \returns its assigned start address, or 0 if the segment is full.
  uint64_t define(const std::string &Name, uint64_t Size);

  /// Like define() but aligns the global to a cache-line boundary (the
  /// "fixed" layout a programmer gets with alignas(64)).
  uint64_t defineAligned(const std::string &Name, uint64_t Size);

  /// \returns the global containing \p Address, or nullptr.
  const GlobalVariable *globalAt(uint64_t Address) const;

  /// \returns true if \p Address lies inside the managed segment.
  bool covers(uint64_t Address) const {
    return Address >= SegmentBase && Address < SegmentBase + SegmentSize;
  }

  uint64_t segmentBase() const { return SegmentBase; }
  uint64_t segmentSize() const { return SegmentSize; }

  const std::vector<GlobalVariable> &globals() const { return Globals; }

private:
  uint64_t defineImpl(const std::string &Name, uint64_t Size,
                      uint64_t Alignment);

  uint64_t SegmentBase;
  uint64_t SegmentSize;
  uint64_t Cursor;
  CacheGeometry Geometry;
  std::vector<GlobalVariable> Globals;
  std::map<uint64_t, size_t> ByAddress;
};

} // namespace runtime
} // namespace cheetah

#endif // CHEETAH_RUNTIME_GLOBALREGISTRY_H
