//===- runtime/HeapAllocator.h - Hoard-style per-thread heap ----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheetah's custom heap (paper Section 2.2). Built "based on Heap Layers":
/// a fixed-size arena is reserved up front so the heap address range is
/// known (enabling O(1) shadow-memory indexing), objects are managed in
/// power-of-two size classes, and each thread allocates from its own
/// superblocks in the style of Hoard so that two objects in the same cache
/// line are never handed to two different threads (preventing allocator-
/// induced inter-object false sharing). Every allocation records its
/// callsite and requested size for precise reporting.
///
/// The allocator deals in *addresses* within the arena. In simulation the
/// arena is purely virtual; in real-thread mode the same logic can sit atop
/// an mmap'ed region.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_RUNTIME_HEAPALLOCATOR_H
#define CHEETAH_RUNTIME_HEAPALLOCATOR_H

#include "mem/CacheGeometry.h"
#include "mem/MemoryAccess.h"
#include "runtime/Callsite.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace cheetah {
namespace runtime {

/// Metadata for one heap object, live or freed.
struct HeapObject {
  /// First usable byte address.
  uint64_t Start = 0;
  /// Usable size (the size-class size, >= RequestedSize).
  uint64_t Size = 0;
  /// Size the caller asked for.
  uint64_t RequestedSize = 0;
  /// Interned allocation callsite.
  CallsiteId Site = 0;
  /// Thread that allocated the object.
  ThreadId Owner = 0;
  /// Monotonic allocation sequence number.
  uint64_t AllocIndex = 0;
  /// False once deallocated (metadata is kept for attribution).
  bool Live = true;

  uint64_t end() const { return Start + Size; }
  bool contains(uint64_t Address) const {
    return Address >= Start && Address < end();
  }
};

/// Allocation counters, exposed for tests and the memory ablation.
struct HeapStats {
  uint64_t Allocations = 0;
  uint64_t Deallocations = 0;
  uint64_t BytesRequested = 0;
  uint64_t BytesReserved = 0;
  uint64_t ArenaBytesUsed = 0;
  uint64_t SuperblocksCarved = 0;
};

/// Per-thread size-class heap over a fixed arena.
class HeapAllocator {
public:
  /// \param ArenaBase first address of the managed range.
  /// \param ArenaSize byte size of the managed range.
  /// \param Geometry cache geometry (superblocks are line-aligned).
  HeapAllocator(uint64_t ArenaBase, uint64_t ArenaSize,
                const CacheGeometry &Geometry);

  /// Allocates \p Size bytes on behalf of \p Tid.
  /// \returns the object's start address, or 0 when the arena is exhausted.
  uint64_t allocate(uint64_t Size, ThreadId Tid, CallsiteId Site);

  /// Releases the object starting at \p Address back to \p Tid's free list.
  /// The object's metadata survives for attribution; \p Address must be a
  /// live object start.
  void deallocate(uint64_t Address, ThreadId Tid);

  /// \returns the object containing \p Address (live preferred; a freed
  /// object whose slot has not been recycled also matches), or nullptr.
  const HeapObject *objectAt(uint64_t Address) const;

  /// All objects ever allocated, in allocation order.
  const std::vector<HeapObject> &objects() const { return Objects; }

  /// \returns true if \p Address lies inside the managed arena.
  bool covers(uint64_t Address) const {
    return Address >= ArenaBase && Address < ArenaBase + ArenaSize;
  }

  uint64_t arenaBase() const { return ArenaBase; }
  uint64_t arenaSize() const { return ArenaSize; }

  const HeapStats &stats() const { return Stats; }

  /// Size-class (power-of-two) an allocation of \p Size lands in.
  static uint64_t sizeClassFor(uint64_t Size);

private:
  /// Free lists and bump state for one (thread, size class) pair.
  struct ClassHeap {
    std::vector<uint64_t> FreeList;
    uint64_t BumpCursor = 0;
    uint64_t BumpEnd = 0;
  };

  /// Carves a fresh superblock for (Tid, ClassSize). \returns false on OOM.
  bool refill(ClassHeap &Heap, uint64_t ClassSize);

  uint64_t ArenaBase;
  uint64_t ArenaSize;
  uint64_t ArenaCursor;
  CacheGeometry Geometry;
  uint64_t SuperblockBytes;

  std::unordered_map<uint64_t, ClassHeap> ClassHeaps; // key: tid<<8 | class
  std::vector<HeapObject> Objects;
  /// Start address -> index into Objects for the *most recent* object at
  /// that address (recycled slots overwrite the mapping).
  std::map<uint64_t, size_t> ByAddress;
  HeapStats Stats;
};

} // namespace runtime
} // namespace cheetah

#endif // CHEETAH_RUNTIME_HEAPALLOCATOR_H
