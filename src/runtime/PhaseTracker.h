//===- runtime/PhaseTracker.h - Fork-join phase tracking --------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks thread creations and joins to (a) verify the application follows
/// the fork-join model of Figure 3 — a prerequisite for the whole-program
/// assessment of Section 3.3 — and (b) segment the execution into serial
/// and parallel phases with their cycle spans. The detector also consults
/// the tracker to record detailed accesses only inside parallel phases,
/// Cheetah's fix for the init-then-share false positives Predator suffers
/// from (Section 2.4).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_RUNTIME_PHASETRACKER_H
#define CHEETAH_RUNTIME_PHASETRACKER_H

#include "mem/MemoryAccess.h"

#include <cstdint>
#include <vector>

namespace cheetah {
namespace runtime {

/// One serial or parallel span of the execution.
struct ExecutionPhase {
  bool Parallel = false;
  uint64_t StartTime = 0;
  uint64_t EndTime = 0;
  /// Child threads of this phase (parallel phases only).
  std::vector<ThreadId> Members;

  /// Guarded like ThreadProfile::runtime(): a phase still open at
  /// assessment time (EndTime 0) spans zero cycles, it does not wrap.
  uint64_t span() const {
    return EndTime < StartTime ? 0 : EndTime - StartTime;
  }
};

/// Online fork-join phase segmentation from thread lifecycle events.
class PhaseTracker {
public:
  /// Marks the beginning of the program (main thread running, serial).
  void programBegin(ThreadId MainTid, uint64_t Now);

  /// \p Creator created \p Child at time \p Now.
  void threadCreated(ThreadId Child, ThreadId Creator, uint64_t Now);

  /// \p Tid finished at \p Now (child threads only; the main thread ends
  /// via programEnd).
  void threadFinished(ThreadId Tid, uint64_t Now);

  /// Marks the end of the program.
  void programEnd(uint64_t Now);

  /// True while at least one child thread is live.
  bool inParallelPhase() const { return LiveChildren > 0; }

  /// True if every thread was created by the main thread and phases never
  /// overlapped — the fork-join model Cheetah's assessment supports.
  bool isForkJoin() const { return ForkJoin; }

  /// Completed phases in execution order (valid after programEnd).
  const std::vector<ExecutionPhase> &phases() const { return Phases; }

  /// Sum of serial phase spans.
  uint64_t serialCycles() const;

  /// Sum of parallel phase spans.
  uint64_t parallelCycles() const;

  /// Total tracked time.
  uint64_t totalCycles() const { return EndTime - BeginTime; }

  /// Index of the parallel phase a child thread belongs to, or -1.
  int phaseOf(ThreadId Tid) const;

private:
  void closeCurrentPhase(uint64_t Now);

  ThreadId MainTid = 0;
  bool Started = false;
  bool Ended = false;
  bool ForkJoin = true;
  uint64_t BeginTime = 0;
  uint64_t EndTime = 0;
  uint64_t CurrentPhaseStart = 0;
  uint32_t LiveChildren = 0;
  std::vector<ThreadId> CurrentMembers;
  std::vector<ExecutionPhase> Phases;
};

} // namespace runtime
} // namespace cheetah

#endif // CHEETAH_RUNTIME_PHASETRACKER_H
