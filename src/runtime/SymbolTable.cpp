//===- runtime/SymbolTable.cpp - ELF symbol table reader ------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/SymbolTable.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace cheetah;
using namespace cheetah::runtime;

namespace {

// Just enough ELF64 structure definitions to walk section headers and
// symbols; layouts per the System V gABI.
struct Elf64Header {
  unsigned char Ident[16];
  uint16_t Type;
  uint16_t Machine;
  uint32_t Version;
  uint64_t Entry;
  uint64_t PhOff;
  uint64_t ShOff;
  uint32_t Flags;
  uint16_t EhSize;
  uint16_t PhEntSize;
  uint16_t PhNum;
  uint16_t ShEntSize;
  uint16_t ShNum;
  uint16_t ShStrNdx;
};

struct Elf64SectionHeader {
  uint32_t Name;
  uint32_t Type;
  uint64_t Flags;
  uint64_t Addr;
  uint64_t Offset;
  uint64_t Size;
  uint32_t Link;
  uint32_t Info;
  uint64_t AddrAlign;
  uint64_t EntSize;
};

struct Elf64Symbol {
  uint32_t Name;
  unsigned char Info;
  unsigned char Other;
  uint16_t SectionIndex;
  uint64_t Value;
  uint64_t Size;
};

constexpr uint32_t SHT_SYMTAB = 2;
constexpr uint32_t SHT_DYNSYM = 11;
constexpr unsigned char STT_OBJECT = 1;

bool readFile(const std::string &Path, std::vector<char> &Out,
              std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open " + Path;
    return false;
  }
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  if (Size <= 0) {
    std::fclose(File);
    Error = "empty file " + Path;
    return false;
  }
  Out.resize(static_cast<size_t>(Size));
  size_t Read = std::fread(Out.data(), 1, Out.size(), File);
  std::fclose(File);
  if (Read != Out.size()) {
    Error = "short read of " + Path;
    return false;
  }
  return true;
}

} // namespace

bool SymbolTable::load(const std::string &Path, std::string &Error) {
  std::vector<char> Data;
  if (!readFile(Path, Data, Error))
    return false;
  if (Data.size() < sizeof(Elf64Header)) {
    Error = "file too small for an ELF header";
    return false;
  }

  Elf64Header Header;
  std::memcpy(&Header, Data.data(), sizeof(Header));
  if (std::memcmp(Header.Ident, "\x7f"
                                "ELF",
                  4) != 0) {
    Error = "not an ELF file";
    return false;
  }
  if (Header.Ident[4] != 2) { // ELFCLASS64
    Error = "only ELF64 binaries are supported";
    return false;
  }
  if (Header.ShOff == 0 || Header.ShNum == 0) {
    Error = "binary has no section headers (stripped?)";
    return false;
  }
  uint64_t SectionsEnd =
      Header.ShOff + static_cast<uint64_t>(Header.ShNum) * Header.ShEntSize;
  if (SectionsEnd > Data.size() ||
      Header.ShEntSize < sizeof(Elf64SectionHeader)) {
    Error = "malformed section header table";
    return false;
  }

  auto sectionAt = [&](uint16_t Index) {
    Elf64SectionHeader Section;
    std::memcpy(&Section,
                Data.data() + Header.ShOff +
                    static_cast<uint64_t>(Index) * Header.ShEntSize,
                sizeof(Section));
    return Section;
  };

  // Prefer the full .symtab; fall back to .dynsym for stripped binaries.
  int SymIndex = -1;
  for (uint16_t I = 0; I < Header.ShNum; ++I) {
    Elf64SectionHeader Section = sectionAt(I);
    if (Section.Type == SHT_SYMTAB) {
      SymIndex = I;
      break;
    }
    if (Section.Type == SHT_DYNSYM && SymIndex < 0)
      SymIndex = I;
  }
  if (SymIndex < 0) {
    Error = "no symbol table found";
    return false;
  }

  Elf64SectionHeader SymSection = sectionAt(static_cast<uint16_t>(SymIndex));
  if (SymSection.Link >= Header.ShNum) {
    Error = "symbol table has no string table";
    return false;
  }
  Elf64SectionHeader StrSection =
      sectionAt(static_cast<uint16_t>(SymSection.Link));
  if (SymSection.Offset + SymSection.Size > Data.size() ||
      StrSection.Offset + StrSection.Size > Data.size() ||
      SymSection.EntSize < sizeof(Elf64Symbol)) {
    Error = "malformed symbol or string table";
    return false;
  }

  const char *Strings = Data.data() + StrSection.Offset;
  uint64_t Count = SymSection.Size / SymSection.EntSize;
  Symbols.clear();
  ByName.clear();
  for (uint64_t I = 0; I < Count; ++I) {
    Elf64Symbol Symbol;
    std::memcpy(&Symbol,
                Data.data() + SymSection.Offset + I * SymSection.EntSize,
                sizeof(Symbol));
    if ((Symbol.Info & 0xf) != STT_OBJECT || Symbol.Size == 0 ||
        Symbol.Value == 0 || Symbol.Name == 0 ||
        Symbol.Name >= StrSection.Size)
      continue;
    DataSymbol Parsed;
    Parsed.Name = Strings + Symbol.Name;
    Parsed.Address = Symbol.Value;
    Parsed.Size = Symbol.Size;
    Symbols.push_back(std::move(Parsed));
  }

  std::sort(Symbols.begin(), Symbols.end(),
            [](const DataSymbol &A, const DataSymbol &B) {
              return A.Address < B.Address;
            });
  for (size_t I = 0; I < Symbols.size(); ++I)
    ByName.emplace(Symbols[I].Name, I);
  return true;
}

bool SymbolTable::loadSelf(std::string &Error) {
  return load("/proc/self/exe", Error);
}

const DataSymbol *SymbolTable::symbolAt(uint64_t Address,
                                        uint64_t LoadBias) const {
  if (Symbols.empty())
    return nullptr;
  uint64_t Target = Address - LoadBias;
  // Binary search for the last symbol with Address <= Target.
  auto It = std::upper_bound(
      Symbols.begin(), Symbols.end(), Target,
      [](uint64_t Value, const DataSymbol &S) { return Value < S.Address; });
  if (It == Symbols.begin())
    return nullptr;
  --It;
  if (!It->contains(Target))
    return nullptr;
  return &*It;
}

const DataSymbol *SymbolTable::symbolNamed(const std::string &Name) const {
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return nullptr;
  return &Symbols[It->second];
}
