//===- runtime/Callsite.h - Allocation callsite interning -------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation-callsite records. Cheetah intercepts every allocation and
/// keeps up to five call-stack frames (paper Section 2.4) so falsely-shared
/// heap objects can be reported by source line; callsites are interned so a
/// hot allocation site costs one integer per object.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_RUNTIME_CALLSITE_H
#define CHEETAH_RUNTIME_CALLSITE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cheetah {
namespace runtime {

/// Identifier of an interned callsite; 0 is "unknown".
using CallsiteId = uint32_t;

/// Maximum stack depth kept per callsite ("we only collect five function
/// entries on the call stack for performance reasons").
inline constexpr size_t MaxCallsiteFrames = 5;

/// One allocation callsite: innermost frame first, e.g.
/// "linear_regression-pthread.c:139".
struct Callsite {
  std::vector<std::string> Frames;

  /// \returns the innermost frame, or "<unknown>" when empty.
  const std::string &innermost() const;

  bool operator<(const Callsite &Other) const { return Frames < Other.Frames; }
};

/// Deduplicating store of callsites.
class CallsiteTable {
public:
  CallsiteTable();

  /// Interns \p Site (truncated to MaxCallsiteFrames frames).
  CallsiteId intern(Callsite Site);

  /// Convenience: interns a single "file:line" frame.
  CallsiteId intern(const std::string &File, unsigned Line);

  /// \returns the callsite for \p Id; Id 0 yields the unknown callsite.
  const Callsite &get(CallsiteId Id) const;

  /// Number of interned callsites including the unknown sentinel.
  size_t size() const { return Sites.size(); }

private:
  std::vector<Callsite> Sites;
  std::map<Callsite, CallsiteId> Index;
};

} // namespace runtime
} // namespace cheetah

#endif // CHEETAH_RUNTIME_CALLSITE_H
