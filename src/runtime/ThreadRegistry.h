//===- runtime/ThreadRegistry.h - Per-thread profiling state ---*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread counters the assessment engine needs (paper Section 3.2):
/// each thread's execution time RT_t (measured exactly via interception —
/// RDTSC in the real system, virtual clocks in simulation), and the
/// sample-derived totals Accesses_t and Cycles_t. Every thread records its
/// own sample events (the paper's F_SETOWN_EX trick), so there is no
/// cross-thread lookup on the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_RUNTIME_THREADREGISTRY_H
#define CHEETAH_RUNTIME_THREADREGISTRY_H

#include "mem/MemoryAccess.h"

#include <cstdint>
#include <vector>

namespace cheetah {
namespace runtime {

/// Profiling state for one thread.
struct ThreadProfile {
  ThreadId Tid = 0;
  bool IsMain = false;
  bool Registered = false;
  bool Finished = false;
  /// Interception timestamps (virtual cycles / TSC).
  uint64_t StartTime = 0;
  uint64_t EndTime = 0;
  /// Sample-derived totals: number of sampled accesses and the sum of their
  /// latencies (the paper's Accesses_t and Cycles_t).
  uint64_t SampledAccesses = 0;
  uint64_t SampledCycles = 0;

  /// RT_t: wall-clock of the thread body. A thread that never detached
  /// (EndTime still 0, or clock skew putting it before StartTime) has no
  /// measurable runtime; without the guard the subtraction wraps to ~2^64
  /// and poisons every EQ.2 prediction built on it.
  uint64_t runtime() const {
    return EndTime < StartTime ? 0 : EndTime - StartTime;
  }
};

/// Registry of all threads seen during one profiled execution.
class ThreadRegistry {
public:
  /// Records a thread starting at \p Now. Ids must be unique per run.
  void threadStarted(ThreadId Tid, bool IsMain, uint64_t Now);

  /// Records the thread's end time.
  void threadFinished(ThreadId Tid, uint64_t Now);

  /// Accumulates one sampled access for \p Tid.
  void recordSample(ThreadId Tid, uint32_t LatencyCycles);

  /// Accumulates a pre-aggregated batch of \p Count sampled accesses whose
  /// latencies sum to \p Cycles (the batched-ingest fast path).
  void recordSamples(ThreadId Tid, uint64_t Count, uint64_t Cycles);

  /// \returns the profile for \p Tid; the thread must have started.
  const ThreadProfile &profile(ThreadId Tid) const;

  /// \returns true if \p Tid has been registered.
  bool known(ThreadId Tid) const;

  /// All profiles ordered by thread id.
  const std::vector<ThreadProfile> &threads() const { return Profiles; }

  /// Sum of SampledAccesses over all threads.
  uint64_t totalSampledAccesses() const;

  /// Sum of SampledCycles over all threads.
  uint64_t totalSampledCycles() const;

  /// Clears all state.
  void reset() { Profiles.clear(); }

private:
  ThreadProfile &mutableProfile(ThreadId Tid);

  /// Dense by thread id: simulator ids are consecutive from 0.
  std::vector<ThreadProfile> Profiles;
};

} // namespace runtime
} // namespace cheetah

#endif // CHEETAH_RUNTIME_THREADREGISTRY_H
