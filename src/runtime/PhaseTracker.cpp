//===- runtime/PhaseTracker.cpp - Fork-join phase tracking ----------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/PhaseTracker.h"

#include "support/Assert.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::runtime;

void PhaseTracker::programBegin(ThreadId Main, uint64_t Now) {
  CHEETAH_ASSERT(!Started, "programBegin called twice");
  Started = true;
  MainTid = Main;
  BeginTime = Now;
  CurrentPhaseStart = Now;
}

void PhaseTracker::closeCurrentPhase(uint64_t Now) {
  ExecutionPhase Phase;
  Phase.Parallel = !CurrentMembers.empty();
  Phase.StartTime = CurrentPhaseStart;
  Phase.EndTime = Now;
  Phase.Members = std::move(CurrentMembers);
  CurrentMembers.clear();
  // Zero-length serial gaps between back-to-back parallel phases are
  // dropped; they carry no time and would only add noise to reports.
  if (Phase.span() > 0 || Phase.Parallel)
    Phases.push_back(std::move(Phase));
  CurrentPhaseStart = Now;
}

void PhaseTracker::threadCreated(ThreadId Child, ThreadId Creator,
                                 uint64_t Now) {
  CHEETAH_ASSERT(Started && !Ended, "thread created outside program span");
  // Nested parallelism (a child creating threads) leaves the fork-join
  // model; Cheetah then skips the whole-program assessment (Section 3.3).
  if (Creator != MainTid)
    ForkJoin = false;
  if (LiveChildren == 0) {
    // Transition serial -> parallel: the serial phase ends here.
    closeCurrentPhase(Now);
  }
  CurrentMembers.push_back(Child);
  ++LiveChildren;
}

void PhaseTracker::threadFinished(ThreadId Tid, uint64_t Now) {
  CHEETAH_ASSERT(Started && !Ended, "thread finished outside program span");
  CHEETAH_ASSERT(LiveChildren > 0, "join without live children");
  --LiveChildren;
  if (LiveChildren == 0) {
    // Transition parallel -> serial: "an application leaves a parallel
    // phase after all child threads have been successfully joined".
    closeCurrentPhase(Now);
  }
}

void PhaseTracker::programEnd(uint64_t Now) {
  CHEETAH_ASSERT(Started && !Ended, "programEnd without begin");
  if (LiveChildren > 0)
    ForkJoin = false; // Main exits while children run: not fork-join.
  closeCurrentPhase(Now);
  Ended = true;
  EndTime = Now;
}

uint64_t PhaseTracker::serialCycles() const {
  uint64_t Total = 0;
  for (const ExecutionPhase &Phase : Phases)
    if (!Phase.Parallel)
      Total += Phase.span();
  return Total;
}

uint64_t PhaseTracker::parallelCycles() const {
  uint64_t Total = 0;
  for (const ExecutionPhase &Phase : Phases)
    if (Phase.Parallel)
      Total += Phase.span();
  return Total;
}

int PhaseTracker::phaseOf(ThreadId Tid) const {
  for (size_t I = 0; I < Phases.size(); ++I)
    if (Phases[I].Parallel &&
        std::find(Phases[I].Members.begin(), Phases[I].Members.end(), Tid) !=
            Phases[I].Members.end())
      return static_cast<int>(I);
  return -1;
}
