//===- runtime/Callsite.cpp - Allocation callsite interning --------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Callsite.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace cheetah;
using namespace cheetah::runtime;

const std::string &Callsite::innermost() const {
  static const std::string Unknown = "<unknown>";
  return Frames.empty() ? Unknown : Frames.front();
}

CallsiteTable::CallsiteTable() {
  // Id 0 is the unknown callsite.
  Sites.push_back(Callsite{});
}

CallsiteId CallsiteTable::intern(Callsite Site) {
  if (Site.Frames.size() > MaxCallsiteFrames)
    Site.Frames.resize(MaxCallsiteFrames);
  auto It = Index.find(Site);
  if (It != Index.end())
    return It->second;
  CallsiteId Id = static_cast<CallsiteId>(Sites.size());
  Index.emplace(Site, Id);
  Sites.push_back(std::move(Site));
  return Id;
}

CallsiteId CallsiteTable::intern(const std::string &File, unsigned Line) {
  Callsite Site;
  Site.Frames.push_back(formatString("%s:%u", File.c_str(), Line));
  return intern(std::move(Site));
}

const Callsite &CallsiteTable::get(CallsiteId Id) const {
  CHEETAH_ASSERT(Id < Sites.size(), "callsite id out of range");
  return Sites[Id];
}
