//===- runtime/HeapAllocator.cpp - Hoard-style per-thread heap -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HeapAllocator.h"

#include "support/Assert.h"

using namespace cheetah;
using namespace cheetah::runtime;

namespace {
/// Smallest size class; everything below rounds up to this.
constexpr uint64_t MinClassSize = 8;
} // namespace

HeapAllocator::HeapAllocator(uint64_t ArenaBase, uint64_t ArenaSize,
                             const CacheGeometry &Geometry)
    : ArenaBase(ArenaBase), ArenaSize(ArenaSize), ArenaCursor(ArenaBase),
      Geometry(Geometry) {
  CHEETAH_ASSERT(ArenaSize >= Geometry.lineSize(), "arena too small");
  CHEETAH_ASSERT((ArenaBase & (Geometry.lineSize() - 1)) == 0,
                 "arena base must be line-aligned");
  // Superblocks are 64 KiB or 16 lines, whichever is larger; each belongs
  // to exactly one (thread, size class) pair.
  SuperblockBytes = std::max<uint64_t>(64 * 1024, Geometry.lineSize() * 16);
}

uint64_t HeapAllocator::sizeClassFor(uint64_t Size) {
  uint64_t Class = MinClassSize;
  while (Class < Size)
    Class <<= 1;
  return Class;
}

bool HeapAllocator::refill(ClassHeap &Heap, uint64_t ClassSize) {
  uint64_t Bytes = std::max(SuperblockBytes, ClassSize);
  // Keep superblocks line-aligned so size classes >= a line are themselves
  // line-aligned and classes < a line never straddle superblocks.
  uint64_t LineMask = Geometry.lineSize() - 1;
  uint64_t Base = (ArenaCursor + LineMask) & ~LineMask;
  if (Base + Bytes > ArenaBase + ArenaSize)
    return false;
  ArenaCursor = Base + Bytes;
  Heap.BumpCursor = Base;
  Heap.BumpEnd = Base + Bytes;
  ++Stats.SuperblocksCarved;
  Stats.ArenaBytesUsed = ArenaCursor - ArenaBase;
  return true;
}

uint64_t HeapAllocator::allocate(uint64_t Size, ThreadId Tid,
                                 CallsiteId Site) {
  if (Size == 0)
    Size = 1;
  uint64_t ClassSize = sizeClassFor(Size);
  unsigned ClassIndex = 0;
  for (uint64_t C = MinClassSize; C < ClassSize; C <<= 1)
    ++ClassIndex;
  uint64_t Key = (static_cast<uint64_t>(Tid) << 8) | ClassIndex;
  ClassHeap &Heap = ClassHeaps[Key];

  uint64_t Address = 0;
  if (!Heap.FreeList.empty()) {
    Address = Heap.FreeList.back();
    Heap.FreeList.pop_back();
  } else {
    if (Heap.BumpCursor + ClassSize > Heap.BumpEnd && !refill(Heap, ClassSize))
      return 0;
    Address = Heap.BumpCursor;
    Heap.BumpCursor += ClassSize;
  }

  HeapObject Object;
  Object.Start = Address;
  Object.Size = ClassSize;
  Object.RequestedSize = Size;
  Object.Site = Site;
  Object.Owner = Tid;
  Object.AllocIndex = Stats.Allocations;
  Objects.push_back(Object);
  ByAddress[Address] = Objects.size() - 1;

  ++Stats.Allocations;
  Stats.BytesRequested += Size;
  Stats.BytesReserved += ClassSize;
  return Address;
}

void HeapAllocator::deallocate(uint64_t Address, ThreadId Tid) {
  auto It = ByAddress.find(Address);
  CHEETAH_ASSERT(It != ByAddress.end(), "deallocating unknown address");
  HeapObject &Object = Objects[It->second];
  CHEETAH_ASSERT(Object.Live, "double free");
  Object.Live = false;
  ++Stats.Deallocations;

  uint64_t ClassSize = Object.Size;
  unsigned ClassIndex = 0;
  for (uint64_t C = MinClassSize; C < ClassSize; C <<= 1)
    ++ClassIndex;
  // Freed memory returns to the *freeing* thread's list, as in Hoard-like
  // per-thread heaps with thread-local frees (the common case for the
  // fork-join applications Cheetah targets).
  uint64_t Key = (static_cast<uint64_t>(Tid) << 8) | ClassIndex;
  ClassHeaps[Key].FreeList.push_back(Address);
}

const HeapObject *HeapAllocator::objectAt(uint64_t Address) const {
  if (!covers(Address) || ByAddress.empty())
    return nullptr;
  auto It = ByAddress.upper_bound(Address);
  if (It == ByAddress.begin())
    return nullptr;
  --It;
  const HeapObject &Object = Objects[It->second];
  if (!Object.contains(Address))
    return nullptr;
  return &Object;
}
