//===- runtime/SymbolTable.h - ELF symbol table reader ----------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal ELF64 symbol-table reader. In real-thread mode Cheetah reports
/// falsely-shared globals "by searching through the symbol table in the
/// binary executable" (Section 2.4); this module implements that search
/// without any external dependency: it parses .symtab/.strtab (falling back
/// to .dynsym/.dynstr) and answers which named object covers an address.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_RUNTIME_SYMBOLTABLE_H
#define CHEETAH_RUNTIME_SYMBOLTABLE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cheetah {
namespace runtime {

/// One data symbol (STT_OBJECT) from the binary.
struct DataSymbol {
  std::string Name;
  uint64_t Address = 0; // link-time address (add load bias for PIE)
  uint64_t Size = 0;

  bool contains(uint64_t Addr) const {
    return Addr >= Address && Addr < Address + Size;
  }
};

/// Loaded symbol table of one ELF binary.
class SymbolTable {
public:
  /// Parses the data symbols of \p Path.
  /// \returns false (with \p Error filled) if the file cannot be parsed.
  bool load(const std::string &Path, std::string &Error);

  /// Convenience: loads the current executable via /proc/self/exe.
  bool loadSelf(std::string &Error);

  /// \returns the symbol covering \p Address (after subtracting \p LoadBias
  /// for position-independent executables), or nullptr.
  const DataSymbol *symbolAt(uint64_t Address, uint64_t LoadBias = 0) const;

  /// \returns the symbol named \p Name, or nullptr.
  const DataSymbol *symbolNamed(const std::string &Name) const;

  /// All parsed data symbols sorted by address.
  const std::vector<DataSymbol> &symbols() const { return Symbols; }

private:
  std::vector<DataSymbol> Symbols;        // sorted by Address
  std::map<std::string, size_t> ByName;
};

} // namespace runtime
} // namespace cheetah

#endif // CHEETAH_RUNTIME_SYMBOLTABLE_H
