//===- runtime/ThreadRegistry.cpp - Per-thread profiling state -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadRegistry.h"

#include "support/Assert.h"

using namespace cheetah;
using namespace cheetah::runtime;

ThreadProfile &ThreadRegistry::mutableProfile(ThreadId Tid) {
  CHEETAH_ASSERT(Tid < Profiles.size(), "unknown thread id");
  return Profiles[Tid];
}

void ThreadRegistry::threadStarted(ThreadId Tid, bool IsMain, uint64_t Now) {
  if (Tid >= Profiles.size())
    Profiles.resize(Tid + 1);
  ThreadProfile &Profile = Profiles[Tid];
  CHEETAH_ASSERT(!Profile.Registered, "thread id registered twice");
  Profile.Registered = true;
  Profile.Tid = Tid;
  Profile.IsMain = IsMain;
  Profile.StartTime = Now;
}

void ThreadRegistry::threadFinished(ThreadId Tid, uint64_t Now) {
  ThreadProfile &Profile = mutableProfile(Tid);
  CHEETAH_ASSERT(!Profile.Finished, "thread finished twice");
  CHEETAH_ASSERT(Now >= Profile.StartTime, "thread ends before it starts");
  Profile.EndTime = Now;
  Profile.Finished = true;
}

void ThreadRegistry::recordSample(ThreadId Tid, uint32_t LatencyCycles) {
  recordSamples(Tid, 1, LatencyCycles);
}

void ThreadRegistry::recordSamples(ThreadId Tid, uint64_t Count,
                                   uint64_t Cycles) {
  ThreadProfile &Profile = mutableProfile(Tid);
  Profile.SampledAccesses += Count;
  Profile.SampledCycles += Cycles;
}

const ThreadProfile &ThreadRegistry::profile(ThreadId Tid) const {
  CHEETAH_ASSERT(Tid < Profiles.size(), "unknown thread id");
  return Profiles[Tid];
}

bool ThreadRegistry::known(ThreadId Tid) const {
  return Tid < Profiles.size() && Profiles[Tid].Registered;
}

uint64_t ThreadRegistry::totalSampledAccesses() const {
  uint64_t Total = 0;
  for (const ThreadProfile &Profile : Profiles)
    Total += Profile.SampledAccesses;
  return Total;
}

uint64_t ThreadRegistry::totalSampledCycles() const {
  uint64_t Total = 0;
  for (const ThreadProfile &Profile : Profiles)
    Total += Profile.SampledCycles;
  return Total;
}
