//===- driver/SessionOptions.h - CLI flag -> session config ----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The validated bridge between `cheetah-profile`'s command line and a
/// SessionConfig: one function registers every profiling flag, another
/// checks each value against the constraints the underlying components
/// assert on and builds the configuration — including importing a real
/// machine's topology via `--numa-topology=FILE`.
///
/// The split exists so the validation path is *testable*: bad flag values
/// and hostile topology files must produce error strings (the CLI prints
/// them and exits 1), never reach a `CHEETAH_ASSERT` and abort — in
/// release builds as much as debug ones. The regression suite drives
/// buildSessionOptions directly with adversarial argv vectors.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_DRIVER_SESSIONOPTIONS_H
#define CHEETAH_DRIVER_SESSIONOPTIONS_H

#include "driver/ProfileSession.h"
#include "support/CommandLine.h"

#include <string>
#include <vector>

namespace cheetah {
namespace driver {

/// Registers the profiling-configuration flags `cheetah-profile` exposes
/// (workload selection and shaping, detection granularity, topology,
/// sampling backend: `--backend=sim|trace:FILE`, `--record-trace=FILE`).
/// Output/formatting flags stay in the tool itself.
void addSessionFlags(FlagSet &Flags);

/// Everything buildSessionOptions resolves.
struct SessionOptions {
  SessionConfig Config;
  /// Resolved detection granularity: "line", "page", or "both".
  std::string Granularity = "line";
  /// Non-fatal diagnostics the CLI prints to stderr (e.g. a page-mode run
  /// on a single-node topology, which can never fire).
  std::vector<std::string> Warnings;
};

/// Bounds accepted for `--threads` and `--sampling-period`; the upper
/// bounds are far above anything useful but keep the downstream
/// fixed-size structures (thread registries, batch tables) honest.
inline constexpr int64_t MaxThreads = 1024;
inline constexpr int64_t MaxSamplingPeriod = 1 << 30;

/// Validates every parsed flag value and fills \p Out. \returns false
/// with a descriptive \p Error on the first violation; never asserts or
/// aborts on bad input. `--numa-topology=FILE` is loaded and validated
/// here (node count, distance-matrix symmetry/diagonal, pinning ranges),
/// and conflicts with explicitly passed `--numa-nodes`/`--page-size` are
/// errors rather than silent overrides.
bool buildSessionOptions(const FlagSet &Flags, SessionOptions &Out,
                         std::string &Error);

} // namespace driver
} // namespace cheetah

#endif // CHEETAH_DRIVER_SESSIONOPTIONS_H
