//===- driver/ProfileSession.h - Workload-under-profiler driver -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience driver gluing a workload model, the multicore simulator, and
/// the Cheetah profiler (or a baseline observer) into one call. Everything
/// the tools, examples, and benchmark harnesses do goes through these
/// functions, so an experiment is: configure, run, read the result.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_DRIVER_PROFILESESSION_H
#define CHEETAH_DRIVER_PROFILESESSION_H

#include "baseline/FullTracker.h"
#include "core/Profiler.h"
#include "pmu/TraceSource.h"
#include "sim/LatencyModel.h"
#include "sim/Simulator.h"
#include "workloads/Workload.h"

#include <memory>
#include <string>

namespace cheetah {
namespace driver {

/// Which sampling backend feeds the profiler.
enum class SampleBackend {
  /// Run the workload on the multicore simulator under the simulated PMU.
  Simulator,
  /// Skip the simulator entirely: replay a recorded `cheetah-trace-v1`
  /// file through the profiler (same workload flags required, so the heap
  /// layout the trace's addresses resolve against is identical).
  TraceReplay,
};

/// Everything one run needs.
struct SessionConfig {
  core::ProfilerConfig Profiler;
  sim::LatencyModel Latency;
  workloads::WorkloadConfig Workload;
  /// Attach the Cheetah profiler (false = native baseline run: same heap
  /// layout, no observer, no overhead).
  bool EnableProfiler = true;
  /// Sampling backend (see `--backend=sim|trace:FILE`).
  SampleBackend Backend = SampleBackend::Simulator;
  /// Backend == TraceReplay: the trace file to replay.
  std::string ReplayTracePath;
  /// Non-empty: tee the live backend's stream into this `cheetah-trace-v1`
  /// file (`--record-trace=FILE`). Simulator backend only.
  std::string RecordTracePath;
};

/// Result of a profiled (or native) run.
struct SessionResult {
  sim::SimulationResult Run;
  core::ProfileResult Profile;
  bool ProfilerEnabled = false;
};

/// Builds \p Workload's program against \p Profiler's heap/globals.
sim::ForkJoinProgram buildProgram(const workloads::Workload &Workload,
                                  core::Profiler &Profiler,
                                  const SessionConfig &Config);

/// Fills the sink-facing run identification from a session configuration.
core::ReportRunInfo makeRunInfo(const workloads::Workload &Workload,
                                const SessionConfig &Config);

/// One human-readable banner line for an active grain stage, e.g.
///   grain line: 7 tracked, 2 significant findings, 12,345 samples
///   (1,024 invalidations)
/// with a ", N remote" clause for stages that distinguish remote traffic.
/// Drivers print one per entry of ProfileResult::Stages, so a future third
/// grain shows up in every banner with no tool edits.
std::string formatStageSummary(const core::GrainStageSummary &Stage);

/// Builds the capture-side trace source for \p Config without the caller
/// naming a concrete backend: a replay TraceSource for
/// Backend == TraceReplay, or a recording TraceSource wrapping the
/// simulated PMU otherwise (teeing to Config.RecordTracePath when
/// non-empty, buffering in memory when empty). The caller drives
/// start()/stop() and, for the simulator backend, runs the simulation
/// with the source's simObserver() attached. Used by tools (the daemon's
/// capture phase) that need the recorded stream itself rather than a
/// one-shot profiled run.
std::unique_ptr<pmu::TraceSource>
makeCaptureSource(const SessionConfig &Config);

/// Runs \p Workload under the configured sampling backend, streaming the
/// report through \p Sink (may be null): the sink sees beginRun (run
/// identification), one finding() per tracked object in descending
/// predicted improvement, and endRun (run stats). \p Result still carries
/// the full vectors for programmatic use.
///
/// This is the fallible entry point — trace replay (unreadable or
/// malformed file) and trace recording (write failure) report through
/// \p Error with a false return; the pure simulator path cannot fail.
bool runSession(const workloads::Workload &Workload,
                const SessionConfig &Config, core::ReportSink *Sink,
                SessionResult &Result, std::string &Error);

/// Runs \p Workload under the Cheetah profiler (or natively when
/// EnableProfiler is false). Simulator backend only: infallible
/// convenience wrapper over runSession for tests and benches.
SessionResult runWorkload(const workloads::Workload &Workload,
                          const SessionConfig &Config);

/// Same, with the streaming sink.
SessionResult runWorkload(const workloads::Workload &Workload,
                          const SessionConfig &Config,
                          core::ReportSink *Sink);

/// Result of a Predator-style full-instrumentation run.
struct FullTrackResult {
  sim::SimulationResult Run;
  std::vector<baseline::FullTrackerFinding> Findings;
  uint64_t AccessesInstrumented = 0;
  uint64_t Invalidations = 0;
};

/// Runs \p Workload under the every-access baseline tracker.
FullTrackResult runFullTracking(const workloads::Workload &Workload,
                                const SessionConfig &Config,
                                const baseline::FullTrackerConfig &Tracker);

} // namespace driver
} // namespace cheetah

#endif // CHEETAH_DRIVER_PROFILESESSION_H
