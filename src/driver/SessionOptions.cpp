//===- driver/SessionOptions.cpp - CLI flag -> session config -------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/SessionOptions.h"

#include "mem/TopologyFile.h"
#include "pmu/PmuConfig.h"
#include "support/StringUtils.h"

using namespace cheetah;
using namespace cheetah::driver;

void cheetah::driver::addSessionFlags(FlagSet &Flags) {
  Flags.addString("workload", "linear_regression", "workload model to run");
  Flags.addInt("threads", 16, "child threads per parallel phase");
  Flags.addDouble("scale", 1.0, "work multiplier");
  Flags.addInt("sampling-period", 8192, "instructions between PMU samples");
  Flags.addInt("line-size", 64, "cache line size in bytes");
  Flags.addString("granularity", "line",
                  "detection granularity: line, page, or both");
  Flags.addInt("numa-nodes", 0,
               "simulated NUMA nodes (0 = auto: 1 for line-only runs, 2 "
               "when page tracking is on)");
  Flags.addInt("page-size", 4096, "page size in bytes for page tracking");
  Flags.addString("numa-topology", "",
                  "import a real-machine topology (cheetah-topology-v1 "
                  "JSON: node count, distance matrix, CPU lists / thread "
                  "pinning); overrides --numa-nodes/--page-size");
  Flags.addBool("fix", false, "apply the padding fix to known FS sites");
  Flags.addInt("seed", 0x43484545, "workload RNG seed");
  Flags.addString("backend", "sim",
                  "sampling backend: 'sim' (multicore simulator) or "
                  "'trace:FILE' (replay a recorded cheetah-trace-v1 file; "
                  "pass the same workload flags as the recording run)");
  Flags.addString("record-trace", "",
                  "tee the backend's sample stream into this "
                  "cheetah-trace-v1 file for later --backend=trace replay");
}

bool cheetah::driver::buildSessionOptions(const FlagSet &Flags,
                                          SessionOptions &Out,
                                          std::string &Error) {
  // Every value below feeds a constructor that CHEETAH_ASSERTs its
  // invariants; external input must be rejected with a clean error before
  // it gets there.
  int64_t Threads = Flags.getInt("threads");
  if (Threads < 1 || Threads > MaxThreads) {
    Error = formatString("--threads must be in [1, %lld] (got %lld)",
                         static_cast<long long>(MaxThreads),
                         static_cast<long long>(Threads));
    return false;
  }

  int64_t SamplingPeriod = Flags.getInt("sampling-period");
  if (SamplingPeriod < 1 || SamplingPeriod > MaxSamplingPeriod) {
    Error = formatString(
        "--sampling-period must be in [1, %lld] (got %lld)",
        static_cast<long long>(MaxSamplingPeriod),
        static_cast<long long>(SamplingPeriod));
    return false;
  }

  const std::string &Backend = Flags.getString("backend");
  std::string ReplayTracePath;
  bool Replay = false;
  if (Backend.rfind("trace:", 0) == 0) {
    Replay = true;
    ReplayTracePath = Backend.substr(6);
    if (ReplayTracePath.empty()) {
      Error = "--backend=trace: requires a file ('trace:FILE')";
      return false;
    }
  } else if (Backend != "sim") {
    Error = formatString(
        "--backend must be 'sim' or 'trace:FILE' (got '%s')",
        Backend.c_str());
    return false;
  }

  const std::string &RecordTracePath = Flags.getString("record-trace");
  if (Replay && !RecordTracePath.empty()) {
    Error = "--record-trace cannot be combined with --backend=trace:FILE "
            "(replaying a trace while recording it would duplicate the "
            "input)";
    return false;
  }

  int64_t LineSize = Flags.getInt("line-size");
  std::string GeometryError;
  if (LineSize < 0)
    GeometryError = formatString("cache line size must be non-negative "
                                 "(got %lld)",
                                 static_cast<long long>(LineSize));
  else
    CacheGeometry::validate(static_cast<uint64_t>(LineSize), GeometryError);
  if (!GeometryError.empty()) {
    // The validator owns the constraint text so this message can never go
    // stale against the geometry's actual rule.
    Error = "--line-size: " + GeometryError;
    return false;
  }

  double Scale = Flags.getDouble("scale");
  if (!(Scale > 0.0)) {
    Error = formatString("--scale must be > 0 (got %f)", Scale);
    return false;
  }

  const std::string &Granularity = Flags.getString("granularity");
  if (Granularity != "line" && Granularity != "page" &&
      Granularity != "both") {
    Error = formatString("--granularity must be 'line', 'page', or 'both' "
                         "(got '%s')",
                         Granularity.c_str());
    return false;
  }
  bool TrackPages = Granularity != "line";

  int64_t NumaNodesFlag = Flags.getInt("numa-nodes");
  if (NumaNodesFlag < 0 ||
      NumaNodesFlag > static_cast<int64_t>(NumaTopology::MaxNodes)) {
    Error = formatString(
        "--numa-nodes must be in [0, %u], where 0 means auto: 1 for "
        "line-only runs, 2 when page tracking is on (got %lld)",
        NumaTopology::MaxNodes, static_cast<long long>(NumaNodesFlag));
    return false;
  }

  int64_t PageSizeFlag = Flags.getInt("page-size");
  std::string PageError;
  if (PageSizeFlag < 0)
    PageError = formatString("page size must be non-negative (got %lld)",
                             static_cast<long long>(PageSizeFlag));
  else {
    // Delegate the constraint to the topology validator (same pattern as
    // --line-size above) so this message can never go stale against what
    // fromSpec actually accepts.
    NumaTopologySpec Probe;
    Probe.PageSize = static_cast<uint64_t>(PageSizeFlag);
    NumaTopology::validateSpec(Probe, PageError);
  }
  if (!PageError.empty()) {
    Error = "--page-size: " + PageError;
    return false;
  }

  NumaTopology Topology;
  uint32_t NumaNodes;
  const std::string &TopologyPath = Flags.getString("numa-topology");
  if (!TopologyPath.empty()) {
    NumaTopologySpec Spec;
    Spec.PageSize = static_cast<uint64_t>(PageSizeFlag);
    if (!loadTopologyFile(TopologyPath, Spec, Error)) {
      Error = "--numa-topology: " + Error;
      return false;
    }
    // An explicit flag that disagrees with the imported machine is a
    // conflict, not a silent override in either direction.
    if (Flags.wasSet("numa-nodes") && NumaNodesFlag != 0 &&
        static_cast<uint32_t>(NumaNodesFlag) != Spec.Nodes) {
      Error = formatString(
          "--numa-nodes=%lld conflicts with '%s' (%u nodes)",
          static_cast<long long>(NumaNodesFlag), TopologyPath.c_str(),
          Spec.Nodes);
      return false;
    }
    if (Flags.wasSet("page-size") &&
        Spec.PageSize != static_cast<uint64_t>(PageSizeFlag)) {
      Error = formatString(
          "--page-size=%lld conflicts with '%s' (page size %llu)",
          static_cast<long long>(PageSizeFlag), TopologyPath.c_str(),
          static_cast<unsigned long long>(Spec.PageSize));
      return false;
    }
    if (!NumaTopology::fromSpec(Spec, Topology, Error)) {
      Error = "--numa-topology: " + Error;
      return false;
    }
    NumaNodes = Topology.nodeCount();
  } else {
    NumaNodes = static_cast<uint32_t>(NumaNodesFlag);
    if (NumaNodes == 0)
      NumaNodes = TrackPages ? 2 : 1; // auto
    NumaTopologySpec Spec;
    Spec.Nodes = NumaNodes;
    Spec.PageSize = static_cast<uint64_t>(PageSizeFlag);
    if (!NumaTopology::fromSpec(Spec, Topology, Error))
      return false; // unreachable after the flag checks, but never assert
  }

  if (TrackPages && NumaNodes == 1)
    Out.Warnings.push_back(
        "--granularity=" + Granularity +
        " with a single-node topology: the page detector can never "
        "observe cross-node sharing or remote placement, so page findings "
        "are structurally impossible (raise --numa-nodes or import "
        "--numa-topology)");

  SessionConfig &Config = Out.Config;
  Config.Profiler.Geometry =
      CacheGeometry(static_cast<uint64_t>(LineSize));
  // PR-5 convention: the PMU configuration goes through its fallible
  // factory even after the range checks above, so the backend constructors
  // downstream (which assert) can never see a flag-sourced violation.
  std::string PmuError;
  if (!pmu::PmuConfig::fromSpec(Config.Profiler.Pmu.withScaledPeriod(
                                    static_cast<uint64_t>(SamplingPeriod)),
                                Config.Profiler.Pmu, PmuError)) {
    Error = "--sampling-period: " + PmuError;
    return false;
  }
  Config.Backend =
      Replay ? SampleBackend::TraceReplay : SampleBackend::Simulator;
  Config.ReplayTracePath = ReplayTracePath;
  Config.RecordTracePath = RecordTracePath;
  Config.Profiler.Topology = Topology;
  Config.Profiler.Detect.TrackLines = Granularity != "page";
  Config.Profiler.Detect.TrackPages = TrackPages;
  Config.Workload.Threads = static_cast<uint32_t>(Threads);
  Config.Workload.Scale = Scale;
  Config.Workload.FixFalseSharing = Flags.getBool("fix");
  Config.Workload.Seed = static_cast<uint64_t>(Flags.getInt("seed"));
  Config.Workload.NumaNodes = NumaNodes;
  Config.Workload.PageBytes = Topology.pageSize();
  Config.Workload.ThreadNodes = Topology.threadPinning();
  Out.Granularity = Granularity;
  return true;
}
