//===- driver/PreloadBridge.h - interpose-to-profiler wiring ----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adapter that turns the LD_PRELOAD runtime from a counter box into a
/// real profiling deployment: it installs core::Profiler::ingestBatch as
/// the interpose layer's sample sink (per-thread buffers drain straight
/// into the lock-free detection path), mirrors thread attach/detach into
/// the profiler's registry and phase tracker, and at finish() flushes
/// every staged sample and produces the same ProfileResult — reports
/// included — that the simulator path yields. Timestamps come from the
/// paper's per-thread RDTSC source via interpose::readTimestampCounter.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_DRIVER_PRELOADBRIDGE_H
#define CHEETAH_DRIVER_PRELOADBRIDGE_H

#include "core/Profiler.h"

#include <memory>
#include <mutex>
#include <vector>

namespace cheetah {
namespace driver {

struct IngestGate;

/// Scoped wiring between the interpose runtime and a live profiler. At
/// most one bridge may be live at a time (the interpose sink is global).
class PreloadProfilerBridge {
public:
  /// Installs the batch sink and registers the calling thread as the
  /// profiled program's main thread (ThreadId 0).
  explicit PreloadProfilerBridge(core::Profiler &Profiler);

  /// Uninstalls the sink (idempotent with finish()).
  ~PreloadProfilerBridge();

  PreloadProfilerBridge(const PreloadProfilerBridge &) = delete;
  PreloadProfilerBridge &operator=(const PreloadProfilerBridge &) = delete;

  /// Registers application thread \p Tid (> 0) with the profiler; entering
  /// the first child thread begins a parallel phase, enabling detailed
  /// tracking exactly as in the simulator path. Callable from any thread
  /// (e.g. a pthread_create wrapper on the creator); the Tid thread's own
  /// sample buffer registers itself lazily on first use.
  void attachThread(ThreadId Tid);

  /// Marks \p Tid finished.
  void detachThread(ThreadId Tid);

  /// Flushes every per-thread sample buffer into the profiler, retires any
  /// still-attached threads and the main thread, and finalizes reports.
  /// The bridge is inert afterwards. \p Sink streams findings as in
  /// Profiler::finish. Samples delivered by a still-running interposed
  /// thread after the final flush are dropped behind the ingest gate (and
  /// the gate close waits out deliveries already in flight), so nothing
  /// mutates the tables while they are being snapshotted.
  core::ProfileResult finish(core::ReportSink *Sink = nullptr);

  /// Cycles elapsed since the bridge was created (TSC delta).
  uint64_t elapsedCycles() const;

private:
  /// Closes the ingest gate: waits for in-flight sink deliveries to drain,
  /// then marks the gate non-accepting so later deliveries are dropped.
  void closeGate();

  core::Profiler &Profiler;
  uint64_t StartTimestamp;
  /// Shared with the installed sink closure: a straggler thread still
  /// executing the old sink after finish()/destruction holds it alive.
  std::shared_ptr<IngestGate> Gate;
  std::mutex Mutex;
  std::vector<ThreadId> Attached; // live child threads
  bool Finished = false;
};

} // namespace driver
} // namespace cheetah

#endif // CHEETAH_DRIVER_PRELOADBRIDGE_H
