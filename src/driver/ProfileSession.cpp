//===- driver/ProfileSession.cpp - Workload-under-profiler driver ---------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace cheetah;
using namespace cheetah::driver;

sim::ForkJoinProgram
cheetah::driver::buildProgram(const workloads::Workload &Workload,
                              core::Profiler &Profiler,
                              const SessionConfig &Config) {
  workloads::WorkloadContext Ctx;
  Ctx.Geometry = Config.Profiler.Geometry;
  Ctx.Allocate = [&Profiler](uint64_t Size, const std::string &File,
                             unsigned Line) {
    runtime::CallsiteId Site = Profiler.internCallsite(File, Line);
    uint64_t Address = Profiler.heap().allocate(Size, /*Tid=*/0, Site);
    CHEETAH_ASSERT(Address != 0, "workload exhausted the heap arena");
    return Address;
  };
  Ctx.DefineGlobal = [&Profiler](const std::string &Name, uint64_t Size,
                                 bool LineAligned) {
    uint64_t Address = LineAligned
                           ? Profiler.globals().defineAligned(Name, Size)
                           : Profiler.globals().define(Name, Size);
    CHEETAH_ASSERT(Address != 0, "workload exhausted the global segment");
    return Address;
  };
  return Workload.build(Ctx, Config.Workload);
}

core::ReportRunInfo
cheetah::driver::makeRunInfo(const workloads::Workload &Workload,
                             const SessionConfig &Config) {
  core::ReportRunInfo Info;
  Info.Tool = "cheetah";
  Info.Workload = Workload.name();
  Info.Threads = Config.Workload.Threads;
  Info.Scale = Config.Workload.Scale;
  Info.LineSize = Config.Profiler.Geometry.lineSize();
  Info.SamplingPeriod = Config.Profiler.Pmu.SamplingPeriod;
  Info.Seed = Config.Workload.Seed;
  Info.FixApplied = Config.Workload.FixFalseSharing;
  Info.NumaNodes = Config.Profiler.Topology.nodeCount();
  Info.PageSize =
      Config.Profiler.Detect.TrackPages ? Config.Profiler.Topology.pageSize()
                                        : 0;
  if (Config.Profiler.Detect.TrackPages)
    Info.Granularity =
        Config.Profiler.Detect.TrackLines ? "both" : "page";
  else
    Info.Granularity = "line";
  return Info;
}

std::string
cheetah::driver::formatStageSummary(const core::GrainStageSummary &Stage) {
  std::string Line = "grain " + Stage.Name + ": " +
                     formatWithCommas(Stage.Tracked) + " tracked, " +
                     formatWithCommas(Stage.Significant) +
                     " significant findings, " +
                     formatWithCommas(Stage.SamplesRecorded) + " samples (" +
                     formatWithCommas(Stage.Invalidations) + " invalidations";
  if (Stage.HasRemote)
    Line += ", " + formatWithCommas(Stage.RemoteSamples) + " remote";
  Line += ")";
  return Line;
}

SessionResult cheetah::driver::runWorkload(const workloads::Workload &Workload,
                                           const SessionConfig &Config) {
  return runWorkload(Workload, Config, /*Sink=*/nullptr);
}

SessionResult cheetah::driver::runWorkload(const workloads::Workload &Workload,
                                           const SessionConfig &Config,
                                           core::ReportSink *Sink) {
  SessionResult Result;
  Result.ProfilerEnabled = Config.EnableProfiler;

  core::Profiler Profiler(Config.Profiler);
  sim::ForkJoinProgram Program = buildProgram(Workload, Profiler, Config);

  sim::Simulator Sim(Config.Profiler.Geometry, Config.Latency);
  // NUMA latency is a machine property, so native (unprofiled) runs model
  // it too; the single-node default leaves the simulator untouched.
  if (Config.Profiler.Topology.multiNode())
    Sim.setTopology(&Config.Profiler.Topology);
  if (Config.EnableProfiler)
    Sim.addObserver(&Profiler);
  Result.Run = Sim.run(Program);
  if (Config.EnableProfiler) {
    if (Sink)
      Sink->beginRun(makeRunInfo(Workload, Config));
    Result.Profile = Profiler.finish(Result.Run, Sink);
  }
  return Result;
}

FullTrackResult
cheetah::driver::runFullTracking(const workloads::Workload &Workload,
                                 const SessionConfig &Config,
                                 const baseline::FullTrackerConfig &Tracker) {
  FullTrackResult Result;

  // The profiler instance only provides the heap/global layout; it is not
  // attached as an observer.
  core::Profiler Profiler(Config.Profiler);
  sim::ForkJoinProgram Program = buildProgram(Workload, Profiler, Config);

  baseline::FullTracker Full(
      Config.Profiler.Geometry,
      {{Config.Profiler.HeapArenaBase, Config.Profiler.HeapArenaSize},
       {Config.Profiler.GlobalSegmentBase, Config.Profiler.GlobalSegmentSize}},
      Tracker);

  sim::Simulator Sim(Config.Profiler.Geometry, Config.Latency);
  if (Config.Profiler.Topology.multiNode())
    Sim.setTopology(&Config.Profiler.Topology);
  Sim.addObserver(&Full);
  Result.Run = Sim.run(Program);
  Result.Findings = Full.findings();
  Result.AccessesInstrumented = Full.accessesInstrumented();
  Result.Invalidations = Full.invalidations();
  return Result;
}
