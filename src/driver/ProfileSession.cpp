//===- driver/ProfileSession.cpp - Workload-under-profiler driver ---------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/ProfileSession.h"

#include "pmu/SimPmu.h"
#include "pmu/TraceSource.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace cheetah;
using namespace cheetah::driver;

sim::ForkJoinProgram
cheetah::driver::buildProgram(const workloads::Workload &Workload,
                              core::Profiler &Profiler,
                              const SessionConfig &Config) {
  workloads::WorkloadContext Ctx;
  Ctx.Geometry = Config.Profiler.Geometry;
  Ctx.Allocate = [&Profiler](uint64_t Size, const std::string &File,
                             unsigned Line) {
    runtime::CallsiteId Site = Profiler.internCallsite(File, Line);
    uint64_t Address = Profiler.heap().allocate(Size, /*Tid=*/0, Site);
    CHEETAH_ASSERT(Address != 0, "workload exhausted the heap arena");
    return Address;
  };
  Ctx.DefineGlobal = [&Profiler](const std::string &Name, uint64_t Size,
                                 bool LineAligned) {
    uint64_t Address = LineAligned
                           ? Profiler.globals().defineAligned(Name, Size)
                           : Profiler.globals().define(Name, Size);
    CHEETAH_ASSERT(Address != 0, "workload exhausted the global segment");
    return Address;
  };
  return Workload.build(Ctx, Config.Workload);
}

core::ReportRunInfo
cheetah::driver::makeRunInfo(const workloads::Workload &Workload,
                             const SessionConfig &Config) {
  core::ReportRunInfo Info;
  Info.Tool = "cheetah";
  Info.Workload = Workload.name();
  Info.Threads = Config.Workload.Threads;
  Info.Scale = Config.Workload.Scale;
  Info.LineSize = Config.Profiler.Geometry.lineSize();
  Info.SamplingPeriod = Config.Profiler.Pmu.SamplingPeriod;
  Info.Seed = Config.Workload.Seed;
  Info.FixApplied = Config.Workload.FixFalseSharing;
  Info.NumaNodes = Config.Profiler.Topology.nodeCount();
  Info.PageSize =
      Config.Profiler.Detect.TrackPages ? Config.Profiler.Topology.pageSize()
                                        : 0;
  if (Config.Profiler.Detect.TrackPages)
    Info.Granularity =
        Config.Profiler.Detect.TrackLines ? "both" : "page";
  else
    Info.Granularity = "line";
  return Info;
}

std::string
cheetah::driver::formatStageSummary(const core::GrainStageSummary &Stage) {
  std::string Line = "grain " + Stage.Name + ": " +
                     formatWithCommas(Stage.Tracked) + " tracked, " +
                     formatWithCommas(Stage.Significant) +
                     " significant findings, " +
                     formatWithCommas(Stage.SamplesRecorded) + " samples (" +
                     formatWithCommas(Stage.Invalidations) + " invalidations";
  if (Stage.HasRemote)
    Line += ", " + formatWithCommas(Stage.RemoteSamples) + " remote";
  Line += ")";
  return Line;
}

std::unique_ptr<pmu::TraceSource>
cheetah::driver::makeCaptureSource(const SessionConfig &Config) {
  if (Config.Backend == SampleBackend::TraceReplay)
    return std::make_unique<pmu::TraceSource>(Config.ReplayTracePath);
  return std::make_unique<pmu::TraceSource>(
      std::make_unique<pmu::SimPmu>(Config.Profiler.Pmu),
      Config.RecordTracePath, Config.Profiler.Pmu.SamplingPeriod);
}

bool cheetah::driver::runSession(const workloads::Workload &Workload,
                                 const SessionConfig &Config,
                                 core::ReportSink *Sink,
                                 SessionResult &Result, std::string &Error) {
  Result = SessionResult();
  Result.ProfilerEnabled = Config.EnableProfiler;

  core::Profiler Profiler(Config.Profiler);
  // The program is built against the profiler's heap/globals in *every*
  // backend mode: replay needs the identical arena layout the recorded
  // addresses resolve against, or every finding would lose its name.
  sim::ForkJoinProgram Program = buildProgram(Workload, Profiler, Config);

  if (Config.Backend == SampleBackend::TraceReplay) {
    if (!Config.EnableProfiler) {
      Error = "--backend=trace:FILE requires the profiler (a native "
              "baseline has nothing to replay into)";
      return false;
    }
    if (!Config.RecordTracePath.empty()) {
      Error = "--record-trace cannot be combined with --backend=trace:FILE "
              "(the recording would duplicate the input)";
      return false;
    }
    pmu::TraceSource Replay(Config.ReplayTracePath);
    Replay.setSink(&Profiler);
    pmu::SourceStatus Status = Replay.start();
    if (!Status.Available) {
      Error = Status.Reason;
      return false;
    }
    Replay.drain();
    // The recorded run is authoritative for everything the simulator
    // would have produced: total cycles for the report's runtime, and the
    // recording backend's sampling period for the run header.
    Result.Run.TotalCycles = Replay.runCycles();
    SessionConfig RunInfoConfig = Config;
    RunInfoConfig.Profiler.Pmu.SamplingPeriod = Replay.samplingPeriod();
    if (Sink)
      Sink->beginRun(makeRunInfo(Workload, RunInfoConfig));
    Result.Profile = Profiler.finish(Result.Run, Sink);
    return true;
  }

  // Simulator backend: the simulated PMU observes the run, optionally
  // wrapped in a trace recorder teeing the stream to a file.
  std::unique_ptr<pmu::SampleSource> Source;
  pmu::TraceSource *Recorder = nullptr;
  if (Config.EnableProfiler) {
    Source = std::make_unique<pmu::SimPmu>(Config.Profiler.Pmu);
    if (!Config.RecordTracePath.empty()) {
      auto Tee = std::make_unique<pmu::TraceSource>(
          std::move(Source), Config.RecordTracePath,
          Config.Profiler.Pmu.SamplingPeriod);
      Recorder = Tee.get();
      Source = std::move(Tee);
    }
    Source->setSink(&Profiler);
    pmu::SourceStatus Status = Source->start();
    CHEETAH_ASSERT(Status.Available, "simulated backend cannot fail");
    (void)Status;
  }

  sim::Simulator Sim(Config.Profiler.Geometry, Config.Latency);
  // NUMA latency is a machine property, so native (unprofiled) runs model
  // it too; the single-node default leaves the simulator untouched.
  if (Config.Profiler.Topology.multiNode())
    Sim.setTopology(&Config.Profiler.Topology);
  if (Source)
    Sim.addObserver(Source->simObserver());
  Result.Run = Sim.run(Program);
  if (Source) {
    if (Recorder)
      Recorder->setRunCycles(Result.Run.TotalCycles);
    pmu::SourceStatus Stopped = Source->stop();
    if (!Stopped.Available) {
      // The only failure a simulated session can hit: the trace file did
      // not make it to disk. Loud, not silent — a missing recording would
      // otherwise surface as a confusing replay error much later.
      Error = Stopped.Reason;
      return false;
    }
    if (Sink)
      Sink->beginRun(makeRunInfo(Workload, Config));
    Result.Profile = Profiler.finish(Result.Run, Sink);
  }
  return true;
}

SessionResult cheetah::driver::runWorkload(const workloads::Workload &Workload,
                                           const SessionConfig &Config) {
  return runWorkload(Workload, Config, /*Sink=*/nullptr);
}

SessionResult cheetah::driver::runWorkload(const workloads::Workload &Workload,
                                           const SessionConfig &Config,
                                           core::ReportSink *Sink) {
  CHEETAH_ASSERT(Config.Backend == SampleBackend::Simulator &&
                     Config.RecordTracePath.empty(),
                 "file-backed sessions must use the fallible runSession");
  SessionResult Result;
  std::string Error;
  bool Ok = runSession(Workload, Config, Sink, Result, Error);
  CHEETAH_ASSERT(Ok, "simulator session cannot fail");
  (void)Ok;
  return Result;
}

FullTrackResult
cheetah::driver::runFullTracking(const workloads::Workload &Workload,
                                 const SessionConfig &Config,
                                 const baseline::FullTrackerConfig &Tracker) {
  FullTrackResult Result;

  // The profiler instance only provides the heap/global layout; it is not
  // attached as an observer.
  core::Profiler Profiler(Config.Profiler);
  sim::ForkJoinProgram Program = buildProgram(Workload, Profiler, Config);

  baseline::FullTracker Full(
      Config.Profiler.Geometry,
      {{Config.Profiler.HeapArenaBase, Config.Profiler.HeapArenaSize},
       {Config.Profiler.GlobalSegmentBase, Config.Profiler.GlobalSegmentSize}},
      Tracker);

  sim::Simulator Sim(Config.Profiler.Geometry, Config.Latency);
  if (Config.Profiler.Topology.multiNode())
    Sim.setTopology(&Config.Profiler.Topology);
  Sim.addObserver(&Full);
  Result.Run = Sim.run(Program);
  Result.Findings = Full.findings();
  Result.AccessesInstrumented = Full.accessesInstrumented();
  Result.Invalidations = Full.invalidations();
  return Result;
}
