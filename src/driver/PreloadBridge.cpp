//===- driver/PreloadBridge.cpp - interpose-to-profiler wiring ------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/PreloadBridge.h"

#include "interpose/Preload.h"
#include "support/Assert.h"

#include <algorithm>
#include <shared_mutex>

using namespace cheetah;
using namespace cheetah::driver;

namespace cheetah {
namespace driver {
/// The finish()-vs-straggler fence. The interpose runtime copies the sink
/// under its own lock but *calls* it unlocked, so a still-running
/// interposed thread can be mid-delivery when finish() begins — or deliver
/// after setSampleSink({}) using the copy it already took. Every delivery
/// holds the gate shared and checks Accepting; closing the gate takes it
/// exclusive, which both waits out in-flight deliveries and makes every
/// later one drop its batch instead of mutating tables being snapshotted.
struct IngestGate {
  std::shared_mutex Mutex;
  bool Accepting = true;
};
} // namespace driver
} // namespace cheetah

PreloadProfilerBridge::PreloadProfilerBridge(core::Profiler &Profiler)
    : Profiler(Profiler),
      StartTimestamp(interpose::readTimestampCounter()),
      Gate(std::make_shared<IngestGate>()) {
  // Per-thread buffers drain straight into the profiler's batched ingest,
  // which is safe from any number of application threads. The sink shares
  // ownership of the gate so a straggler delivery racing bridge
  // destruction still has a live gate to bounce off.
  std::shared_ptr<IngestGate> SinkGate = Gate;
  interpose::setSampleSink(
      [&Profiler, SinkGate](const pmu::Sample *Samples, size_t Count) {
        std::shared_lock<std::shared_mutex> Lock(SinkGate->Mutex);
        if (!SinkGate->Accepting)
          return; // late delivery after finish() began: drop
        Profiler.ingestBatch(Samples, Count);
      });
  Profiler.threadStarted(/*Tid=*/0, /*IsMain=*/true, /*Now=*/0);
}

PreloadProfilerBridge::~PreloadProfilerBridge() {
  if (!Finished) {
    closeGate();
    interpose::setSampleSink({});
  }
}

void PreloadProfilerBridge::closeGate() {
  std::unique_lock<std::shared_mutex> Lock(Gate->Mutex);
  Gate->Accepting = false;
}

uint64_t PreloadProfilerBridge::elapsedCycles() const {
  return interpose::readTimestampCounter() - StartTimestamp;
}

void PreloadProfilerBridge::attachThread(ThreadId Tid) {
  CHEETAH_ASSERT(Tid != 0, "thread 0 is the bridge's main thread");
  uint64_t Now = elapsedCycles();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    CHEETAH_ASSERT(!Finished, "attach after finish");
    Attached.push_back(Tid);
  }
  // No interpose::threadAttach() here: that registers the *calling*
  // thread's sample buffer, and attachThread may run on a coordinator. The
  // Tid thread's own buffer registers lazily on its first recordSample()
  // (or its own threadAttach() call).
  interpose::noteThreadCreate();
  Profiler.threadStarted(Tid, /*IsMain=*/false, Now);
}

void PreloadProfilerBridge::detachThread(ThreadId Tid) {
  // The thread's staged samples must reach the detector while the thread
  // is still a live phase member.
  interpose::flushAllSamples();
  uint64_t Now = elapsedCycles();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = std::find(Attached.begin(), Attached.end(), Tid);
    CHEETAH_ASSERT(It != Attached.end(), "detach of unattached thread");
    Attached.erase(It);
  }
  interpose::noteThreadJoin();
  Profiler.threadFinished(Tid, /*IsMain=*/false, Now);
}

core::ProfileResult PreloadProfilerBridge::finish(core::ReportSink *Sink) {
  std::vector<ThreadId> Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    CHEETAH_ASSERT(!Finished, "finish twice");
    Remaining = Attached;
  }
  for (ThreadId Tid : Remaining)
    detachThread(Tid);
  // Catch samples recorded after the last detach, then close the gate:
  // everything staged so far reaches the detector, in-flight deliveries
  // drain, and anything a straggler thread records from here on is
  // dropped instead of racing the snapshot below.
  interpose::flushAllSamples();
  closeGate();
  interpose::setSampleSink({});

  uint64_t Now = elapsedCycles();
  Profiler.threadFinished(/*Tid=*/0, /*IsMain=*/true, Now);

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Finished = true;
  }
  sim::SimulationResult Run;
  Run.TotalCycles = Now;
  if (Sink) {
    // The bridge owns the run lifecycle for the LD_PRELOAD path, so it
    // provides the beginRun bookend the profiler's finish() expects the
    // caller to have sent (the simulator path gets it from the driver).
    core::ReportRunInfo Info;
    Info.Tool = "cheetah-preload";
    Sink->beginRun(Info);
  }
  return Profiler.finish(Run, Sink);
}
