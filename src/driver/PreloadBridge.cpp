//===- driver/PreloadBridge.cpp - interpose-to-profiler wiring ------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/PreloadBridge.h"

#include "interpose/Preload.h"
#include "support/Assert.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::driver;

PreloadProfilerBridge::PreloadProfilerBridge(core::Profiler &Profiler)
    : Profiler(Profiler),
      StartTimestamp(interpose::readTimestampCounter()) {
  // Per-thread buffers drain straight into the profiler's batched ingest,
  // which is safe from any number of application threads.
  interpose::setSampleSink(
      [&Profiler](const pmu::Sample *Samples, size_t Count) {
        Profiler.ingestBatch(Samples, Count);
      });
  Profiler.onThreadStart(/*Tid=*/0, /*IsMain=*/true, /*Now=*/0);
}

PreloadProfilerBridge::~PreloadProfilerBridge() {
  if (!Finished)
    interpose::setSampleSink({});
}

uint64_t PreloadProfilerBridge::elapsedCycles() const {
  return interpose::readTimestampCounter() - StartTimestamp;
}

void PreloadProfilerBridge::attachThread(ThreadId Tid) {
  CHEETAH_ASSERT(Tid != 0, "thread 0 is the bridge's main thread");
  uint64_t Now = elapsedCycles();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    CHEETAH_ASSERT(!Finished, "attach after finish");
    Attached.push_back(Tid);
  }
  // No interpose::threadAttach() here: that registers the *calling*
  // thread's sample buffer, and attachThread may run on a coordinator. The
  // Tid thread's own buffer registers lazily on its first recordSample()
  // (or its own threadAttach() call).
  interpose::noteThreadCreate();
  Profiler.onThreadStart(Tid, /*IsMain=*/false, Now);
}

void PreloadProfilerBridge::detachThread(ThreadId Tid) {
  // The thread's staged samples must reach the detector while the thread
  // is still a live phase member.
  interpose::flushAllSamples();
  uint64_t Now = elapsedCycles();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = std::find(Attached.begin(), Attached.end(), Tid);
    CHEETAH_ASSERT(It != Attached.end(), "detach of unattached thread");
    Attached.erase(It);
  }
  interpose::noteThreadJoin();
  sim::ThreadRecord Record;
  Record.Tid = Tid;
  Record.EndCycle = Now;
  Record.IsMain = false;
  Profiler.onThreadEnd(Record);
}

core::ProfileResult PreloadProfilerBridge::finish(core::ReportSink *Sink) {
  std::vector<ThreadId> Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    CHEETAH_ASSERT(!Finished, "finish twice");
    Remaining = Attached;
  }
  for (ThreadId Tid : Remaining)
    detachThread(Tid);
  // Catch samples recorded after the last detach.
  interpose::flushAllSamples();
  interpose::setSampleSink({});

  uint64_t Now = elapsedCycles();
  sim::ThreadRecord Main;
  Main.Tid = 0;
  Main.EndCycle = Now;
  Main.IsMain = true;
  Profiler.onThreadEnd(Main);

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Finished = true;
  }
  sim::SimulationResult Run;
  Run.TotalCycles = Now;
  if (Sink) {
    // The bridge owns the run lifecycle for the LD_PRELOAD path, so it
    // provides the beginRun bookend the profiler's finish() expects the
    // caller to have sent (the simulator path gets it from the driver).
    core::ReportRunInfo Info;
    Info.Tool = "cheetah-preload";
    Sink->beginRun(Info);
  }
  return Profiler.finish(Run, Sink);
}
