//===- pmu/PmuConfig.h - PMU configuration ----------------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration shared by all PMU backends: the sampling period and the
/// modeled cost of the sampling machinery. The cost constants reproduce the
/// overhead sources the paper calls out in Section 4.1: the signal-handler
/// work per sample, and the six pfmon APIs plus six syscalls of per-thread
/// PMU setup that dominate for thread-heavy applications (kmeans, x264).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_PMUCONFIG_H
#define CHEETAH_PMU_PMUCONFIG_H

#include <cstdint>
#include <string>

namespace cheetah {
namespace pmu {

/// Tunables for a sampling PMU.
struct PmuConfig {
  /// Mean instructions between samples. The paper's deployment default is
  /// one out of 64K instructions.
  uint64_t SamplingPeriod = 65536;
  /// Randomization applied to each inter-sample interval.
  double JitterFraction = 0.25;
  /// PRNG seed for the jitter streams.
  uint64_t Seed = 0x43484545; // "CHEE"
  /// Modeled cycles consumed by one sample delivery: trap, signal dispatch
  /// to the owning thread (F_SETOWN_EX), handler body, sigreturn.
  uint64_t SampleHandlerCycles = 3000;
  /// Modeled cycles to program the PMU registers for a new thread: six
  /// pfmon API calls and six additional system calls (paper Section 4.1).
  uint64_t ThreadSetupCycles = 50000;

  /// \returns a config with \p Period and the handler cost scaled
  /// proportionally from the deployment default (SampleHandlerCycles at a 64K
  /// period). Simulations compress execution length by orders of magnitude
  /// versus the paper's >=5-second runs; sampling denser for statistical
  /// richness must not inflate the modeled overhead, so the per-sample cost
  /// scales with the density. At the deployment period this is an identity.
  PmuConfig withScaledPeriod(uint64_t Period) const {
    PmuConfig Scaled = *this;
    Scaled.SamplingPeriod = Period;
    Scaled.SampleHandlerCycles =
        SampleHandlerCycles * Period / 65536;
    if (Scaled.SampleHandlerCycles == 0)
      Scaled.SampleHandlerCycles = 1;
    return Scaled;
  }

  /// Checks \p Config against the constraints every backend's sampling
  /// policy asserts on (PR-5 convention: flag- and file-reachable values
  /// go through a fallible validator, never straight into an asserting
  /// constructor). \returns false with a descriptive \p Error on the
  /// first violation.
  static bool validateSpec(const PmuConfig &Config, std::string &Error) {
    if (Config.SamplingPeriod < 1) {
      Error = "sampling period must be at least 1";
      return false;
    }
    if (!(Config.JitterFraction >= 0.0) || Config.JitterFraction >= 1.0) {
      // The negated >= also rejects NaN, which a plain < would let through.
      Error = "jitter fraction must be in [0, 1)";
      return false;
    }
    return true;
  }

  /// Validates \p Spec and copies it into \p Out on success.
  static bool fromSpec(const PmuConfig &Spec, PmuConfig &Out,
                       std::string &Error) {
    if (!validateSpec(Spec, Error))
      return false;
    Out = Spec;
    return true;
  }
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_PMUCONFIG_H
