//===- pmu/SimPmu.h - Simulator-backed address sampling ---------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated PMU: a SimObserver that performs instruction-based address
/// sampling over the instruction stream the multicore simulator retires.
/// Plays the role AMD IBS / Intel PEBS plays in the paper — it sees every
/// retired instruction, fires every `SamplingPeriod` instructions on
/// average, and delivers (address, tid, r/w, latency) samples to a handler.
/// Sample delivery and per-thread setup charge virtual cycles to the
/// profiled thread, which is how Cheetah's runtime overhead becomes
/// measurable inside the simulation (Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_SIMPMU_H
#define CHEETAH_PMU_SIMPMU_H

#include "pmu/PmuConfig.h"
#include "pmu/Sample.h"
#include "pmu/SamplingPolicy.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <unordered_map>

namespace cheetah {
namespace pmu {

/// Instruction-based sampling observer for the simulator.
class SimPmu : public sim::SimObserver {
public:
  explicit SimPmu(const PmuConfig &Config) : Config(Config) {}

  /// Installs the sample consumer. Must be set before the simulation runs if
  /// samples are to be observed.
  void setHandler(SampleHandler NewHandler) { Handler = std::move(NewHandler); }

  /// Enables or disables sampling (an attached-but-disabled PMU charges no
  /// cycles and delivers nothing; used for native-baseline runs).
  void setEnabled(bool NewEnabled) { Enabled = NewEnabled; }

  /// Total samples delivered so far.
  uint64_t samplesDelivered() const { return SamplesDelivered; }

  /// Total threads that paid PMU setup.
  uint64_t threadsConfigured() const { return ThreadsConfigured; }

  /// Clears per-run state (per-thread countdowns and counters).
  void reset();

  // SimObserver implementation.
  uint64_t onThreadStart(ThreadId Tid, bool IsMain, uint64_t Now) override;
  uint64_t onMemoryAccess(ThreadId Tid, const MemoryAccess &Access,
                          const sim::CoherenceResult &Result,
                          uint64_t Now) override;
  void onInstructions(ThreadId Tid, uint64_t Count) override;

private:
  SamplingPolicy &policyFor(ThreadId Tid);

  PmuConfig Config;
  SampleHandler Handler;
  bool Enabled = true;
  uint64_t SamplesDelivered = 0;
  uint64_t ThreadsConfigured = 0;
  std::unordered_map<ThreadId, SamplingPolicy> Policies;
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_SIMPMU_H
