//===- pmu/SimPmu.h - Simulator-backed address sampling ---------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated PMU: a SampleSource driven by the multicore simulator's
/// observer hooks, performing instruction-based address sampling over the
/// instruction stream the simulator retires. Plays the role AMD IBS /
/// Intel PEBS plays in the paper — it sees every retired instruction,
/// fires every `SamplingPeriod` instructions on average, and delivers
/// (address, tid, r/w, latency) samples to its sink synchronously at the
/// sampled access (batches of one, like the real per-thread signal
/// handler). Sample delivery and per-thread setup charge virtual cycles to
/// the profiled thread, which is how Cheetah's runtime overhead becomes
/// measurable inside the simulation (Figure 4).
///
/// Thread lifecycle events forward to the sink even when sampling is
/// disabled: an attached-but-disabled PMU stops the samples and the cycle
/// charges, not the profiler's view of the thread set.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_SIMPMU_H
#define CHEETAH_PMU_SIMPMU_H

#include "pmu/PmuConfig.h"
#include "pmu/Sample.h"
#include "pmu/SampleSource.h"
#include "pmu/SamplingPolicy.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <unordered_map>

namespace cheetah {
namespace pmu {

/// Instruction-based sampling backend over the simulator.
class SimPmu : public SampleSource, public sim::SimObserver {
public:
  explicit SimPmu(const PmuConfig &Config) : Config(Config) {}

  /// Installs a raw per-sample consumer alongside the sink (tests and
  /// ablations that want the stream without a full SampleSink).
  void setHandler(SampleHandler NewHandler) { Handler = std::move(NewHandler); }

  /// Enables or disables sampling (an attached-but-disabled PMU charges no
  /// cycles and delivers nothing; used for native-baseline runs).
  void setEnabled(bool NewEnabled) { Enabled = NewEnabled; }

  /// Total threads that paid PMU setup.
  uint64_t threadsConfigured() const { return ThreadsConfigured; }

  /// Clears per-run state (per-thread countdowns and counters).
  void reset();

  // SampleSource implementation. The simulator pushes through the observer
  // hooks, so start/stop only toggle delivery and drain() has nothing to do.
  const char *name() const override { return "sim"; }
  SourceStatus start() override {
    setEnabled(true);
    return {true, ""};
  }
  SourceStatus stop() override {
    setEnabled(false);
    return {true, ""};
  }
  uint64_t samplesDelivered() const override { return SamplesDelivered; }
  sim::SimObserver *simObserver() override { return this; }

  // SimObserver implementation.
  uint64_t onThreadStart(ThreadId Tid, bool IsMain, uint64_t Now) override;
  void onThreadEnd(const sim::ThreadRecord &Record) override;
  uint64_t onMemoryAccess(ThreadId Tid, const MemoryAccess &Access,
                          const sim::CoherenceResult &Result,
                          uint64_t Now) override;
  void onInstructions(ThreadId Tid, uint64_t Count) override;

private:
  SamplingPolicy &policyFor(ThreadId Tid);

  PmuConfig Config;
  SampleHandler Handler;
  bool Enabled = true;
  uint64_t SamplesDelivered = 0;
  uint64_t ThreadsConfigured = 0;
  std::unordered_map<ThreadId, SamplingPolicy> Policies;
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_SIMPMU_H
