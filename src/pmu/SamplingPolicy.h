//===- pmu/SamplingPolicy.h - Instruction-based sampling policy -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread instruction countdown implementing "one sample out of a
/// predefined number of instructions" (paper Section 2.1, default one out of
/// 64K). Real PMUs randomize the exact reset value to avoid lock-step
/// aliasing with loop bodies; the policy reproduces that with a deterministic
/// PRNG so simulations stay repeatable.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_SAMPLINGPOLICY_H
#define CHEETAH_PMU_SAMPLINGPOLICY_H

#include "pmu/PmuConfig.h"
#include "support/Assert.h"
#include "support/Random.h"

#include <cstdint>
#include <string>

namespace cheetah {
namespace pmu {

/// Countdown-based sampling decision for one thread.
class SamplingPolicy {
public:
  /// Inert placeholder (period 1, no jitter) so fromSpec() has an output
  /// slot to fill, mirroring NumaTopology's default-then-fromSpec shape.
  SamplingPolicy() : SamplingPolicy(1, 0.0, 0) {}

  /// \param Period mean instructions between samples (must be >= 1).
  /// \param JitterFraction fraction of the period randomized around the
  ///        mean, in [0, 1); 0 means a strict fixed period.
  /// \param Seed PRNG seed for the jitter.
  /// Programmatic use only: callers with flag- or file-sourced values go
  /// through validateSpec()/fromSpec() instead of this asserting path.
  SamplingPolicy(uint64_t Period, double JitterFraction, uint64_t Seed)
      : Period(Period), JitterFraction(JitterFraction), Rng(Seed) {
    CHEETAH_ASSERT(Period >= 1, "sampling period must be at least 1");
    CHEETAH_ASSERT(JitterFraction >= 0.0 && JitterFraction < 1.0,
                   "jitter fraction must be in [0, 1)");
    Remaining = nextInterval();
  }

  /// Checks the (period, jitter) pair this policy would assert on.
  /// \returns false with a descriptive \p Error on the first violation.
  static bool validateSpec(uint64_t Period, double JitterFraction,
                           std::string &Error) {
    PmuConfig Probe;
    Probe.SamplingPeriod = Period;
    Probe.JitterFraction = JitterFraction;
    // One validator owns the constraint text (the same rules PmuConfig
    // enforces) so the two can never drift apart.
    return PmuConfig::validateSpec(Probe, Error);
  }

  /// Validates and constructs into \p Out. Never asserts on bad input.
  static bool fromSpec(uint64_t Period, double JitterFraction, uint64_t Seed,
                       SamplingPolicy &Out, std::string &Error) {
    if (!validateSpec(Period, JitterFraction, Error))
      return false;
    Out = SamplingPolicy(Period, JitterFraction, Seed);
    return true;
  }

  /// Advances by \p Instructions retired instructions.
  /// \returns the number of sample points crossed (usually 0 or 1; large
  /// compute blocks can cross several).
  uint32_t advance(uint64_t Instructions) {
    uint32_t Fired = 0;
    while (Instructions >= Remaining) {
      Instructions -= Remaining;
      Remaining = nextInterval();
      ++Fired;
    }
    Remaining -= Instructions;
    return Fired;
  }

  /// Mean sampling period.
  uint64_t period() const { return Period; }

private:
  uint64_t nextInterval() {
    if (JitterFraction <= 0.0)
      return Period;
    // Uniform in [Period*(1-j), Period*(1+j)], at least 1.
    uint64_t Spread =
        static_cast<uint64_t>(static_cast<double>(Period) * JitterFraction);
    if (Spread == 0)
      return Period;
    uint64_t Lo = Period > Spread ? Period - Spread : 1;
    return Rng.nextInRange(Lo, Period + Spread);
  }

  uint64_t Period;
  double JitterFraction;
  SplitMix64 Rng;
  uint64_t Remaining;
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_SAMPLINGPOLICY_H
