//===- pmu/SamplingPolicy.h - Instruction-based sampling policy -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread instruction countdown implementing "one sample out of a
/// predefined number of instructions" (paper Section 2.1, default one out of
/// 64K). Real PMUs randomize the exact reset value to avoid lock-step
/// aliasing with loop bodies; the policy reproduces that with a deterministic
/// PRNG so simulations stay repeatable.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_SAMPLINGPOLICY_H
#define CHEETAH_PMU_SAMPLINGPOLICY_H

#include "support/Assert.h"
#include "support/Random.h"

#include <cstdint>

namespace cheetah {
namespace pmu {

/// Countdown-based sampling decision for one thread.
class SamplingPolicy {
public:
  /// \param Period mean instructions between samples (must be >= 1).
  /// \param JitterFraction fraction of the period randomized around the
  ///        mean, in [0, 1); 0 means a strict fixed period.
  /// \param Seed PRNG seed for the jitter.
  SamplingPolicy(uint64_t Period, double JitterFraction, uint64_t Seed)
      : Period(Period), JitterFraction(JitterFraction), Rng(Seed) {
    CHEETAH_ASSERT(Period >= 1, "sampling period must be at least 1");
    CHEETAH_ASSERT(JitterFraction >= 0.0 && JitterFraction < 1.0,
                   "jitter fraction must be in [0, 1)");
    Remaining = nextInterval();
  }

  /// Advances by \p Instructions retired instructions.
  /// \returns the number of sample points crossed (usually 0 or 1; large
  /// compute blocks can cross several).
  uint32_t advance(uint64_t Instructions) {
    uint32_t Fired = 0;
    while (Instructions >= Remaining) {
      Instructions -= Remaining;
      Remaining = nextInterval();
      ++Fired;
    }
    Remaining -= Instructions;
    return Fired;
  }

  /// Mean sampling period.
  uint64_t period() const { return Period; }

private:
  uint64_t nextInterval() {
    if (JitterFraction <= 0.0)
      return Period;
    // Uniform in [Period*(1-j), Period*(1+j)], at least 1.
    uint64_t Spread =
        static_cast<uint64_t>(static_cast<double>(Period) * JitterFraction);
    if (Spread == 0)
      return Period;
    uint64_t Lo = Period > Spread ? Period - Spread : 1;
    return Rng.nextInRange(Lo, Period + Spread);
  }

  uint64_t Period;
  double JitterFraction;
  SplitMix64 Rng;
  uint64_t Remaining;
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_SAMPLINGPOLICY_H
