//===- pmu/PerfEventPmu.h - Real perf_event_open sampling -------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A real Linux PMU backend using perf_event_open(2) with precise
/// (PEBS/IBS-backed) memory sampling: PERF_SAMPLE_ADDR for the data address,
/// PERF_SAMPLE_WEIGHT for the access latency, PERF_SAMPLE_TID for the
/// issuing thread — the exact quantities Cheetah consumes. This backend
/// profiles the *calling* process's threads.
///
/// Availability is hardware- and container-dependent (the paper's Section 5
/// "Hardware Dependence" concern); construction reports a precise
/// unavailability reason instead of failing fatally, and all analysis code
/// is backend-agnostic, so the simulator backend (SimPmu) is a drop-in
/// replacement.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_PERFEVENTPMU_H
#define CHEETAH_PMU_PERFEVENTPMU_H

#include "pmu/PmuConfig.h"
#include "pmu/Sample.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {
namespace pmu {

/// Status of an attempted perf_event PMU session.
struct PerfEventStatus {
  bool Available = false;
  /// Empty when available; otherwise a human-readable reason (e.g. EACCES
  /// from perf_event_paranoid, ENOENT for missing precise events).
  std::string Reason;
};

/// Self-monitoring perf_event sampler for the current thread.
class PerfEventPmu {
public:
  explicit PerfEventPmu(const PmuConfig &Config);
  ~PerfEventPmu();

  PerfEventPmu(const PerfEventPmu &) = delete;
  PerfEventPmu &operator=(const PerfEventPmu &) = delete;

  /// Probes whether this process may use precise memory sampling at all,
  /// without leaving an event open.
  static PerfEventStatus probe();

  /// Opens and starts sampling on the calling thread.
  /// \returns the session status; on failure the object stays inert.
  PerfEventStatus start();

  /// Stops sampling (idempotent).
  void stop();

  /// Drains buffered samples into \p Out.
  /// \returns number of samples appended.
  size_t drain(std::vector<Sample> &Out);

  /// True between a successful start() and stop().
  bool running() const { return Fd >= 0 && Running; }

private:
  PmuConfig Config;
  int Fd = -1;
  void *RingBuffer = nullptr;
  size_t RingBytes = 0;
  bool Running = false;
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_PERFEVENTPMU_H
