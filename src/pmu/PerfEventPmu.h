//===- pmu/PerfEventPmu.h - Real perf_event_open sampling -------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A real Linux PMU backend using perf_event_open(2) with precise
/// (PEBS/IBS-backed) memory sampling: PERF_SAMPLE_ADDR for the data address,
/// PERF_SAMPLE_WEIGHT for the access latency, PERF_SAMPLE_TID for the
/// issuing thread — the exact quantities Cheetah consumes. This backend
/// profiles the *calling* process's threads.
///
/// Availability is hardware- and container-dependent (the paper's Section 5
/// "Hardware Dependence" concern); construction reports a precise
/// unavailability reason instead of failing fatally, and all analysis code
/// is backend-agnostic, so the simulator backend (SimPmu) is a drop-in
/// replacement.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_PERFEVENTPMU_H
#define CHEETAH_PMU_PERFEVENTPMU_H

#include "pmu/PmuConfig.h"
#include "pmu/Sample.h"
#include "pmu/SampleSource.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {
namespace pmu {

/// Status of an attempted perf_event PMU session (the seam-wide status
/// shape; the alias predates the SampleSource interface).
using PerfEventStatus = SourceStatus;

/// Self-monitoring perf_event sampler for the current thread, conforming
/// to the SampleSource seam: start() opens the event (reporting the
/// probe()-style gate on failure), drain() moves ring-buffer samples into
/// the installed sink as one batch.
class PerfEventPmu : public SampleSource {
public:
  explicit PerfEventPmu(const PmuConfig &Config);
  ~PerfEventPmu() override;

  PerfEventPmu(const PerfEventPmu &) = delete;
  PerfEventPmu &operator=(const PerfEventPmu &) = delete;

  /// Probes whether this process may use precise memory sampling at all,
  /// without leaving an event open.
  static PerfEventStatus probe();

  // SampleSource implementation.
  const char *name() const override { return "perf_event"; }

  /// Opens and starts sampling on the calling thread.
  /// \returns the session status; on failure the object stays inert.
  SourceStatus start() override;

  /// Drains buffered samples into the sink (one ingestBatch call per
  /// drain). \returns number of samples delivered.
  size_t drain() override;

  /// Stops sampling (idempotent).
  SourceStatus stop() override;

  uint64_t samplesDelivered() const override { return SamplesDelivered; }

  /// Drains buffered samples into \p Out instead of the sink.
  /// \returns number of samples appended.
  size_t drain(std::vector<Sample> &Out);

  /// True between a successful start() and stop().
  bool running() const { return Fd >= 0 && Running; }

private:
  PmuConfig Config;
  int Fd = -1;
  void *RingBuffer = nullptr;
  size_t RingBytes = 0;
  bool Running = false;
  uint64_t SamplesDelivered = 0;
  /// Scratch for sink-directed drains (reused across calls).
  std::vector<Sample> DrainBuffer;
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_PERFEVENTPMU_H
