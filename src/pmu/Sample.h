//===- pmu/Sample.h - PMU memory-access samples -----------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sample record contract between any PMU backend (simulated or real
/// perf_event) and the Cheetah analysis pipeline. This is exactly the
/// information the paper's data-collection module gleans per sample
/// (Section 2.1): address, thread id, read/write, and access latency.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_SAMPLE_H
#define CHEETAH_PMU_SAMPLE_H

#include "mem/MemoryAccess.h"

#include <cstdint>
#include <functional>

namespace cheetah {
namespace pmu {

/// One sampled memory access.
struct Sample {
  /// Effective (data) address of the access.
  uint64_t Address = 0;
  /// Thread that issued the access.
  ThreadId Tid = 0;
  /// True for stores.
  bool IsWrite = false;
  /// Access latency in cycles as the PMU measured it.
  uint32_t LatencyCycles = 0;
  /// Timestamp (virtual cycles in simulation, TSC for perf_event).
  uint64_t Timestamp = 0;
};

/// Callback invoked for every delivered sample. In the real system this runs
/// inside the per-thread signal handler (paper Section 2.1); in simulation it
/// runs synchronously at the sampled access.
using SampleHandler = std::function<void(const Sample &)>;

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_SAMPLE_H
