//===- pmu/SampleSource.h - Pluggable sampling-backend seam -----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend seam of the paper's data-collection module: samples are
/// samples whether a simulator, a trace file, or a hardware PMU produced
/// them, so everything above this interface (the profiler core, the
/// drivers, the tools) is written against SampleSource/SampleSink and
/// never against a concrete backend. Three conformers exist:
///
///   - SimPmu        instruction-based sampling over the multicore simulator
///   - TraceSource   record mode tees any backend's stream into a versioned
///                   `cheetah-trace-v1` file; replay mode feeds a recorded
///                   file back through the same sink deterministically
///   - PerfEventPmu  real perf_event_open(2) sampling behind its probe()
///                   gate (hardware- and container-dependent)
///
/// The sink shape mirrors what the analysis side already consumes: batched
/// samples via ingestBatch plus the thread lifecycle events the phase
/// tracker needs. Delivery order is the contract — a sink fed the same
/// event sequence twice must build byte-identical reports, which is what
/// makes trace replay an executable determinism gate.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_SAMPLESOURCE_H
#define CHEETAH_PMU_SAMPLESOURCE_H

#include "pmu/Sample.h"

#include <cstdint>
#include <string>

namespace cheetah {
namespace sim {
class SimObserver;
} // namespace sim

namespace pmu {

/// Outcome of a backend lifecycle operation (start/attach/stop).
struct SourceStatus {
  bool Available = false;
  /// Empty when available; otherwise a human-readable reason (e.g. EACCES
  /// from perf_event_paranoid, a trace-file parse error with byte offset).
  std::string Reason;
};

/// Consumer side of the seam: where every backend delivers its stream.
/// core::Profiler implements this; tests and tools provide small adapters.
class SampleSink {
public:
  virtual ~SampleSink() = default;

  /// Thread \p Tid (the main thread is Tid 0 / IsMain) began execution at
  /// \p Now. Backends report every profiled thread exactly once, before any
  /// of its samples.
  virtual void threadStarted(ThreadId Tid, bool IsMain, uint64_t Now) = 0;

  /// Thread \p Tid finished at \p EndCycle, after its last sample.
  virtual void threadFinished(ThreadId Tid, bool IsMain,
                              uint64_t EndCycle) = 0;

  /// Delivers \p Count samples. Backends with synchronous per-sample
  /// delivery (the simulator's sampling trap) pass batches of one; buffered
  /// backends (perf_event ring drains, interpose thread buffers) pass
  /// whole batches.
  virtual void ingestBatch(const Sample *Samples, size_t Count) = 0;
};

/// Producer side of the seam: one sampling backend driving one sink.
///
/// Lifecycle: setSink() then start(); for pull-style backends, drain()
/// moves buffered samples into the sink; stop() ends the session (and is
/// where file-backed sources flush — its status carries I/O errors).
class SampleSource {
public:
  virtual ~SampleSource() = default;

  /// Stable backend identifier ("sim", "perf_event", "trace-record",
  /// "trace-replay") for banners and diagnostics.
  virtual const char *name() const = 0;

  /// Installs the consumer. Must precede start(); the source never owns
  /// the sink.
  void setSink(SampleSink *NewSink) { Sink = NewSink; }
  SampleSink *sink() const { return Sink; }

  /// Begins the sampling session. On failure the source stays inert and
  /// Reason says why (a probe-gated backend reports its gate here).
  virtual SourceStatus start() = 0;

  /// Registers thread \p Tid with the backend (per-thread PMU fds on real
  /// hardware). Backends that learn about threads from their own stream
  /// accept the default no-op.
  virtual SourceStatus attachThread(ThreadId Tid) {
    (void)Tid;
    return {true, ""};
  }

  /// Pull-style delivery: moves any buffered samples into the sink.
  /// \returns samples delivered by this call. Push-style backends (the
  /// simulator observer) deliver from their own event hooks and return 0.
  virtual size_t drain() { return 0; }

  /// Ends the session (idempotent). File-backed sources report write
  /// failures here — callers must check, this is the loud-error path.
  virtual SourceStatus stop() = 0;

  /// Total samples this source has delivered to its sink.
  virtual uint64_t samplesDelivered() const = 0;

  /// Non-null for backends driven by the simulator's observer hooks; the
  /// driver attaches this to the Simulator. Pull-style backends return
  /// nullptr.
  virtual sim::SimObserver *simObserver() { return nullptr; }

private:
  SampleSink *Sink = nullptr;
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_SAMPLESOURCE_H
