//===- pmu/TraceSource.cpp - Sample-trace record and replay ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pmu/TraceSource.h"

#include "support/Json.h"

#include <cstdio>

using namespace cheetah;
using namespace cheetah::pmu;

//===----------------------------------------------------------------------===//
// cheetah-trace-v1 serialization
//===----------------------------------------------------------------------===//

static const char *TraceSchema = "cheetah-trace-v1";

std::string TraceData::serialize() const {
  std::string Out;
  JsonWriter Writer(Out);
  Writer.beginObject();
  Writer.member("schema", TraceSchema);
  Writer.member("sampling_period", SamplingPeriod);
  Writer.member("run_cycles", RunCycles);
  Writer.key("events");
  Writer.beginArray();
  for (const TraceEvent &Event : Events) {
    Writer.beginObject();
    switch (Event.K) {
    case TraceEvent::Kind::ThreadStart:
      Writer.member("k", "ts");
      Writer.member("tid", static_cast<uint64_t>(Event.Tid));
      Writer.member("main", Event.IsMain);
      Writer.member("t", Event.Time);
      break;
    case TraceEvent::Kind::ThreadEnd:
      Writer.member("k", "te");
      Writer.member("tid", static_cast<uint64_t>(Event.Tid));
      Writer.member("main", Event.IsMain);
      Writer.member("t", Event.Time);
      break;
    case TraceEvent::Kind::SamplePoint:
      Writer.member("k", "s");
      Writer.member("a", Event.Address);
      Writer.member("tid", static_cast<uint64_t>(Event.Tid));
      Writer.member("w", Event.IsWrite);
      Writer.member("l", static_cast<uint64_t>(Event.LatencyCycles));
      Writer.member("t", Event.Time);
      break;
    }
    Writer.endObject();
  }
  Writer.endArray();
  Writer.endObject();
  return Out;
}

bool TraceData::parse(const std::string &Text, TraceData &Out,
                      std::string &Error) {
  JsonValue Root;
  if (!JsonValue::parse(Text, Root, Error))
    return false;
  if (!Root.isObject()) {
    Error = "trace document is not a JSON object";
    return false;
  }

  // Version first: a wrong schema must be the error even if the rest of
  // the document happens to look structurally plausible.
  std::string Schema;
  if (!jsonFieldString(Root, "schema", Schema, Error))
    return false;
  if (Schema != TraceSchema) {
    Error = "unsupported schema '" + Schema + "' (expected " +
            std::string(TraceSchema) + ")";
    return false;
  }

  TraceData Parsed;
  if (!jsonFieldUint(Root, "sampling_period", Parsed.SamplingPeriod, Error) ||
      !jsonFieldUint(Root, "run_cycles", Parsed.RunCycles, Error))
    return false;
  if (Parsed.SamplingPeriod < 1) {
    Error = "sampling_period must be at least 1";
    return false;
  }

  const JsonValue *Events = Root.find("events");
  if (!Events || !Events->isArray()) {
    Error = "missing or non-array 'events'";
    return false;
  }

  Parsed.Events.reserve(Events->size());
  for (size_t I = 0; I < Events->elements().size(); ++I) {
    const JsonValue &Node = Events->elements()[I];
    std::string At = "event " + std::to_string(I) + ": ";
    if (!Node.isObject()) {
      Error = At + "not a JSON object";
      return false;
    }
    std::string Kind;
    if (!jsonFieldString(Node, "k", Kind, Error)) {
      Error = At + Error;
      return false;
    }

    TraceEvent Event;
    uint64_t Tid = 0, Time = 0;
    if (Kind == "ts" || Kind == "te") {
      Event.K = Kind == "ts" ? TraceEvent::Kind::ThreadStart
                             : TraceEvent::Kind::ThreadEnd;
      if (!jsonFieldUint(Node, "tid", Tid, Error) ||
          !jsonFieldBool(Node, "main", Event.IsMain, Error) ||
          !jsonFieldUint(Node, "t", Time, Error)) {
        Error = At + Error;
        return false;
      }
    } else if (Kind == "s") {
      Event.K = TraceEvent::Kind::SamplePoint;
      uint64_t Latency = 0;
      if (!jsonFieldUint(Node, "a", Event.Address, Error) ||
          !jsonFieldUint(Node, "tid", Tid, Error) ||
          !jsonFieldBool(Node, "w", Event.IsWrite, Error) ||
          !jsonFieldUint(Node, "l", Latency, Error) ||
          !jsonFieldUint(Node, "t", Time, Error)) {
        Error = At + Error;
        return false;
      }
      if (Latency > UINT32_MAX) {
        Error = At + "latency exceeds 32 bits";
        return false;
      }
      Event.LatencyCycles = static_cast<uint32_t>(Latency);
    } else {
      Error = At + "unknown event kind '" + Kind + "'";
      return false;
    }
    if (Tid > UINT32_MAX) {
      Error = At + "tid exceeds 32 bits";
      return false;
    }
    Event.Tid = static_cast<ThreadId>(Tid);
    Event.Time = Time;
    Parsed.Events.push_back(Event);
  }

  Out = std::move(Parsed);
  return true;
}

//===----------------------------------------------------------------------===//
// TraceSource
//===----------------------------------------------------------------------===//

namespace {

/// Writes \p Text to \p Path. \returns false with \p Error on I/O failure.
bool writeTraceFile(const std::string &Path, const std::string &Text,
                    std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  bool Closed = std::fclose(File) == 0;
  if (Written != Text.size() || !Closed) {
    Error = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

/// Reads all of \p Path into \p Out. \returns false with \p Error when the
/// file cannot be opened or read.
bool readTraceFile(const std::string &Path, std::string &Out,
                   std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = "cannot open trace file '" + Path + "'";
    return false;
  }
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Out.append(Buffer, Read);
  bool Ok = !std::ferror(File);
  std::fclose(File);
  if (!Ok)
    Error = "read error on trace file '" + Path + "'";
  return Ok;
}

} // namespace

TraceSource::TraceSource(std::unique_ptr<SampleSource> Inner, std::string Path,
                         uint64_t SamplingPeriod)
    : Inner(std::move(Inner)), Path(std::move(Path)) {
  Data.SamplingPeriod = SamplingPeriod;
}

TraceSource::TraceSource(std::string Path) : Path(std::move(Path)) {}

SourceStatus TraceSource::start() {
  if (Started)
    return {true, ""};
  if (Inner) {
    // Record mode: interpose on the inner backend's stream. The outer sink
    // (set on *this*) receives everything the inner backend delivers,
    // after the tee buffers it.
    Inner->setSink(this);
    SourceStatus Status = Inner->start();
    Started = Status.Available;
    return Status;
  }
  // Replay mode: the whole trace is materialized up front so a parse error
  // surfaces here, before any event reaches the sink.
  std::string Text, Error;
  if (!readTraceFile(Path, Text, Error))
    return {false, Error};
  if (!TraceData::parse(Text, Data, Error))
    return {false, "'" + Path + "': " + Error};
  Started = true;
  return {true, ""};
}

SourceStatus TraceSource::attachThread(ThreadId Tid) {
  if (Inner)
    return Inner->attachThread(Tid);
  return {true, ""};
}

size_t TraceSource::drain() {
  if (Inner)
    return Inner->drain();
  if (!Started || !sink())
    return 0;
  size_t Delivered = replayInto(*sink());
  SamplesDelivered += Delivered;
  return Delivered;
}

SourceStatus TraceSource::stop() {
  if (Stopped)
    return {true, ""};
  Stopped = true;
  if (!Inner)
    return {true, ""};
  SourceStatus Status = Inner->stop();
  if (!Status.Available)
    return Status;
  if (Path.empty())
    return {true, ""}; // in-memory recording: nothing to flush
  std::string Error;
  if (!writeTraceFile(Path, Data.serialize(), Error))
    return {false, Error};
  return {true, ""};
}

void TraceSource::threadStarted(ThreadId Tid, bool IsMain, uint64_t Now) {
  TraceEvent Event;
  Event.K = TraceEvent::Kind::ThreadStart;
  Event.Tid = Tid;
  Event.IsMain = IsMain;
  Event.Time = Now;
  Data.Events.push_back(Event);
  if (sink())
    sink()->threadStarted(Tid, IsMain, Now);
}

void TraceSource::threadFinished(ThreadId Tid, bool IsMain,
                                 uint64_t EndCycle) {
  TraceEvent Event;
  Event.K = TraceEvent::Kind::ThreadEnd;
  Event.Tid = Tid;
  Event.IsMain = IsMain;
  Event.Time = EndCycle;
  Data.Events.push_back(Event);
  if (sink())
    sink()->threadFinished(Tid, IsMain, EndCycle);
}

void TraceSource::ingestBatch(const Sample *Samples, size_t Count) {
  for (size_t I = 0; I < Count; ++I) {
    const Sample &S = Samples[I];
    TraceEvent Event;
    Event.K = TraceEvent::Kind::SamplePoint;
    Event.Tid = S.Tid;
    Event.Time = S.Timestamp;
    Event.Address = S.Address;
    Event.IsWrite = S.IsWrite;
    Event.LatencyCycles = S.LatencyCycles;
    Data.Events.push_back(Event);
  }
  SamplesDelivered += Count;
  if (sink())
    sink()->ingestBatch(Samples, Count);
}

size_t TraceSource::replayInto(SampleSink &Out) const {
  size_t Delivered = 0;
  for (const TraceEvent &Event : Data.Events) {
    switch (Event.K) {
    case TraceEvent::Kind::ThreadStart:
      Out.threadStarted(Event.Tid, Event.IsMain, Event.Time);
      break;
    case TraceEvent::Kind::ThreadEnd:
      Out.threadFinished(Event.Tid, Event.IsMain, Event.Time);
      break;
    case TraceEvent::Kind::SamplePoint: {
      // Batches of one, in recorded order: byte-identical reports depend
      // on replay matching the recording backend's synchronous delivery
      // (batched delivery would merge latency statistics in a different
      // floating-point order).
      Sample S;
      S.Address = Event.Address;
      S.Tid = Event.Tid;
      S.IsWrite = Event.IsWrite;
      S.LatencyCycles = Event.LatencyCycles;
      S.Timestamp = Event.Time;
      Out.ingestBatch(&S, 1);
      ++Delivered;
      break;
    }
    }
  }
  return Delivered;
}
