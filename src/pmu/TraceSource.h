//===- pmu/TraceSource.h - Sample-trace record and replay -------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace record/replay as a first-class sampling backend. In record mode a
/// TraceSource wraps any other SampleSource, installs itself as that
/// backend's sink, and tees the full event stream — thread lifecycle and
/// samples, in delivery order — into a versioned `cheetah-trace-v1` JSON
/// file while forwarding everything to the outer sink unchanged. In replay
/// mode it parses such a file (loudly: schema mismatches, truncation, and
/// field-kind surprises are descriptive errors, never crashes) and feeds
/// the recorded stream back through the same sink shape deterministically:
/// lifecycle events in place, samples as batches of one, exactly as the
/// simulator's synchronous sampling trap delivered them.
///
/// Because detection is delivery-order-sensitive, a replayed trace must
/// produce a byte-identical `cheetah-report-v4` to the live run that
/// recorded it — CI records a NUMA workload, replays it, and `cmp`s the
/// two reports in all three table builds.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_PMU_TRACESOURCE_H
#define CHEETAH_PMU_TRACESOURCE_H

#include "pmu/Sample.h"
#include "pmu/SampleSource.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cheetah {
namespace pmu {

/// One recorded event: a thread lifecycle edge or a sample, in the order
/// the recording backend delivered it.
struct TraceEvent {
  enum class Kind : uint8_t { ThreadStart, SamplePoint, ThreadEnd };
  Kind K = Kind::SamplePoint;
  /// Issuing thread (all kinds).
  ThreadId Tid = 0;
  /// Lifecycle: whether this is the main thread.
  bool IsMain = false;
  /// Lifecycle start/end cycle, or the sample timestamp.
  uint64_t Time = 0;
  /// Sample payload (SamplePoint only).
  uint64_t Address = 0;
  bool IsWrite = false;
  uint32_t LatencyCycles = 0;
};

/// The serializable content of a `cheetah-trace-v1` file: the recording
/// backend's sampling period, the live run's total cycles (so replay can
/// reproduce the report's runtime field), and the ordered event stream.
struct TraceData {
  uint64_t SamplingPeriod = 0;
  uint64_t RunCycles = 0;
  std::vector<TraceEvent> Events;

  /// \returns the `cheetah-trace-v1` document (deterministic: same data,
  /// same bytes).
  std::string serialize() const;

  /// Parses \p Text into \p Out. \returns false with a descriptive
  /// \p Error — unsupported schema, malformed JSON with byte offset,
  /// missing/mistyped fields with the event index — on any surprise.
  /// Never asserts or crashes on hostile input.
  static bool parse(const std::string &Text, TraceData &Out,
                    std::string &Error);
};

/// The trace backend. Construct in one of two modes; the SampleSource
/// surface is identical either way, so drivers treat it like any backend.
class TraceSource : public SampleSource, public SampleSink {
public:
  /// Record mode: wraps \p Inner (which must outlive nothing — the
  /// TraceSource owns it), tees its stream, and forwards to the outer
  /// sink. \p Path is where stop() writes the trace; empty records
  /// in-memory only (the daemon's capture pass). \p SamplingPeriod is
  /// stamped into the header.
  TraceSource(std::unique_ptr<SampleSource> Inner, std::string Path,
              uint64_t SamplingPeriod);

  /// Replay mode: start() parses \p Path, drain() delivers the stream.
  explicit TraceSource(std::string Path);

  // SampleSource implementation.
  const char *name() const override {
    return Inner ? "trace-record" : "trace-replay";
  }
  SourceStatus start() override;
  SourceStatus attachThread(ThreadId Tid) override;
  size_t drain() override;
  SourceStatus stop() override;
  uint64_t samplesDelivered() const override { return SamplesDelivered; }
  sim::SimObserver *simObserver() override {
    return Inner ? Inner->simObserver() : nullptr;
  }

  // SampleSink implementation (the record-mode tee).
  void threadStarted(ThreadId Tid, bool IsMain, uint64_t Now) override;
  void threadFinished(ThreadId Tid, bool IsMain, uint64_t EndCycle) override;
  void ingestBatch(const Sample *Samples, size_t Count) override;

  /// Record mode: stamps the live run's total cycles before stop() writes
  /// the file.
  void setRunCycles(uint64_t Cycles) { Data.RunCycles = Cycles; }
  /// Replay mode (after start()): the recorded run's total cycles.
  uint64_t runCycles() const { return Data.RunCycles; }
  /// The header's sampling period (replay: as recorded).
  uint64_t samplingPeriod() const { return Data.SamplingPeriod; }
  /// The buffered event stream (record: what was teed so far; replay:
  /// what start() parsed).
  const TraceData &data() const { return Data; }

  /// Delivers the buffered stream into \p Out in recorded order —
  /// lifecycle edges in place, samples as batches of one. Callable
  /// repeatedly (the daemon replays one trace every epoch).
  /// \returns samples delivered by this pass.
  size_t replayInto(SampleSink &Out) const;

private:
  /// Record-mode inner backend; null in replay mode.
  std::unique_ptr<SampleSource> Inner;
  std::string Path;
  TraceData Data;
  uint64_t SamplesDelivered = 0;
  bool Started = false;
  bool Stopped = false;
};

} // namespace pmu
} // namespace cheetah

#endif // CHEETAH_PMU_TRACESOURCE_H
