//===- pmu/SimPmu.cpp - Simulator-backed address sampling ----------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pmu/SimPmu.h"

using namespace cheetah;
using namespace cheetah::pmu;

void SimPmu::reset() {
  Policies.clear();
  SamplesDelivered = 0;
  ThreadsConfigured = 0;
}

SamplingPolicy &SimPmu::policyFor(ThreadId Tid) {
  auto It = Policies.find(Tid);
  if (It != Policies.end())
    return It->second;
  // Each thread gets its own jitter stream so threads don't sample in
  // lock-step; seeds derive from the thread id for reproducibility.
  auto [NewIt, Inserted] = Policies.emplace(
      Tid, SamplingPolicy(Config.SamplingPeriod, Config.JitterFraction,
                          Config.Seed ^ (0x9e3779b97f4a7c15ull * (Tid + 1))));
  (void)Inserted;
  return NewIt->second;
}

uint64_t SimPmu::onThreadStart(ThreadId Tid, bool IsMain, uint64_t Now) {
  // Lifecycle reaches the sink whether or not sampling is enabled: the
  // profiler's thread registry and phase model track the program, not the
  // PMU's on/off state.
  if (sink())
    sink()->threadStarted(Tid, IsMain, Now);
  if (!Enabled)
    return 0;
  // Programming the PMU registers happens for every thread, main included
  // (Cheetah turns on sampling "before the main routine").
  policyFor(Tid);
  ++ThreadsConfigured;
  return Config.ThreadSetupCycles;
}

void SimPmu::onThreadEnd(const sim::ThreadRecord &Record) {
  if (sink())
    sink()->threadFinished(Record.Tid, Record.IsMain, Record.EndCycle);
}

void SimPmu::onInstructions(ThreadId Tid, uint64_t Count) {
  if (!Enabled)
    return;
  // Pure-compute instructions advance the countdown but cannot deliver an
  // address sample: the PMU tags only memory operations with an address.
  // Real IBS behaves the same way — a sample landing on a non-memory
  // instruction produces no data address and is dropped by the handler.
  policyFor(Tid).advance(Count);
}

uint64_t SimPmu::onMemoryAccess(ThreadId Tid, const MemoryAccess &Access,
                                const sim::CoherenceResult &Result,
                                uint64_t Now) {
  if (!Enabled)
    return 0;
  uint32_t Fired = policyFor(Tid).advance(1);
  if (Fired == 0)
    return 0;

  ++SamplesDelivered;
  if (Handler || sink()) {
    Sample S;
    S.Address = Access.Address;
    S.Tid = Tid;
    S.IsWrite = Access.isWrite();
    S.LatencyCycles = static_cast<uint32_t>(Result.LatencyCycles);
    S.Timestamp = Now;
    if (Handler)
      Handler(S);
    // Synchronous delivery at the sampled access: a batch of one, exactly
    // what the real per-thread signal handler hands the runtime.
    if (sink())
      sink()->ingestBatch(&S, 1);
  }
  // One trap per crossing; multiple crossings within one instruction are
  // impossible for memory ops (they advance the countdown by exactly 1).
  return Config.SampleHandlerCycles;
}
