//===- pmu/PerfEventPmu.cpp - Real perf_event_open sampling --------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pmu/PerfEventPmu.h"

#include "support/Assert.h"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace cheetah;
using namespace cheetah::pmu;

#if defined(__linux__)

namespace {

constexpr size_t RingPages = 16; // 1 data page header + 16 data pages

long perfEventOpen(struct perf_event_attr *Attr, pid_t Pid, int Cpu,
                   int GroupFd, unsigned long Flags) {
  return syscall(SYS_perf_event_open, Attr, Pid, Cpu, GroupFd, Flags);
}

/// Fills \p Attr for precise memory-load sampling with addresses and
/// latency weight, mirroring what Cheetah programs via pfmon on AMD IBS.
void makeSamplingAttr(struct perf_event_attr &Attr, uint64_t Period) {
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.size = sizeof(Attr);
  // Generic retired-instruction event with max available precision; on Intel
  // this engages PEBS, on AMD IBS-op. Precise level 2 requests "requested
  // instruction" skid semantics, needed for trustworthy data addresses.
  Attr.type = PERF_TYPE_HARDWARE;
  Attr.config = PERF_COUNT_HW_INSTRUCTIONS;
  Attr.sample_period = Period;
  Attr.sample_type = PERF_SAMPLE_IP | PERF_SAMPLE_TID | PERF_SAMPLE_TIME |
                     PERF_SAMPLE_ADDR | PERF_SAMPLE_WEIGHT;
  Attr.precise_ip = 2;
  Attr.disabled = 1;
  Attr.exclude_kernel = 1; // Cheetah filters kernel accesses (Section 4.1).
  Attr.exclude_hv = 1;
  Attr.wakeup_events = 64;
}

} // namespace

PerfEventPmu::PerfEventPmu(const PmuConfig &Config) : Config(Config) {}

PerfEventPmu::~PerfEventPmu() { stop(); }

PerfEventStatus PerfEventPmu::probe() {
  struct perf_event_attr Attr;
  makeSamplingAttr(Attr, 1u << 20);
  long Fd = perfEventOpen(&Attr, /*Pid=*/0, /*Cpu=*/-1, /*GroupFd=*/-1,
                          /*Flags=*/0);
  if (Fd >= 0) {
    close(static_cast<int>(Fd));
    return {true, ""};
  }
  // Retry without precision: some hosts expose counting but not precise
  // sampling; report which capability is missing.
  Attr.precise_ip = 0;
  Fd = perfEventOpen(&Attr, 0, -1, -1, 0);
  if (Fd >= 0) {
    close(static_cast<int>(Fd));
    return {false, "PMU present but precise (PEBS/IBS) address sampling "
                   "unavailable on this host"};
  }
  // The retry can fail for a different reason than the first attempt (e.g.
  // EINVAL for the precise request, then EACCES from paranoid settings), so
  // report the errno of the attempt we are actually giving up on.
  int Err = errno;
  return {false, std::string("perf_event_open failed: ") + strerror(Err) +
                     " (check /proc/sys/kernel/perf_event_paranoid "
                     "and container seccomp policy)"};
}

PerfEventStatus PerfEventPmu::start() {
  if (Fd >= 0)
    return {true, ""};

  struct perf_event_attr Attr;
  makeSamplingAttr(Attr, Config.SamplingPeriod);
  long RawFd = perfEventOpen(&Attr, /*Pid=*/0, /*Cpu=*/-1, -1, 0);
  if (RawFd < 0)
    return {false,
            std::string("perf_event_open failed: ") + strerror(errno)};
  Fd = static_cast<int>(RawFd);

  long PageSize = sysconf(_SC_PAGESIZE);
  RingBytes = static_cast<size_t>(PageSize) * (RingPages + 1);
  RingBuffer =
      mmap(nullptr, RingBytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  if (RingBuffer == MAP_FAILED) {
    std::string Reason =
        std::string("mmap of perf ring buffer failed: ") + strerror(errno);
    close(Fd);
    Fd = -1;
    RingBuffer = nullptr;
    return {false, Reason};
  }

  ioctl(Fd, PERF_EVENT_IOC_RESET, 0);
  ioctl(Fd, PERF_EVENT_IOC_ENABLE, 0);
  Running = true;
  return {true, ""};
}

SourceStatus PerfEventPmu::stop() {
  if (Fd < 0)
    return {true, ""};
  ioctl(Fd, PERF_EVENT_IOC_DISABLE, 0);
  Running = false;
  if (RingBuffer) {
    munmap(RingBuffer, RingBytes);
    RingBuffer = nullptr;
  }
  close(Fd);
  Fd = -1;
  return {true, ""};
}

size_t PerfEventPmu::drain(std::vector<Sample> &Out) {
  if (Fd < 0 || !RingBuffer)
    return 0;

  auto *Meta = static_cast<struct perf_event_mmap_page *>(RingBuffer);
  long PageSize = sysconf(_SC_PAGESIZE);
  char *Data = static_cast<char *>(RingBuffer) + PageSize;
  uint64_t DataSize = static_cast<uint64_t>(PageSize) * RingPages;

  uint64_t Head = __atomic_load_n(&Meta->data_head, __ATOMIC_ACQUIRE);
  uint64_t Tail = Meta->data_tail;
  size_t Appended = 0;

  // Copy out complete records between tail and head. Records can wrap the
  // ring, so assemble each into a small buffer first.
  while (Tail + sizeof(struct perf_event_header) <= Head) {
    auto ReadBytes = [&](uint64_t Offset, void *Dst, size_t Len) {
      for (size_t I = 0; I < Len; ++I)
        static_cast<char *>(Dst)[I] = Data[(Offset + I) % DataSize];
    };
    struct perf_event_header Header;
    ReadBytes(Tail, &Header, sizeof(Header));
    if (Header.size == 0 || Tail + Header.size > Head)
      break;

    if (Header.type == PERF_RECORD_SAMPLE) {
      // Layout follows sample_type order: IP, TID(pid,tid), TIME, ADDR,
      // WEIGHT.
      struct SampleRecord {
        uint64_t Ip;
        uint32_t Pid, Tid;
        uint64_t Time;
        uint64_t Addr;
        uint64_t Weight;
      } Record;
      if (Header.size >= sizeof(Header) + sizeof(Record)) {
        ReadBytes(Tail + sizeof(Header), &Record, sizeof(Record));
        Sample S;
        S.Address = Record.Addr;
        S.Tid = Record.Tid;
        // The generic instruction event cannot distinguish loads from
        // stores; backends with store events would set this properly. We
        // conservatively mark unknown accesses as reads.
        S.IsWrite = false;
        S.LatencyCycles = static_cast<uint32_t>(Record.Weight);
        S.Timestamp = Record.Time;
        Out.push_back(S);
        ++Appended;
      }
    }
    Tail += Header.size;
  }
  __atomic_store_n(&Meta->data_tail, Tail, __ATOMIC_RELEASE);
  return Appended;
}

#else // !__linux__

PerfEventPmu::PerfEventPmu(const PmuConfig &Config) : Config(Config) {}
PerfEventPmu::~PerfEventPmu() { stop(); }

PerfEventStatus PerfEventPmu::probe() {
  return {false, "perf_event is only available on Linux"};
}

PerfEventStatus PerfEventPmu::start() { return probe(); }
SourceStatus PerfEventPmu::stop() { return {true, ""}; }
size_t PerfEventPmu::drain(std::vector<Sample> &Out) {
  (void)Out;
  return 0;
}

#endif

size_t PerfEventPmu::drain() {
  // Sink-directed drain, shared across platforms: pull whatever the ring
  // holds, then hand it over as one batch (the interpose runtime's batch
  // shape, not per-sample delivery).
  DrainBuffer.clear();
  size_t Appended = drain(DrainBuffer);
  if (Appended && sink())
    sink()->ingestBatch(DrainBuffer.data(), DrainBuffer.size());
  SamplesDelivered += Appended;
  return Appended;
}
