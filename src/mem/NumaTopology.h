//===- mem/NumaTopology.h - Simulated NUMA topology -------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated NUMA machine model: a node count, a page geometry, a
/// per-node-pair *distance matrix*, and a thread-to-node affinity. Pages are
/// the placement granularity of NUMA systems the way cache lines are the
/// coherence granularity of a socket, so the page-level sharing detector
/// keys every decision on this model: a page's *home* node is the node of
/// its first toucher (the OS first-touch placement policy), and an access
/// is *remote* when the issuing thread's node differs from the page's home.
///
/// Distances follow the ACPI SLIT shape real machines export through
/// `numactl --hardware` (and that prism's get-numa-config.sh probes): a
/// symmetric matrix with a zero diagonal whose off-diagonal entries grow
/// with hop count. Remote surcharges scale with the distance *normalized to
/// the minimum remote distance*, so the default uniform matrix (every
/// remote pair at DefaultRemoteDistance) reproduces the pre-distance
/// binary local/remote model bit for bit.
///
/// Affinity defaults to interleave by thread id (tid % nodes, main thread
/// on node 0) — the deterministic analogue of a round-robin pthread pinning
/// script — and can be overridden by an explicit thread→node pinning map
/// imported from a real machine's topology file (mem/TopologyFile.h).
///
/// Construction from *external* data (files, CLI flags) must go through
/// validateSpec()/fromSpec(), which report errors instead of asserting;
/// the asserting constructor remains for programmatic use where a bad
/// value is a bug in the caller.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_MEM_NUMATOPOLOGY_H
#define CHEETAH_MEM_NUMATOPOLOGY_H

#include "mem/MemoryAccess.h"
#include "support/Assert.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {

/// NUMA node identifier within one simulated machine.
using NodeId = uint32_t;

/// Sentinel for "no node recorded yet" (untouched pages).
inline constexpr NodeId NoNode = ~static_cast<NodeId>(0);

/// Remote traffic bucketed by the node-pair distance it crossed: the
/// per-finding `remoteByDistance` evidence the detector records and the
/// report schema (cheetah-report-v4) exposes.
struct RemoteDistanceStats {
  /// SLIT-style node-pair distance (accessor node to page home).
  uint32_t Distance = 0;
  uint64_t Accesses = 0;
  uint64_t Cycles = 0;
};

/// Plain-data description of a topology, the exchange format between the
/// file loader / CLI flags and the validated NumaTopology. Everything a
/// real machine's probe script exports: node count, page geometry, the
/// distance table, and an explicit thread pinning map.
struct NumaTopologySpec {
  uint32_t Nodes = 1;
  uint64_t PageSize = 4096;
  /// Nodes x Nodes distance matrix; empty = uniform (every remote pair at
  /// NumaTopology::DefaultRemoteDistance, zero diagonal).
  std::vector<std::vector<uint32_t>> Distances;
  /// Explicit thread→node map: thread t runs on ThreadPinning[t % size()].
  /// Empty = interleave (tid % Nodes).
  std::vector<NodeId> ThreadPinning;
};

/// Node count, page geometry, distance matrix, and thread affinity of the
/// simulated machine.
class NumaTopology {
public:
  /// Page-detector metadata packs per-node slots into fixed arrays; real
  /// testbeds top out far below this.
  static constexpr uint32_t MaxNodes = 16;

  /// Off-diagonal distance of the default uniform matrix. The absolute
  /// value is irrelevant (surcharges use the ratio to the minimum remote
  /// distance); 10 mirrors the SLIT unit convention.
  static constexpr uint32_t DefaultRemoteDistance = 10;

  /// Upper bound accepted for one matrix entry — far above any real SLIT
  /// and small enough that Base * Distance never overflows 64 bits.
  static constexpr uint32_t MaxDistance = 1u << 20;

  /// Longest thread pinning map accepted from external data.
  static constexpr size_t MaxPinnedThreads = 4096;

  /// Uniform-distance topology (asserting; programmatic use only).
  /// \param Nodes number of NUMA nodes (1 = UMA, detection disabled-ish).
  /// \param PageSize page size in bytes; power of two >= 256.
  explicit NumaTopology(uint32_t Nodes = 1, uint64_t PageSize = 4096)
      : Nodes(Nodes), PageBytes(PageSize) {
    CHEETAH_ASSERT(Nodes >= 1 && Nodes <= MaxNodes,
                   "node count must be in [1, MaxNodes]");
    CHEETAH_ASSERT(PageSize >= 256 && (PageSize & (PageSize - 1)) == 0,
                   "page size must be a power of two >= 256");
    computePageShift();
    fillUniformDistances();
  }

  /// Checks \p Spec against every topology invariant: node count in
  /// [1, MaxNodes], page size a power of two >= 256, distance matrix (when
  /// present) Nodes x Nodes with a zero diagonal, symmetric, off-diagonal
  /// entries in [1, MaxDistance], and pinning entries (when present) below
  /// the node count. On failure fills \p Error and returns false — never
  /// asserts, so hostile file/flag input cannot abort the tool.
  static bool validateSpec(const NumaTopologySpec &Spec, std::string &Error);

  /// Fallible factory for file- and flag-sourced construction: validates
  /// \p Spec and, on success, fills \p Out. \returns false (with \p Error
  /// set) on any invariant violation.
  static bool fromSpec(const NumaTopologySpec &Spec, NumaTopology &Out,
                       std::string &Error);

  /// Number of NUMA nodes.
  uint32_t nodeCount() const { return Nodes; }

  /// True when the machine has more than one node (remote accesses exist).
  bool multiNode() const { return Nodes > 1; }

  /// SLIT-style distance between \p A and \p B (0 when A == B; symmetric).
  uint32_t distance(NodeId A, NodeId B) const {
    CHEETAH_ASSERT(A < Nodes && B < Nodes, "node id out of range");
    return Distances[A][B];
  }

  /// Smallest off-diagonal distance — the normalization anchor: a remote
  /// access at this distance pays exactly the base surcharge.
  uint32_t minRemoteDistance() const { return MinRemote; }

  /// Largest off-diagonal distance.
  uint32_t maxRemoteDistance() const { return MaxRemote; }

  /// True when every remote pair sits at one distance (the default
  /// matrix). Uniform topologies reproduce the binary local/remote model
  /// exactly, which is what keeps pre-distance goldens byte-stable.
  bool uniformRemoteDistances() const { return MinRemote == MaxRemote; }

  /// Scales a base remote surcharge hop-proportionally: the surcharge for
  /// crossing \p From -> \p To is Base * distance / minRemoteDistance(),
  /// in integer cycles (exactly Base at the minimum remote distance, 0 for
  /// a local pair).
  uint64_t scaledRemoteCycles(uint32_t BaseCycles, NodeId From,
                              NodeId To) const {
    return static_cast<uint64_t>(BaseCycles) * distance(From, To) / MinRemote;
  }

  /// Page size in bytes.
  uint64_t pageSize() const { return PageBytes; }

  /// log2(pageSize()); the page table maps addresses by bit shifting just
  /// like the line-granularity shadow memory (paper Section 2.2).
  unsigned pageShift() const { return PageShiftBits; }

  /// \returns the global page index of \p Address.
  uint64_t pageIndex(uint64_t Address) const {
    return Address >> PageShiftBits;
  }

  /// \returns the first byte address of the page containing \p Address.
  uint64_t pageBase(uint64_t Address) const {
    return Address & ~(PageBytes - 1);
  }

  /// \returns the byte offset of \p Address within its page.
  uint64_t offsetInPage(uint64_t Address) const {
    return Address & (PageBytes - 1);
  }

  /// True when an explicit thread→node pinning map is installed.
  bool pinned() const { return !Pinning.empty(); }

  /// The explicit pinning map (empty when the interleave default rules).
  const std::vector<NodeId> &threadPinning() const { return Pinning; }

  /// Thread affinity: the explicit pinning map when installed (threads
  /// beyond its length wrap around, the way a pinning script cycles over
  /// its CPU list), otherwise deterministic interleave (tid % nodes, main
  /// thread on node 0). Cheap enough for the per-sample hot path.
  NodeId nodeOf(ThreadId Tid) const {
    if (!Pinning.empty())
      return Pinning[Tid % Pinning.size()];
    return Tid % Nodes;
  }

  /// \returns true if \p AddressA and \p AddressB fall on a common page.
  bool sharesPage(uint64_t AddressA, uint64_t AddressB) const {
    return pageIndex(AddressA) == pageIndex(AddressB);
  }

private:
  void computePageShift() {
    PageShiftBits = 0;
    for (uint64_t S = PageBytes; S > 1; S >>= 1)
      ++PageShiftBits;
  }

  void fillUniformDistances() {
    for (uint32_t A = 0; A < MaxNodes; ++A)
      for (uint32_t B = 0; B < MaxNodes; ++B)
        Distances[A][B] = A == B ? 0 : DefaultRemoteDistance;
    MinRemote = DefaultRemoteDistance;
    MaxRemote = DefaultRemoteDistance;
  }

  uint32_t Nodes;
  uint64_t PageBytes;
  unsigned PageShiftBits;
  /// Full SLIT matrix in a fixed array (1 KiB) so distance() stays a pure
  /// load on the per-sample hot path.
  uint32_t Distances[MaxNodes][MaxNodes];
  uint32_t MinRemote = DefaultRemoteDistance;
  uint32_t MaxRemote = DefaultRemoteDistance;
  std::vector<NodeId> Pinning;
};

} // namespace cheetah

#endif // CHEETAH_MEM_NUMATOPOLOGY_H
