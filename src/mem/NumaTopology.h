//===- mem/NumaTopology.h - Simulated NUMA topology -------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated NUMA machine model: a node count, a page geometry, and a
/// deterministic thread-to-node affinity. Pages are the placement
/// granularity of NUMA systems the way cache lines are the coherence
/// granularity of a socket, so the page-level sharing detector keys every
/// decision on this model: a page's *home* node is the node of its first
/// toucher (the OS first-touch placement policy), and an access is *remote*
/// when the issuing thread's node differs from the page's home.
///
/// Affinity is interleaved by thread id (tid % nodes, main thread on node
/// 0) — the deterministic analogue of a round-robin pthread pinning script
/// such as prism's get-numa-config.sh topology probing. One node is the
/// degenerate "UMA" topology: every access is local and the page detector
/// can never observe cross-node sharing, which keeps all pre-NUMA behavior
/// bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_MEM_NUMATOPOLOGY_H
#define CHEETAH_MEM_NUMATOPOLOGY_H

#include "mem/MemoryAccess.h"
#include "support/Assert.h"

#include <cstdint>

namespace cheetah {

/// NUMA node identifier within one simulated machine.
using NodeId = uint32_t;

/// Sentinel for "no node recorded yet" (untouched pages).
inline constexpr NodeId NoNode = ~static_cast<NodeId>(0);

/// Node count, page geometry, and thread affinity of the simulated machine.
class NumaTopology {
public:
  /// Page-detector metadata packs per-node slots into fixed arrays; real
  /// testbeds top out far below this.
  static constexpr uint32_t MaxNodes = 16;

  /// \param Nodes number of NUMA nodes (1 = UMA, detection disabled-ish).
  /// \param PageSize page size in bytes; power of two >= 256.
  explicit NumaTopology(uint32_t Nodes = 1, uint64_t PageSize = 4096)
      : Nodes(Nodes), PageBytes(PageSize) {
    CHEETAH_ASSERT(Nodes >= 1 && Nodes <= MaxNodes,
                   "node count must be in [1, MaxNodes]");
    CHEETAH_ASSERT(PageSize >= 256 && (PageSize & (PageSize - 1)) == 0,
                   "page size must be a power of two >= 256");
    PageShiftBits = 0;
    for (uint64_t S = PageSize; S > 1; S >>= 1)
      ++PageShiftBits;
  }

  /// Number of NUMA nodes.
  uint32_t nodeCount() const { return Nodes; }

  /// True when the machine has more than one node (remote accesses exist).
  bool multiNode() const { return Nodes > 1; }

  /// Page size in bytes.
  uint64_t pageSize() const { return PageBytes; }

  /// log2(pageSize()); the page table maps addresses by bit shifting just
  /// like the line-granularity shadow memory (paper Section 2.2).
  unsigned pageShift() const { return PageShiftBits; }

  /// \returns the global page index of \p Address.
  uint64_t pageIndex(uint64_t Address) const {
    return Address >> PageShiftBits;
  }

  /// \returns the first byte address of the page containing \p Address.
  uint64_t pageBase(uint64_t Address) const {
    return Address & ~(PageBytes - 1);
  }

  /// \returns the byte offset of \p Address within its page.
  uint64_t offsetInPage(uint64_t Address) const {
    return Address & (PageBytes - 1);
  }

  /// Deterministic interleaved affinity: thread \p Tid runs on node
  /// tid % nodes (the main thread, tid 0, on node 0). Cheap enough for the
  /// per-sample hot path.
  NodeId nodeOf(ThreadId Tid) const { return Tid % Nodes; }

  /// \returns true if \p AddressA and \p AddressB fall on a common page.
  bool sharesPage(uint64_t AddressA, uint64_t AddressB) const {
    return pageIndex(AddressA) == pageIndex(AddressB);
  }

private:
  uint32_t Nodes;
  uint64_t PageBytes;
  unsigned PageShiftBits;
};

} // namespace cheetah

#endif // CHEETAH_MEM_NUMATOPOLOGY_H
