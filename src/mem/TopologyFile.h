//===- mem/TopologyFile.h - Real-machine topology import --------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loader for the `cheetah-topology-v1` machine description — the small
/// JSON mirror of the `numa-config.h` a probe script like prism's
/// get-numa-config.sh generates from a real testbed: node count, per-node
/// CPU lists, the SLIT distance table, and (optionally) an explicit
/// thread→node pinning map.
///
/// \code{.json}
/// {
///   "schema": "cheetah-topology-v1",
///   "nodes": 4,
///   "page_size": 4096,
///   "distances": [[0,16,32,48],
///                 [16,0,48,32],
///                 [32,48,0,16],
///                 [48,32,16,0]],
///   "cpus": [[0,1],[2,3],[4,5],[6,7]],
///   "pinning": [0,0,1,1,2,2,3,3]
/// }
/// \endcode
///
/// `page_size`, `distances`, `cpus`, and `pinning` are optional; `nodes`
/// and the schema string are required. An explicit `pinning` map takes
/// precedence; when it is absent but `cpus` is present, the pinning map
/// is derived the way a pinning script walks a CPU list: flatten every
/// (cpu, node) pair, sort by CPU id, and pin thread t to the node owning
/// the t-th CPU (threads beyond the CPU count wrap around). Distances
/// omitted means the uniform default matrix.
///
/// Both entry points are fallible and never assert or crash on hostile
/// input (the fuzz suite pins that): every structural surprise — wrong
/// kind, negative or fractional number, ragged matrix — becomes an error
/// string, and full topology validation (symmetry, zero diagonal, node
/// ranges) runs via NumaTopology::validateSpec before anything is
/// returned.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_MEM_TOPOLOGYFILE_H
#define CHEETAH_MEM_TOPOLOGYFILE_H

#include "mem/NumaTopology.h"

#include <string>

namespace cheetah {

/// Parses a `cheetah-topology-v1` document into \p Spec. Fields absent
/// from the document keep the value \p Spec arrived with (so the caller's
/// defaults — e.g. the `--page-size` flag — survive a file that does not
/// mention them). The returned spec has passed NumaTopology::validateSpec.
/// \returns false with a descriptive \p Error on any parse or validation
/// failure.
bool parseTopologyText(const std::string &Text, NumaTopologySpec &Spec,
                       std::string &Error);

/// Reads \p Path and parses it with parseTopologyText. I/O failures are
/// reported through \p Error like parse failures.
bool loadTopologyFile(const std::string &Path, NumaTopologySpec &Spec,
                      std::string &Error);

} // namespace cheetah

#endif // CHEETAH_MEM_TOPOLOGYFILE_H
