//===- mem/MemoryAccess.h - Memory access events ----------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-access event vocabulary shared by the workload generators, the
/// multicore simulator, and the PMU layer. A workload thread is a coroutine
/// that yields `ThreadEvent`s: mostly loads/stores, occasionally pure compute
/// (to model instructions between memory operations, which matters for
/// instruction-based sampling periods).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_MEM_MEMORYACCESS_H
#define CHEETAH_MEM_MEMORYACCESS_H

#include <cstdint>

namespace cheetah {

/// Thread identifier within one profiled execution. Thread 0 is the main
/// thread.
using ThreadId = uint32_t;

/// Whether an access reads or writes memory.
enum class AccessKind : uint8_t { Read, Write };

/// One memory access: address + kind + size in bytes.
struct MemoryAccess {
  uint64_t Address = 0;
  AccessKind Kind = AccessKind::Read;
  uint8_t Size = WordBytes;

  static constexpr uint8_t WordBytes = 4;

  static MemoryAccess read(uint64_t Address, uint8_t Size = WordBytes) {
    return {Address, AccessKind::Read, Size};
  }
  static MemoryAccess write(uint64_t Address, uint8_t Size = WordBytes) {
    return {Address, AccessKind::Write, Size};
  }

  bool isWrite() const { return Kind == AccessKind::Write; }
};

/// What a workload coroutine yields on each step.
enum class ThreadEventKind : uint8_t {
  /// A memory load or store described by `Access`.
  Memory,
  /// `ComputeInstructions` non-memory instructions (advance clocks only).
  Compute,
};

/// One event in a simulated thread's instruction stream.
struct ThreadEvent {
  ThreadEventKind Kind = ThreadEventKind::Compute;
  MemoryAccess Access;
  uint32_t ComputeInstructions = 0;

  static ThreadEvent memory(MemoryAccess A) {
    ThreadEvent E;
    E.Kind = ThreadEventKind::Memory;
    E.Access = A;
    return E;
  }

  static ThreadEvent read(uint64_t Address, uint8_t Size = 4) {
    return memory(MemoryAccess::read(Address, Size));
  }

  static ThreadEvent write(uint64_t Address, uint8_t Size = 4) {
    return memory(MemoryAccess::write(Address, Size));
  }

  /// \p N instructions of pure compute (no memory traffic).
  static ThreadEvent compute(uint32_t N) {
    ThreadEvent E;
    E.Kind = ThreadEventKind::Compute;
    E.ComputeInstructions = N;
    return E;
  }

  bool isMemory() const { return Kind == ThreadEventKind::Memory; }
};

} // namespace cheetah

#endif // CHEETAH_MEM_MEMORYACCESS_H
