//===- mem/TopologyFile.cpp - Real-machine topology import ----------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mem/TopologyFile.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace cheetah;

namespace {

/// Reads a JSON number that must be a non-negative integer no larger than
/// \p Max. Kind and range surprises become errors, never asserts.
bool asBoundedUint(const JsonValue &Node, const char *What, uint64_t Max,
                   uint64_t &Out, std::string &Error) {
  if (Node.kind() != JsonValue::Kind::Number) {
    Error = formatString("%s is not a number", What);
    return false;
  }
  double Value = Node.asNumber();
  if (Value < 0 || Value != std::floor(Value)) {
    Error = formatString("%s must be a non-negative integer", What);
    return false;
  }
  if (Value > static_cast<double>(Max)) {
    Error = formatString("%s is out of range (max %llu)", What,
                         static_cast<unsigned long long>(Max));
    return false;
  }
  Out = static_cast<uint64_t>(Value);
  return true;
}

/// Derives the thread pinning map from per-node CPU lists: pairs of
/// (cpu, node) sorted by CPU id, thread t pinned to the node of the t-th
/// CPU — how a pinning script walks the machine's CPU list.
bool pinningFromCpus(const JsonValue &Cpus, uint32_t Nodes,
                     std::vector<NodeId> &Out, std::string &Error) {
  if (!Cpus.isArray()) {
    Error = "'cpus' is not an array";
    return false;
  }
  if (Cpus.size() != Nodes) {
    Error = formatString("'cpus' has %zu node lists, expected %u",
                         Cpus.size(), static_cast<unsigned>(Nodes));
    return false;
  }
  std::vector<std::pair<uint64_t, NodeId>> ByCpu;
  for (uint32_t Node = 0; Node < Cpus.size(); ++Node) {
    const JsonValue &List = Cpus.elements()[Node];
    if (!List.isArray()) {
      Error = formatString("'cpus'[%u] is not an array", Node);
      return false;
    }
    for (size_t I = 0; I < List.size(); ++I) {
      uint64_t Cpu = 0;
      std::string What = formatString("'cpus'[%u][%zu]", Node, I);
      if (!asBoundedUint(List.elements()[I], What.c_str(),
                         NumaTopology::MaxPinnedThreads - 1, Cpu, Error))
        return false;
      ByCpu.push_back({Cpu, Node});
    }
  }
  if (ByCpu.empty()) {
    Error = "'cpus' lists no CPUs";
    return false;
  }
  std::sort(ByCpu.begin(), ByCpu.end());
  for (size_t I = 1; I < ByCpu.size(); ++I)
    if (ByCpu[I].first == ByCpu[I - 1].first) {
      Error = formatString("CPU %llu appears in more than one node list",
                           static_cast<unsigned long long>(ByCpu[I].first));
      return false;
    }
  Out.clear();
  Out.reserve(ByCpu.size());
  for (const auto &[Cpu, Node] : ByCpu)
    Out.push_back(Node);
  return true;
}

} // namespace

bool cheetah::parseTopologyText(const std::string &Text,
                                NumaTopologySpec &Spec, std::string &Error) {
  JsonValue Document;
  if (!JsonValue::parse(Text, Document, Error)) {
    Error = "invalid JSON: " + Error;
    return false;
  }
  if (!Document.isObject()) {
    Error = "topology is not a JSON object";
    return false;
  }

  const JsonValue *Schema = Document.find("schema");
  if (!Schema || Schema->kind() != JsonValue::Kind::String) {
    Error = "field 'schema' missing or not a string";
    return false;
  }
  if (Schema->asString() != "cheetah-topology-v1") {
    Error = formatString(
        "unsupported schema '%s' (expected cheetah-topology-v1)",
        Schema->asString().c_str());
    return false;
  }

  const JsonValue *Nodes = Document.find("nodes");
  if (!Nodes) {
    Error = "field 'nodes' missing";
    return false;
  }
  uint64_t NodeCount = 0;
  if (!asBoundedUint(*Nodes, "'nodes'", NumaTopology::MaxNodes, NodeCount,
                     Error))
    return false;
  Spec.Nodes = static_cast<uint32_t>(NodeCount);

  if (const JsonValue *PageSize = Document.find("page_size")) {
    uint64_t Bytes = 0;
    if (!asBoundedUint(*PageSize, "'page_size'", 1ull << 30, Bytes, Error))
      return false;
    Spec.PageSize = Bytes;
  }

  Spec.Distances.clear();
  if (const JsonValue *Distances = Document.find("distances")) {
    if (!Distances->isArray()) {
      Error = "'distances' is not an array";
      return false;
    }
    for (size_t A = 0; A < Distances->size(); ++A) {
      const JsonValue &Row = Distances->elements()[A];
      if (!Row.isArray()) {
        Error = formatString("'distances'[%zu] is not an array", A);
        return false;
      }
      std::vector<uint32_t> Parsed;
      Parsed.reserve(Row.size());
      for (size_t B = 0; B < Row.size(); ++B) {
        uint64_t Value = 0;
        std::string What = formatString("'distances'[%zu][%zu]", A, B);
        if (!asBoundedUint(Row.elements()[B], What.c_str(),
                           NumaTopology::MaxDistance, Value, Error))
          return false;
        Parsed.push_back(static_cast<uint32_t>(Value));
      }
      Spec.Distances.push_back(std::move(Parsed));
    }
  }

  Spec.ThreadPinning.clear();
  if (const JsonValue *Pinning = Document.find("pinning")) {
    if (!Pinning->isArray()) {
      Error = "'pinning' is not an array";
      return false;
    }
    for (size_t T = 0; T < Pinning->size(); ++T) {
      uint64_t Node = 0;
      std::string What = formatString("'pinning'[%zu]", T);
      if (!asBoundedUint(Pinning->elements()[T], What.c_str(),
                         NumaTopology::MaxNodes - 1, Node, Error))
        return false;
      Spec.ThreadPinning.push_back(static_cast<NodeId>(Node));
    }
    if (Spec.ThreadPinning.size() > NumaTopology::MaxPinnedThreads) {
      Error = formatString("'pinning' has %zu entries (max %zu)",
                           Spec.ThreadPinning.size(),
                           NumaTopology::MaxPinnedThreads);
      return false;
    }
  } else if (const JsonValue *Cpus = Document.find("cpus")) {
    if (!pinningFromCpus(*Cpus, Spec.Nodes, Spec.ThreadPinning, Error))
      return false;
  }

  return NumaTopology::validateSpec(Spec, Error);
}

bool cheetah::loadTopologyFile(const std::string &Path,
                               NumaTopologySpec &Spec, std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = formatString("cannot open '%s' for reading", Path.c_str());
    return false;
  }
  std::string Text;
  char Buffer[1 << 14];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Read);
  bool Ok = !std::ferror(File);
  std::fclose(File);
  if (!Ok) {
    Error = formatString("failed reading '%s'", Path.c_str());
    return false;
  }
  if (!parseTopologyText(Text, Spec, Error)) {
    Error = formatString("%s: ", Path.c_str()) + Error;
    return false;
  }
  return true;
}
