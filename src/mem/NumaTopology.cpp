//===- mem/NumaTopology.cpp - Simulated NUMA topology ---------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mem/NumaTopology.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace cheetah;

bool NumaTopology::validateSpec(const NumaTopologySpec &Spec,
                                std::string &Error) {
  if (Spec.Nodes < 1 || Spec.Nodes > MaxNodes) {
    Error = formatString("node count must be in [1, %u] (got %u)", MaxNodes,
                         Spec.Nodes);
    return false;
  }
  if (Spec.PageSize < 256 ||
      (Spec.PageSize & (Spec.PageSize - 1)) != 0) {
    Error = formatString(
        "page size must be a power of two >= 256 (got %llu)",
        static_cast<unsigned long long>(Spec.PageSize));
    return false;
  }
  if (!Spec.Distances.empty()) {
    if (Spec.Distances.size() != Spec.Nodes) {
      Error = formatString("distance matrix has %zu rows, expected %u",
                           Spec.Distances.size(), Spec.Nodes);
      return false;
    }
    for (uint32_t A = 0; A < Spec.Nodes; ++A) {
      const std::vector<uint32_t> &Row = Spec.Distances[A];
      if (Row.size() != Spec.Nodes) {
        Error = formatString("distance row %u has %zu entries, expected %u",
                             A, Row.size(), Spec.Nodes);
        return false;
      }
      if (Row[A] != 0) {
        Error = formatString(
            "distance diagonal must be zero (distance[%u][%u] = %u)", A, A,
            Row[A]);
        return false;
      }
      for (uint32_t B = 0; B < Spec.Nodes; ++B) {
        if (A == B)
          continue;
        if (Row[B] < 1 || Row[B] > MaxDistance) {
          Error = formatString(
              "remote distance must be in [1, %u] (distance[%u][%u] = %u)",
              MaxDistance, A, B, Row[B]);
          return false;
        }
        if (Row[B] != Spec.Distances[B][A]) {
          Error = formatString(
              "distance matrix must be symmetric (distance[%u][%u] = %u, "
              "distance[%u][%u] = %u)",
              A, B, Row[B], B, A, Spec.Distances[B][A]);
          return false;
        }
      }
    }
  }
  if (!Spec.ThreadPinning.empty()) {
    if (Spec.ThreadPinning.size() > MaxPinnedThreads) {
      Error = formatString("thread pinning map has %zu entries (max %zu)",
                           Spec.ThreadPinning.size(), MaxPinnedThreads);
      return false;
    }
    for (size_t T = 0; T < Spec.ThreadPinning.size(); ++T) {
      if (Spec.ThreadPinning[T] >= Spec.Nodes) {
        Error = formatString(
            "pinning entry %zu targets node %u, but the machine has %u "
            "node(s)",
            T, Spec.ThreadPinning[T], Spec.Nodes);
        return false;
      }
    }
  }
  return true;
}

bool NumaTopology::fromSpec(const NumaTopologySpec &Spec, NumaTopology &Out,
                            std::string &Error) {
  if (!validateSpec(Spec, Error))
    return false;
  NumaTopology Result(Spec.Nodes, Spec.PageSize);
  if (!Spec.Distances.empty()) {
    uint32_t Min = MaxDistance;
    uint32_t Max = 1;
    for (uint32_t A = 0; A < Spec.Nodes; ++A)
      for (uint32_t B = 0; B < Spec.Nodes; ++B) {
        Result.Distances[A][B] = Spec.Distances[A][B];
        if (A != B) {
          Min = std::min(Min, Spec.Distances[A][B]);
          Max = std::max(Max, Spec.Distances[A][B]);
        }
      }
    if (Spec.Nodes > 1) {
      Result.MinRemote = Min;
      Result.MaxRemote = Max;
    }
  }
  Result.Pinning = Spec.ThreadPinning;
  Out = Result;
  return true;
}
