//===- mem/CacheGeometry.h - Cache line geometry ----------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line and word geometry. Cheetah tracks invalidations per cache line
/// and differentiates false/true sharing per 4-byte word (paper Section 2.4),
/// so both granularities live here. The line size is a runtime parameter
/// because one of the paper's findings (streamcluster) is precisely a bug in
/// an assumed-32-byte line size.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_MEM_CACHEGEOMETRY_H
#define CHEETAH_MEM_CACHEGEOMETRY_H

#include "support/Assert.h"

#include <cstdint>
#include <string>

namespace cheetah {

/// Byte width of the word granularity used for true/false-sharing
/// differentiation (paper Section 2.4: "word-based (four byte)").
inline constexpr uint64_t WordSize = 4;

/// Describes the cache-line geometry used for shadow-memory indexing.
class CacheGeometry {
public:
  /// \param LineSize cache line size in bytes; must be a power of two >= 8
  /// (asserting; flag/file-sourced values must go through validate()).
  explicit CacheGeometry(uint64_t LineSize = 64) : LineBytes(LineSize) {
    CHEETAH_ASSERT(LineSize >= 8 && (LineSize & (LineSize - 1)) == 0,
                   "cache line size must be a power of two >= 8");
    LineShift = 0;
    for (uint64_t S = LineSize; S > 1; S >>= 1)
      ++LineShift;
  }

  /// Fallible check for external (CLI/file) line sizes: reports the
  /// constraint through \p Error instead of asserting, so a bad flag value
  /// becomes a clean tool error rather than an abort — in release builds
  /// as much as debug ones.
  static bool validate(uint64_t LineSize, std::string &Error) {
    if (LineSize >= 8 && (LineSize & (LineSize - 1)) == 0)
      return true;
    Error = "cache line size must be a power of two >= 8 (got " +
            std::to_string(LineSize) + ")";
    return false;
  }

  /// Cache line size in bytes.
  uint64_t lineSize() const { return LineBytes; }

  /// Number of 4-byte words per line.
  uint64_t wordsPerLine() const { return LineBytes / WordSize; }

  /// log2(lineSize()); Cheetah's shadow memory uses bit shifting to map an
  /// address to its line index (paper Section 2.2).
  unsigned lineShift() const { return LineShift; }

  /// \returns the global line index of \p Address.
  uint64_t lineIndex(uint64_t Address) const { return Address >> LineShift; }

  /// \returns the first byte address of the line containing \p Address.
  uint64_t lineBase(uint64_t Address) const {
    return Address & ~(LineBytes - 1);
  }

  /// \returns the byte offset of \p Address within its line.
  uint64_t offsetInLine(uint64_t Address) const {
    return Address & (LineBytes - 1);
  }

  /// \returns the index of the 4-byte word within the line.
  uint64_t wordInLine(uint64_t Address) const {
    return offsetInLine(Address) / WordSize;
  }

  /// \returns true if [AddressA, AddressA+SizeA) and [AddressB, ...) touch a
  /// common cache line.
  bool sharesLine(uint64_t AddressA, uint64_t AddressB) const {
    return lineIndex(AddressA) == lineIndex(AddressB);
  }

private:
  uint64_t LineBytes;
  unsigned LineShift;
};

} // namespace cheetah

#endif // CHEETAH_MEM_CACHEGEOMETRY_H
