//===- core/assess/Assessor.h - Performance-impact prediction --*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's headline contribution (Section 3): predicting the speedup of
/// fixing a false-sharing instance without fixing it. Three steps:
///
///   1. Object level (3.1): replace the sampled cycles of accesses to the
///      object O with the average no-false-sharing latency, approximated by
///      the average latency observed in serial phases:
///        PredCycles_O = AverCycles_nofs * Accesses_O            (EQ.1)
///   2. Thread level (3.2): propagate into each related thread:
///        PredCycles_t = Cycles_t - Cycles_O(t) + PredCycles_O(t) (EQ.2)
///        PredRT_t     = (PredCycles_t / Cycles_t) * RT_t         (EQ.3)
///      assuming execution time proportional to sampled access cycles.
///   3. Application level (3.3): for fork-join programs, recompute each
///      parallel phase's length as the longest member thread's predicted
///      runtime, sum phases, and report
///        PerfImprove = RT_App / PredRT_App                       (EQ.4)
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_ASSESS_ASSESSOR_H
#define CHEETAH_CORE_ASSESS_ASSESSOR_H

#include "core/detect/CacheLineInfo.h"
#include "mem/NumaTopology.h"
#include "runtime/PhaseTracker.h"
#include "runtime/ThreadRegistry.h"
#include "support/Statistics.h"

#include <cstdint>
#include <vector>

namespace cheetah {
namespace core {

/// Per-object access evidence aggregated over the object's cache lines —
/// or, for page-granularity assessment, over one page's samples.
struct ObjectAccessProfile {
  uint64_t SampledAccesses = 0;
  uint64_t SampledWrites = 0;
  uint64_t SampledCycles = 0;
  uint64_t Invalidations = 0;
  /// Remote (non-home-node) sampled accesses and the cycles they
  /// accumulated. Page-granularity only; zero for line-level objects.
  uint64_t RemoteAccesses = 0;
  uint64_t RemoteCycles = 0;
  /// Remote traffic bucketed by crossed node-pair distance (sorted by
  /// distance). Populated only for distance-asymmetric topologies: it
  /// turns the page assessment's removable-cycle estimate distance-aware
  /// (far buckets carry more removable excess per access), while uniform
  /// topologies keep the pre-distance arithmetic bit for bit.
  std::vector<RemoteDistanceStats> RemoteByDistance;
  /// Per-thread accesses/cycles on this object (sorted by thread id).
  std::vector<ThreadLineStats> PerThread;

  const ThreadLineStats *threadStats(ThreadId Tid) const;

  /// Sampled accesses/cycles issued from the page's home node.
  uint64_t localAccesses() const { return SampledAccesses - RemoteAccesses; }
  uint64_t localCycles() const { return SampledCycles - RemoteCycles; }
};

/// Assessment tunables.
struct AssessorConfig {
  /// Fallback AverCycles_nofs when serial phases produced too few samples
  /// ("a default value learned from experience").
  double DefaultSerialLatency = 6.0;
  /// Minimum serial-phase samples to trust the measured average.
  uint64_t MinSerialSamples = 32;
  /// Minimum local (home-node) samples on one page before its own measured
  /// local average is trusted as the page EQ.1 baseline; below this the
  /// run-wide local average, then the serial average, then the default is
  /// used (in that order).
  uint64_t MinLocalPageSamples = 16;
};

/// EQ.2/EQ.3 outcome for one thread.
struct ThreadPrediction {
  ThreadId Tid = 0;
  uint64_t RealRuntime = 0;       // RT_t
  double PredictedRuntime = 0.0;  // PredRT_t
  uint64_t SampledCycles = 0;     // Cycles_t
  double PredictedCycles = 0.0;   // PredCycles_t
  uint64_t CyclesOnObject = 0;    // Cycles_O restricted to t
  uint64_t AccessesOnObject = 0;  // Accesses_O restricted to t
};

/// Full assessment of one false-sharing instance.
struct Assessment {
  /// AverCycles_nofs used in EQ.1.
  double AverageNoFsLatency = 0.0;
  /// True when the fallback default was used instead of measured serial
  /// latency.
  bool UsedDefaultLatency = false;
  /// RT_App (cycles).
  uint64_t RealAppRuntime = 0;
  /// PredRT_App (cycles).
  double PredictedAppRuntime = 0.0;
  /// EQ.4: RT_App / PredRT_App; > 1 means fixing helps.
  double ImprovementFactor = 1.0;
  /// Whole-program recomposition only happens for fork-join programs.
  bool ForkJoinModel = true;
  std::vector<ThreadPrediction> Threads;

  /// Improvement as the percentage the paper prints (e.g. 576.17%).
  double improvementPercent() const { return ImprovementFactor * 100.0; }
};

/// Computes assessments from the runtime's collected state.
class Assessor {
public:
  Assessor(const runtime::ThreadRegistry &Registry,
           const runtime::PhaseTracker &Phases, const AssessorConfig &Config)
      : Registry(Registry), Phases(Phases), Config(Config) {}

  /// Installs the latency statistics of serial-phase samples (no false
  /// sharing there, so their mean approximates AverCycles_nofs).
  void setSerialLatencyStats(const OnlineStats &Stats) { SerialStats = Stats; }

  /// Installs the run-wide local (home-node) page sample totals: the
  /// fallback EQ.1 baseline for pages whose own local population is too
  /// small (e.g. a 100%-remote first-touch victim page).
  void setLocalLatencyTotals(uint64_t Accesses, uint64_t Cycles) {
    RunLocalAccesses = Accesses;
    RunLocalCycles = Cycles;
  }

  /// Assesses fixing the object described by \p Profile.
  /// \param AppRuntime measured whole-program runtime RT_App.
  Assessment assess(const ObjectAccessProfile &Profile,
                    uint64_t AppRuntime) const;

  /// Assesses fixing the *placement/sharing* of one page described by
  /// \p Profile (EQ.1–EQ.4 at page granularity): the baseline is the
  /// no-remote-access local latency from averageLocalLatency, and the
  /// per-thread object prediction is clamped to the measured cycles — a
  /// placement fix can only remove the remote-DRAM surcharge, never make
  /// an access slower than observed. When \p Profile carries a
  /// remoteByDistance breakdown (distance-asymmetric topologies), the
  /// total removed cycles are additionally capped by the distance-weighted
  /// removable excess: per bucket, what the remote traffic cost beyond the
  /// local baseline — so only cycles the interconnect actually charged
  /// (more per access at far distances) count as removable. The resulting
  /// ImprovementFactor is therefore >= 1, and == 1 exactly when nothing is
  /// predicted removable.
  Assessment assessPage(const ObjectAccessProfile &Profile,
                        uint64_t AppRuntime) const;

  /// The AverCycles_nofs the next assessment would use.
  double averageNoFsLatency(bool *UsedDefault = nullptr) const;

  /// The no-remote-access AverCycles baseline EQ.1 uses for a page: the
  /// page's own local-access mean when it has enough local samples, else
  /// the run-wide local mean, else the serial-phase chain (serial mean,
  /// then the config default — \p UsedDefault set only in that last case).
  double averageLocalLatency(const ObjectAccessProfile &Profile,
                             bool *UsedDefault = nullptr) const;

private:
  /// Shared EQ.2–EQ.4 machinery: \p AverCycles is the EQ.1 baseline;
  /// \p ClampToMeasured caps each thread's predicted object cycles at its
  /// measured object cycles (the page-assessment contract).
  Assessment assessWithLatency(const ObjectAccessProfile &Profile,
                               uint64_t AppRuntime, double AverCycles,
                               bool UsedDefault, bool ClampToMeasured) const;

  const runtime::ThreadRegistry &Registry;
  const runtime::PhaseTracker &Phases;
  AssessorConfig Config;
  OnlineStats SerialStats;
  uint64_t RunLocalAccesses = 0;
  uint64_t RunLocalCycles = 0;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_ASSESS_ASSESSOR_H
