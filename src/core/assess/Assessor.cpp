//===- core/assess/Assessor.cpp - Performance-impact prediction ----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/assess/Assessor.h"

#include "support/Assert.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

const ThreadLineStats *
ObjectAccessProfile::threadStats(ThreadId Tid) const {
  auto It = std::lower_bound(PerThread.begin(), PerThread.end(), Tid,
                             [](const ThreadLineStats &S, ThreadId T) {
                               return S.Tid < T;
                             });
  if (It != PerThread.end() && It->Tid == Tid)
    return &*It;
  return nullptr;
}

double Assessor::averageNoFsLatency(bool *UsedDefault) const {
  if (SerialStats.count() >= Config.MinSerialSamples) {
    if (UsedDefault)
      *UsedDefault = false;
    return std::max(1.0, SerialStats.mean());
  }
  if (UsedDefault)
    *UsedDefault = true;
  return Config.DefaultSerialLatency;
}

double Assessor::averageLocalLatency(const ObjectAccessProfile &Profile,
                                     bool *UsedDefault) const {
  // The page's own local accesses are the most faithful no-remote
  // baseline: same lines, same threads, no interconnect surcharge.
  if (Profile.localAccesses() >= Config.MinLocalPageSamples) {
    if (UsedDefault)
      *UsedDefault = false;
    return std::max(1.0, static_cast<double>(Profile.localCycles()) /
                             static_cast<double>(Profile.localAccesses()));
  }
  // A fully-remote page (the first-touch pathology) has no local samples
  // of its own; other pages of the same run do.
  if (RunLocalAccesses >= Config.MinLocalPageSamples) {
    if (UsedDefault)
      *UsedDefault = false;
    return std::max(1.0, static_cast<double>(RunLocalCycles) /
                             static_cast<double>(RunLocalAccesses));
  }
  return averageNoFsLatency(UsedDefault);
}

Assessment Assessor::assess(const ObjectAccessProfile &Profile,
                            uint64_t AppRuntime) const {
  bool UsedDefault = false;
  double Aver = averageNoFsLatency(&UsedDefault);
  return assessWithLatency(Profile, AppRuntime, Aver, UsedDefault,
                           /*ClampToMeasured=*/false);
}

Assessment Assessor::assessPage(const ObjectAccessProfile &Profile,
                                uint64_t AppRuntime) const {
  bool UsedDefault = false;
  double Aver = averageLocalLatency(Profile, &UsedDefault);
  return assessWithLatency(Profile, AppRuntime, Aver, UsedDefault,
                           /*ClampToMeasured=*/true);
}

Assessment Assessor::assessWithLatency(const ObjectAccessProfile &Profile,
                                       uint64_t AppRuntime, double AverCycles,
                                       bool UsedDefault,
                                       bool ClampToMeasured) const {
  Assessment Result;
  Result.RealAppRuntime = AppRuntime;
  Result.ForkJoinModel = Phases.isForkJoin();
  Result.AverageNoFsLatency = AverCycles;
  Result.UsedDefaultLatency = UsedDefault;

  // --- Step 2 (EQ.2, EQ.3): predict every thread's runtime after the fix.
  // Pass 1 computes each thread's object prediction (clamped for pages)
  // and how many object cycles the fix would remove from it.
  std::vector<double> ObjectPredictions;
  double TotalRemoval = 0.0;
  for (const runtime::ThreadProfile &Thread : Registry.threads()) {
    if (!Thread.Registered)
      continue;
    ThreadPrediction Prediction;
    Prediction.Tid = Thread.Tid;
    Prediction.RealRuntime = Thread.runtime();
    Prediction.SampledCycles = Thread.SampledCycles;

    const ThreadLineStats *OnObject = Profile.threadStats(Thread.Tid);
    if (OnObject) {
      Prediction.CyclesOnObject = OnObject->Cycles;
      Prediction.AccessesOnObject = OnObject->Accesses;
    }

    // EQ.1 restricted to thread t: PredCycles_O(t) = Aver * Accesses_O(t).
    double PredCyclesO = Result.AverageNoFsLatency *
                         static_cast<double>(Prediction.AccessesOnObject);
    // Page assessment: the fix removes surcharges, it cannot make the
    // thread's accesses slower than it measured them.
    if (ClampToMeasured)
      PredCyclesO = std::min(
          PredCyclesO, static_cast<double>(Prediction.CyclesOnObject));
    TotalRemoval +=
        std::max(0.0, static_cast<double>(Prediction.CyclesOnObject) -
                          PredCyclesO);
    ObjectPredictions.push_back(PredCyclesO);
    Result.Threads.push_back(Prediction);
  }

  // Distance-weighted removal cap (page assessment with a remoteByDistance
  // breakdown only): what a placement fix can remove is the excess the
  // remote traffic cost beyond the local baseline, bucket by bucket — a
  // far-distance bucket carries proportionally more removable excess per
  // access than a near one. When the per-thread removals claim more than
  // that, each thread's removal scales down proportionally. Uniform
  // topologies carry no breakdown and keep the pre-distance arithmetic
  // exactly.
  double RemovalScale = 1.0;
  if (ClampToMeasured && !Profile.RemoteByDistance.empty() &&
      TotalRemoval > 0.0) {
    double Removable = 0.0;
    for (const RemoteDistanceStats &Bucket : Profile.RemoteByDistance)
      Removable += std::max(
          0.0, static_cast<double>(Bucket.Cycles) -
                   Result.AverageNoFsLatency *
                       static_cast<double>(Bucket.Accesses));
    if (Removable < TotalRemoval)
      RemovalScale = Removable / TotalRemoval;
  }

  // Pass 2: compose EQ.2/EQ.3 from the (possibly capped) removals.
  for (size_t I = 0; I < Result.Threads.size(); ++I) {
    ThreadPrediction &Prediction = Result.Threads[I];
    if (Prediction.SampledCycles == 0) {
      // No samples: no evidence of memory time, predict no change.
      Prediction.PredictedCycles = 0.0;
      Prediction.PredictedRuntime = static_cast<double>(Prediction.RealRuntime);
      continue;
    }
    double PredCyclesO = ObjectPredictions[I];
    if (RemovalScale < 1.0) {
      double Removal = std::max(
          0.0, static_cast<double>(Prediction.CyclesOnObject) - PredCyclesO);
      PredCyclesO = static_cast<double>(Prediction.CyclesOnObject) -
                    Removal * RemovalScale;
    }
    // EQ.2. Cycles_O(t) <= Cycles_t by construction, but clamp anyway so
    // a pathological profile cannot predict negative cycles.
    double PredCycles = static_cast<double>(Prediction.SampledCycles) -
                        static_cast<double>(Prediction.CyclesOnObject) +
                        PredCyclesO;
    PredCycles = std::max(PredCycles, PredCyclesO);
    Prediction.PredictedCycles = PredCycles;
    // EQ.3: runtime scales with sampled access cycles.
    Prediction.PredictedRuntime =
        PredCycles / static_cast<double>(Prediction.SampledCycles) *
        static_cast<double>(Prediction.RealRuntime);
  }

  auto PredictionFor = [&](ThreadId Tid) -> const ThreadPrediction * {
    for (const ThreadPrediction &P : Result.Threads)
      if (P.Tid == Tid)
        return &P;
    return nullptr;
  };

  // --- Step 3 (EQ.4): recompose the application from its phases.
  if (Result.ForkJoinModel && !Phases.phases().empty()) {
    double Predicted = 0.0;
    for (const runtime::ExecutionPhase &Phase : Phases.phases()) {
      if (!Phase.Parallel) {
        // Serial phases have no false sharing by definition; unchanged.
        Predicted += static_cast<double>(Phase.span());
        continue;
      }
      // "The length of each phase is decided by the thread with the longest
      // execution time." The gap between the phase span and the longest
      // thread (spawn/join bookkeeping) is preserved.
      uint64_t MaxReal = 0;
      double MaxPredicted = 0.0;
      for (ThreadId Member : Phase.Members) {
        const ThreadPrediction *P = PredictionFor(Member);
        if (!P)
          continue;
        MaxReal = std::max(MaxReal, P->RealRuntime);
        MaxPredicted = std::max(MaxPredicted, P->PredictedRuntime);
      }
      double Overhead =
          static_cast<double>(Phase.span()) - static_cast<double>(MaxReal);
      Predicted += std::max(0.0, Overhead) + MaxPredicted;
    }
    Result.PredictedAppRuntime = Predicted;
  } else {
    // Outside the fork-join model the paper offers no composition rule; we
    // fall back to scaling the program by the aggregate thread prediction,
    // flagged via ForkJoinModel=false.
    double RealSum = 0.0, PredSum = 0.0;
    for (const ThreadPrediction &P : Result.Threads) {
      RealSum += static_cast<double>(P.RealRuntime);
      PredSum += P.PredictedRuntime;
    }
    double Scale = RealSum > 0.0 ? PredSum / RealSum : 1.0;
    Result.PredictedAppRuntime = static_cast<double>(AppRuntime) * Scale;
  }

  if (Result.PredictedAppRuntime > 0.0)
    Result.ImprovementFactor =
        static_cast<double>(AppRuntime) / Result.PredictedAppRuntime;
  return Result;
}
