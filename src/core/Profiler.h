//===- core/Profiler.h - The Cheetah profiler facade ------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Cheetah runtime assembled (Figure 2): the FS detection module over
/// shadow memory, the FS assessment module over the fork-join phase model,
/// and report generation. Data collection is *not* owned here: the
/// profiler is the consumer end of the pmu::SampleSource seam
/// (a pmu::SampleSink), so any backend — the simulated PMU, a recorded
/// trace, real perf_event — delivers thread lifecycle events and sample
/// batches through one interface and the analysis side cannot tell them
/// apart. Backend construction and wiring live in driver/ProfileSession.
///
/// Typical use:
/// \code
///   core::ProfilerConfig Config;
///   core::Profiler Profiler(Config);
///   // ... allocate workload objects from Profiler.heap()/globals() ...
///   Source->setSink(&Profiler);    // any pmu::SampleSource backend
///   Source->start();
///   // ... backend delivers lifecycle events and sample batches ...
///   Source->stop();
///   core::ProfileResult Result = Profiler.finish(Run);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_PROFILER_H
#define CHEETAH_CORE_PROFILER_H

#include "core/assess/Assessor.h"
#include "core/detect/Detector.h"
#include "core/detect/PageTable.h"
#include "core/detect/SharingClassifier.h"
#include "core/report/PageReportBuilder.h"
#include "core/report/Report.h"
#include "core/report/ReportBuilder.h"
#include "core/report/ReportSink.h"
#include "mem/NumaTopology.h"
#include "pmu/PmuConfig.h"
#include "pmu/Sample.h"
#include "pmu/SampleSource.h"
#include "runtime/GlobalRegistry.h"
#include "runtime/HeapAllocator.h"
#include "runtime/PhaseTracker.h"
#include "runtime/ThreadRegistry.h"
#include "sim/Simulator.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace cheetah {
namespace core {

/// All profiler tunables in one place.
struct ProfilerConfig {
  CacheGeometry Geometry{64};
  pmu::PmuConfig Pmu;
  DetectorConfig Detect;
  ClassifierConfig Classify;
  AssessorConfig Assess;
  /// Simulated NUMA machine (node count, page size, thread affinity). Only
  /// consulted when Detect.TrackPages is on; the default single-node
  /// topology keeps all line-granularity behavior untouched.
  NumaTopology Topology;

  /// Simulated heap arena (the paper's pre-allocated mmap block). The base
  /// mirrors the 0x40000000-ish addresses in Figure 5.
  uint64_t HeapArenaBase = 0x4000'0000;
  uint64_t HeapArenaSize = 64ull << 20;
  /// Simulated global data segment.
  uint64_t GlobalSegmentBase = 0x1000'0000;
  uint64_t GlobalSegmentSize = 16ull << 20;

  /// Report gating thresholds; the defaults live on ReportGate itself so
  /// the profiler and direct ReportBuilder users can never diverge.
  ReportGate Report;
  /// Page-finding gate, same convention.
  PageReportGate PageReport;
};

/// Output of one profiled execution.
struct ProfileResult {
  /// Significant false-sharing instances, highest predicted improvement
  /// first. This is what Cheetah prints.
  std::vector<FalseSharingReport> Reports;
  /// Every object with detailed tracking (including true sharing and
  /// insignificant instances) for tests and ablations.
  std::vector<FalseSharingReport> AllInstances;

  /// Significant page-granularity (NUMA) findings, worst first; empty
  /// unless page tracking ran.
  std::vector<PageSharingReport> PageReports;
  /// Every tracked page, same order.
  std::vector<PageSharingReport> AllPageInstances;

  DetectorStats Detection;
  /// One entry per active grain stage ("line", "page", ...), detection
  /// counters from the detector plus Tracked/Significant filled from the
  /// built reports — what generic banners and end-of-run stats enumerate.
  std::vector<GrainStageSummary> Stages;
  uint64_t SamplesDelivered = 0;
  uint64_t SerialSamples = 0;
  double SerialAverageLatency = 0.0;
  uint64_t AppRuntime = 0;
  bool ForkJoinVerified = true;

  /// \returns the report whose callsite or global name contains \p Needle,
  /// or nullptr (search over significant reports).
  const FalseSharingReport *findReport(const std::string &Needle) const;
};

/// The assembled Cheetah profiler: the sink every sampling backend drains
/// into.
class Profiler : public pmu::SampleSink {
public:
  explicit Profiler(const ProfilerConfig &Config);

  /// The custom heap: workloads allocate their objects here so reports can
  /// name allocation sites.
  runtime::HeapAllocator &heap() { return Heap; }

  /// The global-variable registry (simulated .data segment).
  runtime::GlobalRegistry &globals() { return Globals; }

  /// Interns an allocation callsite for use with heap().allocate().
  runtime::CallsiteId internCallsite(const std::string &File, unsigned Line);
  runtime::CallsiteId internCallsite(runtime::Callsite Site);

  /// Finalizes detection + assessment after the simulation completed.
  /// When \p Sink is non-null, findings stream through it one object at a
  /// time — highest predicted improvement first, every tracked instance
  /// with its significance flag — followed by endRun() with the run
  /// stats. beginRun() is the caller's to invoke beforehand: run identity
  /// (workload name, flags) lives outside the profiler.
  ProfileResult finish(const sim::SimulationResult &Run,
                       ReportSink *Sink = nullptr);

  /// Continuous-session epoch boundary: quiesce, build and (optionally)
  /// stream a complete report over everything currently live — identical
  /// in shape to a finish() report — then enforce the shadow byte budgets,
  /// evicting cold grains and folding their counters into the per-stage
  /// residue so the next epoch starts under budget. The caller must
  /// guarantee no ingestion is in flight (same fence finish() relies on:
  /// every sampled thread joined or detached). Unlike finish(), the
  /// profiler stays live: call it once per epoch, then finish() at
  /// teardown.
  ProfileResult snapshotEpoch(uint64_t AppRuntime, ReportSink *Sink = nullptr);

  /// Run-level stats in sink form (valid after ingestion quiesces).
  ReportRunStats runStats(uint64_t AppRuntime) const;

  /// Feeds one sample directly (used by tests and ablations).
  /// Equivalent to ingestBatch(&Sample, 1).
  void handleSample(const pmu::Sample &Sample);

  // pmu::SampleSink implementation — the only way samples and thread
  // lifecycle reach the profiler, whichever backend produces them.

  /// Thread \p Tid began at \p Now; the main thread (IsMain) opens the
  /// program, children open/extend the parallel phase.
  void threadStarted(ThreadId Tid, bool IsMain, uint64_t Now) override;

  /// Thread \p Tid finished at \p EndCycle.
  void threadFinished(ThreadId Tid, bool IsMain, uint64_t EndCycle) override;

  /// Batched sample ingestion, safe to call from many application threads
  /// concurrently: per-thread registry and serial-latency bookkeeping is
  /// accumulated per batch and applied under one short lock, while the
  /// detection hot path (atomic write counters + striped line locks) runs
  /// without any profiler-wide serialization. This is what the per-thread
  /// sample buffers of the interpose runtime drain into; synchronous
  /// backends deliver batches of one.
  void ingestBatch(const pmu::Sample *Samples, size_t Count) override;

  /// Current phase state (exposed for tests).
  const runtime::PhaseTracker &phases() const { return Phases; }
  const runtime::ThreadRegistry &threadRegistry() const { return Threads; }
  const ShadowMemory &shadow() const { return Shadow; }
  const Detector &detector() const { return Detect; }
  /// The page table (nullptr when Detect.TrackPages is off).
  const PageTable *pages() const { return Pages.get(); }

private:
  /// Shared body of finish()/snapshotEpoch(): assess, build, and stream
  /// the report over the quiesced tables. Caller quiesces first.
  ProfileResult buildReport(uint64_t AppRuntime, ReportSink *Sink);

  ProfilerConfig Config;
  runtime::HeapAllocator Heap;
  runtime::GlobalRegistry Globals;
  runtime::CallsiteTable Callsites;
  runtime::ThreadRegistry Threads;
  runtime::PhaseTracker Phases;
  ShadowMemory Shadow;
  /// Page-granularity metadata, allocated only when page tracking is on.
  std::unique_ptr<PageTable> Pages;
  Detector Detect;
  SharingClassifier Classifier;
  /// Guards Threads/Phases/SerialLatency bookkeeping during concurrent
  /// ingestion (the detection path is internally thread-safe and does not
  /// take it).
  std::mutex IngestMutex;
  OnlineStats SerialLatency;
  uint64_t SerialSampleCount = 0;
  /// Samples accepted through ingestBatch — the profiler's own count, so
  /// run stats never depend on which backend produced the stream.
  std::atomic<uint64_t> SamplesIngested{0};
  bool MainSeen = false;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_PROFILER_H
