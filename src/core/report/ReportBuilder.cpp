//===- core/report/ReportBuilder.cpp - Incremental report builder ---------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/report/ReportBuilder.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

/// Aggregation bucket: one reportable object (heap object or global) plus
/// everything observed on its cache lines.
struct ReportBuilder::ObjectAggregate {
  ReportedObject Object;
  ObjectAccessProfile Profile;
  uint32_t Lines = 0;
  uint64_t SharedWordAccesses = 0;
  uint64_t TotalWordAccesses = 0;
  uint32_t FalseLines = 0, TrueLines = 0, MixedLines = 0, SharedLines = 0;
  std::vector<WordReportEntry> Words;
  uint32_t MaxThreadsOnLine = 0;
};

ReportBuilder::ReportBuilder(const runtime::HeapAllocator &Heap,
                             const runtime::GlobalRegistry &Globals,
                             const runtime::CallsiteTable &Callsites,
                             const SharingClassifier &Classifier,
                             const CacheGeometry &Geometry,
                             const ReportGate &Gate)
    : Heap(Heap), Globals(Globals), Callsites(Callsites),
      Classifier(Classifier), Geometry(Geometry), Gate(Gate) {}

ReportBuilder::~ReportBuilder() = default;

ReportBuilder::ObjectAggregate &ReportBuilder::aggregateFor(uint64_t LineBase) {
  // Key: the object start address packed with a 2-bit tag in the top bits —
  // heap object start (tag 0), global start (tag 1), or raw line base
  // (tag 2) for unattributed heap-range lines. Addresses are user-space
  // (< 2^48), so the tag can never collide with address bits.
  auto PackKey = [](int Tag, uint64_t Start) {
    return (static_cast<uint64_t>(Tag) << 62) | Start;
  };

  if (const runtime::HeapObject *Object = Heap.objectAt(LineBase)) {
    ObjectAggregate &Aggregate = Aggregates[PackKey(0, Object->Start)];
    if (Aggregate.Lines == 0) {
      Aggregate.Object.IsHeap = true;
      Aggregate.Object.Start = Object->Start;
      Aggregate.Object.Size = Object->Size;
      Aggregate.Object.RequestedSize = Object->RequestedSize;
      Aggregate.Object.AllocatedBy = Object->Owner;
      Aggregate.Object.CallsiteFrames = Callsites.get(Object->Site).Frames;
    }
    return Aggregate;
  }
  if (const runtime::GlobalVariable *Var = Globals.globalAt(LineBase)) {
    ObjectAggregate &Aggregate = Aggregates[PackKey(1, Var->Start)];
    if (Aggregate.Lines == 0) {
      Aggregate.Object.IsHeap = false;
      Aggregate.Object.GlobalName = Var->Name;
      Aggregate.Object.Start = Var->Start;
      Aggregate.Object.Size = Var->Size;
    }
    return Aggregate;
  }
  // Line inside the arena but before any object (allocator metadata or a
  // freed region): report it as an anonymous range.
  ObjectAggregate &Aggregate = Aggregates[PackKey(2, LineBase)];
  if (Aggregate.Lines == 0) {
    Aggregate.Object.IsHeap = Heap.covers(LineBase);
    Aggregate.Object.Start = LineBase;
    Aggregate.Object.Size = Geometry.lineSize();
  }
  return Aggregate;
}

void ReportBuilder::addLine(const GrainSnapshot &Line) {
  if (Line.Accesses == 0)
    return;
  ObjectAggregate &Aggregate = aggregateFor(Line.Base);

  // The snapshot's one consistent view of each lock-free structure serves
  // every use below: buckets feed classification and the per-word entries,
  // threads feed the per-thread merge and the classifier's distinct-thread
  // count.
  const std::vector<WordStats> &Words = Line.Buckets;
  const std::vector<ThreadLineStats> &LineThreads = Line.Threads;

  ++Aggregate.Lines;
  Aggregate.Profile.SampledAccesses += Line.Accesses;
  Aggregate.Profile.SampledWrites += Line.Writes;
  Aggregate.Profile.SampledCycles += Line.Cycles;
  Aggregate.Profile.Invalidations += Line.Invalidations;

  for (const ThreadLineStats &Stats : LineThreads) {
    auto &PerThread = Aggregate.Profile.PerThread;
    auto It = std::lower_bound(PerThread.begin(), PerThread.end(), Stats.Tid,
                               [](const ThreadLineStats &S, ThreadId T) {
                                 return S.Tid < T;
                               });
    if (It != PerThread.end() && It->Tid == Stats.Tid) {
      It->Accesses += Stats.Accesses;
      It->Cycles += Stats.Cycles;
    } else {
      PerThread.insert(It, Stats);
    }
  }

  LineClassification Verdict =
      Classifier.classify(Words, static_cast<uint32_t>(LineThreads.size()));
  Aggregate.SharedWordAccesses += Verdict.SharedWordAccesses;
  Aggregate.TotalWordAccesses +=
      Verdict.SharedWordAccesses + Verdict.PrivateWordAccesses;
  Aggregate.MaxThreadsOnLine =
      std::max(Aggregate.MaxThreadsOnLine, Verdict.Threads);
  switch (Verdict.Kind) {
  case SharingKind::FalseSharing:
    ++Aggregate.FalseLines;
    ++Aggregate.SharedLines;
    break;
  case SharingKind::TrueSharing:
    ++Aggregate.TrueLines;
    ++Aggregate.SharedLines;
    break;
  case SharingKind::Mixed:
    ++Aggregate.MixedLines;
    ++Aggregate.SharedLines;
    break;
  case SharingKind::NotShared:
    break;
  }

  // Per-word entries, offsets relative to the object.
  for (size_t W = 0; W < Words.size(); ++W) {
    if (Words[W].accesses() == 0)
      continue;
    WordReportEntry Entry;
    uint64_t WordAddress = Line.Base + W * WordSize;
    Entry.Offset = WordAddress >= Aggregate.Object.Start
                       ? WordAddress - Aggregate.Object.Start
                       : 0;
    Entry.Reads = Words[W].Reads;
    Entry.Writes = Words[W].Writes;
    Entry.Cycles = Words[W].Cycles;
    Entry.FirstThread = Words[W].FirstThread;
    Entry.MultiThread = Words[W].MultiThread;
    Aggregate.Words.push_back(Entry);
  }
}

FalseSharingReport
ReportBuilder::buildReport(const ObjectAggregate &Aggregate,
                           const Assessor &Assess, uint64_t AppRuntime) const {
  FalseSharingReport Report;
  Report.Object = Aggregate.Object;
  Report.LinesTracked = Aggregate.Lines;
  Report.SampledAccesses = Aggregate.Profile.SampledAccesses;
  Report.SampledWrites = Aggregate.Profile.SampledWrites;
  Report.Invalidations = Aggregate.Profile.Invalidations;
  Report.LatencyCycles = Aggregate.Profile.SampledCycles;
  Report.ThreadsObserved =
      static_cast<uint32_t>(Aggregate.Profile.PerThread.size());
  Report.SharedWordFraction =
      Aggregate.TotalWordAccesses
          ? static_cast<double>(Aggregate.SharedWordAccesses) /
                static_cast<double>(Aggregate.TotalWordAccesses)
          : 0.0;

  // Object-level sharing verdict from the per-line verdicts.
  if (Aggregate.SharedLines == 0)
    Report.Kind = SharingKind::NotShared;
  else if (Aggregate.FalseLines > 0 && Aggregate.TrueLines == 0 &&
           Aggregate.MixedLines == 0)
    Report.Kind = SharingKind::FalseSharing;
  else if (Aggregate.TrueLines > 0 && Aggregate.FalseLines == 0 &&
           Aggregate.MixedLines == 0)
    Report.Kind = SharingKind::TrueSharing;
  else
    Report.Kind = SharingKind::Mixed;

  Report.Impact = Assess.assess(Aggregate.Profile, AppRuntime);

  // Hottest words first for the padding-guidance table.
  Report.Words = Aggregate.Words;
  std::sort(Report.Words.begin(), Report.Words.end(),
            [](const WordReportEntry &A, const WordReportEntry &B) {
              return A.Reads + A.Writes > B.Reads + B.Writes;
            });
  return Report;
}

ReportBuilder::Output ReportBuilder::finalize(const Assessor &Assess,
                                              uint64_t AppRuntime,
                                              ReportSink *Sink) {
  std::vector<std::pair<FalseSharingReport, bool>> Instances;
  Instances.reserve(Aggregates.size());
  for (const auto &[Key, Aggregate] : Aggregates) {
    FalseSharingReport Report = buildReport(Aggregate, Assess, AppRuntime);
    bool Significant =
        (Report.Kind == SharingKind::FalseSharing ||
         (Gate.ReportMixedSharing && Report.Kind == SharingKind::Mixed)) &&
        Report.Invalidations >= Gate.MinInvalidations &&
        Report.Impact.ImprovementFactor >= Gate.MinImprovementFactor;
    Instances.emplace_back(std::move(Report), Significant);
  }

  std::sort(Instances.begin(), Instances.end(),
            [](const auto &A, const auto &B) {
              if (A.first.Impact.ImprovementFactor !=
                  B.first.Impact.ImprovementFactor)
                return A.first.Impact.ImprovementFactor >
                       B.first.Impact.ImprovementFactor;
              return A.first.Object.Start < B.first.Object.Start;
            });

  Output Result;
  Result.AllInstances.reserve(Instances.size());
  for (auto &[Report, Significant] : Instances) {
    if (Sink)
      Sink->finding(Report, Significant);
    if (Significant)
      Result.Reports.push_back(Report);
    Result.AllInstances.push_back(std::move(Report));
  }
  return Result;
}
