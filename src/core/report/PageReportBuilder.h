//===- core/report/PageReportBuilder.h - Page finding builder ---*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds per-page NUMA sharing findings from the detection core's common
/// finding source (GrainSnapshot + PageNumaEvidence), the page-granularity
/// mirror of ReportBuilder: pages stream in one at a time as they quiesce
/// (addPage), finalize() assesses each with the
/// EQ.1–EQ.4 page machinery (no-remote-access AverCycles baseline),
/// classifies it with the unchanged SharingClassifier (nodes over lines
/// instead of threads over words), attributes the overlapping heap/global
/// objects, applies the page gate, sorts highest predicted improvement
/// first, and streams the findings through the sink's pageFinding channel.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_REPORT_PAGEREPORTBUILDER_H
#define CHEETAH_CORE_REPORT_PAGEREPORTBUILDER_H

#include "core/assess/Assessor.h"
#include "core/detect/PageInfo.h"
#include "core/detect/SharingClassifier.h"
#include "core/report/Report.h"
#include "core/report/ReportSink.h"
#include "mem/NumaTopology.h"
#include "runtime/Callsite.h"
#include "runtime/GlobalRegistry.h"
#include "runtime/HeapAllocator.h"

#include <cstdint>
#include <vector>

namespace cheetah {
namespace core {

/// Significance gate for page findings. A page matters when nodes actually
/// contend on it (cross-node invalidations) or when its placement forces
/// steady remote-DRAM traffic even without sharing.
struct PageReportGate {
  /// Multi-node pages need at least this many cross-node invalidations.
  uint64_t MinInvalidations = 8;
  /// Single-node pages homed elsewhere need at least this many remote
  /// sampled accesses to surface as a placement finding.
  uint64_t MinRemoteAccesses = 32;
  /// Report single-node remote-placement pages at all.
  bool ReportRemotePlacement = true;
};

/// Streams materialized pages in, page findings out.
class PageReportBuilder {
public:
  PageReportBuilder(const runtime::HeapAllocator &Heap,
                    const runtime::GlobalRegistry &Globals,
                    const runtime::CallsiteTable &Callsites,
                    const SharingClassifier &Classifier,
                    const NumaTopology &Topology, const CacheGeometry &Geometry,
                    const PageReportGate &Gate);

  /// Folds one quiesced page in — the granularity-neutral GrainSnapshot
  /// the detection core emits (per-line buckets, per-thread stats) plus
  /// the page-grain NUMA evidence alongside it. Pages with zero recorded
  /// accesses are skipped.
  void addPage(const GrainSnapshot &Page, NodeId Home,
               const PageNumaEvidence &Numa);

  /// Run-wide local (home-node) sample totals over every added page: the
  /// fallback EQ.1 baseline for pages with no local population of their
  /// own. Feed these to Assessor::setLocalLatencyTotals before finalize().
  uint64_t localAccesses() const { return LocalAccesses; }
  uint64_t localCycles() const { return LocalCycles; }

  /// Everything finalize() produces.
  struct Output {
    /// Significant page findings, highest predicted improvement first.
    std::vector<PageSharingReport> Reports;
    /// Every tracked page, same order, for tests and ablations.
    std::vector<PageSharingReport> AllInstances;
  };

  /// Assesses every page (EQ.1–EQ.4 with the no-remote baseline), sorts,
  /// gates, and — when \p Sink is non-null — streams each finding through
  /// Sink->pageFinding() (sink order matches AllInstances).
  Output finalize(const Assessor &Assess, uint64_t AppRuntime,
                  ReportSink *Sink = nullptr);

private:
  /// A report waiting for finalize(), with the per-thread evidence its
  /// assessment needs.
  struct PendingPage {
    PageSharingReport Report;
    ObjectAccessProfile Profile;
  };

  PendingPage buildReport(const GrainSnapshot &Page, NodeId Home,
                          const PageNumaEvidence &Numa) const;

  const runtime::HeapAllocator &Heap;
  const runtime::GlobalRegistry &Globals;
  const runtime::CallsiteTable &Callsites;
  const SharingClassifier &Classifier;
  NumaTopology Topology;
  CacheGeometry Geometry;
  PageReportGate Gate;
  std::vector<PendingPage> Pending;
  uint64_t LocalAccesses = 0;
  uint64_t LocalCycles = 0;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_REPORT_PAGEREPORTBUILDER_H
