//===- core/report/ReportDiff.h - Multi-run report comparison --*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Comparison tooling over serialized `cheetah-report-v2`/`v3`/`v4` JSON
/// documents, the library behind the `cheetah-diff` CLI: parse two runs'
/// reports back (failing loudly on v1 or unknown schemas — never
/// crashing on hostile input), match findings across the runs by
/// site/page identity, classify them as added/removed/matched, and apply
/// a regression gate over predicted-improvement factors for CI
/// ("fail the build when a fixable finding at or above this factor
/// appeared or got worse").
///
/// The identity scheme (site keys, "#N" ordinals, matching) lives in
/// FindingMatch.h — it is shared with the N-run history layer behind
/// `cheetah-trend` (ReportHistory.h).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_REPORT_REPORTDIFF_H
#define CHEETAH_CORE_REPORT_REPORTDIFF_H

#include "core/report/FindingMatch.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {
namespace core {

/// A parsed report document, reduced to run identity plus findings.
struct ParsedReport {
  std::string Schema;
  std::string Workload;
  uint64_t Threads = 0;
  bool FixApplied = false;
  std::string Granularity;
  uint64_t AppRuntimeCycles = 0;
  std::vector<DiffFinding> Findings;
  std::vector<DiffFinding> PageFindings;
};

/// Parses a serialized cheetah report into \p Out. Accepts schemas
/// `cheetah-report-v2`, `cheetah-report-v3`, and `cheetah-report-v4`
/// only; anything else — including v1, whose consumers this
/// version-gating contract exists for — fails with a descriptive
/// \p Error. Malformed JSON, wrong value kinds, and missing required
/// fields also fail loudly; this function never crashes on hostile input
/// (the fuzz suite pins that).
bool parseReport(const std::string &Text, ParsedReport &Out,
                 std::string &Error);

/// Outcome of comparing two runs.
struct ReportDiffResult {
  ParsedReport Old;
  ParsedReport New;
  /// Line-granularity findings only in the new / only in the old run /
  /// in both.
  std::vector<DiffFinding> Added;
  std::vector<DiffFinding> Removed;
  std::vector<MatchedFinding> Matched;
  /// Page-granularity findings, same classification.
  std::vector<DiffFinding> PageAdded;
  std::vector<DiffFinding> PageRemoved;
  std::vector<MatchedFinding> PageMatched;
};

/// Matches the two runs' findings by key at both granularities.
ReportDiffResult diffReports(const ParsedReport &Old,
                             const ParsedReport &New);

/// One finding that trips the regression gate.
struct GateViolation {
  DiffFinding Finding;
  /// The old run's improvement for the same key; 0 when the site is new.
  double OldImprovement = 0.0;
  bool NewSite = false;
};

/// The CI regression gate: a violation is a *significant* finding in the
/// NEW run whose predicted improvement is at or above \p Factor and that
/// (a) has no counterpart in the old run, (b) was below the factor in the
/// old run, or (c) grew beyond \p Tolerance. Pre-existing findings at a
/// stable factor do not trip the gate — it guards against regressions,
/// not against profiling a known-broken workload. Findings without an
/// improvement factor (v2 page findings) are skipped.
std::vector<GateViolation> gateRegressions(const ReportDiffResult &Diff,
                                           double Factor,
                                           double Tolerance = 1e-9);

/// Renders the diff (and, when \p GateFactor > 0, the gate verdict) as a
/// deterministic human-readable text block. Byte-stable for identical
/// inputs — the golden tests pin it.
std::string formatDiffText(const ReportDiffResult &Diff,
                           double GateFactor = 0.0);

/// Renders the diff as a stable machine-readable `cheetah-diff-v1` JSON
/// document (same determinism contract as the report schema itself).
std::string formatDiffJson(const ReportDiffResult &Diff,
                           double GateFactor = 0.0);

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_REPORT_REPORTDIFF_H
