//===- core/report/ReportDiff.cpp - Multi-run report comparison -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/report/ReportDiff.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <limits>
#include <map>

using namespace cheetah;
using namespace cheetah::core;

namespace {

// Kind-checked field access (jsonField*) lives in support/Json.h; the
// identity/matching layer (disambiguateKeys, matchFindings,
// improvementString) in FindingMatch.h — both shared with ReportHistory.

/// Optional improvement factor: v3 findings carry `predictedImprovement`;
/// v2 line findings fall back to `assessment.improvement_factor`; v2 page
/// findings have neither.
void readImprovement(const JsonValue &Finding, DiffFinding &Out) {
  const JsonValue *Factor = Finding.find("predictedImprovement");
  if (!Factor || Factor->kind() != JsonValue::Kind::Number) {
    const JsonValue *Impact = Finding.find("assessment");
    if (Impact && Impact->isObject())
      Factor = Impact->find("improvement_factor");
  }
  if (Factor && Factor->kind() == JsonValue::Kind::Number) {
    Out.Improvement = Factor->asNumber();
    Out.HasImprovement = true;
  }
}

bool parseLineFinding(const JsonValue &Node, DiffFinding &Out,
                      std::string &Error) {
  if (!Node.isObject()) {
    Error = "finding is not an object";
    return false;
  }
  const JsonValue *Object = Node.find("object");
  if (!Object || !Object->isObject()) {
    Error = "finding without an 'object' member";
    return false;
  }
  std::string Kind, Name;
  if (!jsonFieldString(*Object, "kind", Kind, Error) ||
      !jsonFieldString(*Object, "name", Name, Error))
    return false;
  if (Name.empty()) {
    // Anonymous ranges have no stable name; their start address is the
    // best identity available (they rarely survive a relayout anyway).
    uint64_t Start = 0;
    if (!jsonFieldUint(*Object, "start", Start, Error))
      return false;
    Name = formatString("@0x%llx", static_cast<unsigned long long>(Start));
  }
  Out.Key = "line:" + Kind + ":" + Name;
  Out.IsPage = false;
  if (!jsonFieldString(Node, "sharing", Out.Sharing, Error) ||
      !jsonFieldBool(Node, "significant", Out.Significant, Error) ||
      !jsonFieldUint(Node, "accesses", Out.Accesses, Error) ||
      !jsonFieldUint(Node, "invalidations", Out.Invalidations, Error))
    return false;
  readImprovement(Node, Out);
  return true;
}

bool parsePageFinding(const JsonValue &Node, DiffFinding &Out,
                      std::string &Error) {
  if (!Node.isObject()) {
    Error = "page finding is not an object";
    return false;
  }
  const JsonValue *Objects = Node.find("objects");
  if (!Objects || !Objects->isArray()) {
    Error = "page finding without an 'objects' array";
    return false;
  }
  std::string Site;
  for (const JsonValue &Name : Objects->elements()) {
    if (Name.kind() != JsonValue::Kind::String) {
      Error = "page finding 'objects' entry is not a string";
      return false;
    }
    if (!Site.empty())
      Site += "+";
    Site += Name.asString();
  }
  if (Site.empty()) {
    uint64_t Page = 0;
    if (!jsonFieldUint(Node, "page", Page, Error))
      return false;
    Site = formatString("@0x%llx", static_cast<unsigned long long>(Page));
  }
  Out.Key = "page:" + Site;
  Out.IsPage = true;
  if (!jsonFieldString(Node, "sharing", Out.Sharing, Error) ||
      !jsonFieldBool(Node, "significant", Out.Significant, Error) ||
      !jsonFieldUint(Node, "accesses", Out.Accesses, Error) ||
      !jsonFieldUint(Node, "invalidations", Out.Invalidations, Error) ||
      !jsonFieldUint(Node, "remote_accesses", Out.RemoteAccesses, Error))
    return false;
  // v4 only: the distance breakdown. Optional (v2/v3 findings predate it),
  // but when present it must be well-formed — a malformed bucket is a
  // hostile document, not a skippable detail.
  if (const JsonValue *Buckets = Node.find("remote_by_distance")) {
    if (!Buckets->isArray()) {
      Error = "'remote_by_distance' is not an array";
      return false;
    }
    for (size_t I = 0; I < Buckets->size(); ++I) {
      const JsonValue &Entry = Buckets->elements()[I];
      if (!Entry.isObject()) {
        Error = formatString("remote_by_distance[%zu] is not an object", I);
        return false;
      }
      RemoteDistanceStats Bucket;
      uint64_t Distance = 0;
      if (!jsonFieldUint(Entry, "distance", Distance, Error) ||
          !jsonFieldUint(Entry, "accesses", Bucket.Accesses, Error) ||
          !jsonFieldUint(Entry, "cycles", Bucket.Cycles, Error)) {
        Error = formatString("remote_by_distance[%zu]: ", I) + Error;
        return false;
      }
      // Distances come from a validated topology; a value the uint32
      // field cannot hold is a hostile document, not truncation material.
      if (Distance > std::numeric_limits<uint32_t>::max()) {
        Error = formatString(
            "remote_by_distance[%zu]: field 'distance' is out of range", I);
        return false;
      }
      Bucket.Distance = static_cast<uint32_t>(Distance);
      Out.RemoteByDistance.push_back(Bucket);
    }
  }
  readImprovement(Node, Out);
  return true;
}

void writeDiffFinding(JsonWriter &Writer, const DiffFinding &Finding) {
  Writer.beginObject();
  Writer.member("key", Finding.Key);
  Writer.member("page", Finding.IsPage);
  Writer.member("sharing", Finding.Sharing);
  Writer.member("significant", Finding.Significant);
  if (Finding.HasImprovement)
    Writer.member("predictedImprovement", Finding.Improvement);
  Writer.member("accesses", Finding.Accesses);
  Writer.member("invalidations", Finding.Invalidations);
  if (Finding.IsPage)
    Writer.member("remote_accesses", Finding.RemoteAccesses);
  if (!Finding.RemoteByDistance.empty()) {
    Writer.key("remote_by_distance");
    Writer.beginArray();
    for (const RemoteDistanceStats &Bucket : Finding.RemoteByDistance) {
      Writer.beginObject();
      Writer.member("distance", Bucket.Distance);
      Writer.member("accesses", Bucket.Accesses);
      Writer.member("cycles", Bucket.Cycles);
      Writer.endObject();
    }
    Writer.endArray();
  }
  Writer.endObject();
}

void writeDiffSection(JsonWriter &Writer,
                      const std::vector<DiffFinding> &Added,
                      const std::vector<DiffFinding> &Removed,
                      const std::vector<MatchedFinding> &Matched) {
  Writer.beginObject();
  Writer.key("added");
  Writer.beginArray();
  for (const DiffFinding &Finding : Added)
    writeDiffFinding(Writer, Finding);
  Writer.endArray();
  Writer.key("removed");
  Writer.beginArray();
  for (const DiffFinding &Finding : Removed)
    writeDiffFinding(Writer, Finding);
  Writer.endArray();
  Writer.key("matched");
  Writer.beginArray();
  for (const MatchedFinding &Pair : Matched) {
    Writer.beginObject();
    Writer.member("key", Pair.New.Key);
    Writer.member("old_significant", Pair.Old.Significant);
    Writer.member("new_significant", Pair.New.Significant);
    if (Pair.Old.HasImprovement)
      Writer.member("old_improvement", Pair.Old.Improvement);
    if (Pair.New.HasImprovement)
      Writer.member("new_improvement", Pair.New.Improvement);
    if (Pair.Old.HasImprovement && Pair.New.HasImprovement)
      Writer.member("delta", Pair.improvementDelta());
    Writer.endObject();
  }
  Writer.endArray();
  Writer.endObject();
}

void appendTextSection(std::string &Out, const char *Title,
                       const std::vector<DiffFinding> &Added,
                       const std::vector<DiffFinding> &Removed,
                       const std::vector<MatchedFinding> &Matched) {
  Out += formatString("== %s: %zu added, %zu removed, %zu matched ==\n",
                      Title, Added.size(), Removed.size(), Matched.size());
  for (const DiffFinding &Finding : Added)
    Out += formatString("  added    %s  %s  improvement %s\n",
                        Finding.Key.c_str(), Finding.Sharing.c_str(),
                        improvementString(Finding).c_str());
  for (const DiffFinding &Finding : Removed)
    Out += formatString("  removed  %s  %s  improvement %s\n",
                        Finding.Key.c_str(), Finding.Sharing.c_str(),
                        improvementString(Finding).c_str());
  for (const MatchedFinding &Pair : Matched) {
    std::string Delta =
        Pair.Old.HasImprovement && Pair.New.HasImprovement
            ? formatString(" (%+.4f)", Pair.improvementDelta())
            : std::string();
    Out += formatString("  matched  %s  improvement %s -> %s%s\n",
                        Pair.New.Key.c_str(),
                        improvementString(Pair.Old).c_str(),
                        improvementString(Pair.New).c_str(), Delta.c_str());
  }
}

} // namespace

bool cheetah::core::parseReport(const std::string &Text, ParsedReport &Out,
                                std::string &Error) {
  Out = ParsedReport();
  JsonValue Document;
  if (!JsonValue::parse(Text, Document, Error)) {
    Error = "invalid JSON: " + Error;
    return false;
  }
  if (!Document.isObject()) {
    Error = "report is not a JSON object";
    return false;
  }
  if (!jsonFieldString(Document, "schema", Out.Schema, Error))
    return false;
  if (Out.Schema != "cheetah-report-v2" &&
      Out.Schema != "cheetah-report-v3" &&
      Out.Schema != "cheetah-report-v4") {
    // The loud version gate: v1 (and anything unknown) must be rejected,
    // not silently half-read.
    Error = formatString(
        "unsupported schema '%s' (cheetah-diff reads cheetah-report-v2, "
        "cheetah-report-v3, and cheetah-report-v4)",
        Out.Schema.c_str());
    return false;
  }

  const JsonValue *Run = Document.find("run");
  if (!Run || !Run->isObject()) {
    Error = "report without a 'run' object";
    return false;
  }
  if (!jsonFieldString(*Run, "workload", Out.Workload, Error) ||
      !jsonFieldUint(*Run, "threads", Out.Threads, Error) ||
      !jsonFieldBool(*Run, "fix_applied", Out.FixApplied, Error) ||
      !jsonFieldString(*Run, "granularity", Out.Granularity, Error))
    return false;

  const JsonValue *Summary = Document.find("summary");
  if (!Summary || !Summary->isObject() ||
      !jsonFieldUint(*Summary, "app_runtime_cycles", Out.AppRuntimeCycles,
                 Error)) {
    Error = "report without a usable 'summary' object: " + Error;
    return false;
  }

  const JsonValue *Findings = Document.find("findings");
  if (!Findings || !Findings->isArray()) {
    Error = "report without a 'findings' array";
    return false;
  }
  for (size_t I = 0; I < Findings->size(); ++I) {
    DiffFinding Finding;
    if (!parseLineFinding(Findings->elements()[I], Finding, Error)) {
      Error = formatString("findings[%zu]: ", I) + Error;
      return false;
    }
    Out.Findings.push_back(std::move(Finding));
  }

  const JsonValue *Pages = Document.find("pageFindings");
  if (!Pages || !Pages->isArray()) {
    Error = "report without a 'pageFindings' array";
    return false;
  }
  for (size_t I = 0; I < Pages->size(); ++I) {
    DiffFinding Finding;
    if (!parsePageFinding(Pages->elements()[I], Finding, Error)) {
      Error = formatString("pageFindings[%zu]: ", I) + Error;
      return false;
    }
    Out.PageFindings.push_back(std::move(Finding));
  }

  disambiguateKeys(Out.Findings);
  disambiguateKeys(Out.PageFindings);
  return true;
}

ReportDiffResult cheetah::core::diffReports(const ParsedReport &Old,
                                            const ParsedReport &New) {
  ReportDiffResult Result;
  Result.Old = Old;
  Result.New = New;
  matchFindings(Old.Findings, New.Findings, Result.Added, Result.Removed,
                Result.Matched);
  matchFindings(Old.PageFindings, New.PageFindings, Result.PageAdded,
                Result.PageRemoved, Result.PageMatched);
  return Result;
}

std::vector<GateViolation>
cheetah::core::gateRegressions(const ReportDiffResult &Diff, double Factor,
                               double Tolerance) {
  std::vector<GateViolation> Violations;
  auto Check = [&](const std::vector<DiffFinding> &Added,
                   const std::vector<MatchedFinding> &Matched) {
    for (const DiffFinding &Finding : Added) {
      if (!Finding.Significant || !Finding.HasImprovement ||
          Finding.Improvement < Factor)
        continue;
      Violations.push_back({Finding, 0.0, /*NewSite=*/true});
    }
    for (const MatchedFinding &Pair : Matched) {
      const DiffFinding &New = Pair.New;
      if (!New.Significant || !New.HasImprovement ||
          New.Improvement < Factor)
        continue;
      // An old finding without an improvement factor (a v2 page finding)
      // is skipped entirely: a v2-baseline vs v3 comparison must not
      // flag pre-existing findings as having "crossed" the gate.
      if (!Pair.Old.HasImprovement)
        continue;
      bool CrossedGate = Pair.Old.Improvement < Factor;
      bool Grew = New.Improvement > Pair.Old.Improvement + Tolerance;
      if (CrossedGate || Grew)
        Violations.push_back({New, Pair.Old.Improvement,
                              /*NewSite=*/false});
    }
  };
  Check(Diff.Added, Diff.Matched);
  Check(Diff.PageAdded, Diff.PageMatched);
  return Violations;
}

std::string cheetah::core::formatDiffText(const ReportDiffResult &Diff,
                                          double GateFactor) {
  std::string Out;
  Out += formatString(
      "cheetah-diff: %s (%llu threads, fix %s) -> %s (%llu threads, "
      "fix %s)\n",
      Diff.Old.Workload.c_str(),
      static_cast<unsigned long long>(Diff.Old.Threads),
      Diff.Old.FixApplied ? "on" : "off", Diff.New.Workload.c_str(),
      static_cast<unsigned long long>(Diff.New.Threads),
      Diff.New.FixApplied ? "on" : "off");
  Out += formatString("schema %s -> %s, runtime %llu -> %llu cycles\n",
                      Diff.Old.Schema.c_str(), Diff.New.Schema.c_str(),
                      static_cast<unsigned long long>(
                          Diff.Old.AppRuntimeCycles),
                      static_cast<unsigned long long>(
                          Diff.New.AppRuntimeCycles));
  appendTextSection(Out, "line findings", Diff.Added, Diff.Removed,
                    Diff.Matched);
  appendTextSection(Out, "page findings", Diff.PageAdded, Diff.PageRemoved,
                    Diff.PageMatched);

  if (GateFactor > 0.0) {
    std::vector<GateViolation> Violations =
        gateRegressions(Diff, GateFactor);
    Out += formatString("== gate: factor %.4f ==\n", GateFactor);
    for (const GateViolation &Violation : Violations)
      Out += formatString(
          "  REGRESSION %s  %s  improvement %s (was %s)\n",
          Violation.NewSite ? "new-site" : "regressed",
          Violation.Finding.Key.c_str(),
          improvementString(Violation.Finding).c_str(),
          Violation.NewSite
              ? "absent"
              : formatString("%.4fx", Violation.OldImprovement).c_str());
    Out += formatString("gate verdict: %zu regression(s)\n",
                        Violations.size());
  }
  return Out;
}

std::string cheetah::core::formatDiffJson(const ReportDiffResult &Diff,
                                          double GateFactor) {
  std::string Out;
  JsonWriter Writer(Out);
  Writer.beginObject();
  Writer.member("schema", "cheetah-diff-v1");
  auto WriteRun = [&](const char *Name, const ParsedReport &Run) {
    Writer.key(Name);
    Writer.beginObject();
    Writer.member("schema", Run.Schema);
    Writer.member("workload", Run.Workload);
    Writer.member("threads", Run.Threads);
    Writer.member("fix_applied", Run.FixApplied);
    Writer.member("granularity", Run.Granularity);
    Writer.member("app_runtime_cycles", Run.AppRuntimeCycles);
    Writer.member("findings", static_cast<uint64_t>(Run.Findings.size()));
    Writer.member("page_findings",
                  static_cast<uint64_t>(Run.PageFindings.size()));
    Writer.endObject();
  };
  WriteRun("old", Diff.Old);
  WriteRun("new", Diff.New);

  Writer.key("findings");
  writeDiffSection(Writer, Diff.Added, Diff.Removed, Diff.Matched);
  Writer.key("pageFindings");
  writeDiffSection(Writer, Diff.PageAdded, Diff.PageRemoved,
                   Diff.PageMatched);

  if (GateFactor > 0.0) {
    std::vector<GateViolation> Violations =
        gateRegressions(Diff, GateFactor);
    Writer.key("gate");
    Writer.beginObject();
    Writer.member("factor", GateFactor);
    Writer.key("violations");
    Writer.beginArray();
    for (const GateViolation &Violation : Violations) {
      Writer.beginObject();
      Writer.member("key", Violation.Finding.Key);
      Writer.member("kind", Violation.NewSite ? "new-site" : "regressed");
      Writer.member("new_improvement", Violation.Finding.Improvement);
      if (!Violation.NewSite)
        Writer.member("old_improvement", Violation.OldImprovement);
      Writer.endObject();
    }
    Writer.endArray();
    Writer.member("regressions",
                  static_cast<uint64_t>(Violations.size()));
    Writer.endObject();
  }
  Writer.endObject();
  Out += "\n";
  return Out;
}
