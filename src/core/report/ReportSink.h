//===- core/report/ReportSink.h - Streaming report consumers ---*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming side of the report pipeline: instead of the profiler
/// aggregating everything and callers formatting a finished vector, report
/// generation pushes findings through a ReportSink one object at a time as
/// the builder finalizes them. Two implementations ship: TextReportSink
/// renders the paper's Figure-5 text format, JsonReportSink emits a stable
/// machine-readable schema (`cheetah-report-v4`) consumed by the
/// multi-run comparison tooling in ReportDiff.h / `cheetah-diff`. Both
/// append to a caller-owned string so the caller chooses the final
/// destination (stdout, a file, a golden-test buffer).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_REPORT_REPORTSINK_H
#define CHEETAH_CORE_REPORT_REPORTSINK_H

#include "core/detect/Detector.h"
#include "core/report/Report.h"
#include "support/Json.h"

#include <cstdint>
#include <string>

namespace cheetah {
namespace core {

/// Run-level identification emitted before any finding. Fill what you
/// know; empty/zero fields are omitted or emitted as-is per sink.
struct ReportRunInfo {
  /// Producing tool, e.g. "cheetah-profile".
  std::string Tool;
  std::string Workload;
  uint32_t Threads = 0;
  double Scale = 1.0;
  uint64_t LineSize = 0;
  uint64_t SamplingPeriod = 0;
  uint64_t Seed = 0;
  /// True when the workload ran with the padding fix applied.
  bool FixApplied = false;
  /// Simulated NUMA node count (1 = UMA).
  uint32_t NumaNodes = 1;
  /// Page size of the page-granularity detector (0 when line-only).
  uint64_t PageSize = 0;
  /// Detection granularity: "line", "page", or "both".
  std::string Granularity = "line";
};

/// One stage's bounded-memory eviction outcome: the configured budget, the
/// post-snapshot footprint, and the residue folded out of evicted grains
/// (so residue + live state still conserves the detector counters).
struct ReportEvictionStats {
  size_t BudgetBytes = 0;
  size_t FootprintBytes = 0;
  GrainEvictionStats Evicted;
};

/// Run-level outcome emitted after the last finding.
struct ReportRunStats {
  uint64_t AppRuntime = 0;
  uint64_t SamplesDelivered = 0;
  uint64_t SerialSamples = 0;
  double SerialAverageLatency = 0.0;
  bool ForkJoinVerified = true;
  DetectorStats Detection;
  size_t MaterializedLines = 0;
  size_t ShadowBytes = 0;
  /// Counts over the findings that passed through the sink.
  uint64_t Findings = 0;
  uint64_t SignificantFindings = 0;
  // Page-granularity totals (zero when page tracking is off).
  size_t MaterializedPages = 0;
  size_t PageShadowBytes = 0;
  uint64_t PageFindings = 0;
  uint64_t SignificantPageFindings = 0;
  /// Per-stage eviction outcome (budget-bounded continuous runs only). The
  /// JSON sink emits the "eviction" summary object only when at least one
  /// grain was actually evicted, so bounded runs that never hit the budget
  /// stay byte-identical to unbounded ones.
  ReportEvictionStats LineEviction;
  ReportEvictionStats PageEviction;
};

/// Consumer of a stream of per-object findings. Calls arrive in order:
/// beginRun, then finding() once per object (highest predicted improvement
/// first), then pageFinding() once per tracked page (worst first; only in
/// page-granularity runs), then endRun. Implementations must tolerate zero
/// findings of either kind.
class ReportSink {
public:
  virtual ~ReportSink() = default;

  virtual void beginRun(const ReportRunInfo &Info) = 0;

  /// One per-object finding. \p Significant mirrors the profiler's report
  /// gate (kind + invalidation + predicted-improvement thresholds).
  virtual void finding(const FalseSharingReport &Report, bool Significant) = 0;

  /// One per-page NUMA finding; default ignores them so line-only sinks
  /// keep working unchanged.
  virtual void pageFinding(const PageSharingReport &Report, bool Significant) {
    (void)Report;
    (void)Significant;
  }

  virtual void endRun(const ReportRunStats &Stats) = 0;
};

/// Figure-5-style text, streamed finding by finding. Per-finding detail is
/// appended as each finding arrives; the one-line-per-object summary table
/// is rendered at endRun (a streaming sink cannot print a table of rows it
/// has not seen yet), together with the run totals.
class TextReportSink : public ReportSink {
public:
  struct Options {
    /// Also render findings that failed the significance gate.
    bool IncludeInsignificant = false;
    ReportFormatOptions Format;
  };

  explicit TextReportSink(std::string &Out)
      : TextReportSink(Out, Options()) {}
  TextReportSink(std::string &Out, const Options &Opts)
      : Out(Out), Opts(Opts) {}

  void beginRun(const ReportRunInfo &Info) override;
  void finding(const FalseSharingReport &Report, bool Significant) override;
  void pageFinding(const PageSharingReport &Report,
                   bool Significant) override;
  void endRun(const ReportRunStats &Stats) override;

private:
  std::string &Out;
  Options Opts;
  std::vector<FalseSharingReport> SummaryRows;
  uint64_t Rendered = 0;
  uint64_t PagesRendered = 0;
};

/// Stable machine-readable schema:
///
/// \code{.json}
/// {
///   "schema": "cheetah-report-v4",
///   "run": { "tool", "workload", "threads", "scale", "line_size",
///            "sampling_period", "seed", "fix_applied", "numa_nodes",
///            "page_size", "granularity" },
///   "findings": [ {
///     "object": { "kind": "heap"|"global"|"range", "name", "callsite": [],
///                 "start", "size", "requested_size", "allocated_by" },
///     "sharing": "false-sharing"|"true-sharing"|"mixed-sharing"|"not-shared",
///     "significant": bool,
///     "predictedImprovement": number,
///     "lines_tracked", "accesses", "writes", "invalidations",
///     "latency_cycles", "threads_observed", "shared_word_fraction",
///     "assessment": { "improvement_factor", "improvement_percent",
///                     "real_runtime_cycles", "predicted_runtime_cycles",
///                     "average_nofs_latency", "used_default_latency",
///                     "fork_join_model" },
///     "words": [ { "offset", "reads", "writes", "cycles", "first_thread",
///                  "multi_thread" } ]
///   } ],
///   "pageFindings": [ {
///     "page", "page_size", "home_node", "nodes",
///     "sharing": "false-sharing"|"true-sharing"|"mixed-sharing"|"not-shared",
///     "significant": bool,
///     "predictedImprovement": number,
///     "accesses", "writes", "remote_accesses", "remote_fraction",
///     "invalidations", "latency_cycles", "remote_latency_cycles",
///     "remote_by_distance": [ { "distance", "accesses", "cycles" } ],
///     "shared_line_fraction",
///     "assessment": { "improvement_factor", "improvement_percent",
///                     "real_runtime_cycles", "predicted_runtime_cycles",
///                     "average_nofs_latency", "used_default_latency",
///                     "fork_join_model" },
///     "objects": [ "name" ],
///     "lines": [ { "offset", "reads", "writes", "cycles", "first_node",
///                  "multi_node" } ]
///   } ],
///   "summary": { "findings", "significant_findings", "page_findings",
///                "significant_page_findings", "app_runtime_cycles",
///                "samples", "serial_samples", "serial_avg_latency",
///                "fork_join", "materialized_lines", "shadow_bytes",
///                "materialized_pages", "page_shadow_bytes",
///                "eviction": { "line": { "budget_bytes", "footprint_bytes",
///                                        "evicted_grains", "accesses",
///                                        "writes", "cycles",
///                                        "invalidations",
///                                        "remote_accesses" },
///                              "page": { same } },
///                "detector": { "seen", "filtered", "recorded",
///                              "invalidations", "page_recorded",
///                              "page_invalidations", "remote_samples" } }
/// }
/// \endcode
///
/// Schema evolution contract: fields are only ever added, never renamed or
/// removed, within one schema version. `cheetah-report-v3` was `v2` plus
/// the assessment of page findings and the top-level
/// `predictedImprovement` factor on findings of both granularities.
/// `cheetah-report-v4` is `v3` plus the per-page-finding
/// `remote_by_distance` breakdown (which node-pair distances the remote
/// traffic crossed); the version string changed so that `v3` consumers
/// pinning the schema id fail loudly instead of silently reading findings
/// whose remote costs — and therefore ordering — now depend on the
/// topology's distance matrix. `cheetah-diff` accepts v2, v3, and v4.
/// Within v4 the summary `eviction` object was added under the
/// fields-only-ever-added rule: it appears only when a bounded-memory run
/// actually evicted grains, so its absence means every grain is still live.
class JsonReportSink : public ReportSink {
public:
  struct Options {
    /// Cap on per-finding word entries (hottest first); 0 = all.
    size_t MaxWords = 0;
  };

  explicit JsonReportSink(std::string &Out)
      : JsonReportSink(Out, Options()) {}
  JsonReportSink(std::string &Out, const Options &Opts)
      : Out(Out), Opts(Opts), Writer(Out) {}

  void beginRun(const ReportRunInfo &Info) override;
  void finding(const FalseSharingReport &Report, bool Significant) override;
  void pageFinding(const PageSharingReport &Report,
                   bool Significant) override;
  void endRun(const ReportRunStats &Stats) override;

private:
  /// Emits the "assessment" member (shared by line and page findings).
  void writeAssessment(const Assessment &Impact);

  /// Closes the findings array and opens pageFindings (idempotent); the
  /// document always carries both arrays, empty or not.
  void startPageArray();

  std::string &Out;
  Options Opts;
  JsonWriter Writer;
  bool InPageArray = false;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_REPORT_REPORTSINK_H
