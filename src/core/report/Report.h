//===- core/report/Report.h - False sharing reports -------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "FS report" module of Figure 2: structured per-object findings and a
/// text formatter that mirrors the paper's Figure 5 output, including the
/// heap-callsite / global-symbol identification and the word-level access
/// breakdown programmers use to decide how to pad.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_REPORT_REPORT_H
#define CHEETAH_CORE_REPORT_REPORT_H

#include "core/assess/Assessor.h"
#include "core/detect/SharingClassifier.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {
namespace core {

/// Identity of a reported object.
struct ReportedObject {
  /// Heap object (reported by callsite) or global (reported by name).
  bool IsHeap = true;
  /// Global symbol name; empty for heap objects.
  std::string GlobalName;
  /// Allocation call stack, innermost first ("file.c:139").
  std::vector<std::string> CallsiteFrames;
  uint64_t Start = 0;
  uint64_t Size = 0;
  /// Size the program requested (heap objects; 0 when unknown).
  uint64_t RequestedSize = 0;
  /// Thread that allocated the object.
  ThreadId AllocatedBy = 0;

  uint64_t end() const { return Start + Size; }
};

/// One word of the per-word breakdown.
struct WordReportEntry {
  /// Byte offset of the word from the object start.
  uint64_t Offset = 0;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  ThreadId FirstThread = 0;
  bool MultiThread = false;
};

/// A full per-object finding.
struct FalseSharingReport {
  ReportedObject Object;
  SharingKind Kind = SharingKind::FalseSharing;
  /// Number of this object's cache lines with detailed tracking.
  uint32_t LinesTracked = 0;
  uint64_t SampledAccesses = 0;
  uint64_t SampledWrites = 0;
  uint64_t Invalidations = 0;
  uint64_t LatencyCycles = 0;
  uint32_t ThreadsObserved = 0;
  /// Fraction of accesses on words shared by multiple threads.
  double SharedWordFraction = 0.0;
  Assessment Impact;
  /// Hottest words (by access count), for padding guidance.
  std::vector<WordReportEntry> Words;
};

/// Formatting options for the text report.
struct ReportFormatOptions {
  /// Include the per-word table.
  bool ShowWords = true;
  /// Maximum words listed (hottest first); 0 = all.
  size_t MaxWords = 16;
  /// Mirror the paper's hexadecimal counters (Figure 5 prints
  /// "invalidations 27f ... totalThreadsAccesses 12e1").
  bool HexCounters = false;
};

/// Renders one report in the paper's Figure 5 style.
std::string formatReport(const FalseSharingReport &Report,
                         const ReportFormatOptions &Options = {});

/// Renders a one-line-per-object summary table for a set of reports.
std::string formatSummaryTable(const std::vector<FalseSharingReport> &Reports);

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_REPORT_REPORT_H
