//===- core/report/Report.h - False sharing reports -------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "FS report" module of Figure 2: structured per-object findings and a
/// text formatter that mirrors the paper's Figure 5 output, including the
/// heap-callsite / global-symbol identification and the word-level access
/// breakdown programmers use to decide how to pad.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_REPORT_REPORT_H
#define CHEETAH_CORE_REPORT_REPORT_H

#include "core/assess/Assessor.h"
#include "core/detect/SharingClassifier.h"
#include "mem/NumaTopology.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {
namespace core {

/// Identity of a reported object.
struct ReportedObject {
  /// Heap object (reported by callsite) or global (reported by name).
  bool IsHeap = true;
  /// Global symbol name; empty for heap objects.
  std::string GlobalName;
  /// Allocation call stack, innermost first ("file.c:139").
  std::vector<std::string> CallsiteFrames;
  uint64_t Start = 0;
  uint64_t Size = 0;
  /// Size the program requested (heap objects; 0 when unknown).
  uint64_t RequestedSize = 0;
  /// Thread that allocated the object.
  ThreadId AllocatedBy = 0;

  uint64_t end() const { return Start + Size; }
};

/// One word of the per-word breakdown.
struct WordReportEntry {
  /// Byte offset of the word from the object start.
  uint64_t Offset = 0;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  ThreadId FirstThread = 0;
  bool MultiThread = false;
};

/// A full per-object finding.
struct FalseSharingReport {
  ReportedObject Object;
  SharingKind Kind = SharingKind::FalseSharing;
  /// Number of this object's cache lines with detailed tracking.
  uint32_t LinesTracked = 0;
  uint64_t SampledAccesses = 0;
  uint64_t SampledWrites = 0;
  uint64_t Invalidations = 0;
  uint64_t LatencyCycles = 0;
  uint32_t ThreadsObserved = 0;
  /// Fraction of accesses on words shared by multiple threads.
  double SharedWordFraction = 0.0;
  Assessment Impact;
  /// Hottest words (by access count), for padding guidance.
  std::vector<WordReportEntry> Words;
};

/// One cache line of a page's per-line breakdown (the page-granularity
/// analogue of WordReportEntry, with NUMA nodes as the actors).
struct PageLineEntry {
  /// Byte offset of the line from the page start.
  uint64_t Offset = 0;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  NodeId FirstNode = 0;
  bool MultiNode = false;
};

/// A full per-page NUMA sharing finding. Kind reuses the line vocabulary at
/// page granularity: FalseSharing = nodes touch disjoint lines of the page
/// (fixable by page-aligned / node-local placement), TrueSharing = nodes
/// touch the same lines, NotShared = one node — which still surfaces as a
/// finding when the accesses are remote (a first-touch placement problem).
struct PageSharingReport {
  uint64_t PageBase = 0;
  uint64_t PageSize = 0;
  /// First-touch home node of the page (NoNode if somehow untouched).
  NodeId HomeNode = 0;
  uint32_t NodesObserved = 0;
  SharingKind Kind = SharingKind::NotShared;
  uint64_t SampledAccesses = 0;
  uint64_t SampledWrites = 0;
  /// Accesses issued from a node other than the home (remote-DRAM traffic).
  uint64_t RemoteAccesses = 0;
  uint64_t Invalidations = 0; // cross-node invalidations
  uint64_t LatencyCycles = 0;
  uint64_t RemoteLatencyCycles = 0;
  /// Remote traffic bucketed by the node-pair distance it crossed, sorted
  /// by distance (the v4 schema's remoteByDistance breakdown). Bucket
  /// accesses sum to RemoteAccesses, cycles to RemoteLatencyCycles.
  std::vector<RemoteDistanceStats> RemoteByDistance;
  /// Fraction of accesses on lines shared by multiple nodes.
  double SharedLineFraction = 0.0;
  /// EQ.1–EQ.4 at page granularity: the predicted whole-program speedup
  /// from fixing the placement/sharing of this page's *site* — every page
  /// overlapping the same objects, since a placement fix moves them all
  /// (ImprovementFactor >= 1 by the page-assessment contract; == 1 when
  /// nothing is removable).
  Assessment Impact;
  /// Names of the objects overlapping the page (heap callsites / globals).
  std::vector<std::string> Objects;
  /// Hottest lines (by access count), for placement guidance.
  std::vector<PageLineEntry> Lines;

  double remoteFraction() const {
    return SampledAccesses ? static_cast<double>(RemoteAccesses) /
                                 static_cast<double>(SampledAccesses)
                           : 0.0;
  }
};

/// Formatting options for the text report.
struct ReportFormatOptions {
  /// Include the per-word table.
  bool ShowWords = true;
  /// Maximum words listed (hottest first); 0 = all.
  size_t MaxWords = 16;
  /// Mirror the paper's hexadecimal counters (Figure 5 prints
  /// "invalidations 27f ... totalThreadsAccesses 12e1").
  bool HexCounters = false;
};

/// Renders one report in the paper's Figure 5 style.
std::string formatReport(const FalseSharingReport &Report,
                         const ReportFormatOptions &Options = {});

/// Renders a one-line-per-object summary table for a set of reports.
std::string formatSummaryTable(const std::vector<FalseSharingReport> &Reports);

/// Renders one page-granularity finding in the same style.
std::string formatPageReport(const PageSharingReport &Report,
                             const ReportFormatOptions &Options = {});

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_REPORT_REPORT_H
