//===- core/report/ReportHistory.cpp - N-run trend history ----------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/report/ReportHistory.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <limits>

using namespace cheetah;
using namespace cheetah::core;

//===----------------------------------------------------------------------===//
// TrendSeries
//===----------------------------------------------------------------------===//

const TrendPoint *TrendSeries::pointAt(uint32_t RunIndex) const {
  auto It = std::lower_bound(Points.begin(), Points.end(), RunIndex,
                             [](const TrendPoint &P, uint32_t Index) {
                               return P.RunIndex < Index;
                             });
  if (It != Points.end() && It->RunIndex == RunIndex)
    return &*It;
  return nullptr;
}

double TrendSeries::bestBefore(uint32_t RunIndex, bool &HasBest) const {
  HasBest = false;
  double Best = 1.0;
  // Points are sorted by run index; walk them alongside the run counter so
  // absent runs contribute their implicit 1.0.
  size_t Next = 0;
  for (uint32_t Run = 0; Run < RunIndex; ++Run) {
    while (Next < Points.size() && Points[Next].RunIndex < Run)
      ++Next;
    const TrendPoint *Point =
        Next < Points.size() && Points[Next].RunIndex == Run ? &Points[Next]
                                                             : nullptr;
    if (Point && !Point->HasImprovement)
      continue; // v2-era observation: no factor to compare against.
    double Value = Point ? Point->Improvement : 1.0;
    if (!HasBest || Value < Best)
      Best = Value;
    HasBest = true;
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Append
//===----------------------------------------------------------------------===//

const TrendSeries *ReportHistory::seriesFor(const std::string &Key) const {
  for (const TrendSeries &S : Series)
    if (S.Key == Key)
      return &S;
  return nullptr;
}

TrendSeries &ReportHistory::seriesForAppend(const DiffFinding &Finding) {
  for (TrendSeries &S : Series)
    if (S.Key == Finding.Key)
      return S;
  TrendSeries S;
  S.Key = Finding.Key;
  S.IsPage = Finding.IsPage;
  Series.push_back(std::move(S));
  return Series.back();
}

namespace {

TrendPoint pointFromFinding(const DiffFinding &Finding, uint32_t RunIndex) {
  TrendPoint Point;
  Point.RunIndex = RunIndex;
  Point.Significant = Finding.Significant;
  Point.HasImprovement = Finding.HasImprovement;
  Point.Improvement = Finding.HasImprovement ? Finding.Improvement : 1.0;
  Point.Accesses = Finding.Accesses;
  Point.Invalidations = Finding.Invalidations;
  Point.RemoteAccesses = Finding.RemoteAccesses;
  Point.RemoteByDistance = Finding.RemoteByDistance;
  return Point;
}

/// Reduced DiffFinding for the matcher: identity plus page-ness is all
/// the added/resolved classification needs.
DiffFinding findingFromSeries(const TrendSeries &S) {
  DiffFinding Finding;
  Finding.Key = S.Key;
  Finding.IsPage = S.IsPage;
  Finding.Sharing = S.Sharing;
  return Finding;
}

} // namespace

bool ReportHistory::appendRun(const ParsedReport &Report,
                              const std::string &RunId, std::string &Error) {
  if (RunId.empty()) {
    Error = "run id must not be empty";
    return false;
  }
  for (const HistoryRunInfo &Run : Runs)
    if (Run.Id == RunId) {
      Error = "duplicate run id '" + RunId + "'";
      return false;
    }

  uint32_t Index = static_cast<uint32_t>(Runs.size());

  // The new run's findings, both granularities (keys are prefix-disjoint).
  std::vector<DiffFinding> New;
  New.reserve(Report.Findings.size() + Report.PageFindings.size());
  New.insert(New.end(), Report.Findings.begin(), Report.Findings.end());
  New.insert(New.end(), Report.PageFindings.begin(),
             Report.PageFindings.end());

  // Classify against the previous run via the shared matcher: series that
  // carried a point at Index-1 were "present" there.
  std::vector<DiffFinding> Previous;
  if (Index > 0)
    for (const TrendSeries &S : Series)
      if (S.pointAt(Index - 1))
        Previous.push_back(findingFromSeries(S));
  std::vector<DiffFinding> Added, Removed;
  std::vector<MatchedFinding> Matched;
  matchFindings(Previous, New, Added, Removed, Matched);

  HistoryRunInfo Info;
  Info.Id = RunId;
  Info.Workload = Report.Workload;
  Info.Threads = Report.Threads;
  Info.FixApplied = Report.FixApplied;
  Info.Granularity = Report.Granularity;
  Info.SourceSchema = Report.Schema;
  Info.AppRuntimeCycles = Report.AppRuntimeCycles;
  Info.NewFindings = Added.size();
  Info.ResolvedFindings = Removed.size();
  Info.MatchedFindings = Matched.size();
  Runs.push_back(std::move(Info));

  for (const DiffFinding &Finding : New) {
    TrendSeries &S = seriesForAppend(Finding);
    // Diff-sourced matched entries carry no sharing string; keep the last
    // real observation in that case.
    if (!Finding.Sharing.empty())
      S.Sharing = Finding.Sharing;
    S.Points.push_back(pointFromFinding(Finding, Index));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Gate and bisect
//===----------------------------------------------------------------------===//

std::vector<HistoryGateViolation>
ReportHistory::gate(double Factor, double Tolerance) const {
  std::vector<HistoryGateViolation> Violations;
  if (Runs.empty())
    return Violations;
  uint32_t Last = static_cast<uint32_t>(Runs.size()) - 1;
  for (const TrendSeries &S : Series) {
    const TrendPoint *Current = S.pointAt(Last);
    if (!Current || !Current->Significant || !Current->HasImprovement ||
        Current->Improvement < Factor)
      continue;
    bool HasBest = false;
    double Best = S.bestBefore(Last, HasBest);
    HistoryGateViolation Violation;
    Violation.Key = S.Key;
    Violation.IsPage = S.IsPage;
    Violation.Improvement = Current->Improvement;
    Violation.Best = Best;
    if (!HasBest)
      Violation.Why = HistoryGateViolation::Kind::NewSite;
    else if (Best < Factor)
      Violation.Why = HistoryGateViolation::Kind::Crossed;
    else if (Current->Improvement > Best + Tolerance)
      Violation.Why = HistoryGateViolation::Kind::Grew;
    else
      continue; // Bad since the first run and stable: not a regression.
    Violations.push_back(std::move(Violation));
  }
  std::sort(Violations.begin(), Violations.end(),
            [](const HistoryGateViolation &A, const HistoryGateViolation &B) {
              if (A.Improvement != B.Improvement)
                return A.Improvement > B.Improvement;
              return A.Key < B.Key;
            });
  return Violations;
}

BisectResult ReportHistory::bisect(const std::string &Key,
                                   double Factor) const {
  BisectResult Result;
  if (Runs.empty()) {
    Result.Error = "history store is empty";
    return Result;
  }
  const TrendSeries *S = seriesFor(Key);
  if (!S) {
    Result.Error = "unknown finding key '" + Key + "'";
    return Result;
  }
  auto Bad = [&](uint32_t Index) {
    ++Result.Probes;
    const TrendPoint *Point = S->pointAt(Index);
    return Point && Point->Significant && Point->HasImprovement &&
           Point->Improvement >= Factor;
  };
  uint32_t Last = static_cast<uint32_t>(Runs.size()) - 1;
  if (!Bad(Last)) {
    Result.Error = formatString(
        "'%s' is not regressing at factor %.4f in the last run", Key.c_str(),
        Factor);
    return Result;
  }
  if (Bad(0)) {
    // The whole store is bad: the culprit predates run 0.
    Result.Valid = true;
    Result.BadFromStart = true;
    Result.IntroducedIndex = 0;
    Result.IntroducedRunId = Runs[0].Id;
    return Result;
  }
  // Classic bisection between a known-good and known-bad run. On a
  // flapping history this converges on *a* good-to-bad transition, which
  // is the git-bisect contract.
  uint32_t Good = 0, BadIndex = Last;
  while (BadIndex - Good > 1) {
    uint32_t Mid = Good + (BadIndex - Good) / 2;
    if (Bad(Mid))
      BadIndex = Mid;
    else
      Good = Mid;
  }
  Result.Valid = true;
  Result.IntroducedIndex = BadIndex;
  Result.IntroducedRunId = Runs[BadIndex].Id;
  return Result;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string ReportHistory::serialize() const {
  std::string Out;
  JsonWriter Writer(Out);
  Writer.beginObject();
  Writer.member("schema", "cheetah-history-v1");
  Writer.key("runs");
  Writer.beginArray();
  for (const HistoryRunInfo &Run : Runs) {
    Writer.beginObject();
    Writer.member("id", Run.Id);
    Writer.member("workload", Run.Workload);
    Writer.member("threads", Run.Threads);
    Writer.member("fix_applied", Run.FixApplied);
    Writer.member("granularity", Run.Granularity);
    Writer.member("source_schema", Run.SourceSchema);
    Writer.member("app_runtime_cycles", Run.AppRuntimeCycles);
    Writer.member("new_findings", Run.NewFindings);
    Writer.member("resolved_findings", Run.ResolvedFindings);
    Writer.member("matched_findings", Run.MatchedFindings);
    Writer.endObject();
  }
  Writer.endArray();
  Writer.key("series");
  Writer.beginArray();
  for (const TrendSeries &S : Series) {
    Writer.beginObject();
    Writer.member("key", S.Key);
    Writer.member("page", S.IsPage);
    Writer.member("sharing", S.Sharing);
    Writer.key("points");
    Writer.beginArray();
    for (const TrendPoint &Point : S.Points) {
      Writer.beginObject();
      Writer.member("run", static_cast<uint64_t>(Point.RunIndex));
      Writer.member("significant", Point.Significant);
      if (Point.HasImprovement)
        Writer.member("predictedImprovement", Point.Improvement);
      Writer.member("accesses", Point.Accesses);
      Writer.member("invalidations", Point.Invalidations);
      if (S.IsPage)
        Writer.member("remote_accesses", Point.RemoteAccesses);
      if (!Point.RemoteByDistance.empty()) {
        Writer.key("remote_by_distance");
        Writer.beginArray();
        for (const RemoteDistanceStats &Bucket : Point.RemoteByDistance) {
          Writer.beginObject();
          Writer.member("distance", Bucket.Distance);
          Writer.member("accesses", Bucket.Accesses);
          Writer.member("cycles", Bucket.Cycles);
          Writer.endObject();
        }
        Writer.endArray();
      }
      Writer.endObject();
    }
    Writer.endArray();
    Writer.endObject();
  }
  Writer.endArray();
  Writer.endObject();
  Out += "\n";
  return Out;
}

namespace {

bool parsePoint(const JsonValue &Node, bool IsPage, size_t RunCount,
                const TrendPoint *PreviousPoint, TrendPoint &Out,
                std::string &Error) {
  if (!Node.isObject()) {
    Error = "point is not an object";
    return false;
  }
  uint64_t Run = 0;
  if (!jsonFieldUint(Node, "run", Run, Error) ||
      !jsonFieldBool(Node, "significant", Out.Significant, Error) ||
      !jsonFieldUint(Node, "accesses", Out.Accesses, Error) ||
      !jsonFieldUint(Node, "invalidations", Out.Invalidations, Error))
    return false;
  if (Run >= RunCount) {
    Error = formatString("field 'run' (%llu) references no stored run",
                         static_cast<unsigned long long>(Run));
    return false;
  }
  Out.RunIndex = static_cast<uint32_t>(Run);
  if (PreviousPoint && Out.RunIndex <= PreviousPoint->RunIndex) {
    Error = "point run indices are not strictly increasing";
    return false;
  }
  if (const JsonValue *Factor = Node.find("predictedImprovement")) {
    if (Factor->kind() != JsonValue::Kind::Number) {
      Error = "field 'predictedImprovement' is not a number";
      return false;
    }
    Out.Improvement = Factor->asNumber();
    Out.HasImprovement = true;
  }
  if (IsPage) {
    if (!jsonFieldUint(Node, "remote_accesses", Out.RemoteAccesses, Error))
      return false;
  } else if (Node.find("remote_accesses") || Node.find("remote_by_distance")) {
    // Canonical stores never put page-only members on a line point;
    // accepting them would break the parse -> re-emit stability contract.
    Error = "line point carries page-only members";
    return false;
  }
  if (const JsonValue *Buckets = Node.find("remote_by_distance")) {
    if (!Buckets->isArray()) {
      Error = "'remote_by_distance' is not an array";
      return false;
    }
    for (size_t I = 0; I < Buckets->size(); ++I) {
      const JsonValue &Entry = Buckets->elements()[I];
      if (!Entry.isObject()) {
        Error = formatString("remote_by_distance[%zu] is not an object", I);
        return false;
      }
      RemoteDistanceStats Bucket;
      uint64_t Distance = 0;
      if (!jsonFieldUint(Entry, "distance", Distance, Error) ||
          !jsonFieldUint(Entry, "accesses", Bucket.Accesses, Error) ||
          !jsonFieldUint(Entry, "cycles", Bucket.Cycles, Error)) {
        Error = formatString("remote_by_distance[%zu]: ", I) + Error;
        return false;
      }
      if (Distance > std::numeric_limits<uint32_t>::max()) {
        Error = formatString(
            "remote_by_distance[%zu]: field 'distance' is out of range", I);
        return false;
      }
      Bucket.Distance = static_cast<uint32_t>(Distance);
      Out.RemoteByDistance.push_back(Bucket);
    }
  }
  return true;
}

} // namespace

bool ReportHistory::parse(const std::string &Text, ReportHistory &Out,
                          std::string &Error) {
  Out = ReportHistory();
  JsonValue Document;
  if (!JsonValue::parse(Text, Document, Error)) {
    Error = "invalid JSON: " + Error;
    return false;
  }
  if (!Document.isObject()) {
    Error = "history store is not a JSON object";
    return false;
  }
  std::string Schema;
  if (!jsonFieldString(Document, "schema", Schema, Error))
    return false;
  if (Schema != "cheetah-history-v1") {
    Error = formatString(
        "unsupported schema '%s' (cheetah-trend reads cheetah-history-v1)",
        Schema.c_str());
    return false;
  }

  const JsonValue *Runs = Document.find("runs");
  if (!Runs || !Runs->isArray()) {
    Error = "history store without a 'runs' array";
    return false;
  }
  for (size_t I = 0; I < Runs->size(); ++I) {
    const JsonValue &Node = Runs->elements()[I];
    HistoryRunInfo Info;
    bool Ok = Node.isObject() &&
              jsonFieldString(Node, "id", Info.Id, Error) &&
              jsonFieldString(Node, "workload", Info.Workload, Error) &&
              jsonFieldUint(Node, "threads", Info.Threads, Error) &&
              jsonFieldBool(Node, "fix_applied", Info.FixApplied, Error) &&
              jsonFieldString(Node, "granularity", Info.Granularity, Error) &&
              jsonFieldString(Node, "source_schema", Info.SourceSchema,
                              Error) &&
              jsonFieldUint(Node, "app_runtime_cycles",
                            Info.AppRuntimeCycles, Error) &&
              jsonFieldUint(Node, "new_findings", Info.NewFindings, Error) &&
              jsonFieldUint(Node, "resolved_findings", Info.ResolvedFindings,
                            Error) &&
              jsonFieldUint(Node, "matched_findings", Info.MatchedFindings,
                            Error);
    if (!Ok) {
      if (!Node.isObject())
        Error = "run is not an object";
      Error = formatString("runs[%zu]: ", I) + Error;
      return false;
    }
    if (Info.Id.empty()) {
      Error = formatString("runs[%zu]: run id must not be empty", I);
      return false;
    }
    for (const HistoryRunInfo &Seen : Out.Runs)
      if (Seen.Id == Info.Id) {
        Error = formatString("runs[%zu]: duplicate run id '%s'", I,
                             Info.Id.c_str());
        return false;
      }
    Out.Runs.push_back(std::move(Info));
  }

  const JsonValue *Series = Document.find("series");
  if (!Series || !Series->isArray()) {
    Error = "history store without a 'series' array";
    return false;
  }
  for (size_t I = 0; I < Series->size(); ++I) {
    const JsonValue &Node = Series->elements()[I];
    if (!Node.isObject()) {
      Error = formatString("series[%zu] is not an object", I);
      return false;
    }
    TrendSeries S;
    if (!jsonFieldString(Node, "key", S.Key, Error) ||
        !jsonFieldBool(Node, "page", S.IsPage, Error) ||
        !jsonFieldString(Node, "sharing", S.Sharing, Error)) {
      Error = formatString("series[%zu]: ", I) + Error;
      return false;
    }
    if (S.Key.empty()) {
      Error = formatString("series[%zu]: key must not be empty", I);
      return false;
    }
    if (Out.seriesFor(S.Key)) {
      Error = formatString("series[%zu]: duplicate key '%s'", I,
                           S.Key.c_str());
      return false;
    }
    const JsonValue *Points = Node.find("points");
    if (!Points || !Points->isArray()) {
      Error = formatString("series[%zu]: missing 'points' array", I);
      return false;
    }
    for (size_t P = 0; P < Points->size(); ++P) {
      TrendPoint Point;
      const TrendPoint *Previous = S.Points.empty() ? nullptr
                                                    : &S.Points.back();
      if (!parsePoint(Points->elements()[P], S.IsPage, Out.Runs.size(),
                      Previous, Point, Error)) {
        Error = formatString("series[%zu].points[%zu]: ", I, P) + Error;
        return false;
      }
      S.Points.push_back(std::move(Point));
    }
    Out.Series.push_back(std::move(S));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Run-document ingestion (reports and diff outputs)
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds the NEW run's findings from one section ("findings" or
/// "pageFindings") of a cheetah-diff-v1 document. Added entries carry
/// full counters; matched entries only identity and improvement (the
/// diff schema stores no more).
bool readDiffSection(const JsonValue &Document, const char *Name,
                     bool IsPage, std::vector<DiffFinding> &Out,
                     std::string &Error) {
  const JsonValue *Section = Document.find(Name);
  if (!Section || !Section->isObject()) {
    Error = formatString("diff without a '%s' section", Name);
    return false;
  }
  const JsonValue *Added = Section->find("added");
  const JsonValue *Matched = Section->find("matched");
  if (!Added || !Added->isArray() || !Matched || !Matched->isArray()) {
    Error = formatString("'%s' section without added/matched arrays", Name);
    return false;
  }
  for (size_t I = 0; I < Added->size(); ++I) {
    const JsonValue &Node = Added->elements()[I];
    DiffFinding Finding;
    Finding.IsPage = IsPage;
    bool Ok =
        Node.isObject() && jsonFieldString(Node, "key", Finding.Key, Error) &&
        jsonFieldString(Node, "sharing", Finding.Sharing, Error) &&
        jsonFieldBool(Node, "significant", Finding.Significant, Error) &&
        jsonFieldUint(Node, "accesses", Finding.Accesses, Error) &&
        jsonFieldUint(Node, "invalidations", Finding.Invalidations, Error);
    if (Ok && IsPage)
      Ok = jsonFieldUint(Node, "remote_accesses", Finding.RemoteAccesses,
                         Error);
    if (!Ok) {
      if (!Node.isObject())
        Error = "entry is not an object";
      Error = formatString("%s.added[%zu]: ", Name, I) + Error;
      return false;
    }
    if (const JsonValue *Factor = Node.find("predictedImprovement")) {
      if (Factor->kind() != JsonValue::Kind::Number) {
        Error = formatString(
            "%s.added[%zu]: 'predictedImprovement' is not a number", Name, I);
        return false;
      }
      Finding.Improvement = Factor->asNumber();
      Finding.HasImprovement = true;
    }
    Out.push_back(std::move(Finding));
  }
  for (size_t I = 0; I < Matched->size(); ++I) {
    const JsonValue &Node = Matched->elements()[I];
    DiffFinding Finding;
    Finding.IsPage = IsPage;
    bool Ok = Node.isObject() &&
              jsonFieldString(Node, "key", Finding.Key, Error) &&
              jsonFieldBool(Node, "new_significant", Finding.Significant,
                            Error);
    if (!Ok) {
      if (!Node.isObject())
        Error = "entry is not an object";
      Error = formatString("%s.matched[%zu]: ", Name, I) + Error;
      return false;
    }
    if (const JsonValue *Factor = Node.find("new_improvement")) {
      if (Factor->kind() != JsonValue::Kind::Number) {
        Error = formatString(
            "%s.matched[%zu]: 'new_improvement' is not a number", Name, I);
        return false;
      }
      Finding.Improvement = Factor->asNumber();
      Finding.HasImprovement = true;
    }
    Out.push_back(std::move(Finding));
  }
  return true;
}

bool parseDiffNewRun(const JsonValue &Document, ParsedReport &Out,
                     std::string &Error) {
  Out = ParsedReport();
  Out.Schema = "cheetah-diff-v1";
  const JsonValue *New = Document.find("new");
  if (!New || !New->isObject()) {
    Error = "diff without a 'new' run object";
    return false;
  }
  if (!jsonFieldString(*New, "workload", Out.Workload, Error) ||
      !jsonFieldUint(*New, "threads", Out.Threads, Error) ||
      !jsonFieldBool(*New, "fix_applied", Out.FixApplied, Error) ||
      !jsonFieldString(*New, "granularity", Out.Granularity, Error) ||
      !jsonFieldUint(*New, "app_runtime_cycles", Out.AppRuntimeCycles,
                     Error)) {
    Error = "diff 'new' run: " + Error;
    return false;
  }
  // Keys in a diff document already carry their "#N" ordinals; they must
  // not be disambiguated a second time.
  if (!readDiffSection(Document, "findings", /*IsPage=*/false, Out.Findings,
                       Error) ||
      !readDiffSection(Document, "pageFindings", /*IsPage=*/true,
                       Out.PageFindings, Error))
    return false;
  return true;
}

} // namespace

bool cheetah::core::parseRunDocument(const std::string &Text,
                                     ParsedReport &Out, std::string &Error) {
  JsonValue Document;
  if (!JsonValue::parse(Text, Document, Error)) {
    Error = "invalid JSON: " + Error;
    return false;
  }
  if (Document.isObject()) {
    const JsonValue *Schema = Document.find("schema");
    if (Schema && Schema->kind() == JsonValue::Kind::String &&
        Schema->asString() == "cheetah-diff-v1")
      return parseDiffNewRun(Document, Out, Error);
  }
  // Everything else goes through the report parser, whose version gate
  // produces the loud unsupported-schema error.
  return parseReport(Text, Out, Error);
}

//===----------------------------------------------------------------------===//
// Fleet-wide text view
//===----------------------------------------------------------------------===//

std::string cheetah::core::formatHistoryText(const ReportHistory &History,
                                             size_t Limit) {
  std::string Out;
  Out += formatString("cheetah-trend: %zu run(s), %zu tracked finding(s)\n",
                      History.runs().size(), History.series().size());
  for (size_t I = 0; I < History.runs().size(); ++I) {
    const HistoryRunInfo &Run = History.runs()[I];
    Out += formatString(
        "  [%zu] %s  %s  %llu threads  fix %s  runtime %llu cycles  "
        "(%llu new, %llu resolved, %llu matched)\n",
        I, Run.Id.c_str(), Run.Workload.c_str(),
        static_cast<unsigned long long>(Run.Threads),
        Run.FixApplied ? "on" : "off",
        static_cast<unsigned long long>(Run.AppRuntimeCycles),
        static_cast<unsigned long long>(Run.NewFindings),
        static_cast<unsigned long long>(Run.ResolvedFindings),
        static_cast<unsigned long long>(Run.MatchedFindings));
  }
  if (History.runs().empty())
    return Out;

  // Current = the last stored run; ranked worst-first.
  uint32_t Last = static_cast<uint32_t>(History.runs().size()) - 1;
  struct Row {
    const TrendSeries *Series;
    const TrendPoint *Point;
    double Best;
    bool HasBest;
  };
  std::vector<Row> Ranked;
  size_t Unranked = 0;
  for (const TrendSeries &S : History.series()) {
    const TrendPoint *Point = S.pointAt(Last);
    if (!Point)
      continue;
    if (!Point->Significant || !Point->HasImprovement) {
      ++Unranked;
      continue;
    }
    Row R;
    R.Series = &S;
    R.Point = Point;
    R.Best = S.bestBefore(Last, R.HasBest);
    Ranked.push_back(R);
  }
  std::sort(Ranked.begin(), Ranked.end(), [](const Row &A, const Row &B) {
    if (A.Point->Improvement != B.Point->Improvement)
      return A.Point->Improvement > B.Point->Improvement;
    return A.Series->Key < B.Series->Key;
  });

  Out += formatString("== current findings (run %u, worst first) ==\n", Last);
  if (Ranked.empty())
    Out += "  none - the fleet is clean\n";
  size_t Shown = 0;
  for (const Row &R : Ranked) {
    if (Limit && Shown++ >= Limit) {
      Out += formatString("  ... %zu more\n", Ranked.size() - Limit);
      break;
    }
    std::string Best =
        R.HasBest ? formatString("best %.4fx, delta %+.4f", R.Best,
                                 R.Point->Improvement - R.Best)
                  : std::string("no history");
    Out += formatString("  %.4fx  %s  %s  %s\n", R.Point->Improvement,
                        R.Series->Key.c_str(), R.Series->Sharing.c_str(),
                        Best.c_str());
  }
  if (Unranked)
    Out += formatString(
        "  (%zu current finding(s) insignificant or unassessed)\n", Unranked);

  // The regression lens: who moved away from their best the furthest.
  std::vector<Row> Regressed;
  for (const Row &R : Ranked)
    if (R.HasBest && R.Point->Improvement > R.Best)
      Regressed.push_back(R);
  std::sort(Regressed.begin(), Regressed.end(),
            [](const Row &A, const Row &B) {
              double DeltaA = A.Point->Improvement - A.Best;
              double DeltaB = B.Point->Improvement - B.Best;
              if (DeltaA != DeltaB)
                return DeltaA > DeltaB;
              return A.Series->Key < B.Series->Key;
            });
  Out += "== biggest regressions vs best ==\n";
  if (Regressed.empty())
    Out += "  none\n";
  Shown = 0;
  for (const Row &R : Regressed) {
    if (Limit && Shown++ >= Limit) {
      Out += formatString("  ... %zu more\n", Regressed.size() - Limit);
      break;
    }
    Out += formatString("  %+.4f  %s  %.4fx (best %.4fx)\n",
                        R.Point->Improvement - R.Best, R.Series->Key.c_str(),
                        R.Point->Improvement, R.Best);
  }
  return Out;
}
