//===- core/report/ReportSink.cpp - Streaming report consumers ------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/report/ReportSink.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

//===----------------------------------------------------------------------===//
// TextReportSink
//===----------------------------------------------------------------------===//

void TextReportSink::beginRun(const ReportRunInfo &Info) {
  // Run identity is the caller's banner in text mode (the CLI prints its
  // own header); the text stream carries findings and the run totals only.
  (void)Info;
}

void TextReportSink::finding(const FalseSharingReport &Report,
                             bool Significant) {
  if (!Significant && !Opts.IncludeInsignificant)
    return;
  Out += formatReport(Report, Opts.Format);
  Out += "\n";
  // The summary table only reads scalar fields and the leading callsite
  // frame; buffer a trimmed copy so streaming does not hold every
  // finding's word table and thread predictions until endRun.
  FalseSharingReport Row = Report;
  Row.Words.clear();
  Row.Impact.Threads.clear();
  if (Row.Object.CallsiteFrames.size() > 1)
    Row.Object.CallsiteFrames.resize(1);
  SummaryRows.push_back(std::move(Row));
  ++Rendered;
}

void TextReportSink::pageFinding(const PageSharingReport &Report,
                                 bool Significant) {
  if (!Significant && !Opts.IncludeInsignificant)
    return;
  Out += formatPageReport(Report, Opts.Format);
  Out += "\n";
  ++PagesRendered;
}

void TextReportSink::endRun(const ReportRunStats &Stats) {
  if (Rendered == 0 && PagesRendered == 0)
    Out += "No significant false sharing detected.\n";
  else if (Rendered > 0)
    Out += formatSummaryTable(SummaryRows);
  if (Stats.PageFindings)
    Out += formatString(
        "page totals: %s page findings (%s significant) over %s "
        "materialized pages\n",
        formatWithCommas(Stats.PageFindings).c_str(),
        formatWithCommas(Stats.SignificantPageFindings).c_str(),
        formatWithCommas(Stats.MaterializedPages).c_str());
  // Distinct wording from the CLI's own "runtime ... cycles" banner so the
  // two lines never read (or grep) as duplicates.
  Out += formatString(
      "report totals: %s findings (%s significant) from %s samples over "
      "%s cycles\n",
      formatWithCommas(Stats.Findings).c_str(),
      formatWithCommas(Stats.SignificantFindings).c_str(),
      formatWithCommas(Stats.SamplesDelivered).c_str(),
      formatWithCommas(Stats.AppRuntime).c_str());
}

//===----------------------------------------------------------------------===//
// JsonReportSink
//===----------------------------------------------------------------------===//

void JsonReportSink::beginRun(const ReportRunInfo &Info) {
  InPageArray = false;
  Writer.beginObject();
  Writer.member("schema", "cheetah-report-v4");
  Writer.key("run");
  Writer.beginObject();
  Writer.member("tool", Info.Tool);
  Writer.member("workload", Info.Workload);
  Writer.member("threads", Info.Threads);
  Writer.member("scale", Info.Scale);
  Writer.member("line_size", Info.LineSize);
  Writer.member("sampling_period", Info.SamplingPeriod);
  Writer.member("seed", Info.Seed);
  Writer.member("fix_applied", Info.FixApplied);
  Writer.member("numa_nodes", Info.NumaNodes);
  Writer.member("page_size", Info.PageSize);
  Writer.member("granularity", Info.Granularity);
  Writer.endObject();
  Writer.key("findings");
  Writer.beginArray();
}

void JsonReportSink::finding(const FalseSharingReport &Report,
                             bool Significant) {
  Writer.beginObject();

  Writer.key("object");
  Writer.beginObject();
  const ReportedObject &Object = Report.Object;
  if (!Object.IsHeap) {
    Writer.member("kind", "global");
    Writer.member("name", Object.GlobalName);
  } else if (!Object.CallsiteFrames.empty()) {
    Writer.member("kind", "heap");
    Writer.member("name", Object.CallsiteFrames.front());
  } else {
    // Arena line with no attributable allocation (allocator metadata or a
    // freed region).
    Writer.member("kind", "range");
    Writer.member("name", "");
  }
  Writer.key("callsite");
  Writer.beginArray();
  for (const std::string &Frame : Object.CallsiteFrames)
    Writer.value(Frame);
  Writer.endArray();
  Writer.member("start", Object.Start);
  Writer.member("size", Object.Size);
  Writer.member("requested_size", Object.RequestedSize);
  Writer.member("allocated_by", Object.AllocatedBy);
  Writer.endObject();

  Writer.member("sharing", sharingKindName(Report.Kind));
  Writer.member("significant", Significant);
  Writer.member("predictedImprovement", Report.Impact.ImprovementFactor);
  Writer.member("lines_tracked", Report.LinesTracked);
  Writer.member("accesses", Report.SampledAccesses);
  Writer.member("writes", Report.SampledWrites);
  Writer.member("invalidations", Report.Invalidations);
  Writer.member("latency_cycles", Report.LatencyCycles);
  Writer.member("threads_observed", Report.ThreadsObserved);
  Writer.member("shared_word_fraction", Report.SharedWordFraction);

  writeAssessment(Report.Impact);

  Writer.key("words");
  Writer.beginArray();
  size_t Limit = Opts.MaxWords == 0
                     ? Report.Words.size()
                     : std::min(Opts.MaxWords, Report.Words.size());
  for (size_t I = 0; I < Limit; ++I) {
    const WordReportEntry &Word = Report.Words[I];
    Writer.beginObject();
    Writer.member("offset", Word.Offset);
    Writer.member("reads", Word.Reads);
    Writer.member("writes", Word.Writes);
    Writer.member("cycles", Word.Cycles);
    Writer.member("first_thread", Word.FirstThread);
    Writer.member("multi_thread", Word.MultiThread);
    Writer.endObject();
  }
  Writer.endArray();

  Writer.endObject();
}

void JsonReportSink::writeAssessment(const Assessment &Impact) {
  Writer.key("assessment");
  Writer.beginObject();
  Writer.member("improvement_factor", Impact.ImprovementFactor);
  Writer.member("improvement_percent", Impact.improvementPercent());
  Writer.member("real_runtime_cycles", Impact.RealAppRuntime);
  Writer.member("predicted_runtime_cycles", Impact.PredictedAppRuntime);
  Writer.member("average_nofs_latency", Impact.AverageNoFsLatency);
  Writer.member("used_default_latency", Impact.UsedDefaultLatency);
  Writer.member("fork_join_model", Impact.ForkJoinModel);
  Writer.endObject();
}

void JsonReportSink::startPageArray() {
  if (InPageArray)
    return;
  Writer.endArray(); // findings
  Writer.key("pageFindings");
  Writer.beginArray();
  InPageArray = true;
}

void JsonReportSink::pageFinding(const PageSharingReport &Report,
                                 bool Significant) {
  startPageArray();
  Writer.beginObject();
  Writer.member("page", Report.PageBase);
  Writer.member("page_size", Report.PageSize);
  Writer.member("home_node", Report.HomeNode);
  Writer.member("nodes", Report.NodesObserved);
  Writer.member("sharing", sharingKindName(Report.Kind));
  Writer.member("significant", Significant);
  Writer.member("predictedImprovement", Report.Impact.ImprovementFactor);
  Writer.member("accesses", Report.SampledAccesses);
  Writer.member("writes", Report.SampledWrites);
  Writer.member("remote_accesses", Report.RemoteAccesses);
  Writer.member("remote_fraction", Report.remoteFraction());
  Writer.member("invalidations", Report.Invalidations);
  Writer.member("latency_cycles", Report.LatencyCycles);
  Writer.member("remote_latency_cycles", Report.RemoteLatencyCycles);

  // The v4 distance breakdown: which node pairs the remote traffic
  // crossed. Bucket accesses sum to remote_accesses, cycles to
  // remote_latency_cycles.
  Writer.key("remote_by_distance");
  Writer.beginArray();
  for (const RemoteDistanceStats &Bucket : Report.RemoteByDistance) {
    Writer.beginObject();
    Writer.member("distance", Bucket.Distance);
    Writer.member("accesses", Bucket.Accesses);
    Writer.member("cycles", Bucket.Cycles);
    Writer.endObject();
  }
  Writer.endArray();

  Writer.member("shared_line_fraction", Report.SharedLineFraction);
  writeAssessment(Report.Impact);

  Writer.key("objects");
  Writer.beginArray();
  for (const std::string &Name : Report.Objects)
    Writer.value(Name);
  Writer.endArray();

  Writer.key("lines");
  Writer.beginArray();
  size_t Limit = Opts.MaxWords == 0
                     ? Report.Lines.size()
                     : std::min(Opts.MaxWords, Report.Lines.size());
  for (size_t I = 0; I < Limit; ++I) {
    const PageLineEntry &Line = Report.Lines[I];
    Writer.beginObject();
    Writer.member("offset", Line.Offset);
    Writer.member("reads", Line.Reads);
    Writer.member("writes", Line.Writes);
    Writer.member("cycles", Line.Cycles);
    Writer.member("first_node", Line.FirstNode);
    Writer.member("multi_node", Line.MultiNode);
    Writer.endObject();
  }
  Writer.endArray();

  Writer.endObject();
}

void JsonReportSink::endRun(const ReportRunStats &Stats) {
  // The document always carries both arrays; a line-only run emits an
  // empty pageFindings so consumers never branch on key presence.
  startPageArray();
  Writer.endArray(); // pageFindings
  Writer.key("summary");
  Writer.beginObject();
  Writer.member("findings", Stats.Findings);
  Writer.member("significant_findings", Stats.SignificantFindings);
  Writer.member("page_findings", Stats.PageFindings);
  Writer.member("significant_page_findings", Stats.SignificantPageFindings);
  Writer.member("app_runtime_cycles", Stats.AppRuntime);
  Writer.member("samples", Stats.SamplesDelivered);
  Writer.member("serial_samples", Stats.SerialSamples);
  Writer.member("serial_avg_latency", Stats.SerialAverageLatency);
  Writer.member("fork_join", Stats.ForkJoinVerified);
  Writer.member("materialized_lines",
                static_cast<uint64_t>(Stats.MaterializedLines));
  Writer.member("shadow_bytes", static_cast<uint64_t>(Stats.ShadowBytes));
  Writer.member("materialized_pages",
                static_cast<uint64_t>(Stats.MaterializedPages));
  Writer.member("page_shadow_bytes",
                static_cast<uint64_t>(Stats.PageShadowBytes));
  // Emitted only when a bounded-memory run actually evicted grains, so
  // budget-never-hit runs stay byte-identical to unbounded ones (the
  // golden suite depends on this).
  if (Stats.LineEviction.Evicted.Grains || Stats.PageEviction.Evicted.Grains) {
    auto WriteStage = [&](const char *Key, const ReportEvictionStats &Stage) {
      Writer.key(Key);
      Writer.beginObject();
      Writer.member("budget_bytes", static_cast<uint64_t>(Stage.BudgetBytes));
      Writer.member("footprint_bytes",
                    static_cast<uint64_t>(Stage.FootprintBytes));
      Writer.member("evicted_grains", Stage.Evicted.Grains);
      Writer.member("accesses", Stage.Evicted.Accesses);
      Writer.member("writes", Stage.Evicted.Writes);
      Writer.member("cycles", Stage.Evicted.Cycles);
      Writer.member("invalidations", Stage.Evicted.Invalidations);
      Writer.member("remote_accesses", Stage.Evicted.RemoteAccesses);
      Writer.endObject();
    };
    Writer.key("eviction");
    Writer.beginObject();
    WriteStage("line", Stats.LineEviction);
    WriteStage("page", Stats.PageEviction);
    Writer.endObject();
  }
  Writer.key("detector");
  Writer.beginObject();
  Writer.member("seen", Stats.Detection.SamplesSeen);
  Writer.member("filtered", Stats.Detection.SamplesFiltered);
  Writer.member("recorded", Stats.Detection.SamplesRecorded);
  Writer.member("invalidations", Stats.Detection.Invalidations);
  Writer.member("page_recorded", Stats.Detection.PageSamplesRecorded);
  Writer.member("page_invalidations", Stats.Detection.PageInvalidations);
  Writer.member("remote_samples", Stats.Detection.RemoteSamples);
  Writer.endObject();
  Writer.endObject();
  Writer.endObject();
  Out += "\n";
}
