//===- core/report/ReportHistory.h - N-run trend history -------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-scale aggregation layer behind `cheetah-trend`: an ordered
/// sequence of profiler runs folded into one versioned
/// `cheetah-history-v1` store with a per-finding trend series. Where
/// `cheetah-diff` answers "what changed between these two reports?",
/// this layer answers the continuous-profiling questions: which finding
/// is currently worst fleet-wide, which one regressed relative to the
/// best state it ever reached, and exactly which run introduced that
/// regression (binary-searched, git-bisect style).
///
/// Findings are correlated across runs with the same site-identity keys
/// `cheetah-diff` uses (FindingMatch.h): keys survive relayouts, so a
/// series follows "the hot page of `numa_slots`" across weeks of runs,
/// not an address. Runs enter in append order and are immutable once
/// stored; serialization is deterministic (appending the same run
/// sequence twice yields byte-identical stores) and the parser applies
/// the same loud-error contract as the report/diff parsers — version
/// gate, kind-checked fields, duplicate run ids rejected, never a crash
/// on hostile input.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_REPORT_REPORTHISTORY_H
#define CHEETAH_CORE_REPORT_REPORTHISTORY_H

#include "core/report/ReportDiff.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {
namespace core {

/// Identity and summary of one stored run.
struct HistoryRunInfo {
  /// Caller-chosen unique id ("nightly-2026-08-08", CI build number...).
  std::string Id;
  std::string Workload;
  uint64_t Threads = 0;
  bool FixApplied = false;
  std::string Granularity;
  /// Schema of the ingested document ("cheetah-report-v4",
  /// "cheetah-diff-v1", ...), kept for provenance.
  std::string SourceSchema;
  uint64_t AppRuntimeCycles = 0;
  /// Findings that appeared / disappeared / persisted relative to the
  /// previous stored run (all zero for the first run except NewFindings).
  uint64_t NewFindings = 0;
  uint64_t ResolvedFindings = 0;
  uint64_t MatchedFindings = 0;
};

/// One run's observation of one finding.
struct TrendPoint {
  /// Index into ReportHistory::runs(). Strictly increasing within a
  /// series; runs without a point simply have none (the finding was
  /// absent — i.e. resolved or not yet introduced — in that run).
  uint32_t RunIndex = 0;
  bool Significant = false;
  bool HasImprovement = false;
  double Improvement = 1.0;
  uint64_t Accesses = 0;
  uint64_t Invalidations = 0;
  /// Page findings only.
  uint64_t RemoteAccesses = 0;
  /// v4 page findings only.
  std::vector<RemoteDistanceStats> RemoteByDistance;
};

/// The full observed trajectory of one finding key across the store.
struct TrendSeries {
  std::string Key;
  bool IsPage = false;
  /// Sharing kind from the most recent observation.
  std::string Sharing;
  std::vector<TrendPoint> Points;

  /// \returns the point recorded at \p RunIndex, or nullptr.
  const TrendPoint *pointAt(uint32_t RunIndex) const;

  /// Best (lowest) improvement over runs strictly before \p RunIndex.
  /// A run where the finding was absent counts as 1.0 — being resolved
  /// is the best state a finding can reach — so \p HasBest is false only
  /// when \p RunIndex is 0 (no history at all). Points without an
  /// improvement factor (v2 page findings) are skipped.
  double bestBefore(uint32_t RunIndex, bool &HasBest) const;
};

/// One finding tripping the N-run regression gate.
struct HistoryGateViolation {
  enum class Kind { NewSite, Crossed, Grew };
  std::string Key;
  bool IsPage = false;
  Kind Why = Kind::NewSite;
  double Improvement = 0.0;
  /// Best historical value (see TrendSeries::bestBefore); 1.0 for
  /// new-in-first-run sites (no history).
  double Best = 1.0;
};

/// Outcome of a regression bisection over the stored runs.
struct BisectResult {
  bool Valid = false;
  std::string Error;
  /// Index/id of the run that introduced the regression.
  uint32_t IntroducedIndex = 0;
  std::string IntroducedRunId;
  /// True when even the first stored run was already regressing — the
  /// culprit predates the store and IntroducedIndex is 0 by convention.
  bool BadFromStart = false;
  /// Predicate evaluations the binary search spent (what a real CI
  /// bisection would pay in re-runs).
  uint32_t Probes = 0;
};

/// The history store: runs plus per-finding trend series.
class ReportHistory {
public:
  /// Appends \p Report as the next run under \p RunId. Fails (leaving the
  /// store untouched) on an empty or duplicate run id. Finding keys are
  /// taken as parseReport/parseRunDocument produced them — already
  /// ordinal-disambiguated within the run.
  bool appendRun(const ParsedReport &Report, const std::string &RunId,
                 std::string &Error);

  const std::vector<HistoryRunInfo> &runs() const { return Runs; }
  /// Series in order of first appearance (deterministic).
  const std::vector<TrendSeries> &series() const { return Series; }
  /// \returns the series for \p Key, or nullptr.
  const TrendSeries *seriesFor(const std::string &Key) const;

  /// The N-run generalization of cheetah-diff's --gate: a violation is a
  /// *significant* finding in the LAST stored run whose improvement is at
  /// or above \p Factor and that (a) has no earlier history (new site),
  /// (b) was below the factor at its best historical value (crossed), or
  /// (c) grew beyond that best by more than \p Tolerance. A finding that
  /// has been at a stable factor since the first run never trips — the
  /// gate guards regressions, not known-broken fleets. Ordered
  /// worst-first (by improvement, then key).
  std::vector<HistoryGateViolation> gate(double Factor,
                                         double Tolerance = 1e-9) const;

  /// Binary-searches the stored runs for the one that introduced the
  /// regression of \p Key at \p Factor (the finding present, significant,
  /// and at or above the factor). Requires the last run to be regressing;
  /// mirrors git bisect: with a flapping history it still returns *a*
  /// good-to-bad transition. Invalid keys or a clean last run produce
  /// Valid=false with a descriptive Error.
  BisectResult bisect(const std::string &Key, double Factor) const;

  /// Serializes the store as canonical `cheetah-history-v1` JSON.
  /// Deterministic: equal stores produce identical bytes, and
  /// parse(serialize()) re-serializes byte-identically.
  std::string serialize() const;

  /// Parses a serialized store. Loud-error contract: version gate on
  /// `cheetah-history-v1`, kind-checked fields, duplicate run ids and
  /// out-of-range / non-increasing point indices rejected; never crashes
  /// on hostile input (the fuzz suite pins that).
  static bool parse(const std::string &Text, ReportHistory &Out,
                    std::string &Error);

private:
  TrendSeries &seriesForAppend(const DiffFinding &Finding);

  std::vector<HistoryRunInfo> Runs;
  std::vector<TrendSeries> Series;
};

/// Parses one ingestible document: a `cheetah-report-v2..v4` report, or a
/// `cheetah-diff-v1` document, whose NEW side is extracted as the run
/// (added findings carry full counters; matched ones only their
/// improvement, the diff schema stores no more). Same loud-error
/// contract as parseReport.
bool parseRunDocument(const std::string &Text, ParsedReport &Out,
                      std::string &Error);

/// Renders the fleet-wide trend view `cheetah-trend show` prints: run
/// ledger, the worst current findings ranked by improvement (at most
/// \p Limit, 0 = all), and the biggest current-vs-best deltas.
/// Deterministic and byte-stable for equal stores.
std::string formatHistoryText(const ReportHistory &History,
                              size_t Limit = 0);

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_REPORT_REPORTHISTORY_H
