//===- core/report/FindingMatch.h - Cross-run finding identity -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The finding-identity layer shared by every tool that correlates
/// findings across profiler runs (`cheetah-diff` for pairs,
/// `cheetah-trend` for N-run history stores): the reduced per-finding
/// record extracted from a parsed report, the site-key disambiguation
/// that keeps repeated keys (many pages of one array) positionally
/// stable, and the added/removed/matched classification between two
/// runs' finding lists.
///
/// Identity is deliberately *site-based*, not address-based: a line
/// finding is keyed by its object kind and callsite/global name, a page
/// finding by the set of object names overlapping the page. Fixed
/// variants relocate objects (padding changes sizes and addresses), so
/// address keys would make every broken-vs-fixed comparison degenerate
/// to "everything added, everything removed".
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_REPORT_FINDINGMATCH_H
#define CHEETAH_CORE_REPORT_FINDINGMATCH_H

#include "mem/NumaTopology.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {
namespace core {

/// One finding extracted from a parsed report, at either granularity,
/// reduced to what cross-run correlation needs.
struct DiffFinding {
  /// Stable matching identity (site key + ordinal; see file comment).
  std::string Key;
  /// Sharing kind string exactly as emitted ("false-sharing", ...).
  std::string Sharing;
  /// True for a page finding, false for a line (object) finding.
  bool IsPage = false;
  bool Significant = false;
  /// Predicted whole-program improvement factor from fixing the finding.
  /// v2 page findings predate page assessment and carry none
  /// (HasImprovement false, Improvement 1.0).
  double Improvement = 1.0;
  bool HasImprovement = false;
  uint64_t Accesses = 0;
  uint64_t Invalidations = 0;
  /// Page findings only.
  uint64_t RemoteAccesses = 0;
  /// Remote traffic by crossed node-pair distance; only v4 page findings
  /// carry it (empty otherwise).
  std::vector<RemoteDistanceStats> RemoteByDistance;
};

/// One finding present in both of two compared runs.
struct MatchedFinding {
  DiffFinding Old;
  DiffFinding New;

  double improvementDelta() const {
    return New.Improvement - Old.Improvement;
  }
};

/// Appends "#N" ordinals so repeated site keys (many pages of one array)
/// stay distinct and pair positionally across runs. Both report sinks
/// emit findings deterministically (best-first), which is what makes the
/// positional pairing meaningful.
void disambiguateKeys(std::vector<DiffFinding> &Findings);

/// Splits \p New against \p Old by key: every new finding either claims
/// its counterpart (-> \p Matched) or lands in \p Added; old findings
/// nobody claimed land in \p Removed, preserving old-report order.
void matchFindings(const std::vector<DiffFinding> &Old,
                   const std::vector<DiffFinding> &New,
                   std::vector<DiffFinding> &Added,
                   std::vector<DiffFinding> &Removed,
                   std::vector<MatchedFinding> &Matched);

/// "1.2345x" for findings carrying an improvement factor, "n/a"
/// otherwise — the shared rendering both CLIs use.
std::string improvementString(const DiffFinding &Finding);

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_REPORT_FINDINGMATCH_H
