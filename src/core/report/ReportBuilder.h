//===- core/report/ReportBuilder.h - Incremental report builder -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental object-level report construction. The PR-1 design aggregated
/// every materialized cache line inside Profiler::finish in one monolithic
/// pass; this builder accepts lines one at a time as they quiesce
/// (addLine), folds each into its owning object's aggregate, and at
/// finalize() assesses every object and streams the findings — highest
/// predicted improvement first — through an optional ReportSink while also
/// returning them as vectors for programmatic consumers.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_REPORT_REPORTBUILDER_H
#define CHEETAH_CORE_REPORT_REPORTBUILDER_H

#include "core/assess/Assessor.h"
#include "core/detect/GrainInfo.h"
#include "core/detect/SharingClassifier.h"
#include "core/report/Report.h"
#include "core/report/ReportSink.h"
#include "mem/CacheGeometry.h"
#include "runtime/Callsite.h"
#include "runtime/GlobalRegistry.h"
#include "runtime/HeapAllocator.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cheetah {
namespace core {

/// The profiler's significance gate ("Cheetah only reports false sharing
/// instances with a significant performance impact").
struct ReportGate {
  uint64_t MinInvalidations = 16;
  double MinImprovementFactor = 1.005;
  /// Include Mixed-sharing objects among reportable instances.
  bool ReportMixedSharing = true;
};

/// Streams materialized lines in, findings out.
class ReportBuilder {
public:
  ReportBuilder(const runtime::HeapAllocator &Heap,
                const runtime::GlobalRegistry &Globals,
                const runtime::CallsiteTable &Callsites,
                const SharingClassifier &Classifier,
                const CacheGeometry &Geometry, const ReportGate &Gate);
  ~ReportBuilder();

  /// Folds one quiesced line — as the granularity-neutral GrainSnapshot
  /// the detection core emits — into its owning object's aggregate. Lines
  /// may arrive in any order; a line with zero recorded accesses is
  /// skipped.
  void addLine(const GrainSnapshot &Line);

  /// Number of objects aggregated so far.
  size_t objectCount() const { return Aggregates.size(); }

  /// Everything finalize() produces.
  struct Output {
    /// Significant instances, highest predicted improvement first. This is
    /// what Cheetah prints.
    std::vector<FalseSharingReport> Reports;
    /// Every tracked object (including true sharing and insignificant
    /// instances) for tests and ablations, same order.
    std::vector<FalseSharingReport> AllInstances;
  };

  /// Assesses every aggregated object, applies the gate, sorts by
  /// predicted improvement, and — when \p Sink is non-null — streams each
  /// finding through it (sink order matches AllInstances). beginRun/endRun
  /// remain the caller's responsibility: the caller owns run-level
  /// metadata the builder never sees.
  Output finalize(const Assessor &Assess, uint64_t AppRuntime,
                  ReportSink *Sink = nullptr);

private:
  struct ObjectAggregate;

  ObjectAggregate &aggregateFor(uint64_t LineBase);
  FalseSharingReport buildReport(const ObjectAggregate &Aggregate,
                                 const Assessor &Assess,
                                 uint64_t AppRuntime) const;

  const runtime::HeapAllocator &Heap;
  const runtime::GlobalRegistry &Globals;
  const runtime::CallsiteTable &Callsites;
  const SharingClassifier &Classifier;
  CacheGeometry Geometry;
  ReportGate Gate;
  std::unordered_map<uint64_t, ObjectAggregate> Aggregates;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_REPORT_REPORTBUILDER_H
