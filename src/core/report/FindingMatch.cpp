//===- core/report/FindingMatch.cpp - Cross-run finding identity ----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/report/FindingMatch.h"

#include "support/StringUtils.h"

#include <map>

using namespace cheetah;
using namespace cheetah::core;

void cheetah::core::disambiguateKeys(std::vector<DiffFinding> &Findings) {
  std::map<std::string, uint32_t> Seen;
  for (DiffFinding &Finding : Findings)
    Finding.Key += formatString("#%u", Seen[Finding.Key]++);
}

void cheetah::core::matchFindings(const std::vector<DiffFinding> &Old,
                                  const std::vector<DiffFinding> &New,
                                  std::vector<DiffFinding> &Added,
                                  std::vector<DiffFinding> &Removed,
                                  std::vector<MatchedFinding> &Matched) {
  std::map<std::string, const DiffFinding *> OldByKey;
  for (const DiffFinding &Finding : Old)
    OldByKey.emplace(Finding.Key, &Finding);
  for (const DiffFinding &Finding : New) {
    auto It = OldByKey.find(Finding.Key);
    if (It == OldByKey.end()) {
      Added.push_back(Finding);
      continue;
    }
    Matched.push_back({*It->second, Finding});
    OldByKey.erase(It);
  }
  // Preserve old-report order for removed findings (map order is by key).
  for (const DiffFinding &Finding : Old)
    if (OldByKey.count(Finding.Key))
      Removed.push_back(Finding);
}

std::string cheetah::core::improvementString(const DiffFinding &Finding) {
  if (!Finding.HasImprovement)
    return "n/a";
  return formatString("%.4fx", Finding.Improvement);
}
