//===- core/report/PageReportBuilder.cpp - Page finding builder -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/report/PageReportBuilder.h"

#include <algorithm>
#include <map>

using namespace cheetah;
using namespace cheetah::core;

PageReportBuilder::PageReportBuilder(const runtime::HeapAllocator &Heap,
                                     const runtime::GlobalRegistry &Globals,
                                     const runtime::CallsiteTable &Callsites,
                                     const SharingClassifier &Classifier,
                                     const NumaTopology &Topology,
                                     const CacheGeometry &Geometry,
                                     const PageReportGate &Gate)
    : Heap(Heap), Globals(Globals), Callsites(Callsites),
      Classifier(Classifier), Topology(Topology), Geometry(Geometry),
      Gate(Gate) {}

PageReportBuilder::PendingPage
PageReportBuilder::buildReport(const GrainSnapshot &Page, NodeId Home,
                               const PageNumaEvidence &Numa) const {
  PendingPage Pending;
  PageSharingReport &Report = Pending.Report;
  Report.PageBase = Page.Base;
  Report.PageSize = Topology.pageSize();
  Report.HomeNode = Home;
  Report.SampledAccesses = Page.Accesses;
  Report.SampledWrites = Page.Writes;
  Report.RemoteAccesses = Numa.RemoteAccesses;
  Report.Invalidations = Page.Invalidations;
  Report.LatencyCycles = Page.Cycles;
  Report.RemoteLatencyCycles = Numa.RemoteCycles;
  Report.RemoteByDistance = Numa.RemoteByDistance;
  Report.NodesObserved = static_cast<uint32_t>(Numa.NodesObserved);

  // The snapshot's one consistent view serves classification and the
  // per-line entries. The classifier is the word-granularity one applied
  // unchanged: lines are the page's "words", nodes are its "threads".
  const std::vector<WordStats> &Lines = Page.Buckets;
  LineClassification Verdict =
      Classifier.classify(Lines, Report.NodesObserved);
  Report.Kind = Verdict.Kind;
  Report.SharedLineFraction = Verdict.sharedFraction();

  for (size_t L = 0; L < Lines.size(); ++L) {
    if (Lines[L].accesses() == 0)
      continue;
    PageLineEntry Entry;
    Entry.Offset = L << Geometry.lineShift();
    Entry.Reads = Lines[L].Reads;
    Entry.Writes = Lines[L].Writes;
    Entry.Cycles = Lines[L].Cycles;
    Entry.FirstNode = Lines[L].FirstThread; // node id in the thread field
    Entry.MultiNode = Lines[L].MultiThread;
    Report.Lines.push_back(Entry);

    // Attribute the touched line to its owning object so the finding names
    // what to move, not just a raw page address.
    uint64_t LineAddress = Page.Base + Entry.Offset;
    std::string Name;
    if (const runtime::HeapObject *Object = Heap.objectAt(LineAddress)) {
      const auto &Frames = Callsites.get(Object->Site).Frames;
      Name = Frames.empty() ? std::string("<heap>") : Frames.front();
    } else if (const runtime::GlobalVariable *Var =
                   Globals.globalAt(LineAddress)) {
      Name = Var->Name;
    }
    if (!Name.empty() &&
        std::find(Report.Objects.begin(), Report.Objects.end(), Name) ==
            Report.Objects.end())
      Report.Objects.push_back(Name);
  }

  // Hottest lines first for the placement-guidance table.
  std::sort(Report.Lines.begin(), Report.Lines.end(),
            [](const PageLineEntry &A, const PageLineEntry &B) {
              if (A.Reads + A.Writes != B.Reads + B.Writes)
                return A.Reads + A.Writes > B.Reads + B.Writes;
              return A.Offset < B.Offset;
            });

  // The per-thread evidence EQ.2 consumes, plus the remote totals the
  // EQ.1 local baseline is derived from.
  Pending.Profile.SampledAccesses = Report.SampledAccesses;
  Pending.Profile.SampledWrites = Report.SampledWrites;
  Pending.Profile.SampledCycles = Report.LatencyCycles;
  Pending.Profile.Invalidations = Report.Invalidations;
  Pending.Profile.RemoteAccesses = Report.RemoteAccesses;
  Pending.Profile.RemoteCycles = Report.RemoteLatencyCycles;
  // The assessment becomes distance-weighted only when distances actually
  // differ; uniform topologies (the binary local/remote model) keep the
  // pre-distance arithmetic — and thus their goldens — bit for bit.
  if (!Topology.uniformRemoteDistances())
    Pending.Profile.RemoteByDistance = Report.RemoteByDistance;
  Pending.Profile.PerThread = Page.Threads;
  return Pending;
}

void PageReportBuilder::addPage(const GrainSnapshot &Page, NodeId Home,
                                const PageNumaEvidence &Numa) {
  if (Page.Accesses == 0)
    return;
  PendingPage Built = buildReport(Page, Home, Numa);
  LocalAccesses += Built.Profile.localAccesses();
  LocalCycles += Built.Profile.localCycles();
  Pending.push_back(std::move(Built));
}

PageReportBuilder::Output PageReportBuilder::finalize(const Assessor &Assess,
                                                      uint64_t AppRuntime,
                                                      ReportSink *Sink) {
  // The unit of *fix* for a page finding is the allocation site's
  // placement policy (page-aligned node-local slots, parallel first
  // touch): fixing it moves every page of the site at once. Assessing a
  // lone page against EQ.4's phase-max composition would predict ~1.0
  // whenever sibling pages keep other threads slow, so pages are grouped
  // by overlapping-object identity and each finding carries the predicted
  // improvement of fixing its whole site — exactly how the line layer
  // aggregates cache lines into objects before assessing.
  std::map<std::string, ObjectAccessProfile> SiteProfiles;
  auto SiteKey = [](const PageSharingReport &Report) {
    if (Report.Objects.empty())
      return std::string("@") + std::to_string(Report.PageBase);
    std::string Key;
    for (const std::string &Name : Report.Objects) {
      if (!Key.empty())
        Key += "+";
      Key += Name;
    }
    return Key;
  };
  std::vector<std::string> Keys;
  Keys.reserve(Pending.size());
  for (const PendingPage &Page : Pending) {
    Keys.push_back(SiteKey(Page.Report));
    ObjectAccessProfile &Site = SiteProfiles[Keys.back()];
    const ObjectAccessProfile &Profile = Page.Profile;
    Site.SampledAccesses += Profile.SampledAccesses;
    Site.SampledWrites += Profile.SampledWrites;
    Site.SampledCycles += Profile.SampledCycles;
    Site.Invalidations += Profile.Invalidations;
    Site.RemoteAccesses += Profile.RemoteAccesses;
    Site.RemoteCycles += Profile.RemoteCycles;
    for (const RemoteDistanceStats &Bucket : Profile.RemoteByDistance) {
      auto At = std::lower_bound(
          Site.RemoteByDistance.begin(), Site.RemoteByDistance.end(),
          Bucket.Distance,
          [](const RemoteDistanceStats &S, uint32_t D) {
            return S.Distance < D;
          });
      if (At != Site.RemoteByDistance.end() &&
          At->Distance == Bucket.Distance) {
        At->Accesses += Bucket.Accesses;
        At->Cycles += Bucket.Cycles;
      } else {
        Site.RemoteByDistance.insert(At, Bucket);
      }
    }
    for (const ThreadLineStats &Stats : Profile.PerThread) {
      auto It = std::lower_bound(
          Site.PerThread.begin(), Site.PerThread.end(), Stats.Tid,
          [](const ThreadLineStats &S, ThreadId T) { return S.Tid < T; });
      if (It != Site.PerThread.end() && It->Tid == Stats.Tid) {
        It->Accesses += Stats.Accesses;
        It->Cycles += Stats.Cycles;
      } else {
        Site.PerThread.insert(It, Stats);
      }
    }
  }
  // One EQ.2-EQ.4 pass per site, not per page: sibling pages share the
  // assessment by construction.
  std::map<std::string, Assessment> SiteImpacts;
  for (const auto &[Key, Profile] : SiteProfiles)
    SiteImpacts.emplace(Key, Assess.assessPage(Profile, AppRuntime));
  for (size_t I = 0; I < Pending.size(); ++I)
    Pending[I].Report.Impact = SiteImpacts.at(Keys[I]);

  // Highest predicted improvement first (what Cheetah prints), breaking
  // ties by cross-node invalidations, then remote traffic, then the
  // address for determinism.
  std::sort(Pending.begin(), Pending.end(),
            [](const PendingPage &PA, const PendingPage &PB) {
              const PageSharingReport &A = PA.Report;
              const PageSharingReport &B = PB.Report;
              if (A.Impact.ImprovementFactor != B.Impact.ImprovementFactor)
                return A.Impact.ImprovementFactor >
                       B.Impact.ImprovementFactor;
              if (A.Invalidations != B.Invalidations)
                return A.Invalidations > B.Invalidations;
              if (A.RemoteAccesses != B.RemoteAccesses)
                return A.RemoteAccesses > B.RemoteAccesses;
              return A.PageBase < B.PageBase;
            });

  Output Result;
  Result.AllInstances.reserve(Pending.size());
  for (PendingPage &Page : Pending) {
    PageSharingReport &Report = Page.Report;
    bool MultiNodeSharing = Report.NodesObserved >= 2 &&
                            Report.Invalidations >= Gate.MinInvalidations;
    // The placement gate is for pages *without* node contention: a
    // multi-node page below the invalidation bar is insignificant sharing,
    // not a misplacement finding.
    bool RemotePlacement = Gate.ReportRemotePlacement &&
                           Report.NodesObserved < 2 &&
                           Report.RemoteAccesses >= Gate.MinRemoteAccesses;
    bool Significant = MultiNodeSharing || RemotePlacement;
    if (Sink)
      Sink->pageFinding(Report, Significant);
    if (Significant)
      Result.Reports.push_back(Report);
    Result.AllInstances.push_back(std::move(Report));
  }
  Pending.clear();
  LocalAccesses = 0;
  LocalCycles = 0;
  return Result;
}
