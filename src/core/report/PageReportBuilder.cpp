//===- core/report/PageReportBuilder.cpp - Page finding builder -----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/report/PageReportBuilder.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

PageReportBuilder::PageReportBuilder(const runtime::HeapAllocator &Heap,
                                     const runtime::GlobalRegistry &Globals,
                                     const runtime::CallsiteTable &Callsites,
                                     const SharingClassifier &Classifier,
                                     const NumaTopology &Topology,
                                     const CacheGeometry &Geometry,
                                     const PageReportGate &Gate)
    : Heap(Heap), Globals(Globals), Callsites(Callsites),
      Classifier(Classifier), Topology(Topology), Geometry(Geometry),
      Gate(Gate) {}

PageSharingReport PageReportBuilder::buildReport(uint64_t PageBase,
                                                 NodeId Home,
                                                 const PageInfo &Info) const {
  PageSharingReport Report;
  Report.PageBase = PageBase;
  Report.PageSize = Topology.pageSize();
  Report.HomeNode = Home;
  Report.SampledAccesses = Info.accesses();
  Report.SampledWrites = Info.writes();
  Report.RemoteAccesses = Info.remoteAccesses();
  Report.Invalidations = Info.invalidations();
  Report.LatencyCycles = Info.cycles();
  Report.RemoteLatencyCycles = Info.remoteCycles();
  Report.NodesObserved = static_cast<uint32_t>(Info.nodeCount());

  // One snapshot serves classification and the per-line entries. The
  // classifier is the word-granularity one applied unchanged: lines are the
  // page's "words", nodes are its "threads".
  const std::vector<WordStats> Lines = Info.lines();
  LineClassification Verdict =
      Classifier.classify(Lines, Report.NodesObserved);
  Report.Kind = Verdict.Kind;
  Report.SharedLineFraction = Verdict.sharedFraction();

  for (size_t L = 0; L < Lines.size(); ++L) {
    if (Lines[L].accesses() == 0)
      continue;
    PageLineEntry Entry;
    Entry.Offset = L << Geometry.lineShift();
    Entry.Reads = Lines[L].Reads;
    Entry.Writes = Lines[L].Writes;
    Entry.Cycles = Lines[L].Cycles;
    Entry.FirstNode = Lines[L].FirstThread; // node id in the thread field
    Entry.MultiNode = Lines[L].MultiThread;
    Report.Lines.push_back(Entry);

    // Attribute the touched line to its owning object so the finding names
    // what to move, not just a raw page address.
    uint64_t LineAddress = PageBase + Entry.Offset;
    std::string Name;
    if (const runtime::HeapObject *Object = Heap.objectAt(LineAddress)) {
      const auto &Frames = Callsites.get(Object->Site).Frames;
      Name = Frames.empty() ? std::string("<heap>") : Frames.front();
    } else if (const runtime::GlobalVariable *Var =
                   Globals.globalAt(LineAddress)) {
      Name = Var->Name;
    }
    if (!Name.empty() &&
        std::find(Report.Objects.begin(), Report.Objects.end(), Name) ==
            Report.Objects.end())
      Report.Objects.push_back(Name);
  }

  // Hottest lines first for the placement-guidance table.
  std::sort(Report.Lines.begin(), Report.Lines.end(),
            [](const PageLineEntry &A, const PageLineEntry &B) {
              if (A.Reads + A.Writes != B.Reads + B.Writes)
                return A.Reads + A.Writes > B.Reads + B.Writes;
              return A.Offset < B.Offset;
            });
  return Report;
}

void PageReportBuilder::addPage(uint64_t PageBase, NodeId Home,
                                const PageInfo &Info) {
  if (Info.accesses() == 0)
    return;
  Pending.push_back(buildReport(PageBase, Home, Info));
}

PageReportBuilder::Output PageReportBuilder::finalize(ReportSink *Sink) {
  // Worst first: cross-node invalidations, then remote traffic, then the
  // address for determinism.
  std::sort(Pending.begin(), Pending.end(),
            [](const PageSharingReport &A, const PageSharingReport &B) {
              if (A.Invalidations != B.Invalidations)
                return A.Invalidations > B.Invalidations;
              if (A.RemoteAccesses != B.RemoteAccesses)
                return A.RemoteAccesses > B.RemoteAccesses;
              return A.PageBase < B.PageBase;
            });

  Output Result;
  Result.AllInstances.reserve(Pending.size());
  for (PageSharingReport &Report : Pending) {
    bool MultiNodeSharing = Report.NodesObserved >= 2 &&
                            Report.Invalidations >= Gate.MinInvalidations;
    // The placement gate is for pages *without* node contention: a
    // multi-node page below the invalidation bar is insignificant sharing,
    // not a misplacement finding.
    bool RemotePlacement = Gate.ReportRemotePlacement &&
                           Report.NodesObserved < 2 &&
                           Report.RemoteAccesses >= Gate.MinRemoteAccesses;
    bool Significant = MultiNodeSharing || RemotePlacement;
    if (Sink)
      Sink->pageFinding(Report, Significant);
    if (Significant)
      Result.Reports.push_back(Report);
    Result.AllInstances.push_back(std::move(Report));
  }
  Pending.clear();
  return Result;
}
