//===- core/report/Report.cpp - False sharing reports ---------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/report/Report.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

namespace {

std::string counter(uint64_t Value, bool Hex) {
  if (Hex)
    return formatString("%llx", static_cast<unsigned long long>(Value));
  return formatString("%llu", static_cast<unsigned long long>(Value));
}

} // namespace

std::string cheetah::core::formatReport(const FalseSharingReport &Report,
                                        const ReportFormatOptions &Options) {
  std::string Out;
  Out += formatString(
      "Detecting false sharing at the object: start 0x%llx end 0x%llx "
      "(with size %llu).\n",
      static_cast<unsigned long long>(Report.Object.Start),
      static_cast<unsigned long long>(Report.Object.end()),
      static_cast<unsigned long long>(Report.Object.Size));
  Out += formatString(
      "Accesses %s invalidations %s writes %s total latency %s cycles.\n",
      counter(Report.SampledAccesses, Options.HexCounters).c_str(),
      counter(Report.Invalidations, Options.HexCounters).c_str(),
      counter(Report.SampledWrites, Options.HexCounters).c_str(),
      counter(Report.LatencyCycles, Options.HexCounters).c_str());
  Out += formatString("Sharing classification: %s (shared-word fraction "
                      "%.2f over %u lines).\n",
                      sharingKindName(Report.Kind),
                      Report.SharedWordFraction, Report.LinesTracked);

  const Assessment &Impact = Report.Impact;
  Out += "Latency information:\n";
  Out += formatString("totalThreads %u\n", Report.ThreadsObserved);
  uint64_t ThreadsAccesses = 0, ThreadsCycles = 0;
  for (const ThreadPrediction &P : Impact.Threads) {
    ThreadsAccesses += P.AccessesOnObject;
    ThreadsCycles += P.CyclesOnObject;
  }
  Out += formatString(
      "totalThreadsAccesses %s\n",
      counter(ThreadsAccesses, Options.HexCounters).c_str());
  Out += formatString("totalThreadsCycles %s\n",
                      counter(ThreadsCycles, Options.HexCounters).c_str());
  Out += formatString(
      "totalPossibleImprovementRate %f%%\n(realRuntime %llu "
      "predictedRuntime %llu).\n",
      Impact.improvementPercent(),
      static_cast<unsigned long long>(Impact.RealAppRuntime),
      static_cast<unsigned long long>(Impact.PredictedAppRuntime));
  if (!Impact.ForkJoinModel)
    Out += "note: execution did not follow the fork-join model; the "
           "whole-program prediction is a thread-level approximation.\n";

  if (Report.Object.IsHeap) {
    Out += "It is a heap object with the following callsite:\n";
    if (Report.Object.CallsiteFrames.empty()) {
      Out += "<unknown callsite>\n";
    } else {
      for (const std::string &Frame : Report.Object.CallsiteFrames)
        Out += Frame + "\n";
    }
  } else {
    Out += formatString("It is a global variable: %s\n",
                        Report.Object.GlobalName.c_str());
  }

  if (Options.ShowWords && !Report.Words.empty()) {
    Out += "Word-level accesses (offset within object):\n";
    TextTable Table;
    Table.setHeader({"offset", "reads", "writes", "cycles", "threads"});
    size_t Limit = Options.MaxWords == 0
                       ? Report.Words.size()
                       : std::min(Options.MaxWords, Report.Words.size());
    for (size_t I = 0; I < Limit; ++I) {
      const WordReportEntry &Word = Report.Words[I];
      Table.addRow({formatString("+%llu",
                                 static_cast<unsigned long long>(Word.Offset)),
                    std::to_string(Word.Reads), std::to_string(Word.Writes),
                    std::to_string(Word.Cycles),
                    Word.MultiThread
                        ? std::string("multiple")
                        : formatString("thread %u", Word.FirstThread)});
    }
    Out += Table.render();
    if (Limit < Report.Words.size())
      Out += formatString("... %zu more words elided\n",
                          Report.Words.size() - Limit);
  }
  return Out;
}

std::string
cheetah::core::formatPageReport(const PageSharingReport &Report,
                                const ReportFormatOptions &Options) {
  std::string Out;
  Out += formatString(
      "Detecting page sharing at the page: start 0x%llx end 0x%llx "
      "(with size %llu), home node %u.\n",
      static_cast<unsigned long long>(Report.PageBase),
      static_cast<unsigned long long>(Report.PageBase + Report.PageSize),
      static_cast<unsigned long long>(Report.PageSize), Report.HomeNode);
  Out += formatString(
      "Accesses %s cross-node invalidations %s writes %s remote %s "
      "(%.1f%%) total latency %s cycles (%s remote).\n",
      counter(Report.SampledAccesses, Options.HexCounters).c_str(),
      counter(Report.Invalidations, Options.HexCounters).c_str(),
      counter(Report.SampledWrites, Options.HexCounters).c_str(),
      counter(Report.RemoteAccesses, Options.HexCounters).c_str(),
      Report.remoteFraction() * 100.0,
      counter(Report.LatencyCycles, Options.HexCounters).c_str(),
      counter(Report.RemoteLatencyCycles, Options.HexCounters).c_str());
  if (!Report.RemoteByDistance.empty()) {
    Out += "Remote traffic by node-pair distance:";
    for (const RemoteDistanceStats &Bucket : Report.RemoteByDistance)
      Out += formatString(
          " d%u: %s accesses %s cycles;", Bucket.Distance,
          counter(Bucket.Accesses, Options.HexCounters).c_str(),
          counter(Bucket.Cycles, Options.HexCounters).c_str());
    Out += "\n";
  }
  Out += formatString("Sharing classification: %s (shared-line fraction "
                      "%.2f over %u nodes).\n",
                      sharingKindName(Report.Kind),
                      Report.SharedLineFraction, Report.NodesObserved);
  const Assessment &Impact = Report.Impact;
  Out += formatString(
      "totalPossibleImprovementRate %f%%\n(realRuntime %llu "
      "predictedRuntime %llu, no-remote baseline %.2f cycles).\n",
      Impact.improvementPercent(),
      static_cast<unsigned long long>(Impact.RealAppRuntime),
      static_cast<unsigned long long>(Impact.PredictedAppRuntime),
      Impact.AverageNoFsLatency);
  if (Report.NodesObserved < 2 && Report.RemoteAccesses > 0)
    Out += "note: single-node page homed on another node — a first-touch "
           "placement problem, not sharing.\n";

  if (!Report.Objects.empty()) {
    Out += "Objects on this page:\n";
    for (const std::string &Name : Report.Objects)
      Out += Name + "\n";
  }

  if (Options.ShowWords && !Report.Lines.empty()) {
    Out += "Line-level accesses (offset within page):\n";
    TextTable Table;
    Table.setHeader({"offset", "reads", "writes", "cycles", "nodes"});
    size_t Limit = Options.MaxWords == 0
                       ? Report.Lines.size()
                       : std::min(Options.MaxWords, Report.Lines.size());
    for (size_t I = 0; I < Limit; ++I) {
      const PageLineEntry &Line = Report.Lines[I];
      Table.addRow({formatString("+%llu",
                                 static_cast<unsigned long long>(Line.Offset)),
                    std::to_string(Line.Reads), std::to_string(Line.Writes),
                    std::to_string(Line.Cycles),
                    Line.MultiNode
                        ? std::string("multiple")
                        : formatString("node %u", Line.FirstNode)});
    }
    Out += Table.render();
    if (Limit < Report.Lines.size())
      Out += formatString("... %zu more lines elided\n",
                          Report.Lines.size() - Limit);
  }
  return Out;
}

std::string cheetah::core::formatSummaryTable(
    const std::vector<FalseSharingReport> &Reports) {
  TextTable Table;
  Table.setHeader({"object", "kind", "accesses", "invalidations", "writes",
                   "threads", "predicted improvement"});
  for (const FalseSharingReport &Report : Reports) {
    std::string Name = Report.Object.IsHeap
                           ? (Report.Object.CallsiteFrames.empty()
                                  ? std::string("<heap>")
                                  : Report.Object.CallsiteFrames.front())
                           : Report.Object.GlobalName;
    Table.addRow({Name, sharingKindName(Report.Kind),
                  formatWithCommas(Report.SampledAccesses),
                  formatWithCommas(Report.Invalidations),
                  formatWithCommas(Report.SampledWrites),
                  std::to_string(Report.ThreadsObserved),
                  formatString("%.2fx", Report.Impact.ImprovementFactor)});
  }
  return Table.render();
}
