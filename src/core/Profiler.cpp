//===- core/Profiler.cpp - The Cheetah profiler facade --------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"

#include "support/Assert.h"

#include <algorithm>
#include <unordered_map>

using namespace cheetah;
using namespace cheetah::core;

const FalseSharingReport *
ProfileResult::findReport(const std::string &Needle) const {
  for (const FalseSharingReport &Report : Reports) {
    if (!Report.Object.IsHeap &&
        Report.Object.GlobalName.find(Needle) != std::string::npos)
      return &Report;
    for (const std::string &Frame : Report.Object.CallsiteFrames)
      if (Frame.find(Needle) != std::string::npos)
        return &Report;
  }
  return nullptr;
}

Profiler::Profiler(const ProfilerConfig &Config)
    : Config(Config),
      Heap(Config.HeapArenaBase, Config.HeapArenaSize, Config.Geometry),
      Globals(Config.GlobalSegmentBase, Config.GlobalSegmentSize,
              Config.Geometry),
      Shadow(Config.Geometry,
             {{Config.HeapArenaBase, Config.HeapArenaSize},
              {Config.GlobalSegmentBase, Config.GlobalSegmentSize}}),
      Detect(Config.Geometry, Shadow, Config.Detect),
      Classifier(Config.Classify), Pmu(Config.Pmu) {
  Pmu.setHandler([this](const pmu::Sample &Sample) { handleSample(Sample); });
}

runtime::CallsiteId Profiler::internCallsite(const std::string &File,
                                             unsigned Line) {
  return Callsites.intern(File, Line);
}

runtime::CallsiteId Profiler::internCallsite(runtime::Callsite Site) {
  return Callsites.intern(std::move(Site));
}

uint64_t Profiler::onThreadStart(ThreadId Tid, bool IsMain, uint64_t Now) {
  {
    // Thread lifecycle events may arrive while other threads are mid-batch
    // in ingestBatch; registry growth and phase transitions share its lock.
    std::lock_guard<std::mutex> Lock(IngestMutex);
    Threads.threadStarted(Tid, IsMain, Now);
    if (IsMain) {
      CHEETAH_ASSERT(!MainSeen, "second main thread");
      MainSeen = true;
      Phases.programBegin(Tid, Now);
    } else {
      // In the simulator every child is created by the main thread;
      // real-mode interposition would pass the true creator.
      Phases.threadCreated(Tid, /*Creator=*/0, Now);
    }
  }
  // Per-thread PMU programming cost (six pfmon APIs + six syscalls).
  return Pmu.onThreadStart(Tid, IsMain, Now);
}

void Profiler::onThreadEnd(const sim::ThreadRecord &Record) {
  std::lock_guard<std::mutex> Lock(IngestMutex);
  Threads.threadFinished(Record.Tid, Record.EndCycle);
  if (Record.IsMain)
    Phases.programEnd(Record.EndCycle);
  else
    Phases.threadFinished(Record.Tid, Record.EndCycle);
}

uint64_t Profiler::onMemoryAccess(ThreadId Tid, const MemoryAccess &Access,
                                  const sim::CoherenceResult &Result,
                                  uint64_t Now) {
  return Pmu.onMemoryAccess(Tid, Access, Result, Now);
}

void Profiler::onInstructions(ThreadId Tid, uint64_t Count) {
  Pmu.onInstructions(Tid, Count);
}

void Profiler::handleSample(const pmu::Sample &Sample) {
  ingestBatch(&Sample, 1);
}

void Profiler::ingestBatch(const pmu::Sample *Samples, size_t Count) {
  if (Count == 0)
    return;

  if (Count == 1) {
    // Single-sample fast path (the simulator's per-sample handler): one
    // short critical section for the bookkeeping, detection outside it.
    const pmu::Sample &Sample = Samples[0];
    bool InParallel;
    {
      std::lock_guard<std::mutex> Lock(IngestMutex);
      InParallel = Phases.inParallelPhase();
      // Every thread records its own samples (F_SETOWN_EX-style dispatch).
      if (Threads.known(Sample.Tid))
        Threads.recordSample(Sample.Tid, Sample.LatencyCycles);
      if (!InParallel && Shadow.covers(Sample.Address)) {
        // Serial-phase samples have no false sharing: their latencies
        // approximate AverCycles_nofs for EQ.1.
        SerialLatency.add(Sample.LatencyCycles);
        ++SerialSampleCount;
      }
    }
    Detect.handleSample(Sample, InParallel);
    return;
  }

  // Phase state is read once per batch: sampling is statistical, so a batch
  // straddling a phase boundary attributes its samples to the phase active
  // at drain time, matching what per-sample delivery would have seen within
  // one signal handler.
  bool InParallel;
  {
    std::lock_guard<std::mutex> Lock(IngestMutex);
    InParallel = Phases.inParallelPhase();
  }

  // Every thread records its own samples (F_SETOWN_EX-style dispatch), so a
  // batch nearly always carries one Tid; accumulate per-tid totals in a
  // fixed-size scratch table and apply them under one lock per batch.
  struct TidTotals {
    ThreadId Tid = 0;
    uint64_t Count = 0;
    uint64_t Cycles = 0;
  };
  constexpr size_t MaxBatchTids = 16;
  TidTotals Totals[MaxBatchTids];
  size_t NumTids = 0;
  OnlineStats BatchSerial;
  uint64_t BatchSerialCount = 0;

  auto FlushBookkeeping = [&] {
    std::lock_guard<std::mutex> Lock(IngestMutex);
    for (size_t I = 0; I < NumTids; ++I)
      if (Threads.known(Totals[I].Tid))
        Threads.recordSamples(Totals[I].Tid, Totals[I].Count,
                              Totals[I].Cycles);
    NumTids = 0;
    if (BatchSerialCount) {
      SerialLatency.merge(BatchSerial);
      SerialSampleCount += BatchSerialCount;
      BatchSerial = OnlineStats();
      BatchSerialCount = 0;
    }
  };

  for (size_t I = 0; I < Count; ++I) {
    const pmu::Sample &Sample = Samples[I];

    size_t T = 0;
    while (T < NumTids && Totals[T].Tid != Sample.Tid)
      ++T;
    if (T == NumTids) {
      if (NumTids == MaxBatchTids) {
        FlushBookkeeping();
        T = 0;
      }
      Totals[NumTids++] = TidTotals{Sample.Tid, 0, 0};
    }
    ++Totals[T].Count;
    Totals[T].Cycles += Sample.LatencyCycles;

    if (!InParallel && Shadow.covers(Sample.Address)) {
      // Serial-phase samples have no false sharing: their latencies
      // approximate AverCycles_nofs for EQ.1.
      BatchSerial.add(Sample.LatencyCycles);
      ++BatchSerialCount;
    }
    Detect.handleSample(Sample, InParallel);
  }
  FlushBookkeeping();
}

/// Aggregation bucket: one reportable object (heap object or global) plus
/// everything observed on its cache lines.
struct Profiler::ObjectAggregate {
  ReportedObject Object;
  ObjectAccessProfile Profile;
  uint32_t Lines = 0;
  uint64_t SharedWordAccesses = 0;
  uint64_t TotalWordAccesses = 0;
  uint32_t FalseLines = 0, TrueLines = 0, MixedLines = 0, SharedLines = 0;
  std::vector<WordReportEntry> Words;
  uint32_t MaxThreadsOnLine = 0;
};

FalseSharingReport Profiler::buildReport(const ObjectAggregate &Aggregate,
                                         const Assessor &Assess,
                                         uint64_t AppRuntime) const {
  FalseSharingReport Report;
  Report.Object = Aggregate.Object;
  Report.LinesTracked = Aggregate.Lines;
  Report.SampledAccesses = Aggregate.Profile.SampledAccesses;
  Report.SampledWrites = Aggregate.Profile.SampledWrites;
  Report.Invalidations = Aggregate.Profile.Invalidations;
  Report.LatencyCycles = Aggregate.Profile.SampledCycles;
  Report.ThreadsObserved =
      static_cast<uint32_t>(Aggregate.Profile.PerThread.size());
  Report.SharedWordFraction =
      Aggregate.TotalWordAccesses
          ? static_cast<double>(Aggregate.SharedWordAccesses) /
                static_cast<double>(Aggregate.TotalWordAccesses)
          : 0.0;

  // Object-level sharing verdict from the per-line verdicts.
  if (Aggregate.SharedLines == 0)
    Report.Kind = SharingKind::NotShared;
  else if (Aggregate.FalseLines > 0 && Aggregate.TrueLines == 0 &&
           Aggregate.MixedLines == 0)
    Report.Kind = SharingKind::FalseSharing;
  else if (Aggregate.TrueLines > 0 && Aggregate.FalseLines == 0 &&
           Aggregate.MixedLines == 0)
    Report.Kind = SharingKind::TrueSharing;
  else
    Report.Kind = SharingKind::Mixed;

  Report.Impact = Assess.assess(Aggregate.Profile, AppRuntime);

  // Hottest words first for the padding-guidance table.
  Report.Words = Aggregate.Words;
  std::sort(Report.Words.begin(), Report.Words.end(),
            [](const WordReportEntry &A, const WordReportEntry &B) {
              return A.Reads + A.Writes > B.Reads + B.Writes;
            });
  return Report;
}

ProfileResult Profiler::finish(const sim::SimulationResult &Run) {
  ProfileResult Result;
  Result.AppRuntime = Run.TotalCycles;
  Result.Detection = Detect.stats();
  Result.SamplesDelivered = Pmu.samplesDelivered();
  Result.SerialSamples = SerialSampleCount;
  Result.SerialAverageLatency = SerialLatency.mean();
  Result.ForkJoinVerified = Phases.isForkJoin();

  Assessor Assess(Threads, Phases, Config.Assess);
  Assess.setSerialLatencyStats(SerialLatency);

  // Group every materialized line by its containing object. Key: the object
  // start address packed with a 2-bit tag in the top bits — heap object
  // start (tag 0), global start (tag 1), or raw line base (tag 2) for
  // unattributed heap-range lines. Addresses are user-space (< 2^48), so
  // the tag can never collide with address bits. An unordered_map sized up
  // front keeps report generation linear in the line population instead of
  // paying a red-black-tree rebalance per line.
  auto PackKey = [](int Tag, uint64_t Start) {
    return (static_cast<uint64_t>(Tag) << 62) | Start;
  };
  std::unordered_map<uint64_t, ObjectAggregate> Aggregates;
  Aggregates.reserve(Shadow.materializedLines());

  Shadow.forEachDetail([&](uint64_t LineBase, const CacheLineInfo &Info) {
    if (Info.accesses() == 0)
      return;
    ObjectAggregate *Aggregate = nullptr;

    if (const runtime::HeapObject *Object = Heap.objectAt(LineBase)) {
      Aggregate = &Aggregates[PackKey(0, Object->Start)];
      if (Aggregate->Lines == 0) {
        Aggregate->Object.IsHeap = true;
        Aggregate->Object.Start = Object->Start;
        Aggregate->Object.Size = Object->Size;
        Aggregate->Object.RequestedSize = Object->RequestedSize;
        Aggregate->Object.AllocatedBy = Object->Owner;
        Aggregate->Object.CallsiteFrames =
            Callsites.get(Object->Site).Frames;
      }
    } else if (const runtime::GlobalVariable *Var =
                   Globals.globalAt(LineBase)) {
      Aggregate = &Aggregates[PackKey(1, Var->Start)];
      if (Aggregate->Lines == 0) {
        Aggregate->Object.IsHeap = false;
        Aggregate->Object.GlobalName = Var->Name;
        Aggregate->Object.Start = Var->Start;
        Aggregate->Object.Size = Var->Size;
      }
    } else {
      // Line inside the arena but before any object (allocator metadata or
      // a freed region): report it as an anonymous range.
      Aggregate = &Aggregates[PackKey(2, LineBase)];
      if (Aggregate->Lines == 0) {
        Aggregate->Object.IsHeap = Heap.covers(LineBase);
        Aggregate->Object.Start = LineBase;
        Aggregate->Object.Size = Config.Geometry.lineSize();
      }
    }

    ++Aggregate->Lines;
    Aggregate->Profile.SampledAccesses += Info.accesses();
    Aggregate->Profile.SampledWrites += Info.writes();
    Aggregate->Profile.SampledCycles += Info.cycles();
    Aggregate->Profile.Invalidations += Info.invalidations();

    for (const ThreadLineStats &Stats : Info.threads()) {
      auto &PerThread = Aggregate->Profile.PerThread;
      auto It = std::lower_bound(PerThread.begin(), PerThread.end(),
                                 Stats.Tid,
                                 [](const ThreadLineStats &S, ThreadId T) {
                                   return S.Tid < T;
                                 });
      if (It != PerThread.end() && It->Tid == Stats.Tid) {
        It->Accesses += Stats.Accesses;
        It->Cycles += Stats.Cycles;
      } else {
        PerThread.insert(It, Stats);
      }
    }

    LineClassification Verdict = Classifier.classify(Info);
    Aggregate->SharedWordAccesses += Verdict.SharedWordAccesses;
    Aggregate->TotalWordAccesses +=
        Verdict.SharedWordAccesses + Verdict.PrivateWordAccesses;
    Aggregate->MaxThreadsOnLine =
        std::max(Aggregate->MaxThreadsOnLine, Verdict.Threads);
    switch (Verdict.Kind) {
    case SharingKind::FalseSharing:
      ++Aggregate->FalseLines;
      ++Aggregate->SharedLines;
      break;
    case SharingKind::TrueSharing:
      ++Aggregate->TrueLines;
      ++Aggregate->SharedLines;
      break;
    case SharingKind::Mixed:
      ++Aggregate->MixedLines;
      ++Aggregate->SharedLines;
      break;
    case SharingKind::NotShared:
      break;
    }

    // Per-word entries, offsets relative to the object.
    const auto &Words = Info.words();
    for (size_t W = 0; W < Words.size(); ++W) {
      if (Words[W].accesses() == 0)
        continue;
      WordReportEntry Entry;
      uint64_t WordAddress = LineBase + W * WordSize;
      Entry.Offset = WordAddress >= Aggregate->Object.Start
                         ? WordAddress - Aggregate->Object.Start
                         : 0;
      Entry.Reads = Words[W].Reads;
      Entry.Writes = Words[W].Writes;
      Entry.Cycles = Words[W].Cycles;
      Entry.FirstThread = Words[W].FirstThread;
      Entry.MultiThread = Words[W].MultiThread;
      Aggregate->Words.push_back(Entry);
    }
  });

  for (const auto &[Key, Aggregate] : Aggregates) {
    FalseSharingReport Report =
        buildReport(Aggregate, Assess, Run.TotalCycles);
    bool Reportable =
        (Report.Kind == SharingKind::FalseSharing ||
         (Config.ReportMixedSharing && Report.Kind == SharingKind::Mixed)) &&
        Report.Invalidations >= Config.MinInvalidations &&
        Report.Impact.ImprovementFactor >= Config.MinImprovementFactor;
    if (Reportable)
      Result.Reports.push_back(Report);
    Result.AllInstances.push_back(std::move(Report));
  }

  auto ByImprovement = [](const FalseSharingReport &A,
                          const FalseSharingReport &B) {
    if (A.Impact.ImprovementFactor != B.Impact.ImprovementFactor)
      return A.Impact.ImprovementFactor > B.Impact.ImprovementFactor;
    return A.Object.Start < B.Object.Start;
  };
  std::sort(Result.Reports.begin(), Result.Reports.end(), ByImprovement);
  std::sort(Result.AllInstances.begin(), Result.AllInstances.end(),
            ByImprovement);
  return Result;
}
