//===- core/Profiler.cpp - The Cheetah profiler facade --------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"

#include "core/report/PageReportBuilder.h"
#include "core/report/ReportBuilder.h"
#include "support/Assert.h"

using namespace cheetah;
using namespace cheetah::core;

const FalseSharingReport *
ProfileResult::findReport(const std::string &Needle) const {
  for (const FalseSharingReport &Report : Reports) {
    if (!Report.Object.IsHeap &&
        Report.Object.GlobalName.find(Needle) != std::string::npos)
      return &Report;
    for (const std::string &Frame : Report.Object.CallsiteFrames)
      if (Frame.find(Needle) != std::string::npos)
        return &Report;
  }
  return nullptr;
}

Profiler::Profiler(const ProfilerConfig &Config)
    : Config(Config),
      Heap(Config.HeapArenaBase, Config.HeapArenaSize, Config.Geometry),
      Globals(Config.GlobalSegmentBase, Config.GlobalSegmentSize,
              Config.Geometry),
      Shadow(Config.Geometry,
             {{Config.HeapArenaBase, Config.HeapArenaSize},
              {Config.GlobalSegmentBase, Config.GlobalSegmentSize}}),
      Detect(Config.Geometry, Shadow, Config.Detect),
      Classifier(Config.Classify) {
  if (Config.Detect.TrackPages) {
    Pages = std::make_unique<PageTable>(
        Config.Topology, Config.Geometry,
        std::vector<ShadowRegion>{
            {Config.HeapArenaBase, Config.HeapArenaSize},
            {Config.GlobalSegmentBase, Config.GlobalSegmentSize}});
    Detect.attachPageTable(*Pages, this->Config.Topology);
  }
  Shadow.setByteBudget(Config.Detect.LineShadowBudgetBytes);
  if (Pages)
    Pages->setByteBudget(Config.Detect.PageShadowBudgetBytes);
}

runtime::CallsiteId Profiler::internCallsite(const std::string &File,
                                             unsigned Line) {
  return Callsites.intern(File, Line);
}

runtime::CallsiteId Profiler::internCallsite(runtime::Callsite Site) {
  return Callsites.intern(std::move(Site));
}

void Profiler::threadStarted(ThreadId Tid, bool IsMain, uint64_t Now) {
  // Thread lifecycle events may arrive while other threads are mid-batch
  // in ingestBatch; registry growth and phase transitions share its lock.
  std::lock_guard<std::mutex> Lock(IngestMutex);
  Threads.threadStarted(Tid, IsMain, Now);
  if (IsMain) {
    CHEETAH_ASSERT(!MainSeen, "second main thread");
    MainSeen = true;
    Phases.programBegin(Tid, Now);
  } else {
    // In the simulator every child is created by the main thread;
    // real-mode interposition would pass the true creator.
    Phases.threadCreated(Tid, /*Creator=*/0, Now);
  }
}

void Profiler::threadFinished(ThreadId Tid, bool IsMain, uint64_t EndCycle) {
  std::lock_guard<std::mutex> Lock(IngestMutex);
  Threads.threadFinished(Tid, EndCycle);
  if (IsMain)
    Phases.programEnd(EndCycle);
  else
    Phases.threadFinished(Tid, EndCycle);
}

void Profiler::handleSample(const pmu::Sample &Sample) {
  ingestBatch(&Sample, 1);
}

void Profiler::ingestBatch(const pmu::Sample *Samples, size_t Count) {
  if (Count == 0)
    return;
  SamplesIngested.fetch_add(Count, std::memory_order_relaxed);

  if (Count == 1) {
    // Single-sample fast path (the simulator's per-sample handler): one
    // short critical section for the bookkeeping, detection outside it.
    const pmu::Sample &Sample = Samples[0];
    bool InParallel;
    {
      std::lock_guard<std::mutex> Lock(IngestMutex);
      InParallel = Phases.inParallelPhase();
      // Every thread records its own samples (F_SETOWN_EX-style dispatch).
      if (Threads.known(Sample.Tid))
        Threads.recordSample(Sample.Tid, Sample.LatencyCycles);
      if (!InParallel && Shadow.covers(Sample.Address)) {
        // Serial-phase samples have no false sharing: their latencies
        // approximate AverCycles_nofs for EQ.1.
        SerialLatency.add(Sample.LatencyCycles);
        ++SerialSampleCount;
      }
    }
    Detect.handleSample(Sample, InParallel);
    return;
  }

  // Phase state is read once per batch: sampling is statistical, so a batch
  // straddling a phase boundary attributes its samples to the phase active
  // at drain time, matching what per-sample delivery would have seen within
  // one signal handler.
  bool InParallel;
  {
    std::lock_guard<std::mutex> Lock(IngestMutex);
    InParallel = Phases.inParallelPhase();
  }

  // Every thread records its own samples (F_SETOWN_EX-style dispatch), so a
  // batch nearly always carries one Tid; accumulate per-tid totals in a
  // fixed-size scratch table and apply them under one lock per batch.
  struct TidTotals {
    ThreadId Tid = 0;
    uint64_t Count = 0;
    uint64_t Cycles = 0;
  };
  constexpr size_t MaxBatchTids = 16;
  TidTotals Totals[MaxBatchTids];
  size_t NumTids = 0;
  OnlineStats BatchSerial;
  uint64_t BatchSerialCount = 0;

  auto FlushBookkeeping = [&] {
    std::lock_guard<std::mutex> Lock(IngestMutex);
    for (size_t I = 0; I < NumTids; ++I)
      if (Threads.known(Totals[I].Tid))
        Threads.recordSamples(Totals[I].Tid, Totals[I].Count,
                              Totals[I].Cycles);
    NumTids = 0;
    if (BatchSerialCount) {
      SerialLatency.merge(BatchSerial);
      SerialSampleCount += BatchSerialCount;
      BatchSerial = OnlineStats();
      BatchSerialCount = 0;
    }
  };

  for (size_t I = 0; I < Count; ++I) {
    const pmu::Sample &Sample = Samples[I];

    size_t T = 0;
    while (T < NumTids && Totals[T].Tid != Sample.Tid)
      ++T;
    if (T == NumTids) {
      if (NumTids == MaxBatchTids) {
        // Scratch table full: flush what we have and keep accumulating —
        // a batch carrying more than MaxBatchTids distinct threads costs
        // extra lock acquisitions, never dropped samples (guarded by the
        // 32-tid conservation test).
        FlushBookkeeping();
        T = 0;
      }
      Totals[NumTids++] = TidTotals{Sample.Tid, 0, 0};
    }
    ++Totals[T].Count;
    Totals[T].Cycles += Sample.LatencyCycles;

    if (!InParallel && Shadow.covers(Sample.Address)) {
      // Serial-phase samples have no false sharing: their latencies
      // approximate AverCycles_nofs for EQ.1.
      BatchSerial.add(Sample.LatencyCycles);
      ++BatchSerialCount;
    }
  }
  FlushBookkeeping();

  // Detection runs over the whole batch through the staged pipeline:
  // vector decode, prefetched stage-1 counting, branchless filtering, and
  // prefetched detail lookups — semantically identical to per-sample
  // handleSample delivery, outside the ingest lock.
  Detect.handleBatch(Samples, Count, InParallel);
}

ReportRunStats Profiler::runStats(uint64_t AppRuntime) const {
  ReportRunStats Stats;
  Stats.AppRuntime = AppRuntime;
  Stats.SamplesDelivered = SamplesIngested.load(std::memory_order_relaxed);
  Stats.SerialSamples = SerialSampleCount;
  Stats.SerialAverageLatency = SerialLatency.mean();
  Stats.ForkJoinVerified = Phases.isForkJoin();
  Stats.Detection = Detect.stats();
  Stats.MaterializedLines = Shadow.materializedLines();
  Stats.ShadowBytes = Shadow.shadowBytes();
  if (Pages) {
    Stats.MaterializedPages = Pages->materializedPages();
    Stats.PageShadowBytes = Pages->pageBytes();
  }
  Stats.LineEviction.BudgetBytes = Shadow.byteBudget();
  Stats.LineEviction.FootprintBytes = Shadow.footprintBytes();
  Stats.LineEviction.Evicted = Shadow.evictedResidue();
  if (Pages) {
    Stats.PageEviction.BudgetBytes = Pages->byteBudget();
    Stats.PageEviction.FootprintBytes = Pages->footprintBytes();
    Stats.PageEviction.Evicted = Pages->evictedResidue();
  }
  return Stats;
}

ProfileResult Profiler::finish(const sim::SimulationResult &Run,
                               ReportSink *Sink) {
  // Epoch quiesce before any grain is read: in the sharded build this
  // folds every per-thread shard back into the shared tables (and proves
  // conservation); in the other builds it is a cheap no-op. The simulator
  // has joined every thread by now, so no ingestion races the merge.
  Detect.quiesce();
  return buildReport(Run.TotalCycles, Sink);
}

ProfileResult Profiler::snapshotEpoch(uint64_t AppRuntime, ReportSink *Sink) {
  // Same fence as finish(): the caller guarantees no ingestion threads are
  // in flight, so the shard merge (sharded build) and the eviction sweep
  // below never race sample delivery.
  Detect.quiesce();
  // Report first over the full epoch state, then trim: the snapshot the
  // caller streams out sees every grain that was live this epoch; only the
  // *next* epoch pays the eviction.
  ProfileResult Result = buildReport(AppRuntime, Sink);
  Shadow.enforceBudget();
  if (Pages)
    Pages->enforceBudget();
  return Result;
}

ProfileResult Profiler::buildReport(uint64_t AppRuntime, ReportSink *Sink) {
  ProfileResult Result;
  Result.AppRuntime = AppRuntime;
  Result.Detection = Detect.stats();
  Result.SamplesDelivered = SamplesIngested.load(std::memory_order_relaxed);
  Result.SerialSamples = SerialSampleCount;
  Result.SerialAverageLatency = SerialLatency.mean();
  Result.ForkJoinVerified = Phases.isForkJoin();

  Assessor Assess(Threads, Phases, Config.Assess);
  Assess.setSerialLatencyStats(SerialLatency);

  // Feed every materialized line to the incremental builder as it quiesces,
  // then let the builder assess, gate, sort, and stream the findings.
  ReportBuilder Builder(Heap, Globals, Callsites, Classifier,
                        Config.Geometry, Config.Report);
  Shadow.forEachDetail([&](uint64_t LineBase, const CacheLineInfo &Info) {
    Builder.addLine(Info.snapshot(LineBase));
  });

  ReportBuilder::Output Built = Builder.finalize(Assess, AppRuntime, Sink);
  Result.Reports = std::move(Built.Reports);
  Result.AllInstances = std::move(Built.AllInstances);

  // Page-granularity findings stream after the object findings (the JSON
  // sink closes one array and opens the other on this boundary). Their
  // assessment runs on the same Assessor, with the run-wide local-access
  // totals installed as the EQ.1 fallback baseline for fully-remote pages.
  if (Pages) {
    PageReportBuilder PageBuilder(Heap, Globals, Callsites, Classifier,
                                  Config.Topology, Config.Geometry,
                                  Config.PageReport);
    Pages->forEachPage(
        [&](uint64_t PageBase, NodeId Home, const PageInfo &Info) {
          PageBuilder.addPage(Info.snapshot(PageBase), Home,
                              Info.numaEvidence());
        });
    Assess.setLocalLatencyTotals(PageBuilder.localAccesses(),
                                 PageBuilder.localCycles());
    PageReportBuilder::Output PageBuilt =
        PageBuilder.finalize(Assess, AppRuntime, Sink);
    Result.PageReports = std::move(PageBuilt.Reports);
    Result.AllPageInstances = std::move(PageBuilt.AllInstances);
  }

  // The generic stage enumeration: detection counters from the detector,
  // tracked/significant totals from whichever builder owns the stage's
  // reports. A future third grain adds a case here and nowhere else.
  Result.Stages = Detect.stageSummaries();
  for (GrainStageSummary &Stage : Result.Stages) {
    if (Stage.Name == LineGrainTraits::Name) {
      Stage.Tracked = Result.AllInstances.size();
      Stage.Significant = Result.Reports.size();
    } else if (Stage.Name == PageGrainTraits::Name) {
      Stage.Tracked = Result.AllPageInstances.size();
      Stage.Significant = Result.PageReports.size();
    }
  }

  if (Sink) {
    ReportRunStats Stats = runStats(AppRuntime);
    Stats.Findings = Result.AllInstances.size();
    Stats.SignificantFindings = Result.Reports.size();
    Stats.PageFindings = Result.AllPageInstances.size();
    Stats.SignificantPageFindings = Result.PageReports.size();
    Sink->endRun(Stats);
  }
  return Result;
}
