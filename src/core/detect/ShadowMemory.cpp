//===- core/detect/ShadowMemory.cpp - Address-to-line metadata ------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/ShadowMemory.h"

#include "support/Assert.h"

using namespace cheetah;
using namespace cheetah::core;

ShadowMemory::ShadowMemory(const CacheGeometry &Geometry,
                           std::vector<ShadowRegion> Regions)
    : Geometry(Geometry) {
  for (const ShadowRegion &Region : Regions) {
    CHEETAH_ASSERT(Region.Size > 0, "empty shadow region");
    CHEETAH_ASSERT((Region.Base & (Geometry.lineSize() - 1)) == 0,
                   "shadow region must be line-aligned");
    Slab NewSlab;
    NewSlab.Base = Region.Base;
    NewSlab.Size = Region.Size;
    size_t Lines = static_cast<size_t>(
        (Region.Size + Geometry.lineSize() - 1) >> Geometry.lineShift());
    NewSlab.WriteCounts.assign(Lines, 0);
    NewSlab.Details.resize(Lines);
    Slabs.push_back(std::move(NewSlab));
  }
}

const ShadowMemory::Slab *ShadowMemory::slabFor(uint64_t Address) const {
  for (const Slab &Region : Slabs)
    if (Address >= Region.Base && Address < Region.Base + Region.Size)
      return &Region;
  return nullptr;
}

ShadowMemory::Slab *ShadowMemory::slabFor(uint64_t Address) {
  return const_cast<Slab *>(
      static_cast<const ShadowMemory *>(this)->slabFor(Address));
}

size_t ShadowMemory::lineIndexIn(const Slab &Region, uint64_t Address) const {
  return static_cast<size_t>((Address - Region.Base) >> Geometry.lineShift());
}

bool ShadowMemory::covers(uint64_t Address) const {
  return slabFor(Address) != nullptr;
}

uint32_t ShadowMemory::noteWrite(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "noteWrite outside monitored regions");
  return ++Region->WriteCounts[lineIndexIn(*Region, Address)];
}

uint32_t ShadowMemory::writeCount(uint64_t Address) const {
  const Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "writeCount outside monitored regions");
  return Region->WriteCounts[lineIndexIn(*Region, Address)];
}

CacheLineInfo *ShadowMemory::detail(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "detail outside monitored regions");
  return Region->Details[lineIndexIn(*Region, Address)].get();
}

const CacheLineInfo *ShadowMemory::detail(uint64_t Address) const {
  const Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "detail outside monitored regions");
  return Region->Details[lineIndexIn(*Region, Address)].get();
}

CacheLineInfo &ShadowMemory::materializeDetail(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "materialize outside monitored regions");
  auto &Slot = Region->Details[lineIndexIn(*Region, Address)];
  if (!Slot)
    Slot = std::make_unique<CacheLineInfo>(Geometry.wordsPerLine());
  return *Slot;
}

size_t ShadowMemory::materializedLines() const {
  size_t Count = 0;
  for (const Slab &Region : Slabs)
    for (const auto &Slot : Region.Details)
      if (Slot)
        ++Count;
  return Count;
}

size_t ShadowMemory::shadowBytes() const {
  size_t Bytes = 0;
  for (const Slab &Region : Slabs) {
    Bytes += Region.WriteCounts.size() * sizeof(uint32_t);
    Bytes += Region.Details.size() * sizeof(void *);
    for (const auto &Slot : Region.Details)
      if (Slot)
        Bytes += sizeof(CacheLineInfo) +
                 Slot->words().size() * sizeof(WordStats) +
                 Slot->threads().size() * sizeof(ThreadLineStats);
  }
  return Bytes;
}
