//===- core/detect/ShadowMemory.cpp - Address-to-line metadata ------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/ShadowMemory.h"

#include "support/Assert.h"

#if CHEETAH_LOCKED_TABLE
#include <bit>
#endif

using namespace cheetah;
using namespace cheetah::core;

ShadowMemory::ShadowMemory(const CacheGeometry &Geometry,
                           std::vector<ShadowRegion> Regions)
    : Geometry(Geometry) {
  for (const ShadowRegion &Region : Regions) {
    CHEETAH_ASSERT(Region.Size > 0, "empty shadow region");
    CHEETAH_ASSERT((Region.Base & (Geometry.lineSize() - 1)) == 0,
                   "shadow region must be line-aligned");
    Slab NewSlab;
    NewSlab.Base = Region.Base;
    NewSlab.Size = Region.Size;
    NewSlab.Lines = static_cast<size_t>(
        (Region.Size + Geometry.lineSize() - 1) >> Geometry.lineShift());
    NewSlab.WriteCounts =
        std::make_unique<std::atomic<uint32_t>[]>(NewSlab.Lines);
    NewSlab.Details =
        std::make_unique<std::atomic<CacheLineInfo *>[]>(NewSlab.Lines);
    for (size_t I = 0; I < NewSlab.Lines; ++I) {
      NewSlab.WriteCounts[I].store(0, std::memory_order_relaxed);
      NewSlab.Details[I].store(nullptr, std::memory_order_relaxed);
    }
    Slabs.push_back(std::move(NewSlab));
  }
}

ShadowMemory::~ShadowMemory() {
  for (Slab &Region : Slabs)
    for (size_t I = 0; I < Region.Lines; ++I)
      delete Region.Details[I].load(std::memory_order_relaxed);
}

const ShadowMemory::Slab *ShadowMemory::slabFor(uint64_t Address) const {
  for (const Slab &Region : Slabs)
    if (Address >= Region.Base && Address < Region.Base + Region.Size)
      return &Region;
  return nullptr;
}

ShadowMemory::Slab *ShadowMemory::slabFor(uint64_t Address) {
  return const_cast<Slab *>(
      static_cast<const ShadowMemory *>(this)->slabFor(Address));
}

size_t ShadowMemory::lineIndexIn(const Slab &Region, uint64_t Address) const {
  return static_cast<size_t>((Address - Region.Base) >> Geometry.lineShift());
}

bool ShadowMemory::covers(uint64_t Address) const {
  return slabFor(Address) != nullptr;
}

uint32_t ShadowMemory::noteWrite(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "noteWrite outside monitored regions");
  return Region->WriteCounts[lineIndexIn(*Region, Address)].fetch_add(
             1, std::memory_order_relaxed) +
         1;
}

uint32_t ShadowMemory::writeCount(uint64_t Address) const {
  const Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "writeCount outside monitored regions");
  return Region->WriteCounts[lineIndexIn(*Region, Address)].load(
      std::memory_order_relaxed);
}

CacheLineInfo *ShadowMemory::detail(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "detail outside monitored regions");
  return Region->Details[lineIndexIn(*Region, Address)].load(
      std::memory_order_acquire);
}

const CacheLineInfo *ShadowMemory::detail(uint64_t Address) const {
  const Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "detail outside monitored regions");
  return Region->Details[lineIndexIn(*Region, Address)].load(
      std::memory_order_acquire);
}

CacheLineInfo &ShadowMemory::materializeDetail(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "materialize outside monitored regions");
  std::atomic<CacheLineInfo *> &Slot =
      Region->Details[lineIndexIn(*Region, Address)];
  CacheLineInfo *Existing = Slot.load(std::memory_order_acquire);
  if (Existing)
    return *Existing;
  auto *Fresh = new CacheLineInfo(Geometry.wordsPerLine());
  if (Slot.compare_exchange_strong(Existing, Fresh, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    MaterializedCount.fetch_add(1, std::memory_order_relaxed);
    return *Fresh;
  }
  // Another ingesting thread won the race; use its published info.
  delete Fresh;
  return *Existing;
}

#if CHEETAH_LOCKED_TABLE
std::mutex &ShadowMemory::lineLock(uint64_t Address) {
  // Fibonacci hash of the line index spreads adjacent lines across stripes;
  // the top bits of the product index the stripe array.
  static_assert((LockStripeCount & (LockStripeCount - 1)) == 0,
                "stripe count must be a power of two");
  constexpr unsigned Shift = 64 - std::bit_width(LockStripeCount - 1);
  uint64_t Line = Address >> Geometry.lineShift();
  return LockStripes[(Line * 0x9e3779b97f4a7c15ull) >> Shift];
}
#endif

size_t ShadowMemory::shadowBytes() const {
  size_t Bytes = 0;
  for (const Slab &Region : Slabs) {
    Bytes += Region.Lines * sizeof(std::atomic<uint32_t>);
    Bytes += Region.Lines * sizeof(std::atomic<CacheLineInfo *>);
    for (size_t I = 0; I < Region.Lines; ++I)
      if (const CacheLineInfo *Info =
              Region.Details[I].load(std::memory_order_acquire))
        Bytes += Info->footprintBytes();
  }
  return Bytes;
}
