//===- core/detect/SharingClassifier.cpp - FS vs TS classification --------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/SharingClassifier.h"

using namespace cheetah;
using namespace cheetah::core;

const char *cheetah::core::sharingKindName(SharingKind Kind) {
  switch (Kind) {
  case SharingKind::NotShared:
    return "not-shared";
  case SharingKind::FalseSharing:
    return "false-sharing";
  case SharingKind::TrueSharing:
    return "true-sharing";
  case SharingKind::Mixed:
    return "mixed-sharing";
  }
  return "unknown";
}

LineClassification SharingClassifier::classify(const CacheLineInfo &Info) const {
  return classify(Info.words(), static_cast<uint32_t>(Info.threadCount()));
}

LineClassification
SharingClassifier::classify(const std::vector<WordStats> &Words,
                            uint32_t ThreadsOnLine) const {
  LineClassification Result;
  Result.Threads = ThreadsOnLine;

  for (const WordStats &Word : Words) {
    if (Word.accesses() == 0)
      continue;
    if (Word.MultiThread)
      Result.SharedWordAccesses += Word.accesses();
    else
      Result.PrivateWordAccesses += Word.accesses();
  }

  if (Result.Threads < 2) {
    Result.Kind = SharingKind::NotShared;
    return Result;
  }

  double Shared = Result.sharedFraction();
  if (Shared <= Config.FalseSharingMaxSharedFraction)
    Result.Kind = SharingKind::FalseSharing;
  else if (Shared >= Config.TrueSharingMinSharedFraction)
    Result.Kind = SharingKind::TrueSharing;
  else
    Result.Kind = SharingKind::Mixed;
  return Result;
}
